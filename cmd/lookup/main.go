// Command lookup runs the Jini-style lookup (discovery) service over TCP.
// Masters register the JavaSpaces service here; workers and the network
// management module find services by attribute lookup.
//
// Usage:
//
//	lookup -addr 127.0.0.1:7001
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"gospaces/internal/discovery"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	flag.Parse()

	srv := transport.NewServer()
	discovery.NewService(discovery.NewRegistry(vclock.NewReal()), srv)
	l, err := transport.ListenTCP(*addr, srv)
	if err != nil {
		log.Fatalf("lookup: %v", err)
	}
	log.Printf("lookup: serving on %s", l.Addr())

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("lookup: shutting down")
	_ = l.Close()
}
