// Command netman runs the network management module over real networks:
// it discovers worker nodes through the lookup service, polls each one's
// SNMP agent over UDP for CPU load, and drives the workers through the
// rule-base protocol (Start/Stop/Pause/Resume) over TCP.
//
// Usage:
//
//	netman -lookup 127.0.0.1:7001 -poll 1s
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"gospaces/internal/discovery"
	"gospaces/internal/netmgmt"
	"gospaces/internal/snmp"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

func main() {
	lookupAddr := flag.String("lookup", "127.0.0.1:7001", "lookup service address")
	poll := flag.Duration("poll", time.Second, "SNMP poll interval")
	rescan := flag.Duration("rescan", 5*time.Second, "how often to rediscover workers")
	flag.Parse()
	if err := run(*lookupAddr, *poll, *rescan); err != nil {
		log.Fatalf("netman: %v", err)
	}
}

func run(lookupAddr string, poll, rescan time.Duration) error {
	clk := vclock.NewReal()
	lc, err := transport.DialTCP(lookupAddr)
	if err != nil {
		return err
	}
	defer lc.Close()
	client := discovery.NewClient(lc)

	mod := netmgmt.New(netmgmt.Config{Clock: clk, PollInterval: poll})
	go mod.Run()
	defer mod.Shutdown()

	known := make(map[string]bool)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(rescan)
	defer ticker.Stop()
	log.Printf("netman: monitoring via lookup at %s", lookupAddr)
	for {
		items, err := client.Lookup(map[string]string{"type": "worker"})
		if err != nil {
			log.Printf("netman: lookup: %v", err)
		}
		for _, item := range items {
			if known[item.Name] {
				continue
			}
			sig, err := transport.DialTCP(item.Address)
			if err != nil {
				log.Printf("netman: dial worker %s: %v", item.Name, err)
				continue
			}
			mod.Register(item.Name, &snmp.UDPExchanger{Addr: item.Attributes["snmp"]}, sig)
			known[item.Name] = true
			log.Printf("netman: registered worker %s (snmp %s, signal %s)",
				item.Name, item.Attributes["snmp"], item.Address)
		}
		select {
		case <-stop:
			log.Printf("netman: shutting down (%d signal events)", len(mod.Events()))
			return nil
		case <-ticker.C:
		}
	}
}
