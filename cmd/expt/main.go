// Command expt regenerates the paper's tables and figures on the
// simulated cluster. Each figure prints as an aligned table of the same
// series the paper plots.
//
// Usage:
//
//	expt -run fig6      # scalability, option pricing (Figure 6)
//	expt -run fig7      # scalability, ray tracing (Figure 7)
//	expt -run fig8      # scalability, pre-fetching (Figure 8)
//	expt -run fig9      # adaptation, option pricing (Figure 9 a+b)
//	expt -run fig10     # adaptation, ray tracing (Figure 10 a+b)
//	expt -run fig11     # adaptation, pre-fetching (Figure 11 a+b)
//	expt -run exp3           # dynamic worker behaviour (§5.2.3)
//	expt -run table2         # application classification (Table 2)
//	expt -run intrusiveness  # extension: adaptive vs aggressive cycle stealing
//	expt -run granularity    # extension: task granularity vs intrusion under churn
//	expt -run faultsweep     # extension: completion-time overhead vs worker crash rate
//	expt -run recover        # extension: recovery time vs WAL size, with and without snapshots
//	expt -run all            # everything, in order
//
// The scenario subcommand runs seeded random cluster manifests through
// the property-based invariant checker (internal/scenario):
//
//	expt scenario -seed 42 -count 10   # ten manifests from seed 42
//	expt scenario -seed 1 -minutes 30  # soak for half an hour
//
// The timeline subcommand renders flight-recorder dumps (the
// /debug/flight payload, or a scenario failure's timeline artifact) as
// one merged causal cluster timeline:
//
//	expt timeline scenario-failure-42-timeline.json
package main

import (
	"flag"
	"fmt"
	"os"

	"gospaces/internal/experiments"
	"gospaces/internal/metrics"
	"gospaces/internal/obs"
)

var formatCSV bool

func main() {
	// Subcommands dispatch on the first argument, ahead of the
	// experiment flags.
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		if err := runScenario(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "expt scenario:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "timeline" {
		if err := runTimeline(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "expt timeline:", err)
			os.Exit(1)
		}
		return
	}
	run := flag.String("run", "all", "experiment to run: fig6…fig11, exp3, table2, intrusiveness, granularity, faultsweep, recover, all")
	format := flag.String("format", "table", "output format: table or csv")
	obsOn := flag.Bool("obs", false, "instrument the runs and print a per-stage latency summary")
	traceOut := flag.String("trace", "", "write every span as a Chrome-trace JSON to this file (implies -obs)")
	flag.Parse()
	formatCSV = *format == "csv"

	var o *obs.Obs
	if *obsOn || *traceOut != "" {
		o = obs.New(1)
		if *traceOut != "" {
			// Exports need the full span set, not the recent-spans ring.
			o.Tracer.KeepAll()
		}
		experiments.SetObs(o)
	}

	if err := dispatch(*run); err != nil {
		fmt.Fprintln(os.Stderr, "expt:", err)
		os.Exit(1)
	}

	if o != nil {
		fmt.Println()
		render(metrics.SummaryTable("Observability — per-stage latency", o.Registry.Summary()))
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, o); err != nil {
			fmt.Fprintln(os.Stderr, "expt:", err)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the session's spans in Chrome trace-event format
// (load it at chrome://tracing or https://ui.perfetto.dev).
func writeTrace(path string, o *obs.Obs) error {
	spans := o.Tracer.Spans()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d spans (%d traces, %d orphans) to %s\n",
		len(spans), len(obs.Traces(spans)), len(obs.Orphans(spans)), path)
	return nil
}

// render prints a table in the selected format.
func render(t *metrics.Table) {
	if formatCSV {
		fmt.Println("#", t.Title)
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t)
}

func dispatch(run string) error {
	switch run {
	case "fig6":
		return scalability("Figure 6 — Scalability Analysis, Option Pricing (13 x 300 MHz workers)", experiments.Fig6OptionPricing)
	case "fig7":
		return scalability("Figure 7 — Scalability Analysis, Ray Tracing (5 x 800 MHz workers)", experiments.Fig7RayTracing)
	case "fig8":
		return scalability("Figure 8 — Scalability Analysis, Web Page Pre-fetching (5 x 800 MHz workers)", experiments.Fig8Prefetch)
	case "fig9":
		return adaptation("Figure 9", experiments.Fig9AdaptationOptionPricing)
	case "fig10":
		return adaptation("Figure 10", experiments.Fig10AdaptationRayTracing)
	case "fig11":
		return adaptation("Figure 11", experiments.Fig11AdaptationPrefetch)
	case "exp3":
		return exp3()
	case "table2":
		return table2()
	case "intrusiveness":
		return intrusiveness()
	case "granularity":
		return granularity()
	case "faultsweep":
		return faultsweep()
	case "recover":
		return recover_()
	case "all":
		for _, r := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "exp3", "table2", "intrusiveness", "granularity", "faultsweep", "recover"} {
			if err := dispatch(r); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", run)
	}
}

func scalability(title string, f func() ([]experiments.ScalabilityPoint, error)) error {
	pts, err := f()
	if err != nil {
		return err
	}
	render(experiments.ScalabilityTable(title, pts))
	return nil
}

func adaptation(fig string, f func() (experiments.AdaptationResult, error)) error {
	res, err := f()
	if err != nil {
		return err
	}
	render(res.TraceTable(fmt.Sprintf("%s(a) — Worker CPU Usage, %s", fig, res.App)))
	fmt.Println()
	render(res.SignalTable(fmt.Sprintf("%s(b) — Worker Reaction Times, %s", fig, res.App)))
	return nil
}

func exp3() error {
	for _, app := range []experiments.AppName{
		experiments.OptionPricing, experiments.RayTracing, experiments.Prefetching,
	} {
		pts, err := experiments.DynamicWorkerBehavior(app)
		if err != nil {
			return err
		}
		render(experiments.DynamicTable(
			fmt.Sprintf("Experiment 3 — Dynamic Worker Behaviour under Varying Load, %s", app), pts))
		fmt.Println()
	}
	return nil
}

func intrusiveness() error {
	results, err := experiments.Intrusiveness()
	if err != nil {
		return err
	}
	render(experiments.IntrusivenessTable(results))
	return nil
}

func granularity() error {
	pts, err := experiments.Granularity()
	if err != nil {
		return err
	}
	render(experiments.GranularityTable(pts))
	return nil
}

func faultsweep() error {
	pts, err := experiments.FaultSweep()
	if err != nil {
		return err
	}
	render(experiments.FaultSweepTable(pts))
	return nil
}

// recover_ avoids shadowing the builtin.
func recover_() error {
	pts, err := experiments.Recover()
	if err != nil {
		return err
	}
	render(experiments.RecoveryTable(pts))
	return nil
}

func table2() error {
	fig6, err := experiments.Fig6OptionPricing()
	if err != nil {
		return err
	}
	fig7, err := experiments.Fig7RayTracing()
	if err != nil {
		return err
	}
	fig8, err := experiments.Fig8Prefetch()
	if err != nil {
		return err
	}
	render(experiments.Table2(fig6, fig7, fig8))
	return nil
}
