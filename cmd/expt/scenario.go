package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gospaces/internal/obs"
	"gospaces/internal/scenario"
)

// runScenario is the `expt scenario` subcommand: run seeded random
// cluster manifests through the invariant checker. Modes:
//
//	expt scenario -seed 42 -count 10      # seeds 42..51, then exit
//	expt scenario -seed 1 -minutes 30     # as many seeds as fit the budget
//
// Every failing manifest is minimized by the shrinker and written as a
// JSON artifact next to -out; the process exits 1 if any seed failed, so
// CI catches it, and the logged seed alone reproduces the run.
func runScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "first manifest seed")
	count := fs.Int("count", 10, "number of consecutive seeds to run (ignored with -minutes)")
	minutes := fs.Float64("minutes", 0, "wall-clock soak budget; 0 runs -count seeds instead")
	out := fs.String("out", ".", "directory for minimized failing-manifest artifacts")
	verbose := fs.Bool("v", false, "print each manifest's shape")
	if err := fs.Parse(args); err != nil {
		return err
	}

	deadline := time.Time{}
	if *minutes > 0 {
		deadline = time.Now().Add(time.Duration(*minutes * float64(time.Minute)))
	}

	failed := 0
	ran := 0
	for s := *seed; ; s++ {
		if deadline.IsZero() {
			if ran >= *count {
				break
			}
		} else if !time.Now().Before(deadline) {
			break
		}
		ran++
		m := scenario.Generate(s)
		if *verbose {
			fmt.Printf("seed %d: workers=%d shards=%d replicas=%d elastic=%t durable=%t app=%s/%d events=%d rules=%d\n",
				s, m.Workers, m.Shards, m.Replicas, m.Elastic, m.Durable,
				m.App.Name, m.App.Tasks, len(m.Events), len(m.Faults.Rules))
		}
		rep := scenario.Run(m)
		if !rep.Failed() {
			fmt.Printf("seed %d: PASS (virtual %s, %d fault events)\n",
				s, rep.VirtualElapsed.Round(time.Millisecond), totalFaults(rep.FaultEvents))
			continue
		}
		failed++
		fmt.Printf("seed %d: FAIL\n", s)
		for _, v := range rep.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		min, runs := scenario.Shrink(m, 0)
		fmt.Printf("  shrunk to %d events, %d fault rules in %d runs\n",
			len(min.Events), len(min.Faults.Rules), runs)
		path := filepath.Join(*out, fmt.Sprintf("scenario-failure-%d.json", s))
		if data, err := min.MarshalIndent(); err == nil {
			if werr := os.WriteFile(path, data, 0o644); werr == nil {
				fmt.Printf("  minimized manifest: %s\n", path)
			} else {
				fmt.Printf("  could not write artifact: %v\n", werr)
			}
		}
		// The failing run's merged causal timeline rides along as a
		// second artifact: `expt timeline <file>` renders the cluster's
		// control-plane history without re-running the seed.
		tl := filepath.Join(*out, fmt.Sprintf("scenario-failure-%d-timeline.json", s))
		dump := obs.FlightDump{Depth: len(rep.Timeline), Events: rep.Timeline}
		if len(rep.Timeline) > 0 {
			dump.Clk = rep.Timeline[len(rep.Timeline)-1].Clk
		}
		if data, err := json.MarshalIndent(dump, "", "  "); err == nil {
			if werr := os.WriteFile(tl, data, 0o644); werr == nil {
				fmt.Printf("  flight timeline: %s\n", tl)
			} else {
				fmt.Printf("  could not write timeline: %v\n", werr)
			}
		}
	}
	fmt.Printf("scenario: %d/%d manifests passed\n", ran-failed, ran)
	if failed > 0 {
		return fmt.Errorf("%d of %d manifests violated invariants", failed, ran)
	}
	return nil
}

func totalFaults(events map[string]uint64) uint64 {
	var n uint64
	for k, v := range events {
		// Count the per-kind totals ("faults:crash"); the per-endpoint
		// breakdowns ("faults:crash:node/node01") double-count them.
		if strings.Count(k, ":") == 1 {
			n += v
		}
	}
	return n
}
