package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"gospaces/internal/obs"
)

// runTimeline is the `expt timeline` subcommand: render one or more
// flight-recorder dumps as a single merged causal cluster timeline.
//
//	expt timeline scenario-failure-42-timeline.json
//	expt timeline master-flight.json worker-flight.json
//
// Each argument is either a FlightDump object (the /debug/flight payload
// and the scenario failure artifact) or a bare JSON array of events (a
// hand-extracted fragment). Multiple dumps — say, per-node rings fetched
// from separate processes — merge by causal stamp, exactly as
// obs.MergeTimelines orders them. After rendering, the merged order is
// checked for causal consistency; an inconsistent dump exits non-zero.
func runTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	check := fs.Bool("check", true, "verify the merged timeline is causally consistent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return errors.New("usage: expt timeline [-check=false] <dump.json> [<dump.json>...]")
	}
	var dumps [][]obs.FlightEvent
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		evs, err := decodeFlightDump(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dumps = append(dumps, evs)
	}
	merged := obs.MergeTimelines(dumps...)
	obs.WriteFlightText(os.Stdout, merged)
	fmt.Printf("%d events from %d dump(s)\n", len(merged), len(dumps))
	if *check {
		if err := obs.CheckTimeline(merged); err != nil {
			return fmt.Errorf("timeline causally inconsistent: %w", err)
		}
		fmt.Println("timeline causally consistent")
	}
	return nil
}

// decodeFlightDump accepts either a FlightDump object or a bare event
// array.
func decodeFlightDump(data []byte) ([]obs.FlightEvent, error) {
	var dump obs.FlightDump
	if err := json.Unmarshal(data, &dump); err == nil && dump.Events != nil {
		return dump.Events, nil
	}
	var evs []obs.FlightEvent
	if err := json.Unmarshal(data, &evs); err != nil {
		return nil, fmt.Errorf("neither a flight dump nor an event array: %w", err)
	}
	return evs, nil
}
