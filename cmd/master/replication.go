// Replication assembly for the TCP master: with -replicas 1 every hosted
// shard gets a hot standby in the same process, on its own listener. The
// primary's journal records ship to the standby over loopback TCP; the
// standby watches the heartbeat stream and the primary's lookup lease and
// promotes itself — re-registering under the shard's ring position at an
// incremented epoch — if both go silent. Workers (and the master's own
// router) resolve the promoted registration through the lookup service.
// The protocol lives in internal/replica; this file is only the wiring.
package main

import (
	"fmt"
	"log"
	"net"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"gospaces/internal/discovery"
	"gospaces/internal/metrics"
	"gospaces/internal/obs"
	"gospaces/internal/replica"
	"gospaces/internal/shard"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/wal"
)

// replicaPair is one hosted shard's primary/backup pair. The ring ID (the
// original primary's listen address) names the ring position for the
// lifetime of the process; the epoch and serving role flip at promotion.
type replicaPair struct {
	idx       int
	ringID    string
	numShards int
	jobName   string
	ft        time.Duration
	ack       replica.AckMode
	clk       vclock.Clock
	o         *obs.Obs

	// Standby node, hosted on its own listener.
	baddr  string
	bsrv   *transport.Server
	blocal *space.Local
	bsw    *replica.SwitchSink
	bdur   *space.Durable

	mu          sync.Mutex
	client      *discovery.Client
	regID       uint64 // serving primary's lookup lease
	backupRegID uint64
	promoted    bool
	epoch       uint64
	primary     *replica.Primary
	backup      *replica.Backup
	stops       []interface{ Stop() }
}

// replicaConfig carries the replication flags into the shard loop.
type replicaConfig struct {
	host    string
	dataDir string
	fsync   wal.FsyncPolicy
	ft      time.Duration
	ack     replica.AckMode
	jobName string
	shards  int
	// eo marks -exactly-once deployments: the standby's memo table (rebuilt
	// from the record stream) wires into the dedup counters.
	eo bool
}

// newReplicaPair builds shard idx's standby node and both replication
// controllers. Call it directly after space.NewService(local, srv) so the
// primary's replication middleware sits innermost (the sync-mode confirm
// runs before any obs or gate layer sees the reply). The returned pair's
// primaryHandle gates the master-side handle; the primary's listener
// address is not known yet, so the caller sets the ring ID afterwards.
func newReplicaPair(idx int, clk vclock.Clock, o *obs.Obs, local *space.Local, srv *transport.Server, psw *replica.SwitchSink, cfg replicaConfig) (*replicaPair, error) {
	rp := &replicaPair{
		idx:       idx,
		numShards: cfg.shards,
		jobName:   cfg.jobName,
		ft:        cfg.ft,
		ack:       cfg.ack,
		clk:       clk,
		o:         o,
		epoch:     1,
	}

	// The standby: its own server on an ephemeral port, its own (durable,
	// when -datadir is set) space, journaling into a switchable sink that
	// stays dark until this node is promoted and starts shipping onward.
	rp.bsrv = transport.NewServer()
	rp.bsw = replica.NewSwitchSink()
	if cfg.dataDir != "" {
		dopts := space.DurableOptions{
			Dir:        filepath.Join(cfg.dataDir, fmt.Sprintf("shard%d.backup", idx)),
			Fsync:      cfg.fsync,
			Tee:        rp.bsw,
			Counters:   o.Ctr(),
			AppendHist: o.Reg().Histogram(metrics.HistWALAppend),
			SyncHist:   o.Reg().Histogram(metrics.HistWALFsync),
		}
		if o != nil {
			bnode := fmt.Sprintf("shard%d.backup", idx)
			dopts.OnWALEvent = func(kind, detail string) {
				k := obs.EventWALRotate
				if kind == "snapshot" {
					k = obs.EventWALSnapshot
				}
				rp.flight(bnode, obs.FlightEvent{Kind: k, Shard: rp.ringID, Detail: detail})
			}
		}
		var err error
		rp.blocal, rp.bdur, err = space.NewLocalDurable(clk, dopts)
		if err != nil {
			return nil, fmt.Errorf("durable backup for shard %d: %w", idx, err)
		}
	} else {
		rp.blocal = space.NewLocal(clk)
		if err := rp.blocal.TS.AttachJournal(tuplespace.NewJournalSink(rp.bsw)); err != nil {
			return nil, fmt.Errorf("backup journal for shard %d: %w", idx, err)
		}
	}
	if cfg.eo {
		rp.blocal.TS.SetMemoCounters(o.Ctr())
	}
	bl, err := transport.ListenTCP(net.JoinHostPort(cfg.host, "0"), rp.bsrv)
	if err != nil {
		return nil, fmt.Errorf("backup listener for shard %d: %w", idx, err)
	}
	rp.baddr = bl.Addr()

	p := replica.NewPrimary(local, replica.PrimaryOptions{
		Clock:    clk,
		Ack:      cfg.ack,
		Renew:    rp.renew,
		Counters: o.Ctr(),
		ShipHist: o.Reg().Histogram(metrics.HistReplShip),
		// The ring ID is assigned after the shard's listener comes up and
		// before the pumps start, so reading it at fire time is safe.
		OnFenced: func(epoch uint64) {
			rp.flight(rp.ringID, obs.FlightEvent{Kind: obs.EventFenced, Shard: rp.ringID, Epoch: epoch})
		},
		OnEvent: func(kind, detail string) {
			k := obs.EventResync
			if kind == "degraded" {
				k = obs.EventDegraded
			}
			rp.flight(rp.ringID, obs.FlightEvent{Kind: k, Shard: rp.ringID, Detail: detail})
		},
	})
	psw.Set(p.Sink())
	mc, err := transport.DialTCP(rp.baddr)
	if err != nil {
		return nil, fmt.Errorf("dial backup for shard %d: %w", idx, err)
	}
	p.SetMirror(mc)
	srv.WrapPrefix("space.", p.Middleware())

	b := replica.NewBackup(rp.blocal, replica.BackupOptions{
		Clock:           clk,
		FailoverTimeout: cfg.ft,
		LeaseExpired:    rp.leaseExpired,
		OnPromote:       rp.promote,
		Counters:        o.Ctr(),
		OnEvent: func(kind, detail string) {
			rp.flight(rp.baddr, obs.FlightEvent{Kind: obs.EventDetect, Shard: rp.ringID, Detail: detail})
		},
	})
	if o != nil {
		rp.blocal.TS.SetFlightSink(func(kind, detail string) {
			rp.flight(rp.baddr, obs.FlightEvent{Kind: obs.EventDedupHit, Shard: rp.ringID, Detail: detail})
		})
	}
	b.Bind(rp.bsrv)

	rp.primary, rp.backup = p, b
	rp.stops = append(rp.stops, p, b)
	return rp, nil
}

// flight records one control-plane event for node in the deployment's
// flight recorder, returning the causal stamp (no-op without -obs).
func (rp *replicaPair) flight(node string, ev obs.FlightEvent) uint64 {
	if rp.o == nil {
		return 0
	}
	ev.Node = node
	return rp.o.Fl().Record(rp.clk, ev)
}

// primaryHandle gates the master-side handle of the construction-time
// primary: mutations confirm replication in sync mode, and are fenced
// once the node is deposed.
func (rp *replicaPair) primaryHandle(local *space.Local) space.Space {
	return rp.primary.Wrap(local)
}

// register joins the lookup federation: the primary under the shard's
// ring position on a short lease (renewed by its pump — a dead primary
// lets it lapse, which is the standby's second failure signal), the
// standby under a distinct type so worker discovery never routes to it.
func (rp *replicaPair) register(client *discovery.Client, spread, durable bool) error {
	rp.mu.Lock()
	rp.client = client
	rp.mu.Unlock()
	attrs := rp.ringAttrs(shard.RolePrimary, 1)
	if spread {
		attrs["spread"] = "1"
	}
	if durable {
		attrs["durable"] = "1"
	}
	id, err := client.Register(discovery.ServiceItem{
		Name:       "javaspace",
		Address:    rp.ringID,
		Attributes: attrs,
	}, rp.ft)
	if err != nil {
		return fmt.Errorf("register shard %d with lookup: %w", rp.idx, err)
	}
	bid, err := client.Register(discovery.ServiceItem{
		Name:       "javaspace-backup",
		Address:    rp.baddr,
		Attributes: rp.ringAttrs(shard.RoleBackup, 0),
	}, 0)
	if err != nil {
		return fmt.Errorf("register shard %d standby with lookup: %w", rp.idx, err)
	}
	rp.mu.Lock()
	rp.regID, rp.backupRegID = id, bid
	rp.mu.Unlock()
	return nil
}

func (rp *replicaPair) ringAttrs(role string, epoch uint64) map[string]string {
	attrs := map[string]string{
		"type":           "javaspace",
		"job":            rp.jobName,
		shard.AttrShard:  strconv.Itoa(rp.idx),
		shard.AttrShards: strconv.Itoa(rp.numShards),
		shard.AttrRing:   rp.ringID,
		shard.AttrRole:   role,
	}
	if role == shard.RoleBackup {
		attrs["type"] = "javaspace-backup"
	}
	if epoch > 0 {
		attrs[shard.AttrEpoch] = strconv.FormatUint(epoch, 10)
	}
	return attrs
}

// renew extends the serving primary's registration lease — called from
// the primary pump each heartbeat. A fenced or dead primary stops
// calling, and the lapse promotes the standby.
func (rp *replicaPair) renew() {
	rp.mu.Lock()
	client, id := rp.client, rp.regID
	rp.mu.Unlock()
	if client != nil && id != 0 {
		_ = client.Renew(id, rp.ft)
	}
}

// leaseExpired is the standby's registration-lease failure detector. A
// lookup-service error is not evidence of a dead primary.
func (rp *replicaPair) leaseExpired() bool {
	rp.mu.Lock()
	client := rp.client
	rp.mu.Unlock()
	if client == nil {
		return false
	}
	items, err := client.Lookup(map[string]string{"type": "javaspace", shard.AttrRing: rp.ringID})
	return err == nil && len(items) == 0
}

// start launches both controllers' pumps.
func (rp *replicaPair) start() {
	go rp.primary.Run()
	go rp.backup.Run()
}

// stop shuts every controller ever created, deposed ones included.
func (rp *replicaPair) stop() {
	rp.mu.Lock()
	stops := append([]interface{ Stop() }(nil), rp.stops...)
	rp.mu.Unlock()
	for _, s := range stops {
		s.Stop()
	}
}

// promote is the standby's OnPromote glue: bind the space service on the
// standby's server (replication confirm innermost, obs outermost — the
// same layering as the original primary), re-register under the ring
// position at the new epoch, and start gating the promoted node with a
// fresh primary controller ready to adopt a rejoining standby.
func (rp *replicaPair) promote(epoch uint64) {
	space.NewService(rp.blocal, rp.bsrv)
	p := replica.NewPrimary(rp.blocal, replica.PrimaryOptions{
		Clock:    rp.clk,
		Epoch:    epoch,
		Ack:      rp.ack,
		Renew:    rp.renew,
		Counters: rp.o.Ctr(),
		ShipHist: rp.o.Reg().Histogram(metrics.HistReplShip),
		OnFenced: func(e uint64) {
			rp.flight(rp.baddr, obs.FlightEvent{Kind: obs.EventFenced, Shard: rp.ringID, Epoch: e})
		},
		OnEvent: func(kind, detail string) {
			k := obs.EventResync
			if kind == "degraded" {
				k = obs.EventDegraded
			}
			rp.flight(rp.baddr, obs.FlightEvent{Kind: k, Shard: rp.ringID, Detail: detail})
		},
	})
	rp.bsw.Set(p.Sink())
	rp.bsrv.WrapPrefix("space.", p.Middleware())
	if reg := rp.o.Reg(); reg != nil {
		rp.bsrv.WrapPrefix("space.", obs.ServerMiddleware(rp.clk, reg.Histogram(metrics.HistShardServe(rp.idx))))
	}

	// The promotion is the root of the failover span tree; its context and
	// causal stamp ride the re-registration so every resolving router's
	// retarget (and the retries it heals) parents under it and orders
	// after it — across processes, via the lookup record alone.
	sp := rp.o.T().StartRoot(rp.clk, "failover", rp.baddr)
	pctx := sp.Context()
	sp.End()
	stamp := rp.flight(rp.baddr, obs.FlightEvent{
		Kind: obs.EventPromote, Shard: rp.ringID, Epoch: epoch,
		Trace: pctx.TraceID, Span: pctx.SpanID,
	})

	rp.mu.Lock()
	client := rp.client
	backupRegID := rp.backupRegID
	rp.mu.Unlock()
	var id uint64
	if client != nil {
		if backupRegID != 0 {
			_ = client.Cancel(backupRegID)
		}
		attrs := rp.ringAttrs(shard.RolePrimary, epoch)
		shard.SetCtrlAttrs(attrs, pctx, stamp)
		var err error
		id, err = client.Register(discovery.ServiceItem{
			Name:       "javaspace",
			Address:    rp.baddr,
			Attributes: attrs,
		}, rp.ft)
		if err != nil {
			log.Printf("master: shard %d: re-register promoted standby: %v", rp.idx, err)
		}
	}

	rp.mu.Lock()
	rp.primary = p
	rp.promoted = true
	rp.epoch = epoch
	rp.regID = id
	rp.backupRegID = 0
	rp.stops = append(rp.stops, p)
	rp.mu.Unlock()
	go p.Run()
	log.Printf("master: shard %d failover — standby on %s promoted at epoch %d", rp.idx, rp.baddr, epoch)
}

// setFederation exposes every hosted shard as a member of the federated
// /metrics/cluster view, labeled by ring ID and following the serving
// node (the promoted standby after a failover) like /healthz does.
func setFederation(o *obs.Obs, numShards int, pairs []*replicaPair, durables []*space.Durable, locals []*space.Local, hosted []shard.Shard) {
	fed := o.Fed()
	if fed == nil {
		return
	}
	reg := o.Reg()
	fed.Add(func() []metrics.MemberSnapshot {
		out := make([]metrics.MemberSnapshot, 0, numShards)
		for i := 0; i < numShards && i < len(hosted); i++ {
			m := metrics.MemberSnapshot{
				Name:     hosted[i].ID,
				Counters: make(map[string]uint64),
				Gauges:   make(map[string]int64),
				Hists:    make(map[string]metrics.HistogramSnapshot),
			}
			var d *space.Durable
			if i < len(durables) {
				d = durables[i]
			}
			var serving *space.Local
			if i < len(locals) {
				serving = locals[i]
			}
			if pairs != nil {
				rp := pairs[i]
				rp.mu.Lock()
				m.Gauges[metrics.FedEpoch] = int64(rp.epoch)
				if rp.promoted {
					d = rp.bdur
					serving = rp.blocal
				}
				rp.mu.Unlock()
			}
			if serving != nil {
				m.Gauges[metrics.FedEntries] = int64(serving.TS.Stats().EntriesLive)
				memoN, hits, _ := serving.TS.MemoStats()
				m.Gauges[metrics.FedMemoEntries] = int64(memoN)
				m.Counters[metrics.FedDedupHits] = hits
			}
			if d != nil {
				m.Gauges[metrics.FedWALPosition] = int64(d.Log().Position())
			}
			if reg != nil {
				h := reg.Histogram(metrics.HistShardServe(i))
				m.Counters[metrics.FedOps] = h.Count()
				m.Hists[metrics.FedServe] = h.Snapshot()
			}
			out = append(out, m)
		}
		return out
	})
}

// setHealth installs the /healthz provider: one entry per hosted shard
// with the serving node's role, the ring epoch, the primary-observed
// replication lag, the serving node's WAL position, the shard's
// admission-control vitals, and — with -exactly-once — the serving
// node's memo-table size and dedup hits. The Overload block aggregates
// the admission vitals across hosted shards; Status degrades to
// "browned-out" while any shard is shedding. pairs is nil when
// -replicas is 0; durables[i] is nil for non-durable shards.
func setHealth(o *obs.Obs, numShards int, pairs []*replicaPair, durables []*space.Durable, locals []*space.Local, services []*space.Service, maxInflight int) {
	o.SetHealth(func() obs.Health {
		h := obs.Health{Status: "ok"}
		h.Overload.MaxInflight = maxInflight
		for i := 0; i < numShards; i++ {
			sh := obs.ShardHealth{Shard: i, Role: shard.RolePrimary}
			var d *space.Durable
			if i < len(durables) {
				d = durables[i]
			}
			var serving *space.Local
			if i < len(locals) {
				serving = locals[i]
			}
			if pairs != nil {
				rp := pairs[i]
				rp.mu.Lock()
				sh.Epoch = rp.epoch
				if rp.promoted {
					// The promoted standby holds the ring position.
					sh.Role = shard.RoleBackup
					d = rp.bdur
					serving = rp.blocal
				}
				p := rp.primary
				rp.mu.Unlock()
				if p != nil {
					sh.ReplicationLag = p.Lag()
				}
			}
			if d != nil {
				sh.WALPosition = d.Log().Position()
			}
			if serving != nil {
				sh.Entries = serving.TS.Stats().EntriesLive
				sh.MemoEntries, sh.DedupHits, _ = serving.TS.MemoStats()
			}
			if i < len(services) && services[i] != nil {
				v := services[i].Admission().Vitals()
				sh.BrownoutLevel = v.BrownoutLevel
				sh.Inflight = v.Inflight
				sh.AdmitRejected = v.Rejected
				sh.Shed = v.Shed
				if v.BrownoutLevel > h.Overload.BrownoutLevel {
					h.Overload.BrownoutLevel = v.BrownoutLevel
				}
				h.Overload.Inflight += v.Inflight
				h.Overload.Rejected += v.Rejected
				h.Overload.Shed += v.Shed
				h.Overload.DeadlineExpired += v.DeadlineExpired
			}
			h.Shards = append(h.Shards, sh)
		}
		if h.Overload.BrownoutLevel > 0 {
			h.Status = "browned-out"
		}
		return h
	})
}
