// Elastic resharding for the TCP master: with -autoshard the hosted
// shard set is no longer fixed at -shards. Every hosted shard's journal
// records tee into a rebalance.Tap, a rebalance.Controller watches
// per-shard op rates, and when a shard runs hot the master snapshot-forks
// it into a fresh listener, publishes a higher-epoch topology record with
// the lookup service, and retargets its own router — workers follow
// through their ring watchers without restarting. Cold split-born shards
// merge back the same way in reverse. See internal/rebalance for the
// migration protocol and DESIGN §8 for the state machine.
//
// The TCP binary keeps the elastic path simple: -autoshard requires
// -replicas 0 (the in-process framework supports the replicated variant;
// see core.Config{AutoShard}).
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"gospaces/internal/discovery"
	"gospaces/internal/metrics"
	"gospaces/internal/obs"
	"gospaces/internal/rebalance"
	"gospaces/internal/shard"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/wal"
)

// dynSweeper is a txn-lease sweeper whose member list can grow while the
// master's sweep loop is already running — split-born shards join it.
type dynSweeper struct {
	mu   sync.Mutex
	list []interface{ Sweep() int }
}

func (d *dynSweeper) add(s interface{ Sweep() int }) {
	d.mu.Lock()
	d.list = append(d.list, s)
	d.mu.Unlock()
}

func (d *dynSweeper) remove(s interface{ Sweep() int }) {
	d.mu.Lock()
	for i, have := range d.list {
		if have == s {
			d.list = append(d.list[:i], d.list[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
}

func (d *dynSweeper) Sweep() int {
	d.mu.Lock()
	snap := append([]interface{ Sweep() int }(nil), d.list...)
	d.mu.Unlock()
	n := 0
	for _, s := range snap {
		n += s.Sweep()
	}
	return n
}

// elasticShard is one hosted shard the elastic host can split or merge.
type elasticShard struct {
	idx     int
	addr    string
	local   *space.Local
	tap     *rebalance.Tap
	durable *space.Durable
	lis     *transport.TCPListener
	regID   uint64
	ka      *discovery.KeepAlive
}

// elasticHost owns the -autoshard machinery: the shard table, the
// topology epoch, and the controller loop.
type elasticHost struct {
	clk      vclock.Clock
	o        *obs.Obs
	client   *discovery.Client
	router   *shard.Router
	sweeper  *dynSweeper
	host     string
	jobName  string
	dataDir  string
	fsync    wal.FsyncPolicy
	spread   bool
	txnTTL   time.Duration
	drain    time.Duration
	interval time.Duration

	mu        sync.Mutex
	shards    map[string]*elasticShard
	parents   map[string]string // split-born ring → parent ring
	nextIdx   int
	topoReg   uint64
	republish bool // a cutover's topology publish failed; retry each tick
	ctrl      *rebalance.Controller
	rates     map[string]float64 // last controller EWMA snapshot, for /healthz

	quit   chan struct{}
	done   chan struct{}
	loopMu sync.Mutex // serializes splits/merges with shutdown
}

// flight records one master-attributed control-plane event in the flight
// recorder (no-op without -obs), returning the causal stamp.
func (e *elasticHost) flight(ev obs.FlightEvent) uint64 {
	if e.o == nil {
		return 0
	}
	ev.Node = "master"
	return e.o.Fl().Record(e.clk, ev)
}

// phaseSink maps a migration's phase boundaries onto flight events,
// tagged with the operation and the ring position being resharded.
func (e *elasticHost) phaseSink(op, ring string) func(kind, detail string) {
	if e.o == nil {
		return nil
	}
	return func(kind, detail string) {
		e.flight(obs.FlightEvent{Kind: obs.EventSplitPhase, Shard: ring,
			Detail: fmt.Sprintf("%s %s: %s", op, kind, detail)})
	}
}

// publishTopology registers t as the ring's topology record and cancels
// the previous record only after the new one is visible, so watchers
// always find some topology. The publication is flight-recorded first and
// its causal stamp rides the record as t.Clk: a watcher's adoption event
// then orders strictly after this publish in the merged cluster timeline.
func (e *elasticHost) publishTopology(t shard.Topology) error {
	t.Clk = e.flight(obs.FlightEvent{Kind: obs.EventTopoPublish, Shard: "ring", Epoch: t.Epoch,
		Detail: fmt.Sprintf("%d members", len(t.Members))})
	enc, err := shard.EncodeTopology(t)
	if err != nil {
		return err
	}
	id, err := e.client.Register(discovery.ServiceItem{
		Name:    "javaspace-topology",
		Address: e.host,
		Attributes: map[string]string{
			"type":              shard.TopoType,
			shard.AttrTopo:      enc,
			shard.AttrTopoEpoch: strconv.FormatUint(t.Epoch, 10),
		},
	}, 0)
	if err != nil {
		return err
	}
	e.mu.Lock()
	old := e.topoReg
	e.topoReg = id
	e.mu.Unlock()
	if old != 0 {
		_ = e.client.Cancel(old)
	}
	return nil
}

// buildShard hosts one fresh shard on its own listener: tapped journal,
// durable when -datadir is set, serve histogram when -obs is on. It is
// not registered with the lookup service — callers do that at cutover.
func (e *elasticHost) buildShard(idx int) (*elasticShard, error) {
	srv := transport.NewServer()
	tap := rebalance.NewTap(nil)
	var (
		local *space.Local
		d     *space.Durable
		err   error
	)
	if e.dataDir != "" {
		local, d, err = space.NewLocalDurable(e.clk, space.DurableOptions{
			Dir:        filepath.Join(e.dataDir, fmt.Sprintf("shard%d", idx)),
			Fsync:      e.fsync,
			Counters:   e.o.Ctr(),
			AppendHist: e.o.Reg().Histogram(metrics.HistWALAppend),
			SyncHist:   e.o.Reg().Histogram(metrics.HistWALFsync),
			Tee:        tap,
		})
		if err != nil {
			return nil, fmt.Errorf("durable shard %d: %w", idx, err)
		}
	} else {
		local = space.NewLocal(e.clk)
		if err := local.TS.AttachJournal(tuplespace.NewJournalSink(tap)); err != nil {
			return nil, fmt.Errorf("journal for shard %d: %w", idx, err)
		}
	}
	space.NewService(local, srv)
	if reg := e.o.Reg(); reg != nil {
		srv.WrapPrefix("space.", obs.ServerMiddleware(e.clk, reg.Histogram(metrics.HistShardServe(idx))))
	}
	l, err := transport.ListenTCP(net.JoinHostPort(e.host, "0"), srv)
	if err != nil {
		if d != nil {
			d.Close()
		}
		e.removeWAL(idx)
		return nil, err
	}
	return &elasticShard{idx: idx, addr: l.Addr(), local: local, tap: tap, durable: d, lis: l}, nil
}

// removeWAL deletes shard idx's WAL directory. Used only for stillborn
// children (a split that failed before any eviction): their log residue
// must never seed a later shard recovered from the same path. Indexes are
// not recycled either, so this is belt and braces.
func (e *elasticHost) removeWAL(idx int) {
	if e.dataDir != "" {
		_ = os.RemoveAll(filepath.Join(e.dataDir, fmt.Sprintf("shard%d", idx)))
	}
}

// retireStillborn tears down a child whose split failed before the first
// eviction: regular teardown plus WAL removal.
func (e *elasticHost) retireStillborn(sh *elasticShard) {
	e.retire(sh)
	e.removeWAL(sh.idx)
}

// cutoverAttempts/cutoverRetryWait bound the inline retries of the two
// cutover steps; a topology publish that still fails afterwards is queued
// for the controller loop to retry every tick.
const (
	cutoverAttempts  = 5
	cutoverRetryWait = 200 * time.Millisecond
)

// cutover moves the ring to next. It runs only after a migration has
// begun evicting entries off its source — from the first eviction the
// destination holds the only copy of the moved entries and the reshard
// must run to completion — so cutover never gives up: both steps are
// retried, and a publish the lookup service keeps refusing is queued for
// the controller loop (workers keep the previous ring, consistent but
// stale, until the republish lands; the drain keeps sweeping what they
// still write to the old owner meanwhile).
func (e *elasticHost) cutover(next shard.Topology, resolve func(string) (shard.Shard, error)) {
	var perr error
	for attempt := 0; attempt < cutoverAttempts; attempt++ {
		if perr = e.publishTopology(next); perr == nil {
			break
		}
		e.clk.Sleep(cutoverRetryWait)
	}
	if perr != nil {
		e.mu.Lock()
		e.republish = true
		e.mu.Unlock()
		log.Printf("master: publish topology epoch %d: %v (queued for retry)", next.Epoch, perr)
	}
	var aerr error
	for attempt := 0; attempt < cutoverAttempts; attempt++ {
		if _, aerr = e.router.ApplyTopology(next, resolve); aerr == nil {
			break
		}
		e.clk.Sleep(cutoverRetryWait)
	}
	if aerr != nil {
		log.Printf("master: retarget to topology epoch %d: %v", next.Epoch, aerr)
	}
}

// registerShard makes sh discoverable as a javaspace shard.
func (e *elasticHost) registerShard(sh *elasticShard, totalHint int) error {
	attrs := map[string]string{
		"type":           "javaspace",
		"job":            e.jobName,
		shard.AttrShard:  strconv.Itoa(sh.idx),
		shard.AttrShards: strconv.Itoa(totalHint),
	}
	if e.spread {
		attrs["spread"] = "1"
	}
	if sh.durable != nil {
		attrs["durable"] = "1"
	}
	id, err := e.client.Register(discovery.ServiceItem{
		Name:       "javaspace",
		Address:    sh.addr,
		Attributes: attrs,
	}, time.Minute)
	if err != nil {
		return err
	}
	sh.regID = id
	sh.ka = discovery.NewKeepAlive(e.client, e.clk, id, time.Minute)
	go sh.ka.Run()
	return nil
}

// split snapshot-forks the hot shard at parentAddr into a fresh listener
// and cuts the moved key range over via a higher-epoch topology.
func (e *elasticHost) split(parentAddr string) error {
	e.mu.Lock()
	parent := e.shards[parentAddr]
	// Reserve the child's index up front: a stillborn child must not have
	// its index — and with it its WAL directory — recycled into a later
	// split, which would recover the aborted attempt's log residue.
	idx := e.nextIdx
	e.nextIdx++
	e.mu.Unlock()
	if parent == nil {
		return fmt.Errorf("split: unknown shard %q", parentAddr)
	}
	cur := e.router.Topology()
	next := shard.Topology{Epoch: cur.Epoch + 1}
	var give []string
	for _, m := range cur.Members {
		if m.ID == parentAddr {
			if len(m.Labels) < 2 {
				return fmt.Errorf("split: %s owns a single hash point", parentAddr)
			}
			var keep []string
			keep, give = shard.SplitLabels(m.Labels)
			m.Labels = keep
		}
		next.Members = append(next.Members, m)
	}
	if give == nil {
		return fmt.Errorf("split: %s not in topology", parentAddr)
	}
	child, err := e.buildShard(idx)
	if err != nil {
		return err
	}
	next.Members = append(next.Members, shard.TopoMember{ID: child.addr, Labels: give})

	m := &rebalance.Migration{
		Clock:    e.clk,
		Src:      parent.local.TS,
		Tap:      parent.tap,
		Dst:      tuplespace.NewApplier(child.local.TS),
		Pred:     rebalance.KeyedTo(shard.OwnerFunc(next), child.addr),
		Counters: e.o.Ctr(),
		OnEvent:  e.phaseSink("split", parentAddr),
	}
	moved, err := m.Fork()
	if err != nil {
		// No eviction has happened yet: aborting is loss-free, the parent
		// still holds everything.
		m.Abort()
		e.retireStillborn(child)
		return fmt.Errorf("split %s: fork: %w", parentAddr, err)
	}
	if _, err := m.SettleUntilClear(e.txnTTL); err != nil {
		// Entries have been evicted from the source: the split must
		// complete. Close the tap and cut over; the drain below clears
		// stragglers.
		m.Tap.Close()
		log.Printf("master: split %s: settle: %v (cutting over anyway)", parentAddr, err)
	}
	// From the first eviction on the child holds the only copy of the
	// moved entries: nothing below may retire it or return before it is
	// in the shard table.
	e.cutover(next, func(ring string) (shard.Shard, error) {
		return shard.Shard{ID: ring, Space: space.Space(child.local)}, nil
	})
	e.mu.Lock()
	e.shards[child.addr] = child
	e.parents[child.addr] = parentAddr
	total := len(e.shards)
	e.mu.Unlock()
	e.sweeper.add(child.local.Mgr)
	if err := e.registerShard(child, total); err != nil {
		// Workers cannot resolve the child until its registration lands,
		// so they keep the old ring and keep writing the moved range to
		// the parent — which the drain below keeps sweeping across.
		log.Printf("master: split %s: register child: %v", parentAddr, err)
	}
	evicted, derr := m.Drain(e.drain)
	if derr != nil {
		log.Printf("master: split %s: drain: %v", parentAddr, derr)
	}
	log.Printf("master: split shard %s → %s (moved %d entries, drained %d) at topology epoch %d",
		parentAddr, child.addr, moved, evicted, next.Epoch)
	e.flight(obs.FlightEvent{Kind: obs.EventSplitDone, Shard: parentAddr, Epoch: next.Epoch,
		Detail: fmt.Sprintf("child %s: %d moved, %d drained", child.addr, moved, evicted)})
	return nil
}

// merge folds the cold split-born shard at childAddr back into its
// parent and removes it from the ring.
func (e *elasticHost) merge(childAddr string) error {
	e.mu.Lock()
	child := e.shards[childAddr]
	parent := e.shards[e.parents[childAddr]]
	e.mu.Unlock()
	if child == nil || parent == nil {
		return fmt.Errorf("merge: %q is not a live split-born shard", childAddr)
	}
	cur := e.router.Topology()
	next := shard.Topology{Epoch: cur.Epoch + 1}
	var moved []string
	for _, m := range cur.Members {
		if m.ID == childAddr {
			moved = m.Labels
			continue
		}
		next.Members = append(next.Members, m)
	}
	if moved == nil {
		return fmt.Errorf("merge: %s not in topology", childAddr)
	}
	for i := range next.Members {
		if next.Members[i].ID == parent.addr {
			next.Members[i].Labels = append(append([]string(nil), next.Members[i].Labels...), moved...)
		}
	}

	m := &rebalance.Migration{
		Clock:    e.clk,
		Src:      child.local.TS,
		Tap:      child.tap,
		Dst:      tuplespace.NewApplier(parent.local.TS),
		Pred:     rebalance.Everything,
		Counters: e.o.Ctr(),
		OnEvent:  e.phaseSink("merge", childAddr),
	}
	if _, err := m.Fork(); err != nil {
		m.Abort()
		return fmt.Errorf("merge %s: fork: %w", childAddr, err)
	}
	if _, err := m.SettleUntilClear(e.txnTTL); err != nil {
		m.Tap.Close()
		log.Printf("master: merge %s: settle: %v (cutting over anyway)", childAddr, err)
	}
	// From the first eviction on the parent holds the only copy of the
	// moved entries while the ring still routes the child's arc to the
	// child — the merge must run to completion, returning the arc to the
	// parent, or keyed lookups would miss them.
	e.cutover(next, nil)
	if _, err := m.Drain(e.drain); err != nil {
		log.Printf("master: merge %s: drain: %v", childAddr, err)
	}
	e.mu.Lock()
	delete(e.shards, childAddr)
	delete(e.parents, childAddr)
	e.mu.Unlock()
	e.sweeper.remove(child.local.Mgr)
	e.retire(child)
	log.Printf("master: merged shard %s back into %s at topology epoch %d", childAddr, parent.addr, next.Epoch)
	e.flight(obs.FlightEvent{Kind: obs.EventMergeDone, Shard: childAddr, Epoch: next.Epoch,
		Detail: fmt.Sprintf("folded into %s", parent.addr)})
	return nil
}

// retire tears a shard host down: lease cancelled, listener closed,
// space closed, WAL closed.
func (e *elasticHost) retire(sh *elasticShard) {
	if sh.ka != nil {
		sh.ka.Stop()
	}
	if sh.regID != 0 {
		_ = e.client.Cancel(sh.regID)
	}
	sh.lis.Close()
	sh.local.TS.Close()
	if sh.durable != nil {
		sh.durable.Close()
	}
}

// samples reads each live shard's cumulative op and entry counts.
func (e *elasticHost) samples() []rebalance.Sample {
	e.mu.Lock()
	live := make([]*elasticShard, 0, len(e.shards))
	for _, sh := range e.shards {
		live = append(live, sh)
	}
	e.mu.Unlock()
	out := make([]rebalance.Sample, 0, len(live))
	for _, sh := range live {
		st := sh.local.TS.Stats()
		out = append(out, rebalance.Sample{
			ID:      sh.addr,
			Ops:     st.Writes + st.Reads + st.Takes,
			Entries: st.EntriesLive,
		})
	}
	return out
}

// installHealth replaces the static /healthz provider with one that
// follows the elastic shard set: the ring's topology epoch, each live
// shard's ownership fraction and entry count, and the rebalancer's
// smoothed op rates — the numbers the split/merge thresholds are judged
// against. -autoshard requires -replicas 0, so every shard reports as
// primary with no replication lag.
func (e *elasticHost) installHealth() {
	e.o.SetHealth(func() obs.Health {
		h := obs.Health{Status: "ok", TopologyEpoch: e.router.TopoEpoch()}
		owned := e.router.Ownership()
		e.mu.Lock()
		live := make([]*elasticShard, 0, len(e.shards))
		for _, sh := range e.shards {
			live = append(live, sh)
		}
		splitBorn := make(map[string]bool, len(e.parents))
		for child := range e.parents {
			splitBorn[child] = true
		}
		rates := e.rates
		e.mu.Unlock()
		sort.Slice(live, func(i, j int) bool { return live[i].idx < live[j].idx })
		for _, sh := range live {
			s := obs.ShardHealth{
				Shard:         sh.idx,
				Role:          shard.RolePrimary,
				RingID:        sh.addr,
				OwnedFraction: owned[sh.addr],
				Entries:       sh.local.TS.Stats().EntriesLive,
				OpRate:        rates[sh.addr],
				SplitBorn:     splitBorn[sh.addr],
			}
			if sh.durable != nil {
				s.WALPosition = sh.durable.Log().Position()
			}
			h.Shards = append(h.Shards, s)
		}
		return h
	})
}

// run is the controller loop: sample, decide, act.
func (e *elasticHost) run() {
	defer close(e.done)
	for {
		select {
		case <-e.quit:
			return
		default:
		}
		e.clk.Sleep(e.interval)
		e.loopMu.Lock()
		e.mu.Lock()
		needPub := e.republish
		e.mu.Unlock()
		if needPub {
			// A cutover's topology publish failed past its inline retries;
			// keep trying until the lookup service takes the current ring.
			if err := e.publishTopology(e.router.Topology()); err != nil {
				log.Printf("master: republish topology: %v", err)
			} else {
				e.mu.Lock()
				e.republish = false
				e.mu.Unlock()
			}
		}
		actions := e.ctrl.Advance(e.clk.Now(), e.samples())
		rates := e.ctrl.Rates()
		e.mu.Lock()
		e.rates = rates
		e.mu.Unlock()
		for _, a := range actions {
			var err error
			switch a.Kind {
			case rebalance.ActionSplit:
				err = e.split(a.ID)
			case rebalance.ActionMerge:
				err = e.merge(a.ID)
			}
			if err != nil {
				log.Printf("master: autoshard %s: %v", a.Kind, err)
			}
		}
		e.loopMu.Unlock()
	}
}

func (e *elasticHost) stop() {
	close(e.quit)
	<-e.done
	e.loopMu.Lock()
	defer e.loopMu.Unlock()
	e.mu.Lock()
	live := make([]*elasticShard, 0, len(e.shards))
	for addr, sh := range e.shards {
		if _, splitBorn := e.parents[addr]; splitBorn {
			live = append(live, sh)
		}
	}
	e.mu.Unlock()
	// Split-born hosts are ours to tear down; the originals are owned by
	// run()'s defers.
	for _, sh := range live {
		e.retire(sh)
	}
}

// startElastic wires -autoshard over the already-hosted shard set:
// assigns default ring labels, publishes topology epoch 1, and starts
// the controller loop. hosted[i] must be served by locals[i] with
// taps[i] in its journal chain.
func startElastic(clk vclock.Clock, o *obs.Obs, client *discovery.Client, router *shard.Router,
	sweeper *dynSweeper, host, jobName, dataDir string, fsync wal.FsyncPolicy, spread bool,
	hosted []shard.Shard, locals []*space.Local, taps []*rebalance.Tap,
	splitThreshold, mergeThreshold float64, interval time.Duration) (*elasticHost, error) {
	e := &elasticHost{
		clk: clk, o: o, client: client, router: router, sweeper: sweeper,
		host: host, jobName: jobName, dataDir: dataDir, fsync: fsync, spread: spread,
		txnTTL: 2 * time.Minute, drain: 2 * interval, interval: interval,
		shards:  make(map[string]*elasticShard, len(hosted)),
		parents: make(map[string]string),
		nextIdx: len(hosted),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i, s := range hosted {
		e.shards[s.ID] = &elasticShard{idx: i, addr: s.ID, local: locals[i], tap: taps[i]}
	}
	e.ctrl = rebalance.NewController(rebalance.ControllerConfig{
		SplitThreshold: splitThreshold,
		MergeThreshold: mergeThreshold,
		Mergeable: func(id string) bool {
			e.mu.Lock()
			defer e.mu.Unlock()
			_, ok := e.parents[id]
			return ok
		},
	})
	t := router.Topology()
	t.Epoch = 1
	if _, err := router.ApplyTopology(t, nil); err != nil {
		return nil, fmt.Errorf("autoshard: seed topology: %w", err)
	}
	if err := e.publishTopology(t); err != nil {
		return nil, fmt.Errorf("autoshard: publish topology: %w", err)
	}
	e.installHealth()
	go e.run()
	return e, nil
}
