package main

import (
	"strings"
	"testing"
	"time"
)

// TestRunRejectsAutoshardWithReplicas: the TCP master's elastic path is
// unreplicated by design; combining -autoshard with -replicas must be
// rejected by flag validation — before any socket is bound — with an
// error that names the remedy.
func TestRunRejectsAutoshardWithReplicas(t *testing.T) {
	ecfg := elasticFlags{on: true, splitThreshold: 500, mergeThreshold: 10, interval: 5 * time.Second}
	err := run("127.0.0.1:0", "127.0.0.1:0", "montecarlo", time.Minute,
		"", "", "always", 0, 1, false, "", 1, "sync", 2*time.Second, ecfg, false, overloadFlags{})
	if err == nil {
		t.Fatal("run accepted -autoshard with -replicas 1")
	}
	if !strings.Contains(err.Error(), "-autoshard requires -replicas 0") {
		t.Fatalf("error %q does not name the conflict (-autoshard requires -replicas 0)", err)
	}
}

// TestRunFlagValidationMatrix pins the rest of the documented flag
// conflicts so a refactor of run()'s preamble cannot silently drop one.
func TestRunFlagValidationMatrix(t *testing.T) {
	cases := []struct {
		name     string
		journal  string
		replicas int
		ecfg     elasticFlags
		want     string
	}{
		{"autoshard+journal", "/tmp/j.log", 0, elasticFlags{on: true}, "-autoshard is incompatible with the legacy -journal"},
		{"replicas out of range", "", 2, elasticFlags{}, "-replicas must be 0 or 1"},
		{"replicas+journal", "/tmp/j.log", 1, elasticFlags{}, "-replicas is incompatible with the legacy -journal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run("127.0.0.1:0", "127.0.0.1:0", "montecarlo", time.Minute,
				tc.journal, "", "always", 0, 1, false, "", tc.replicas, "sync", 2*time.Second, tc.ecfg, false, overloadFlags{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
