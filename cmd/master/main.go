// Command master runs the master module over TCP: it hosts the JavaSpaces
// service and the code server, registers them with the lookup service,
// plans the chosen application's tasks, and aggregates results produced
// by however many workers join the federation.
//
// Usage:
//
//	master -addr 127.0.0.1:7002 -lookup 127.0.0.1:7001 -job montecarlo
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/apps/pagerank"
	"gospaces/internal/apps/raytrace"
	"gospaces/internal/discovery"
	"gospaces/internal/master"
	"gospaces/internal/nodeconfig"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7002", "listen address for the space/code services")
	lookupAddr := flag.String("lookup", "127.0.0.1:7001", "lookup service address")
	jobName := flag.String("job", "montecarlo", "application to run: montecarlo, raytrace, pagerank")
	timeout := flag.Duration("result-timeout", 10*time.Minute, "per-result collection timeout")
	journal := flag.String("journal", "", "path for the persistent space journal (empty = in-memory space)")
	sims := flag.Int("sims", 0, "override the option-pricing simulation count (montecarlo only; 0 = paper's 10000)")
	flag.Parse()
	if err := run(*addr, *lookupAddr, *jobName, *timeout, *journal, *sims); err != nil {
		log.Fatalf("master: %v", err)
	}
}

func buildJob(name string, sims int) (master.Job, func(), error) {
	switch name {
	case "montecarlo":
		cfg := montecarlo.DefaultJobConfig()
		if sims > 0 {
			cfg.TotalSims = sims
		}
		job := montecarlo.NewJob(cfg)
		return job, func() {
			price, err := job.Answer()
			if err != nil {
				log.Printf("master: answer: %v", err)
				return
			}
			fmt.Printf("option price bracket: low %.4f (±%.4f)  high %.4f (±%.4f)  mid %.4f\n",
				price.Low, price.LowErr, price.High, price.HighErr, price.Midpoint())
		}, nil
	case "raytrace":
		job := raytrace.NewJob(raytrace.DefaultJobConfig())
		return job, func() {
			_, complete := job.Image()
			fmt.Printf("render complete: %v\n", complete)
		}, nil
	case "pagerank":
		job := pagerank.NewJob(pagerank.DefaultJobConfig())
		return job, func() {
			ranks := job.Ranks()
			fmt.Printf("computed %d page ranks\n", len(ranks))
		}, nil
	default:
		return nil, nil, fmt.Errorf("unknown job %q", name)
	}
}

func run(addr, lookupAddr, jobName string, resultTimeout time.Duration, journalPath string, sims int) error {
	clk := vclock.NewReal()
	job, report, err := buildJob(jobName, sims)
	if err != nil {
		return err
	}

	// Host the space and code services; a journal path selects the
	// persistent mode.
	local := space.NewLocal(clk)
	if journalPath != "" {
		var err error
		local, err = space.NewLocalJournaled(clk, journalPath)
		if err != nil {
			return err
		}
		log.Printf("master: persistent space journal at %s", journalPath)
	}
	srv := transport.NewServer()
	space.NewService(local, srv)
	cs := nodeconfig.NewCodeServer()
	cs.Publish(job.Bundle())
	cs.Bind(srv)
	l, err := transport.ListenTCP(addr, srv)
	if err != nil {
		return err
	}
	defer l.Close()
	log.Printf("master: space + code server on %s", l.Addr())

	// Join the lookup federation.
	lc, err := transport.DialTCP(lookupAddr)
	if err != nil {
		return fmt.Errorf("dial lookup: %w", err)
	}
	defer lc.Close()
	client := discovery.NewClient(lc)
	regID, err := client.Register(discovery.ServiceItem{
		Name:       "javaspace",
		Address:    l.Addr(),
		Attributes: map[string]string{"type": "javaspace", "job": jobName},
	}, time.Minute)
	if err != nil {
		return fmt.Errorf("register with lookup: %w", err)
	}
	ka := discovery.NewKeepAlive(client, clk, regID, time.Minute)
	go ka.Run()
	defer ka.Stop()
	log.Printf("master: registered javaspace with lookup at %s", lookupAddr)

	m := master.New(master.Config{Clock: clk, Space: local, ResultTimeout: resultTimeout})
	log.Printf("master: running job %q", jobName)
	rm, err := m.RunJob(job)
	if err != nil {
		return err
	}
	log.Printf("master: done — tasks=%d planning=%v aggregation=%v parallel=%v",
		rm.Tasks, rm.TaskPlanningTime, rm.TaskAggregationTime, rm.ParallelTime)
	report()
	return nil
}
