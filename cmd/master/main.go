// Command master runs the master module over TCP: it hosts the JavaSpaces
// service and the code server, registers them with the lookup service,
// plans the chosen application's tasks, and aggregates results produced
// by however many workers join the federation.
//
// With -shards K the master hosts K independent space servers: shard 0
// shares the main listener with the code server, shards 1..K-1 get their
// own listeners, and every shard registers with the lookup service
// carrying its shard index. The master (and every worker that discovers
// the registrations) routes operations through a consistent-hash ring
// over the registered addresses.
//
// With -datadir DIR every hosted shard is durable: mutations append to a
// segmented write-ahead log under DIR/shard<i>, snapshots bound replay,
// and restarting the master with the same -datadir recovers the previous
// space contents before serving — JavaSpaces' persistent (Outrigger)
// mode. -fsync picks the sync policy (always, interval, never).
//
// With -replicas 1 every hosted shard gets a hot standby on its own
// listener: journal records ship to it synchronously (-replack sync) or
// in the background (-replack async), and if the primary's heartbeats and
// lookup lease both go silent for -failover-timeout the standby promotes
// itself and re-registers under the shard's ring position at a higher
// epoch. See internal/replica for the protocol.
//
// Usage:
//
//	master -addr 127.0.0.1:7002 -lookup 127.0.0.1:7001 -job montecarlo -shards 4 -spread
//	master -addr 127.0.0.1:7002 -lookup 127.0.0.1:7001 -job montecarlo -datadir /var/lib/gospaces
//	master -addr 127.0.0.1:7002 -lookup 127.0.0.1:7001 -job montecarlo -shards 2 -replicas 1
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"path/filepath"
	"strconv"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/apps/pagerank"
	"gospaces/internal/apps/raytrace"
	"gospaces/internal/discovery"
	"gospaces/internal/master"
	"gospaces/internal/metrics"
	"gospaces/internal/nodeconfig"
	"gospaces/internal/obs"
	"gospaces/internal/rebalance"
	"gospaces/internal/replica"
	"gospaces/internal/shard"
	"gospaces/internal/snmp"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7002", "listen address for the space/code services")
	lookupAddr := flag.String("lookup", "127.0.0.1:7001", "lookup service address")
	jobName := flag.String("job", "montecarlo", "application to run: montecarlo, raytrace, pagerank")
	timeout := flag.Duration("result-timeout", 10*time.Minute, "per-result collection timeout")
	journal := flag.String("journal", "", "path for the legacy single-file space journal (empty = in-memory space)")
	datadir := flag.String("datadir", "", "directory for durable shards (segmented WAL + snapshots, one subdirectory per shard); restarting with the same -datadir recovers the previous contents")
	fsync := flag.String("fsync", "always", "WAL sync policy with -datadir: always, interval, or never")
	sims := flag.Int("sims", 0, "override the option-pricing simulation count (montecarlo only; 0 = paper's 10000)")
	shards := flag.Int("shards", 1, "number of space shard servers to host")
	spread := flag.Bool("spread", false, "key each montecarlo task individually so the bag spreads across shards")
	obsAddr := flag.String("obs", "", "serve the live ops surface (Prometheus /metrics, /debug/pprof, /tracez) on this address, e.g. :6060")
	replicas := flag.Int("replicas", 0, "hot standbys per hosted shard (0 or 1); 1 enables primary/backup replication with automatic failover")
	replack := flag.String("replack", "sync", "replication acknowledgement mode: sync (ack after the standby confirms) or async")
	failoverTimeout := flag.Duration("failover-timeout", 2*time.Second, "heartbeat/lease silence after which a standby promotes itself")
	autoshard := flag.Bool("autoshard", false, "let a load-driven rebalancer split hot shards and merge cold split-born ones at runtime (requires -replicas 0)")
	splitThreshold := flag.Float64("split-threshold", 500, "with -autoshard: smoothed ops/sec above which a shard splits")
	mergeThreshold := flag.Float64("merge-threshold", 10, "with -autoshard: smoothed ops/sec below which a split-born shard merges back")
	reshardInterval := flag.Duration("reshard-interval", 5*time.Second, "with -autoshard: rebalancer sampling interval")
	exactlyOnce := flag.Bool("exactly-once", false, "deduplicate retried mutations server-side: clients mint idempotency tokens, shards memoize tokened outcomes, and ambiguous op timeouts are retried instead of surfaced")
	maxInflight := flag.Int("max-inflight", 0, "per-shard admission bound: ops admitted but unfinished beyond this fast-fail with 'overloaded' instead of queueing; also arms the brownout controller that sheds low-priority ops under sustained saturation (0 = unlimited)")
	retryBudget := flag.Int("retry-budget", 0, "token-bucket cap on the master router's total retry volume, refilled by successes; an empty bucket surfaces the last error instead of retrying (0 = unlimited)")
	flag.Parse()
	ecfg := elasticFlags{
		on: *autoshard, splitThreshold: *splitThreshold,
		mergeThreshold: *mergeThreshold, interval: *reshardInterval,
	}
	ocfg := overloadFlags{maxInflight: *maxInflight, retryBudget: *retryBudget}
	if err := run(*addr, *lookupAddr, *jobName, *timeout, *journal, *datadir, *fsync, *sims, *shards, *spread, *obsAddr, *replicas, *replack, *failoverTimeout, ecfg, *exactlyOnce, ocfg); err != nil {
		log.Fatalf("master: %v", err)
	}
}

func buildJob(name string, sims int, spread bool) (master.Job, func(), error) {
	if spread && name != "montecarlo" {
		return nil, nil, fmt.Errorf("-spread only applies to the montecarlo job")
	}
	switch name {
	case "montecarlo":
		cfg := montecarlo.DefaultJobConfig()
		if sims > 0 {
			cfg.TotalSims = sims
		}
		cfg.ShardSpread = spread
		job := montecarlo.NewJob(cfg)
		return job, func() {
			price, err := job.Answer()
			if err != nil {
				log.Printf("master: answer: %v", err)
				return
			}
			fmt.Printf("option price bracket: low %.4f (±%.4f)  high %.4f (±%.4f)  mid %.4f\n",
				price.Low, price.LowErr, price.High, price.HighErr, price.Midpoint())
		}, nil
	case "raytrace":
		job := raytrace.NewJob(raytrace.DefaultJobConfig())
		return job, func() {
			_, complete := job.Image()
			fmt.Printf("render complete: %v\n", complete)
		}, nil
	case "pagerank":
		job := pagerank.NewJob(pagerank.DefaultJobConfig())
		return job, func() {
			ranks := job.Ranks()
			fmt.Printf("computed %d page ranks\n", len(ranks))
		}, nil
	default:
		return nil, nil, fmt.Errorf("unknown job %q", name)
	}
}

// elasticFlags carries the -autoshard flag group into run.
type elasticFlags struct {
	on                             bool
	splitThreshold, mergeThreshold float64
	interval                       time.Duration
}

// overloadFlags carries the overload-protection flag group into run.
type overloadFlags struct {
	maxInflight, retryBudget int
}

func run(addr, lookupAddr, jobName string, resultTimeout time.Duration, journalPath, dataDir, fsync string, sims, numShards int, spread bool, obsAddr string, replicas int, replack string, failoverTimeout time.Duration, ecfg elasticFlags, exactlyOnce bool, ocfg overloadFlags) error {
	clk := vclock.NewReal()
	job, report, err := buildJob(jobName, sims, spread)
	if err != nil {
		return err
	}
	if replicas < 0 || replicas > 1 {
		return fmt.Errorf("-replicas must be 0 or 1, got %d", replicas)
	}
	if ecfg.on && replicas > 0 {
		return fmt.Errorf("-autoshard requires -replicas 0 in the TCP master (the in-process framework supports the replicated variant)")
	}
	if ecfg.on && journalPath != "" {
		return fmt.Errorf("-autoshard is incompatible with the legacy -journal persistence")
	}
	ackMode, err := replica.ParseAckMode(replack)
	if err != nil {
		return fmt.Errorf("bad -replack: %w", err)
	}
	if replicas > 0 && journalPath != "" {
		return fmt.Errorf("-replicas is incompatible with the legacy -journal persistence")
	}
	// The ops surface is opt-in; a nil *obs.Obs makes every instrumentation
	// call below a no-op.
	var o *obs.Obs
	if obsAddr != "" {
		o = obs.New(time.Now().UnixNano())
		closer, url, err := obs.Serve(obsAddr, o)
		if err != nil {
			return fmt.Errorf("ops endpoint: %w", err)
		}
		defer closer.Close()
		log.Printf("master: ops surface at %s (/metrics, /debug/pprof, /tracez)", url)
	}
	if numShards < 1 {
		numShards = 1
	}
	if journalPath != "" && numShards > 1 {
		return fmt.Errorf("-journal requires a single shard")
	}
	if journalPath != "" && dataDir != "" {
		return fmt.Errorf("-journal and -datadir are mutually exclusive")
	}
	fsyncPolicy, err := wal.ParseFsyncPolicy(fsync)
	if err != nil {
		return fmt.Errorf("bad -fsync: %w", err)
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -addr %q: %w", addr, err)
	}

	// Host the space services — shard 0 shares its server with the code
	// server. -datadir selects the durable (Outrigger persistent) mode:
	// each shard recovers its WAL + snapshot before serving. -journal is
	// the legacy single-file persistence (single shard only).
	cs := nodeconfig.NewCodeServer()
	cs.Publish(job.Bundle())
	var (
		hosted    []shard.Shard
		sweeper   shard.MultiSweeper
		infos     = make([]space.RecoveryInfo, numShards)
		durables  = make([]*space.Durable, numShards)
		pairs     []*replicaPair
		shard0Srv *transport.Server
		locals    []*space.Local
		taps      []*rebalance.Tap
		services  []*space.Service
	)
	if replicas > 0 {
		pairs = make([]*replicaPair, numShards)
	}
	rcfg := replicaConfig{
		host: host, dataDir: dataDir, fsync: fsyncPolicy,
		ft: failoverTimeout, ack: ackMode, jobName: jobName, shards: numShards,
		eo: exactlyOnce,
	}
	for i := 0; i < numShards; i++ {
		// With replication on, the shard's journal records tee into a
		// switchable sink that the primary controller drains to its standby.
		var psw *replica.SwitchSink
		if replicas > 0 {
			psw = replica.NewSwitchSink()
		}
		// With -autoshard every shard's journal records tee into a
		// rebalance.Tap so a later split can snapshot-fork it live.
		var tap *rebalance.Tap
		if ecfg.on {
			tap = rebalance.NewTap(nil)
		}
		var local *space.Local
		switch {
		case dataDir != "":
			dopts := space.DurableOptions{
				Dir:        filepath.Join(dataDir, fmt.Sprintf("shard%d", i)),
				Fsync:      fsyncPolicy,
				Counters:   o.Ctr(),
				AppendHist: o.Reg().Histogram(metrics.HistWALAppend),
				SyncHist:   o.Reg().Histogram(metrics.HistWALFsync),
			}
			if o != nil {
				// The listener (and so the ring ID) doesn't exist yet, so
				// WAL events carry the stable per-process shard label.
				node := fmt.Sprintf("shard%d", i)
				dopts.OnWALEvent = func(kind, detail string) {
					k := obs.EventWALRotate
					if kind == "snapshot" {
						k = obs.EventWALSnapshot
					}
					o.Fl().Record(clk, obs.FlightEvent{Node: node, Kind: k, Shard: node, Detail: detail})
				}
			}
			if psw != nil {
				dopts.Tee = psw
			} else if tap != nil {
				dopts.Tee = tap
			}
			var d *space.Durable
			local, d, err = space.NewLocalDurable(clk, dopts)
			if err != nil {
				return fmt.Errorf("durable shard %d: %w", i, err)
			}
			defer d.Close()
			durables[i] = d
			infos[i] = d.Info()
			log.Printf("master: shard %d recovered %d entries in %v (%d snapshot + %d tail records)",
				i, infos[i].Restored, infos[i].Elapsed.Round(time.Millisecond),
				infos[i].SnapshotRecords, infos[i].TailRecords)
		case i == 0 && journalPath != "":
			local, err = space.NewLocalJournaled(clk, journalPath)
			if err != nil {
				return err
			}
			log.Printf("master: persistent space journal at %s", journalPath)
		default:
			local = space.NewLocal(clk)
			if psw != nil {
				if err := local.TS.AttachJournal(tuplespace.NewJournalSink(psw)); err != nil {
					return fmt.Errorf("journal for shard %d: %w", i, err)
				}
			} else if tap != nil {
				if err := local.TS.AttachJournal(tuplespace.NewJournalSink(tap)); err != nil {
					return fmt.Errorf("journal for shard %d: %w", i, err)
				}
			}
		}
		if exactlyOnce {
			local.TS.SetMemoCounters(o.Ctr())
		}
		srv := transport.NewServer()
		svc := space.NewService(local, srv)
		// Arm admission: the propagated-deadline check always (a worker's
		// -optimeout rides each RPC frame, so queued work the client gave up
		// on is dropped, not executed), the inflight bound when configured.
		acfg := space.AdmissionConfig{Clock: clk, MaxInflight: ocfg.maxInflight, Counters: o.Ctr()}
		if o != nil {
			shardLabel := fmt.Sprintf("shard%d", i)
			acfg.FlightSink = func(detail string) {
				o.Fl().Record(clk, obs.FlightEvent{Node: shardLabel, Kind: obs.EventBrownout, Shard: shardLabel, Detail: detail})
			}
		}
		svc.Admission().Configure(acfg)
		services = append(services, svc)
		handle := space.Space(local)
		if replicas > 0 {
			// Built directly after NewService so the replication middleware
			// sits innermost — sync-mode mutations confirm the standby's
			// apply before the obs layer sees the reply.
			rp, err := newReplicaPair(i, clk, o, local, srv, psw, rcfg)
			if err != nil {
				return err
			}
			pairs[i] = rp
			defer rp.stop()
			handle = rp.primaryHandle(local)
			sweeper = append(sweeper, rp.blocal.Mgr)
		}
		if reg := o.Reg(); reg != nil {
			srv.WrapPrefix("space.", obs.ServerMiddleware(clk, reg.Histogram(metrics.HistShardServe(i))))
		}
		la := addr
		if i == 0 {
			cs.Bind(srv)
			shard0Srv = srv
		} else {
			la = net.JoinHostPort(host, "0")
		}
		l, err := transport.ListenTCP(la, srv)
		if err != nil {
			return err
		}
		defer l.Close()
		sh := shard.Shard{ID: l.Addr(), Space: handle}
		if replicas > 0 {
			pairs[i].ringID = l.Addr()
			sh.Epoch = 1
		}
		if o != nil {
			ringID := l.Addr()
			local.TS.SetFlightSink(func(kind, detail string) {
				o.Fl().Record(clk, obs.FlightEvent{Node: ringID, Shard: ringID, Kind: obs.EventDedupHit, Detail: detail})
			})
		}
		hosted = append(hosted, sh)
		locals = append(locals, local)
		taps = append(taps, tap)
		sweeper = append(sweeper, local.Mgr)
		log.Printf("master: space shard %d/%d on %s", i, numShards, l.Addr())
		if replicas > 0 {
			log.Printf("master: shard %d standby on %s (%s replication, failover after %v)",
				i, pairs[i].baddr, ackMode, failoverTimeout)
		}
	}

	// Join the lookup federation: one registration per shard, each
	// carrying its shard index so clients rebuild the same ring.
	lc, err := transport.DialTCP(lookupAddr)
	if err != nil {
		return fmt.Errorf("dial lookup: %w", err)
	}
	defer lc.Close()
	client := discovery.NewClient(lc)
	for i, s := range hosted {
		if pairs != nil {
			// Replicated shards register on a short lease renewed by the
			// primary pump (no KeepAlive: a dead primary must let it lapse),
			// plus a standby registration under a distinct type.
			if err := pairs[i].register(client, spread, dataDir != ""); err != nil {
				return err
			}
			continue
		}
		attrs := map[string]string{
			"type":           "javaspace",
			"job":            jobName,
			shard.AttrShard:  strconv.Itoa(i),
			shard.AttrShards: strconv.Itoa(numShards),
		}
		if spread {
			attrs["spread"] = "1"
		}
		if dataDir != "" {
			// Durable shards advertise their recovery so operators (and
			// tests) can see a service came back from its log.
			attrs["durable"] = "1"
			attrs["recovered-entries"] = strconv.Itoa(infos[i].Restored)
			if infos[i].Segments > 0 || infos[i].SnapshotRecords > 0 {
				attrs["recovered"] = "1"
			}
		}
		regID, err := client.Register(discovery.ServiceItem{
			Name:       "javaspace",
			Address:    s.ID,
			Attributes: attrs,
		}, time.Minute)
		if err != nil {
			return fmt.Errorf("register shard %d with lookup: %w", i, err)
		}
		ka := discovery.NewKeepAlive(client, clk, regID, time.Minute)
		go ka.Run()
		defer ka.Stop()
	}
	log.Printf("master: registered %d javaspace shard(s) with lookup at %s", numShards, lookupAddr)
	for _, rp := range pairs {
		rp.start()
	}

	var sp space.Space = hosted[0].Space
	var router *shard.Router
	if numShards > 1 || ecfg.on || exactlyOnce {
		// Elastic mode needs a router even for one shard: splits retarget
		// its membership at runtime. Exactly-once needs one too: the token
		// minting and retry machinery live in the router.
		ropts := shard.Options{Clock: clk, Seed: "master", ExactlyOnce: exactlyOnce, Obs: o}
		if pairs != nil {
			// On a hard shard failure the router re-resolves the ring
			// position through the lookup service, picking the registration
			// with the highest epoch — the promoted standby.
			ropts.Failover = shard.Resolver(client,
				map[string]string{"type": "javaspace", "job": jobName},
				func(a string) (space.Space, error) { return space.Dial(a) })
			ropts.Counters = o.Ctr()
		}
		if ropts.Counters == nil && exactlyOnce {
			ropts.Counters = o.Ctr()
		}
		if ocfg.retryBudget > 0 {
			ropts.Budget = shard.NewRetryBudget(ocfg.retryBudget, 0)
			if ropts.Counters == nil {
				ropts.Counters = o.Ctr()
			}
		}
		router, err = shard.New(ropts, hosted)
		if err != nil {
			return err
		}
		sp = router
	}
	if o != nil {
		setHealth(o, numShards, pairs, durables, locals, services, ocfg.maxInflight)
		setFederation(o, numShards, pairs, durables, locals, hosted)
		o.Fl().Record(clk, obs.FlightEvent{
			Node: "master", Kind: obs.EventNodeStart,
			Detail: fmt.Sprintf("%d shards, %d replicas", numShards, replicas),
		})
	}
	var sweepFor interface{ Sweep() int } = sweeper
	var eh *elasticHost
	if ecfg.on {
		ds := &dynSweeper{}
		for _, s := range sweeper {
			ds.add(s)
		}
		sweepFor = ds
		eh, err = startElastic(clk, o, client, router, ds, host, jobName, dataDir, fsyncPolicy,
			spread, hosted, locals, taps, ecfg.splitThreshold, ecfg.mergeThreshold, ecfg.interval)
		if err != nil {
			return err
		}
		defer eh.stop()
		log.Printf("master: autoshard on (split above %.0f ops/s, merge below %.0f ops/s, sampled every %v)",
			ecfg.splitThreshold, ecfg.mergeThreshold, ecfg.interval)
	}
	sp = obs.InstrumentSpace(sp, clk, o.Reg(), metrics.HistSpacePrefix)
	m := master.New(master.Config{
		Clock:         clk,
		Space:         sp,
		ResultTimeout: resultTimeout,
		Sweeper:       sweepFor,
		SweepInterval: 30 * time.Second,
		Obs:           o,
	})
	if reg := o.Reg(); reg != nil {
		reg.RegisterGauge(metrics.GaugeTasksPending, m.PendingTasks)
		reg.RegisterGauge(metrics.GaugeTasksInFlight, m.InFlight)
		reg.RegisterGauge(metrics.GaugeTasksPlanned, m.TasksPlanned)
		reg.RegisterGauge(metrics.GaugeResultsCollected, m.ResultsCollected)
		for i := 0; i < numShards; i++ {
			h := reg.Histogram(metrics.HistShardServe(i))
			reg.RegisterGauge(metrics.GaugeShardOps(i), func() int64 { return int64(h.Count()) })
		}
		// The framework MIB answers SNMP GETs on shard 0's server — the
		// same numbers /metrics reports, over the management substrate.
		mib := snmp.NewMIB()
		obs.ExportMIB(mib, o, numShards)
		snmp.NewAgent("public", mib).Bind(shard0Srv)
	}
	log.Printf("master: running job %q", jobName)
	rm, err := m.RunJob(job)
	if err != nil {
		return err
	}
	log.Printf("master: done — tasks=%d shards=%d planning=%v aggregation=%v parallel=%v",
		rm.Tasks, rm.Shards, rm.TaskPlanningTime, rm.TaskAggregationTime, rm.ParallelTime)
	report()
	if o != nil {
		fmt.Print(metrics.SummaryTable("Observability — per-stage latency", o.Registry.Summary()))
	}
	return nil
}
