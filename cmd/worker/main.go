// Command worker runs one worker node over TCP: it discovers the
// JavaSpaces service through the lookup service, downloads the worker
// program from the master's code server, serves an SNMP agent over UDP
// for the network management module, exposes the rule-base signal
// endpoint, and registers itself with the lookup service so the network
// manager can find it.
//
// The node's system state is modelled by sysmon (this repository's
// simulated-cluster substitution for real host agents); the -loadsim1 and
// -loadsim2 flags start the paper's synthetic load generators locally.
//
// Usage:
//
//	worker -name node01 -lookup 127.0.0.1:7001 -job montecarlo
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"time"

	"gospaces/internal/discovery"
	"gospaces/internal/metrics"
	"gospaces/internal/nodeconfig"
	"gospaces/internal/obs"
	"gospaces/internal/shard"
	"gospaces/internal/snmp"
	"gospaces/internal/space"
	"gospaces/internal/sysmon"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/worker"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/apps/pagerank"
	"gospaces/internal/apps/raytrace"
)

func main() {
	name := flag.String("name", "node01", "worker node name")
	lookupAddr := flag.String("lookup", "127.0.0.1:7001", "lookup service address")
	jobName := flag.String("job", "montecarlo", "program bundle to execute")
	sigAddr := flag.String("signal", "127.0.0.1:0", "TCP listen address for the signal endpoint")
	snmpAddr := flag.String("snmp", "127.0.0.1:0", "UDP listen address for the SNMP agent")
	speed := flag.Float64("speed", 1.0, "relative node speed (1.0 = 800 MHz reference)")
	autostart := flag.Bool("autostart", false, "start without waiting for a rule-base Start signal")
	sim1 := flag.Bool("loadsim1", false, "run load simulator 1 (30-50% CPU)")
	sim2 := flag.Bool("loadsim2", false, "run load simulator 2 (100% CPU)")
	obsAddr := flag.String("obs", "", "serve the live ops surface (Prometheus /metrics, /debug/pprof, /tracez) on this address, e.g. :6061")
	opTimeout := flag.Duration("optimeout", 0, "per-operation deadline on space RPCs (0 = unbounded); timed-out calls fail with space.ErrOpTimeout and, against a dead shard, trigger failover resolution")
	exactlyOnce := flag.Bool("exactly-once", false, "mint an idempotency token per mutation and retry ambiguous op timeouts with it; the master must run with -exactly-once too so shards memoize tokened outcomes")
	retryBudget := flag.Int("retry-budget", 0, "token-bucket cap on this worker's total retry volume, refilled by successes; an empty bucket surfaces the last error instead of retrying (0 = unlimited)")
	flag.Parse()
	if err := run(*name, *lookupAddr, *jobName, *sigAddr, *snmpAddr, *speed, *autostart, *sim1, *sim2, *obsAddr, *opTimeout, *exactlyOnce, *retryBudget); err != nil {
		log.Fatalf("worker: %v", err)
	}
}

func run(name, lookupAddr, jobName, sigAddr, snmpAddr string, speed float64, autostart, sim1, sim2 bool, obsAddr string, opTimeout time.Duration, exactlyOnce bool, retryBudget int) error {
	tmpl, err := taskTemplate(jobName, false)
	if err != nil {
		return err
	}
	clk := vclock.NewReal()
	var o *obs.Obs
	if obsAddr != "" {
		o = obs.New(time.Now().UnixNano())
		closer, url, err := obs.Serve(obsAddr, o)
		if err != nil {
			return fmt.Errorf("ops endpoint: %w", err)
		}
		defer closer.Close()
		log.Printf("worker %s: ops surface at %s (/metrics, /debug/pprof, /tracez)", name, url)
		o.Fl().Record(clk, obs.FlightEvent{Node: name, Kind: obs.EventNodeStart, Detail: "worker"})
	}
	machine := sysmon.NewMachine(clk, name, speed)
	if sim1 {
		sysmon.NewLoadSimulator1(machine).Start()
	}
	if sim2 {
		sysmon.NewLoadSimulator2(machine).Start()
	}

	// Discover the space through the lookup service. A single
	// registration is the classic deployment; a sharded master registers
	// every shard with its index, and the worker waits for the full set
	// and routes through the same consistent-hash ring.
	lc, err := transport.DialTCP(lookupAddr)
	if err != nil {
		return err
	}
	defer lc.Close()
	client := discovery.NewClient(lc)
	spaceTmpl := map[string]string{"type": "javaspace"}
	item, err := client.Await(spaceTmpl, 30, func() { clk.Sleep(time.Second) })
	if err != nil {
		return err
	}
	if item.Attributes["spread"] == "1" {
		tmpl, err = taskTemplate(jobName, true)
		if err != nil {
			return err
		}
	}
	want := 1
	if n, err := strconv.Atoi(item.Attributes[shard.AttrShards]); err == nil && n > 1 {
		want = n
	}
	for attempt := 0; ; attempt++ {
		items, err := client.Lookup(spaceTmpl)
		if err == nil && len(items) >= want {
			break
		}
		if attempt >= 30 {
			return fmt.Errorf("worker: only %d of %d space shards registered", len(items), want)
		}
		clk.Sleep(time.Second)
	}
	dial := func(addr string) (space.Space, error) {
		p, err := space.Dial(addr)
		if err != nil {
			return nil, err
		}
		if opTimeout > 0 {
			p = p.WithOpTimeout(clk, opTimeout)
		}
		return p, nil
	}
	shards, err := shard.Discover(client, spaceTmpl, dial)
	if err != nil {
		return err
	}
	// A replicated master's registrations carry a ring epoch; route through
	// the ring even for a single shard so a failed call can resolve the
	// promoted standby through the lookup service and retry.
	replicated := item.Attributes[shard.AttrEpoch] != ""
	var sp space.Space
	if len(shards) == 1 && !replicated && !exactlyOnce {
		sp = shards[0].Space
		log.Printf("worker %s: found javaspace at %s", name, shards[0].ID)
	} else {
		// Exactly-once also forces the router: the token minting and retry
		// machinery live there.
		ropts := shard.Options{Clock: clk, Seed: name, ExactlyOnce: exactlyOnce, Obs: o}
		if replicated {
			ropts.Failover = shard.Resolver(client, spaceTmpl, dial)
			ropts.Counters = o.Ctr()
		}
		if ropts.Counters == nil && exactlyOnce {
			ropts.Counters = o.Ctr()
		}
		if retryBudget > 0 {
			ropts.Budget = shard.NewRetryBudget(retryBudget, 0)
			if ropts.Counters == nil {
				ropts.Counters = o.Ctr()
			}
		}
		router, err := shard.New(ropts, shards)
		if err != nil {
			return err
		}
		sp = router
		// Pick up shards added between jobs.
		watcher := shard.NewWatcher(client, clk, router, spaceTmpl, dial, 30*time.Second)
		go watcher.Run()
		defer watcher.Stop()
		log.Printf("worker %s: found %d javaspace shards (ring root %s, replicated=%v)", name, len(shards), shards[0].ID, replicated)
	}

	// The code server shares shard 0's listener (the master's address).
	codeConn, err := transport.DialTCPRetry(shards[0].ID, transport.DefaultPolicy())
	if err != nil {
		return err
	}
	defer codeConn.Close()

	engine := nodeconfig.NewEngine(nodeconfig.ExecContext{Clock: clk, Machine: machine, Node: name}, codeConn)
	// The worker's view of the space: per-op latencies as this node sees
	// them (network included).
	sp = obs.InstrumentSpace(sp, clk, o.Reg(), metrics.HistSpacePrefix)
	w := worker.New(worker.Config{
		Node:         name,
		Clock:        clk,
		Machine:      machine,
		Space:        sp,
		Engine:       engine,
		Program:      jobName,
		TaskTemplate: tmpl,
		TxnTTL:       2 * time.Minute,
		Obs:          o,
	})

	// Signal endpoint (the SNMP-client side of the rule-base protocol).
	sigSrv := transport.NewServer()
	w.Bind(sigSrv)
	sigL, err := transport.ListenTCP(sigAddr, sigSrv)
	if err != nil {
		return err
	}
	defer sigL.Close()

	// SNMP agent over UDP.
	mib := snmp.NewMIB()
	mib.Register(snmp.OIDSysName, func() snmp.Value { return snmp.OctetString(name) })
	mib.Register(snmp.OIDHrProcessorLoad, func() snmp.Value {
		return snmp.Integer(int64(machine.RecordSample().Usage + 0.5))
	})
	mib.Register(snmp.OIDBackgroundLoad, func() snmp.Value {
		return snmp.Integer(int64(machine.BackgroundLoad() + 0.5))
	})
	agent, err := snmp.ListenUDP(snmpAddr, snmp.NewAgent("public", mib))
	if err != nil {
		return err
	}
	defer agent.Close()
	log.Printf("worker %s: signal endpoint %s, SNMP agent %s", name, sigL.Addr(), agent.Addr())

	// Register with the lookup service so the network manager finds us,
	// and keep the lease renewed while we live.
	regID, err := client.Register(discovery.ServiceItem{
		Name:    name,
		Address: sigL.Addr(),
		Attributes: map[string]string{
			"type": "worker",
			"snmp": agent.Addr(),
			"node": name,
		},
	}, time.Minute)
	if err != nil {
		return err
	}
	ka := discovery.NewKeepAlive(client, clk, regID, time.Minute)
	go ka.Run()
	defer ka.Stop()

	if autostart {
		w.AutoStart()
	}
	go w.Run()

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("worker %s: shutting down (%d tasks done)", name, w.Stats().TasksDone)
	w.Shutdown()
	return nil
}

// taskTemplate maps a job name to its task template; importing the app
// packages also registers their program factories with nodeconfig. In
// spread mode (montecarlo tasks keyed individually across shards) the
// template's key stays zero, so lookups scatter over the ring.
func taskTemplate(jobName string, spread bool) (tuplespace.Entry, error) {
	switch jobName {
	case montecarlo.JobName:
		if spread {
			return montecarlo.Task{}, nil
		}
		return montecarlo.Task{Job: montecarlo.JobName}, nil
	case raytrace.JobName:
		return raytrace.Task{Job: raytrace.JobName}, nil
	case pagerank.JobName:
		return pagerank.Task{Job: pagerank.JobName}, nil
	}
	return nil, fmt.Errorf("worker: unknown job %q", jobName)
}
