// Package gospaces is a from-scratch Go reproduction of "A Framework for
// Adaptive Cluster Computing using JavaSpaces" (Batheja & Parashar, IEEE
// CLUSTER 2001): a JavaSpaces/Linda tuple space, a Jini-style lookup
// service, an SNMP monitoring substrate, and on top of them an adaptive,
// opportunistic master–worker framework that steals idle cycles from
// cluster nodes without intruding on their local users.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced table and figure. The
// benchmarks in bench_test.go regenerate each figure; the runnable
// programs live under cmd/ and examples/.
package gospaces
