// Parallel ray tracing: render the demo scene on a simulated 5-node
// cluster (the paper's 600×600 plane in 24 strips of 25×600) and write
// the composed image to render.ppm.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"gospaces/internal/apps/raytrace"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/vclock"
)

func main() {
	clk := vclock.NewVirtual(time.Date(2001, 10, 8, 9, 0, 0, 0, time.UTC))
	fw := core.New(clk, core.Config{Workers: cluster.FivePC()})
	job := raytrace.NewJob(raytrace.DefaultJobConfig())

	var res core.Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		log.Fatal(err)
	}

	img, complete := job.Image()
	if !complete {
		log.Fatal("image incomplete")
	}
	w, h := job.Size()
	var buf bytes.Buffer
	job.WritePPM(&buf)
	if err := os.WriteFile("render.ppm", buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered %dx%d (%d bytes) to render.ppm\n", w, h, len(img))
	fmt.Printf("max worker time: %v   parallel time: %v   planning: %v\n",
		res.MaxWorkerTime, res.Metrics.ParallelTime, res.Metrics.TaskPlanningTime)
	for node, st := range res.WorkerStats {
		fmt.Printf("  %s rendered %d strips\n", node, st.TasksDone)
	}
}
