// Option pricing on the paper's 13-node cluster, with the network
// management module adapting to node load: partway through the run a
// local user loads three nodes, the rule base stops their workers, and
// the job still completes on the remaining capacity — the framework's
// non-intrusive cycle stealing in action.
package main

import (
	"fmt"
	"log"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/vclock"
)

var epoch = time.Date(2001, 10, 8, 9, 0, 0, 0, time.UTC)

func main() {
	clk := vclock.NewVirtual(epoch)
	fw := core.New(clk, core.Config{
		Workers:      cluster.ThirteenPC(),
		Monitoring:   true,
		PollInterval: time.Second,
	})
	job := montecarlo.NewJob(montecarlo.DefaultJobConfig())

	// An "interactive user" arrives on three nodes 20 seconds in and
	// leaves a minute later.
	script := func(f *core.Framework) {
		clk.Sleep(20 * time.Second)
		for i := 0; i < 3; i++ {
			f.Cluster.Nodes[i].Sim2.Start()
		}
		clk.Sleep(60 * time.Second)
		for i := 0; i < 3; i++ {
			f.Cluster.Nodes[i].Sim2.Stop()
		}
	}

	var res core.Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, script) })
	if err != nil {
		log.Fatal(err)
	}

	price, err := job.Answer()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("American put: bracket [%.4f, %.4f], midpoint %.4f\n",
		price.Low, price.High, price.Midpoint())
	fmt.Printf("parallel time: %v over %d tasks\n", res.Metrics.ParallelTime, res.Metrics.Tasks)

	fmt.Println("\nrule-base signal log:")
	for _, ev := range res.Events {
		if ev.Err != nil {
			continue
		}
		fmt.Printf("  t=%6dms %-7s %-8s load=%3.0f%%  client=%.1fms worker=%.1fms\n",
			ev.At.Sub(epoch).Milliseconds(),
			ev.Node, ev.Signal, ev.Load,
			float64(ev.Record.ClientTime().Microseconds())/1000,
			float64(ev.Record.WorkerTime().Microseconds())/1000)
	}
}
