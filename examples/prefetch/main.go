// Web page pre-fetching: compute page ranks for a synthetic web page
// cluster with the distributed power iteration (25 strip tasks per
// iteration across a simulated 5-node cluster), then use the ranks to
// decide which linked pages a server should pre-fetch for a browsing
// session.
package main

import (
	"fmt"
	"log"
	"time"

	"gospaces/internal/apps/pagerank"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/vclock"
)

func main() {
	clk := vclock.NewVirtual(time.Date(2001, 10, 8, 9, 0, 0, 0, time.UTC))
	fw := core.New(clk, core.Config{Workers: cluster.FivePC()})
	cfg := pagerank.DefaultJobConfig()
	job := pagerank.NewJob(cfg)

	var res core.Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranked %d pages in %d iterations (%d tasks, parallel time %v)\n",
		cfg.Graph.N, res.Metrics.Phases, res.Metrics.Tasks, res.Metrics.ParallelTime)

	scores := job.Ranks()
	// Simulate a browsing session: from each visited page, pre-fetch the
	// two most important linked pages.
	session := []int{0, 7, 42, 137}
	for _, page := range session {
		next := pagerank.Prefetch(cfg.Graph, scores, page, 2)
		fmt.Printf("  visiting page %3d → pre-fetch %v", page, next)
		for _, p := range next {
			fmt.Printf("  (rank %.5f)", scores[p])
		}
		fmt.Println()
	}
}
