// Quickstart: run a small option-pricing job on a simulated 4-node
// cluster in a few lines. The virtual clock makes the run deterministic
// and instant in wall time while still reporting realistic 2001-era
// cluster timings.
package main

import (
	"fmt"
	"log"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/vclock"
)

func main() {
	clk := vclock.NewVirtual(time.Date(2001, 10, 8, 9, 0, 0, 0, time.UTC))
	fw := core.New(clk, core.Config{Workers: cluster.Uniform(4, 1.0)})

	cfg := montecarlo.DefaultJobConfig()
	cfg.TotalSims = 2000 // 20 subtasks: a quick demonstration
	job := montecarlo.NewJob(cfg)

	var res core.Result
	var err error
	clk.Run(func() {
		res, err = fw.Run(job, nil)
	})
	if err != nil {
		log.Fatal(err)
	}

	price, err := job.Answer()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("American %s: low %.4f  high %.4f  (mid %.4f, %d simulations)\n",
		cfg.Params.Type, price.Low, price.High, price.Midpoint(), price.Sims)
	fmt.Printf("tasks: %d   planning: %v   aggregation: %v   parallel: %v\n",
		res.Metrics.Tasks, res.Metrics.TaskPlanningTime,
		res.Metrics.TaskAggregationTime, res.Metrics.ParallelTime)
	for node, st := range res.WorkerStats {
		fmt.Printf("  %s: %d tasks in %v\n", node, st.TasksDone, st.WorkerTime())
	}
}
