package netmgmt

import (
	"testing"
	"time"

	"gospaces/internal/rulebase"
	"gospaces/internal/snmp"
	"gospaces/internal/sysmon"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
	"gospaces/internal/worker"
)

// fakeNode wires a machine, its SNMP agent, and a bare worker signal
// endpoint on an in-proc network address.
type fakeNode struct {
	machine *sysmon.Machine
	w       *worker.Worker
	addr    string
}

func newFakeNode(clk vclock.Clock, net *transport.Network, name string) *fakeNode {
	m := sysmon.NewMachine(clk, name, 1)
	mib := snmp.NewMIB()
	mib.Register(snmp.OIDHrProcessorLoad, func() snmp.Value {
		return snmp.Integer(int64(m.RecordSample().Usage + 0.5))
	})
	mib.Register(snmp.OIDBackgroundLoad, func() snmp.Value {
		return snmp.Integer(int64(m.BackgroundLoad() + 0.5))
	})
	agent := snmp.NewAgent("public", mib)
	srv := transport.NewServer()
	agent.Bind(srv)
	w := worker.New(worker.Config{Node: name, Clock: clk})
	w.Bind(srv)
	net.Listen(name, srv)
	return &fakeNode{machine: m, w: w, addr: name}
}

func newModule(clk vclock.Clock, net *transport.Network, nodes ...*fakeNode) *Module {
	mod := New(Config{Clock: clk, PollInterval: 500 * time.Millisecond})
	for _, n := range nodes {
		mod.Register(n.addr, &snmp.RPCExchanger{C: net.Dial(n.addr)}, net.Dial(n.addr))
	}
	return mod
}

func TestPollStartsIdleWorker(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	n := newFakeNode(clk, net, "n1")
	mod := newModule(clk, net, n)
	clk.Run(func() {
		evs := mod.PollOnce()
		if len(evs) != 1 || evs[0].Signal != rulebase.SignalStart {
			t.Errorf("events = %+v, want one Start", evs)
		}
		if st, _ := mod.WorkerState("n1"); st != rulebase.StateRunning {
			t.Errorf("tracked state = %v", st)
		}
		// Second poll with no load change: no signal.
		if evs := mod.PollOnce(); len(evs) != 0 {
			t.Errorf("redundant events %+v", evs)
		}
	})
}

func TestPauseStopResumeRestartSequence(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	n := newFakeNode(clk, net, "n1")
	mod := newModule(clk, net, n)
	clk.Run(func() {
		mod.PollOnce() // Start
		// Moderate load → Pause.
		n.machine.SetConstSource("user", 35)
		evs := mod.PollOnce()
		if len(evs) != 1 || evs[0].Signal != rulebase.SignalPause {
			t.Fatalf("events = %+v, want Pause", evs)
		}
		// Load drops → Resume.
		n.machine.ClearSource("user")
		evs = mod.PollOnce()
		if len(evs) != 1 || evs[0].Signal != rulebase.SignalResume {
			t.Fatalf("events = %+v, want Resume", evs)
		}
		// Heavy load → Stop.
		n.machine.SetConstSource("user", 95)
		evs = mod.PollOnce()
		if len(evs) != 1 || evs[0].Signal != rulebase.SignalStop {
			t.Fatalf("events = %+v, want Stop", evs)
		}
		// Load clears → Restart (not Start: the worker ran before).
		n.machine.ClearSource("user")
		evs = mod.PollOnce()
		if len(evs) != 1 || evs[0].Signal != rulebase.SignalRestart {
			t.Fatalf("events = %+v, want Restart", evs)
		}
	})
	// All five signals recorded with latency records.
	events := mod.Events()
	if len(events) != 5 {
		t.Fatalf("%d events", len(events))
	}
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("event error: %v", ev.Err)
		}
		if ev.Record.ClientTime() < 0 || ev.Record.WorkerTime() <= 0 {
			t.Fatalf("latencies not measured: %+v", ev.Record)
		}
	}
}

func TestWorkerOwnLoadDoesNotStopIt(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	n := newFakeNode(clk, net, "n1")
	mod := newModule(clk, net, n)
	clk.Run(func() {
		mod.PollOnce() // Start
		// The framework's own worker saturates the CPU — the background
		// OID excludes it, so no signal is sent.
		n.machine.SetConstSource(sysmon.WorkerSource, 100)
		if evs := mod.PollOnce(); len(evs) != 0 {
			t.Errorf("worker's own load triggered %+v", evs)
		}
		if load, _ := mod.LastLoad("n1"); load != 0 {
			t.Errorf("effective load = %v, want 0", load)
		}
	})
}

func TestFallbackToTotalLoadWithoutBackgroundOID(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	// Agent without the enterprise OID (a plain hrProcessorLoad agent).
	m := sysmon.NewMachine(clk, "plain", 1)
	mib := snmp.NewMIB()
	mib.Register(snmp.OIDHrProcessorLoad, func() snmp.Value {
		return snmp.Integer(int64(m.Usage()))
	})
	srv := transport.NewServer()
	snmp.NewAgent("public", mib).Bind(srv)
	w := worker.New(worker.Config{Node: "plain", Clock: clk})
	w.Bind(srv)
	net.Listen("plain", srv)

	mod := New(Config{Clock: clk, PollInterval: time.Second})
	mod.Register("plain", &snmp.RPCExchanger{C: net.Dial("plain")}, net.Dial("plain"))
	clk.Run(func() {
		m.SetConstSource("user", 60)
		if evs := mod.PollOnce(); len(evs) != 0 {
			t.Errorf("stopped worker under load signalled: %+v", evs)
		}
		if load, _ := mod.LastLoad("plain"); load != 60 {
			t.Errorf("load = %v, want 60 (total)", load)
		}
	})
}

func TestPollErrorRecorded(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	mod := New(Config{Clock: clk, PollInterval: time.Second})
	mod.Register("ghost", &snmp.RPCExchanger{C: net.Dial("ghost")}, net.Dial("ghost"))
	clk.Run(func() {
		evs := mod.PollOnce()
		if len(evs) != 1 || evs[0].Err == nil {
			t.Errorf("events = %+v, want one error event", evs)
		}
	})
}

func TestRunLoopPollsPeriodically(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	n := newFakeNode(clk, net, "n1")
	mod := newModule(clk, net, n)
	clk.Run(func() {
		clk.Go(mod.Run)
		clk.Sleep(2 * time.Second)
		// Raise load mid-run; the loop must notice within a poll period.
		n.machine.SetConstSource("user", 95)
		clk.Sleep(1200 * time.Millisecond)
		if st, _ := mod.WorkerState("n1"); st != rulebase.StateStopped {
			t.Errorf("state = %v, want Stopped", st)
		}
		mod.Shutdown()
	})
	// History trace exists (samples recorded by polling).
	if len(n.machine.History()) == 0 {
		t.Fatal("no CPU usage history recorded")
	}
}

// TestWorkerSelfRegistration exercises steps 1–3 of the rule-base
// protocol: the worker's SNMP client initiates participation and the
// server assigns it an ID, after which polling drives it normally.
func TestWorkerSelfRegistration(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	n := newFakeNode(clk, net, "n1")
	mod := New(Config{
		Clock:        clk,
		PollInterval: time.Second,
		DialSignal:   func(addr string) transport.Client { return net.Dial(addr) },
		DialSNMP: func(addr string) snmp.Exchanger {
			return &snmp.RPCExchanger{C: net.Dial(addr)}
		},
	})
	srv := transport.NewServer()
	mod.Bind(srv)
	net.Listen("netman", srv)

	clk.Run(func() {
		// The worker side registers itself.
		res, err := net.Dial("netman").Call("netman.Register", RegisterArgs{
			Node: "n1", SNMPAddr: n.addr, SignalAddr: n.addr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.(RegisterReply).ID <= 0 {
			t.Fatalf("reply = %+v", res)
		}
		evs := mod.PollOnce()
		if len(evs) != 1 || evs[0].Signal != rulebase.SignalStart {
			t.Fatalf("events after self-registration = %+v", evs)
		}
	})
}

func TestSelfRegistrationUnconfigured(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	mod := New(Config{Clock: clk})
	srv := transport.NewServer()
	mod.Bind(srv)
	net.Listen("netman", srv)
	clk.Run(func() {
		if _, err := net.Dial("netman").Call("netman.Register", RegisterArgs{Node: "x"}); err == nil {
			t.Fatal("unconfigured self-registration accepted")
		}
	})
}

// TestSignalDeliveryFailureRecorded: when the worker's endpoint rejects a
// signal, the event carries the error and the tracked state is unchanged.
func TestSignalDeliveryFailureRecorded(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	// A node whose SNMP agent works but whose signal endpoint always
	// errors (no worker.Signal handler bound).
	m := sysmon.NewMachine(clk, "broken", 1)
	mib := snmp.NewMIB()
	mib.Register(snmp.OIDHrProcessorLoad, func() snmp.Value { return snmp.Integer(int64(m.Usage())) })
	srv := transport.NewServer()
	snmp.NewAgent("public", mib).Bind(srv)
	net.Listen("broken", srv)

	mod := New(Config{Clock: clk, PollInterval: time.Second})
	mod.Register("broken", &snmp.RPCExchanger{C: net.Dial("broken")}, net.Dial("broken"))
	clk.Run(func() {
		evs := mod.PollOnce()
		if len(evs) != 1 || evs[0].Err == nil {
			t.Errorf("events = %+v, want one errored Start", evs)
		}
		if st, _ := mod.WorkerState("broken"); st != rulebase.StateStopped {
			t.Errorf("state advanced to %v despite delivery failure", st)
		}
	})
}

// TestTrapTriggersImmediatePoll: a load-band trap from a registered node
// causes an out-of-band monitoring round.
func TestTrapTriggersImmediatePoll(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	n := newFakeNode(clk, net, "n1")
	mod := newModule(clk, net, n)
	clk.Run(func() {
		mod.PollOnce() // Start
		n.machine.SetConstSource("user", 95)
		// Node-side watcher would fire this trap on the band crossing.
		sender := snmp.NewTrapSender("public", snmp.TrapSinkFunc(func(pkt []byte) error {
			ev, err := mod.HandleTrap("n1", pkt)
			if err != nil {
				return err
			}
			if ev == nil || ev.Signal != rulebase.SignalStop {
				t.Errorf("trap round produced %+v, want Stop", ev)
			}
			return nil
		}))
		if err := sender.Send(snmp.TimeTicks(1), snmp.OIDLoadBandTrap); err != nil {
			t.Error(err)
		}
		if st, _ := mod.WorkerState("n1"); st != rulebase.StateStopped {
			t.Errorf("state after trap = %v", st)
		}
	})
}

func TestTrapFromUnknownNodeRejected(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	mod := New(Config{Clock: clk})
	_ = net
	sender := snmp.NewTrapSender("public", snmp.TrapSinkFunc(func(pkt []byte) error {
		if _, err := mod.HandleTrap("ghost", pkt); err == nil {
			t.Error("trap from unregistered node accepted")
		}
		return nil
	}))
	clk.Run(func() {
		if err := sender.Send(snmp.TimeTicks(1), snmp.OIDLoadBandTrap); err != nil {
			t.Error(err)
		}
		// A non-load-band trap is also rejected.
		other := snmp.NewTrapSender("public", snmp.TrapSinkFunc(func(pkt []byte) error {
			if _, err := mod.HandleTrap("n1", pkt); err == nil {
				t.Error("foreign trap accepted")
			}
			return nil
		}))
		if err := other.Send(snmp.TimeTicks(1), snmp.MustOID("1.3.6.1.4.1.9.9.9")); err != nil {
			t.Error(err)
		}
	})
}

func TestUnregisterStopsMonitoring(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork(clk, transport.Loopback())
	n := newFakeNode(clk, net, "n1")
	mod := newModule(clk, net, n)
	clk.Run(func() {
		mod.PollOnce()
		mod.Unregister("n1")
		if evs := mod.PollOnce(); len(evs) != 0 {
			t.Errorf("unregistered node polled: %+v", evs)
		}
		if _, ok := mod.WorkerState("n1"); ok {
			t.Error("state still tracked after unregister")
		}
	})
}
