// Package netmgmt implements the paper's network management module: a
// monitoring agent that polls each registered worker's SNMP agent for CPU
// load, an inference engine (the rule base of package rulebase) that
// decides each worker's availability, and the rule-base protocol that
// delivers Start/Stop/Pause/Resume signals to workers (Figure 4). It also
// records, per signal, the client and worker reaction times that Figures
// 9(b), 10(b) and 11(b) report.
package netmgmt

import (
	"fmt"
	"sync"
	"time"

	"gospaces/internal/rulebase"
	"gospaces/internal/snmp"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
	"gospaces/internal/worker"
)

// Config assembles the module's dependencies.
type Config struct {
	Clock vclock.Clock
	// Engine is the inference engine; nil selects default thresholds.
	Engine *rulebase.Engine
	// PollInterval is the SNMP monitoring period. Default 1 s.
	PollInterval time.Duration
	// Community is the SNMP community string. Default "public".
	Community string
	// DialSignal and DialSNMP connect to a worker's endpoints by
	// address; they are required only when workers self-register through
	// the Bind RPC endpoint (steps 1–3 of the rule-base protocol, where
	// the SNMP client initiates its participation).
	DialSignal func(addr string) transport.Client
	DialSNMP   func(addr string) snmp.Exchanger
}

// RegisterArgs is the RPC frame a worker's SNMP client sends to join the
// monitored pool (Figure 4, steps 1–2: "Client connects and sends its
// I.P. Address to Server").
type RegisterArgs struct {
	Node       string
	SNMPAddr   string
	SignalAddr string
}

// RegisterReply acknowledges with the assigned registry identifier
// (Figure 4, step 3: "Server assigns a Client I.D.").
type RegisterReply struct {
	ID int
}

func init() {
	transport.RegisterType(RegisterArgs{})
	transport.RegisterType(RegisterReply{})
	transport.RegisterType(TrapArgs{})
}

// Event records one signal decision and its measured latencies.
type Event struct {
	At     time.Time
	Node   string
	Load   float64
	Signal rulebase.Signal
	Record worker.SignalRecord
	Err    error
}

// Module is the network management module.
type Module struct {
	cfg Config

	mu      sync.Mutex
	workers map[string]*managed
	nextID  int
	events  []Event
	quit    bool
	parker  vclock.Waiter
	running bool
}

type managed struct {
	id        int
	node      string
	mgr       *snmp.Manager
	sig       transport.Client
	state     rulebase.State
	ranBefore bool
	lastLoad  float64
}

// New returns a module with no registered workers.
func New(cfg Config) *Module {
	if cfg.Engine == nil {
		cfg.Engine = rulebase.NewEngine(rulebase.DefaultThresholds())
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.Community == "" {
		cfg.Community = "public"
	}
	return &Module{cfg: cfg, workers: make(map[string]*managed), nextID: 1}
}

// Bind exposes the module's registration endpoint on an RPC server, so
// workers can initiate their own participation as in Figure 4. Config
// must provide DialSignal and DialSNMP.
func (m *Module) Bind(srv *transport.Server) {
	srv.Handle("netman.Register", func(arg interface{}) (interface{}, error) {
		a, ok := arg.(RegisterArgs)
		if !ok {
			return nil, fmt.Errorf("netmgmt: bad register args %T", arg)
		}
		if m.cfg.DialSignal == nil || m.cfg.DialSNMP == nil {
			return nil, fmt.Errorf("netmgmt: self-registration not configured")
		}
		id := m.Register(a.Node, m.cfg.DialSNMP(a.SNMPAddr), m.cfg.DialSignal(a.SignalAddr))
		return RegisterReply{ID: id}, nil
	})
	srv.Handle("netman.Trap", func(arg interface{}) (interface{}, error) {
		a, ok := arg.(TrapArgs)
		if !ok {
			return nil, fmt.Errorf("netmgmt: bad trap args %T", arg)
		}
		if _, err := m.HandleTrap(a.Node, a.Packet); err != nil {
			return nil, err
		}
		return RegisterReply{}, nil
	})
}

// TrapArgs is the RPC frame carrying an SNMP trap to the module.
type TrapArgs struct {
	Node   string
	Packet []byte
}

// HandleTrap processes a trap from a node: a valid load-band trap
// triggers an immediate monitoring round for that node, so reaction does
// not wait out the poll interval. It returns the event generated, if any.
func (m *Module) HandleTrap(node string, packet []byte) (*Event, error) {
	trapOID, _, err := snmp.ParseTrap(packet)
	if err != nil {
		return nil, err
	}
	if !trapOID.Equal(snmp.OIDLoadBandTrap) {
		return nil, fmt.Errorf("netmgmt: unexpected trap %s from %s", trapOID, node)
	}
	m.mu.Lock()
	w := m.workers[node]
	m.mu.Unlock()
	if w == nil {
		return nil, fmt.Errorf("netmgmt: trap from unregistered node %s", node)
	}
	return m.pollWorker(w), nil
}

// Register enrols a worker node: its SNMP agent is reachable through ex
// and its signal endpoint through sig (steps 1–3 of the rule-base
// protocol). The returned ID is the worker's registry identifier.
func (m *Module) Register(node string, ex snmp.Exchanger, sig transport.Client) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &managed{
		id:    m.nextID,
		node:  node,
		mgr:   snmp.NewManager(m.cfg.Community, ex),
		sig:   sig,
		state: rulebase.StateStopped,
	}
	m.nextID++
	m.workers[node] = w
	return w.id
}

// Unregister removes a worker from monitoring.
func (m *Module) Unregister(node string) {
	m.mu.Lock()
	w := m.workers[node]
	delete(m.workers, node)
	m.mu.Unlock()
	if w != nil {
		_ = w.mgr.Close()
		_ = w.sig.Close()
	}
}

// WorkerState returns the tracked state of a node.
func (m *Module) WorkerState(node string) (rulebase.State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[node]
	if !ok {
		return rulebase.StateStopped, false
	}
	return w.state, true
}

// LastLoad returns the most recent polled load for a node.
func (m *Module) LastLoad(node string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[node]
	if !ok {
		return 0, false
	}
	return w.lastLoad, true
}

// Events returns the signal log.
func (m *Module) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// PollOnce performs one monitoring round: query every worker's CPU load
// via SNMP, run the inference engine, and deliver any signals. It returns
// the events generated this round.
func (m *Module) PollOnce() []Event {
	m.mu.Lock()
	list := make([]*managed, 0, len(m.workers))
	for _, w := range m.workers {
		list = append(list, w)
	}
	m.mu.Unlock()
	// Deterministic order by registration ID.
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && list[j-1].id > list[j].id; j-- {
			list[j-1], list[j] = list[j], list[j-1]
		}
	}

	var round []Event
	for _, w := range list {
		ev := m.pollWorker(w)
		if ev != nil {
			round = append(round, *ev)
		}
	}
	return round
}

// pollWorker monitors one node and signals it if the rule base demands.
func (m *Module) pollWorker(w *managed) *Event {
	load, err := w.mgr.GetInt(snmp.OIDHrProcessorLoad)
	if err != nil {
		return m.record(Event{At: m.cfg.Clock.Now(), Node: w.node, Err: fmt.Errorf("netmgmt: poll %s: %w", w.node, err)})
	}
	// The worker's own cycle-stealing load must not count against the
	// node: the agent exports background load on a dedicated OID when
	// available, otherwise we use total utilization.
	bg, bgErr := w.mgr.GetInt(snmp.OIDBackgroundLoad)
	effective := float64(load)
	if bgErr == nil {
		effective = float64(bg)
	}

	m.mu.Lock()
	w.lastLoad = effective
	state, ranBefore := w.state, w.ranBefore
	m.mu.Unlock()

	sig := m.cfg.Engine.Decide(state, effective, ranBefore)
	if sig == rulebase.SignalNone {
		return nil
	}
	sent := m.cfg.Clock.Now()
	res, err := w.sig.Call("worker.Signal", worker.SignalArgs{Signal: sig, SentAt: sent})
	ev := Event{At: sent, Node: w.node, Load: effective, Signal: sig}
	if err != nil {
		ev.Err = err
		return m.record(ev)
	}
	reply, ok := res.(worker.SignalReply)
	if !ok {
		ev.Err = fmt.Errorf("netmgmt: bad signal reply %T", res)
		return m.record(ev)
	}
	ev.Record = reply.Record
	m.mu.Lock()
	w.state, _ = rulebase.Apply(w.state, sig)
	if sig == rulebase.SignalStart || sig == rulebase.SignalRestart {
		w.ranBefore = true
	}
	m.mu.Unlock()
	return m.record(ev)
}

func (m *Module) record(ev Event) *Event {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
	return &ev
}

// Run polls until Shutdown, sleeping PollInterval between rounds. It must
// run as a process on the module's clock.
func (m *Module) Run() {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		panic("netmgmt: Run called twice")
	}
	m.running = true
	m.mu.Unlock()
	for {
		m.mu.Lock()
		if m.quit {
			m.mu.Unlock()
			return
		}
		m.parker = m.cfg.Clock.NewWaiter()
		p := m.parker
		m.mu.Unlock()

		m.PollOnce()

		p.Wait(m.cfg.PollInterval)
		m.mu.Lock()
		m.parker = nil
		m.mu.Unlock()
	}
}

// Shutdown stops the poll loop.
func (m *Module) Shutdown() {
	m.mu.Lock()
	m.quit = true
	p := m.parker
	m.mu.Unlock()
	if p != nil {
		p.Wake()
	}
}
