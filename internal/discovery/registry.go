// Package discovery implements a Jini-style lookup service: service
// providers register themselves with a set of attributes under a lease
// (the join protocol), and clients locate services by associative
// attribute lookup (the discovery protocol). The master module registers
// the JavaSpaces service here; workers and the network-management module
// find it by attribute template, exactly as Jini clients locate a
// JavaSpace through the lookup server in the paper's §3.
package discovery

import (
	"errors"
	"sort"
	"sync"
	"time"

	"gospaces/internal/vclock"
)

// WellKnownAddress is the address the lookup service binds on in-process
// networks — the stand-in for Jini's well-known multicast discovery port.
const WellKnownAddress = "jini.lookup"

// ServiceItem describes a registered service: a human-readable name, the
// transport address where the service listens, and free-form attributes
// used for associative lookup.
type ServiceItem struct {
	Name       string
	Address    string
	Attributes map[string]string
}

// Errors returned by the registry.
var (
	ErrNotRegistered = errors.New("discovery: registration not found or expired")
	ErrNoService     = errors.New("discovery: no service matches the template")
)

// Registry is the in-memory lookup service state.
type Registry struct {
	clock vclock.Clock

	mu     sync.Mutex
	nextID uint64
	items  map[uint64]*regEntry
}

type regEntry struct {
	item   ServiceItem
	expiry time.Time // zero = forever
}

// NewRegistry returns an empty registry on the given clock.
func NewRegistry(clock vclock.Clock) *Registry {
	return &Registry{clock: clock, nextID: 1, items: make(map[uint64]*regEntry)}
}

// Register adds item under a lease of ttl (<= 0 for no expiry) and returns
// the registration ID used for renewal and cancellation.
func (r *Registry) Register(item ServiceItem, ttl time.Duration) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextID
	r.nextID++
	e := &regEntry{item: item}
	if ttl > 0 {
		e.expiry = r.clock.Now().Add(ttl)
	}
	r.items[id] = e
	return id
}

// Renew extends registration id's lease to now+ttl.
func (r *Registry) Renew(id uint64, ttl time.Duration) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.items[id]
	if !ok || r.expiredLocked(e) {
		delete(r.items, id)
		return ErrNotRegistered
	}
	if ttl > 0 {
		e.expiry = r.clock.Now().Add(ttl)
	} else {
		e.expiry = time.Time{}
	}
	return nil
}

// Cancel removes registration id.
func (r *Registry) Cancel(id uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.items[id]
	if !ok || r.expiredLocked(e) {
		delete(r.items, id)
		return ErrNotRegistered
	}
	delete(r.items, id)
	return nil
}

// Lookup returns every live service whose attributes are a superset of
// tmpl (an empty or nil tmpl matches all), ordered by registration.
func (r *Registry) Lookup(tmpl map[string]string) []ServiceItem {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]uint64, 0, len(r.items))
	for id, e := range r.items {
		if r.expiredLocked(e) {
			delete(r.items, id)
			continue
		}
		if attrsMatch(tmpl, e.item.Attributes) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]ServiceItem, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.items[id].item)
	}
	return out
}

// LookupOne returns the first matching service or ErrNoService.
func (r *Registry) LookupOne(tmpl map[string]string) (ServiceItem, error) {
	all := r.Lookup(tmpl)
	if len(all) == 0 {
		return ServiceItem{}, ErrNoService
	}
	return all[0], nil
}

// Len returns the number of live registrations.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.items {
		if !r.expiredLocked(e) {
			n++
		}
	}
	return n
}

func (r *Registry) expiredLocked(e *regEntry) bool {
	return !e.expiry.IsZero() && r.clock.Now().After(e.expiry)
}

func attrsMatch(tmpl, attrs map[string]string) bool {
	for k, v := range tmpl {
		if attrs[k] != v {
			return false
		}
	}
	return true
}
