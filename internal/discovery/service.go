package discovery

import (
	"fmt"
	"sync"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

// RPC frames.
type registerArgs struct {
	Item ServiceItem
	TTL  time.Duration
}

type registerReply struct {
	ID uint64
}

type renewArgs struct {
	ID  uint64
	TTL time.Duration
}

type lookupArgs struct {
	Tmpl map[string]string
}

type lookupReply struct {
	Items []ServiceItem
}

func init() {
	transport.RegisterType(registerArgs{})
	transport.RegisterType(registerReply{})
	transport.RegisterType(renewArgs{})
	transport.RegisterType(lookupArgs{})
	transport.RegisterType(lookupReply{})
	transport.RegisterType(ServiceItem{})
}

// NewService exposes registry reg on srv under the "lookup." prefix.
func NewService(reg *Registry, srv *transport.Server) {
	srv.Handle("lookup.Register", func(arg interface{}) (interface{}, error) {
		a, ok := arg.(registerArgs)
		if !ok {
			return nil, fmt.Errorf("discovery: bad register args %T", arg)
		}
		return registerReply{ID: reg.Register(a.Item, a.TTL)}, nil
	})
	srv.Handle("lookup.Renew", func(arg interface{}) (interface{}, error) {
		a, ok := arg.(renewArgs)
		if !ok {
			return nil, fmt.Errorf("discovery: bad renew args %T", arg)
		}
		if err := reg.Renew(a.ID, a.TTL); err != nil {
			return nil, err
		}
		return registerReply{ID: a.ID}, nil
	})
	srv.Handle("lookup.Cancel", func(arg interface{}) (interface{}, error) {
		a, ok := arg.(renewArgs)
		if !ok {
			return nil, fmt.Errorf("discovery: bad cancel args %T", arg)
		}
		if err := reg.Cancel(a.ID); err != nil {
			return nil, err
		}
		return registerReply{ID: a.ID}, nil
	})
	srv.Handle("lookup.Lookup", func(arg interface{}) (interface{}, error) {
		a, ok := arg.(lookupArgs)
		if !ok {
			return nil, fmt.Errorf("discovery: bad lookup args %T", arg)
		}
		return lookupReply{Items: reg.Lookup(a.Tmpl)}, nil
	})
}

// Client is a remote handle on a lookup service.
type Client struct {
	c transport.Client
}

// NewClient wraps an RPC client.
func NewClient(c transport.Client) *Client { return &Client{c: c} }

// Register implements the join protocol: it registers item with the remote
// lookup service and returns a registration ID.
func (c *Client) Register(item ServiceItem, ttl time.Duration) (uint64, error) {
	res, err := c.c.Call("lookup.Register", registerArgs{Item: item, TTL: ttl})
	if err != nil {
		return 0, err
	}
	return res.(registerReply).ID, nil
}

// Renew extends a registration's lease.
func (c *Client) Renew(id uint64, ttl time.Duration) error {
	_, err := c.c.Call("lookup.Renew", renewArgs{ID: id, TTL: ttl})
	return err
}

// Cancel removes a registration.
func (c *Client) Cancel(id uint64) error {
	_, err := c.c.Call("lookup.Cancel", renewArgs{ID: id})
	return err
}

// Lookup returns services matching the attribute template.
func (c *Client) Lookup(tmpl map[string]string) ([]ServiceItem, error) {
	res, err := c.c.Call("lookup.Lookup", lookupArgs{Tmpl: tmpl})
	if err != nil {
		return nil, err
	}
	return res.(lookupReply).Items, nil
}

// LookupOne returns the first matching service, or ErrNoService.
func (c *Client) LookupOne(tmpl map[string]string) (ServiceItem, error) {
	items, err := c.Lookup(tmpl)
	if err != nil {
		return ServiceItem{}, err
	}
	if len(items) == 0 {
		return ServiceItem{}, ErrNoService
	}
	return items[0], nil
}

// KeepAlive is the standard Jini lease discipline for long-lived
// services: it renews registration id every ttl/3 so a crashed service
// ages out of the lookup registry while live ones stay listed. Run is a
// clock process (start it with vclock.Group.Go or a plain goroutine);
// Stop terminates it. A failed renewal (e.g. the registration was
// cancelled) also ends the loop.
type KeepAlive struct {
	client *Client
	clock  vclock.Clock
	id     uint64
	ttl    time.Duration

	mu     sync.Mutex
	quit   bool
	parker vclock.Waiter
	err    error
}

// NewKeepAlive returns a renewal loop for registration id.
func NewKeepAlive(client *Client, clock vclock.Clock, id uint64, ttl time.Duration) *KeepAlive {
	return &KeepAlive{client: client, clock: clock, id: id, ttl: ttl}
}

// Run renews until Stop or a renewal failure.
func (k *KeepAlive) Run() {
	interval := k.ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	for {
		k.mu.Lock()
		if k.quit {
			k.mu.Unlock()
			return
		}
		k.parker = k.clock.NewWaiter()
		p := k.parker
		k.mu.Unlock()

		if woken := p.Wait(interval); woken {
			return // stopped
		}
		if err := k.client.Renew(k.id, k.ttl); err != nil {
			k.mu.Lock()
			k.err = err
			k.mu.Unlock()
			return
		}
	}
}

// Stop ends the renewal loop.
func (k *KeepAlive) Stop() {
	k.mu.Lock()
	k.quit = true
	p := k.parker
	k.mu.Unlock()
	if p != nil {
		p.Wake()
	}
}

// Err returns the renewal error that ended the loop, if any.
func (k *KeepAlive) Err() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.err
}

// Await polls the lookup service until a service matching tmpl appears or
// maxWait elapses, sleeping interval between polls on clock-free real time
// supplied by the caller's sleep function. It models a Jini client's
// repeated discovery attempts.
func (c *Client) Await(tmpl map[string]string, attempts int, sleep func()) (ServiceItem, error) {
	for i := 0; ; i++ {
		item, err := c.LookupOne(tmpl)
		if err == nil {
			return item, nil
		}
		if err != ErrNoService && !isRemoteNoService(err) {
			return ServiceItem{}, err
		}
		if i+1 >= attempts {
			return ServiceItem{}, ErrNoService
		}
		sleep()
	}
}

func isRemoteNoService(err error) bool {
	re, ok := err.(*transport.RemoteError)
	return ok && re.Msg == ErrNoService.Error()
}
