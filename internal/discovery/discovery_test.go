package discovery

import (
	"errors"
	"testing"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

func TestRegisterAndLookup(t *testing.T) {
	r := NewRegistry(vclock.NewReal())
	r.Register(ServiceItem{Name: "space", Address: "host:1", Attributes: map[string]string{"type": "javaspace", "job": "mc"}}, 0)
	r.Register(ServiceItem{Name: "snmp", Address: "host:2", Attributes: map[string]string{"type": "snmp"}}, 0)

	got := r.Lookup(map[string]string{"type": "javaspace"})
	if len(got) != 1 || got[0].Address != "host:1" {
		t.Fatalf("lookup = %+v", got)
	}
	if all := r.Lookup(nil); len(all) != 2 {
		t.Fatalf("wildcard lookup = %+v", all)
	}
	if none := r.Lookup(map[string]string{"type": "nope"}); len(none) != 0 {
		t.Fatalf("expected empty, got %+v", none)
	}
	if _, err := r.LookupOne(map[string]string{"type": "nope"}); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v", err)
	}
}

func TestLookupOrderIsRegistrationOrder(t *testing.T) {
	r := NewRegistry(vclock.NewReal())
	for _, n := range []string{"a", "b", "c"} {
		r.Register(ServiceItem{Name: n, Attributes: map[string]string{"k": "v"}}, 0)
	}
	got := r.Lookup(map[string]string{"k": "v"})
	if len(got) != 3 || got[0].Name != "a" || got[2].Name != "c" {
		t.Fatalf("order = %+v", got)
	}
}

func TestLeaseExpiryRemovesService(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	r := NewRegistry(clk)
	clk.Run(func() {
		id := r.Register(ServiceItem{Name: "s"}, 50*time.Millisecond)
		clk.Sleep(100 * time.Millisecond)
		if n := r.Len(); n != 0 {
			t.Errorf("len = %d after expiry", n)
		}
		if err := r.Renew(id, time.Second); !errors.Is(err, ErrNotRegistered) {
			t.Errorf("renew err = %v", err)
		}
	})
}

func TestRenewKeepsServiceAlive(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	r := NewRegistry(clk)
	clk.Run(func() {
		id := r.Register(ServiceItem{Name: "s"}, 50*time.Millisecond)
		for i := 0; i < 4; i++ {
			clk.Sleep(30 * time.Millisecond)
			if err := r.Renew(id, 50*time.Millisecond); err != nil {
				t.Errorf("renew %d: %v", i, err)
			}
		}
		if n := r.Len(); n != 1 {
			t.Errorf("len = %d, want 1", n)
		}
	})
}

func TestCancel(t *testing.T) {
	r := NewRegistry(vclock.NewReal())
	id := r.Register(ServiceItem{Name: "s"}, 0)
	if err := r.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := r.Cancel(id); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("double cancel err = %v", err)
	}
	if r.Len() != 0 {
		t.Fatal("registry not empty")
	}
}

func TestRemoteLookupService(t *testing.T) {
	clk := vclock.NewReal()
	reg := NewRegistry(clk)
	srv := transport.NewServer()
	NewService(reg, srv)
	net := transport.NewNetwork(clk, transport.Loopback())
	net.Listen(WellKnownAddress, srv)

	c := NewClient(net.Dial(WellKnownAddress))
	id, err := c.Register(ServiceItem{Name: "space", Address: "spaces/0", Attributes: map[string]string{"type": "javaspace"}}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	item, err := c.LookupOne(map[string]string{"type": "javaspace"})
	if err != nil {
		t.Fatal(err)
	}
	if item.Address != "spaces/0" {
		t.Fatalf("item = %+v", item)
	}
	if err := c.Renew(id, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LookupOne(map[string]string{"type": "javaspace"}); err == nil {
		t.Fatal("lookup after cancel succeeded")
	}
}

func TestKeepAliveRenewsUntilStopped(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	reg := NewRegistry(clk)
	srv := transport.NewServer()
	NewService(reg, srv)
	net := transport.NewNetwork(clk, transport.Loopback())
	net.Listen(WellKnownAddress, srv)
	c := NewClient(net.Dial(WellKnownAddress))

	clk.Run(func() {
		id, err := c.Register(ServiceItem{Name: "svc", Attributes: map[string]string{"t": "x"}}, 300*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		ka := NewKeepAlive(c, clk, id, 300*time.Millisecond)
		clk.Go(ka.Run)
		// Well past the original lease, the service is still registered.
		clk.Sleep(2 * time.Second)
		if reg.Len() != 1 {
			t.Errorf("service expired despite keep-alive")
		}
		ka.Stop()
		// With renewal stopped, the lease ages out.
		clk.Sleep(time.Second)
		if reg.Len() != 0 {
			t.Errorf("service still registered after keep-alive stopped")
		}
		if ka.Err() != nil {
			t.Errorf("unexpected error: %v", ka.Err())
		}
	})
}

func TestKeepAliveEndsOnRenewFailure(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	reg := NewRegistry(clk)
	srv := transport.NewServer()
	NewService(reg, srv)
	net := transport.NewNetwork(clk, transport.Loopback())
	net.Listen(WellKnownAddress, srv)
	c := NewClient(net.Dial(WellKnownAddress))

	clk.Run(func() {
		id, err := c.Register(ServiceItem{Name: "svc"}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Cancel(id); err != nil {
			t.Fatal(err)
		}
		ka := NewKeepAlive(c, clk, id, time.Second)
		clk.Go(ka.Run) // first renewal fails; the loop must end, not hang
		clk.Sleep(2 * time.Second)
		if ka.Err() == nil {
			t.Error("renewal failure not surfaced")
		}
	})
}

func TestAwaitPollsUntilServiceAppears(t *testing.T) {
	clk := vclock.NewReal()
	reg := NewRegistry(clk)
	srv := transport.NewServer()
	NewService(reg, srv)
	net := transport.NewNetwork(clk, transport.Loopback())
	net.Listen(WellKnownAddress, srv)
	c := NewClient(net.Dial(WellKnownAddress))

	polls := 0
	item, err := c.Await(map[string]string{"type": "x"}, 10, func() {
		polls++
		if polls == 3 {
			reg.Register(ServiceItem{Name: "late", Attributes: map[string]string{"type": "x"}}, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if item.Name != "late" || polls != 3 {
		t.Fatalf("item = %+v after %d polls", item, polls)
	}

	if _, err := c.Await(map[string]string{"type": "never"}, 3, func() {}); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v", err)
	}
}
