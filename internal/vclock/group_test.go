package vclock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupWaitOnVirtualClock(t *testing.T) {
	v := NewVirtual(epoch)
	var n int64
	v.Run(func() {
		g := NewGroup(v)
		for i := 0; i < 5; i++ {
			d := time.Duration(i+1) * time.Second
			g.Go(func() {
				v.Sleep(d)
				atomic.AddInt64(&n, 1)
			})
		}
		// The root parks through the clock, so virtual time advances
		// while it waits.
		g.Wait()
	})
	if n != 5 {
		t.Fatalf("finished %d, want 5", n)
	}
	if got := v.Now().Sub(epoch); got != 5*time.Second {
		t.Fatalf("elapsed %v, want 5s", got)
	}
}

func TestGroupWaitEmpty(t *testing.T) {
	g := NewGroup(NewReal())
	g.Wait() // must not block
}

func TestGroupWaitRealClock(t *testing.T) {
	g := NewGroup(NewReal())
	var done atomic.Bool
	g.Go(func() {
		time.Sleep(10 * time.Millisecond)
		done.Store(true)
	})
	g.Wait()
	if !done.Load() {
		t.Fatal("Wait returned before the goroutine finished")
	}
}

func TestGroupMultipleWaiters(t *testing.T) {
	v := NewVirtual(epoch)
	var woken int64
	v.Run(func() {
		g := NewGroup(v)
		g.Go(func() { v.Sleep(time.Second) })
		for i := 0; i < 3; i++ {
			v.Go(func() {
				g.Wait()
				atomic.AddInt64(&woken, 1)
			})
		}
		g.Wait()
	})
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}
