package vclock

import "sync"

// Group spawns processes on a clock and waits for them: on a Virtual
// clock the processes are registered with the scheduler; on the real
// clock they are plain goroutines. Wait parks through the clock (not a
// bare sync.WaitGroup), so a registered process can Wait without stalling
// virtual-time advance.
type Group struct {
	clock Clock

	mu      sync.Mutex
	active  int
	waiters []Waiter
}

// NewGroup returns a Group on clock.
func NewGroup(clock Clock) *Group { return &Group{clock: clock} }

// Go runs fn as a process on the group's clock.
func (g *Group) Go(fn func()) {
	g.mu.Lock()
	g.active++
	g.mu.Unlock()
	run := func() {
		fn()
		g.done()
	}
	if v, ok := g.clock.(*Virtual); ok {
		v.Go(run)
		return
	}
	go run()
}

func (g *Group) done() {
	g.mu.Lock()
	g.active--
	var toWake []Waiter
	if g.active == 0 {
		toWake = g.waiters
		g.waiters = nil
	}
	g.mu.Unlock()
	for _, w := range toWake {
		w.Wake()
	}
}

// Wait blocks until every process spawned with Go has finished. Multiple
// processes may Wait concurrently.
func (g *Group) Wait() {
	g.mu.Lock()
	if g.active == 0 {
		g.mu.Unlock()
		return
	}
	w := g.clock.NewWaiter()
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	w.Wait(0)
}
