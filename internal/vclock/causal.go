package vclock

import "sync/atomic"

// Causal is a Lamport logical clock: a monotone counter advanced on every
// local event and merged forward on every observed remote stamp. Unlike
// the package's time clocks it measures causality, not duration — if event
// A could have influenced event B (same process, or a message from A's
// process reached B's first), A's stamp is strictly smaller. Per-node
// event logs stamped from a Causal therefore merge into one total order
// consistent with every per-node order (see obs.MergeTimelines).
//
// All methods are safe for concurrent use and safe on a nil *Causal
// (reads return 0, advances are no-ops), matching the observability
// layer's nil-is-off convention.
type Causal struct {
	v atomic.Uint64
}

// Tick advances the clock for one local event and returns the event's
// stamp.
func (c *Causal) Tick() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Add(1)
}

// Observe merges a stamp received from another clock: the local clock
// jumps past it, so every subsequent local event is ordered after the
// remote event that carried the stamp. It returns the stamp of the
// receipt itself (max(local, remote)+1).
func (c *Causal) Observe(remote uint64) uint64 {
	if c == nil {
		return 0
	}
	for {
		cur := c.v.Load()
		next := cur + 1
		if remote >= cur {
			next = remote + 1
		}
		if c.v.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Now reads the current stamp without advancing the clock.
func (c *Causal) Now() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}
