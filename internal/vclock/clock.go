// Package vclock provides a clock abstraction with two implementations: a
// real clock backed by package time, and a deterministic discrete-event
// virtual clock used to run large simulated-cluster experiments quickly.
//
// The virtual clock tracks a set of registered goroutines ("processes").
// Time advances only when every registered process is blocked on the clock
// (sleeping, waiting on a timer, or parked in WaitOn). This makes runs that
// involve tens of simulated nodes deterministic and independent of host
// speed, which is what lets the experiment harness reproduce the paper's
// 13-node cluster on a laptop.
package vclock

import "time"

// Clock is the time source used throughout the framework. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling process for d. On the virtual clock the
	// calling goroutine must be registered (via Go or Register).
	Sleep(d time.Duration)
	// After returns a channel that receives the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// NewWaiter returns a Waiter bound to this clock. Waiters are the
	// clock-aware replacement for bare condition variables: a process
	// parked in Waiter.Wait counts as blocked for virtual-time advance.
	NewWaiter() Waiter
}

// Waiter parks the calling process until another process calls Wake, or
// until a timeout elapses on the clock. A Waiter is single-use: after Wait
// returns it must not be reused.
type Waiter interface {
	// Wait blocks until Wake is called or timeout elapses. timeout <= 0
	// means wait forever. It reports whether the waiter was woken (true)
	// as opposed to timing out (false).
	Wait(timeout time.Duration) bool
	// Wake unparks the waiter. It is safe to call multiple times and
	// concurrently with Wait; calls after the first are no-ops.
	Wake()
}

type realWaiter struct {
	ch chan struct{}
}

func (w *realWaiter) Wait(timeout time.Duration) bool {
	if timeout <= 0 {
		<-w.ch
		return true
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return true
	case <-t.C:
		return false
	}
}

func (w *realWaiter) Wake() {
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

// NewWaiter implements Clock.
func (*Real) NewWaiter() Waiter { return &realWaiter{ch: make(chan struct{}, 1)} }

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// NewReal returns the wall clock.
func NewReal() *Real { return &Real{} }

// Now implements Clock.
func (*Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (*Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (*Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (*Real) Since(t time.Time) time.Duration { return time.Since(t) }
