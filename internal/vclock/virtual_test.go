package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2001, time.October, 8, 0, 0, 0, 0, time.UTC)

func TestVirtualSleepAdvancesTime(t *testing.T) {
	v := NewVirtual(epoch)
	var end time.Time
	v.Run(func() {
		v.Sleep(5 * time.Second)
		end = v.Now()
	})
	if got, want := end.Sub(epoch), 5*time.Second; got != want {
		t.Fatalf("advanced %v, want %v", got, want)
	}
}

func TestVirtualSleepZeroOrNegative(t *testing.T) {
	v := NewVirtual(epoch)
	v.Run(func() {
		v.Sleep(0)
		v.Sleep(-time.Second)
	})
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("time moved to %v on zero sleeps", got)
	}
}

func TestVirtualInterleavedSleepers(t *testing.T) {
	v := NewVirtual(epoch)
	var mu sync.Mutex
	var order []string
	log := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	v.Run(func() {
		v.Go(func() {
			v.Sleep(3 * time.Second)
			log("b")
		})
		v.Go(func() {
			v.Sleep(1 * time.Second)
			log("a")
			v.Sleep(5 * time.Second)
			log("c")
		})
	})
	want := []string{"a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got, want := v.Now().Sub(epoch), 6*time.Second; got != want {
		t.Fatalf("final time %v, want %v", got, want)
	}
}

func TestVirtualManySleepersDeterministic(t *testing.T) {
	const n = 50
	run := func() time.Duration {
		v := NewVirtual(epoch)
		var total int64
		v.Run(func() {
			for i := 0; i < n; i++ {
				d := time.Duration(i%7+1) * time.Millisecond
				v.Go(func() {
					v.Sleep(d)
					atomic.AddInt64(&total, int64(d))
				})
			}
		})
		return v.Now().Sub(epoch)
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d elapsed %v, first %v", i, got, first)
		}
	}
	if first != 7*time.Millisecond {
		t.Fatalf("elapsed %v, want 7ms (max sleep)", first)
	}
}

func TestVirtualWaiterWake(t *testing.T) {
	v := NewVirtual(epoch)
	var woken bool
	v.Run(func() {
		w := v.NewWaiter()
		v.Go(func() {
			v.Sleep(2 * time.Second)
			w.Wake()
		})
		woken = w.Wait(0)
	})
	if !woken {
		t.Fatal("Wait reported timeout, want woken")
	}
	if got := v.Now().Sub(epoch); got != 2*time.Second {
		t.Fatalf("elapsed %v, want 2s", got)
	}
}

func TestVirtualWaiterTimeout(t *testing.T) {
	v := NewVirtual(epoch)
	var woken bool
	v.Run(func() {
		w := v.NewWaiter()
		woken = w.Wait(3 * time.Second)
	})
	if woken {
		t.Fatal("Wait reported woken, want timeout")
	}
	if got := v.Now().Sub(epoch); got != 3*time.Second {
		t.Fatalf("elapsed %v, want 3s", got)
	}
}

func TestVirtualWaiterWakeBeforeWait(t *testing.T) {
	v := NewVirtual(epoch)
	var woken bool
	v.Run(func() {
		w := v.NewWaiter()
		w.Wake()
		woken = w.Wait(time.Second)
	})
	if !woken {
		t.Fatal("pre-woken waiter reported timeout")
	}
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("time advanced to %v, want no advance", got)
	}
}

func TestVirtualWaiterDoubleWake(t *testing.T) {
	v := NewVirtual(epoch)
	v.Run(func() {
		w := v.NewWaiter()
		v.Go(func() {
			w.Wake()
			w.Wake() // second call must be a no-op
		})
		if !w.Wait(0) {
			t.Error("want woken")
		}
	})
}

func TestVirtualWaiterWokenBeforeTimeout(t *testing.T) {
	v := NewVirtual(epoch)
	var woken bool
	v.Run(func() {
		w := v.NewWaiter()
		v.Go(func() {
			v.Sleep(1 * time.Second)
			w.Wake()
		})
		woken = w.Wait(10 * time.Second)
	})
	if !woken {
		t.Fatal("want woken before timeout")
	}
	if got := v.Now().Sub(epoch); got != 1*time.Second {
		t.Fatalf("elapsed %v, want 1s (stale timeout must not block exit)", got)
	}
}

func TestVirtualAfter(t *testing.T) {
	v := NewVirtual(epoch)
	var fired time.Time
	v.Run(func() {
		ch := v.After(4 * time.Second)
		// Another process drives time forward past the deadline.
		v.Sleep(10 * time.Second)
		select {
		case fired = <-ch:
		default:
			t.Error("After channel did not fire by t+10s")
		}
	})
	if want := epoch.Add(4 * time.Second); !fired.Equal(want) {
		t.Fatalf("After fired at %v, want %v", fired, want)
	}
}

func TestVirtualDeadlockPanics(t *testing.T) {
	v := NewVirtual(epoch)
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	v.Run(func() {
		w := v.NewLabeledWaiter("test-block")
		w.Wait(0) // nobody will ever wake this
	})
}

func TestVirtualSimultaneousDeadlines(t *testing.T) {
	v := NewVirtual(epoch)
	var n int64
	v.Run(func() {
		for i := 0; i < 10; i++ {
			v.Go(func() {
				v.Sleep(time.Second)
				atomic.AddInt64(&n, 1)
			})
		}
	})
	if n != 10 {
		t.Fatalf("woke %d sleepers, want 10", n)
	}
	if got := v.Now().Sub(epoch); got != time.Second {
		t.Fatalf("elapsed %v, want 1s", got)
	}
}

func TestVirtualSince(t *testing.T) {
	v := NewVirtual(epoch)
	v.Run(func() {
		start := v.Now()
		v.Sleep(7 * time.Minute)
		if got := v.Since(start); got != 7*time.Minute {
			t.Errorf("Since = %v, want 7m", got)
		}
	})
}

func TestVirtualStats(t *testing.T) {
	v := NewVirtual(epoch)
	procs, blocked, timers := v.Stats()
	if procs != 0 || blocked != 0 || timers != 0 {
		t.Fatalf("fresh clock stats = %d,%d,%d; want zeros", procs, blocked, timers)
	}
	v.Run(func() { v.Sleep(time.Millisecond) })
	procs, _, _ = v.Stats()
	if procs != 0 {
		t.Fatalf("procs after Run = %d, want 0", procs)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
	w := c.NewWaiter()
	go w.Wake()
	if !w.Wait(time.Second) {
		t.Fatal("real waiter not woken")
	}
	w2 := c.NewWaiter()
	if w2.Wait(time.Millisecond) {
		t.Fatal("real waiter should have timed out")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("real After never fired")
	}
}
