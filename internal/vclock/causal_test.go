package vclock

import (
	"sync"
	"testing"
)

func TestCausalTickMonotone(t *testing.T) {
	var c Causal
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		s := c.Tick()
		if s <= prev {
			t.Fatalf("tick %d: stamp %d not after %d", i, s, prev)
		}
		prev = s
	}
}

func TestCausalObserveJumpsForward(t *testing.T) {
	var c Causal
	c.Tick()
	got := c.Observe(50)
	if got != 51 {
		t.Fatalf("Observe(50) = %d, want 51", got)
	}
	// A stale remote stamp must still advance the clock.
	if got := c.Observe(3); got != 52 {
		t.Fatalf("Observe(3) = %d, want 52", got)
	}
	if c.Now() != 52 {
		t.Fatalf("Now() = %d, want 52", c.Now())
	}
}

func TestCausalNilSafe(t *testing.T) {
	var c *Causal
	if c.Tick() != 0 || c.Observe(7) != 0 || c.Now() != 0 {
		t.Fatal("nil Causal must be inert")
	}
}

func TestCausalConcurrentUnique(t *testing.T) {
	var c Causal
	const workers, each = 8, 500
	stamps := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				stamps[w] = append(stamps[w], c.Tick())
			}
		}()
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*each)
	for _, list := range stamps {
		prev := uint64(0)
		for _, s := range list {
			if s <= prev {
				t.Fatalf("per-goroutine stamps not increasing: %d after %d", s, prev)
			}
			prev = s
			if seen[s] {
				t.Fatalf("duplicate stamp %d", s)
			}
			seen[s] = true
		}
	}
}
