package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event clock. Goroutines participate by
// being spawned through Go (or bracketing themselves with Register and
// Unregister). Virtual time advances only when every registered process is
// blocked on the clock — in Sleep or in a Waiter — at which point the clock
// jumps to the earliest pending deadline and wakes the processes due then.
//
// If every process is blocked and no deadline is pending, the system can
// never make progress; Virtual panics with a diagnostic rather than hanging,
// because in this codebase that always indicates a protocol bug (for
// example, a worker blocked forever on an empty space with no producer).
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	procs   int // registered processes
	blocked int // of those, currently parked on the clock
	timers  timerHeap
	seq     int64 // tiebreak for deterministic ordering of equal deadlines
	wg      sync.WaitGroup
	labels  map[int64]string // parked process labels for deadlock diagnostics
	nextID  int64
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start, labels: make(map[int64]string)}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Go spawns fn as a registered process. Run waits for all processes spawned
// this way.
func (v *Virtual) Go(fn func()) {
	v.register()
	go func() {
		defer v.unregister()
		fn()
	}()
}

// Run registers the root process, executes it in the calling goroutine,
// and then blocks until every process spawned with Go has finished. It is
// the entry point used by the experiment harness. Running root inline
// means a deadlock panic triggered by the root process propagates to the
// caller, where tests can recover it.
func (v *Virtual) Run(root func()) {
	v.register()
	func() {
		defer v.unregister()
		root()
	}()
	v.wg.Wait()
}

func (v *Virtual) register() {
	v.mu.Lock()
	v.procs++
	v.mu.Unlock()
	v.wg.Add(1)
}

func (v *Virtual) unregister() {
	defer v.wg.Done()
	v.mu.Lock()
	v.procs--
	v.maybeAdvanceLocked() // on deadlock: unlocks, then panics
	v.mu.Unlock()
}

// Sleep implements Clock. The caller must be a registered process.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	w := v.newWaiter("sleep")
	w.wait(d, true)
}

// After implements Clock. The returned channel fires when virtual time
// reaches now+d. Note that a process selecting on this channel without also
// being parked in a Waiter is invisible to the scheduler; inside framework
// code prefer Sleep or NewWaiter.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	deadline := v.now.Add(d)
	v.pushTimerLocked(deadline, func(t time.Time) {
		ch <- t
	})
	v.mu.Unlock()
	return ch
}

// NewWaiter implements Clock.
func (v *Virtual) NewWaiter() Waiter { return v.newWaiter("waiter") }

// NewLabeledWaiter returns a Waiter whose park site is annotated with label
// in deadlock diagnostics.
func (v *Virtual) NewLabeledWaiter(label string) Waiter { return v.newWaiter(label) }

func (v *Virtual) newWaiter(label string) *virtualWaiter {
	v.mu.Lock()
	id := v.nextID
	v.nextID++
	v.mu.Unlock()
	return &virtualWaiter{v: v, ch: make(chan bool, 1), label: label, id: id}
}

type virtualWaiter struct {
	v     *Virtual
	ch    chan bool // value: woken (true) vs timed out (false)
	label string
	id    int64
	done  bool // guarded by v.mu
}

// Wait implements Waiter.
func (w *virtualWaiter) Wait(timeout time.Duration) bool {
	return w.wait(timeout, false)
}

// wait parks the process. If isSleep, a timeout firing is the normal path
// and reports true.
func (w *virtualWaiter) wait(timeout time.Duration, isSleep bool) bool {
	v := w.v
	v.mu.Lock()
	if w.done {
		// Woken before we parked.
		v.mu.Unlock()
		return true
	}
	if timeout > 0 {
		deadline := v.now.Add(timeout)
		v.pushTimerLocked(deadline, func(time.Time) {
			w.wakeLocked(false)
		})
	}
	v.blocked++
	v.labels[w.id] = w.label
	v.maybeAdvanceLocked()
	v.mu.Unlock()

	woken := <-w.ch
	if isSleep {
		return true
	}
	return woken
}

// Wake implements Waiter.
func (w *virtualWaiter) Wake() {
	v := w.v
	v.mu.Lock()
	w.wakeLocked(true)
	v.mu.Unlock()
}

// wakeLocked unparks the waiter; caller holds v.mu. The blocked count is
// decremented under the lock, before the parked goroutine resumes, so the
// scheduler never sees an in-flight wakeup as a deadlock.
func (w *virtualWaiter) wakeLocked(woken bool) {
	if w.done {
		return
	}
	w.done = true
	if _, parked := w.v.labels[w.id]; parked {
		w.v.blocked--
		delete(w.v.labels, w.id)
	}
	w.ch <- woken
}

// timer is a pending virtual-time event.
type timer struct {
	deadline time.Time
	seq      int64
	fire     func(time.Time)
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

func (v *Virtual) pushTimerLocked(deadline time.Time, fire func(time.Time)) {
	v.seq++
	heap.Push(&v.timers, &timer{deadline: deadline, seq: v.seq, fire: fire})
}

// maybeAdvanceLocked advances virtual time if every registered process is
// blocked. Caller holds v.mu.
func (v *Virtual) maybeAdvanceLocked() {
	for v.procs > 0 && v.blocked == v.procs {
		if v.timers.Len() == 0 {
			// Release the lock before panicking: deferred unregisters in
			// unwinding goroutines re-acquire it and must not wedge.
			msg := "vclock: deadlock — all processes blocked with no pending timers; parked at: " + v.parkSitesLocked()
			v.mu.Unlock()
			panic(msg)
		}
		t := heap.Pop(&v.timers).(*timer)
		if t.deadline.After(v.now) {
			v.now = t.deadline
		}
		t.fire(v.now)
		// Fire every timer sharing this deadline so simultaneous events
		// wake together (deterministically ordered by seq).
		for v.timers.Len() > 0 && v.timers[0].deadline.Equal(t.deadline) {
			heap.Pop(&v.timers).(*timer).fire(v.now)
		}
	}
}

func (v *Virtual) parkSitesLocked() string {
	sites := make([]string, 0, len(v.labels))
	for _, l := range v.labels {
		sites = append(sites, l)
	}
	sort.Strings(sites)
	if len(sites) == 0 {
		return "(none)"
	}
	return strings.Join(sites, ", ")
}

// Stats returns a snapshot of scheduler state, for tests and diagnostics.
func (v *Virtual) Stats() (procs, blocked, pendingTimers int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.procs, v.blocked, v.timers.Len()
}

// String describes the clock state.
func (v *Virtual) String() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return fmt.Sprintf("vclock.Virtual{now=%s procs=%d blocked=%d timers=%d}",
		v.now.Format(time.RFC3339Nano), v.procs, v.blocked, v.timers.Len())
}
