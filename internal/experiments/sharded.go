package experiments

import (
	"fmt"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/metrics"
	"gospaces/internal/vclock"
)

// ShardedPoint is one (workers, shards) cell of the sharded-space
// scalability sweep.
type ShardedPoint struct {
	Workers          int
	Shards           int
	ParallelTime     time.Duration
	TaskPlanningTime time.Duration
	MaxWorkerTime    time.Duration
}

// shardedWorkerCounts are the cluster sizes of the sweep.
var shardedWorkerCounts = []int{1, 2, 4, 8, 12}

// shardedJobConfig sizes the option-pricing job for the sharded sweep: a
// smaller bag of tasks than Figure 6 with cheap planning, so the knee is
// set by space-server saturation (SpaceOpCost) rather than by the
// master's serial planning work — the bottleneck sharding removes.
func shardedJobConfig() montecarlo.JobConfig {
	cfg := montecarlo.DefaultJobConfig()
	cfg.TotalSims = 3000
	cfg.SimsPerTask = 50 // → 60 subtasks
	cfg.WorkPerSubtask = 100 * time.Millisecond
	cfg.PlanningCostPerTask = 20 * time.Millisecond
	cfg.AggregationCostPerResult = 5 * time.Millisecond
	cfg.ShardSpread = true // per-task keys: the bag spreads across shards
	return cfg
}

// ShardedKnee reruns the Figure-6-shaped sweep against a saturating space
// server (every space operation costs 5 ms of modeled server CPU) with 1
// and with 4 shards. With one shard the server's FIFO queue saturates as
// workers are added and the parallel-time curve flattens early; with four
// shards the same operation stream spreads over four servers and the knee
// moves right.
func ShardedKnee() ([]ShardedPoint, error) {
	var out []ShardedPoint
	for _, shards := range []int{1, 4} {
		for _, n := range shardedWorkerCounts {
			clk := vclock.NewVirtual(epoch)
			fw := core.New(clk, withObs(core.Config{
				Workers:     cluster.Uniform(n, 1.0),
				Shards:      shards,
				SpaceOpCost: 8 * time.Millisecond,
			}))
			job := montecarlo.NewJob(shardedJobConfig())
			var res core.Result
			var err error
			clk.Run(func() { res, err = fw.Run(job, nil) })
			if err != nil {
				return nil, fmt.Errorf("experiments: sharded %d workers × %d shards: %w", n, shards, err)
			}
			out = append(out, ShardedPoint{
				Workers:          n,
				Shards:           shards,
				ParallelTime:     res.Metrics.ParallelTime,
				TaskPlanningTime: res.Metrics.TaskPlanningTime,
				MaxWorkerTime:    res.MaxWorkerTime,
			})
		}
	}
	return out, nil
}

// ShardedTable renders the sweep as a figure-style series.
func ShardedTable(pts []ShardedPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Sharded space: parallel time vs workers (1 vs 4 shards, 5 ms/op server)",
		Columns: []string{"workers", "shards", "parallel_ms", "planning_ms", "max_worker_ms"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprint(p.Workers), fmt.Sprint(p.Shards), metrics.Ms(p.ParallelTime),
			metrics.Ms(p.TaskPlanningTime), metrics.Ms(p.MaxWorkerTime))
	}
	return t
}
