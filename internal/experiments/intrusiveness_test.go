package experiments

import (
	"strings"
	"testing"
)

// The central claim of the paper: monitoring and reacting to system state
// minimizes intrusiveness. The adaptive run must leave the local user's
// job nearly unaffected, while aggressive (unmonitored) cycle stealing
// slows it down heavily.
func TestIntrusivenessAdaptiveProtectsLocalUser(t *testing.T) {
	results, err := Intrusiveness()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !results[0].Adaptive || results[1].Adaptive {
		t.Fatalf("unexpected results %+v", results)
	}
	adaptive, aggressive := results[0], results[1]

	if adaptive.BaselineTime <= 0 || adaptive.UserJobTime <= 0 {
		t.Fatalf("degenerate measurement %+v", adaptive)
	}
	// With the rule base, the user's job finishes within 2x of its
	// idle-node time (it pays at most until the next poll plus the
	// worker's in-flight task).
	if s := adaptive.Slowdown(); s > 2.0 {
		t.Fatalf("adaptive slowdown %.2fx, want <= 2x", s)
	}
	// Without monitoring, the worker competes for the CPU the whole
	// time; the user suffers badly.
	if s := aggressive.Slowdown(); s < 3.0 {
		t.Fatalf("aggressive slowdown only %.2fx — contention model broken?", s)
	}
	// And the adaptive run must be strictly kinder.
	if adaptive.UserJobTime >= aggressive.UserJobTime {
		t.Fatalf("adaptive user time %v not better than aggressive %v",
			adaptive.UserJobTime, aggressive.UserJobTime)
	}
	// Both framework runs completed.
	if adaptive.FrameworkTime <= 0 || aggressive.FrameworkTime <= 0 {
		t.Fatal("framework runs did not complete")
	}

	tab := IntrusivenessTable(results)
	if !strings.Contains(tab.String(), "adaptive (rule base)") {
		t.Fatalf("table broken:\n%s", tab)
	}
}

// Coarser tasks hold the node longer after a Stop (signals never preempt
// a task), so the user's wait grows with task granularity.
func TestGranularityCoarserTasksIntrudeLonger(t *testing.T) {
	pts, err := Granularity()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Decomposition sanity: 10 000 sims at 50/250/1250 per task.
	if pts[0].Subtasks != 200 || pts[1].Subtasks != 40 || pts[2].Subtasks != 8 {
		t.Fatalf("subtask counts: %d, %d, %d", pts[0].Subtasks, pts[1].Subtasks, pts[2].Subtasks)
	}
	// Monotone: finer granularity → shorter user wait.
	if !(pts[0].UserJobTime <= pts[1].UserJobTime && pts[1].UserJobTime < pts[2].UserJobTime) {
		t.Fatalf("intrusion not monotone in granularity: %v, %v, %v",
			pts[0].UserJobTime, pts[1].UserJobTime, pts[2].UserJobTime)
	}
	if !strings.Contains(GranularityTable(pts).String(), "sims_per_task") {
		t.Fatal("table broken")
	}
}
