package experiments

import (
	"testing"
	"time"
)

// TestShardedKneeMovesRight: against a saturating space server, sharding
// the space shifts the scalability knee to the right — with one shard the
// curve is flat by 2→4 workers and degrades badly beyond, with four shards
// it still scales at 4 workers, and planning and parallel time on the full
// cluster both drop. Deterministic on the virtual clock.
func TestShardedKneeMovesRight(t *testing.T) {
	pts, err := ShardedKnee()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*len(shardedWorkerCounts) {
		t.Fatalf("%d points", len(pts))
	}
	p := func(shards, workers int) ShardedPoint {
		for _, pt := range pts {
			if pt.Shards == shards && pt.Workers == workers {
				return pt
			}
		}
		t.Fatalf("no point for %d shards × %d workers", shards, workers)
		return ShardedPoint{}
	}
	par := func(shards, workers int) time.Duration { return p(shards, workers).ParallelTime }

	// The single-server knee: adding workers past the knee makes the run
	// *slower* (queueing at the space server), so 12 workers lose badly to
	// the single-shard optimum.
	best1 := par(1, 1)
	for _, n := range shardedWorkerCounts {
		if d := par(1, n); d < best1 {
			best1 = d
		}
	}
	if float64(par(1, 12)) < 1.3*float64(best1) {
		t.Fatalf("single shard shows no saturation knee: best %v, 12 workers %v", best1, par(1, 12))
	}

	// Knee position: with one shard the 2→4 step is already flat (<10%
	// gain); with four shards it still yields a real speedup (>10%).
	gain := func(shards int) float64 { return float64(par(shards, 4)) / float64(par(shards, 2)) }
	if gain(1) < 0.90 {
		t.Fatalf("single shard still scaling 2→4 (%v → %v); knee calibration off", par(1, 2), par(1, 4))
	}
	if gain(4) > 0.90 {
		t.Fatalf("four shards not scaling 2→4 (%v → %v)", par(4, 2), par(4, 4))
	}

	// On the full cluster, four shards beat one across the board.
	if float64(par(4, 12)) > 0.85*float64(par(1, 12)) {
		t.Fatalf("parallel time at 12 workers: 4 shards %v not clearly under 1 shard %v",
			par(4, 12), par(1, 12))
	}
	if pl4, pl1 := p(4, 12).TaskPlanningTime, p(1, 12).TaskPlanningTime; float64(pl4) > 0.85*float64(pl1) {
		t.Fatalf("planning at 12 workers: 4 shards %v not clearly under 1 shard %v", pl4, pl1)
	}
	// And the best point overall improves: the sharded optimum beats the
	// single-shard optimum.
	best4 := par(4, 1)
	for _, n := range shardedWorkerCounts {
		if d := par(4, n); d < best4 {
			best4 = d
		}
	}
	if float64(best4) > 0.9*float64(best1) {
		t.Fatalf("sharded optimum %v does not beat single-shard optimum %v", best4, best1)
	}
}
