package experiments

import "testing"

// TestFaultSweepOverheadGrows: the sweep completes every cell (no cell
// loses or duplicates work — FaultSweep itself checks the simulation
// budget), the fault-free baseline injects nothing, and raising the crash
// rate injects real crashes that cost real completion time.
func TestFaultSweepOverheadGrows(t *testing.T) {
	pts, err := FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(faultSweepRates) {
		t.Fatalf("%d points, want %d", len(pts), len(faultSweepRates))
	}
	if pts[0].CrashRate != 0 || pts[0].Crashes != 0 || pts[0].OverheadPct != 0 {
		t.Fatalf("baseline point injected faults: %+v", pts[0])
	}
	top := pts[len(pts)-1]
	if top.Crashes == 0 {
		t.Fatalf("top rate %.2f injected no crashes", top.CrashRate)
	}
	if top.OverheadPct <= 0 {
		t.Fatalf("top rate %.2f shows no completion-time overhead: %+v", top.CrashRate, top)
	}
	if top.ParallelTime <= pts[0].ParallelTime {
		t.Fatalf("crashing run (%v) not slower than baseline (%v)", top.ParallelTime, pts[0].ParallelTime)
	}
}
