// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated cluster: the three scalability figures
// (6–8), the three adaptation-protocol figures (9–11), the dynamic-load
// experiment (§5.2.3), and the application-classification table (Table 2).
// All runs execute on the deterministic virtual clock, so the numbers are
// reproducible bit-for-bit across hosts; EXPERIMENTS.md records them next
// to the paper's expectations.
package experiments

import (
	"fmt"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/apps/pagerank"
	"gospaces/internal/apps/raytrace"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/metrics"
	"gospaces/internal/obs"
	"gospaces/internal/vclock"
)

// epoch is the virtual start time of every experiment.
var epoch = time.Date(2001, 10, 8, 9, 0, 0, 0, time.UTC)

// sessionObs, when set, is attached to every framework the harness
// assembles: one tracer and one registry span all of a session's runs
// (each run still gets its own virtual clock — the tracer takes the
// clock per call).
var sessionObs *obs.Obs

// SetObs installs (or, with nil, removes) the session observability
// layer. cmd/expt calls this when -trace or -obs is given.
func SetObs(o *obs.Obs) { sessionObs = o }

// withObs attaches the session's observability layer to one run's
// framework configuration.
func withObs(cfg core.Config) core.Config {
	cfg.Obs = sessionObs
	return cfg
}

// AppName selects one of the paper's three applications.
type AppName string

// The three evaluated applications.
const (
	OptionPricing AppName = "optionpricing"
	RayTracing    AppName = "raytracing"
	Prefetching   AppName = "prefetching"
)

// jobFor builds the paper-configured job for an application. Each call
// returns a fresh job (jobs are single-use).
func jobFor(app AppName) core.Job {
	switch app {
	case OptionPricing:
		return montecarlo.NewJob(montecarlo.DefaultJobConfig())
	case RayTracing:
		return raytrace.NewJob(raytrace.DefaultJobConfig())
	case Prefetching:
		return pagerank.NewJob(pagerank.DefaultJobConfig())
	default:
		panic(fmt.Sprintf("experiments: unknown app %q", app))
	}
}

// clusterFor returns the paper's testbed for an application: the
// option-pricing scheme ran on thirteen 300 MHz PCs, the other two on
// five 800 MHz PCs (§5).
func clusterFor(app AppName) []cluster.NodeSpec {
	if app == OptionPricing {
		return cluster.ThirteenPC()
	}
	return cluster.FivePC()
}

// ScalabilityPoint is one x-position of Figures 6–8.
type ScalabilityPoint struct {
	Workers             int
	MaxWorkerTime       time.Duration
	ParallelTime        time.Duration
	TaskPlanningTime    time.Duration
	TaskAggregationTime time.Duration
}

// Scalability runs app on 1..maxWorkers workers (without the network
// management module, as in the paper's first experiment) and returns one
// point per cluster size.
func Scalability(app AppName, maxWorkers int) ([]ScalabilityPoint, error) {
	specs := clusterFor(app)
	if maxWorkers > len(specs) {
		maxWorkers = len(specs)
	}
	var out []ScalabilityPoint
	for n := 1; n <= maxWorkers; n++ {
		clk := vclock.NewVirtual(epoch)
		fw := core.New(clk, withObs(core.Config{Workers: specs[:n]}))
		job := jobFor(app)
		var res core.Result
		var err error
		clk.Run(func() { res, err = fw.Run(job, nil) })
		if err != nil {
			return nil, fmt.Errorf("experiments: %s with %d workers: %w", app, n, err)
		}
		out = append(out, ScalabilityPoint{
			Workers:             n,
			MaxWorkerTime:       res.MaxWorkerTime,
			ParallelTime:        res.Metrics.ParallelTime,
			TaskPlanningTime:    res.Metrics.TaskPlanningTime,
			TaskAggregationTime: res.Metrics.TaskAggregationTime,
		})
	}
	return out, nil
}

// Fig6OptionPricing regenerates Figure 6 (1–13 × 300 MHz workers).
func Fig6OptionPricing() ([]ScalabilityPoint, error) { return Scalability(OptionPricing, 13) }

// Fig7RayTracing regenerates Figure 7 (1–5 × 800 MHz workers).
func Fig7RayTracing() ([]ScalabilityPoint, error) { return Scalability(RayTracing, 5) }

// Fig8Prefetch regenerates Figure 8 (1–5 × 800 MHz workers).
func Fig8Prefetch() ([]ScalabilityPoint, error) { return Scalability(Prefetching, 5) }

// ScalabilityTable renders points as the figure's series.
func ScalabilityTable(title string, pts []ScalabilityPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   title,
		Columns: []string{"workers", "max_worker_ms", "parallel_ms", "planning_ms", "aggregation_ms"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprint(p.Workers), metrics.Ms(p.MaxWorkerTime), metrics.Ms(p.ParallelTime),
			metrics.Ms(p.TaskPlanningTime), metrics.Ms(p.TaskAggregationTime))
	}
	return t
}
