package experiments

import (
	"fmt"
	"os"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/wal"
)

// churnEntry is the recovery experiment's workload record.
type churnEntry struct {
	Key string
	Seq int
	Pad []byte
}

func init() { transport.RegisterType(churnEntry{}) }

// RecoveryPoint is one cell of the recovery-time-vs-log-size experiment.
type RecoveryPoint struct {
	// Ops is the number of space mutations journaled before the crash
	// (each op is one write, nine of ten followed by a take).
	Ops int
	// Snapshots reports whether background snapshotting was enabled.
	Snapshots bool
	// Live is the number of entries alive at crash time.
	Live int
	// SnapshotRecords / TailRecords are what recovery actually replayed.
	SnapshotRecords int
	TailRecords     int
	// Segments is how many WAL segment files recovery read.
	Segments int
	// RecoveryTime is the wall-clock open-to-serving time.
	RecoveryTime time.Duration
}

// recoveryOps are the swept workload sizes.
var recoveryOps = []int{1000, 4000, 16000}

// Recover measures what the durable space's snapshots buy: a churn
// workload (writes, 90% taken again — a task bag in steady state) runs to
// N operations and then crashes without a clean close; the experiment
// times the reopen. Without snapshots, recovery replays the entire
// history and its cost grows linearly with N even though the live set is
// constant. With snapshots the WAL is compacted behind the last captured
// state, so recovery replays a bounded tail and the cost stays flat —
// the paper's persistent-space mode made restartable in O(live set)
// rather than O(history). Wall-clock timed (real disk I/O), so absolute
// numbers vary by machine; the shape does not.
func Recover() ([]RecoveryPoint, error) {
	out := make([]RecoveryPoint, 0, len(recoveryOps)*2)
	for _, snapshots := range []bool{false, true} {
		for _, ops := range recoveryOps {
			pt, err := recoverOnce(ops, snapshots)
			if err != nil {
				return nil, fmt.Errorf("experiments: recover ops=%d snapshots=%v: %w", ops, snapshots, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func recoverOnce(ops int, snapshots bool) (RecoveryPoint, error) {
	dir, err := os.MkdirTemp("", "gospaces-recover-")
	if err != nil {
		return RecoveryPoint{}, err
	}
	defer os.RemoveAll(dir)

	opts := space.DurableOptions{
		Dir: dir,
		// Group-commit style syncing: the experiment measures recovery
		// cost, not per-append fsync latency.
		Fsync:         wal.FsyncInterval,
		SnapshotBytes: -1,
	}
	if snapshots {
		opts.SnapshotBytes = 64 << 10
	}
	clk := vclock.NewReal()
	l, d, err := space.NewLocalDurable(clk, opts)
	if err != nil {
		return RecoveryPoint{}, err
	}

	// Churn: every op writes a task-sized entry; nine of ten are taken
	// back out, so the live set stays ~ops/10 while the log records the
	// full history.
	pad := make([]byte, 64)
	for i := 0; i < ops; i++ {
		if _, err := l.Write(churnEntry{Key: "churn", Seq: i, Pad: pad}, nil, tuplespace.Forever); err != nil {
			d.Close()
			return RecoveryPoint{}, err
		}
		if i%10 != 0 {
			if _, err := l.Take(churnEntry{Key: "churn", Seq: i}, nil, time.Second); err != nil {
				d.Close()
				return RecoveryPoint{}, err
			}
		}
	}
	live, _ := l.Count(churnEntry{Key: "churn"})
	// "Crash": closing the log flushes segment bytes and waits out any
	// in-flight background snapshot (which would otherwise race the
	// cleanup), but writes no final state — recovery still has to replay
	// whatever the log holds, exactly as after a kill.
	l.Close()
	if err := d.Close(); err != nil {
		return RecoveryPoint{}, err
	}

	// Restart: the open IS the recovery; time it end to end.
	l2, d2, err := space.NewLocalDurable(clk, opts)
	if err != nil {
		return RecoveryPoint{}, err
	}
	defer d2.Close()
	info := d2.Info()
	if info.Restored != live {
		return RecoveryPoint{}, fmt.Errorf("restored %d entries, want %d", info.Restored, live)
	}
	if n, _ := l2.Count(churnEntry{Key: "churn"}); n != live {
		return RecoveryPoint{}, fmt.Errorf("recovered space holds %d entries, want %d", n, live)
	}
	return RecoveryPoint{
		Ops:             ops,
		Snapshots:       snapshots,
		Live:            live,
		SnapshotRecords: info.SnapshotRecords,
		TailRecords:     info.TailRecords,
		Segments:        info.Segments,
		RecoveryTime:    info.Elapsed,
	}, nil
}

// RecoveryTable renders the sweep: with snapshots off, replayed records
// and recovery time track Ops; with snapshots on, both stay bounded.
func RecoveryTable(pts []RecoveryPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Recovery time vs log size (churn workload, 90% of writes taken)",
		Columns: []string{"ops", "snapshots", "live", "snap_records", "tail_records", "segments", "recovery_ms"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprint(p.Ops), fmt.Sprintf("%v", p.Snapshots), fmt.Sprint(p.Live),
			fmt.Sprint(p.SnapshotRecords), fmt.Sprint(p.TailRecords), fmt.Sprint(p.Segments),
			metrics.Ms(p.RecoveryTime))
	}
	return t
}
