package experiments

import (
	"fmt"
	"time"

	"gospaces/internal/core"
	"gospaces/internal/metrics"
	"gospaces/internal/vclock"
)

// DynamicLoadPoint is one run of the §5.2.3 experiment: a fraction of the
// cluster's workers carry a sustained high load (the rule base keeps them
// stopped) while the application runs on the rest.
type DynamicLoadPoint struct {
	LoadedWorkers  int
	TotalWorkers   int
	MaxWorkerTime  time.Duration
	MaxMasterOver  time.Duration
	PlanPlusAgg    time.Duration
	TotalParallel  time.Duration
	TasksByStopped int // tasks executed on loaded nodes — must be 0
}

// DynamicWorkerBehavior runs app three times with 0 %, 25 % and 50 % of
// the workers loaded by the high-CPU simulator, per the paper's third
// experiment.
func DynamicWorkerBehavior(app AppName) ([]DynamicLoadPoint, error) {
	var out []DynamicLoadPoint
	for _, frac := range []float64{0, 0.25, 0.5} {
		pt, err := dynamicRun(app, frac)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func dynamicRun(app AppName, frac float64) (DynamicLoadPoint, error) {
	clk := vclock.NewVirtual(epoch)
	specs := clusterFor(app)
	fw := core.New(clk, withObs(core.Config{
		Workers:      specs,
		Monitoring:   true,
		PollInterval: time.Second,
	}))
	loaded := int(frac * float64(len(specs)))
	for i := 0; i < loaded; i++ {
		fw.Cluster.Nodes[i].Sim2.Start() // sustained 100 % load from t=0
	}
	job := jobFor(app)
	var res core.Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		return DynamicLoadPoint{}, fmt.Errorf("experiments: dynamic %s (%.0f%% loaded): %w", app, frac*100, err)
	}
	pt := DynamicLoadPoint{
		LoadedWorkers: loaded,
		TotalWorkers:  len(specs),
		MaxWorkerTime: res.MaxWorkerTime,
		MaxMasterOver: res.Metrics.MaxMasterOverhead,
		PlanPlusAgg:   res.Metrics.TaskPlanningTime + res.Metrics.TaskAggregationTime,
		TotalParallel: res.Metrics.ParallelTime,
	}
	for i := 0; i < loaded; i++ {
		pt.TasksByStopped += res.WorkerStats[fw.Cluster.Nodes[i].Name].TasksDone
	}
	return pt, nil
}

// DynamicTable renders the experiment's four measured series.
func DynamicTable(title string, pts []DynamicLoadPoint) *metrics.Table {
	t := &metrics.Table{
		Title: title,
		Columns: []string{"loaded_workers", "max_worker_ms", "max_master_overhead_ms",
			"plan_plus_agg_ms", "total_parallel_ms"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d/%d", p.LoadedWorkers, p.TotalWorkers),
			metrics.Ms(p.MaxWorkerTime), metrics.Ms(p.MaxMasterOver),
			metrics.Ms(p.PlanPlusAgg), metrics.Ms(p.TotalParallel))
	}
	return t
}
