package experiments

import (
	"strings"
	"testing"
	"time"

	"gospaces/internal/rulebase"
)

// Figure 6: the option-pricing application speeds up to ~4 workers, after
// which task planning dominates and scalability deteriorates.
func TestFig6Shape(t *testing.T) {
	pts, err := Fig6OptionPricing()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 13 {
		t.Fatalf("%d points, want 13", len(pts))
	}
	p := func(n int) time.Duration { return pts[n-1].ParallelTime }
	// Early speedup.
	if p(2) >= p(1) || p(4) >= p(2) {
		t.Fatalf("no early speedup: 1→%v 2→%v 4→%v", p(1), p(2), p(4))
	}
	if float64(p(4)) > 0.45*float64(p(1)) {
		t.Fatalf("speedup at 4 workers too weak: %v vs %v", p(4), p(1))
	}
	// Deterioration/flattening past 4: 13 workers are at best marginally
	// better than 6 and far off the ideal 13/6 ratio.
	if float64(p(13)) < 0.85*float64(p(6)) {
		t.Fatalf("still scaling at 13 workers: p6=%v p13=%v", p(6), p(13))
	}
	// Task planning dominates parallel time on the full cluster.
	if float64(pts[12].TaskPlanningTime) < 0.6*float64(pts[12].ParallelTime) {
		t.Fatalf("planning %v does not dominate parallel %v at 13 workers",
			pts[12].TaskPlanningTime, pts[12].ParallelTime)
	}
	// Max worker time decreases as work spreads out.
	if pts[12].MaxWorkerTime >= pts[0].MaxWorkerTime {
		t.Fatalf("max worker time did not fall: %v → %v", pts[0].MaxWorkerTime, pts[12].MaxWorkerTime)
	}
}

// Figure 7: ray tracing scales well; parallel time tracks max worker
// time; task planning is constant (~500 ms in the paper).
func TestFig7Shape(t *testing.T) {
	pts, err := Fig7RayTracing()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points, want 5", len(pts))
	}
	p1, p5 := pts[0], pts[4]
	if float64(p5.ParallelTime) > 0.3*float64(p1.ParallelTime) {
		t.Fatalf("weak scaling: 1→%v 5→%v", p1.ParallelTime, p5.ParallelTime)
	}
	if float64(p5.MaxWorkerTime) > 0.3*float64(p1.MaxWorkerTime) {
		t.Fatalf("max worker time not scaling: 1→%v 5→%v", p1.MaxWorkerTime, p5.MaxWorkerTime)
	}
	// Parallel time is dominated by max worker time at every size.
	for _, p := range pts {
		if float64(p.MaxWorkerTime) < 0.7*float64(p.ParallelTime) {
			t.Fatalf("at %d workers parallel %v not dominated by max worker %v",
				p.Workers, p.ParallelTime, p.MaxWorkerTime)
		}
	}
	// Planning constant across cluster sizes (±25%), and ~0.5s.
	for _, p := range pts {
		if p.TaskPlanningTime < 350*time.Millisecond || p.TaskPlanningTime > 800*time.Millisecond {
			t.Fatalf("planning at %d workers = %v, want ~500ms", p.Workers, p.TaskPlanningTime)
		}
	}
}

// Figure 8: pre-fetching scales to ~4 workers with task aggregation
// dominating parallel time.
func TestFig8Shape(t *testing.T) {
	pts, err := Fig8Prefetch()
	if err != nil {
		t.Fatal(err)
	}
	p := func(n int) time.Duration { return pts[n-1].ParallelTime }
	if float64(p(4)) > 0.65*float64(p(1)) {
		t.Fatalf("no scaling to 4: 1→%v 4→%v", p(1), p(4))
	}
	// Gain from 4 → 5 is marginal (< 10%).
	if float64(p(5)) < 0.9*float64(p(4)) {
		t.Fatalf("still scaling past 4: 4→%v 5→%v", p(4), p(5))
	}
	// Aggregation dominates on the full cluster.
	last := pts[4]
	if float64(last.TaskAggregationTime) < 0.5*float64(last.ParallelTime) {
		t.Fatalf("aggregation %v does not dominate parallel %v",
			last.TaskAggregationTime, last.ParallelTime)
	}
}

// Figures 9–11: the signal sequence matches the scripted load schedule,
// reaction times are small, and the run completes despite it.
func TestAdaptationAllApps(t *testing.T) {
	for _, app := range []AppName{OptionPricing, RayTracing, Prefetching} {
		app := app
		t.Run(string(app), func(t *testing.T) {
			res, err := Adaptation(app)
			if err != nil {
				t.Fatal(err)
			}
			sigs := res.Signals()
			want := []rulebase.Signal{
				rulebase.SignalStart, rulebase.SignalStop, rulebase.SignalRestart,
				rulebase.SignalPause, rulebase.SignalResume,
			}
			if len(sigs) < len(want) {
				t.Fatalf("signals = %v, want prefix %v", sigs, want)
			}
			for i, s := range want {
				if sigs[i] != s {
					t.Fatalf("signal[%d] = %v, want %v (all %v)", i, sigs[i], s, sigs)
				}
			}
			// Key observation of §5.2.2: adaptation overhead is minimal.
			for _, ev := range res.Events {
				if ev.Err != nil {
					continue
				}
				if ev.Record.ClientTime() > 50*time.Millisecond {
					t.Fatalf("client signal time %v too large", ev.Record.ClientTime())
				}
				// "Minimal" means small relative to task durations
				// (seconds); a Stop handled on a saturated node pays the
				// contention factor, so allow up to half a second.
				if ev.Record.WorkerTime() > 500*time.Millisecond {
					t.Fatalf("worker signal time %v too large", ev.Record.WorkerTime())
				}
			}
			// The CPU trace shows the 100% plateau and the 30–48% band.
			var saw100, sawBand bool
			for _, s := range res.Trace {
				if s.Usage >= 99 {
					saw100 = true
				}
				if s.Usage >= 30 && s.Usage <= 48 {
					sawBand = true
				}
			}
			if !saw100 || !sawBand {
				t.Fatalf("trace missing load phases (100%%: %v, 30–48%%: %v)", saw100, sawBand)
			}
			// No worker starvation bug: the job finished.
			if res.Run.Metrics.ParallelTime <= 0 {
				t.Fatal("run did not complete")
			}
		})
	}
}

// §5.2.3: with 25% and 50% of workers loaded, the rule base keeps them
// out of the computation and total parallel time degrades gracefully.
func TestExp3DynamicWorkerBehavior(t *testing.T) {
	pts, err := DynamicWorkerBehavior(OptionPricing)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].LoadedWorkers != 0 || pts[1].LoadedWorkers != 3 || pts[2].LoadedWorkers != 6 {
		t.Fatalf("loaded counts = %d,%d,%d", pts[0].LoadedWorkers, pts[1].LoadedWorkers, pts[2].LoadedWorkers)
	}
	for _, p := range pts {
		if p.TasksByStopped != 0 {
			t.Fatalf("%d tasks ran on loaded nodes", p.TasksByStopped)
		}
		if p.TotalParallel <= 0 || p.MaxWorkerTime <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	// Losing half the cluster must not make the run faster.
	if pts[2].TotalParallel < pts[0].TotalParallel {
		t.Fatalf("50%% loaded run faster than unloaded: %v < %v",
			pts[2].TotalParallel, pts[0].TotalParallel)
	}
}

// For the compute-bound ray tracer, losing capacity visibly lengthens the
// run (graceful degradation), while loaded nodes still execute nothing.
func TestExp3RayTracingDegradesGracefully(t *testing.T) {
	pts, err := DynamicWorkerBehavior(RayTracing)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.TasksByStopped != 0 {
			t.Fatalf("%d tasks ran on loaded nodes", p.TasksByStopped)
		}
	}
	// 5 nodes → 0, 1, 2 loaded; each loss slows the run.
	if !(pts[0].TotalParallel < pts[1].TotalParallel && pts[1].TotalParallel < pts[2].TotalParallel) {
		t.Fatalf("no graceful degradation: %v, %v, %v",
			pts[0].TotalParallel, pts[1].TotalParallel, pts[2].TotalParallel)
	}
}

func TestTablesRender(t *testing.T) {
	pts := []ScalabilityPoint{{Workers: 1, ParallelTime: time.Second}, {Workers: 4, ParallelTime: 300 * time.Millisecond}}
	tab := ScalabilityTable("Figure N", pts)
	s := tab.String()
	if !strings.Contains(s, "Figure N") || !strings.Contains(s, "1000") {
		t.Fatalf("table rendering broken:\n%s", s)
	}
	t2 := Table2(pts, pts, pts)
	if !strings.Contains(t2.String(), "3.33x") {
		t.Fatalf("table2 speedup missing:\n%s", t2.String())
	}
}
