package experiments

import (
	"fmt"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/metrics"
	"gospaces/internal/vclock"
)

// GranularityPoint measures one task-decomposition granularity under a
// recurring local-user load: because signals never preempt a task, a
// coarser decomposition makes the worker hold the node longer after a
// Stop is ordered — the user waits for the in-flight task. This
// experiment quantifies the trade-off behind the paper's guidance that
// the framework "targets applications … divisible into relatively
// coarse-grained subtasks": coarse enough to amortize space overheads
// (see Figure 6), fine enough to stay non-intrusive.
type GranularityPoint struct {
	SimsPerTask int
	Subtasks    int
	// MaxUserWait is the worst slowdown of the user's job slices (the
	// intrusion the in-flight task causes).
	UserJobTime time.Duration
	// FrameworkTime is the framework job's parallel time.
	FrameworkTime time.Duration
}

// Granularity runs the option-pricing job at several task granularities
// on a monitored single-node cluster with a user job arriving mid-run.
func Granularity() ([]GranularityPoint, error) {
	var out []GranularityPoint
	for _, simsPerTask := range []int{50, 250, 1250} {
		pt, err := granularityRun(simsPerTask)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func granularityRun(simsPerTask int) (GranularityPoint, error) {
	clk := vclock.NewVirtual(epoch)
	fw := core.New(clk, withObs(core.Config{
		Workers:      cluster.Uniform(1, 1.0),
		Monitoring:   true,
		PollInterval: 500 * time.Millisecond,
	}))
	cfg := montecarlo.DefaultJobConfig()
	cfg.TotalSims = 10000
	cfg.SimsPerTask = simsPerTask
	// Total work is constant across granularities: the program's modeled
	// cost scales with the batch size (WorkPerSubtask is per 100 sims;
	// see montecarlo.program.Execute), so only the per-task quantum
	// changes here.
	cfg.PlanningCostPerTask = 5 * time.Millisecond
	job := montecarlo.NewJob(cfg)
	node := fw.Cluster.Nodes[0]

	var userTime time.Duration
	script := func(*core.Framework) {
		clk.Sleep(3 * time.Second)
		userTime = runUserJob(clk, node.Machine)
	}
	var res core.Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, script) })
	if err != nil {
		return GranularityPoint{}, fmt.Errorf("experiments: granularity %d: %w", simsPerTask, err)
	}
	return GranularityPoint{
		SimsPerTask:   simsPerTask,
		Subtasks:      res.Metrics.Tasks,
		UserJobTime:   userTime,
		FrameworkTime: res.Metrics.ParallelTime,
	}, nil
}

// GranularityTable renders the study.
func GranularityTable(pts []GranularityPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Task granularity under churn — intrusion vs decomposition",
		Columns: []string{"sims_per_task", "subtasks", "user_job_ms", "framework_parallel_ms"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprint(p.SimsPerTask), fmt.Sprint(p.Subtasks),
			metrics.Ms(p.UserJobTime), metrics.Ms(p.FrameworkTime))
	}
	return t
}
