package experiments

import (
	"fmt"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/metrics"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

// IntrusivenessResult quantifies the paper's central claim — that
// monitoring and reacting to system state minimizes the intrusiveness of
// cycle stealing — by measuring how much a local user's job slows down
// while the framework computes on the same node, with and without the
// network management module.
type IntrusivenessResult struct {
	Adaptive bool
	// UserJobTime is the local user's job elapsed time while sharing the
	// node with the framework.
	UserJobTime time.Duration
	// BaselineTime is the same job's elapsed time on an idle node.
	BaselineTime time.Duration
	// FrameworkTime is the framework job's parallel time in this run.
	FrameworkTime time.Duration
}

// Slowdown returns the user's slowdown factor (1.0 = unaffected).
func (r IntrusivenessResult) Slowdown() float64 {
	if r.BaselineTime <= 0 {
		return 0
	}
	return float64(r.UserJobTime) / float64(r.BaselineTime)
}

// userJobWork is the local user's total CPU demand (reference-node time),
// executed in small slices so contention is re-sampled as the framework's
// worker comes and goes.
const (
	userJobWork      = 5 * time.Second
	userJobSlice     = 250 * time.Millisecond
	userJobIntensity = 60 // percent: inside the rule base's stop band
)

// runUserJob executes the local user's job on machine and returns its
// elapsed time.
func runUserJob(clk vclock.Clock, m interface {
	ComputeAs(string, time.Duration, float64)
}) time.Duration {
	start := clk.Now()
	for done := time.Duration(0); done < userJobWork; done += userJobSlice {
		m.ComputeAs("interactive-user", userJobSlice, userJobIntensity)
	}
	return clk.Since(start)
}

// Intrusiveness runs the option-pricing job on a single-node cluster
// while a local user's job arrives three seconds in, once with the
// network management module (adaptive) and once without (aggressive
// cycle stealing). It returns both results, adaptive first.
func Intrusiveness() ([]IntrusivenessResult, error) {
	baseline := userJobBaseline()
	var out []IntrusivenessResult
	for _, adaptive := range []bool{true, false} {
		r, err := intrusivenessRun(adaptive, baseline)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// userJobBaseline measures the user job alone on an idle node.
func userJobBaseline() time.Duration {
	clk := vclock.NewVirtual(epoch)
	c := cluster.New(clk, transport.Loopback(), cluster.Uniform(1, 1.0))
	var elapsed time.Duration
	clk.Run(func() {
		elapsed = runUserJob(clk, c.Nodes[0].Machine)
	})
	return elapsed
}

func intrusivenessRun(adaptive bool, baseline time.Duration) (IntrusivenessResult, error) {
	clk := vclock.NewVirtual(epoch)
	fw := core.New(clk, withObs(core.Config{
		Workers:      cluster.Uniform(1, 1.0),
		Monitoring:   adaptive,
		PollInterval: 500 * time.Millisecond,
	}))
	cfg := montecarlo.DefaultJobConfig()
	cfg.TotalSims = 6000 // 60 subtasks: outlives the user's visit
	cfg.PlanningCostPerTask = 10 * time.Millisecond
	job := montecarlo.NewJob(cfg)
	node := fw.Cluster.Nodes[0]

	var userTime time.Duration
	script := func(*core.Framework) {
		clk.Sleep(3 * time.Second)
		userTime = runUserJob(clk, node.Machine)
	}
	var res core.Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, script) })
	if err != nil {
		return IntrusivenessResult{}, fmt.Errorf("experiments: intrusiveness (adaptive=%v): %w", adaptive, err)
	}
	return IntrusivenessResult{
		Adaptive:      adaptive,
		UserJobTime:   userTime,
		BaselineTime:  baseline,
		FrameworkTime: res.Metrics.ParallelTime,
	}, nil
}

// IntrusivenessTable renders the comparison.
func IntrusivenessTable(results []IntrusivenessResult) *metrics.Table {
	t := &metrics.Table{
		Title: "Intrusiveness — local user's job slowdown with and without adaptation",
		Columns: []string{"mode", "user_job_ms", "idle_baseline_ms", "slowdown",
			"framework_parallel_ms"},
	}
	for _, r := range results {
		mode := "non-adaptive (no monitoring)"
		if r.Adaptive {
			mode = "adaptive (rule base)"
		}
		t.AddRow(mode, metrics.Ms(r.UserJobTime), metrics.Ms(r.BaselineTime),
			fmt.Sprintf("%.2fx", r.Slowdown()), metrics.Ms(r.FrameworkTime))
	}
	return t
}
