package experiments

import (
	"fmt"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/faults"
	"gospaces/internal/metrics"
	"gospaces/internal/vclock"
)

// FaultPoint is one crash-rate cell of the fault-tolerance sweep.
type FaultPoint struct {
	// CrashRate is the per-take probability that the worker dies right
	// after taking a task (before writing its result).
	CrashRate float64
	// Crashes is how many crashes the plan actually injected.
	Crashes uint64
	// ParallelTime is the job's completion time at this rate.
	ParallelTime time.Duration
	// OverheadPct is the completion-time overhead relative to the
	// fault-free baseline, in percent.
	OverheadPct float64
}

// faultSweepRates are the swept per-take crash probabilities.
var faultSweepRates = []float64{0, 0.05, 0.10, 0.20, 0.40}

// FaultSweep quantifies the cost of the paper's §3 fault-tolerance
// mechanism: workers crash mid-task (between Take and result Write) with
// increasing probability, each crash orphaning a leased transaction that
// the master's sweeper must expire before the task reappears. Completion
// time grows with the crash rate — the overhead is the recovery latency
// (lease TTL + re-execution), not lost work. Deterministic on the virtual
// clock with a fixed fault seed.
func FaultSweep() ([]FaultPoint, error) {
	cfg := shardedJobConfig()
	out := make([]FaultPoint, 0, len(faultSweepRates))
	var baseline time.Duration
	for _, rate := range faultSweepRates {
		clk := vclock.NewVirtual(epoch)
		plan := faults.NewPlan(42)
		if rate > 0 {
			// AfterHandler on space.Take*: the crash lands exactly in the
			// window where the worker holds a task under its transaction.
			// Down briefly so the cluster keeps its capacity; the lease
			// (TxnTTL) still expires while the node is dark.
			plan.CrashProbOnCall("node/*", "", "space.Take*", rate,
				faults.AfterHandler, "", 10*time.Second)
		}
		fw := core.New(clk, withObs(core.Config{
			Workers:       cluster.Uniform(4, 1.0),
			Shards:        2,
			TxnTTL:        5 * time.Second,
			Faults:        plan,
			ResultTimeout: 10 * time.Minute,
		}))
		job := montecarlo.NewJob(cfg)
		var res core.Result
		var err error
		clk.Run(func() { res, err = fw.Run(job, nil) })
		if err != nil {
			return nil, fmt.Errorf("experiments: fault sweep at rate %.2f: %w", rate, err)
		}
		if price, aerr := job.Answer(); aerr != nil || price.Sims != cfg.TotalSims {
			return nil, fmt.Errorf("experiments: fault sweep at rate %.2f: aggregated %d sims, want %d (err %v)",
				rate, price.Sims, cfg.TotalSims, aerr)
		}
		pt := FaultPoint{
			CrashRate:    rate,
			Crashes:      res.FaultEvents[faults.EventCrash],
			ParallelTime: res.Metrics.ParallelTime,
		}
		if rate == 0 {
			baseline = pt.ParallelTime
		} else if baseline > 0 {
			pt.OverheadPct = 100 * (float64(pt.ParallelTime)/float64(baseline) - 1)
		}
		out = append(out, pt)
	}
	return out, nil
}

// FaultSweepTable renders the sweep as a figure-style series.
func FaultSweepTable(pts []FaultPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Fault sweep: completion time vs worker crash rate (4 workers, 2 shards, 5 s lease)",
		Columns: []string{"crash_rate", "crashes", "parallel_ms", "overhead_pct"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%.2f", p.CrashRate), fmt.Sprint(p.Crashes),
			metrics.Ms(p.ParallelTime), fmt.Sprintf("%.1f", p.OverheadPct))
	}
	return t
}
