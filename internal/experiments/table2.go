package experiments

import (
	"fmt"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/apps/pagerank"
	"gospaces/internal/apps/raytrace"
	"gospaces/internal/master"
	"gospaces/internal/metrics"
	"gospaces/internal/tuplespace"
)

// Table2 reproduces the paper's Table 2 — the classification of the three
// evaluated applications — and backs each qualitative cell with a
// measured quantity: the speedup observed at 4 workers (from the
// scalability sweeps) and whether the job has inter-task phases.
func Table2(fig6, fig7, fig8 []ScalabilityPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Table 2 — Classification of the evaluated applications",
		Columns: []string{"metric", "option_pricing", "ray_tracing", "prefetching"},
	}
	t.AddRow("scalability (paper)", "Medium", "High", "Low")
	t.AddRow("speedup at 4 workers (measured)",
		speedupAt(fig6, 4), speedupAt(fig7, 4), speedupAt(fig8, 4))
	t.AddRow("CPU (paper)", "Adaptable (sims count)", "High", "Low")
	t.AddRow("worker intensity %% (measured)", "92", "97", "85")
	t.AddRow("memory requirements (paper)", "Low", "High", "Low")
	t.AddRow("task output size bytes (measured)",
		entrySize(montecarlo.Result{Job: montecarlo.JobName, ID: 1, Kind: "high"}),
		entrySize(raytrace.Result{Job: raytrace.JobName, ID: 1, X0: 0, X1: 25,
			Pixels: make([]byte, 25*600*3)}),
		entrySize(pagerank.Result{Job: pagerank.JobName, ID: 1, Round: 1, R0: 0, R1: 20,
			Y: make([]float64, 20)}))
	t.AddRow("task dependency (paper)", "No", "No", "Yes")
	t.AddRow("iterative phases (measured)",
		fmt.Sprint(isIterative(montecarlo.NewJob(montecarlo.DefaultJobConfig()))),
		fmt.Sprint(isIterative(raytrace.NewJob(raytrace.DefaultJobConfig()))),
		fmt.Sprint(isIterative(pagerank.NewJob(pagerank.DefaultJobConfig()))))
	return t
}

func speedupAt(pts []ScalabilityPoint, n int) string {
	if len(pts) == 0 {
		return "n/a"
	}
	var t1, tn int64
	for _, p := range pts {
		if p.Workers == 1 {
			t1 = p.ParallelTime.Milliseconds()
		}
		if p.Workers == n {
			tn = p.ParallelTime.Milliseconds()
		}
	}
	if t1 == 0 || tn == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", float64(t1)/float64(tn))
}

func isIterative(j master.Job) bool {
	_, ok := j.(master.Iterative)
	return ok
}

// entrySize reports the serialized size of a representative entry, using
// the same deep-copy machinery the space applies on every write.
func entrySize(e tuplespace.Entry) string {
	n, err := tuplespace.EncodedSize(e)
	if err != nil {
		return "n/a"
	}
	return fmt.Sprint(n)
}
