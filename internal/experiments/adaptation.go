package experiments

import (
	"fmt"
	"time"

	"gospaces/internal/core"
	"gospaces/internal/metrics"
	"gospaces/internal/netmgmt"
	"gospaces/internal/rulebase"
	"gospaces/internal/sysmon"
	"gospaces/internal/vclock"
)

// AdaptationResult is the data behind one of Figures 9–11: part (a) is
// the worker's CPU-usage trace, part (b) the per-signal reaction times.
type AdaptationResult struct {
	App    AppName
	Trace  []sysmon.Sample
	Events []netmgmt.Event
	Run    core.Result
}

// Adaptation runs app on a single monitored worker while the paper's load
// schedule plays out (§5.2.2): the worker starts, load simulator 2 forces
// a Stop, its removal a Restart, load simulator 1 a Pause, and its
// removal a Resume.
func Adaptation(app AppName) (AdaptationResult, error) {
	clk := vclock.NewVirtual(epoch)
	specs := clusterFor(app)[:1]
	fw := core.New(clk, withObs(core.Config{
		Workers:      specs,
		Monitoring:   true,
		PollInterval: time.Second,
	}))
	job := jobFor(app)
	node := fw.Cluster.Nodes[0]

	script := func(*core.Framework) {
		clk.Sleep(6 * time.Second)
		node.Sim2.Start() // CPU → 100%: Stop
		clk.Sleep(10 * time.Second)
		node.Sim2.Stop() // idle again: Restart
		clk.Sleep(10 * time.Second)
		node.Sim1.Start() // CPU → 30–50%: Pause
		clk.Sleep(10 * time.Second)
		node.Sim1.Stop() // idle again: Resume
	}

	var res core.Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, script) })
	if err != nil {
		return AdaptationResult{}, fmt.Errorf("experiments: adaptation %s: %w", app, err)
	}
	return AdaptationResult{
		App:    app,
		Trace:  node.Machine.History(),
		Events: res.Events,
		Run:    res,
	}, nil
}

// Fig9AdaptationOptionPricing regenerates Figure 9.
func Fig9AdaptationOptionPricing() (AdaptationResult, error) { return Adaptation(OptionPricing) }

// Fig10AdaptationRayTracing regenerates Figure 10.
func Fig10AdaptationRayTracing() (AdaptationResult, error) { return Adaptation(RayTracing) }

// Fig11AdaptationPrefetch regenerates Figure 11.
func Fig11AdaptationPrefetch() (AdaptationResult, error) { return Adaptation(Prefetching) }

// SignalTable renders part (b) of an adaptation figure: client and worker
// signal times per received signal.
func (r AdaptationResult) SignalTable(title string) *metrics.Table {
	t := &metrics.Table{
		Title:   title,
		Columns: []string{"signal", "t_ms", "client_signal_ms", "worker_signal_ms"},
	}
	for _, ev := range r.Events {
		if ev.Err != nil || ev.Signal == rulebase.SignalNone {
			continue
		}
		t.AddRow(ev.Signal.String(),
			fmt.Sprint(ev.At.Sub(epoch).Milliseconds()),
			fmt.Sprintf("%.1f", float64(ev.Record.ClientTime().Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(ev.Record.WorkerTime().Microseconds())/1000))
	}
	return t
}

// TraceTable renders part (a): the CPU usage history the monitoring agent
// sampled.
func (r AdaptationResult) TraceTable(title string) *metrics.Table {
	t := &metrics.Table{Title: title, Columns: []string{"t_ms", "cpu_pct"}}
	for _, s := range r.Trace {
		t.AddRow(fmt.Sprint(s.At.Sub(epoch).Milliseconds()), fmt.Sprintf("%.0f", s.Usage))
	}
	return t
}

// Signals returns the clean (errorless) signal sequence.
func (r AdaptationResult) Signals() []rulebase.Signal {
	var out []rulebase.Signal
	for _, ev := range r.Events {
		if ev.Err == nil {
			out = append(out, ev.Signal)
		}
	}
	return out
}
