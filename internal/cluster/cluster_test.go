package cluster

import (
	"testing"
	"time"

	"gospaces/internal/snmp"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

func TestCannedTopologies(t *testing.T) {
	five := FivePC()
	if len(five) != 5 || five[0].Speed != Speed800MHz {
		t.Fatalf("FivePC = %+v", five)
	}
	thirteen := ThirteenPC()
	if len(thirteen) != 13 || thirteen[12].Speed != Speed300MHz {
		t.Fatalf("ThirteenPC = %+v", thirteen)
	}
	names := map[string]bool{}
	for _, s := range thirteen {
		if names[s.Name] {
			t.Fatalf("duplicate node name %s", s.Name)
		}
		names[s.Name] = true
	}
}

func TestClusterAssembly(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	c := New(clk, transport.Loopback(), Uniform(3, 0.5))
	if len(c.Nodes) != 3 {
		t.Fatalf("%d nodes", len(c.Nodes))
	}
	if c.Node("node02") == nil || c.Node("ghost") != nil {
		t.Fatal("Node lookup broken")
	}
	if c.MasterMachine.Speed() != Speed800MHz {
		t.Fatalf("master speed %v", c.MasterMachine.Speed())
	}
	for _, n := range c.Nodes {
		if n.Machine.Speed() != 0.5 {
			t.Fatalf("%s speed %v", n.Name, n.Machine.Speed())
		}
		if n.Sim1 == nil || n.Sim2 == nil {
			t.Fatalf("%s missing load simulators", n.Name)
		}
	}
}

func TestClusterSNMPWiring(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	c := New(clk, transport.Loopback(), Uniform(1, 1))
	node := c.Nodes[0]
	mgr := snmp.NewManager(c.Community, &snmp.RPCExchanger{C: c.Net.Dial(node.Addr)})
	defer mgr.Close()

	clk.Run(func() {
		node.Machine.SetConstSource("user", 42)
		load, err := mgr.GetInt(snmp.OIDHrProcessorLoad)
		if err != nil {
			t.Error(err)
		}
		if load != 42 {
			t.Errorf("hrProcessorLoad = %d, want 42", load)
		}
		// Worker's own load excluded from the background OID.
		node.Machine.SetConstSource("worker", 50)
		bg, err := mgr.GetInt(snmp.OIDBackgroundLoad)
		if err != nil {
			t.Error(err)
		}
		if bg != 42 {
			t.Errorf("background load = %d, want 42", bg)
		}
		// Polling hrProcessorLoad records history samples.
		if len(node.Machine.History()) == 0 {
			t.Error("no samples recorded by SNMP poll")
		}
		// sysName answers too.
		vbs, err := mgr.Get(snmp.OIDSysName)
		if err != nil {
			t.Error(err)
		}
		if vbs[0].Value.String() != "node01" {
			t.Errorf("sysName = %v", vbs[0].Value)
		}
	})
}

func TestMasterServerListens(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	c := New(clk, transport.Loopback(), nil)
	c.MasterServer.Handle("ping", func(arg interface{}) (interface{}, error) { return "pong", nil })
	clk.Run(func() {
		res, err := c.Net.Dial(c.MasterAddr).Call("ping", 0)
		if err != nil {
			t.Error(err)
		}
		if res != "pong" {
			t.Errorf("res = %v", res)
		}
	})
}
