// Package cluster assembles simulated heterogeneous clusters: each node
// gets a sysmon.Machine with a relative CPU speed, an SNMP agent exposing
// its load, the two load simulators of the paper's experiments, and an RPC
// server on the in-process network where the worker's signal endpoint is
// later bound. The canned topologies reproduce the paper's testbeds: five
// 800 MHz Pentium III nodes, and thirteen 300 MHz nodes (the master is an
// 800 MHz node in both, §5).
package cluster

import (
	"fmt"

	"gospaces/internal/snmp"
	"gospaces/internal/sysmon"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

// NodeSpec declares one worker node.
type NodeSpec struct {
	Name  string
	Speed float64 // relative to the 800 MHz reference node
}

// Speeds of the paper's two node classes, relative to the 800 MHz P-III.
const (
	Speed800MHz = 1.0
	Speed300MHz = 300.0 / 800.0
)

// FivePC returns the paper's 5-node 800 MHz cluster.
func FivePC() []NodeSpec { return uniform(5, Speed800MHz) }

// ThirteenPC returns the paper's 13-node 300 MHz cluster.
func ThirteenPC() []NodeSpec { return uniform(13, Speed300MHz) }

// Uniform returns n identical nodes at the given speed.
func Uniform(n int, speed float64) []NodeSpec { return uniform(n, speed) }

func uniform(n int, speed float64) []NodeSpec {
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{Name: fmt.Sprintf("node%02d", i+1), Speed: speed}
	}
	return specs
}

// Node is one assembled worker node.
type Node struct {
	Name    string
	Machine *sysmon.Machine
	Agent   *snmp.Agent
	MIB     *snmp.MIB
	Server  *transport.Server
	Addr    string
	Sim1    *sysmon.LoadSimulator // 30–50 % traffic-shaped load
	Sim2    *sysmon.LoadSimulator // 100 % load
}

// Cluster is an assembled simulated cluster.
type Cluster struct {
	Clock         vclock.Clock
	Net           *transport.Network
	Nodes         []*Node
	MasterMachine *sysmon.Machine
	MasterAddr    string
	MasterServer  *transport.Server
	Community     string
}

// New assembles a cluster on clock with the given network model, a
// 1.0-speed master node, and the given worker specs. Worker servers are
// bound at "node/<name>"; the master's at "master".
func New(clock vclock.Clock, model transport.Model, specs []NodeSpec) *Cluster {
	c := &Cluster{
		Clock:         clock,
		Net:           transport.NewNetwork(clock, model),
		MasterMachine: sysmon.NewMachine(clock, "master", Speed800MHz),
		MasterAddr:    "master",
		MasterServer:  transport.NewServer(),
		Community:     "public",
	}
	c.Net.Listen(c.MasterAddr, c.MasterServer)
	for _, spec := range specs {
		c.Nodes = append(c.Nodes, c.addNode(spec))
	}
	return c
}

func (c *Cluster) addNode(spec NodeSpec) *Node {
	m := sysmon.NewMachine(c.Clock, spec.Name, spec.Speed)
	mib := snmp.NewMIB()
	mib.Register(snmp.OIDSysName, func() snmp.Value { return snmp.OctetString(spec.Name) })
	mib.Register(snmp.OIDSysDescr, func() snmp.Value {
		return snmp.OctetString(fmt.Sprintf("gospaces simulated node (speed %.3f)", spec.Speed))
	})
	mib.Register(snmp.OIDHrProcessorLoad, func() snmp.Value {
		// Polling records a sample, building the CPU-usage trace that
		// the adaptation figures plot.
		return snmp.Integer(int64(m.RecordSample().Usage + 0.5))
	})
	mib.Register(snmp.OIDBackgroundLoad, func() snmp.Value {
		return snmp.Integer(int64(m.BackgroundLoad() + 0.5))
	})
	agent := snmp.NewAgent(c.Community, mib)

	srv := transport.NewServer()
	agent.Bind(srv)
	addr := "node/" + spec.Name
	c.Net.Listen(addr, srv)
	return &Node{
		Name:    spec.Name,
		Machine: m,
		Agent:   agent,
		MIB:     mib,
		Server:  srv,
		Addr:    addr,
		Sim1:    sysmon.NewLoadSimulator1(m),
		Sim2:    sysmon.NewLoadSimulator2(m),
	}
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name string) *Node {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}
