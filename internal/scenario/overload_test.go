package scenario

import (
	"testing"
	"time"

	"gospaces/internal/faults"
	"gospaces/internal/metrics"
	"gospaces/internal/obs"
)

// TestOverloadBurstShedsWithoutLoss: a hand-written manifest drives 8×
// read generators per worker into a small admission bound for two
// seconds. The protection plane must visibly engage — rejections or
// sheds, and a recorded brownout transition — while the run's exactness
// invariants still hold: every worker result survives the storm, none
// duplicated.
func TestOverloadBurstShedsWithoutLoss(t *testing.T) {
	m := Manifest{
		Seed:    42,
		Workers: 4,
		Shards:  2,
		TxnTTL:  8 * time.Second,
		// 2ms of modeled CPU per op: the burst's generators queue at the
		// shard gates and hold admission slots, which is what saturates
		// MaxInflight and arms the brownout controller.
		OpCost:      2 * time.Millisecond,
		MaxInflight: 10,
		RetryBudget: 40,
		Breakers:    true,
		App: AppSpec{
			Name:   AppMonteCarlo,
			Tasks:  16,
			Work:   2500 * time.Millisecond, // exec = 800/100×2.5s/4 ≈ 5s per task pair wave
			Spread: true,
		},
		Faults: faults.PlanSpec{Seed: 42},
		Events: []Event{
			{At: 2 * time.Second, Kind: OverloadBurst, Factor: 8, Window: 2 * time.Second},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rep := Run(m)
	if rep.Failed() {
		t.Fatalf("overload burst violated invariants: %v", rep.Violations)
	}
	ov := rep.Result.Overload
	pressure := ov[metrics.CounterAdmitRejected] + ov[metrics.CounterShedLow] + ov[metrics.CounterShedNormal]
	if pressure == 0 {
		t.Fatalf("burst left no admission trace (rejected/shed all zero): %v", ov)
	}
	browned := false
	for _, ev := range rep.Timeline {
		if ev.Kind == obs.EventBrownout {
			browned = true
			break
		}
	}
	if !browned {
		t.Error("no brownout transition reached the flight recorder")
	}
}
