package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"gospaces/internal/discovery"
	"gospaces/internal/faults"
)

// Generation bounds. The grammar is deliberately conservative: every
// sampled manifest must PASS its invariants, so it only combines
// machinery along interactions the subsystem suites have proven. The
// grammar widens as coverage does — that is the point of growing it here
// instead of hand-writing one test per shape.
const (
	minWorkers = 3
	maxWorkers = 6
	maxShards  = 3
	// minExec/maxExec bound the job's modeled execution span. Every event
	// fires before maxEventAt, comfortably inside the job.
	minExec    = 14 * time.Second
	maxExec    = 20 * time.Second
	maxEventAt = 9 * time.Second
)

// Generate samples a valid manifest from the weighted grammar. The same
// seed always yields the same manifest, and the manifest reuses the seed
// for its fault plan, so one int64 reproduces an entire run.
func Generate(seed int64) Manifest {
	r := rand.New(rand.NewSource(seed))
	m := Manifest{
		Seed:    seed,
		Workers: minWorkers + r.Intn(maxWorkers-minWorkers+1),
		Shards:  1 + r.Intn(maxShards),
		TxnTTL:  8 * time.Second,
		Faults:  faults.PlanSpec{Seed: seed},
	}

	// Deployment shape. Replication and elasticity stay exclusive in the
	// grammar (their product is proven only for scripted shapes so far);
	// hand-written manifests may combine them.
	switch {
	case r.Float64() < 0.35:
		m.Replicas = 1
	case r.Float64() < 0.5:
		m.Elastic = true
	}
	if r.Float64() < 0.45 {
		m.Durable = true
		m.Fsync = pick(r, []weighted{{"always", 5}, {"interval", 3}, {"never", 2}})
	}
	if r.Float64() < 0.4 {
		// Exactly-once: every mutation carries an idempotency token, the
		// shards memoize tokened outcomes, and ambiguous op timeouts are
		// retried instead of surfaced. The deadline is far above the
		// benign delay rules' latency, so only the ambiguous-timeout rule
		// below can trip it.
		m.ExactlyOnce = true
		m.OpTimeout = 500 * time.Millisecond
	}

	exec := minExec + time.Duration(r.Int63n(int64(maxExec-minExec)))
	m.App = genApp(r, m, exec)
	m.Events = genEvents(r, m)
	genFaults(r, &m)
	genOverload(r, &m)
	return m
}

type weighted struct {
	val string
	w   int
}

func pick(r *rand.Rand, opts []weighted) string {
	total := 0
	for _, o := range opts {
		total += o.w
	}
	n := r.Intn(total)
	for _, o := range opts {
		if n < o.w {
			return o.val
		}
		n -= o.w
	}
	return opts[len(opts)-1].val
}

// genApp sizes a workload whose modeled execution spans exec on the
// manifest's worker count. Per-task execution is exec×workers/tasks for
// both apps, and a task must finish well inside the 8s transaction lease
// — at TTL/2 or less — or the sweeper aborts every attempt mid-execution
// and the run livelocks with zero results. The task count is floored
// accordingly.
func genApp(r *rand.Rand, m Manifest, exec time.Duration) AppSpec {
	leaseBudget := 4 * time.Second // TxnTTL/2
	minTasks := int(int64(exec)*int64(m.Workers)/int64(leaseBudget)) + 1
	if r.Float64() < 0.3 {
		// Raytrace: a 600×600 image in Tasks strips; execution is
		// W×H×WorkPerPixel/workers. Strip counts that divide 600 evenly.
		var fits []int
		for _, n := range []int{12, 24, 40, 60} {
			if n >= minTasks {
				fits = append(fits, n)
			}
		}
		return AppSpec{
			Name:  AppRayTrace,
			Tasks: fits[r.Intn(len(fits))],
			Work:  time.Duration(int64(exec) * int64(m.Workers) / (600 * 600)),
		}
	}
	// Montecarlo: Tasks batches of 50 sims (Plan emits a high and a low
	// task per 100-sim block, so keep Tasks even); execution is
	// TotalSims/100 × Work / workers.
	tasks := 16 + 2*r.Intn(9) // 16..32 even
	if tasks < minTasks {
		tasks = minTasks + minTasks%2
	}
	totalSims := tasks * 50
	return AppSpec{
		Name:   AppMonteCarlo,
		Tasks:  tasks,
		Work:   time.Duration(int64(exec) * int64(m.Workers) * 100 / int64(totalSims)),
		Spread: m.Shards > 1,
	}
}

// genEvents plans at most two control-plane actions in two well-separated
// slots — early (1.5–4s) and late (6–9s) — so a kill's promotion always
// settles before the next event and everything lands inside the job.
func genEvents(r *rand.Rand, m Manifest) []Event {
	if r.Float64() < 0.2 {
		return nil // fault-schedule-only run
	}
	early := 1500*time.Millisecond + time.Duration(r.Int63n(int64(2500*time.Millisecond)))
	late := 6*time.Second + time.Duration(r.Int63n(int64(maxEventAt-6*time.Second)))

	switch {
	case m.Replicas == 1:
		k := r.Intn(m.Shards)
		evs := []Event{{At: early, Kind: KillPrimary, Shard: k}}
		switch {
		case r.Float64() < 0.4:
			// Fail back: the dead node rejoins as the promoted primary's
			// standby (the runner waits out the promotion first).
			evs = append(evs, Event{At: late, Kind: Rejoin, Shard: k})
		case m.Shards > 1 && r.Float64() < 0.6:
			evs = append(evs, Event{At: late, Kind: KillPrimary, Shard: (k + 1) % m.Shards})
		}
		return evs
	case m.Elastic:
		s := r.Intn(m.Shards)
		evs := []Event{{At: early, Kind: Split, Shard: s}}
		switch {
		case r.Float64() < 0.4:
			evs = append(evs, Event{At: late, Kind: Merge})
		case r.Float64() < 0.5:
			evs = append(evs, Event{At: late, Kind: Split, Shard: (s + 1) % m.Shards})
		}
		return evs
	case m.Durable:
		s := r.Intn(m.Shards)
		evs := []Event{{At: early, Kind: RestartShard, Shard: s}}
		if r.Float64() < 0.4 {
			evs = append(evs, Event{At: late, Kind: RestartShard, Shard: r.Intn(m.Shards)})
		}
		return evs
	}
	return nil
}

// genFaults adds the network-level schedule: worker mid-task crashes,
// extra latency, duplicated result deliveries, dropped result writes and
// lookup outages — each gated on the deployment shapes where its recovery
// path is defined.
func genFaults(r *rand.Rand, m *Manifest) {
	rules := &m.Faults.Rules
	if r.Float64() < 0.6 {
		// The paper's §3 failure: a worker dies between Take and Write,
		// holding the task under its lease.
		*rules = append(*rules, faults.RuleSpec{
			Kind: faults.RuleCrashOnCall, From: "node/*", Method: "space.Take*",
			Nth: 1 + r.Intn(3), Point: "after",
			DownFor: 10*time.Second + time.Duration(r.Int63n(int64(10*time.Second))),
		})
	}
	if r.Float64() < 0.5 {
		*rules = append(*rules, faults.RuleSpec{
			Kind: faults.RuleDelay, From: "node/*", Method: "space.*",
			Prob:  0.1 + 0.15*r.Float64(),
			Delay: 20*time.Millisecond + time.Duration(r.Int63n(int64(60*time.Millisecond))),
		})
	}
	if r.Float64() < 0.4 {
		// At-least-once redelivery of result writes; DedupResults (always
		// on) must absorb it.
		*rules = append(*rules, faults.RuleSpec{
			Kind: faults.RuleDuplicate, From: "node/*", To: "master*", Method: "space.Write",
			Prob: 0.05 + 0.1*r.Float64(),
		})
	}
	if m.ExactlyOnce && r.Float64() < 0.7 {
		// Ambiguous op timeouts on a mutation path: the injected delay
		// exceeds OpTimeout, so the caller gives up while the shard still
		// executes the call. The router's tokened retry must collapse
		// against the memo table — exactness holds with zero lost AND
		// zero duplicated results.
		method := pick(r, []weighted{{"space.Write", 4}, {"space.Take*", 3}, {"space.TxnCommit", 2}})
		*rules = append(*rules, faults.RuleSpec{
			Kind: faults.RuleDelay, From: "node/*", To: "master*", Method: method,
			Prob:  0.05 + 0.1*r.Float64(),
			Delay: m.OpTimeout*3/2 + time.Duration(r.Int63n(int64(m.OpTimeout))),
		})
	}
	if m.Replicas == 0 || m.ExactlyOnce {
		// Hard drops and lookup outages need a retry story: unreplicated
		// handles redial and replay transparently, and exactly-once runs
		// retry with the original token. Only the plain replicated shape
		// stays clear of them — there a dropped mutation surfaces the
		// documented at-most-once ambiguity instead of retrying.
		if r.Float64() < 0.4 {
			*rules = append(*rules, faults.RuleSpec{
				Kind: faults.RuleDrop, From: "node/*", To: "master*", Method: "space.Write",
				Prob: 0.05 + 0.15*r.Float64(),
			})
		}
		if r.Float64() < 0.3 {
			m.Faults.Crashes = append(m.Faults.Crashes, faults.CrashWindowSpec{
				Endpoint: discovery.WellKnownAddress,
				End:      time.Second + time.Duration(r.Int63n(int64(1500*time.Millisecond))),
			})
		}
	}
}

// genOverload arms the overload-protection plane on ~30% of manifests and
// fires one mid-run burst against it. The knobs are deliberately generous
// — MaxInflight well above what the workers alone generate — so the burst
// generators absorb the sheds and rejections while the workers' high-
// priority mutations keep flowing; the invariants then prove overload
// protection never loses or duplicates a result. A slow shard sometimes
// rides along (extra latency on one shard's address) so the burst also
// exercises the retry budget and, when armed, the breakers.
func genOverload(r *rand.Rand, m *Manifest) {
	if r.Float64() >= 0.3 {
		return
	}
	m.OpCost = time.Millisecond + time.Duration(r.Int63n(int64(2*time.Millisecond)))
	// Small enough that a large burst saturates a shard (the generators
	// hold inflight slots through the gate queue), large enough that the
	// workers alone never graze it.
	m.MaxInflight = 8 + r.Intn(17)
	if r.Float64() < 0.5 {
		m.RetryBudget = 20 + r.Intn(30)
	}
	if r.Float64() < 0.5 {
		m.Breakers = true
	}
	// The burst lands mid-run (4.5–5.5s): after genEvents' early slot and
	// before its late one, so sorting keeps both plans' spacing intact.
	m.Events = append(m.Events, Event{
		At:     4500*time.Millisecond + time.Duration(r.Int63n(int64(time.Second))),
		Kind:   OverloadBurst,
		Factor: 3 + r.Intn(4),
		Window: time.Second + time.Duration(r.Int63n(int64(1500*time.Millisecond))),
	})
	sort.SliceStable(m.Events, func(i, j int) bool { return m.Events[i].At < m.Events[j].At })
	if m.Shards > 1 && m.Replicas == 0 && r.Float64() < 0.5 {
		// Slow shard: extra latency on one non-root shard's address, small
		// enough to stay under any op deadline (no accidental ambiguity).
		m.Faults.Rules = append(m.Faults.Rules, faults.RuleSpec{
			Kind: faults.RuleDelay, From: "node/*", To: shardAddr(1 + r.Intn(m.Shards-1)),
			Method: "space.*",
			Prob:   0.5 + 0.3*r.Float64(),
			Delay:  10*time.Millisecond + time.Duration(r.Int63n(int64(30*time.Millisecond))),
		})
	}
}

// shardAddr is base shard i's simulated-cluster listener address (shard 0
// shares the master's own listener).
func shardAddr(i int) string {
	if i == 0 {
		return "master"
	}
	return fmt.Sprintf("master.shard%d", i)
}
