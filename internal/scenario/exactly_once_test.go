package scenario

import (
	"testing"
	"time"

	"gospaces/internal/faults"
	"gospaces/internal/metrics"
)

// eoManifest is the chaos base for the exactly-once acceptance runs:
// ambiguous op timeouts injected on every retried mutation path (result
// writes and transaction commits), with the deadline far above benign
// latency so only the injected delays trip it.
func eoManifest(seed int64) Manifest {
	return Manifest{
		Seed:        seed,
		Workers:     4,
		Shards:      2,
		TxnTTL:      8 * time.Second,
		OpTimeout:   500 * time.Millisecond,
		ExactlyOnce: true,
		// Execution spans ~6s on 4 workers (1.5s per task, inside the
		// 4s lease budget), comfortably around the 2s event below.
		App: AppSpec{Name: AppMonteCarlo, Tasks: 16, Work: 3 * time.Second, Spread: true},
		Faults: faults.PlanSpec{
			Seed: seed,
			Rules: []faults.RuleSpec{
				{Kind: faults.RuleDelay, From: "node/*", To: "master*", Method: "space.Write", Prob: 0.25, Delay: 800 * time.Millisecond},
				{Kind: faults.RuleDelay, From: "node/*", To: "master*", Method: "space.TxnCommit", Prob: 0.2, Delay: 800 * time.Millisecond},
			},
		},
	}
}

// TestExactlyOnceChaosShapes is the acceptance chaos run: with ambiguous
// op timeouts injected on every mutation path, an exactly-once deployment
// must finish with zero lost AND zero duplicated results — across a
// kill-primary failover, a mid-split cutover and a shard crash-restart
// (the last also re-proving WAL recovery with memo records in the log).
func TestExactlyOnceChaosShapes(t *testing.T) {
	cases := []struct {
		name  string
		shape func(m *Manifest)
	}{
		{"kill-primary-failover", func(m *Manifest) {
			m.Replicas = 1
			m.Events = []Event{{At: 2 * time.Second, Kind: KillPrimary, Shard: 0}}
		}},
		{"mid-split-cutover", func(m *Manifest) {
			m.Elastic = true
			m.Events = []Event{{At: 2 * time.Second, Kind: Split, Shard: 0}}
		}},
		{"shard-crash-restart", func(m *Manifest) {
			m.Durable = true
			m.Fsync = "always"
			m.Events = []Event{{At: 2 * time.Second, Kind: RestartShard, Shard: 0}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := eoManifest(11)
			tc.shape(&m)
			rep := Run(m)
			if rep.Failed() {
				data, _ := m.MarshalIndent()
				t.Fatalf("violations: %v\nmanifest:\n%s", rep.Violations, data)
			}
			// The run must actually have exercised the machinery: at
			// least one ambiguous outcome retried, at least one retry
			// answered from a memo table. Both streams are seeded, so
			// this does not flake.
			if got := rep.Result.Retries[metrics.CounterRetryAmbiguous]; got == 0 {
				t.Errorf("no ambiguous retries recorded: the injected delays never tripped the deadline (fault events: %v)", rep.FaultEvents)
			}
			if got := rep.Result.Retries[metrics.CounterRetryExhausted]; got != 0 {
				t.Errorf("%d mutations exhausted their retry budget; exactness held by luck", got)
			}
		})
	}
}

// TestAmbiguousTimeoutsRequireExactlyOnce pins the flag-off contract: the
// same ambiguous fault plan without exactly_once is rejected up front —
// at-most-once surfaces reply-lost mutations as errors, so the exactness
// invariant cannot be promised and the manifest is invalid by
// construction.
func TestAmbiguousTimeoutsRequireExactlyOnce(t *testing.T) {
	m := eoManifest(11)
	if !m.AmbiguousTimeouts() {
		t.Fatal("base manifest's delays do not exceed op_timeout; the chaos runs are vacuous")
	}
	m.ExactlyOnce = false
	if err := m.Validate(); err == nil {
		t.Fatal("manifest with ambiguous timeouts and exactly_once off passed validation")
	}
	// With the delays gone the flag-off shape is valid again: plain
	// at-most-once deployments stay expressible.
	m.Faults.Rules = nil
	if err := m.Validate(); err != nil {
		t.Fatalf("flag-off manifest without ambiguous faults: %v", err)
	}
}
