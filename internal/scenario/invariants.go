package scenario

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"

	"gospaces/internal/e2e/harness"
	"gospaces/internal/metrics"
	"gospaces/internal/rebalance"
	"gospaces/internal/space"
	"gospaces/internal/tuplespace"
	"gospaces/internal/wal"
)

// checkInvariants asserts the global properties every deployment shape
// must keep, parameterized by what the run actually did (st) rather than
// what the manifest planned — skipped events expect nothing.
func checkInvariants(m Manifest, out harness.Outcome, st *runState, app appRun) []string {
	var v []string
	bad := func(format string, args ...interface{}) {
		v = append(v, fmt.Sprintf(format, args...))
	}

	// Zero lost, zero duplicated work: the aggregate must be exact.
	if app.mc != nil {
		price, err := app.mc.Answer()
		switch {
		case err != nil:
			bad("montecarlo answer: %v", err)
		case price.Sims != wantSims(m):
			bad("aggregated %d simulations, want exactly %d (lost or duplicated work)", price.Sims, wantSims(m))
		}
	} else if app.rt != nil {
		if _, complete := app.rt.Image(); !complete {
			bad("raytrace image incomplete or over-aggregated")
		}
	}
	if got := out.Result.Metrics.Tasks; got != app.wantTasks {
		bad("planned %d tasks, want %d", got, app.wantTasks)
	}

	// Replication: exactly one promotion per executed kill, and each ring
	// position's epoch counts its kills.
	if m.Replicas == 1 {
		total := 0
		for _, k := range st.kills {
			total += k
		}
		if got := out.Result.Replication[metrics.CounterReplPromotions]; got != uint64(total) {
			bad("promotions = %d, want exactly %d (one per executed kill)", got, total)
		}
		for i, k := range st.kills {
			if e := out.Framework.ShardEpoch(i); e != uint64(1+k) {
				bad("shard %d epoch = %d, want %d (1 + %d kills)", i, e, 1+k, k)
			}
		}
	}

	// Topology convergence: the epoch advanced once per completed
	// reshard, ownership covers the whole hash space, and nothing is
	// left mid-reshard.
	if m.Elastic {
		base := st.samples[0].topo
		want := base + uint64(st.splits+st.merges)
		if got := out.Framework.TopologyEpoch(); got != want {
			bad("topology epoch = %d, want %d (%d at start + %d splits + %d merges)", got, want, base, st.splits, st.merges)
		}
		// A crashed worker's leased transaction legitimately pins an entry
		// for the full TxnTTL — which is also the reshard's settle budget —
		// so a settle timeout is a documented degraded outcome, not a bug:
		// the split/merge completes and the lame-duck sweep finishes the
		// eviction (elastic.go phase 2). The exactness invariant above
		// separately proves nothing was lost. Any other reshard error is a
		// violation.
		if err := out.Framework.ReshardErr(); err != nil && !errors.Is(err, rebalance.ErrSettleTimeout) {
			bad("reshard error: %v", err)
		}
		own := out.Framework.Ownership()
		sum := 0.0
		for _, frac := range own {
			sum += frac
		}
		if math.Abs(sum-1) > 1e-9 {
			bad("ring ownership sums to %.12f, want 1", sum)
		}
		live := 0
		for _, si := range out.Framework.ShardInfos() {
			if !si.Retired {
				live++
			}
		}
		if live != len(own) {
			bad("%d live shards but %d ring owners", live, len(own))
		}
	}

	// Durability: no journaled mutation may have been dropped.
	if m.Durable {
		if got := out.Result.Durability[tuplespace.CounterJournalErrors]; got != 0 {
			bad("%s = %d, want 0", tuplespace.CounterJournalErrors, got)
		}
	}

	// Epoch monotonicity across every event boundary.
	for s := 1; s < len(st.samples); s++ {
		prev, cur := st.samples[s-1], st.samples[s]
		if cur.topo < prev.topo {
			bad("topology epoch went backwards at event %d: %d -> %d", s-1, prev.topo, cur.topo)
		}
		for i := range cur.shards {
			if cur.shards[i] < prev.shards[i] {
				bad("shard %d epoch went backwards at event %d: %d -> %d", i, s-1, prev.shards[i], cur.shards[i])
			}
		}
	}

	return append(v, st.eventFailures...)
}

// wantSims is the montecarlo exactness target derived from the manifest.
func wantSims(m Manifest) int { return m.App.Tasks * 50 }

// checkWALEquivalence closes the framework and recovers each shard's data
// directory into a fresh space: the restored live-entry count must equal
// what the serving space held at shutdown. This is PR 3's recovery
// guarantee as a universal post-condition instead of one scripted
// scenario.
func checkWALEquivalence(m Manifest, out harness.Outcome, dataDir string, fsync wal.FsyncPolicy) []string {
	var v []string
	infos := out.Framework.ShardInfos()
	out.Framework.Close()
	for i := 0; i < m.Shards && i < len(infos); i++ {
		dir := filepath.Join(dataDir, fmt.Sprintf("shard%d", i))
		_, d, err := space.NewLocalDurable(out.Clock, space.DurableOptions{Dir: dir, Fsync: fsync})
		if err != nil {
			v = append(v, fmt.Sprintf("wal-equivalence: reopen shard %d: %v", i, err))
			continue
		}
		if got, want := d.Info().Restored, infos[i].LiveEntries; got != want {
			v = append(v, fmt.Sprintf("wal-equivalence: shard %d recovered %d live entries, had %d at shutdown", i, got, want))
		}
		d.Close()
	}
	return v
}
