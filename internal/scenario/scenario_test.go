package scenario

import (
	"reflect"
	"testing"
	"time"

	"gospaces/internal/faults"
)

// TestGenerateValidAndCovering: every sampled manifest must pass
// Validate, and the grammar must actually reach each deployment shape —
// a sweep that silently collapsed to one corner would make the nightly
// soak vacuous.
func TestGenerateValidAndCovering(t *testing.T) {
	shapes := map[string]int{}
	for seed := int64(1); seed <= 300; seed++ {
		m := Generate(seed)
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid manifest: %v", seed, err)
		}
		if m.Seed != seed || m.Faults.Seed != seed {
			t.Fatalf("seed %d: manifest carries seeds %d/%d", seed, m.Seed, m.Faults.Seed)
		}
		if m.Replicas == 1 {
			shapes["replicated"]++
		}
		if m.Elastic {
			shapes["elastic"]++
		}
		if m.Durable {
			shapes["durable"]++
		}
		if m.App.Name == AppRayTrace {
			shapes["raytrace"]++
		}
		if len(m.Events) > 0 {
			shapes["events"]++
		}
		if len(m.Faults.Crashes) > 0 {
			shapes["lookup-outage"]++
		}
		if m.ExactlyOnce {
			shapes["exactly-once"]++
		}
		if m.AmbiguousTimeouts() {
			shapes["ambiguous-timeout"]++
		}
		if m.ExactlyOnce && m.Replicas == 1 {
			shapes["exactly-once-replicated"]++
		}
		if m.MaxInflight > 0 {
			shapes["overload"]++
			burst := false
			for _, ev := range m.Events {
				if ev.Kind == OverloadBurst {
					burst = true
				}
			}
			if !burst {
				t.Errorf("seed %d: overload knobs armed without an overload-burst event", seed)
			}
		}
		if m.RetryBudget > 0 {
			shapes["retry-budget"]++
		}
		if m.Breakers {
			shapes["breakers"]++
		}
		for _, r := range m.Faults.Rules {
			shapes[r.Kind]++
		}
	}
	for _, shape := range []string{
		"replicated", "elastic", "durable", "raytrace", "events", "lookup-outage",
		"exactly-once", "ambiguous-timeout", "exactly-once-replicated",
		"overload", "retry-budget", "breakers",
		faults.RuleCrashOnCall, faults.RuleDelay, faults.RuleDuplicate, faults.RuleDrop,
	} {
		if shapes[shape] == 0 {
			t.Errorf("grammar never produced shape %q in 300 seeds", shape)
		}
	}
}

// TestManifestJSONRoundTrip: a manifest must survive the trip through its
// CI artifact form — the nightly workflow replays failures from exactly
// these bytes.
func TestManifestJSONRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		m := Generate(seed)
		data, err := m.MarshalIndent()
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		back, err := ParseManifest(data)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("seed %d: manifest changed across JSON round trip:\n  out: %+v\n  in:  %+v", seed, m, back)
		}
	}
}

// TestRunSeedsPassInvariants is the fixed-seed slice of the nightly soak
// that gates every PR: a handful of generated manifests across the
// deployment shapes must hold every invariant.
func TestRunSeedsPassInvariants(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		m := Generate(seed)
		if rep := Run(m); rep.Failed() {
			data, _ := m.MarshalIndent()
			t.Errorf("seed %d violated invariants: %v\nmanifest:\n%s", seed, rep.Violations, data)
		}
	}
}

// TestRunSameSeedDeterministic: one int64 must reproduce an entire run —
// the injected-fault history, the event outcomes and the verdict. This is
// what makes a logged nightly seed a complete bug report.
func TestRunSameSeedDeterministic(t *testing.T) {
	// Seed 9's manifest combines elasticity, a worker crash and a split,
	// so the comparison spans the fault layer and the control plane.
	m := Generate(9)
	a, b := Run(m), Run(m)
	if !reflect.DeepEqual(a.Violations, b.Violations) {
		t.Errorf("same manifest, different verdicts: %v vs %v", a.Violations, b.Violations)
	}
	if !reflect.DeepEqual(a.FaultEvents, b.FaultEvents) {
		t.Errorf("same manifest, different fault histories:\n  run 1: %v\n  run 2: %v", a.FaultEvents, b.FaultEvents)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Errorf("same manifest, different event outcomes:\n  run 1: %+v\n  run 2: %+v", a.Events, b.Events)
	}
	// The virtual span is reproducible to goroutine-interleaving noise
	// (sub-microsecond poll-boundary shifts), not bit-for-bit; the replay
	// fingerprint above is the exact contract.
	if d := a.VirtualElapsed - b.VirtualElapsed; d < -10*time.Millisecond || d > 10*time.Millisecond {
		t.Errorf("same manifest, virtual spans differ by %v: %s vs %s", d, a.VirtualElapsed, b.VirtualElapsed)
	}
}

// TestCorruptResultCaughtAndShrunk seeds a deliberate invariant violation
// — a forged result entry the master aggregates in place of a real one —
// and asserts the checker trips on it and the shrinker strips the decoy
// events and fault rules down to (essentially) the forgery alone.
func TestCorruptResultCaughtAndShrunk(t *testing.T) {
	m := Manifest{
		Seed:    5,
		Workers: 3,
		Shards:  1,
		TxnTTL:  8 * time.Second,
		// Work sized so the modeled execution (TotalSims/100 × Work /
		// workers = 8s) comfortably spans both forgery events.
		App: AppSpec{Name: AppMonteCarlo, Tasks: 16, Work: 3 * time.Second},
		Faults: faults.PlanSpec{
			Seed: 5,
			// Decoy rules the minimizer should discard: neither is needed
			// to reproduce the violation.
			Rules: []faults.RuleSpec{
				{Kind: faults.RuleDelay, From: "node/*", Method: "space.*", Prob: 0.1, Delay: 30 * time.Millisecond},
				{Kind: faults.RuleDuplicate, From: "node/*", To: "master*", Method: "space.Write", Prob: 0.05},
			},
		},
		Events: []Event{
			{At: 1 * time.Second, Kind: CorruptResult},
			{At: 2 * time.Second, Kind: CorruptResult},
		},
	}
	rep := Run(m)
	if !rep.Failed() {
		t.Fatal("forged results were not caught: the exactness invariant is vacuous")
	}

	min, runs := Shrink(m, 0)
	if runs == 0 {
		t.Fatal("shrinker did no work")
	}
	if !Run(min).Failed() {
		t.Fatal("minimized manifest no longer fails")
	}
	if len(min.Events) >= len(m.Events) || len(min.Faults.Rules) > 0 {
		t.Errorf("shrink left %d events and %d fault rules (from %d events, %d rules)",
			len(min.Events), len(min.Faults.Rules), len(m.Events), len(m.Faults.Rules))
	}
	found := false
	for _, ev := range min.Events {
		if ev.Kind == CorruptResult {
			found = true
		}
	}
	if !found {
		t.Errorf("minimized manifest lost the corrupt-result event: %+v", min.Events)
	}
}
