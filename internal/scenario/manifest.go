// Package scenario is a property-based test harness for the whole
// framework: it generates random — but valid — cluster deployments with
// timed fault/failover/reshard event plans, runs them in-process on the
// virtual clock through the same assembly path the e2e suites use
// (internal/e2e/harness), and checks the global invariants every prior
// subsystem proved piecemeal: zero lost or duplicated results, epoch
// monotonicity, topology convergence, and WAL-recovery equivalence. A
// failing manifest is minimized by a greedy event-plan shrinker before it
// is reported, and every manifest serializes to JSON so a nightly failure
// replays from its logged seed alone.
package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"gospaces/internal/faults"
)

// App names accepted by AppSpec.Name.
const (
	AppMonteCarlo = "montecarlo"
	AppRayTrace   = "raytrace"
)

// AppSpec picks the application and sizes its bag of tasks.
type AppSpec struct {
	Name string `json:"name"`
	// Tasks is the planned task count (montecarlo: batches of 50 sims;
	// raytrace: image strips).
	Tasks int `json:"tasks"`
	// Work is the modeled per-unit worker cost: per subtask for
	// montecarlo, per pixel for raytrace. The generator sizes it so the
	// job's execution spans the whole event plan.
	Work time.Duration `json:"work"`
	// Spread scatters montecarlo tasks across shards by per-task keys.
	Spread bool `json:"spread,omitempty"`
}

// Event kinds. CorruptResult is test-only: Generate never emits it; it
// forges an extra result entry mid-run so the checker's
// zero-lost/zero-duplicated invariant MUST trip — the harness's own
// smoke test.
const (
	KillPrimary   = "kill-primary"
	Rejoin        = "rejoin"
	RestartShard  = "restart-shard"
	Split         = "split"
	Merge         = "merge"
	CorruptResult = "corrupt-result"
	// OverloadBurst multiplies the offered load: Factor extra read
	// generators per worker hammer the space for Window. With the
	// manifest's overload knobs armed (OpCost, MaxInflight) the burst
	// saturates the shard gates and exercises admission control, brownout
	// shedding and retry budgets while the invariants must still hold —
	// shed ops are the burst's own and the workers', and a worker
	// absorbs a rejection by aborting its transaction and repolling. An
	// optional slow-shard fault rides the fault plan (the generator pairs
	// a delay rule on one shard's address with the burst).
	OverloadBurst = "overload-burst"
)

// Event is one timed control-plane action. Events run sequentially in
// manifest order on the run's script goroutine; At is the virtual-clock
// offset from run start at which the event fires.
type Event struct {
	At   time.Duration `json:"at"`
	Kind string        `json:"kind"`
	// Shard targets kill-primary/rejoin/restart-shard/split by base-shard
	// index. Merge resolves its target at runtime (the first live
	// split-born ring, sorted) because split-born ring IDs exist only
	// once the split has happened. Overload-burst offers load to the
	// whole ring and ignores it.
	Shard int `json:"shard,omitempty"`
	// Factor is overload-burst's load multiplier: Factor extra read
	// generators per worker (0 = 4).
	Factor int `json:"factor,omitempty"`
	// Window is how long an overload-burst sustains (0 = 2s).
	Window time.Duration `json:"window,omitempty"`
}

// Manifest is a complete, replayable deployment + event plan. Everything
// the runner does is derived from it and the virtual clock, so equal
// manifests produce equal runs.
type Manifest struct {
	// Seed identifies the manifest (Generate(seed) reproduces it) and
	// seeds the fault plan's decision streams.
	Seed int64 `json:"seed"`
	// Workers is the cluster size (uniform 1.0-speed nodes).
	Workers int `json:"workers"`
	// Shards is the base shard count.
	Shards int `json:"shards"`
	// Replicas gives every shard a hot standby (0 or 1).
	Replicas int `json:"replicas,omitempty"`
	// Elastic enables online split/merge resharding.
	Elastic bool `json:"elastic,omitempty"`
	// Durable backs every shard with a WAL under a run-local data dir.
	Durable bool `json:"durable,omitempty"`
	// Fsync is the WAL sync policy: "always", "interval" or "never"
	// (durable deployments only; "" = always).
	Fsync string `json:"fsync,omitempty"`
	// TxnTTL leases each worker's per-task transaction (0 = 8s).
	TxnTTL time.Duration `json:"txn_ttl,omitempty"`
	// OpTimeout bounds each space RPC a worker issues (0 = unbounded).
	// Timed-out calls surface space.ErrOpTimeout — the ambiguous "did it
	// execute?" outcome the exactly-once machinery exists to resolve.
	OpTimeout time.Duration `json:"op_timeout,omitempty"`
	// ExactlyOnce routes every mutation through the token-minting router
	// and memoizes outcomes shard-side, so ambiguous op timeouts are
	// retried with the original token instead of surfacing.
	ExactlyOnce bool `json:"exactly_once,omitempty"`
	// OpCost models each shard server's per-op CPU (core.Config.
	// SpaceOpCost): with it set an overload-burst actually saturates the
	// shard gates instead of being absorbed by an infinitely fast server.
	OpCost time.Duration `json:"op_cost,omitempty"`
	// MaxInflight bounds each shard's admitted-but-unfinished ops and arms
	// its brownout controller (core.Config.MaxInflight; 0 = unlimited).
	MaxInflight int `json:"max_inflight,omitempty"`
	// RetryBudget caps each router's retry volume (core.Config.RetryBudget).
	RetryBudget int `json:"retry_budget,omitempty"`
	// Breakers arms per-shard circuit breakers in every router.
	Breakers bool `json:"breakers,omitempty"`
	// App is the workload.
	App AppSpec `json:"app"`
	// Faults is the seeded fault schedule installed on the cluster's
	// network.
	Faults faults.PlanSpec `json:"faults"`
	// Events is the timed control-plane plan.
	Events []Event `json:"events,omitempty"`
}

// Validate rejects manifests the runner cannot execute, with enough
// detail to fix a hand-written one.
func (m Manifest) Validate() error {
	if m.Workers < 1 {
		return fmt.Errorf("scenario: workers = %d, want >= 1", m.Workers)
	}
	if m.Shards < 1 {
		return fmt.Errorf("scenario: shards = %d, want >= 1", m.Shards)
	}
	if m.Replicas < 0 || m.Replicas > 1 {
		return fmt.Errorf("scenario: replicas = %d, want 0 or 1", m.Replicas)
	}
	switch m.App.Name {
	case AppMonteCarlo, AppRayTrace:
	default:
		return fmt.Errorf("scenario: unknown app %q", m.App.Name)
	}
	if m.App.Tasks < 1 {
		return fmt.Errorf("scenario: app tasks = %d, want >= 1", m.App.Tasks)
	}
	if m.Fsync != "" && m.Fsync != "always" && m.Fsync != "interval" && m.Fsync != "never" {
		return fmt.Errorf("scenario: unknown fsync policy %q", m.Fsync)
	}
	if !m.Durable && m.Fsync != "" {
		return fmt.Errorf("scenario: fsync policy set on a non-durable manifest")
	}
	if m.OpTimeout < 0 {
		return fmt.Errorf("scenario: op_timeout = %s, want >= 0", m.OpTimeout)
	}
	if m.OpCost < 0 || m.MaxInflight < 0 || m.RetryBudget < 0 {
		return fmt.Errorf("scenario: overload knobs must be >= 0 (op_cost %s, max_inflight %d, retry_budget %d)",
			m.OpCost, m.MaxInflight, m.RetryBudget)
	}
	if m.AmbiguousTimeouts() && !m.ExactlyOnce {
		return fmt.Errorf("scenario: ambiguous-timeout faults (delay > op_timeout) require exactly_once: at-most-once surfaces the ambiguity as an error, so exactness cannot hold")
	}
	last := time.Duration(-1)
	for i, ev := range m.Events {
		if ev.At < last {
			return fmt.Errorf("scenario: event %d (%s) at %s is out of order", i, ev.Kind, ev.At)
		}
		last = ev.At
		switch ev.Kind {
		case KillPrimary, Rejoin:
			if m.Replicas == 0 {
				return fmt.Errorf("scenario: event %d: %s requires replicas", i, ev.Kind)
			}
		case RestartShard:
			if !m.Durable {
				return fmt.Errorf("scenario: event %d: restart-shard requires a durable deployment", i)
			}
			if m.Replicas > 0 {
				return fmt.Errorf("scenario: event %d: restart-shard and replicas are exclusive (failover replaces restarts)", i)
			}
		case Split, Merge:
			if !m.Elastic {
				return fmt.Errorf("scenario: event %d: %s requires an elastic deployment", i, ev.Kind)
			}
		case CorruptResult:
			if m.App.Name != AppMonteCarlo {
				return fmt.Errorf("scenario: event %d: corrupt-result supports only montecarlo", i)
			}
		case OverloadBurst:
			if ev.Factor < 0 || ev.Window < 0 {
				return fmt.Errorf("scenario: event %d: overload-burst factor/window must be >= 0", i)
			}
		default:
			return fmt.Errorf("scenario: event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.Kind != Merge && ev.Kind != OverloadBurst && (ev.Shard < 0 || ev.Shard >= m.Shards) {
			return fmt.Errorf("scenario: event %d (%s) targets shard %d of %d", i, ev.Kind, ev.Shard, m.Shards)
		}
		if ev.Kind != OverloadBurst && (ev.Factor != 0 || ev.Window != 0) {
			return fmt.Errorf("scenario: event %d (%s): factor/window apply only to overload-burst", i, ev.Kind)
		}
	}
	return nil
}

// AmbiguousTimeouts reports whether the fault plan can make a call
// outlive the manifest's op deadline: a delay rule whose added latency
// exceeds OpTimeout means the caller gives up while the shard still
// executes the mutation — the "did it happen?" outcome only an
// exactly-once retry can resolve.
func (m Manifest) AmbiguousTimeouts() bool {
	if m.OpTimeout <= 0 {
		return false
	}
	for _, r := range m.Faults.Rules {
		if r.Kind == faults.RuleDelay && r.Delay > m.OpTimeout {
			return true
		}
	}
	return false
}

// MarshalIndent renders the manifest as the JSON artifact CI uploads.
func (m Manifest) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// ParseManifest decodes a manifest artifact and validates it.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("scenario: parse manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}
