package scenario

import (
	"fmt"
	"os"
	"sort"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/apps/raytrace"
	"gospaces/internal/core"
	"gospaces/internal/e2e/harness"
	"gospaces/internal/obs"
	"gospaces/internal/space"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/wal"
)

// EventOutcome records what one planned event actually did. Skipped
// events (a merge with no split-born shard to merge, a rejoin with no
// promotion to rejoin behind) are not failures: the shrinker produces
// such manifests routinely, and a skip is deterministic given the seed.
type EventOutcome struct {
	Event   Event  `json:"event"`
	Skipped bool   `json:"skipped,omitempty"`
	Note    string `json:"note,omitempty"`
}

// Report is one manifest's verdict: the empty-Violations case is a pass.
type Report struct {
	Manifest   Manifest       `json:"manifest"`
	Violations []string       `json:"violations,omitempty"`
	Events     []EventOutcome `json:"events,omitempty"`
	// FaultEvents is the injected-fault history — the replay fingerprint
	// two same-seed runs must agree on.
	FaultEvents map[string]uint64 `json:"fault_events,omitempty"`
	// VirtualElapsed is the run's span on the virtual clock.
	VirtualElapsed time.Duration `json:"virtual_elapsed"`
	// Timeline is the run's merged causal flight-recorder timeline — the
	// forensic record a failing seed's artifact carries so the control-
	// plane history (promotions, retargets, reshard phases, topology
	// adoptions) can be read without re-running the manifest.
	Timeline []obs.FlightEvent `json:"timeline,omitempty"`
	// Result is the full framework result for post-hoc inspection.
	Result core.Result `json:"-"`
}

// Failed reports whether any invariant was violated.
func (r Report) Failed() bool { return len(r.Violations) > 0 }

// Run executes the manifest in-process under a fresh virtual clock and
// checks every invariant. It never returns an error: anything that goes
// wrong — including infrastructure failures — is a violation in the
// report, so callers treat pass/fail uniformly and the shrinker can
// re-run candidates blindly.
func Run(m Manifest) Report {
	rep := Report{Manifest: m}
	fail := func(format string, args ...interface{}) Report {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
		return rep
	}
	if err := m.Validate(); err != nil {
		return fail("invalid manifest: %v", err)
	}
	plan, err := m.Faults.Build()
	if err != nil {
		return fail("fault plan: %v", err)
	}

	app, err := buildApp(m.App)
	if err != nil {
		return fail("%v", err)
	}

	dataDir := ""
	fsync := wal.FsyncAlways
	if m.Durable {
		if dataDir, err = os.MkdirTemp("", "scenario"); err != nil {
			return fail("data dir: %v", err)
		}
		defer os.RemoveAll(dataDir)
		pol := m.Fsync
		if pol == "" {
			pol = "always"
		}
		if fsync, err = wal.ParseFsyncPolicy(pol); err != nil {
			return fail("fsync: %v", err)
		}
	}

	ttl := m.TxnTTL
	if ttl == 0 {
		ttl = 8 * time.Second
	}
	st := &runState{m: m, kills: make([]int, m.Shards)}
	// The flight recorder is seeded like everything else: two same-seed
	// runs produce byte-identical timelines (modulo wall stamps, which
	// come off the virtual clock and so are identical too).
	o := obs.New(m.Seed)
	out, runErr := harness.Run(harness.RunSpec{
		Workers: m.Workers,
		Plan:    plan,
		Config: core.Config{
			Shards:        m.Shards,
			Replicas:      m.Replicas,
			Elastic:       m.Elastic,
			DataDir:       dataDir,
			FsyncPolicy:   fsync,
			DedupResults:  true,
			TxnTTL:        ttl,
			OpTimeout:     m.OpTimeout,
			ExactlyOnce:   m.ExactlyOnce,
			SpaceOpCost:   m.OpCost,
			MaxInflight:   m.MaxInflight,
			RetryBudget:   m.RetryBudget,
			Breakers:      m.Breakers,
			ResultTimeout: 10 * time.Minute,
			Obs:           o,
		},
		Job:    app.job,
		Script: st.script,
	})
	rep.Events = st.outcomes
	rep.Result = out.Result
	rep.FaultEvents = out.Result.FaultEvents
	rep.VirtualElapsed = out.Clock.Now().Sub(harness.Epoch)
	if runErr != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("run failed: %v", runErr))
	}
	rep.Violations = append(rep.Violations, checkInvariants(m, out, st, app)...)

	// Capture the merged causal timeline before anything closes the
	// framework, then hold it to the vclock consistency rules: per-node
	// stamps monotone, per-shard epochs non-regressing in causal order.
	rep.Timeline = o.Fl().Timeline()
	if err := obs.CheckTimeline(rep.Timeline); err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("flight timeline: %v", err))
	}

	// The WAL-recovery check closes the framework and reopens each
	// shard's log; everything else must be read before it runs.
	if m.Durable && m.Replicas == 0 && !m.Elastic && runErr == nil {
		rep.Violations = append(rep.Violations, checkWALEquivalence(m, out, dataDir, fsync)...)
	} else {
		out.Framework.Close()
	}
	return rep
}

// appRun couples a core.Job with its app-specific exactness check.
type appRun struct {
	job core.Job
	// wantTasks is the planned task count.
	wantTasks int
	mc        *montecarlo.Job
	rt        *raytrace.Job
}

func buildApp(spec AppSpec) (appRun, error) {
	switch spec.Name {
	case AppMonteCarlo:
		jc := montecarlo.DefaultJobConfig()
		jc.SimsPerTask = 50
		jc.TotalSims = spec.Tasks * jc.SimsPerTask
		jc.WorkPerSubtask = spec.Work
		jc.PlanningCostPerTask = 10 * time.Millisecond
		jc.AggregationCostPerResult = 5 * time.Millisecond
		jc.ShardSpread = spec.Spread
		job := montecarlo.NewJob(jc)
		// Plan emits a high and a low task per 2×SimsPerTask block.
		blocks := (jc.TotalSims + 2*jc.SimsPerTask - 1) / (2 * jc.SimsPerTask)
		return appRun{job: job, mc: job, wantTasks: 2 * blocks}, nil
	case AppRayTrace:
		jc := raytrace.DefaultJobConfig()
		jc.StripWidth = (jc.Width + spec.Tasks - 1) / spec.Tasks
		jc.WorkPerPixel = spec.Work
		jc.PlanningCostPerTask = 10 * time.Millisecond
		jc.AggregationCostPerResult = 5 * time.Millisecond
		job := raytrace.NewJob(jc)
		strips := (jc.Width + jc.StripWidth - 1) / jc.StripWidth
		return appRun{job: job, rt: job, wantTasks: strips}, nil
	}
	return appRun{}, fmt.Errorf("unknown app %q", spec.Name)
}

// epochSample is one observation of every monotone counter, taken at
// event boundaries.
type epochSample struct {
	topo   uint64
	shards []uint64
}

// runState is the script goroutine's bookkeeping: which events actually
// executed (the invariants' expected values) and the epoch samples the
// monotonicity check compares.
type runState struct {
	m        Manifest
	kills    []int // executed kills per base shard
	splits   int
	merges   int
	outcomes []EventOutcome
	samples  []epochSample
	// eventFailures are hard event errors — a restart that could not
	// recover, a split that failed outright. They become violations.
	eventFailures []string
	forged        int
}

func (st *runState) script(f *core.Framework) {
	start := f.Clock.Now()
	st.sample(f)
	for _, ev := range st.m.Events {
		if wait := ev.At - f.Clock.Now().Sub(start); wait > 0 {
			f.Clock.Sleep(wait)
		}
		st.apply(f, ev)
		st.sample(f)
	}
}

func (st *runState) sample(f *core.Framework) {
	s := epochSample{topo: f.TopologyEpoch(), shards: make([]uint64, st.m.Shards)}
	for i := range s.shards {
		s.shards[i] = f.ShardEpoch(i)
	}
	st.samples = append(st.samples, s)
}

func (st *runState) apply(f *core.Framework, ev Event) {
	out := EventOutcome{Event: ev}
	skip := func(note string) {
		out.Skipped, out.Note = true, note
	}
	hard := func(err error) {
		out.Note = err.Error()
		st.eventFailures = append(st.eventFailures, fmt.Sprintf("event %s(shard %d) at %s: %v", ev.Kind, ev.Shard, ev.At, err))
	}
	switch ev.Kind {
	case KillPrimary:
		// Never leave two ring positions headless at once: earlier kills
		// must have promoted before the next primary dies (the same
		// discipline the failover e2e scripts keep).
		for i := range st.kills {
			want := uint64(1 + st.kills[i])
			i := i
			st.waitFor(f, 10*time.Second, func() bool { return f.ShardEpoch(i) >= want })
		}
		if err := f.KillShardPrimary(ev.Shard); err != nil {
			skip(err.Error())
		} else {
			st.kills[ev.Shard]++
		}
	case Rejoin:
		want := uint64(1 + st.kills[ev.Shard])
		if !st.waitFor(f, 15*time.Second, func() bool { return f.ShardEpoch(ev.Shard) >= want }) {
			skip("no promotion to rejoin behind")
		} else if err := f.RejoinShard(ev.Shard); err != nil {
			skip(err.Error())
		}
	case RestartShard:
		if _, err := f.RestartShard(ev.Shard); err != nil {
			hard(err)
		}
	case Split:
		ring, ok := f.RingID(ev.Shard)
		if !ok {
			skip(fmt.Sprintf("no shard %d", ev.Shard))
		} else if _, err := f.SplitShard(ring); err != nil {
			hard(err)
		} else {
			st.splits++
		}
	case Merge:
		rings := f.SplitBorn()
		if len(rings) == 0 {
			skip("no split-born shard to merge")
			break
		}
		sort.Strings(rings)
		if err := f.MergeShards(rings[0]); err != nil {
			hard(err)
		} else {
			st.merges++
		}
	case CorruptResult:
		// Forge an extra result: the master aggregates it in place of a
		// real one, so the zero-lost/zero-duplicated invariant MUST trip.
		_, err := f.Space.Write(montecarlo.Result{
			Job: montecarlo.JobName, ID: 990000 + st.forged, Kind: "high", Sims: 1, Node: "forged",
		}, nil, tuplespace.Forever)
		if err != nil {
			skip(err.Error())
		} else {
			st.forged++
		}
	case OverloadBurst:
		st.burst(f, ev)
	}
	st.outcomes = append(st.outcomes, out)
}

// burst multiplies the offered load for the event's window: Factor read
// generators per worker hammer the base shards over RPC, so the traffic
// rides through each shard's admission controller exactly like a worker's
// — inflight rises, the gates queue, and with the manifest's knobs armed
// the brownout shedder engages. The generators' errors are discarded:
// shed and rejected ops are exactly what the burst exists to provoke, and
// the invariants only care that the *workers'* results survive the storm.
func (st *runState) burst(f *core.Framework, ev Event) {
	factor, window := ev.Factor, ev.Window
	if factor <= 0 {
		factor = 4
	}
	if window <= 0 {
		window = 2 * time.Second
	}
	tmpl := burstTemplate(st.m)
	end := f.Clock.Now().Add(window)
	g := vclock.NewGroup(f.Clock)
	for k := 0; k < factor*st.m.Workers; k++ {
		from := fmt.Sprintf("burst/%d", k)
		addr := shardAddr(k % st.m.Shards)
		g.Go(func() {
			// A generator dies with the endpoint it targets (a killed
			// primary, a mid-restart shard): errors are part of the storm.
			sp := space.NewProxy(f.Cluster.Net.DialAs(from, addr))
			for f.Clock.Now().Before(end) {
				_, _ = sp.ReadIfExists(tmpl, nil) // PriNormal: shed at level 2
				_, _ = sp.Count(tmpl)             // PriLow: shed at level 1
				f.Clock.Sleep(5 * time.Millisecond)
			}
		})
	}
	g.Wait()
}

// burstTemplate is the unkeyed task template the burst generators scan
// for — unkeyed so every read scatters across the whole ring.
func burstTemplate(m Manifest) tuplespace.Entry {
	if m.App.Name == AppRayTrace {
		return raytrace.Task{}
	}
	return montecarlo.Task{}
}

// waitFor polls cond on the virtual clock, bounded by d.
func (st *runState) waitFor(f *core.Framework, d time.Duration, cond func() bool) bool {
	deadline := f.Clock.Now().Add(d)
	for !cond() {
		if !f.Clock.Now().Before(deadline) {
			return false
		}
		f.Clock.Sleep(200 * time.Millisecond)
	}
	return true
}
