package scenario

// Shrink greedily minimizes a failing manifest: it tries deleting one
// event, then one fault rule, partition, or crash window at a time,
// keeping each deletion whose manifest still fails, and repeats until a
// whole pass removes nothing. Runs are deterministic (virtual clock +
// seeded plan), so "still fails" is a pure function of the candidate and
// the greedy loop terminates at a locally minimal manifest — typically
// the single event or rule that breaks the invariant.
//
// maxRuns bounds the work (each probe is a full simulated run); 0 means
// DefaultShrinkRuns. It returns the minimized manifest and how many
// probe runs it spent.
func Shrink(m Manifest, maxRuns int) (Manifest, int) {
	if maxRuns <= 0 {
		maxRuns = DefaultShrinkRuns
	}
	runs := 0
	stillFails := func(c Manifest) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		return Run(c).Failed()
	}

	for pass := true; pass && runs < maxRuns; {
		pass = false
		// Events first: they are the usual culprits and deleting one can
		// make whole fault rules irrelevant.
		for i := 0; i < len(m.Events); {
			c := m
			c.Events = deleteAt(m.Events, i)
			if stillFails(c) {
				m, pass = c, true
				continue // same index now names the next event
			}
			i++
		}
		for i := 0; i < len(m.Faults.Rules); {
			c := m
			c.Faults = m.Faults
			c.Faults.Rules = deleteAt(m.Faults.Rules, i)
			if stillFails(c) {
				m, pass = c, true
				continue
			}
			i++
		}
		for i := 0; i < len(m.Faults.Partitions); {
			c := m
			c.Faults.Partitions = deleteAt(m.Faults.Partitions, i)
			if stillFails(c) {
				m, pass = c, true
				continue
			}
			i++
		}
		for i := 0; i < len(m.Faults.Crashes); {
			c := m
			c.Faults.Crashes = deleteAt(m.Faults.Crashes, i)
			if stillFails(c) {
				m, pass = c, true
				continue
			}
			i++
		}
	}
	return m, runs
}

// DefaultShrinkRuns bounds a minimization at roughly a minute of
// simulated runs.
const DefaultShrinkRuns = 40

// deleteAt returns s without element i, never aliasing s's array.
func deleteAt[T any](s []T, i int) []T {
	out := make([]T, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}
