package snmp

import (
	"fmt"
	"sync/atomic"
)

// Well-known trap OIDs.
var (
	// OIDSnmpTrapOID is snmpTrapOID.0, the varbind identifying a trap.
	OIDSnmpTrapOID = MustOID("1.3.6.1.6.3.1.1.4.1.0")
	// OIDLoadBandTrap is this repository's enterprise trap fired when a
	// node's background load crosses a rule-base band boundary.
	OIDLoadBandTrap = MustOID("1.3.6.1.4.1.52429.2.1")
)

// TrapSink receives encoded trap datagrams — the manager side endpoint.
// Both the RPC method "snmp.Trap" and plain function wiring satisfy it.
type TrapSink interface {
	SendTrap(packet []byte) error
}

// TrapSinkFunc adapts a function to TrapSink.
type TrapSinkFunc func(packet []byte) error

// SendTrap implements TrapSink.
func (f TrapSinkFunc) SendTrap(packet []byte) error { return f(packet) }

// TrapSender builds and emits SNMPv2 traps from an agent's side.
type TrapSender struct {
	Community string
	Sink      TrapSink
	reqID     int32
}

// NewTrapSender returns a sender delivering to sink.
func NewTrapSender(community string, sink TrapSink) *TrapSender {
	return &TrapSender{Community: community, Sink: sink}
}

// Send emits a trap identified by trapOID with the given payload
// varbinds. Per RFC 3416, the first varbinds are sysUpTime.0 and
// snmpTrapOID.0.
func (t *TrapSender) Send(uptime TimeTicks, trapOID OID, payload ...Varbind) error {
	vbs := make([]Varbind, 0, len(payload)+2)
	vbs = append(vbs,
		Varbind{OID: OIDSysUpTime, Value: uptime},
		Varbind{OID: OIDSnmpTrapOID, Value: OctetString(trapOID.String())},
	)
	vbs = append(vbs, payload...)
	msg := Message{Community: t.Community, PDU: PDU{
		Type:      TrapV2,
		RequestID: atomic.AddInt32(&t.reqID, 1),
		Varbinds:  vbs,
	}}
	return t.Sink.SendTrap(msg.Encode())
}

// ParseTrap decodes a trap packet and returns its trap OID and payload
// varbinds (with the two standard header varbinds stripped).
func ParseTrap(packet []byte) (trapOID OID, payload []Varbind, err error) {
	msg, err := Decode(packet)
	if err != nil {
		return nil, nil, err
	}
	if msg.PDU.Type != TrapV2 {
		return nil, nil, fmt.Errorf("%w: PDU type %v is not a trap", ErrDecode, msg.PDU.Type)
	}
	if len(msg.PDU.Varbinds) < 2 {
		return nil, nil, fmt.Errorf("%w: trap with %d varbinds", ErrDecode, len(msg.PDU.Varbinds))
	}
	if !msg.PDU.Varbinds[1].OID.Equal(OIDSnmpTrapOID) {
		return nil, nil, fmt.Errorf("%w: second varbind is %s, want snmpTrapOID.0", ErrDecode, msg.PDU.Varbinds[1].OID)
	}
	oidStr, ok := msg.PDU.Varbinds[1].Value.(OctetString)
	if !ok {
		return nil, nil, fmt.Errorf("%w: snmpTrapOID.0 has value %T", ErrDecode, msg.PDU.Varbinds[1].Value)
	}
	trapOID, err = ParseOID(string(oidStr))
	if err != nil {
		return nil, nil, err
	}
	return trapOID, msg.PDU.Varbinds[2:], nil
}
