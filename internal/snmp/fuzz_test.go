package snmp

import (
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the BER decoder: it must never
// panic, and anything it accepts must re-encode to a message that decodes
// to the same value (semantic idempotence).
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		{Community: "public", PDU: PDU{Type: GetRequest, RequestID: 1,
			Varbinds: []Varbind{{OID: OIDHrProcessorLoad, Value: Null{}}}}},
		{Community: "", PDU: PDU{Type: GetResponse, RequestID: -5, ErrorStatus: 2, ErrorIndex: 1,
			Varbinds: []Varbind{{OID: OIDSysDescr, Value: OctetString("x")}, {OID: OIDSysUpTime, Value: TimeTicks(9)}}}},
		{Community: "c", PDU: PDU{Type: TrapV2, RequestID: 7,
			Varbinds: []Varbind{
				{OID: OIDSysUpTime, Value: TimeTicks(1)},
				{OID: OIDSnmpTrapOID, Value: OctetString(OIDLoadBandTrap.String())},
			}}},
	}
	for _, m := range seeds {
		f.Add(m.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0x30, 0x80, 0x01})
	f.Add([]byte{0x30, 0x03, 0x02, 0x01, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re := msg.Encode()
		msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("not idempotent:\n%+v\n%+v", msg, msg2)
		}
	})
}

// FuzzParseOID checks the OID parser never panics and round-trips
// whatever it accepts.
func FuzzParseOID(f *testing.F) {
	f.Add("1.3.6.1.2.1.25.3.3.1.2.1")
	f.Add("0.0")
	f.Add("")
	f.Add("1..2")
	f.Add("1.3.4294967295.7")
	f.Fuzz(func(t *testing.T, s string) {
		oid, err := ParseOID(s)
		if err != nil {
			return
		}
		back, err := ParseOID(oid.String())
		if err != nil || !back.Equal(oid) {
			t.Fatalf("round trip of %q failed: %v vs %v (%v)", s, oid, back, err)
		}
	})
}
