package snmp

import (
	"fmt"
)

// PDUType identifies the SNMP operation.
type PDUType byte

// PDU types.
const (
	GetRequest     PDUType = tagGetRequest
	GetNextRequest PDUType = tagGetNextRequest
	GetResponse    PDUType = tagGetResponse
	SetRequest     PDUType = tagSetRequest
	TrapV2         PDUType = tagTrapV2
)

// String names the PDU type.
func (t PDUType) String() string {
	switch t {
	case GetRequest:
		return "GetRequest"
	case GetNextRequest:
		return "GetNextRequest"
	case GetResponse:
		return "GetResponse"
	case SetRequest:
		return "SetRequest"
	case TrapV2:
		return "TrapV2"
	}
	return fmt.Sprintf("PDUType(0x%02x)", byte(t))
}

// SNMP error-status codes (subset).
const (
	ErrStatusNoError     = 0
	ErrStatusTooBig      = 1
	ErrStatusNoAccess    = 6
	ErrStatusGenErr      = 5
	ErrStatusNotWritable = 17
)

// Varbind pairs an OID with a value.
type Varbind struct {
	OID   OID
	Value Value
}

// PDU is the protocol data unit inside a message.
type PDU struct {
	Type        PDUType
	RequestID   int32
	ErrorStatus int32
	ErrorIndex  int32
	Varbinds    []Varbind
}

// Message is a complete SNMP v2c message.
type Message struct {
	Community string
	PDU       PDU
}

// versionV2c is the on-wire version number for SNMPv2c.
const versionV2c = 1

// Encode serializes the message to BER bytes.
func (m *Message) Encode() []byte {
	var vbs []byte
	for _, vb := range m.PDU.Varbinds {
		var one []byte
		one = encodeOID(one, vb.OID)
		v := vb.Value
		if v == nil {
			v = Null{}
		}
		one = v.encode(one)
		vbs = appendTLV(vbs, tagSequence, one)
	}
	var pdu []byte
	pdu = appendInt(pdu, tagInteger, int64(m.PDU.RequestID))
	pdu = appendInt(pdu, tagInteger, int64(m.PDU.ErrorStatus))
	pdu = appendInt(pdu, tagInteger, int64(m.PDU.ErrorIndex))
	pdu = appendTLV(pdu, tagSequence, vbs)

	var body []byte
	body = appendInt(body, tagInteger, versionV2c)
	body = appendTLV(body, tagOctetString, []byte(m.Community))
	body = appendTLV(body, byte(m.PDU.Type), pdu)

	return appendTLV(nil, tagSequence, body)
}

// Decode parses a BER-encoded SNMP v2c message.
func Decode(b []byte) (*Message, error) {
	r := &reader{b: b}
	tag, body, err := r.tlv()
	if err != nil {
		return nil, err
	}
	if err := expectTag(tag, tagSequence); err != nil {
		return nil, err
	}
	br := &reader{b: body}

	tag, vb, err := br.tlv()
	if err != nil {
		return nil, err
	}
	if err := expectTag(tag, tagInteger); err != nil {
		return nil, err
	}
	ver, err := decodeInt(vb)
	if err != nil {
		return nil, err
	}
	if ver != versionV2c {
		return nil, fmt.Errorf("%w: version %d, want v2c(%d)", ErrDecode, ver, versionV2c)
	}

	tag, comm, err := br.tlv()
	if err != nil {
		return nil, err
	}
	if err := expectTag(tag, tagOctetString); err != nil {
		return nil, err
	}

	pduTag, pduBody, err := br.tlv()
	if err != nil {
		return nil, err
	}
	switch PDUType(pduTag) {
	case GetRequest, GetNextRequest, GetResponse, SetRequest, TrapV2:
	default:
		return nil, fmt.Errorf("%w: PDU tag 0x%02x", ErrDecode, pduTag)
	}

	pr := &reader{b: pduBody}
	reqID, err := readIntField(pr)
	if err != nil {
		return nil, err
	}
	errStatus, err := readIntField(pr)
	if err != nil {
		return nil, err
	}
	errIndex, err := readIntField(pr)
	if err != nil {
		return nil, err
	}
	tag, vbsBody, err := pr.tlv()
	if err != nil {
		return nil, err
	}
	if err := expectTag(tag, tagSequence); err != nil {
		return nil, err
	}

	var varbinds []Varbind
	vr := &reader{b: vbsBody}
	for vr.len() > 0 {
		tag, one, err := vr.tlv()
		if err != nil {
			return nil, err
		}
		if err := expectTag(tag, tagSequence); err != nil {
			return nil, err
		}
		or := &reader{b: one}
		otag, ob, err := or.tlv()
		if err != nil {
			return nil, err
		}
		if err := expectTag(otag, tagOID); err != nil {
			return nil, err
		}
		oid, err := decodeOID(ob)
		if err != nil {
			return nil, err
		}
		vtag, vbody, err := or.tlv()
		if err != nil {
			return nil, err
		}
		val, err := decodeValue(vtag, vbody)
		if err != nil {
			return nil, err
		}
		varbinds = append(varbinds, Varbind{OID: oid, Value: val})
	}

	return &Message{
		Community: string(comm),
		PDU: PDU{
			Type:        PDUType(pduTag),
			RequestID:   int32(reqID),
			ErrorStatus: int32(errStatus),
			ErrorIndex:  int32(errIndex),
			Varbinds:    varbinds,
		},
	}, nil
}

func readIntField(r *reader) (int64, error) {
	tag, body, err := r.tlv()
	if err != nil {
		return 0, err
	}
	if err := expectTag(tag, tagInteger); err != nil {
		return 0, err
	}
	return decodeInt(body)
}
