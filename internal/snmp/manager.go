package snmp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gospaces/internal/transport"
)

// Errors returned by the manager.
var (
	ErrTimeout      = errors.New("snmp: request timed out")
	ErrNoSuchObject = errors.New("snmp: no such object")
	ErrAgent        = errors.New("snmp: agent returned error status")
)

// Exchanger moves one BER request datagram to an agent and returns its
// response — the transport abstraction under the manager.
type Exchanger interface {
	Exchange(req []byte) ([]byte, error)
	Close() error
}

// RPCExchanger carries SNMP packets over the in-process RPC network.
type RPCExchanger struct {
	C transport.Client
}

// Exchange implements Exchanger.
func (e *RPCExchanger) Exchange(req []byte) ([]byte, error) {
	res, err := e.C.Call("snmp.Exchange", req)
	if err != nil {
		return nil, err
	}
	b, ok := res.([]byte)
	if !ok {
		return nil, fmt.Errorf("snmp: bad exchange reply %T", res)
	}
	return b, nil
}

// Close implements Exchanger.
func (e *RPCExchanger) Close() error { return e.C.Close() }

// UDPExchanger carries SNMP packets over real UDP with retry.
type UDPExchanger struct {
	Addr    string
	Timeout time.Duration // per attempt; default 2s
	Retries int           // extra attempts; default 2

	mu   sync.Mutex
	conn *net.UDPConn
}

// Exchange implements Exchanger.
func (e *UDPExchanger) Exchange(req []byte) ([]byte, error) {
	e.mu.Lock()
	if e.conn == nil {
		ua, err := net.ResolveUDPAddr("udp", e.Addr)
		if err != nil {
			e.mu.Unlock()
			return nil, err
		}
		conn, err := net.DialUDP("udp", nil, ua)
		if err != nil {
			e.mu.Unlock()
			return nil, err
		}
		e.conn = conn
	}
	conn := e.conn
	e.mu.Unlock()

	timeout := e.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	attempts := e.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	buf := make([]byte, 64*1024)
	for i := 0; i < attempts; i++ {
		if _, err := conn.Write(req); err != nil {
			return nil, err
		}
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
		n, err := conn.Read(buf)
		if err == nil {
			out := make([]byte, n)
			copy(out, buf[:n])
			return out, nil
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			return nil, err
		}
	}
	return nil, ErrTimeout
}

// Close implements Exchanger.
func (e *UDPExchanger) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conn != nil {
		err := e.conn.Close()
		e.conn = nil
		return err
	}
	return nil
}

// Manager issues SNMP requests to one agent. It is the SNMP-server side of
// the paper's monitoring agent: the network-management module holds one
// Manager per registered worker and polls hrProcessorLoad through it.
type Manager struct {
	Community string
	ex        Exchanger
	reqID     int32
}

// NewManager returns a manager speaking to the agent behind ex.
func NewManager(community string, ex Exchanger) *Manager {
	return &Manager{Community: community, ex: ex}
}

// Close releases the underlying transport.
func (m *Manager) Close() error { return m.ex.Close() }

func (m *Manager) roundTrip(pduType PDUType, vbs []Varbind) (*Message, error) {
	req := Message{Community: m.Community, PDU: PDU{
		Type:      pduType,
		RequestID: atomic.AddInt32(&m.reqID, 1),
		Varbinds:  vbs,
	}}
	respBytes, err := m.ex.Exchange(req.Encode())
	if err != nil {
		return nil, err
	}
	resp, err := Decode(respBytes)
	if err != nil {
		return nil, err
	}
	if resp.PDU.RequestID != req.PDU.RequestID {
		return nil, fmt.Errorf("%w: response id %d for request %d", ErrDecode, resp.PDU.RequestID, req.PDU.RequestID)
	}
	if resp.PDU.ErrorStatus != ErrStatusNoError {
		return resp, fmt.Errorf("%w: status %d index %d", ErrAgent, resp.PDU.ErrorStatus, resp.PDU.ErrorIndex)
	}
	return resp, nil
}

// Get fetches the values at the given OIDs.
func (m *Manager) Get(oids ...OID) ([]Varbind, error) {
	vbs := make([]Varbind, len(oids))
	for i, o := range oids {
		vbs[i] = Varbind{OID: o, Value: Null{}}
	}
	resp, err := m.roundTrip(GetRequest, vbs)
	if err != nil {
		return nil, err
	}
	return resp.PDU.Varbinds, nil
}

// GetInt fetches a single OID and returns its value as an int64 (INTEGER,
// Gauge32, Counter32 or TimeTicks).
func (m *Manager) GetInt(oid OID) (int64, error) {
	vbs, err := m.Get(oid)
	if err != nil {
		return 0, err
	}
	if len(vbs) != 1 {
		return 0, fmt.Errorf("%w: %d varbinds", ErrDecode, len(vbs))
	}
	switch v := vbs[0].Value.(type) {
	case Integer:
		return int64(v), nil
	case Gauge32:
		return int64(v), nil
	case Counter32:
		return int64(v), nil
	case TimeTicks:
		return int64(v), nil
	case NoSuchObject:
		return 0, fmt.Errorf("%w: %s", ErrNoSuchObject, oid)
	default:
		return 0, fmt.Errorf("snmp: %s has non-numeric value %s", oid, v)
	}
}

// GetNext returns the lexically following varbind after oid.
func (m *Manager) GetNext(oid OID) (Varbind, error) {
	resp, err := m.roundTrip(GetNextRequest, []Varbind{{OID: oid, Value: Null{}}})
	if err != nil {
		return Varbind{}, err
	}
	if len(resp.PDU.Varbinds) != 1 {
		return Varbind{}, fmt.Errorf("%w: %d varbinds", ErrDecode, len(resp.PDU.Varbinds))
	}
	return resp.PDU.Varbinds[0], nil
}

// Walk visits every OID under root in lexical order.
func (m *Manager) Walk(root OID, visit func(Varbind) error) error {
	cur := root
	for {
		vb, err := m.GetNext(cur)
		if err != nil {
			return err
		}
		if _, end := vb.Value.(EndOfMibView); end {
			return nil
		}
		if len(vb.OID) < len(root) || vb.OID[:len(root)].Cmp(root) != 0 {
			return nil // walked out of the subtree
		}
		if err := visit(vb); err != nil {
			return err
		}
		cur = vb.OID
	}
}

// Set writes val at oid.
func (m *Manager) Set(oid OID, val Value) error {
	_, err := m.roundTrip(SetRequest, []Varbind{{OID: oid, Value: val}})
	return err
}
