// Package snmp implements the subset of SNMPv2c the framework's
// network-management module needs: BER encoding/decoding, Get / GetNext /
// Set PDUs, an agent with a pluggable MIB (exposing host-resources OIDs
// such as hrProcessorLoad), and a polling manager. Two bindings carry the
// BER packets: real UDP for deployments, and the in-process simulated
// network for virtual-clock experiments — the same encoded bytes travel
// either way.
package snmp

import (
	"errors"
	"fmt"
)

// BER/ASN.1 tags used by SNMP.
const (
	tagInteger     = 0x02
	tagOctetString = 0x04
	tagNull        = 0x05
	tagOID         = 0x06
	tagSequence    = 0x30
	tagCounter32   = 0x41
	tagGauge32     = 0x42
	tagTimeTicks   = 0x43

	tagGetRequest     = 0xA0
	tagGetNextRequest = 0xA1
	tagGetResponse    = 0xA2
	tagSetRequest     = 0xA3
	tagTrapV2         = 0xA7

	tagNoSuchObject = 0x80
	tagEndOfMibView = 0x82
)

// ErrDecode reports malformed BER input.
var ErrDecode = errors.New("snmp: malformed BER")

// appendTLV appends tag, a definite-form length, and content.
func appendTLV(dst []byte, tag byte, content []byte) []byte {
	dst = append(dst, tag)
	dst = appendLength(dst, len(content))
	return append(dst, content...)
}

func appendLength(dst []byte, n int) []byte {
	if n < 0x80 {
		return append(dst, byte(n))
	}
	var tmp [8]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte(n)
		n >>= 8
	}
	dst = append(dst, byte(0x80|(len(tmp)-i)))
	return append(dst, tmp[i:]...)
}

// appendInt appends a two's-complement minimal-length INTEGER body for v
// under the given tag.
func appendInt(dst []byte, tag byte, v int64) []byte {
	var body []byte
	switch {
	case v >= 0:
		body = minimalUint(uint64(v))
		if body[0]&0x80 != 0 {
			body = append([]byte{0}, body...)
		}
	default:
		// Build the shortest two's-complement representation.
		n := 8
		for n > 1 {
			hi := byte(v >> uint((n-1)*8))
			next := byte(v >> uint((n-2)*8))
			if hi == 0xff && next&0x80 != 0 {
				n--
				continue
			}
			break
		}
		body = make([]byte, n)
		for i := 0; i < n; i++ {
			body[i] = byte(v >> uint((n-1-i)*8))
		}
	}
	return appendTLV(dst, tag, body)
}

// appendUint appends an unsigned integer (Counter32/Gauge32/TimeTicks
// semantics) under tag.
func appendUint(dst []byte, tag byte, v uint64) []byte {
	body := minimalUint(v)
	if body[0]&0x80 != 0 {
		body = append([]byte{0}, body...)
	}
	return appendTLV(dst, tag, body)
}

func minimalUint(v uint64) []byte {
	var tmp [8]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte(v)
		v >>= 8
		if v == 0 {
			break
		}
	}
	return tmp[i:]
}

// reader walks a BER byte stream.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) len() int { return len(r.b) - r.pos }

// tlv reads one tag-length-value and returns the tag and content bytes.
func (r *reader) tlv() (byte, []byte, error) {
	if r.len() < 2 {
		return 0, nil, ErrDecode
	}
	tag := r.b[r.pos]
	r.pos++
	n, err := r.length()
	if err != nil {
		return 0, nil, err
	}
	if r.len() < n {
		return 0, nil, ErrDecode
	}
	content := r.b[r.pos : r.pos+n]
	r.pos += n
	return tag, content, nil
}

func (r *reader) length() (int, error) {
	if r.len() < 1 {
		return 0, ErrDecode
	}
	first := r.b[r.pos]
	r.pos++
	if first < 0x80 {
		return int(first), nil
	}
	cnt := int(first & 0x7f)
	if cnt == 0 || cnt > 4 || r.len() < cnt {
		return 0, ErrDecode
	}
	n := 0
	for i := 0; i < cnt; i++ {
		n = n<<8 | int(r.b[r.pos])
		r.pos++
	}
	return n, nil
}

func decodeInt(content []byte) (int64, error) {
	if len(content) == 0 || len(content) > 8 {
		return 0, ErrDecode
	}
	v := int64(0)
	if content[0]&0x80 != 0 {
		v = -1
	}
	for _, b := range content {
		v = v<<8 | int64(b)
	}
	return v, nil
}

func decodeUint(content []byte) (uint64, error) {
	if len(content) == 0 || len(content) > 9 {
		return 0, ErrDecode
	}
	v := uint64(0)
	for _, b := range content {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

func expectTag(got, want byte) error {
	if got != want {
		return fmt.Errorf("%w: tag 0x%02x, want 0x%02x", ErrDecode, got, want)
	}
	return nil
}
