package snmp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OID is an SNMP object identifier.
type OID []uint32

// MustOID parses a dotted OID string, panicking on error; for constants.
func MustOID(s string) OID {
	o, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return o
}

// ParseOID parses "1.3.6.1.2.1..." into an OID.
func ParseOID(s string) (OID, error) {
	parts := strings.Split(strings.TrimPrefix(s, "."), ".")
	if len(parts) < 2 {
		return nil, fmt.Errorf("snmp: OID %q too short", s)
	}
	o := make(OID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: OID %q: %v", s, err)
		}
		o[i] = uint32(v)
	}
	return o, nil
}

// String renders the OID in dotted form.
func (o OID) String() string {
	var b strings.Builder
	for i, v := range o {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(v), 10))
	}
	return b.String()
}

// Cmp compares OIDs lexicographically (-1, 0, +1).
func (o OID) Cmp(p OID) int {
	for i := 0; i < len(o) && i < len(p); i++ {
		switch {
		case o[i] < p[i]:
			return -1
		case o[i] > p[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(p):
		return -1
	case len(o) > len(p):
		return 1
	}
	return 0
}

// Equal reports OID equality.
func (o OID) Equal(p OID) bool { return o.Cmp(p) == 0 }

// Append returns o with extra sub-identifiers appended (a fresh slice).
func (o OID) Append(sub ...uint32) OID {
	out := make(OID, 0, len(o)+len(sub))
	out = append(out, o...)
	return append(out, sub...)
}

// encodeOID appends the BER encoding of o.
func encodeOID(dst []byte, o OID) []byte {
	if len(o) < 2 {
		// SNMP requires at least two arcs; encode a degenerate 0.0.
		return appendTLV(dst, tagOID, []byte{0})
	}
	body := []byte{byte(o[0]*40 + o[1])}
	for _, v := range o[2:] {
		body = appendBase128(body, v)
	}
	return appendTLV(dst, tagOID, body)
}

func appendBase128(dst []byte, v uint32) []byte {
	var tmp [5]byte
	i := len(tmp)
	i--
	tmp[i] = byte(v & 0x7f)
	v >>= 7
	for v > 0 {
		i--
		tmp[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	return append(dst, tmp[i:]...)
}

func decodeOID(content []byte) (OID, error) {
	if len(content) == 0 {
		return nil, ErrDecode
	}
	o := OID{uint32(content[0] / 40), uint32(content[0] % 40)}
	var v uint32
	for _, b := range content[1:] {
		v = v<<7 | uint32(b&0x7f)
		if b&0x80 == 0 {
			o = append(o, v)
			v = 0
		}
	}
	return o, nil
}

// Value is an SNMP variable value.
type Value interface {
	encode(dst []byte) []byte
	// String renders the value for diagnostics.
	String() string
}

// Integer is an SNMP INTEGER.
type Integer int64

func (v Integer) encode(dst []byte) []byte { return appendInt(dst, tagInteger, int64(v)) }
func (v Integer) String() string           { return strconv.FormatInt(int64(v), 10) }

// OctetString is an SNMP OCTET STRING.
type OctetString string

func (v OctetString) encode(dst []byte) []byte { return appendTLV(dst, tagOctetString, []byte(v)) }
func (v OctetString) String() string           { return string(v) }

// Gauge32 is a non-wrapping unsigned value (e.g. utilization percentages).
type Gauge32 uint32

func (v Gauge32) encode(dst []byte) []byte { return appendUint(dst, tagGauge32, uint64(v)) }
func (v Gauge32) String() string           { return strconv.FormatUint(uint64(v), 10) }

// Counter32 is a wrapping monotone counter.
type Counter32 uint32

func (v Counter32) encode(dst []byte) []byte { return appendUint(dst, tagCounter32, uint64(v)) }
func (v Counter32) String() string           { return strconv.FormatUint(uint64(v), 10) }

// TimeTicks is elapsed time in hundredths of a second.
type TimeTicks uint32

func (v TimeTicks) encode(dst []byte) []byte { return appendUint(dst, tagTimeTicks, uint64(v)) }
func (v TimeTicks) String() string           { return strconv.FormatUint(uint64(v), 10) + " ticks" }

// Null is the SNMP NULL value (used in request varbinds).
type Null struct{}

func (Null) encode(dst []byte) []byte { return appendTLV(dst, tagNull, nil) }
func (Null) String() string           { return "NULL" }

// NoSuchObject is the v2c exception for missing OIDs.
type NoSuchObject struct{}

func (NoSuchObject) encode(dst []byte) []byte { return appendTLV(dst, tagNoSuchObject, nil) }
func (NoSuchObject) String() string           { return "noSuchObject" }

// EndOfMibView is the v2c exception ending a GetNext walk.
type EndOfMibView struct{}

func (EndOfMibView) encode(dst []byte) []byte { return appendTLV(dst, tagEndOfMibView, nil) }
func (EndOfMibView) String() string           { return "endOfMibView" }

func decodeValue(tag byte, content []byte) (Value, error) {
	switch tag {
	case tagInteger:
		v, err := decodeInt(content)
		return Integer(v), err
	case tagOctetString:
		return OctetString(content), nil
	case tagGauge32:
		v, err := decodeUint(content)
		return Gauge32(v), err
	case tagCounter32:
		v, err := decodeUint(content)
		return Counter32(v), err
	case tagTimeTicks:
		v, err := decodeUint(content)
		return TimeTicks(v), err
	case tagNull:
		return Null{}, nil
	case tagNoSuchObject:
		return NoSuchObject{}, nil
	case tagEndOfMibView:
		return EndOfMibView{}, nil
	default:
		return nil, fmt.Errorf("%w: value tag 0x%02x", ErrDecode, tag)
	}
}

// Well-known OIDs used by the monitoring agent. hrProcessorLoad is the
// Host Resources MIB's per-processor utilization percentage — the primary
// parameter the paper's monitoring agent polls.
var (
	OIDSysDescr        = MustOID("1.3.6.1.2.1.1.1.0")
	OIDSysUpTime       = MustOID("1.3.6.1.2.1.1.3.0")
	OIDSysName         = MustOID("1.3.6.1.2.1.1.5.0")
	OIDHrProcessorLoad = MustOID("1.3.6.1.2.1.25.3.3.1.2.1")
	OIDHrMemorySize    = MustOID("1.3.6.1.2.1.25.2.2.0")
	OIDHrStorageUsed   = MustOID("1.3.6.1.2.1.25.2.3.1.6.1")

	// OIDWorkerTasksDone and OIDWorkerState are private-enterprise OIDs
	// exporting the framework worker's progress counters and execution
	// state, so operators can watch the cycle-stealing activity with
	// stock SNMP tooling.
	OIDWorkerTasksDone = MustOID("1.3.6.1.4.1.52429.1.2")
	OIDWorkerState     = MustOID("1.3.6.1.4.1.52429.1.3")

	// OIDBackgroundLoad is a private-enterprise OID exporting a node's
	// CPU load excluding the framework's own worker process — the
	// quantity the inference engine needs so that cycle stealing does
	// not count against the node's availability. Agents that cannot
	// distinguish simply do not register it, and managers fall back to
	// hrProcessorLoad.
	OIDBackgroundLoad = MustOID("1.3.6.1.4.1.52429.1.1")

	// Framework subtree (…52429.2): the master exports its own task
	// pipeline through SNMP, so the network management module can watch
	// the computation with the same protocol it uses for node CPU load.
	// Values mirror the metrics registry gauges one-for-one (the /metrics
	// page and an SNMP walk must agree).
	OIDFrameworkTasksPending     = MustOID("1.3.6.1.4.1.52429.2.1") // Gauge32: task entries in the space
	OIDFrameworkTasksInFlight    = MustOID("1.3.6.1.4.1.52429.2.2") // Gauge32: taken, result not yet collected
	OIDFrameworkTasksPlanned     = MustOID("1.3.6.1.4.1.52429.2.3") // Counter32: tasks written since start
	OIDFrameworkResultsCollected = MustOID("1.3.6.1.4.1.52429.2.4") // Counter32: results aggregated since start
	OIDFrameworkWorkersRunning   = MustOID("1.3.6.1.4.1.52429.2.5") // Gauge32: workers in the Running state
)

// OIDFrameworkShardOps returns shard i's served-operation counter OID
// (…52429.2.6.<i+1>; instances are 1-based as SNMP tables are).
func OIDFrameworkShardOps(i int) OID {
	base := MustOID("1.3.6.1.4.1.52429.2.6")
	return append(base, uint32(i+1))
}

// sortOIDs sorts a slice of OIDs lexicographically (used by MIB walks).
func sortOIDs(oids []OID) {
	sort.Slice(oids, func(i, j int) bool { return oids[i].Cmp(oids[j]) < 0 })
}
