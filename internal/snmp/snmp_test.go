package snmp

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

func TestOIDParseString(t *testing.T) {
	o := MustOID("1.3.6.1.2.1.25.3.3.1.2.1")
	if got := o.String(); got != "1.3.6.1.2.1.25.3.3.1.2.1" {
		t.Fatalf("round trip = %q", got)
	}
	if _, err := ParseOID("1"); err == nil {
		t.Fatal("single-arc OID accepted")
	}
	if _, err := ParseOID("1.x.3"); err == nil {
		t.Fatal("garbage OID accepted")
	}
}

func TestOIDCmp(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.3.6", "1.3.6", 0},
		{"1.3.5", "1.3.6", -1},
		{"1.3.7", "1.3.6", 1},
		{"1.3.6", "1.3.6.1", -1},
		{"1.3.6.1", "1.3.6", 1},
	}
	for _, c := range cases {
		if got := MustOID(c.a).Cmp(MustOID(c.b)); got != c.want {
			t.Errorf("Cmp(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	msg := Message{
		Community: "public",
		PDU: PDU{
			Type:      GetRequest,
			RequestID: 1234,
			Varbinds: []Varbind{
				{OID: OIDHrProcessorLoad, Value: Null{}},
				{OID: OIDSysUpTime, Value: Null{}},
			},
		},
	}
	got, err := Decode(msg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Community != "public" || got.PDU.RequestID != 1234 || got.PDU.Type != GetRequest {
		t.Fatalf("got %+v", got)
	}
	if len(got.PDU.Varbinds) != 2 || !got.PDU.Varbinds[0].OID.Equal(OIDHrProcessorLoad) {
		t.Fatalf("varbinds %+v", got.PDU.Varbinds)
	}
}

func TestValueEncodingRoundTrip(t *testing.T) {
	vals := []Value{
		Integer(0), Integer(42), Integer(-42), Integer(127), Integer(128),
		Integer(-128), Integer(-129), Integer(1 << 30), Integer(-(1 << 30)),
		OctetString(""), OctetString("hello"),
		Gauge32(0), Gauge32(55), Gauge32(1<<31 + 5),
		Counter32(99), TimeTicks(123456),
		Null{}, NoSuchObject{}, EndOfMibView{},
	}
	for _, v := range vals {
		msg := Message{Community: "c", PDU: PDU{Type: GetResponse, RequestID: 1,
			Varbinds: []Varbind{{OID: MustOID("1.3.6.1"), Value: v}}}}
		got, err := Decode(msg.Encode())
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !reflect.DeepEqual(got.PDU.Varbinds[0].Value, v) {
			t.Fatalf("round trip of %#v gave %#v", v, got.PDU.Varbinds[0].Value)
		}
	}
}

func TestPropIntegerRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		msg := Message{Community: "c", PDU: PDU{Type: GetResponse, RequestID: 7,
			Varbinds: []Varbind{{OID: MustOID("1.3"), Value: Integer(v)}}}}
		got, err := Decode(msg.Encode())
		if err != nil {
			return false
		}
		return got.PDU.Varbinds[0].Value == Integer(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropOIDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 2 + rng.Intn(10)
		o := OID{1, uint32(rng.Intn(40))}
		for len(o) < n {
			o = append(o, uint32(rng.Intn(1<<28)))
		}
		msg := Message{Community: "c", PDU: PDU{Type: GetRequest, RequestID: 1,
			Varbinds: []Varbind{{OID: o, Value: Null{}}}}}
		got, err := Decode(msg.Encode())
		if err != nil {
			return false
		}
		return got.PDU.Varbinds[0].OID.Equal(o)
	}
	for i := 0; i < 500; i++ {
		if !f() {
			t.Fatal("OID round trip failed")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x30},
		{0x30, 0x05, 0x01, 0x02},
		{0x04, 0x00},
		[]byte("not ber at all"),
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("Decode(%x) succeeded", c)
		}
	}
	// Fuzz-ish: truncations of a valid message must error, not panic.
	valid := (&Message{Community: "public", PDU: PDU{Type: GetRequest, RequestID: 9,
		Varbinds: []Varbind{{OID: OIDSysDescr, Value: Null{}}}}}).Encode()
	for i := 0; i < len(valid)-1; i++ {
		_, _ = Decode(valid[:i])
	}
}

func newTestAgent() *Agent {
	mib := NewMIB()
	load := Integer(17)
	mib.Register(OIDHrProcessorLoad, func() Value { return load })
	mib.Register(OIDSysDescr, func() Value { return OctetString("gospaces simulated node") })
	mib.Register(OIDSysUpTime, func() Value { return TimeTicks(4242) })
	var speed Value = Integer(100)
	mib.RegisterSettable(MustOID("1.3.6.1.4.1.9999.1.1"), func() Value { return speed },
		func(v Value) error { speed = v; return nil })
	return NewAgent("public", mib)
}

func TestAgentGet(t *testing.T) {
	a := newTestAgent()
	req := Message{Community: "public", PDU: PDU{Type: GetRequest, RequestID: 5,
		Varbinds: []Varbind{{OID: OIDHrProcessorLoad, Value: Null{}}}}}
	resp, err := Decode(a.HandlePacket(req.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PDU.Type != GetResponse || resp.PDU.RequestID != 5 {
		t.Fatalf("resp %+v", resp.PDU)
	}
	if resp.PDU.Varbinds[0].Value != Integer(17) {
		t.Fatalf("value %v", resp.PDU.Varbinds[0].Value)
	}
}

func TestAgentWrongCommunityDropped(t *testing.T) {
	a := newTestAgent()
	req := Message{Community: "private", PDU: PDU{Type: GetRequest, RequestID: 5,
		Varbinds: []Varbind{{OID: OIDHrProcessorLoad, Value: Null{}}}}}
	if got := a.HandlePacket(req.Encode()); got != nil {
		t.Fatal("wrong community answered")
	}
	if got := a.HandlePacket([]byte{1, 2, 3}); got != nil {
		t.Fatal("garbage answered")
	}
}

func TestAgentGetMissingOID(t *testing.T) {
	a := newTestAgent()
	req := Message{Community: "public", PDU: PDU{Type: GetRequest, RequestID: 1,
		Varbinds: []Varbind{{OID: MustOID("1.2.3.4"), Value: Null{}}}}}
	resp, err := Decode(a.HandlePacket(req.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.PDU.Varbinds[0].Value.(NoSuchObject); !ok {
		t.Fatalf("value %v, want NoSuchObject", resp.PDU.Varbinds[0].Value)
	}
}

func TestManagerOverRPCNetwork(t *testing.T) {
	clk := vclock.NewReal()
	net := transport.NewNetwork(clk, transport.Loopback())
	srv := transport.NewServer()
	newTestAgent().Bind(srv)
	net.Listen("worker1", srv)

	m := NewManager("public", &RPCExchanger{C: net.Dial("worker1")})
	defer m.Close()
	load, err := m.GetInt(OIDHrProcessorLoad)
	if err != nil {
		t.Fatal(err)
	}
	if load != 17 {
		t.Fatalf("load = %d", load)
	}
	vbs, err := m.Get(OIDSysDescr, OIDSysUpTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 2 || vbs[0].Value.String() != "gospaces simulated node" {
		t.Fatalf("vbs %+v", vbs)
	}
	if _, err := m.GetInt(MustOID("1.2.3.4")); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestManagerWalk(t *testing.T) {
	clk := vclock.NewReal()
	net := transport.NewNetwork(clk, transport.Loopback())
	srv := transport.NewServer()
	newTestAgent().Bind(srv)
	net.Listen("w", srv)
	m := NewManager("public", &RPCExchanger{C: net.Dial("w")})
	defer m.Close()

	var seen []string
	err := m.Walk(MustOID("1.3.6.1.2.1"), func(vb Varbind) error {
		seen = append(seen, vb.OID.String())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// sysDescr, sysUpTime, hrProcessorLoad live under 1.3.6.1.2.1; the
	// enterprise OID (1.3.6.1.4...) must not appear.
	if len(seen) != 3 {
		t.Fatalf("walked %v", seen)
	}
	for i := 1; i < len(seen); i++ {
		if MustOID(seen[i-1]).Cmp(MustOID(seen[i])) >= 0 {
			t.Fatalf("walk out of order: %v", seen)
		}
	}
}

func TestManagerSet(t *testing.T) {
	clk := vclock.NewReal()
	net := transport.NewNetwork(clk, transport.Loopback())
	srv := transport.NewServer()
	newTestAgent().Bind(srv)
	net.Listen("w", srv)
	m := NewManager("public", &RPCExchanger{C: net.Dial("w")})
	defer m.Close()

	oid := MustOID("1.3.6.1.4.1.9999.1.1")
	if err := m.Set(oid, Integer(55)); err != nil {
		t.Fatal(err)
	}
	got, err := m.GetInt(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Fatalf("after set, value = %d", got)
	}
	// Setting a read-only OID reports an agent error.
	if err := m.Set(OIDSysDescr, Integer(1)); !errors.Is(err, ErrAgent) {
		t.Fatalf("set read-only err = %v", err)
	}
}

func TestManagerOverUDP(t *testing.T) {
	ua, err := ListenUDP("127.0.0.1:0", newTestAgent())
	if err != nil {
		t.Fatal(err)
	}
	defer ua.Close()
	m := NewManager("public", &UDPExchanger{Addr: ua.Addr()})
	defer m.Close()
	load, err := m.GetInt(OIDHrProcessorLoad)
	if err != nil {
		t.Fatal(err)
	}
	if load != 17 {
		t.Fatalf("load = %d", load)
	}
}

func TestTrapRoundTrip(t *testing.T) {
	var got []byte
	sender := NewTrapSender("public", TrapSinkFunc(func(p []byte) error {
		got = p
		return nil
	}))
	err := sender.Send(TimeTicks(1234), OIDLoadBandTrap,
		Varbind{OID: OIDBackgroundLoad, Value: Integer(77)})
	if err != nil {
		t.Fatal(err)
	}
	trapOID, payload, err := ParseTrap(got)
	if err != nil {
		t.Fatal(err)
	}
	if !trapOID.Equal(OIDLoadBandTrap) {
		t.Fatalf("trap OID %s", trapOID)
	}
	if len(payload) != 1 || payload[0].Value != Integer(77) {
		t.Fatalf("payload %+v", payload)
	}
}

func TestParseTrapRejectsNonTraps(t *testing.T) {
	msg := Message{Community: "c", PDU: PDU{Type: GetRequest, RequestID: 1,
		Varbinds: []Varbind{{OID: OIDSysDescr, Value: Null{}}}}}
	if _, _, err := ParseTrap(msg.Encode()); err == nil {
		t.Fatal("GetRequest accepted as trap")
	}
	if _, _, err := ParseTrap([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted as trap")
	}
	// Trap missing the snmpTrapOID varbind.
	bad := Message{Community: "c", PDU: PDU{Type: TrapV2, RequestID: 1,
		Varbinds: []Varbind{{OID: OIDSysUpTime, Value: TimeTicks(1)}, {OID: OIDSysDescr, Value: Null{}}}}}
	if _, _, err := ParseTrap(bad.Encode()); err == nil {
		t.Fatal("malformed trap accepted")
	}
}

func TestAgentGetNextSequence(t *testing.T) {
	a := newTestAgent()
	// Walk the entire MIB with raw GetNext packets.
	cur := OID{1, 0}
	var count int
	for {
		req := Message{Community: "public", PDU: PDU{Type: GetNextRequest, RequestID: int32(count + 1),
			Varbinds: []Varbind{{OID: cur, Value: Null{}}}}}
		resp, err := Decode(a.HandlePacket(req.Encode()))
		if err != nil {
			t.Fatal(err)
		}
		vb := resp.PDU.Varbinds[0]
		if _, end := vb.Value.(EndOfMibView); end {
			break
		}
		count++
		if count > 100 {
			t.Fatal("GetNext walk did not terminate")
		}
		cur = vb.OID
	}
	if count != 4 {
		t.Fatalf("walked %d vars, want 4", count)
	}
}
