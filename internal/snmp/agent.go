package snmp

import (
	"fmt"
	"net"
	"sync"

	"gospaces/internal/transport"
)

// MIB is an agent's management information base: a set of OIDs bound to
// getter (and optionally setter) functions.
type MIB struct {
	mu   sync.Mutex
	vars map[string]*mibVar // key: OID string
	oids []OID              // sorted, for GetNext
}

type mibVar struct {
	oid OID
	get func() Value
	set func(Value) error
}

// NewMIB returns an empty MIB.
func NewMIB() *MIB { return &MIB{vars: make(map[string]*mibVar)} }

// Register binds oid to getter get. Re-registering an OID replaces it.
func (m *MIB) Register(oid OID, get func() Value) {
	m.RegisterSettable(oid, get, nil)
}

// RegisterSettable binds oid to a getter and a setter for SetRequest.
func (m *MIB) RegisterSettable(oid OID, get func() Value, set func(Value) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := oid.String()
	if _, exists := m.vars[key]; !exists {
		m.oids = append(m.oids, oid)
		sortOIDs(m.oids)
	}
	m.vars[key] = &mibVar{oid: oid, get: get, set: set}
}

// get returns the value at exactly oid, or NoSuchObject.
func (m *MIB) getValue(oid OID) Value {
	m.mu.Lock()
	v, ok := m.vars[oid.String()]
	m.mu.Unlock()
	if !ok {
		return NoSuchObject{}
	}
	return v.get()
}

// next returns the first OID strictly after oid and its value, or
// EndOfMibView.
func (m *MIB) next(oid OID) (OID, Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, o := range m.oids {
		if o.Cmp(oid) > 0 {
			return o, m.vars[o.String()].get()
		}
	}
	return oid, EndOfMibView{}
}

func (m *MIB) setValue(oid OID, val Value) (int32, Value) {
	m.mu.Lock()
	v, ok := m.vars[oid.String()]
	m.mu.Unlock()
	if !ok {
		return ErrStatusNoAccess, NoSuchObject{}
	}
	if v.set == nil {
		return ErrStatusNotWritable, Null{}
	}
	if err := v.set(val); err != nil {
		return ErrStatusGenErr, Null{}
	}
	return ErrStatusNoError, v.get()
}

// Agent answers SNMP requests against a MIB. The worker module runs one
// per node (the paper's "worker-agent component").
type Agent struct {
	Community string
	MIB       *MIB
}

// NewAgent returns an agent with community string community.
func NewAgent(community string, mib *MIB) *Agent {
	return &Agent{Community: community, MIB: mib}
}

// HandlePacket processes one BER-encoded request datagram and returns the
// BER-encoded response (nil for undecodable or unauthorized requests, which
// real agents silently drop).
func (a *Agent) HandlePacket(req []byte) []byte {
	msg, err := Decode(req)
	if err != nil {
		return nil
	}
	if msg.Community != a.Community {
		return nil // wrong community: drop, per protocol
	}
	resp := Message{Community: a.Community, PDU: PDU{
		Type:      GetResponse,
		RequestID: msg.PDU.RequestID,
	}}
	for i, vb := range msg.PDU.Varbinds {
		switch msg.PDU.Type {
		case GetRequest:
			resp.PDU.Varbinds = append(resp.PDU.Varbinds, Varbind{OID: vb.OID, Value: a.MIB.getValue(vb.OID)})
		case GetNextRequest:
			oid, val := a.MIB.next(vb.OID)
			resp.PDU.Varbinds = append(resp.PDU.Varbinds, Varbind{OID: oid, Value: val})
		case SetRequest:
			status, val := a.MIB.setValue(vb.OID, vb.Value)
			resp.PDU.Varbinds = append(resp.PDU.Varbinds, Varbind{OID: vb.OID, Value: val})
			if status != ErrStatusNoError && resp.PDU.ErrorStatus == ErrStatusNoError {
				resp.PDU.ErrorStatus = status
				resp.PDU.ErrorIndex = int32(i + 1)
			}
		default:
			return nil
		}
	}
	return resp.Encode()
}

// Bind registers the agent on an in-process RPC server under the
// "snmp.Exchange" method, so managers on the simulated network can poll it.
// The exchanged payloads are the same BER bytes UDP would carry.
func (a *Agent) Bind(srv *transport.Server) {
	srv.Handle("snmp.Exchange", func(arg interface{}) (interface{}, error) {
		req, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("snmp: bad exchange payload %T", arg)
		}
		resp := a.HandlePacket(req)
		if resp == nil {
			return nil, fmt.Errorf("snmp: request dropped")
		}
		return resp, nil
	})
}

// UDPAgent serves an Agent over a UDP socket.
type UDPAgent struct {
	agent *Agent
	conn  *net.UDPConn
	wg    sync.WaitGroup
}

// ListenUDP binds the agent to addr (e.g. "127.0.0.1:0") and starts
// serving. Use Addr to discover the bound address.
func ListenUDP(addr string, agent *Agent) (*UDPAgent, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("snmp: listen %s: %w", addr, err)
	}
	u := &UDPAgent{agent: agent, conn: conn}
	u.wg.Add(1)
	go u.serve()
	return u, nil
}

// Addr returns the bound UDP address.
func (u *UDPAgent) Addr() string { return u.conn.LocalAddr().String() }

// Close stops the agent.
func (u *UDPAgent) Close() error {
	err := u.conn.Close()
	u.wg.Wait()
	return err
}

func (u *UDPAgent) serve() {
	defer u.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		resp := u.agent.HandlePacket(buf[:n])
		if resp != nil {
			_, _ = u.conn.WriteToUDP(resp, peer)
		}
	}
}
