package master

import (
	"sync/atomic"
	"testing"
	"time"

	"gospaces/internal/faults"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

func init() {
	transport.RegisterType(fakeTask{})
	transport.RegisterType(fakeResult{})
}

// TestChaosDuplicatedResultDeliveries: the network redelivers every result
// Write the worker makes (at-least-once delivery), so the space holds two
// copies of each result. With DedupResults the master must still aggregate
// each result exactly once, collect the phase to completion (no deadlock,
// no starvation), and account for every dropped copy.
func TestChaosDuplicatedResultDeliveries(t *testing.T) {
	const tasks = 8
	clk := vclock.NewVirtual(time.Unix(0, 0))
	clk.Run(func() {
		net := transport.NewNetwork(clk, transport.Loopback())
		local := space.NewLocal(clk)
		srv := transport.NewServer()
		space.NewService(local, srv)
		net.Listen("space", srv)

		plan := faults.NewPlan(5)
		plan.Bind(clk)
		plan.DuplicateCalls("node/w1", "space", "space.Write", 1)
		net.Intercept(plan.Interceptor())

		m := New(Config{
			Clock:         clk,
			Space:         local,
			ResultTimeout: 30 * time.Second,
			DedupResults:  true,
		})
		job := &fakeJob{n: tasks}
		var quit atomic.Bool
		clk.Go(func() {
			// The worker talks to the space over the faulty network; the
			// master holds its usual direct local handle.
			echoWorker(clk, space.NewProxy(net.DialAs("node/w1", "space")), &quit)
		})
		rm, err := m.RunJob(job)
		quit.Store(true)
		if err != nil {
			t.Fatalf("run under duplicated deliveries: %v", err)
		}
		if len(job.got) != tasks {
			t.Fatalf("aggregated %d results, want exactly %d", len(job.got), tasks)
		}
		ids := make(map[int]bool)
		for _, r := range job.got {
			if ids[r.ID] {
				t.Fatalf("result %d aggregated twice", r.ID)
			}
			ids[r.ID] = true
		}
		// Collection stops at n distinct results, so the copy of the very
		// last result is still parked in the space: n-1 dropped, 1 left.
		if rm.DuplicatesDropped != tasks-1 {
			t.Fatalf("DuplicatesDropped = %d, want %d (every write was redelivered)",
				rm.DuplicatesDropped, tasks-1)
		}
		if left, err := local.Count(job.ResultTemplate()); err != nil || left != 1 {
			t.Fatalf("leftover duplicates in space = %d (err %v), want 1", left, err)
		}
		if got := plan.Counters().Get(faults.EventDuplicate); got != tasks {
			t.Fatalf("duplicate events = %d, want %d", got, tasks)
		}
	})
}
