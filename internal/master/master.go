// Package master implements the paper's master module: it hosts the
// JavaSpaces service (and the code server), registers them with the
// lookup service, decomposes an application Job into task entries during
// the task-planning phase, writes them into the space, and collects and
// aggregates result entries during the result-aggregation phase. It
// measures the quantities the paper's figures report: task planning time,
// task aggregation time, parallel time, and per-task master overhead.
package master

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/nodeconfig"
	"gospaces/internal/obs"
	"gospaces/internal/space"
	"gospaces/internal/sysmon"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// Job is a parallel application in the framework's bag-of-tasks model.
// Implementations provide task decomposition (planning), result
// aggregation, and the worker program bundle that the remote node
// configuration engine ships to workers.
type Job interface {
	// Name identifies the job; it is also the program bundle name.
	Name() string
	// Plan decomposes the problem into task entries, calling emit for
	// each. The master charges PlanningCost per emitted task.
	Plan(emit func(task tuplespace.Entry) error) error
	// TaskTemplate matches this job's task entries.
	TaskTemplate() tuplespace.Entry
	// ResultTemplate matches this job's result entries.
	ResultTemplate() tuplespace.Entry
	// Aggregate folds one result into the final solution. The master
	// charges AggregationCost per result around this call.
	Aggregate(result tuplespace.Entry) error
	// Bundle is the worker program shipped by the code server.
	Bundle() nodeconfig.Bundle
	// PlanningCost is the master CPU work to create and serialize one
	// task entry (reference-node time).
	PlanningCost() time.Duration
	// AggregationCost is the master CPU work to fold one result
	// (reference-node time).
	AggregationCost() time.Duration
}

// Iterative is implemented by jobs with inter-iteration dependencies
// (such as the page-rank power iteration): after every result of a phase
// has been aggregated, the master calls NextPhase; if it returns true the
// job's Plan is invoked again for the next phase's tasks.
type Iterative interface {
	NextPhase() bool
}

// RunMetrics are the measurements of one job execution, matching §5.2.1:
// Max Worker Time is computed by the caller from worker stats; the rest
// are measured at the master.
type RunMetrics struct {
	Tasks  int
	Phases int
	// Shards is the number of space shards behind the master's handle
	// (1 for the classic single-server deployment).
	Shards              int
	TaskPlanningTime    time.Duration
	TaskAggregationTime time.Duration
	ParallelTime        time.Duration
	// MaxMasterOverhead is the maximum instantaneous time the master
	// spent planning one task or aggregating one result.
	MaxMasterOverhead time.Duration
	// DuplicatesDropped counts redelivered results discarded by
	// Config.DedupResults.
	DuplicatesDropped int
}

// Config assembles a master.
type Config struct {
	Clock vclock.Clock
	// Space is the master's local handle on the JavaSpace it hosts.
	Space space.Space
	// Machine models the master node's CPU; nil charges costs as plain
	// clock sleeps.
	Machine *sysmon.Machine
	// ResultTimeout bounds the wait for each result during aggregation.
	// Default 5 minutes (a stuck cluster fails the run rather than
	// hanging it).
	ResultTimeout time.Duration
	// Sweeper, if set, is invoked periodically while the master waits
	// for results, aborting expired worker transactions so tasks held by
	// crashed workers reappear in the space. The framework passes the
	// space's transaction manager here.
	Sweeper interface{ Sweep() int }
	// SweepInterval is how often Sweeper runs during collection.
	// Default 5 s.
	SweepInterval time.Duration
	// Collector, if set, receives per-phase samples.
	Collector *metrics.Collector
	// DedupResults makes collection idempotent against at-least-once
	// delivery: a result entry byte-identical to one already aggregated in
	// the same phase is discarded instead of counted. Needed when the
	// network may redeliver a worker's result Write (the chaos suite's
	// duplicated-delivery scenarios); off by default because exact-once
	// transports never produce duplicates and jobs may legitimately emit
	// identical results.
	DedupResults bool
	// Obs, if set, enables causal tracing (a root "plan" span per task,
	// an "aggregate" span per result parented to the worker's execute
	// span) and per-stage latency histograms. Nil disables both at zero
	// cost.
	Obs *obs.Obs
}

// Master runs jobs.
type Master struct {
	cfg Config

	// Stage histograms, resolved once so the hot loops avoid the
	// registry's name lookup. All nil when Config.Obs is nil.
	histPlan       *metrics.Histogram
	histAggregate  *metrics.Histogram
	histTakeResult *metrics.Histogram

	// planned/collected feed the live gauges; taskTmpl holds the current
	// job's task template so PendingTasks can Count it; running gates the
	// space probe to the window where a job is actually executing.
	planned   atomic.Int64
	collected atomic.Int64
	taskTmpl  atomic.Value // tuplespace.Entry
	running   atomic.Bool
}

// ErrNoTasks is returned when a job plans zero tasks.
var ErrNoTasks = errors.New("master: job planned no tasks")

// New returns a Master.
func New(cfg Config) *Master {
	if cfg.ResultTimeout <= 0 {
		cfg.ResultTimeout = 5 * time.Minute
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = 5 * time.Second
	}
	m := &Master{cfg: cfg}
	if cfg.Obs != nil {
		m.histPlan = cfg.Obs.Hist(metrics.HistMasterPlan)
		m.histAggregate = cfg.Obs.Hist(metrics.HistMasterAggregate)
		m.histTakeResult = cfg.Obs.Hist(metrics.HistMasterTakeResult)
	}
	return m
}

// TasksPlanned returns the total number of tasks written by this master.
func (m *Master) TasksPlanned() int64 { return m.planned.Load() }

// ResultsCollected returns the total number of results aggregated.
func (m *Master) ResultsCollected() int64 { return m.collected.Load() }

// PendingTasks counts task entries currently sitting in the space for
// the active job. It reports zero between jobs without touching the
// space: gauges are polled from scrape goroutines outside the framework's
// scheduling domain, and an idle deployment must answer from local state
// alone rather than issue space operations nothing is left to serve.
func (m *Master) PendingTasks() int64 {
	if !m.running.Load() {
		return 0
	}
	tmpl, _ := m.taskTmpl.Load().(tuplespace.Entry)
	if tmpl == nil {
		return 0
	}
	n, err := m.cfg.Space.Count(tmpl)
	if err != nil {
		return 0
	}
	return int64(n)
}

// InFlight estimates tasks taken by workers but not yet returned:
// planned − collected − still-pending, clamped at zero (the three reads
// are not atomic with respect to one another).
func (m *Master) InFlight() int64 {
	if n := m.planned.Load() - m.collected.Load() - m.PendingTasks(); n > 0 {
		return n
	}
	return 0
}

// charge burns d of master CPU (at full intensity on the master machine,
// or as a plain sleep without one).
func (m *Master) charge(d time.Duration) {
	if d <= 0 {
		return
	}
	if m.cfg.Machine != nil {
		m.cfg.Machine.Compute(d, 90)
	} else {
		m.cfg.Clock.Sleep(d)
	}
}

// RunJob executes the three-phase protocol for job and returns its
// metrics. Workers must already be running (or started concurrently); the
// task-planning and compute phases overlap naturally, since workers begin
// consuming tasks as soon as the first write lands. Jobs implementing
// Iterative get additional plan/collect rounds until NextPhase reports
// false.
func (m *Master) RunJob(job Job) (RunMetrics, error) {
	var rm RunMetrics
	m.running.Store(true)
	defer m.running.Store(false)
	rm.Shards = 1
	if ns, ok := m.cfg.Space.(interface{ NumShards() int }); ok {
		rm.Shards = ns.NumShards()
	}
	total := metrics.StartStopwatch(m.cfg.Clock)
	for {
		rm.Phases++
		n, err := m.planPhase(job, &rm)
		if err != nil {
			return rm, err
		}
		if n == 0 {
			return rm, ErrNoTasks
		}
		if err := m.collectPhase(job, n, &rm); err != nil {
			return rm, err
		}
		it, ok := job.(Iterative)
		if !ok || !it.NextPhase() {
			break
		}
	}
	rm.ParallelTime = total.Elapsed()
	if m.cfg.Collector != nil {
		m.cfg.Collector.Add("planning", rm.TaskPlanningTime)
		m.cfg.Collector.Add("aggregation", rm.TaskAggregationTime)
		m.cfg.Collector.Add("parallel", rm.ParallelTime)
	}
	return rm, nil
}

// planPhase runs one task-planning round and returns how many tasks it
// emitted. Each task gets a root "plan" span whose context rides inside
// the task entry, so every downstream span (take, execute, aggregate)
// joins the same trace.
func (m *Master) planPhase(job Job, rm *RunMetrics) (int, error) {
	m.taskTmpl.Store(job.TaskTemplate())
	planning := metrics.StartStopwatch(m.cfg.Clock)
	planCost := job.PlanningCost()
	tracer := m.cfg.Obs.T()
	n := 0
	err := job.Plan(func(task tuplespace.Entry) error {
		one := metrics.StartStopwatch(m.cfg.Clock)
		span := tracer.StartRoot(m.cfg.Clock, "plan", "master")
		if span != nil {
			task = obs.Inject(task, span.Context())
		}
		m.charge(planCost)
		if _, err := m.cfg.Space.Write(task, nil, tuplespace.Forever); err != nil {
			span.End()
			return fmt.Errorf("master: write task: %w", err)
		}
		span.End()
		n++
		m.planned.Add(1)
		d := one.Elapsed()
		m.histPlan.Record(d)
		if d > rm.MaxMasterOverhead {
			rm.MaxMasterOverhead = d
		}
		return nil
	})
	if err != nil {
		return n, fmt.Errorf("master: planning: %w", err)
	}
	rm.Tasks += n
	rm.TaskPlanningTime += planning.Elapsed()
	return n, nil
}

// collectPhase takes and aggregates n results. With DedupResults the loop
// runs until n distinct results have been aggregated, dropping redelivered
// copies along the way — so a duplicated Write can neither double-count a
// result nor starve the phase.
func (m *Master) collectPhase(job Job, n int, rm *RunMetrics) error {
	aggregation := metrics.StartStopwatch(m.cfg.Clock)
	aggCost := job.AggregationCost()
	tmpl := job.ResultTemplate()
	var seen map[string]bool
	if m.cfg.DedupResults {
		// Scoped per phase: iterative jobs legitimately reuse task IDs
		// across phases.
		seen = make(map[string]bool)
	}
	for collected := 0; collected < n; {
		res, err := m.takeResult(tmpl)
		if err != nil {
			return fmt.Errorf("master: collecting result %d/%d: %w", collected+1, n, err)
		}
		// Pull the worker's execute-span context out of the result and
		// clear the carrier: retries of the same task produce results that
		// differ only in their trace context, and dedup fingerprinting
		// must treat those as identical.
		tc := obs.Extract(res)
		if tc.Valid() {
			res = obs.Inject(res, obs.TraceContext{})
		}
		if seen != nil {
			// Fingerprint the whole encoded entry, not its index key: in
			// non-spread task layouts every result of a job shares one key.
			fp, err := fingerprint(res)
			if err != nil {
				return fmt.Errorf("master: fingerprint result: %w", err)
			}
			if seen[fp] {
				rm.DuplicatesDropped++
				continue
			}
			seen[fp] = true
		}
		one := metrics.StartStopwatch(m.cfg.Clock)
		span := m.cfg.Obs.T().StartChild(m.cfg.Clock, tc, "aggregate", "master")
		m.charge(aggCost)
		if err := job.Aggregate(res); err != nil {
			span.End()
			return fmt.Errorf("master: aggregate: %w", err)
		}
		span.End()
		d := one.Elapsed()
		m.histAggregate.Record(d)
		if d > rm.MaxMasterOverhead {
			rm.MaxMasterOverhead = d
		}
		collected++
		m.collected.Add(1)
	}
	rm.TaskAggregationTime += aggregation.Elapsed()
	return nil
}

// fingerprint returns a byte-exact identity for a result entry. gob
// encoding is deterministic for map-free entry types (all the framework's
// jobs); entries containing maps should not rely on DedupResults.
func fingerprint(e tuplespace.Entry) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// takeResult waits up to ResultTimeout for one result, running the
// transaction sweeper between bounded waits so tasks locked by crashed
// workers are recovered instead of deadlocking the collection.
func (m *Master) takeResult(tmpl tuplespace.Entry) (tuplespace.Entry, error) {
	deadline := m.cfg.Clock.Now().Add(m.cfg.ResultTimeout)
	for {
		wait := m.cfg.ResultTimeout
		if m.cfg.Sweeper != nil && m.cfg.SweepInterval < wait {
			wait = m.cfg.SweepInterval
		}
		if remaining := deadline.Sub(m.cfg.Clock.Now()); remaining < wait {
			wait = remaining
		}
		if wait <= 0 {
			return nil, tuplespace.ErrTimeout
		}
		start := m.cfg.Clock.Now()
		res, err := m.cfg.Space.Take(tmpl, nil, wait)
		if err == nil {
			m.histTakeResult.Record(m.cfg.Clock.Since(start))
			return res, nil
		}
		if !errors.Is(err, tuplespace.ErrTimeout) {
			return nil, err
		}
		if m.cfg.Sweeper != nil {
			m.cfg.Sweeper.Sweep()
		}
	}
}
