package master

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gospaces/internal/nodeconfig"
	"gospaces/internal/space"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

type fakeTask struct {
	Job   string
	ID    int
	Round int
}

type fakeResult struct {
	Job   string
	ID    int
	Round int
}

// fakeJob plans n tasks per phase for `phases` phases.
type fakeJob struct {
	n        int
	phases   int
	round    int
	planCost time.Duration
	aggCost  time.Duration
	got      []fakeResult
	planErr  error
	aggErr   error
}

func (j *fakeJob) Name() string { return "fake" }
func (j *fakeJob) Plan(emit func(tuplespace.Entry) error) error {
	if j.planErr != nil {
		return j.planErr
	}
	for i := 1; i <= j.n; i++ {
		if err := emit(fakeTask{Job: "fake", ID: i, Round: j.round + 1}); err != nil {
			return err
		}
	}
	return nil
}
func (j *fakeJob) TaskTemplate() tuplespace.Entry { return fakeTask{Job: "fake"} }
func (j *fakeJob) ResultTemplate() tuplespace.Entry {
	return fakeResult{Job: "fake", Round: j.round + 1}
}
func (j *fakeJob) Aggregate(e tuplespace.Entry) error {
	if j.aggErr != nil {
		return j.aggErr
	}
	r, ok := e.(fakeResult)
	if !ok {
		return fmt.Errorf("bad result %T", e)
	}
	j.got = append(j.got, r)
	return nil
}
func (j *fakeJob) Bundle() nodeconfig.Bundle      { return nodeconfig.Bundle{Name: "fake"} }
func (j *fakeJob) PlanningCost() time.Duration    { return j.planCost }
func (j *fakeJob) AggregationCost() time.Duration { return j.aggCost }

type iterativeJob struct{ fakeJob }

func (j *iterativeJob) NextPhase() bool {
	j.round++
	return j.round < j.phases
}

// echoWorker answers every task in the space with a result.
func echoWorker(clk *vclock.Virtual, sp space.Space, quit *atomic.Bool) {
	for !quit.Load() {
		e, err := sp.Take(fakeTask{Job: "fake"}, nil, 50*time.Millisecond)
		if err != nil {
			continue
		}
		t := e.(fakeTask)
		clk.Sleep(10 * time.Millisecond)
		if _, err := sp.Write(fakeResult{Job: "fake", ID: t.ID, Round: t.Round}, nil, tuplespace.Forever); err != nil {
			return
		}
	}
}

func runWithWorker(t *testing.T, job Job, planCostless bool) (RunMetrics, *vclock.Virtual, error) {
	t.Helper()
	clk := vclock.NewVirtual(time.Unix(0, 0))
	local := space.NewLocal(clk)
	m := New(Config{Clock: clk, Space: local, ResultTimeout: 30 * time.Second})
	var rm RunMetrics
	var err error
	var quit atomic.Bool
	clk.Run(func() {
		clk.Go(func() { echoWorker(clk, local, &quit) })
		rm, err = m.RunJob(job)
		quit.Store(true)
	})
	_ = planCostless
	return rm, clk, err
}

func TestRunJobSinglePhase(t *testing.T) {
	job := &fakeJob{n: 5, planCost: 20 * time.Millisecond, aggCost: 5 * time.Millisecond}
	rm, _, err := runWithWorker(t, job, false)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Tasks != 5 || rm.Phases != 1 {
		t.Fatalf("metrics %+v", rm)
	}
	if len(job.got) != 5 {
		t.Fatalf("aggregated %d results", len(job.got))
	}
	if rm.TaskPlanningTime < 100*time.Millisecond {
		t.Fatalf("planning time %v, want >= 5×20ms", rm.TaskPlanningTime)
	}
	if rm.MaxMasterOverhead < 20*time.Millisecond {
		t.Fatalf("max master overhead %v", rm.MaxMasterOverhead)
	}
	if rm.ParallelTime < rm.TaskPlanningTime+rm.TaskAggregationTime {
		t.Fatalf("parallel %v < planning %v + aggregation %v",
			rm.ParallelTime, rm.TaskPlanningTime, rm.TaskAggregationTime)
	}
}

func TestRunJobIterativePhases(t *testing.T) {
	job := &iterativeJob{fakeJob{n: 3, phases: 4}}
	rm, _, err := runWithWorker(t, job, true)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Phases != 4 || rm.Tasks != 12 {
		t.Fatalf("metrics %+v", rm)
	}
	if len(job.got) != 12 {
		t.Fatalf("aggregated %d results", len(job.got))
	}
	// Results were collected per round: round i results only during
	// phase i (template matched on Round).
	for _, r := range job.got {
		if r.Round < 1 || r.Round > 4 {
			t.Fatalf("result round %d", r.Round)
		}
	}
}

func TestRunJobNoTasks(t *testing.T) {
	job := &fakeJob{n: 0}
	_, _, err := runWithWorker(t, job, true)
	if !errors.Is(err, ErrNoTasks) {
		t.Fatalf("err = %v, want ErrNoTasks", err)
	}
}

func TestRunJobPlanError(t *testing.T) {
	job := &fakeJob{n: 2, planErr: errors.New("plan boom")}
	_, _, err := runWithWorker(t, job, true)
	if err == nil || !errors.Is(err, job.planErr) && err.Error() == "" {
		t.Fatalf("err = %v", err)
	}
}

func TestRunJobAggregateError(t *testing.T) {
	job := &fakeJob{n: 2, aggErr: errors.New("agg boom")}
	_, _, err := runWithWorker(t, job, true)
	if err == nil {
		t.Fatal("aggregate error swallowed")
	}
}

func TestRunJobResultTimeout(t *testing.T) {
	// No worker: collection must fail after ResultTimeout, not hang.
	clk := vclock.NewVirtual(time.Unix(0, 0))
	local := space.NewLocal(clk)
	m := New(Config{Clock: clk, Space: local, ResultTimeout: 2 * time.Second})
	job := &fakeJob{n: 1}
	var err error
	clk.Run(func() { _, err = m.RunJob(job) })
	if err == nil || !errors.Is(err, tuplespace.ErrTimeout) {
		t.Fatalf("err = %v, want wrapped ErrTimeout", err)
	}
}

func TestChargeWithoutMachineSleeps(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	m := New(Config{Clock: clk, Space: space.NewLocal(clk)})
	clk.Run(func() {
		start := clk.Now()
		m.charge(70 * time.Millisecond)
		if got := clk.Since(start); got != 70*time.Millisecond {
			t.Errorf("charge slept %v", got)
		}
		m.charge(0) // no-op
	})
}
