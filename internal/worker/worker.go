// Package worker implements the paper's worker module: a thin runtime
// that is configured remotely (worker code is downloaded at runtime
// through the nodeconfig engine), pulls tasks from the JavaSpace, executes
// them, writes results back, and obeys the Start/Stop/Pause/Resume signals
// of the rule-base protocol. Signals never preempt a task: they are
// interpreted immediately but take effect at the next task boundary, so no
// task is ever lost (§4.3).
package worker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/nodeconfig"
	"gospaces/internal/obs"
	"gospaces/internal/rulebase"
	"gospaces/internal/space"
	"gospaces/internal/sysmon"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// Config assembles a worker's dependencies.
type Config struct {
	// Node names this worker (unique in the cluster).
	Node string
	// Clock is the node's time source.
	Clock vclock.Clock
	// Machine models the node's CPU; may be nil for tests.
	Machine *sysmon.Machine
	// Space is the (usually remote) JavaSpace holding tasks and results.
	Space space.Space
	// Engine downloads worker programs from the master's code server.
	Engine *nodeconfig.Engine
	// Program is the name of the program bundle to load on Start.
	Program string
	// TaskTemplate matches the task entries this worker consumes.
	TaskTemplate tuplespace.Entry
	// TxnTTL leases each per-task transaction; if the worker dies
	// mid-task the lease expires and the task reappears. <= 0 disables
	// transactions (tasks are then taken destructively).
	TxnTTL time.Duration
	// PollTimeout bounds each blocking Take so pending signals and
	// shutdown are honoured on an idle space. Default 250 ms.
	PollTimeout time.Duration
	// ParkPoll bounds each wait while Paused/Stopped. Default 500 ms.
	ParkPoll time.Duration
	// Collector, if set, receives per-task timing samples.
	Collector *metrics.Collector
	// Obs, if set, enables causal tracing ("take" and "execute" spans
	// parented to the task's plan span) and the worker task-latency
	// histogram. Nil disables both at zero cost.
	Obs *obs.Obs
}

// SignalRecord logs one received control signal with the protocol's two
// measured latencies: client time (send → receipt at the node's signal
// endpoint) and worker time (receipt → interpreted and acted on).
type SignalRecord struct {
	Signal     rulebase.Signal
	SentAt     time.Time
	ReceivedAt time.Time
	AppliedAt  time.Time
}

// ClientTime is the transport latency of the signal.
func (r SignalRecord) ClientTime() time.Duration { return r.ReceivedAt.Sub(r.SentAt) }

// WorkerTime is the handling latency at the worker.
func (r SignalRecord) WorkerTime() time.Duration { return r.AppliedAt.Sub(r.ReceivedAt) }

// Stats is a snapshot of worker progress.
type Stats struct {
	State        rulebase.State
	TasksDone    int
	TaskFailures int
	// SpaceErrors counts hard space failures (not timeouts) seen by the
	// task loop — dropped RPCs, the worker's own crash windows, partitions.
	// Chaos tests read it to confirm workers actually felt the injected
	// faults they recovered from.
	SpaceErrors  int
	FirstTaskAt  time.Time
	LastResultAt time.Time
	Loads        int // full program loads performed (Start/Restart pays these)
}

// WorkerTime returns the paper's per-worker computation time: first task
// access to final result write (zero if no task was completed).
func (s Stats) WorkerTime() time.Duration {
	if s.FirstTaskAt.IsZero() || s.LastResultAt.IsZero() {
		return 0
	}
	return s.LastResultAt.Sub(s.FirstTaskAt)
}

// signal-handling CPU costs (reference-node time burned in the signal
// endpoint — interpreting the signal and switching the runtime process).
var signalHandlingCost = map[rulebase.Signal]time.Duration{
	rulebase.SignalStart:   8 * time.Millisecond, // spawn runtime process
	rulebase.SignalRestart: 8 * time.Millisecond,
	rulebase.SignalResume:  3 * time.Millisecond, // unlock interrupted thread
	rulebase.SignalPause:   4 * time.Millisecond, // interrupt + lock thread
	rulebase.SignalStop:    6 * time.Millisecond, // interrupt + cleanup
}

// ErrBadSignal is returned for a signal invalid in the worker's state.
var ErrBadSignal = errors.New("worker: signal not valid in current state")

// Worker is one worker module instance.
type Worker struct {
	cfg Config

	// histTask is the worker task-latency histogram, resolved once so the
	// task loop avoids the registry lookup; nil when Config.Obs is nil.
	histTask *metrics.Histogram

	mu        sync.Mutex
	target    rulebase.State // state requested by the rule-base protocol
	state     rulebase.State // state the run loop has actually entered
	ranBefore bool
	program   nodeconfig.Program
	parker    vclock.Waiter
	quit      bool
	running   bool
	stats     Stats
	signals   []SignalRecord
}

// New returns a worker in the Stopped state; it does nothing until it
// receives a Start signal (or AutoStart is invoked) and Run is called.
func New(cfg Config) *Worker {
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 250 * time.Millisecond
	}
	if cfg.ParkPoll <= 0 {
		cfg.ParkPoll = 500 * time.Millisecond
	}
	w := &Worker{cfg: cfg, target: rulebase.StateStopped, state: rulebase.StateStopped}
	if cfg.Obs != nil {
		w.histTask = cfg.Obs.Hist(metrics.HistWorkerTask)
	}
	return w
}

// Bind exposes the worker's signal endpoint on an RPC server (the SNMP
// client side of the rule-base protocol, Figure 4).
func (w *Worker) Bind(srv *transport.Server) {
	srv.Handle("worker.Signal", func(arg interface{}) (interface{}, error) {
		a, ok := arg.(SignalArgs)
		if !ok {
			return nil, fmt.Errorf("worker: bad signal args %T", arg)
		}
		rec, err := w.Signal(a.Signal, a.SentAt)
		if err != nil {
			return nil, err
		}
		return SignalReply{Record: rec}, nil
	})
	srv.Handle("worker.State", func(arg interface{}) (interface{}, error) {
		return StateReply{State: w.State()}, nil
	})
}

// SignalArgs is the RPC frame carrying a control signal.
type SignalArgs struct {
	Signal rulebase.Signal
	SentAt time.Time
}

// SignalReply acknowledges a signal with its latency record.
type SignalReply struct {
	Record SignalRecord
}

// StateReply reports the worker's current state.
type StateReply struct {
	State rulebase.State
}

func init() {
	transport.RegisterType(SignalArgs{})
	transport.RegisterType(SignalReply{})
	transport.RegisterType(StateReply{})
}

// Signal delivers a control signal. The transition is validated and
// interpreted immediately (the run loop adopts it at the next task
// boundary); the returned record carries the measured latencies.
func (w *Worker) Signal(sig rulebase.Signal, sentAt time.Time) (SignalRecord, error) {
	received := w.cfg.Clock.Now()
	w.mu.Lock()
	next, ok := rulebase.Apply(w.target, sig)
	if !ok {
		w.mu.Unlock()
		return SignalRecord{}, fmt.Errorf("%w: %v in %v", ErrBadSignal, sig, w.target)
	}
	w.target = next
	parker := w.parker
	w.mu.Unlock()

	// Burn the signal-handling cost on the node (visible to the caller as
	// worker reaction time, exactly as the paper measures it).
	if cost := signalHandlingCost[sig]; cost > 0 {
		if w.cfg.Machine != nil {
			w.cfg.Machine.Compute(cost, 20)
		} else {
			w.cfg.Clock.Sleep(cost)
		}
	}
	if parker != nil {
		parker.Wake()
	}
	rec := SignalRecord{Signal: sig, SentAt: sentAt, ReceivedAt: received, AppliedAt: w.cfg.Clock.Now()}
	w.mu.Lock()
	w.signals = append(w.signals, rec)
	w.mu.Unlock()
	return rec, nil
}

// AutoStart marks the worker to begin running without waiting for a
// Start signal — used by scalability experiments that run without the
// network-management module.
func (w *Worker) AutoStart() {
	w.mu.Lock()
	w.target = rulebase.StateRunning
	parker := w.parker
	w.mu.Unlock()
	if parker != nil {
		parker.Wake()
	}
}

// State returns the state the run loop currently occupies.
func (w *Worker) State() rulebase.State {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// Stats returns a snapshot of progress counters.
func (w *Worker) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.State = w.state
	if w.cfg.Engine != nil {
		st.Loads = w.cfg.Engine.LoadCount()
	}
	return st
}

// Signals returns the log of received control signals.
func (w *Worker) Signals() []SignalRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]SignalRecord, len(w.signals))
	copy(out, w.signals)
	return out
}

// Shutdown asks the run loop to exit at the next boundary.
func (w *Worker) Shutdown() {
	w.mu.Lock()
	w.quit = true
	parker := w.parker
	w.mu.Unlock()
	if parker != nil {
		parker.Wake()
	}
}

// Run executes the worker loop until Shutdown. It must run as a process on
// the worker's clock (e.g. inside vclock.Virtual.Go).
func (w *Worker) Run() {
	w.mu.Lock()
	if w.running {
		w.mu.Unlock()
		panic("worker: Run called twice")
	}
	w.running = true
	w.mu.Unlock()
	for {
		w.mu.Lock()
		if w.quit {
			w.state = rulebase.StateStopped
			w.mu.Unlock()
			return
		}
		target := w.target
		switch target {
		case rulebase.StateStopped:
			if w.program != nil {
				w.program = nil
				if w.cfg.Engine != nil {
					w.cfg.Engine.Unload(w.cfg.Program)
				}
			}
			w.park()
			continue
		case rulebase.StatePaused:
			w.park()
			continue
		}
		// Target is Running.
		needLoad := w.program == nil
		w.mu.Unlock()
		if needLoad {
			if !w.loadProgram() {
				continue
			}
		}
		w.mu.Lock()
		w.state = rulebase.StateRunning
		w.ranBefore = true
		w.mu.Unlock()

		w.runOneTask()
	}
}

// park records the parked state and blocks until woken or ParkPoll
// elapses. Caller holds w.mu; park releases it.
func (w *Worker) park() {
	w.state = w.target
	w.parker = w.cfg.Clock.NewWaiter()
	p := w.parker
	w.mu.Unlock()
	p.Wait(w.cfg.ParkPoll)
	w.mu.Lock()
	w.parker = nil
	w.mu.Unlock()
}

// loadProgram performs remote node configuration; reports success.
func (w *Worker) loadProgram() bool {
	if w.cfg.Engine == nil {
		return false
	}
	p, err := w.cfg.Engine.Load(w.cfg.Program)
	if err != nil {
		// Transient code-server failure: back off and let the loop retry.
		w.cfg.Clock.Sleep(w.cfg.ParkPoll)
		return false
	}
	w.mu.Lock()
	w.program = p
	w.mu.Unlock()
	return true
}

// spaceFailed classifies a space-operation error, counting hard failures;
// it reports whether err was hard (anything but the benign no-entry-yet
// sentinels).
func (w *Worker) spaceFailed(err error) bool {
	if errors.Is(err, tuplespace.ErrTimeout) || errors.Is(err, tuplespace.ErrNoMatch) {
		return false
	}
	w.mu.Lock()
	w.stats.SpaceErrors++
	w.mu.Unlock()
	return true
}

// taskFailed records a failure and backs the worker off for one poll
// period, so a persistently failing ("poisoned") task that keeps
// reappearing after its transaction aborts cannot spin the worker hot.
func (w *Worker) taskFailed() {
	w.mu.Lock()
	w.stats.TaskFailures++
	w.mu.Unlock()
	w.cfg.Clock.Sleep(w.cfg.PollTimeout)
}

// runOneTask takes, executes and answers a single task (or returns on
// poll timeout so the loop can honour signals).
func (w *Worker) runOneTask() {
	var tx space.Txn
	var err error
	if w.cfg.TxnTTL > 0 {
		tx, err = w.cfg.Space.BeginTxn(w.cfg.TxnTTL)
		if err != nil {
			w.spaceFailed(err)
			w.cfg.Clock.Sleep(w.cfg.PollTimeout)
			return
		}
	}
	takeStart := w.cfg.Clock.Now()
	task, err := w.cfg.Space.Take(w.cfg.TaskTemplate, tx, w.cfg.PollTimeout)
	if err != nil {
		if tx != nil {
			_ = tx.Abort()
		}
		if w.spaceFailed(err) {
			// A hard failure (dead endpoint, partition) returns instantly,
			// unlike a served timeout: back off one poll period so a down
			// window cannot spin the loop hot — on the virtual clock a
			// sleepless retry loop would stall time entirely.
			w.cfg.Clock.Sleep(w.cfg.PollTimeout)
		}
		return // loop re-checks signals
	}
	// The task's trace context is only known now that Take returned, so
	// the take stage is recorded retroactively.
	tracer := w.cfg.Obs.T()
	tc := obs.Extract(task)
	tracer.RecordSince(w.cfg.Clock, tc, "take", w.cfg.Node, takeStart)
	now := w.cfg.Clock.Now()
	w.mu.Lock()
	if w.stats.FirstTaskAt.IsZero() {
		w.stats.FirstTaskAt = now
	}
	prog := w.program
	w.mu.Unlock()

	start := w.cfg.Clock.Now()
	execSpan := tracer.StartChild(w.cfg.Clock, tc, "execute", w.cfg.Node)
	result, err := prog.Execute(nodeconfig.ExecContext{
		Clock:   w.cfg.Clock,
		Machine: w.cfg.Machine,
		Node:    w.cfg.Node,
	}, task)
	execSpan.End()
	if err != nil {
		if tx != nil {
			_ = tx.Abort() // the task reappears for another worker
		}
		w.taskFailed()
		return
	}
	if execSpan != nil {
		// The result carries the execute span so the master can parent its
		// aggregate span to it.
		result = obs.Inject(result, execSpan.Context())
	}
	if _, err := w.cfg.Space.Write(result, tx, tuplespace.Forever); err != nil {
		if tx != nil {
			_ = tx.Abort()
		}
		w.spaceFailed(err)
		w.taskFailed()
		return
	}
	if tx != nil {
		if err := tx.Commit(); err != nil {
			w.spaceFailed(err)
			w.taskFailed()
			return
		}
	}
	done := w.cfg.Clock.Now()
	if w.cfg.Collector != nil {
		w.cfg.Collector.Add("task:"+w.cfg.Node, done.Sub(start))
	}
	w.histTask.Record(done.Sub(start))
	w.mu.Lock()
	w.stats.TasksDone++
	w.stats.LastResultAt = done
	w.mu.Unlock()
}
