package worker

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/nodeconfig"
	"gospaces/internal/rulebase"
	"gospaces/internal/space"
	"gospaces/internal/sysmon"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// testTask / testResult are the entries the test program consumes.
type testTask struct {
	Job  string
	ID   int  // 1-based
	Boom bool // ask the program to fail
}

type testResult struct {
	Job  string
	ID   int
	Node string
}

type testProgram struct {
	mu       sync.Mutex
	executed []int
}

func (p *testProgram) Name() string { return "testjob" }

func (p *testProgram) Execute(ctx nodeconfig.ExecContext, e tuplespace.Entry) (tuplespace.Entry, error) {
	t, ok := e.(testTask)
	if !ok {
		return nil, fmt.Errorf("bad entry %T", e)
	}
	if t.Boom {
		return nil, errors.New("boom")
	}
	if ctx.Machine != nil {
		ctx.Machine.Compute(50*time.Millisecond, 95)
	}
	p.mu.Lock()
	p.executed = append(p.executed, t.ID)
	p.mu.Unlock()
	return testResult{Job: "testjob", ID: t.ID, Node: ctx.Node}, nil
}

func init() {
	transport.RegisterType(testTask{})
	transport.RegisterType(testResult{})
	nodeconfig.RegisterFactory("test.Worker", func([]byte) (nodeconfig.Program, error) {
		return &testProgram{}, nil
	})
}

// rig wires a virtual-clock worker to a local space through an in-proc
// network, with a code server publishing the test program.
type rig struct {
	clk     *vclock.Virtual
	local   *space.Local
	machine *sysmon.Machine
	w       *Worker
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := vclock.NewVirtual(time.Date(2001, 10, 8, 0, 0, 0, 0, time.UTC))
	local := space.NewLocal(clk)
	srv := transport.NewServer()
	space.NewService(local, srv)
	cs := nodeconfig.NewCodeServer()
	cs.Publish(nodeconfig.Bundle{Name: "testjob", EntryPoint: "test.Worker", Payload: make([]byte, 1024)})
	cs.Bind(srv)
	net := transport.NewNetwork(clk, transport.Loopback())
	net.Listen("master", srv)

	machine := sysmon.NewMachine(clk, "n1", 1)
	engine := nodeconfig.NewEngine(nodeconfig.ExecContext{Clock: clk, Machine: machine, Node: "n1"}, net.Dial("master"))
	w := New(Config{
		Node:         "n1",
		Clock:        clk,
		Machine:      machine,
		Space:        space.NewProxy(net.Dial("master")),
		Engine:       engine,
		Program:      "testjob",
		TaskTemplate: testTask{Job: "testjob"},
		TxnTTL:       time.Minute,
		PollTimeout:  100 * time.Millisecond,
		ParkPoll:     200 * time.Millisecond,
	})
	return &rig{clk: clk, local: local, machine: machine, w: w}
}

func (r *rig) writeTasks(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := r.local.Write(testTask{Job: "testjob", ID: i + 1}, nil, tuplespace.Forever); err != nil {
			t.Fatal(err)
		}
	}
}

func (r *rig) countResults(t *testing.T) int {
	t.Helper()
	n, err := r.local.Count(testResult{Job: "testjob"})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestWorkerProcessesAllTasks(t *testing.T) {
	r := newRig(t)
	r.writeTasks(t, 8)
	r.clk.Run(func() {
		r.clk.Go(r.w.Run)
		r.w.AutoStart()
		r.clk.Sleep(5 * time.Second)
		r.w.Shutdown()
	})
	if got := r.countResults(t); got != 8 {
		t.Fatalf("results = %d, want 8", got)
	}
	st := r.w.Stats()
	if st.TasksDone != 8 || st.TaskFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WorkerTime() <= 0 {
		t.Fatal("worker time not measured")
	}
	if st.Loads != 1 {
		t.Fatalf("program loaded %d times, want 1", st.Loads)
	}
}

func TestWorkerStartsOnlyOnSignal(t *testing.T) {
	r := newRig(t)
	r.writeTasks(t, 2)
	r.clk.Run(func() {
		r.clk.Go(r.w.Run)
		r.clk.Sleep(2 * time.Second)
		if got := r.countResults(t); got != 0 {
			t.Errorf("unsignalled worker produced %d results", got)
		}
		if st := r.w.State(); st != rulebase.StateStopped {
			t.Errorf("state = %v, want Stopped", st)
		}
		if _, err := r.w.Signal(rulebase.SignalStart, r.clk.Now()); err != nil {
			t.Error(err)
		}
		r.clk.Sleep(3 * time.Second)
		r.w.Shutdown()
	})
	if got := r.countResults(t); got != 2 {
		t.Fatalf("results = %d, want 2", got)
	}
}

func TestWorkerPauseAndResume(t *testing.T) {
	r := newRig(t)
	r.writeTasks(t, 20)
	var midCount int
	var pausedState rulebase.State
	r.clk.Run(func() {
		r.clk.Go(r.w.Run)
		r.w.AutoStart()
		r.clk.Sleep(500 * time.Millisecond)
		if _, err := r.w.Signal(rulebase.SignalPause, r.clk.Now()); err != nil {
			t.Error(err)
		}
		r.clk.Sleep(2 * time.Second)
		pausedState = r.w.State()
		midCount = r.countResults(t)
		// While paused, no progress.
		r.clk.Sleep(2 * time.Second)
		if got := r.countResults(t); got != midCount {
			t.Errorf("paused worker progressed: %d -> %d", midCount, got)
		}
		if _, err := r.w.Signal(rulebase.SignalResume, r.clk.Now()); err != nil {
			t.Error(err)
		}
		r.clk.Sleep(5 * time.Second)
		r.w.Shutdown()
	})
	if pausedState != rulebase.StatePaused {
		t.Fatalf("state during pause = %v", pausedState)
	}
	if got := r.countResults(t); got != 20 {
		t.Fatalf("results = %d, want 20", got)
	}
	// Resume must not reload the program.
	if st := r.w.Stats(); st.Loads != 1 {
		t.Fatalf("loads = %d, want 1 (pause/resume keeps program resident)", st.Loads)
	}
}

func TestWorkerStopUnloadsAndRestartReloads(t *testing.T) {
	r := newRig(t)
	r.writeTasks(t, 30)
	r.clk.Run(func() {
		r.clk.Go(r.w.Run)
		r.w.AutoStart()
		r.clk.Sleep(500 * time.Millisecond)
		if _, err := r.w.Signal(rulebase.SignalStop, r.clk.Now()); err != nil {
			t.Error(err)
		}
		r.clk.Sleep(time.Second)
		if st := r.w.State(); st != rulebase.StateStopped {
			t.Errorf("state after stop = %v", st)
		}
		if _, err := r.w.Signal(rulebase.SignalRestart, r.clk.Now()); err != nil {
			t.Error(err)
		}
		r.clk.Sleep(8 * time.Second)
		r.w.Shutdown()
	})
	if st := r.w.Stats(); st.Loads != 2 {
		t.Fatalf("loads = %d, want 2 (stop tears the program down)", st.Loads)
	}
	if got := r.countResults(t); got != 30 {
		t.Fatalf("results = %d, want 30", got)
	}
}

// TestWorkerNeverLosesTasks is the §4.3 guarantee: whatever the signal
// interleaving, every task is eventually answered exactly once.
func TestWorkerNeverLosesTasks(t *testing.T) {
	r := newRig(t)
	const n = 15
	r.writeTasks(t, n)
	r.clk.Run(func() {
		r.clk.Go(r.w.Run)
		r.w.AutoStart()
		// Aggressive signal storm: pause/resume/stop/restart cycles.
		sigs := []rulebase.Signal{
			rulebase.SignalPause, rulebase.SignalResume,
			rulebase.SignalStop, rulebase.SignalRestart,
			rulebase.SignalPause, rulebase.SignalStop,
			rulebase.SignalRestart, rulebase.SignalResume,
		}
		for _, s := range sigs {
			r.clk.Sleep(300 * time.Millisecond)
			_, _ = r.w.Signal(s, r.clk.Now()) // some may be invalid; ignored
		}
		r.clk.Sleep(15 * time.Second)
		r.w.Shutdown()
	})
	if got := r.countResults(t); got != n {
		t.Fatalf("results = %d, want %d", got, n)
	}
	if live, _ := r.local.Count(testTask{Job: "testjob"}); live != 0 {
		t.Fatalf("%d tasks left in space", live)
	}
}

func TestWorkerSignalRejectsInvalidTransitions(t *testing.T) {
	r := newRig(t)
	r.clk.Run(func() {
		// Worker is Stopped; Pause and Resume are invalid.
		if _, err := r.w.Signal(rulebase.SignalPause, r.clk.Now()); !errors.Is(err, ErrBadSignal) {
			t.Errorf("pause in stopped: %v", err)
		}
		if _, err := r.w.Signal(rulebase.SignalResume, r.clk.Now()); !errors.Is(err, ErrBadSignal) {
			t.Errorf("resume in stopped: %v", err)
		}
	})
}

func TestWorkerSignalRecordLatencies(t *testing.T) {
	r := newRig(t)
	r.clk.Run(func() {
		sent := r.clk.Now()
		r.clk.Sleep(5 * time.Millisecond) // simulated transport delay
		rec, err := r.w.Signal(rulebase.SignalStart, sent)
		if err != nil {
			t.Fatal(err)
		}
		if rec.ClientTime() != 5*time.Millisecond {
			t.Errorf("client time = %v, want 5ms", rec.ClientTime())
		}
		if rec.WorkerTime() <= 0 {
			t.Errorf("worker time = %v, want > 0", rec.WorkerTime())
		}
	})
	if logs := r.w.Signals(); len(logs) != 1 || logs[0].Signal != rulebase.SignalStart {
		t.Fatalf("signal log = %+v", logs)
	}
}

func TestWorkerFailingTaskReappears(t *testing.T) {
	r := newRig(t)
	if _, err := r.local.Write(testTask{Job: "testjob", ID: 1, Boom: true}, nil, tuplespace.Forever); err != nil {
		t.Fatal(err)
	}
	r.clk.Run(func() {
		r.clk.Go(r.w.Run)
		r.w.AutoStart()
		r.clk.Sleep(2 * time.Second)
		r.w.Shutdown()
	})
	st := r.w.Stats()
	if st.TaskFailures == 0 {
		t.Fatal("failure not recorded")
	}
	// The transactional take aborted, so the poisoned task is back.
	if live, _ := r.local.Count(testTask{Job: "testjob"}); live != 1 {
		t.Fatalf("poisoned task count = %d, want 1 (reappeared)", live)
	}
}

// TestWorkerWithoutTransactions: TxnTTL <= 0 disables per-task
// transactions (tasks are taken destructively); the loop still works.
func TestWorkerWithoutTransactions(t *testing.T) {
	r := newRig(t)
	r.w.cfg.TxnTTL = 0
	r.writeTasks(t, 6)
	r.clk.Run(func() {
		r.clk.Go(r.w.Run)
		r.w.AutoStart()
		r.clk.Sleep(4 * time.Second)
		r.w.Shutdown()
	})
	if got := r.countResults(t); got != 6 {
		t.Fatalf("results = %d, want 6", got)
	}
	if st := r.w.Stats(); st.TasksDone != 6 || st.TaskFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWorkerCollectorReceivesTaskTimings(t *testing.T) {
	r := newRig(t)
	col := metrics.NewCollector()
	r.w.cfg.Collector = col
	r.writeTasks(t, 5)
	r.clk.Run(func() {
		r.clk.Go(r.w.Run)
		r.w.AutoStart()
		r.clk.Sleep(5 * time.Second)
		r.w.Shutdown()
	})
	if got := col.Count("task:n1"); got != 5 {
		t.Fatalf("collector has %d task samples, want 5", got)
	}
	if col.Max("task:n1") < 50*time.Millisecond {
		t.Fatalf("max task time %v, want >= compute time", col.Max("task:n1"))
	}
}

func TestWorkerRunTwicePanics(t *testing.T) {
	r := newRig(t)
	r.clk.Run(func() {
		r.clk.Go(r.w.Run)
		r.clk.Sleep(100 * time.Millisecond)
		defer func() {
			if recover() == nil {
				t.Error("second Run did not panic")
			}
			r.w.Shutdown()
		}()
		r.w.Run()
	})
}

func TestWorkerBindSignalEndpoint(t *testing.T) {
	r := newRig(t)
	srv := transport.NewServer()
	r.w.Bind(srv)
	net := transport.NewNetwork(r.clk, transport.Loopback())
	net.Listen("n1", srv)
	r.clk.Run(func() {
		c := net.Dial("n1")
		res, err := c.Call("worker.Signal", SignalArgs{Signal: rulebase.SignalStart, SentAt: r.clk.Now()})
		if err != nil {
			t.Fatal(err)
		}
		if res.(SignalReply).Record.Signal != rulebase.SignalStart {
			t.Fatalf("reply = %+v", res)
		}
		st, err := c.Call("worker.State", 0)
		if err != nil {
			t.Fatal(err)
		}
		// Run loop not started: state is still Stopped even though the
		// target is Running.
		if got := st.(StateReply).State; got != rulebase.StateStopped {
			t.Fatalf("state = %v", got)
		}
	})
}
