package transport

import (
	"sync"
	"time"

	"gospaces/internal/vclock"
)

// ServiceGate models the CPU of a single-threaded server as a FIFO queue
// in clock time: each admitted operation occupies the server for cost, and
// an operation arriving while the server is busy waits for everything
// admitted before it. The waiting is charged to the *caller's* clock —
// both transport bindings run handlers on (or proxied back to) the calling
// process — so under the virtual clock a saturated gate shows up as
// queueing delay exactly where a saturated JavaSpaces server would: in the
// client's latency.
//
// This is what makes shard scaling observable in simulation: K shards give
// K independent gates, dividing the arrival rate each queue sees.
type ServiceGate struct {
	clock vclock.Clock
	cost  time.Duration

	mu        sync.Mutex
	busyUntil time.Time
	admitted  uint64
}

// NewServiceGate returns a gate on clock charging cost per operation. A
// cost <= 0 yields a no-op gate.
func NewServiceGate(clock vclock.Clock, cost time.Duration) *ServiceGate {
	return &ServiceGate{clock: clock, cost: cost}
}

// Admit reserves the next service slot and sleeps until the operation's
// service completes (queue wait + service time). The lock is held only to
// compute the slot, never across the sleep, so gated callers on the
// virtual clock all park on timers and time can advance.
func (g *ServiceGate) Admit() {
	if g == nil || g.cost <= 0 {
		return
	}
	g.mu.Lock()
	now := g.clock.Now()
	start := now
	if g.busyUntil.After(start) {
		start = g.busyUntil
	}
	end := start.Add(g.cost)
	g.busyUntil = end
	g.admitted++
	g.mu.Unlock()
	if wait := end.Sub(now); wait > 0 {
		g.clock.Sleep(wait)
	}
}

// AdmitBy is Admit with a deadline: when the next service slot would not
// complete by deadline the op is refused without reserving the slot, so
// queued work the client will already have abandoned is never executed.
// A zero deadline admits unconditionally. Reports whether the op was
// admitted (and, if so, served).
func (g *ServiceGate) AdmitBy(deadline time.Time) bool {
	if g == nil || g.cost <= 0 {
		return true
	}
	g.mu.Lock()
	now := g.clock.Now()
	start := now
	if g.busyUntil.After(start) {
		start = g.busyUntil
	}
	end := start.Add(g.cost)
	if !deadline.IsZero() && end.After(deadline) {
		g.mu.Unlock()
		return false
	}
	g.busyUntil = end
	g.admitted++
	g.mu.Unlock()
	if wait := end.Sub(now); wait > 0 {
		g.clock.Sleep(wait)
	}
	return true
}

// Backlog returns the queueing delay a newly arriving op would see — how
// far the reserved work extends past now. It is the gate's queue depth in
// clock time, the quantity overload protection must keep bounded.
func (g *ServiceGate) Backlog() time.Duration {
	if g == nil || g.cost <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if d := g.busyUntil.Sub(g.clock.Now()); d > 0 {
		return d
	}
	return 0
}

// Admitted returns the number of operations admitted so far.
func (g *ServiceGate) Admitted() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.admitted
}

// Middleware adapts the gate to Server.Wrap, charging every RPC method the
// gate's cost before the handler runs.
func (g *ServiceGate) Middleware() func(method string, next Handler) Handler {
	return func(method string, next Handler) Handler {
		return func(arg interface{}) (interface{}, error) {
			g.Admit()
			return next(arg)
		}
	}
}
