// Package transport provides the messaging substrate used by every remote
// interaction in this repository: a tiny gob-based RPC protocol with two
// bindings. The TCP binding carries real deployments (cmd/master,
// cmd/worker, …). The in-process binding routes calls through a configurable
// network model (per-message latency plus per-byte cost) charged to the
// caller's clock, which is what lets the experiment harness run a simulated
// multi-node cluster — with 2001-era LAN costs — under the virtual clock.
//
// Messages are gob-encoded. Concrete types crossing the wire inside an
// `any` must be registered with RegisterType (the analogue of Java
// serialization's class registry).
package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// RemoteError carries an error string returned by the remote side of a
// call.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Msg)
}

// Errors returned by transport operations.
var (
	ErrNoSuchMethod  = errors.New("transport: no such method")
	ErrNoSuchService = errors.New("transport: no service at address")
	ErrClosed        = errors.New("transport: connection closed")
)

// RegisterType registers a concrete type for transmission inside any-typed
// RPC arguments and results.
func RegisterType(v interface{}) { gob.Register(v) }

func init() {
	// Raw datagram payloads (e.g. SNMP BER packets) cross the RPC layer
	// as byte slices.
	gob.Register([]byte(nil))
}

// Handler processes one RPC method.
type Handler func(arg interface{}) (interface{}, error)

// Server dispatches method calls to registered handlers. It is shared by
// both bindings.
type Server struct {
	handlers map[string]Handler
}

// NewServer returns an empty server.
func NewServer() *Server { return &Server{handlers: make(map[string]Handler)} }

// Handle registers h for method name. Registration must complete before the
// server is exposed; it is not synchronized with dispatch.
func (s *Server) Handle(method string, h Handler) { s.handlers[method] = h }

// Wrap replaces every registered handler h with mw(method, h) — middleware
// applied uniformly across the server's methods (used, for example, to
// charge a modeled per-operation CPU cost to a shard server). Like Handle,
// it must be called before the server is exposed to dispatch.
func (s *Server) Wrap(mw func(method string, next Handler) Handler) {
	for m, h := range s.handlers {
		s.handlers[m] = mw(m, h)
	}
}

// Dispatch invokes the handler for method.
func (s *Server) Dispatch(method string, arg interface{}) (interface{}, error) {
	h, ok := s.handlers[method]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchMethod, method)
	}
	return h(arg)
}

// Client is one side of an RPC connection.
type Client interface {
	// Call invokes method with arg and returns the result. Calls may be
	// issued concurrently.
	Call(method string, arg interface{}) (interface{}, error)
	// Close releases the connection.
	Close() error
}

// envelope wraps an any-typed payload for gob.
type envelope struct {
	V interface{}
}

// encodePayload gob-encodes v and returns the bytes; used both for wire
// transmission and for charging serialization size to the network model.
func encodePayload(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{V: v}); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decodePayload reverses encodePayload.
func decodePayload(b []byte) (interface{}, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return env.V, nil
}
