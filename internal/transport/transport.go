// Package transport provides the messaging substrate used by every remote
// interaction in this repository: a tiny gob-based RPC protocol with two
// bindings. The TCP binding carries real deployments (cmd/master,
// cmd/worker, …). The in-process binding routes calls through a configurable
// network model (per-message latency plus per-byte cost) charged to the
// caller's clock, which is what lets the experiment harness run a simulated
// multi-node cluster — with 2001-era LAN costs — under the virtual clock.
//
// Messages are gob-encoded. Concrete types crossing the wire inside an
// `any` must be registered with RegisterType (the analogue of Java
// serialization's class registry).
package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync"

	"gospaces/internal/enc"
)

// RemoteError carries an error string returned by the remote side of a
// call.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Msg)
}

// Errors returned by transport operations.
var (
	ErrNoSuchMethod  = errors.New("transport: no such method")
	ErrNoSuchService = errors.New("transport: no service at address")
	ErrClosed        = errors.New("transport: connection closed")
)

// RegisterType registers a concrete type for transmission inside any-typed
// RPC arguments and results. Registration is shared with the journal/WAL
// layer (see internal/enc): one call covers the wire and the durable log.
func RegisterType(v interface{}) { enc.RegisterType(v) }

func init() {
	// Raw datagram payloads (e.g. SNMP BER packets) cross the RPC layer
	// as byte slices.
	gob.Register([]byte(nil))
}

// Handler processes one RPC method.
type Handler func(arg interface{}) (interface{}, error)

// Server dispatches method calls to registered handlers. It is shared by
// both bindings. Registration is synchronized with dispatch, so a service
// may be rebound at runtime — the durable space server re-registers its
// handlers after recovering a crashed shard.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewServer returns an empty server.
func NewServer() *Server { return &Server{handlers: make(map[string]Handler)} }

// Handle registers h for method name, replacing any previous handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Wrap replaces every registered handler h with mw(method, h) — middleware
// applied uniformly across the server's methods (used, for example, to
// charge a modeled per-operation CPU cost to a shard server).
func (s *Server) Wrap(mw func(method string, next Handler) Handler) {
	s.WrapPrefix("", mw)
}

// WrapPrefix wraps only the handlers whose method name starts with prefix
// — re-gating a rebound service's methods without touching unrelated ones
// on the same server.
func (s *Server) WrapPrefix(prefix string, mw func(method string, next Handler) Handler) {
	s.mu.Lock()
	for m, h := range s.handlers {
		if strings.HasPrefix(m, prefix) {
			s.handlers[m] = mw(m, h)
		}
	}
	s.mu.Unlock()
}

// Dispatch invokes the handler for method.
func (s *Server) Dispatch(method string, arg interface{}) (interface{}, error) {
	s.mu.RLock()
	h, ok := s.handlers[method]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchMethod, method)
	}
	return h(arg)
}

// Client is one side of an RPC connection.
type Client interface {
	// Call invokes method with arg and returns the result. Calls may be
	// issued concurrently.
	Call(method string, arg interface{}) (interface{}, error)
	// Close releases the connection.
	Close() error
}

// envelope wraps an any-typed payload for gob.
type envelope struct {
	V interface{}
}

// encodePayload gob-encodes v and returns the bytes; used both for wire
// transmission and for charging serialization size to the network model.
func encodePayload(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{V: v}); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decodePayload reverses encodePayload.
func decodePayload(b []byte) (interface{}, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return env.V, nil
}
