package transport

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"gospaces/internal/vclock"
)

// sleepLog records every backoff sleep without actually sleeping.
type sleepLog struct {
	vclock.Real
	mu     sync.Mutex
	sleeps []time.Duration
}

func (c *sleepLog) Sleep(d time.Duration) {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
}

func schedule(t *testing.T, b Backoff) []time.Duration {
	t.Helper()
	clk := &sleepLog{}
	b.Clock = clk
	err := b.Do(func() error { return errors.New("always fails") })
	if err == nil {
		t.Fatal("op always fails; Do returned nil")
	}
	return clk.sleeps
}

// TestBackoffFullJitterSeededReplay: a seeded jittered schedule is
// replayable (same seed, same sleeps), decorrelated (different seeds
// diverge), and stays inside the exponential envelope — the properties
// the exactly-once retry policy relies on under the virtual clock.
func TestBackoffFullJitterSeededReplay(t *testing.T) {
	base := Backoff{Attempts: 6, Initial: 100 * time.Millisecond, Max: time.Second, Jitter: true, Seed: 7}
	a := schedule(t, base)
	b := schedule(t, base)
	if len(a) != 5 {
		t.Fatalf("6 attempts produced %d sleeps, want 5", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n  %v\n  %v", a, b)
	}
	other := base
	other.Seed = 8
	if c := schedule(t, other); reflect.DeepEqual(a, c) {
		t.Fatalf("seeds 7 and 8 produced identical schedules %v: jitter is not seed-driven", a)
	}
	// Full jitter: each sleep uniform over [0, envelope], envelope
	// doubling from Initial and capped at Max.
	envelope := base.Initial
	for i, d := range a {
		if d < 0 || d > envelope {
			t.Errorf("sleep %d = %v outside [0, %v]", i, d, envelope)
		}
		envelope *= 2
		if envelope > base.Max {
			envelope = base.Max
		}
	}
}

// TestBackoffZeroSeedDeterministic: with Jitter on and no explicit seed
// the stream seeds from the policy parameters — still deterministic, so
// two identical policies (e.g. DefaultPolicy) replay identically.
func TestBackoffZeroSeedDeterministic(t *testing.T) {
	p := DefaultPolicy()
	p.Attempts = 5
	if !reflect.DeepEqual(schedule(t, p), schedule(t, p)) {
		t.Fatal("zero-seed jitter is not deterministic across identical policies")
	}
}

// TestBackoffNoJitterKeepsExactSchedule: without jitter the legacy
// deterministic exponential schedule is unchanged.
func TestBackoffNoJitterKeepsExactSchedule(t *testing.T) {
	got := schedule(t, Backoff{Attempts: 5, Initial: 50 * time.Millisecond, Max: 300 * time.Millisecond})
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule = %v, want %v", got, want)
	}
}
