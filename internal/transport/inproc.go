package transport

import (
	"fmt"
	"sync"
	"time"

	"gospaces/internal/vclock"
)

// Model describes the cost of moving a message across the simulated
// network: a fixed per-message latency plus a serialization/transmission
// cost proportional to the gob-encoded size. The defaults in LAN2001
// approximate the paper's testbed: 100 Mbit/s switched Ethernet plus
// Jini/JavaSpaces marshalling overhead.
type Model struct {
	// Latency is charged once per message direction.
	Latency time.Duration
	// PerKB is charged per kilobyte of encoded payload (covers both
	// serialization CPU and wire time).
	PerKB time.Duration
}

// Cost returns the time to move n encoded bytes one way.
func (m Model) Cost(n int) time.Duration {
	return m.Latency + time.Duration(float64(m.PerKB)*float64(n)/1024)
}

// LAN2001 models the paper's 100 Mbit/s LAN with JVM serialization
// overheads: ~1 ms per RPC hop plus ~0.3 ms/KB.
func LAN2001() Model {
	return Model{Latency: time.Millisecond, PerKB: 300 * time.Microsecond}
}

// Loopback is a free network for unit tests.
func Loopback() Model { return Model{} }

// Interceptor observes and manipulates every call crossing an in-process
// Network. invoke performs the real delivery (cost charging, dispatch,
// response); an interceptor may decline to call it (dropping the call),
// call it more than once (duplicating the delivery), or delay around it.
// from is the caller's endpoint name as given to DialAs ("" for untagged
// dials), to is the dialed address. The fault-injection layer
// (internal/faults) is the only intended implementor.
type Interceptor func(from, to, method string, invoke func() (interface{}, error)) (interface{}, error)

// Network is an in-process network: a namespace of addresses backed by
// Servers, with Model costs charged to the calling process's clock. It is
// safe for concurrent use.
type Network struct {
	clock vclock.Clock
	model Model

	mu      sync.Mutex
	servers map[string]*Server
	ic      Interceptor

	bytesSent uint64
	calls     uint64
}

// NewNetwork returns an in-process network on the given clock.
func NewNetwork(clock vclock.Clock, model Model) *Network {
	return &Network{clock: clock, model: model, servers: make(map[string]*Server)}
}

// Listen binds srv to addr, replacing any previous binding.
func (n *Network) Listen(addr string, srv *Server) {
	n.mu.Lock()
	n.servers[addr] = srv
	n.mu.Unlock()
}

// Unlisten removes the binding at addr.
func (n *Network) Unlisten(addr string) {
	n.mu.Lock()
	delete(n.servers, addr)
	n.mu.Unlock()
}

// Dial returns a client for the service at addr. Dialing succeeds even if
// the address is not yet bound; calls fail with ErrNoSuchService until it
// is (mirroring UDP-style late binding, and keeping construction order
// flexible).
func (n *Network) Dial(addr string) Client {
	return &inprocClient{net: n, addr: addr}
}

// DialAs is Dial with the caller's own endpoint name attached, so an
// installed Interceptor can apply per-endpoint rules (one-way partitions,
// caller crashes) to the calls made on the returned client.
func (n *Network) DialAs(from, addr string) Client {
	return &inprocClient{net: n, addr: addr, from: from}
}

// Intercept installs ic on the network (nil removes it). Every subsequent
// Call on every client routes through it.
func (n *Network) Intercept(ic Interceptor) {
	n.mu.Lock()
	n.ic = ic
	n.mu.Unlock()
}

// Stats returns cumulative traffic counters.
func (n *Network) Stats() (calls, bytesSent uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.calls, n.bytesSent
}

type inprocClient struct {
	net    *Network
	addr   string
	from   string
	mu     sync.Mutex
	closed bool
}

// Call implements Client. The request and response payloads are gob
// round-tripped, so the callee never aliases caller memory and the network
// model is charged the true encoded size.
func (c *inprocClient) Call(method string, arg interface{}) (interface{}, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()

	n := c.net
	n.mu.Lock()
	ic := n.ic
	n.mu.Unlock()
	if ic != nil {
		return ic(c.from, c.addr, method, func() (interface{}, error) {
			return c.deliver(method, arg)
		})
	}
	return c.deliver(method, arg)
}

// deliver performs the real call: charge the request across the modeled
// network, dispatch, charge the response back.
func (c *inprocClient) deliver(method string, arg interface{}) (interface{}, error) {
	n := c.net
	n.mu.Lock()
	srv := n.servers[c.addr]
	n.mu.Unlock()
	if srv == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchService, c.addr)
	}

	reqBytes, err := encodePayload(arg)
	if err != nil {
		return nil, err
	}
	n.account(len(reqBytes), true)
	n.clock.Sleep(n.model.Cost(len(reqBytes)))
	decoded, err := decodePayload(reqBytes)
	if err != nil {
		return nil, err
	}

	res, err := srv.Dispatch(method, decoded)
	if err != nil {
		// Errors cross the simulated wire as strings, as they would on TCP.
		n.clock.Sleep(n.model.Cost(64))
		return nil, &RemoteError{Method: method, Msg: err.Error()}
	}

	resBytes, err := encodePayload(res)
	if err != nil {
		return nil, err
	}
	n.account(len(resBytes), false)
	n.clock.Sleep(n.model.Cost(len(resBytes)))
	return decodePayload(resBytes)
}

// Close implements Client.
func (c *inprocClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

func (n *Network) account(b int, isCall bool) {
	n.mu.Lock()
	if isCall {
		n.calls++
	}
	n.bytesSent += uint64(b)
	n.mu.Unlock()
}
