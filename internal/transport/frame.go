package transport

import "time"

// Op priority classes carried on the RPC frame. Under brownout the server
// sheds the lowest class first, so diagnostics degrade before reads and
// reads before the mutations that carry the actual work.
const (
	// PriLow marks diagnostic traffic: counts, type censuses, bulk scans.
	PriLow = 0
	// PriNormal marks read-path traffic.
	PriNormal = 1
	// PriHigh marks mutations and transaction/lease control — the ops the
	// job cannot make progress without. Never shed by brownout (only the
	// hard admission cap rejects them).
	PriHigh = 2
)

// Framed is the optional RPC frame an overload-aware client wraps around
// its argument: the absolute deadline after which the client abandons the
// call (zero = none) and the op's priority class. Servers unwrap it at
// admission — an op whose deadline has already passed is rejected before
// execution, and a queued op whose service slot would start past the
// deadline is dropped instead of executed into the void. Both transport
// bindings carry the frame transparently; servers without an admission
// layer never see one because space.NewService always installs the
// unwrapping middleware.
type Framed struct {
	Deadline time.Time
	Pri      int
	Arg      interface{}
}

func init() {
	RegisterType(Framed{})
}

// Frame wraps arg for the wire. A zero deadline with PriNormal yields the
// arg unchanged — no frame overhead for clients that carry nothing.
func Frame(arg interface{}, deadline time.Time, pri int) interface{} {
	if deadline.IsZero() && pri == PriNormal {
		return arg
	}
	return Framed{Deadline: deadline, Pri: pri, Arg: arg}
}

// Unframe splits a possibly-framed argument into the inner argument, the
// propagated deadline (zero if none) and the priority class (PriNormal if
// unframed).
func Unframe(arg interface{}) (interface{}, time.Time, int) {
	if f, ok := arg.(Framed); ok {
		return f.Arg, f.Deadline, f.Pri
	}
	return arg, time.Time{}, PriNormal
}
