package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// wireRequest and wireResponse are the on-wire frames of the TCP binding.
// Multiple requests may be outstanding on one connection; responses are
// matched by ID.
type wireRequest struct {
	ID     uint64
	Method string
	Arg    []byte // encodePayload bytes
}

type wireResponse struct {
	ID     uint64
	Result []byte // encodePayload bytes, nil on error
	Err    string
}

// TCPListener serves a Server over TCP.
type TCPListener struct {
	ln    net.Listener
	srv   *Server
	mu    sync.Mutex
	done  bool
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// ListenTCP starts serving srv on addr (e.g. "127.0.0.1:0") and returns
// the listener. Use Addr to discover the bound address.
func ListenTCP(addr string, srv *Server) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	l := &TCPListener{ln: ln, srv: srv, conns: make(map[net.Conn]struct{})}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound network address.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting, closes live connections, and waits for handlers
// to drain.
func (l *TCPListener) Close() error {
	l.mu.Lock()
	l.done = true
	for c := range l.conns {
		_ = c.Close()
	}
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

func (l *TCPListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.done {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.serveConn(conn)
			l.mu.Lock()
			delete(l.conns, conn)
			l.mu.Unlock()
		}()
	}
}

func (l *TCPListener) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex // guards enc: handler goroutines share the writer
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		wg.Add(1)
		go func(req wireRequest) {
			defer wg.Done()
			resp := wireResponse{ID: req.ID}
			arg, err := decodePayload(req.Arg)
			if err == nil {
				var res interface{}
				res, err = l.srv.Dispatch(req.Method, arg)
				if err == nil {
					resp.Result, err = encodePayload(res)
				}
			}
			if err != nil {
				resp.Err = err.Error()
				resp.Result = nil
			}
			wmu.Lock()
			encErr := enc.Encode(&resp)
			wmu.Unlock()
			if encErr != nil {
				conn.Close()
			}
		}(req)
	}
}

type tcpClient struct {
	conn net.Conn
	enc  *gob.Encoder

	mu      sync.Mutex // guards enc, nextID, pending, closed
	nextID  uint64
	pending map[uint64]chan wireResponse
	closed  bool
	readErr error
}

// DefaultDialTimeout bounds DialTCP's connection attempt. Before this
// existed a dead or unroutable listener hung the dialer for the kernel
// connect timeout (minutes on Linux).
const DefaultDialTimeout = 5 * time.Second

// DialTCP connects to a TCPListener at addr, bounded by DefaultDialTimeout.
// Calls on the returned client may be issued concurrently; blocked calls
// (e.g. a blocking Take at a remote space) do not prevent other calls from
// completing.
func DialTCP(addr string) (Client, error) {
	return DialTCPTimeout(addr, DefaultDialTimeout)
}

// DialTCPTimeout is DialTCP with an explicit connect timeout (<= 0 means
// no timeout beyond the kernel's).
func DialTCPTimeout(addr string, timeout time.Duration) (Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPClient(conn), nil
}

// newTCPClient wraps an established connection as a Client.
func newTCPClient(conn net.Conn) Client {
	c := &tcpClient{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		nextID:  1,
		pending: make(map[uint64]chan wireResponse),
	}
	go c.readLoop()
	return c
}

func (c *tcpClient) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var resp wireResponse
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			c.readErr = err
			if !c.closed {
				c.closed = true
			}
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// Call implements Client.
func (c *tcpClient) Call(method string, arg interface{}) (interface{}, error) {
	argBytes, err := encodePayload(arg)
	if err != nil {
		return nil, err
	}
	ch := make(chan wireResponse, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	err = c.enc.Encode(&wireRequest{ID: id, Method: method, Arg: argBytes})
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	resp, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrClosed, c.errLocked())
	}
	if resp.Err != "" {
		return nil, &RemoteError{Method: method, Msg: resp.Err}
	}
	return decodePayload(resp.Result)
}

func (c *tcpClient) errLocked() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil && !errors.Is(c.readErr, io.EOF) {
		return c.readErr
	}
	return io.EOF
}

// Close implements Client.
func (c *tcpClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
