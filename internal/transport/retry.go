package transport

import (
	"fmt"
	"time"

	"gospaces/internal/vclock"
)

// Backoff retries an operation with exponential backoff between attempts.
// The zero value is usable and means: 4 attempts, 50ms initial delay
// doubling up to 2s, slept on the real clock.
type Backoff struct {
	Attempts int           // total tries (not retries); <= 0 means 4
	Initial  time.Duration // delay before the second attempt; <= 0 means 50ms
	Max      time.Duration // delay cap; <= 0 means 2s
	Clock    vclock.Clock  // sleep source; nil means the real clock
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 4
	}
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Clock == nil {
		b.Clock = vclock.NewReal()
	}
	return b
}

// Do runs op up to b.Attempts times, sleeping between failures. It returns
// nil on the first success, or the last error.
func (b Backoff) Do(op func() error) error {
	b = b.withDefaults()
	delay := b.Initial
	var err error
	for i := 0; i < b.Attempts; i++ {
		if i > 0 {
			b.Clock.Sleep(delay)
			delay *= 2
			if delay > b.Max {
				delay = b.Max
			}
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("transport: giving up after %d attempts: %w", b.Attempts, err)
}

// DialTCPRetry dials addr with DialTCP under b's retry policy. It rides out
// the window where a freshly registered service has published its address
// but its listener is not yet accepting.
func DialTCPRetry(addr string, b Backoff) (Client, error) {
	var c Client
	err := b.Do(func() error {
		var err error
		c, err = DialTCP(addr)
		return err
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}
