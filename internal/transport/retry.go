package transport

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"gospaces/internal/vclock"
)

// Backoff retries an operation with exponential backoff between attempts.
// The zero value is usable and means: 4 attempts, 50ms initial delay
// doubling up to 2s, slept on the real clock, no jitter.
type Backoff struct {
	Attempts int           // total tries (not retries); <= 0 means 4
	Initial  time.Duration // delay before the second attempt; <= 0 means 50ms
	Max      time.Duration // delay cap; <= 0 means 2s
	Clock    vclock.Clock  // sleep source; nil means the real clock
	// Jitter enables full jitter: each sleep is drawn uniformly from
	// [0, d] where d is the exponential schedule's delay, so synchronized
	// clients fan out instead of thundering-herding a recovering shard.
	Jitter bool
	// Seed fixes the jitter stream (used when non-zero), keeping schedules
	// replayable under the virtual clock; zero seeds from the policy's
	// parameters, which is deterministic but shared across callers — pass
	// a caller-unique seed to decorrelate.
	Seed int64
}

// DefaultPolicy is the shared dial/retry policy for call sites with no
// special requirements: the zero-value schedule (4 attempts, 50ms
// doubling to 2s) plus full jitter. Named so call sites state intent
// instead of relying on zero-value behavior.
func DefaultPolicy() Backoff {
	return Backoff{Jitter: true}
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 4
	}
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Clock == nil {
		b.Clock = vclock.NewReal()
	}
	return b
}

// Do runs op up to b.Attempts times, sleeping between failures. It returns
// nil on the first success, or the last error.
func (b Backoff) Do(op func() error) error {
	return b.DoContext(context.Background(), op)
}

// DoContext is Do honoring ctx: cancellation interrupts a backoff sleep
// promptly (within one clock wakeup, not the remaining schedule) and is
// checked before every attempt. The returned error is ctx.Err() when the
// context ended the retry loop.
func (b Backoff) DoContext(ctx context.Context, op func() error) error {
	b = b.withDefaults()
	var jitter *rand.Rand
	if b.Jitter {
		seed := b.Seed
		if seed == 0 {
			seed = int64(b.Attempts)<<32 ^ int64(b.Initial) ^ int64(b.Max)
		}
		jitter = rand.New(rand.NewSource(seed))
	}
	delay := b.Initial
	var err error
	for i := 0; i < b.Attempts; i++ {
		if i > 0 {
			sleep := delay
			if jitter != nil && sleep > 0 {
				// Full jitter: uniform over [0, delay]. The exponential
				// schedule still governs the envelope.
				sleep = time.Duration(jitter.Int63n(int64(sleep) + 1))
			}
			if !sleepInterruptible(ctx, b.Clock, sleep) {
				return fmt.Errorf("transport: retry canceled after %d attempts: %w", i, ctx.Err())
			}
			delay *= 2
			if delay > b.Max {
				delay = b.Max
			}
		}
		if ctx.Err() != nil {
			return fmt.Errorf("transport: retry canceled after %d attempts: %w", i, ctx.Err())
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("transport: giving up after %d attempts: %w", b.Attempts, err)
}

// sleepInterruptible sleeps d on clock but returns early (false) if ctx is
// canceled first. The watcher goroutine is unregistered on a virtual clock
// on purpose: the Waiter's own timer keeps virtual time advancing, and the
// watcher only ever shortens the wait.
func sleepInterruptible(ctx context.Context, clock vclock.Clock, d time.Duration) bool {
	if ctx.Done() == nil {
		clock.Sleep(d)
		return true
	}
	if ctx.Err() != nil {
		return false
	}
	w := clock.NewWaiter()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			w.Wake()
		case <-stop:
		}
	}()
	w.Wait(d)
	return ctx.Err() == nil
}

// DialTCPRetry dials addr with DialTCP under b's retry policy. It rides out
// the window where a freshly registered service has published its address
// but its listener is not yet accepting.
func DialTCPRetry(addr string, b Backoff) (Client, error) {
	return DialTCPRetryContext(context.Background(), addr, b)
}

// DialTCPRetryContext is DialTCPRetry honoring ctx: cancellation aborts
// both an in-flight connection attempt and the backoff sleeps between
// attempts.
func DialTCPRetryContext(ctx context.Context, addr string, b Backoff) (Client, error) {
	var c Client
	err := b.DoContext(ctx, func() error {
		var err error
		c, err = DialTCPContext(ctx, addr, DefaultDialTimeout)
		return err
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// DialTCPContext is DialTCPTimeout honoring ctx during the connection
// attempt.
func DialTCPContext(ctx context.Context, addr string, timeout time.Duration) (Client, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPClient(conn), nil
}
