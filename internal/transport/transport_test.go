package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gospaces/internal/vclock"
)

type echoArg struct {
	Msg string
	N   int
}

func init() {
	RegisterType(echoArg{})
	RegisterType([]float64{})
}

func newEchoServer() *Server {
	srv := NewServer()
	srv.Handle("echo", func(arg interface{}) (interface{}, error) {
		return arg, nil
	})
	srv.Handle("double", func(arg interface{}) (interface{}, error) {
		e := arg.(echoArg)
		return echoArg{Msg: e.Msg + e.Msg, N: e.N * 2}, nil
	})
	srv.Handle("fail", func(arg interface{}) (interface{}, error) {
		return nil, errors.New("boom")
	})
	srv.Handle("slow", func(arg interface{}) (interface{}, error) {
		time.Sleep(50 * time.Millisecond)
		return arg, nil
	})
	return srv
}

func TestInprocRoundTrip(t *testing.T) {
	n := NewNetwork(vclock.NewReal(), Loopback())
	n.Listen("svc", newEchoServer())
	c := n.Dial("svc")
	defer c.Close()
	got, err := c.Call("double", echoArg{Msg: "ab", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e := got.(echoArg); e.Msg != "abab" || e.N != 6 {
		t.Fatalf("got %+v", e)
	}
}

func TestInprocNoAliasing(t *testing.T) {
	n := NewNetwork(vclock.NewReal(), Loopback())
	srv := NewServer()
	var captured []float64
	srv.Handle("keep", func(arg interface{}) (interface{}, error) {
		captured = arg.([]float64)
		return arg, nil
	})
	n.Listen("svc", srv)
	c := n.Dial("svc")
	orig := []float64{1, 2, 3}
	if _, err := c.Call("keep", orig); err != nil {
		t.Fatal(err)
	}
	orig[0] = 99
	if captured[0] == 99 {
		t.Fatal("server aliased caller memory; gob round-trip missing")
	}
}

func TestInprocErrors(t *testing.T) {
	n := NewNetwork(vclock.NewReal(), Loopback())
	n.Listen("svc", newEchoServer())
	c := n.Dial("svc")
	if _, err := c.Call("fail", echoArg{}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	var re *RemoteError
	_, err := c.Call("nope", echoArg{})
	if !errors.As(err, &re) {
		t.Fatalf("missing method err = %v", err)
	}
	c2 := n.Dial("unbound")
	if _, err := c2.Call("echo", echoArg{}); !errors.Is(err, ErrNoSuchService) {
		t.Fatalf("unbound err = %v", err)
	}
	_ = c.Close()
	if _, err := c.Call("echo", echoArg{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed err = %v", err)
	}
}

func TestInprocLatencyChargedOnVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	model := Model{Latency: 10 * time.Millisecond}
	n := NewNetwork(clk, model)
	n.Listen("svc", newEchoServer())
	var elapsed time.Duration
	clk.Run(func() {
		c := n.Dial("svc")
		start := clk.Now()
		if _, err := c.Call("echo", echoArg{Msg: "hi"}); err != nil {
			t.Error(err)
		}
		elapsed = clk.Since(start)
	})
	if elapsed != 20*time.Millisecond { // one hop each way
		t.Fatalf("RPC took %v of virtual time, want 20ms", elapsed)
	}
}

func TestInprocPerByteCost(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	n := NewNetwork(clk, Model{PerKB: time.Millisecond})
	srv := NewServer()
	srv.Handle("sink", func(arg interface{}) (interface{}, error) { return 0, nil })
	n.Listen("svc", srv)
	big := make([]float64, 8192) // ~64 KB payload once encoded
	for i := range big {
		big[i] = float64(i) + 0.12345 // non-zero: gob must ship full mantissas
	}
	var elapsed time.Duration
	clk.Run(func() {
		c := n.Dial("svc")
		start := clk.Now()
		if _, err := c.Call("sink", big); err != nil {
			t.Error(err)
		}
		elapsed = clk.Since(start)
	})
	if elapsed < 60*time.Millisecond {
		t.Fatalf("64KB transfer took %v, want >= ~64ms", elapsed)
	}
	_, bytes := n.Stats()
	if bytes < 64*1024 {
		t.Fatalf("accounted %d bytes, want >= 64KB", bytes)
	}
}

func TestModelCost(t *testing.T) {
	m := Model{Latency: time.Millisecond, PerKB: time.Millisecond}
	if got := m.Cost(0); got != time.Millisecond {
		t.Fatalf("Cost(0) = %v", got)
	}
	if got := m.Cost(2048); got != 3*time.Millisecond {
		t.Fatalf("Cost(2048) = %v", got)
	}
	if LAN2001().Latency <= 0 || Loopback().Cost(1<<20) != 0 {
		t.Fatal("canned models misconfigured")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0", newEchoServer())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("double", echoArg{Msg: "x", N: 21})
	if err != nil {
		t.Fatal(err)
	}
	if e := got.(echoArg); e.N != 42 {
		t.Fatalf("got %+v", e)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0", newEchoServer())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			method := "echo"
			if i%4 == 0 {
				method = "slow" // slow calls must not block fast ones
			}
			got, err := c.Call(method, echoArg{N: i})
			if err != nil {
				errs <- err
				return
			}
			if got.(echoArg).N != i {
				errs <- fmt.Errorf("call %d got %+v", i, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPRemoteError(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0", newEchoServer())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var re *RemoteError
	if _, err := c.Call("fail", echoArg{}); !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	srv.Handle("hang", func(arg interface{}) (interface{}, error) {
		<-block
		return nil, nil
	})
	l, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Call("hang", echoArg{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(block) // let the handler finish so Close can drain
	if err := l.Close(); err != nil {
		t.Logf("listener close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("client call never returned after server close")
	}
	_ = c.Close()
}

func TestTCPClientCloseUnblocksPendingCall(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	srv.Handle("hang", func(arg interface{}) (interface{}, error) {
		<-block
		return nil, nil
	})
	l, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); l.Close() }()
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Call("hang", echoArg{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call succeeded after client close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not unblocked by client Close")
	}
}

func TestTCPDialFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
