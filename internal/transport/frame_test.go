package transport

import (
	"testing"
	"time"

	"gospaces/internal/vclock"
)

// TestFrameRoundTrip: Frame/Unframe carry the deadline and priority, and
// the no-information case (zero deadline, PriNormal) adds no frame at all —
// an overload-oblivious server sees the bare argument.
func TestFrameRoundTrip(t *testing.T) {
	type payload struct{ N int }
	dl := time.Unix(100, 0)

	framed := Frame(payload{N: 7}, dl, PriHigh)
	inner, gotDl, gotPri := Unframe(framed)
	if inner.(payload).N != 7 || !gotDl.Equal(dl) || gotPri != PriHigh {
		t.Fatalf("round trip: got (%v, %v, %d)", inner, gotDl, gotPri)
	}

	bare := Frame(payload{N: 9}, time.Time{}, PriNormal)
	if _, ok := bare.(Framed); ok {
		t.Fatal("zero deadline + PriNormal must not allocate a frame")
	}
	inner, gotDl, gotPri = Unframe(bare)
	if inner.(payload).N != 9 || !gotDl.IsZero() || gotPri != PriNormal {
		t.Fatalf("bare unframe: got (%v, %v, %d)", inner, gotDl, gotPri)
	}
}

// TestServiceGateAdmitBy: a deadline the next service slot can meet admits
// and charges the full slot; one it cannot meet refuses WITHOUT reserving,
// so the abandoned op costs the server nothing. Zero deadlines admit
// unconditionally.
func TestServiceGateAdmitBy(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	const cost = 10 * time.Millisecond
	gate := NewServiceGate(clk, cost)
	clk.Run(func() {
		start := clk.Now()
		if !gate.AdmitBy(start.Add(cost)) {
			t.Fatal("idle gate refused a deadline exactly one slot away")
		}
		if got := clk.Since(start); got != cost {
			t.Fatalf("admitted op charged %v, want %v", got, cost)
		}

		// The gate is idle again; book a slot with a no-deadline op run in
		// the background so the next AdmitBy sees a busy server.
		g := vclock.NewGroup(clk)
		g.Go(func() { gate.Admit() })
		clk.Sleep(time.Millisecond)
		before := gate.Admitted()
		if gate.AdmitBy(clk.Now().Add(5 * time.Millisecond)) {
			t.Fatal("busy gate admitted an op whose slot ends past its deadline")
		}
		if gate.Admitted() != before {
			t.Fatal("refused op reserved a slot anyway")
		}
		if !gate.AdmitBy(time.Time{}) {
			t.Fatal("zero deadline must admit unconditionally")
		}
		g.Wait()
	})
	// Nil and zero-cost gates never refuse.
	var nilGate *ServiceGate
	if !nilGate.AdmitBy(time.Unix(1, 0)) || !NewServiceGate(clk, 0).AdmitBy(time.Unix(1, 0)) {
		t.Fatal("nil/zero-cost gate refused")
	}
}

// TestServiceGateBacklog: the backlog is the reserved work extending past
// now — zero when idle, the queued ops' total service time when saturated.
func TestServiceGateBacklog(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	const cost = 10 * time.Millisecond
	gate := NewServiceGate(clk, cost)
	if gate.Backlog() != 0 {
		t.Fatalf("idle backlog = %v, want 0", gate.Backlog())
	}
	clk.Run(func() {
		g := vclock.NewGroup(clk)
		for i := 0; i < 3; i++ {
			g.Go(func() { gate.Admit() })
		}
		clk.Sleep(time.Millisecond)
		if got := gate.Backlog(); got != 3*cost-time.Millisecond {
			t.Errorf("backlog = %v, want %v", got, 3*cost-time.Millisecond)
		}
		g.Wait()
		if got := gate.Backlog(); got != 0 {
			t.Errorf("drained backlog = %v, want 0", got)
		}
	})
}
