package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"gospaces/internal/vclock"
)

// deadAddr returns an address that refuses connections quickly: bind a
// listener, note its port, close it.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialTCPRetryContextCancelPrompt pins the contract that canceling the
// context aborts the retry loop within one backoff step — not after the
// whole remaining schedule. With 8 attempts at 300ms initial delay the full
// schedule is several seconds; a cancel at 100ms must return well under one
// doubled step.
func TestDialTCPRetryContextCancelPrompt(t *testing.T) {
	addr := deadAddr(t)
	b := Backoff{Attempts: 8, Initial: 300 * time.Millisecond, Max: 2 * time.Second}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := DialTCPRetryContext(ctx, addr, b)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	// One backoff step past the cancel point is the generous bound; the
	// un-canceled schedule would be 300+600+1200+... ms.
	if elapsed > 700*time.Millisecond {
		t.Fatalf("cancel took %v to take effect, want < 700ms", elapsed)
	}
}

// TestDialTCPRetryContextPreCanceled: an already-canceled context makes no
// connection attempt at all.
func TestDialTCPRetryContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DialTCPRetryContext(ctx, deadAddr(t), Backoff{Attempts: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDoContextHonorsCancelBetweenAttempts exercises the generic retry
// path (no TCP): the op keeps failing, the context cancels mid-backoff,
// and the loop reports how far it got.
func TestDoContextHonorsCancelBetweenAttempts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	b := Backoff{Attempts: 10, Initial: 200 * time.Millisecond, Max: time.Second}
	start := time.Now()
	err := b.DoContext(ctx, func() error {
		calls++
		if calls == 1 {
			go func() {
				time.Sleep(50 * time.Millisecond)
				cancel()
			}()
		}
		return errors.New("nope")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times, want 1 (cancel lands in the first backoff)", calls)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("cancel took %v, want well under the 200ms backoff", elapsed)
	}
}

// TestDoContextNoCancelStillRetries: the ctx path must not change the
// plain retry semantics when the context never fires.
func TestDoContextNoCancelStillRetries(t *testing.T) {
	calls := 0
	b := Backoff{Attempts: 3, Initial: time.Millisecond, Max: 2 * time.Millisecond,
		Clock: vclock.NewReal()}
	err := b.DoContext(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want nil, 3", err, calls)
	}
}
