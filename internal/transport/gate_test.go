package transport

import (
	"errors"
	"testing"
	"time"

	"gospaces/internal/vclock"
)

// TestServiceGateQueueing checks the FIFO busy-server model on the virtual
// clock: N simultaneous arrivals at a gate with cost c finish at c, 2c, …,
// Nc — the last caller's latency is the whole queue.
func TestServiceGateQueueing(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	const n = 5
	const cost = 10 * time.Millisecond
	gate := NewServiceGate(clk, cost)
	latencies := make([]time.Duration, n)
	clk.Run(func() {
		g := vclock.NewGroup(clk)
		for i := 0; i < n; i++ {
			i := i
			g.Go(func() {
				start := clk.Now()
				gate.Admit()
				latencies[i] = clk.Since(start)
			})
		}
		g.Wait()
	})
	var max time.Duration
	total := time.Duration(0)
	for _, l := range latencies {
		if l > max {
			max = l
		}
		total += l
	}
	if max != n*cost {
		t.Fatalf("slowest caller waited %v, want %v (full queue)", max, n*cost)
	}
	// Sum of 1c..Nc.
	if want := cost * n * (n + 1) / 2; total != want {
		t.Fatalf("total latency %v, want %v", total, want)
	}
	if got := gate.Admitted(); got != n {
		t.Fatalf("admitted = %d, want %d", got, n)
	}
}

// TestServiceGateIdleServer: arrivals spaced wider than the cost never
// queue — each pays exactly the service time.
func TestServiceGateIdleServer(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	const cost = 5 * time.Millisecond
	gate := NewServiceGate(clk, cost)
	clk.Run(func() {
		for i := 0; i < 3; i++ {
			clk.Sleep(20 * time.Millisecond)
			start := clk.Now()
			gate.Admit()
			if got := clk.Since(start); got != cost {
				t.Errorf("arrival %d waited %v, want %v", i, got, cost)
			}
		}
	})
}

func TestServiceGateDisabledAndNil(t *testing.T) {
	NewServiceGate(vclock.NewReal(), 0).Admit() // no-op, returns immediately
	var g *ServiceGate
	g.Admit() // nil gate is a no-op too
}

// TestServerWrapGate wires the gate through Server.Wrap on the in-proc
// binding: the virtual clock should advance by the service cost per call.
func TestServerWrapGate(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	const cost = 2 * time.Millisecond
	srv := newEchoServer()
	gate := NewServiceGate(clk, cost)
	srv.Wrap(gate.Middleware())
	n := NewNetwork(clk, Loopback())
	n.Listen("svc", srv)
	var elapsed time.Duration
	clk.Run(func() {
		c := n.Dial("svc")
		defer c.Close()
		start := clk.Now()
		for i := 0; i < 4; i++ {
			if _, err := c.Call("echo", echoArg{Msg: "x"}); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}
		elapsed = clk.Since(start)
	})
	if elapsed != 4*cost {
		t.Fatalf("4 gated calls took %v of virtual time, want %v", elapsed, 4*cost)
	}
}

func TestBackoffRetries(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	var tries int
	var err error
	clk.Run(func() {
		err = Backoff{Attempts: 5, Initial: time.Millisecond, Clock: clk}.Do(func() error {
			tries++
			if tries < 3 {
				return errors.New("not yet")
			}
			return nil
		})
	})
	if err != nil || tries != 3 {
		t.Fatalf("Do: err = %v, tries = %d; want nil, 3", err, tries)
	}
	// Exhausted attempts surface the last error.
	tries = 0
	clk.Run(func() {
		err = Backoff{Attempts: 2, Initial: time.Millisecond, Clock: clk}.Do(func() error {
			tries++
			return errors.New("always")
		})
	})
	if err == nil || tries != 2 {
		t.Fatalf("exhausted Do: err = %v, tries = %d; want error, 2", err, tries)
	}
}

func TestDialTCPTimeout(t *testing.T) {
	// A live listener connects well within the timeout.
	l, err := ListenTCP("127.0.0.1:0", newEchoServer())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := DialTCPTimeout(l.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial live listener: %v", err)
	}
	c.Close()
	// A dead port fails fast — no multi-minute kernel connect hang.
	start := time.Now()
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Skip("something is listening on 127.0.0.1:1")
	}
	if elapsed := time.Since(start); elapsed > 2*DefaultDialTimeout {
		t.Fatalf("dial to dead port took %v; timeout not applied", elapsed)
	}
}

func TestDialTCPRetrySucceedsAfterListenerAppears(t *testing.T) {
	srv := newEchoServer()
	l, err := ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	l.Close()
	// The listener is gone; dial in the background while we re-listen on
	// the same port.
	done := make(chan error, 1)
	go func() {
		c, err := DialTCPRetry(addr, Backoff{Attempts: 20, Initial: 10 * time.Millisecond})
		if err == nil {
			defer c.Close()
			_, err = c.Call("echo", echoArg{Msg: "hi"})
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	l2, err := ListenTCP(addr, srv)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer l2.Close()
	if err := <-done; err != nil {
		t.Fatalf("retry dial: %v", err)
	}
}
