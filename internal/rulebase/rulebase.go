// Package rulebase implements the inference engine of the paper's network
// management module: given a worker's current state and its measured CPU
// load, it decides which control signal — Start, Stop, Pause, Resume — to
// send under the threshold rule base of §4.4:
//
//	 0–25 %  the node is idle: it may run (Start / Resume / Restart)
//	25–50 %  transient load: temporarily back off (Pause)
//	50–100 % sustained load: stop and release the node (Stop)
//
// The engine is pure decision logic; signal transport and worker state
// tracking live in the netmgmt and worker packages.
package rulebase

import "fmt"

// Signal is a control signal sent to a worker.
type Signal int

// Signals, per Figure 4/5 of the paper. Restart is the Start issued to a
// worker that had previously been stopped (the figures label it
// separately because it repays the class-loading cost).
const (
	SignalNone Signal = iota
	SignalStart
	SignalStop
	SignalPause
	SignalResume
	SignalRestart
)

// String names the signal.
func (s Signal) String() string {
	switch s {
	case SignalNone:
		return "None"
	case SignalStart:
		return "Start"
	case SignalStop:
		return "Stop"
	case SignalPause:
		return "Pause"
	case SignalResume:
		return "Resume"
	case SignalRestart:
		return "Restart"
	}
	return fmt.Sprintf("Signal(%d)", int(s))
}

// State is a worker's execution state (Figure 5).
type State int

// Worker states.
const (
	StateStopped State = iota
	StateRunning
	StatePaused
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateStopped:
		return "Stopped"
	case StateRunning:
		return "Running"
	case StatePaused:
		return "Paused"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Thresholds configures the rule base's load cut-offs (percent CPU).
type Thresholds struct {
	// RunBelow: load strictly below this keeps/starts the worker running.
	RunBelow float64
	// StopAt: load at or above this stops the worker; loads in
	// [RunBelow, StopAt) pause it.
	StopAt float64
	// Hysteresis widens the band that must be crossed before a Resume or
	// Restart is issued, preventing signal flapping at the boundary.
	Hysteresis float64
}

// DefaultThresholds returns the paper's 25/50 rule base.
func DefaultThresholds() Thresholds {
	return Thresholds{RunBelow: 25, StopAt: 50, Hysteresis: 0}
}

// Engine is the inference engine. It is stateless apart from its
// configuration; per-worker state is supplied by the caller.
type Engine struct {
	T Thresholds
}

// NewEngine returns an engine with thresholds t.
func NewEngine(t Thresholds) *Engine {
	if t.RunBelow <= 0 || t.StopAt <= t.RunBelow {
		t = DefaultThresholds()
	}
	return &Engine{T: t}
}

// Band classifies a load into the rule base's bands: 0 = run (idle),
// 1 = pause (transient load), 2 = stop (sustained load). Node-side trap
// watchers use it to detect band crossings.
func (e *Engine) Band(load float64) int {
	switch {
	case load >= e.T.StopAt:
		return 2
	case load >= e.T.RunBelow:
		return 1
	default:
		return 0
	}
}

// Decide returns the signal for a worker in state with measured background
// load (percent), given whether it has ever been started before
// (ranBefore selects Restart vs Start when leaving Stopped).
func (e *Engine) Decide(state State, load float64, ranBefore bool) Signal {
	t := e.T
	switch state {
	case StateRunning:
		switch {
		case load >= t.StopAt:
			return SignalStop
		case load >= t.RunBelow:
			return SignalPause
		default:
			return SignalNone
		}
	case StatePaused:
		switch {
		case load >= t.StopAt:
			return SignalStop
		case load < t.RunBelow-t.Hysteresis:
			return SignalResume
		default:
			return SignalNone
		}
	case StateStopped:
		if load < t.RunBelow-t.Hysteresis {
			if ranBefore {
				return SignalRestart
			}
			return SignalStart
		}
		return SignalNone
	}
	return SignalNone
}

// Apply returns the state a worker enters on receiving sig from state —
// the transition function of Figure 5. Invalid transitions return the
// current state unchanged and ok=false.
func Apply(state State, sig Signal) (State, bool) {
	switch sig {
	case SignalStart, SignalRestart:
		if state == StateStopped {
			return StateRunning, true
		}
	case SignalResume:
		if state == StatePaused {
			return StateRunning, true
		}
	case SignalPause:
		if state == StateRunning {
			return StatePaused, true
		}
	case SignalStop:
		if state == StateRunning || state == StatePaused {
			return StateStopped, true
		}
	case SignalNone:
		return state, true
	}
	return state, false
}
