package rulebase

import (
	"testing"
	"testing/quick"
)

func TestDecideTable(t *testing.T) {
	e := NewEngine(DefaultThresholds())
	cases := []struct {
		state     State
		load      float64
		ranBefore bool
		want      Signal
	}{
		{StateStopped, 0, false, SignalStart},
		{StateStopped, 10, false, SignalStart},
		{StateStopped, 10, true, SignalRestart},
		{StateStopped, 24.9, false, SignalStart},
		{StateStopped, 25, false, SignalNone},
		{StateStopped, 40, false, SignalNone},
		{StateStopped, 90, true, SignalNone},

		{StateRunning, 0, true, SignalNone},
		{StateRunning, 24.9, true, SignalNone},
		{StateRunning, 25, true, SignalPause},
		{StateRunning, 46, true, SignalPause},
		{StateRunning, 50, true, SignalStop},
		{StateRunning, 100, true, SignalStop},

		{StatePaused, 10, true, SignalResume},
		{StatePaused, 30, true, SignalNone},
		{StatePaused, 49.9, true, SignalNone},
		{StatePaused, 50, true, SignalStop},
		{StatePaused, 100, true, SignalStop},
	}
	for _, c := range cases {
		if got := e.Decide(c.state, c.load, c.ranBefore); got != c.want {
			t.Errorf("Decide(%v, %v, %v) = %v, want %v", c.state, c.load, c.ranBefore, got, c.want)
		}
	}
}

func TestHysteresisDelaysResume(t *testing.T) {
	e := NewEngine(Thresholds{RunBelow: 25, StopAt: 50, Hysteresis: 10})
	if got := e.Decide(StatePaused, 20, true); got != SignalNone {
		t.Fatalf("load 20 with hysteresis 10: %v, want None", got)
	}
	if got := e.Decide(StatePaused, 14, true); got != SignalResume {
		t.Fatalf("load 14 with hysteresis 10: %v, want Resume", got)
	}
	if got := e.Decide(StateStopped, 20, false); got != SignalNone {
		t.Fatalf("stopped at load 20 with hysteresis: %v, want None", got)
	}
}

func TestBadThresholdsFallBack(t *testing.T) {
	e := NewEngine(Thresholds{RunBelow: 60, StopAt: 30})
	if e.T != DefaultThresholds() {
		t.Fatalf("thresholds = %+v", e.T)
	}
}

// TestApplyEveryEdge verifies the complete Figure 5 state machine.
func TestApplyEveryEdge(t *testing.T) {
	type edge struct {
		from State
		sig  Signal
		to   State
		ok   bool
	}
	edges := []edge{
		{StateStopped, SignalStart, StateRunning, true},
		{StateStopped, SignalRestart, StateRunning, true},
		{StateStopped, SignalResume, StateStopped, false},
		{StateStopped, SignalPause, StateStopped, false},
		{StateStopped, SignalStop, StateStopped, false},
		{StateRunning, SignalPause, StatePaused, true},
		{StateRunning, SignalStop, StateStopped, true},
		{StateRunning, SignalStart, StateRunning, false},
		{StateRunning, SignalResume, StateRunning, false},
		{StatePaused, SignalResume, StateRunning, true},
		{StatePaused, SignalStop, StateStopped, true},
		{StatePaused, SignalPause, StatePaused, false},
		{StatePaused, SignalStart, StatePaused, false},
		{StateRunning, SignalNone, StateRunning, true},
		{StatePaused, SignalNone, StatePaused, true},
		{StateStopped, SignalNone, StateStopped, true},
	}
	for _, e := range edges {
		got, ok := Apply(e.from, e.sig)
		if got != e.to || ok != e.ok {
			t.Errorf("Apply(%v, %v) = (%v, %v), want (%v, %v)", e.from, e.sig, got, ok, e.to, e.ok)
		}
	}
}

// Property: whatever the engine decides is always applicable to the state
// it decided for — the engine never emits an invalid transition.
func TestPropDecisionsAlwaysApplicable(t *testing.T) {
	e := NewEngine(DefaultThresholds())
	f := func(stateRaw uint8, loadRaw uint16, ranBefore bool) bool {
		state := State(stateRaw % 3)
		load := float64(loadRaw%1001) / 10 // 0.0–100.0
		sig := e.Decide(state, load, ranBefore)
		_, ok := Apply(state, sig)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: decisions are monotone in load — a higher load never yields a
// "more running" signal than a lower load from the same state.
func TestPropDecisionMonotone(t *testing.T) {
	e := NewEngine(DefaultThresholds())
	rank := func(s Signal) int {
		switch s {
		case SignalStart, SignalRestart, SignalResume:
			return 2 // towards running
		case SignalNone:
			return 1
		case SignalPause:
			return 0
		case SignalStop:
			return -1
		}
		return 1
	}
	f := func(stateRaw uint8, a, b uint8) bool {
		state := State(stateRaw % 3)
		lo, hi := float64(a%101), float64(b%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		return rank(e.Decide(state, lo, true)) >= rank(e.Decide(state, hi, true))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if SignalPause.String() != "Pause" || StatePaused.String() != "Paused" {
		t.Fatal("stringers broken")
	}
	if Signal(99).String() == "" || State(99).String() == "" {
		t.Fatal("unknown values must still render")
	}
}
