package replica_test

import (
	"encoding/gob"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/replica"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

var testEpoch = time.Date(2001, time.March, 1, 0, 0, 0, 0, time.UTC)

// kv is the test entry type replicated across the pair.
type kv struct {
	K string
	N int
}

func init() { gob.Register(kv{}) }

// pair assembles one primary/backup replication pair on an in-process
// network — the same wiring as core.setupReplica, without the framework.
type pair struct {
	clk     *vclock.Virtual
	net     *transport.Network
	ctrs    *metrics.Counters
	local   *space.Local // primary's space
	wrapped space.Space  // primary's gated handle
	p       *replica.Primary
	blocal  *space.Local // standby's space
	bsw     *replica.SwitchSink
	b       *replica.Backup
}

type pairOptions struct {
	ack     replica.AckMode
	maxQ    int
	ft      time.Duration
	lease   func() bool
	fenced  func(uint64)
	promote func(uint64)
}

func newPair(t *testing.T, clk *vclock.Virtual, net *transport.Network, opts pairOptions) *pair {
	t.Helper()
	ctrs := metrics.NewCounters()

	psw := replica.NewSwitchSink()
	local := space.NewLocal(clk)
	if err := local.TS.AttachJournal(tuplespace.NewJournalSink(psw)); err != nil {
		t.Fatalf("primary journal: %v", err)
	}

	bsw := replica.NewSwitchSink()
	blocal := space.NewLocal(clk)
	if err := blocal.TS.AttachJournal(tuplespace.NewJournalSink(bsw)); err != nil {
		t.Fatalf("backup journal: %v", err)
	}
	bsrv := transport.NewServer()
	net.Listen("backup", bsrv)

	p := replica.NewPrimary(local, replica.PrimaryOptions{
		Clock:    clk,
		Ack:      opts.ack,
		MaxQueue: opts.maxQ,
		OnFenced: opts.fenced,
		Counters: ctrs,
	})
	psw.Set(p.Sink())
	p.SetMirror(net.DialAs("primary", "backup"))

	b := replica.NewBackup(blocal, replica.BackupOptions{
		Clock:           clk,
		FailoverTimeout: opts.ft,
		LeaseExpired:    opts.lease,
		OnPromote:       opts.promote,
		Counters:        ctrs,
	})
	b.Bind(bsrv)

	return &pair{
		clk: clk, net: net, ctrs: ctrs,
		local: local, wrapped: p.Wrap(local), p: p,
		blocal: blocal, bsw: bsw, b: b,
	}
}

// entries collects every kv currently in sp, as a multiset keyed by value.
func entries(t *testing.T, sp space.Space) map[kv]int {
	t.Helper()
	all, err := sp.ReadAll(kv{}, nil, 1<<20)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	out := make(map[kv]int)
	for _, e := range all {
		out[e.(kv)]++
	}
	return out
}

func sameEntries(t *testing.T, what string, a, b map[kv]int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d distinct entries on primary, %d on backup\nprimary: %v\nbackup:  %v", what, len(a), len(b), a, b)
	}
	for e, n := range a {
		if b[e] != n {
			t.Fatalf("%s: entry %v ×%d on primary, ×%d on backup", what, e, n, b[e])
		}
	}
}

// TestSyncMirrorsMutations: in sync mode every acknowledged mutation is
// already applied on the standby — writes and takes through the wrapped
// handle leave the two spaces identical with zero lag.
func TestSyncMirrorsMutations(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	clk.Run(func() {
		pr := newPair(t, clk, transport.NewNetwork(clk, transport.Model{}), pairOptions{ack: replica.AckSync})
		for i := 0; i < 20; i++ {
			if _, err := pr.wrapped.Write(kv{K: "w", N: i}, nil, time.Hour); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		for i := 0; i < 5; i++ {
			if _, err := pr.wrapped.TakeIfExists(kv{K: "w", N: i}, nil); err != nil {
				t.Fatalf("take %d: %v", i, err)
			}
		}
		if lag := pr.p.Lag(); lag != 0 {
			t.Fatalf("sync primary reports lag %d", lag)
		}
		sameEntries(t, "after sync mutations", entries(t, pr.local), entries(t, pr.blocal))
		if got := len(entries(t, pr.blocal)); got != 15 {
			t.Fatalf("backup holds %d entries, want 15", got)
		}
	})
}

// TestAsyncDrainsThroughPump: async writes ack before shipping; the pump
// drains the backlog within a heartbeat interval.
func TestAsyncDrainsThroughPump(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	clk.Run(func() {
		pr := newPair(t, clk, transport.NewNetwork(clk, transport.Model{}), pairOptions{ack: replica.AckAsync})
		g := vclock.NewGroup(clk)
		g.Go(pr.p.Run)
		converge := func(want int, what string) {
			for i := 0; ; i++ {
				if n, _ := pr.blocal.Count(kv{}); n == want && pr.p.Lag() == 0 {
					return
				}
				if i >= 20 {
					n, _ := pr.blocal.Count(kv{})
					t.Fatalf("%s: standby stuck at %d/%d entries (lag %d)", what, n, want, pr.p.Lag())
				}
				clk.Sleep(time.Second)
			}
		}
		// Writes before the first ship are covered by the attach-time
		// snapshot push, not the queue.
		for i := 0; i < 10; i++ {
			if _, err := pr.wrapped.Write(kv{K: "a", N: i}, nil, time.Hour); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		converge(10, "initial sync")
		// Past the resync the incremental queue carries the stream: writes
		// ack immediately and the pump drains the backlog.
		for i := 10; i < 15; i++ {
			if _, err := pr.wrapped.Write(kv{K: "a", N: i}, nil, time.Hour); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		converge(15, "async drain")
		sameEntries(t, "after async drain", entries(t, pr.local), entries(t, pr.blocal))
		if pr.ctrs.Get(metrics.CounterReplShipped) == 0 {
			t.Fatal("incremental stream never shipped a record")
		}
		pr.p.Stop()
		g.Wait()
	})
}

// TestEpochFencingDeposesPrimary: once the standby promotes, the old
// primary's next replication RPC comes back ErrFenced — sync mutations
// through it fail permanently and OnFenced fires exactly once.
func TestEpochFencingDeposesPrimary(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	clk.Run(func() {
		var fencedEpochs []uint64
		pr := newPair(t, clk, transport.NewNetwork(clk, transport.Model{}), pairOptions{
			ack:    replica.AckSync,
			fenced: func(e uint64) { fencedEpochs = append(fencedEpochs, e) },
		})
		if _, err := pr.wrapped.Write(kv{K: "pre", N: 1}, nil, time.Hour); err != nil {
			t.Fatalf("pre-promotion write: %v", err)
		}
		epoch, flipped := pr.b.Promote()
		if !flipped || epoch != 2 {
			t.Fatalf("Promote = (%d, %v), want (2, true)", epoch, flipped)
		}
		for i := 0; i < 2; i++ {
			_, err := pr.wrapped.Write(kv{K: "post", N: i}, nil, time.Hour)
			if !replica.IsFenced(err) {
				t.Fatalf("deposed write %d: err = %v, want fenced", i, err)
			}
		}
		if !pr.p.Fenced() {
			t.Fatal("primary not marked fenced")
		}
		if len(fencedEpochs) != 1 || fencedEpochs[0] != 1 {
			t.Fatalf("OnFenced calls = %v, want exactly one at the deposed epoch 1", fencedEpochs)
		}
		if n := pr.ctrs.Get(metrics.CounterReplFenced); n == 0 {
			t.Fatal("fenced counter never incremented")
		}
		// The promoted standby must not have seen the fenced writes.
		if got := entries(t, pr.blocal); len(got) != 1 {
			t.Fatalf("backup entries after fencing = %v, want only the pre-promotion write", got)
		}
	})
}

// TestFencedFlushFails: a primary that has learned it was deposed must
// fail Flush with ErrFenced instead of returning nil — Flush is the
// sync-mode confirm path, and a mutation that raced the fencing signal
// (gate passed, then the pump's heartbeat saw the higher epoch before
// confirm ran) must never be acknowledged: its record was dropped, not
// replicated, so the ack would hand the client a write that exists only
// on the deposed primary.
func TestFencedFlushFails(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	clk.Run(func() {
		pr := newPair(t, clk, transport.NewNetwork(clk, transport.Model{}), pairOptions{ack: replica.AckSync})
		if _, err := pr.wrapped.Write(kv{K: "pre", N: 1}, nil, time.Hour); err != nil {
			t.Fatalf("pre-promotion write: %v", err)
		}
		if _, flipped := pr.b.Promote(); !flipped {
			t.Fatal("backup did not promote")
		}
		// The next ship discovers the fencing.
		if _, err := pr.wrapped.Write(kv{K: "post", N: 1}, nil, time.Hour); !replica.IsFenced(err) {
			t.Fatalf("deposed write: err = %v, want fenced", err)
		}
		// Every subsequent confirm keeps failing: an empty-queue Flush on
		// a fenced primary is ErrFenced, never a silent nil.
		if err := pr.p.Flush(); !replica.IsFenced(err) {
			t.Fatalf("fenced Flush = %v, want ErrFenced", err)
		}
	})
}

// TestOverflowForcesResync: a primary whose unshipped queue overflows
// discards it and recovers by pushing a full snapshot, after which the
// standby is converged again.
func TestOverflowForcesResync(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	clk.Run(func() {
		pr := newPair(t, clk, transport.NewNetwork(clk, transport.Model{}), pairOptions{
			ack:  replica.AckAsync,
			maxQ: 4,
		})
		// No pump running: the queue can only grow, and 12 writes blow
		// through MaxQueue=4.
		for i := 0; i < 12; i++ {
			if _, err := pr.wrapped.Write(kv{K: "o", N: i}, nil, time.Hour); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		if err := pr.p.Flush(); err != nil {
			t.Fatalf("flush after overflow: %v", err)
		}
		if n := pr.ctrs.Get(metrics.CounterReplResyncs); n == 0 {
			t.Fatal("overflow did not trigger a snapshot resync")
		}
		sameEntries(t, "after resync", entries(t, pr.local), entries(t, pr.blocal))
		if lag := pr.p.Lag(); lag != 0 {
			t.Fatalf("lag %d after resync", lag)
		}
	})
}

// TestHeartbeatSilencePromotes: kill the primary mid-stream and the
// monitor promotes the standby within the failover timeout.
func TestHeartbeatSilencePromotes(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	clk.Run(func() {
		promoted := make(chan uint64, 1)
		pr := newPair(t, clk, transport.NewNetwork(clk, transport.Model{}), pairOptions{
			ack:     replica.AckSync,
			ft:      2 * time.Second,
			promote: func(e uint64) { promoted <- e },
		})
		g := vclock.NewGroup(clk)
		g.Go(pr.p.Run)
		g.Go(pr.b.Run)

		clk.Sleep(1200 * time.Millisecond)
		if _, err := pr.wrapped.Write(kv{K: "h", N: 1}, nil, time.Hour); err != nil {
			t.Fatalf("write: %v", err)
		}
		if pr.b.Promoted() {
			t.Fatal("standby promoted while heartbeats were flowing")
		}
		pr.p.Kill()
		clk.Sleep(4 * time.Second)
		if !pr.b.Promoted() {
			t.Fatal("standby never promoted after heartbeat silence")
		}
		select {
		case e := <-promoted:
			if e != 2 {
				t.Fatalf("promoted epoch = %d, want 2", e)
			}
		default:
			t.Fatal("OnPromote never fired")
		}
		pr.b.Stop()
		g.Wait()
		// The standby kept the state the primary had shipped.
		if got := entries(t, pr.blocal); got[kv{K: "h", N: 1}] != 1 {
			t.Fatalf("promoted standby lost replicated state: %v", got)
		}
	})
}

// TestLeaseExpiryPromotesEarly: a lapsed lookup-registration lease
// promotes the standby well before the heartbeat-silence window, even
// while heartbeats keep arriving.
func TestLeaseExpiryPromotesEarly(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	clk.Run(func() {
		var leaseGone atomic.Bool
		pr := newPair(t, clk, transport.NewNetwork(clk, transport.Model{}), pairOptions{
			ack:   replica.AckSync,
			ft:    20 * time.Second, // CheckEvery = 5s; silence alone would take 20s
			lease: leaseGone.Load,
		})
		g := vclock.NewGroup(clk)
		g.Go(pr.p.Run) // heartbeats keep flowing throughout
		g.Go(pr.b.Run)

		clk.Sleep(3 * time.Second)
		if pr.b.Promoted() {
			t.Fatal("standby promoted with a live lease")
		}
		leaseGone.Store(true)
		clk.Sleep(6 * time.Second) // just over one CheckEvery
		if !pr.b.Promoted() {
			t.Fatal("standby ignored the lapsed lease")
		}
		if now := clk.Now().Sub(testEpoch); now >= 20*time.Second {
			t.Fatalf("promotion took %v — no earlier than plain silence", now)
		}
		pr.p.Stop()
		pr.b.Stop()
		g.Wait()
	})
}

// TestRejoinCatchesUp: after a promotion, pointing the new primary's
// mirror at a fresh standby initializes it by snapshot push and the
// incremental stream resumes behind it — the failed node's rejoin path.
func TestRejoinCatchesUp(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	clk.Run(func() {
		net := transport.NewNetwork(clk, transport.Model{})
		pr := newPair(t, clk, net, pairOptions{ack: replica.AckSync})
		for i := 0; i < 8; i++ {
			if _, err := pr.wrapped.Write(kv{K: "r", N: i}, nil, time.Hour); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		epoch, _ := pr.b.Promote()

		// The promoted node becomes a primary in its own right…
		p2 := replica.NewPrimary(pr.blocal, replica.PrimaryOptions{
			Clock: clk, Epoch: epoch, Ack: replica.AckSync, Counters: pr.ctrs,
		})
		pr.bsw.Set(p2.Sink())
		w2 := p2.Wrap(pr.blocal)

		// …and the returning node rejoins empty, as a standby at the
		// promoted epoch.
		rlocal := space.NewLocal(clk)
		rsw := replica.NewSwitchSink()
		if err := rlocal.TS.AttachJournal(tuplespace.NewJournalSink(rsw)); err != nil {
			t.Fatalf("rejoin journal: %v", err)
		}
		rsrv := transport.NewServer()
		net.Listen("rejoined", rsrv)
		b2 := replica.NewBackup(rlocal, replica.BackupOptions{
			Clock: clk, Epoch: epoch, Counters: pr.ctrs,
		})
		b2.Bind(rsrv)
		p2.SetMirror(net.DialAs("backup", "rejoined"))
		if err := p2.Flush(); err != nil {
			t.Fatalf("catch-up flush: %v", err)
		}
		sameEntries(t, "after catch-up", entries(t, pr.blocal), entries(t, rlocal))

		// The incremental stream continues past the snapshot.
		if _, err := w2.Write(kv{K: "r", N: 100}, nil, time.Hour); err != nil {
			t.Fatalf("post-rejoin write: %v", err)
		}
		sameEntries(t, "after post-rejoin write", entries(t, pr.blocal), entries(t, rlocal))
		if n := pr.ctrs.Get(metrics.CounterReplResyncs); n == 0 {
			t.Fatal("rejoin did not count a resync")
		}
	})
}

// TestDegradedSyncFailsClosed: with the standby unreachable, sync-mode
// mutations fail with ErrUnavailable rather than silently diverging, and
// recover once the link heals.
func TestDegradedSyncFailsClosed(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	clk.Run(func() {
		net := transport.NewNetwork(clk, transport.Model{})
		pr := newPair(t, clk, net, pairOptions{ack: replica.AckSync})
		if _, err := pr.wrapped.Write(kv{K: "d", N: 0}, nil, time.Hour); err != nil {
			t.Fatalf("write: %v", err)
		}
		net.Unlisten("backup")
		_, err := pr.wrapped.Write(kv{K: "d", N: 1}, nil, time.Hour)
		if err == nil || !errors.Is(err, replica.ErrUnavailable) {
			t.Fatalf("write with dead standby: err = %v, want ErrUnavailable", err)
		}
		if !pr.p.Degraded() {
			t.Fatal("primary not marked degraded")
		}
		// Heal: re-listen, and a successful ship (here an explicit flush;
		// in production the pump's next probe) clears the degradation.
		bsrv := transport.NewServer()
		pr.b.Bind(bsrv)
		net.Listen("backup", bsrv)
		if err := pr.p.Flush(); err != nil {
			t.Fatalf("flush after heal: %v", err)
		}
		if _, err := pr.wrapped.Write(kv{K: "d", N: 2}, nil, time.Hour); err != nil {
			t.Fatalf("write after heal: %v", err)
		}
		if pr.p.Degraded() {
			t.Fatal("primary still degraded after heal")
		}
		sameEntries(t, "after heal", entries(t, pr.local), entries(t, pr.blocal))
	})
}
