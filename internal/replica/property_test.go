package replica_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gospaces/internal/faults"
	"gospaces/internal/metrics"
	"gospaces/internal/replica"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// TestReplicaConvergenceProperty is the replication protocol's core
// invariant, checked under seeded interleavings: whatever mix of appends,
// takes, replication-link partitions, queue overflows, crashes and
// promotions a schedule produces, after the stream drains the primary's
// and the standby's space states are identical — so the standby that then
// promotes serves exactly the state the dead primary acknowledged.
//
// Each seed drives several generations: random ops against the current
// primary while a faults.Plan partitions the replication link, heal,
// drain, compare, kill, promote — and the promoted node becomes the next
// generation's primary with a fresh standby attached via catch-up. The
// same seed replays the same schedule (virtual clock + seeded plan).
func TestReplicaConvergenceProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runConvergence(t, seed) })
	}
}

const (
	convRounds = 3
	convOps    = 30
	convFT     = 5 * time.Second // failover timeout: longer than any partition window
)

func runConvergence(t *testing.T, seed int64) {
	clk := vclock.NewVirtual(testEpoch)
	rng := rand.New(rand.NewSource(seed))
	net := transport.NewNetwork(clk, transport.Model{})
	plan := faults.NewPlan(seed)
	plan.Bind(clk)
	net.Intercept(plan.Interceptor())
	ctrs := metrics.NewCounters()

	// Half the seeds run with a tiny ship queue so partitions overflow it
	// and the snapshot-resync path is part of the schedule too.
	maxQ := 0
	if seed%2 == 1 {
		maxQ = 8
	}

	newNode := func(name string) (*space.Local, *replica.SwitchSink, *transport.Server) {
		l := space.NewLocal(clk)
		sw := replica.NewSwitchSink()
		if err := l.TS.AttachJournal(tuplespace.NewJournalSink(sw)); err != nil {
			t.Fatalf("%s journal: %v", name, err)
		}
		srv := transport.NewServer()
		net.Listen(name, srv)
		return l, sw, srv
	}

	clk.Run(func() {
		g := vclock.NewGroup(clk)

		// Generation 0's primary.
		paddr := "node0"
		local, psw, _ := newNode(paddr)
		p := replica.NewPrimary(local, replica.PrimaryOptions{
			Clock: clk, Ack: replica.AckAsync, MaxQueue: maxQ, Counters: ctrs,
		})
		psw.Set(p.Sink())
		wrapped := p.Wrap(local)
		epoch := uint64(1)

		for round := 0; round < convRounds; round++ {
			// Fresh standby for this generation.
			baddr := fmt.Sprintf("node%d", round+1)
			blocal, bsw, bsrv := newNode(baddr)
			b := replica.NewBackup(blocal, replica.BackupOptions{
				Clock: clk, Epoch: epoch, FailoverTimeout: convFT, Counters: ctrs,
			})
			b.Bind(bsrv)
			p.SetMirror(net.DialAs(paddr, baddr))
			g.Go(p.Run)
			g.Go(b.Run)

			// One seeded partition window on the replication link, shorter
			// than the failover timeout so it cannot promote by itself.
			base := clk.Now().Sub(testEpoch)
			pStart := base + time.Duration(rng.Intn(1500))*time.Millisecond
			pEnd := pStart + time.Duration(500+rng.Intn(2500))*time.Millisecond
			plan.PartitionOneWay(paddr, baddr, pStart, pEnd)

			// Seeded op mix against the serving primary. Async mode: the
			// partition degrades shipping, never the client ops.
			for i := 0; i < convOps; i++ {
				if rng.Intn(5) == 0 {
					if _, err := wrapped.TakeIfExists(kv{}, nil); err != nil {
						t.Fatalf("round %d take %d: %v", round, i, err)
					}
				} else {
					e := kv{K: fmt.Sprintf("r%d", round), N: rng.Intn(1000)}
					if _, err := wrapped.Write(e, nil, time.Hour); err != nil {
						t.Fatalf("round %d write %d: %v", round, i, err)
					}
				}
				clk.Sleep(time.Duration(20+rng.Intn(130)) * time.Millisecond)
			}

			// Heal and drain: past the partition window the pump reships
			// (or resyncs) until the standby is converged.
			if past := pEnd - clk.Now().Sub(testEpoch); past > 0 {
				clk.Sleep(past + 100*time.Millisecond)
			}
			equal := func() bool {
				a, bb := entries(t, local), entries(t, blocal)
				if len(a) != len(bb) {
					return false
				}
				for e, n := range a {
					if bb[e] != n {
						return false
					}
				}
				return true
			}
			drained := false
			for i := 0; i < 50; i++ {
				if p.Lag() == 0 && !p.Degraded() && equal() {
					drained = true
					break
				}
				clk.Sleep(500 * time.Millisecond)
			}
			if !drained {
				// THE invariant, violated: report the diff.
				sameEntries(t, fmt.Sprintf("round %d drained", round), entries(t, local), entries(t, blocal))
				t.Fatalf("round %d: stream never drained (lag %d, degraded %v)", round, p.Lag(), p.Degraded())
			}

			// Crash the primary; the standby's monitor promotes on
			// heartbeat silence with exactly one epoch bump.
			p.Kill()
			for i := 0; i < 40 && !b.Promoted(); i++ {
				clk.Sleep(500 * time.Millisecond)
			}
			if !b.Promoted() {
				t.Fatalf("round %d: standby never promoted", round)
			}
			if got := b.Epoch(); got != epoch+1 {
				t.Fatalf("round %d: promoted epoch %d, want %d", round, got, epoch+1)
			}
			epoch = b.Epoch()
			sameEntries(t, fmt.Sprintf("round %d promoted", round), entries(t, local), entries(t, blocal))

			// The promoted node is the next generation's primary; its old
			// identity keeps the ring position, the address moves on.
			paddr, local = baddr, blocal
			p = replica.NewPrimary(blocal, replica.PrimaryOptions{
				Clock: clk, Epoch: epoch, Ack: replica.AckAsync, MaxQueue: maxQ, Counters: ctrs,
			})
			bsw.Set(p.Sink())
			wrapped = p.Wrap(blocal)
		}
		p.Stop()
		g.Wait()
	})

	if n := ctrs.Get(metrics.CounterReplPromotions); n != convRounds {
		t.Fatalf("promotions = %d, want %d", n, convRounds)
	}
	if ctrs.Get(metrics.CounterReplShipped) == 0 && ctrs.Get(metrics.CounterReplResyncs) == 0 {
		t.Fatal("schedule never replicated anything")
	}
}

// TestReplicaConvergenceDeterminism: the same seed must produce the same
// final state — the property that makes a failing seed a bug report.
func TestReplicaConvergenceDeterminism(t *testing.T) {
	final := func() map[kv]int {
		clk := vclock.NewVirtual(testEpoch)
		rng := rand.New(rand.NewSource(99))
		net := transport.NewNetwork(clk, transport.Model{})
		plan := faults.NewPlan(99)
		plan.Bind(clk)
		net.Intercept(plan.Interceptor())
		plan.PartitionOneWay("p", "b", 500*time.Millisecond, 2*time.Second)

		var out map[kv]int
		clk.Run(func() {
			local := space.NewLocal(clk)
			sw := replica.NewSwitchSink()
			if err := local.TS.AttachJournal(tuplespace.NewJournalSink(sw)); err != nil {
				t.Fatalf("journal: %v", err)
			}
			blocal := space.NewLocal(clk)
			bsrv := transport.NewServer()
			net.Listen("b", bsrv)
			p := replica.NewPrimary(local, replica.PrimaryOptions{Clock: clk, Ack: replica.AckAsync})
			sw.Set(p.Sink())
			b := replica.NewBackup(blocal, replica.BackupOptions{Clock: clk, FailoverTimeout: convFT})
			b.Bind(bsrv)
			p.SetMirror(net.DialAs("p", "b"))
			g := vclock.NewGroup(clk)
			g.Go(p.Run)
			g.Go(b.Run)
			w := p.Wrap(local)
			for i := 0; i < 40; i++ {
				if rng.Intn(4) == 0 {
					_, _ = w.TakeIfExists(kv{}, nil)
				} else if _, err := w.Write(kv{K: "d", N: rng.Intn(100)}, nil, time.Hour); err != nil {
					t.Fatalf("write: %v", err)
				}
				clk.Sleep(time.Duration(10+rng.Intn(90)) * time.Millisecond)
			}
			for i := 0; i < 50 && (p.Lag() > 0 || p.Degraded()); i++ {
				clk.Sleep(500 * time.Millisecond)
			}
			p.Kill()
			for i := 0; i < 40 && !b.Promoted(); i++ {
				clk.Sleep(500 * time.Millisecond)
			}
			g.Wait()
			out = entries(t, blocal)
		})
		return out
	}
	a, b := final(), final()
	if len(a) == 0 {
		t.Fatal("empty final state")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\nrun1: %v\nrun2: %v", a, b)
	}
}
