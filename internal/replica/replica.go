// Package replica adds per-shard primary/backup replication to the space
// service by synchronous WAL log shipping — the availability layer the
// paper's single space server lacks (PR 3 made a crashed shard
// recoverable from its log; this makes the shard survive the crash
// without an operator).
//
// The protocol:
//
//   - The primary's journal records (the same self-contained records the
//     durable WAL stores) are enqueued, in order, by an enqueue-only
//     RecordSink and streamed to the backup over the transport as
//     replica.Append batches. In sync mode (the default) a mutating space
//     operation acknowledges only after the backup confirms its records;
//     in async mode the pump ships the queue in the background and the
//     loss window is bounded by the heartbeat interval.
//   - The backup applies each record to its own live tuplespace through
//     tuplespace.Applier, so it is hot: promotion is a role flip, not a
//     replay.
//   - Failure detection is two-fold: the backup watches the heartbeat
//     stream (transport-level detection) and, optionally, the primary's
//     lookup-service lease (registration expiry). Either firing promotes
//     the backup: it bumps the epoch, re-registers under the shard's ring
//     position, and starts serving.
//   - Epochs fence the deposed primary: every replication RPC carries the
//     sender's epoch, and a receiver at a higher epoch rejects it with
//     ErrFenced. A fenced primary stops acknowledging mutations, which
//     closes the split-brain window sync replication leaves open.
//   - A diverged or returning replica catches up by snapshot push
//     (replica.Sync carries the full EncodeState) followed by the
//     incremental tail — the same records, so catch-up and steady-state
//     share one apply path.
package replica

import (
	"errors"
	"fmt"
	"strings"

	"gospaces/internal/transport"
)

// RPC method names. The backup binds these on its server; the primary's
// shipper calls them.
const (
	methodAppend    = "replica.Append"
	methodHeartbeat = "replica.Heartbeat"
	methodSync      = "replica.Sync"
)

// AckMode selects when a mutating operation on the primary acknowledges.
type AckMode int

const (
	// AckSync acknowledges after the backup confirmed the operation's
	// journal records — no acknowledged write is lost by a failover.
	AckSync AckMode = iota
	// AckAsync acknowledges immediately; the pump ships records in the
	// background. A failover can lose up to one heartbeat interval of
	// acknowledged mutations.
	AckAsync
)

// String implements fmt.Stringer.
func (m AckMode) String() string {
	if m == AckAsync {
		return "async"
	}
	return "sync"
}

// ParseAckMode parses "sync" or "async" (the cmd flag values).
func ParseAckMode(s string) (AckMode, error) {
	switch s {
	case "", "sync":
		return AckSync, nil
	case "async":
		return AckAsync, nil
	default:
		return AckSync, fmt.Errorf("replica: unknown ack mode %q (want sync or async)", s)
	}
}

var (
	// ErrFenced rejects a replication request (or, on a deposed primary,
	// a client mutation) whose epoch is behind the receiver's: a newer
	// primary exists, and acting on the request would split the brain.
	ErrFenced = errors.New("replica: fenced: a newer epoch holds this shard")
	// ErrOutOfSync reports that the incremental stream cannot continue
	// (the backup is missing records); the primary must re-sync by
	// snapshot push.
	ErrOutOfSync = errors.New("replica: stream out of sync")
	// ErrUnavailable fails a sync-mode mutation whose records could not
	// be confirmed by the backup: consistency over availability — nothing
	// is acknowledged that a failover could lose.
	ErrUnavailable = errors.New("replica: backup unreachable, mutation not replicated")
)

// appendArgs ships the queued journal records [From .. From+len-1].
type appendArgs struct {
	Epoch   uint64
	From    uint64 // sequence number of Records[0]
	Records [][]byte
}

// appendReply confirms application up to (and including) Applied.
type appendReply struct {
	Applied uint64
}

// heartbeatArgs is the idle-stream liveness probe; Seq is the primary's
// latest enqueued sequence number so the backup can measure lag.
type heartbeatArgs struct {
	Epoch uint64
	Seq   uint64
}

// syncArgs pushes the primary's full live state (EncodeState records);
// after applying, the backup's position is Seq.
type syncArgs struct {
	Epoch   uint64
	Seq     uint64
	Records [][]byte
}

func init() {
	transport.RegisterType(appendArgs{})
	transport.RegisterType(appendReply{})
	transport.RegisterType(heartbeatArgs{})
	transport.RegisterType(syncArgs{})
}

// mapRemote converts RemoteError strings carrying the replica sentinels
// back into the sentinel errors, mirroring space.Proxy's convention.
func mapRemote(err error) error {
	if err == nil {
		return nil
	}
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	for _, sentinel := range []error{ErrFenced, ErrOutOfSync} {
		if strings.Contains(re.Msg, sentinel.Error()) {
			return sentinel
		}
	}
	return err
}

// IsFenced reports whether err is (or wraps, locally or remotely) the
// fencing rejection.
func IsFenced(err error) bool { return errors.Is(mapRemote(err), ErrFenced) }
