package replica

import (
	"sync"

	"gospaces/internal/tuplespace"
)

// SwitchSink is a tuplespace.RecordSink whose target can be installed —
// or swapped — after the journal is already attached. A space only
// accepts a journal while it is empty, so the replicated bring-up
// attaches a journal over a SwitchSink at construction and points it at
// the shard's replication controller later; after a role flip the same
// switch is re-pointed at the node's next controller. A nil target drops
// records, which is exactly right for a node with no replication peer.
type SwitchSink struct {
	mu   sync.Mutex
	sink tuplespace.RecordSink
}

// NewSwitchSink returns a switch with no target.
func NewSwitchSink() *SwitchSink { return &SwitchSink{} }

// Set installs (or replaces, or with nil removes) the target sink.
func (s *SwitchSink) Set(sink tuplespace.RecordSink) {
	s.mu.Lock()
	s.sink = sink
	s.mu.Unlock()
}

// Append implements tuplespace.RecordSink by forwarding to the current
// target. It is called under the space mutex, so the target must not
// block (Primary.Sink only enqueues).
func (s *SwitchSink) Append(payload []byte) error {
	s.mu.Lock()
	t := s.sink
	s.mu.Unlock()
	if t == nil {
		return nil
	}
	return t.Append(payload)
}
