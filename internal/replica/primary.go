package replica

import (
	"fmt"
	"sync"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// PrimaryOptions configures a shard's primary-side replication controller.
type PrimaryOptions struct {
	Clock vclock.Clock
	// Epoch is the starting epoch (default 1). A controller created at
	// promotion inherits the promoted epoch.
	Epoch uint64
	// Ack selects sync (default) or async acknowledgement.
	Ack AckMode
	// HeartbeatEvery paces the pump: lease renewal plus an idle-stream
	// heartbeat (and, in async mode, the background flush). Default 500ms.
	HeartbeatEvery time.Duration
	// MaxQueue bounds the unshipped-record queue; overflow discards the
	// queue and schedules a full snapshot re-sync. Default 65536.
	MaxQueue int
	// Renew, when set, is called from the pump each interval to renew the
	// primary's lookup-service registration lease. A fenced primary stops
	// renewing, letting the registration lapse.
	Renew func()
	// OnFenced, when set, is called once when the primary learns it has
	// been deposed (a replication RPC came back ErrFenced).
	OnFenced func(epoch uint64)
	// OnEvent, when set, receives control-plane state transitions for the
	// cluster flight recorder: kind "resync" after a successful snapshot
	// push, "degraded" when the backup first becomes unreachable. Called
	// outside the controller's mutex, never from under the space mutex.
	OnEvent func(kind, detail string)

	Counters *metrics.Counters
	ShipHist *metrics.Histogram
}

// Primary is the primary-side replication controller for one shard. It
// owns the journal record queue, the shipping stream to the backup, and
// the fenced/degraded state machine that gates client mutations.
//
// The critical constraint it is built around: the tuplespace invokes its
// journal sink while holding the space mutex, and on the virtual clock a
// transport call from there would park an invisible (mutex-blocked)
// process and deadlock time. So Sink only enqueues; shipping happens in
// Flush, after the mutating operation has released the space — via the
// Wrap/Middleware hooks for sync mode and the pump for async.
type Primary struct {
	opts  PrimaryOptions
	local *space.Local

	mu       sync.Mutex
	queue    [][]byte // unshipped records, seqs [acked+1 .. seq]
	seq      uint64   // last enqueued sequence number
	acked    uint64   // last sequence number confirmed by the backup
	mirror   transport.Client
	resync   bool // stream diverged (overflow / new mirror): snapshot push next
	degraded bool // backup unreachable: sync-mode mutations fail fast
	fenced   bool // deposed by a higher epoch: all mutations fail
	killed   bool // simulated kill -9: everything fails
	epoch    uint64
	stop     vclock.Waiter // pump parker, non-nil while the pump sleeps
	quit     bool

	// The ship section serializes transport I/O (Flush, re-sync,
	// heartbeat) so the record stream stays ordered. It cannot be a bare
	// mutex: the holder sleeps on the clock inside transport calls, and on
	// the virtual clock a process blocked on a mutex is invisible — time
	// would freeze with one confirm() shipping and another waiting. So
	// contenders park on clock waiters (visible), and the holder wakes
	// them on release.
	shipping    bool            // guarded by mu
	shipWaiters []vclock.Waiter // guarded by mu
}

// NewPrimary returns a controller for local. Call SetMirror to attach the
// backup, Wrap/Middleware to gate the serving paths, and run the pump
// under a clock group.
func NewPrimary(local *space.Local, opts PrimaryOptions) *Primary {
	if opts.Epoch == 0 {
		opts.Epoch = 1
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 500 * time.Millisecond
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 65536
	}
	return &Primary{opts: opts, local: local, epoch: opts.Epoch}
}

// SetMirror attaches (or replaces) the transport client to the backup. A
// newly attached backup is brought up by snapshot push on the next flush.
func (p *Primary) SetMirror(c transport.Client) {
	p.mu.Lock()
	p.mirror = c
	p.resync = c != nil
	p.mu.Unlock()
}

// --- enqueue side (called under the tuplespace mutex; must not block) ---

type queueSink struct{ p *Primary }

// Append implements tuplespace.RecordSink by enqueueing only — the
// records ship later, outside the space mutex.
func (s queueSink) Append(payload []byte) error {
	p := s.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.killed || p.fenced {
		// A deposed primary's mutations are never replicated; the gate in
		// Wrap/Middleware already rejects client ops, this catches
		// internal churn (lease expiry sweeps).
		return nil
	}
	if p.mirror == nil {
		// No backup attached yet: don't queue, attach re-syncs anyway.
		return nil
	}
	if p.resync {
		return nil // queue is dead, snapshot push supersedes it
	}
	if len(p.queue) >= p.opts.MaxQueue {
		p.queue = nil
		p.resync = true
		return nil
	}
	p.seq++
	p.queue = append(p.queue, payload)
	return nil
}

// Sink returns the enqueue-only record sink to hand to the space journal
// (alone, or teed with a durable WAL sink).
func (p *Primary) Sink() tuplespace.RecordSink { return queueSink{p: p} }

// --- shipping side ---

// acquireShip enters the ship section, parking clock-visibly while
// another process ships.
func (p *Primary) acquireShip() {
	p.mu.Lock()
	for p.shipping {
		w := p.opts.Clock.NewWaiter()
		p.shipWaiters = append(p.shipWaiters, w)
		p.mu.Unlock()
		w.Wait(0)
		p.mu.Lock()
	}
	p.shipping = true
	p.mu.Unlock()
}

// releaseShip leaves the ship section and wakes every parked contender
// (they re-check and re-park; herds are tiny — one per concurrent client).
func (p *Primary) releaseShip() {
	p.mu.Lock()
	p.shipping = false
	ws := p.shipWaiters
	p.shipWaiters = nil
	p.mu.Unlock()
	for _, w := range ws {
		w.Wake()
	}
}

// Flush ships every queued record to the backup and waits for the ack.
// In sync mode its error is the client's error: nothing unconfirmed is
// acknowledged.
func (p *Primary) Flush() error {
	p.acquireShip()
	defer p.releaseShip()
	return p.flushLocked()
}

func (p *Primary) flushLocked() error {
	for {
		p.mu.Lock()
		mirror := p.mirror
		if p.killed {
			p.mu.Unlock()
			return tuplespace.ErrClosed
		}
		if p.fenced {
			// A sync-mode mutation can race the fencing signal: gate()
			// passed, the op mutated the space, and the pump's heartbeat
			// learned of the higher epoch before confirm() flushed. The
			// record was never replicated (queueSink drops on fenced), so
			// acknowledging it would hand the client a write that exists
			// only on the deposed primary — fail the op instead.
			p.mu.Unlock()
			return ErrFenced
		}
		if mirror == nil {
			p.mu.Unlock()
			return nil
		}
		if p.resync {
			p.mu.Unlock()
			if err := p.resyncLocked(mirror); err != nil {
				return err
			}
			continue // ship whatever queued while the snapshot was in flight
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return nil
		}
		batch := p.queue
		from := p.acked + 1
		epoch := p.epoch
		p.mu.Unlock()

		args := appendArgs{Epoch: epoch, From: from, Records: batch}
		start := p.opts.Clock.Now()
		res, err := mirror.Call(methodAppend, args)
		p.opts.ShipHist.Record(p.opts.Clock.Since(start))
		if err := p.shipResult(err); err != nil {
			return err
		}
		rep, ok := res.(appendReply)
		if !ok {
			// A nil or mistyped reply with a nil error would look like
			// "applied nothing" and spin this loop re-shipping the same
			// batch; treat it as a ship failure (degrades, surfaces).
			return p.shipResult(fmt.Errorf("replica: malformed %s reply %T", methodAppend, res))
		}
		p.mu.Lock()
		if rep.Applied > p.acked {
			shipped := rep.Applied - p.acked
			n := int(shipped)
			if n > len(p.queue) {
				n = len(p.queue)
			}
			p.queue = p.queue[n:]
			p.acked = rep.Applied
			p.count(metrics.CounterReplShipped, shipped)
		}
		p.degraded = false
		more := len(p.queue) > 0 || p.resync
		p.mu.Unlock()
		if !more {
			return nil
		}
	}
}

// resyncLocked pushes the primary's full live state to the backup. The
// ordering subtlety: records enqueued before EncodeState captures the
// space are also reflected in the snapshot, so the backup may see an op
// twice — the Applier is idempotent per sequence number, which makes the
// overlap harmless; seqMark (read before the capture) conservatively
// marks where the incremental stream resumes.
func (p *Primary) resyncLocked(mirror transport.Client) error {
	p.mu.Lock()
	seqMark := p.seq
	epoch := p.epoch
	p.queue = nil
	p.acked = seqMark
	p.resync = false
	p.mu.Unlock()

	records, err := p.local.TS.EncodeState()
	if err != nil {
		return fmt.Errorf("replica: encode state for re-sync: %w", err)
	}
	_, err = mirror.Call(methodSync, syncArgs{Epoch: epoch, Seq: seqMark, Records: records})
	if err := p.shipResult(err); err != nil {
		p.mu.Lock()
		p.resync = true
		p.mu.Unlock()
		return err
	}
	p.count(metrics.CounterReplResyncs, 1)
	if p.opts.OnEvent != nil {
		p.opts.OnEvent("resync", fmt.Sprintf("epoch %d seq %d", epoch, seqMark))
	}
	return nil
}

// heartbeat probes the idle stream (and ships any backlog first).
func (p *Primary) heartbeat() error {
	p.acquireShip()
	defer p.releaseShip()
	if err := p.flushLocked(); err != nil {
		return err
	}
	p.mu.Lock()
	mirror := p.mirror
	epoch := p.epoch
	seq := p.seq
	p.mu.Unlock()
	if mirror == nil {
		return nil
	}
	_, err := mirror.Call(methodHeartbeat, heartbeatArgs{Epoch: epoch, Seq: seq})
	if err := p.shipResult(err); err != nil {
		return err
	}
	p.mu.Lock()
	p.degraded = false
	p.mu.Unlock()
	return nil
}

// shipResult folds one transport result into the state machine: fencing
// deposes the primary, any other failure degrades it.
func (p *Primary) shipResult(err error) error {
	if err == nil {
		return nil
	}
	err = mapRemote(err)
	switch err {
	case ErrFenced:
		p.mu.Lock()
		already := p.fenced
		p.fenced = true
		epoch := p.epoch
		p.mu.Unlock()
		if !already && p.opts.OnFenced != nil {
			p.opts.OnFenced(epoch)
		}
		return ErrFenced
	case ErrOutOfSync:
		p.mu.Lock()
		p.resync = true
		p.mu.Unlock()
		return p.flushLocked() // shipMu already held by the caller
	default:
		p.mu.Lock()
		already := p.degraded
		p.degraded = true
		p.mu.Unlock()
		p.count(metrics.CounterReplShipErrors, 1)
		if !already && p.opts.OnEvent != nil {
			p.opts.OnEvent("degraded", err.Error())
		}
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
}

// --- mutation gating ---

// gate rejects a mutation before it touches the space: fenced primaries
// reject everything (split-brain safety), degraded sync-mode primaries
// fail fast (nothing may be acknowledged that the backup did not see).
func (p *Primary) gate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.killed {
		return tuplespace.ErrClosed
	}
	if p.fenced {
		return ErrFenced
	}
	if p.degraded && p.opts.Ack == AckSync && p.mirror != nil {
		return ErrUnavailable
	}
	return nil
}

// confirm runs after a successful mutation: in sync mode it ships the
// op's records and surfaces any replication failure as the op's error.
// Both modes re-check the fenced/killed state here — gate() ran before
// the mutation, and a fencing signal that landed in between must not be
// acknowledged (the record was dropped, not replicated).
func (p *Primary) confirm() error {
	if p.opts.Ack != AckSync {
		p.mu.Lock()
		killed, fenced := p.killed, p.fenced
		p.mu.Unlock()
		if killed {
			return tuplespace.ErrClosed
		}
		if fenced {
			return ErrFenced
		}
		return nil
	}
	return p.Flush()
}

// mutatingMethods are the space service methods whose success implies
// journal records (renewals are not journaled, so not listed).
var mutatingMethods = map[string]bool{
	"space.Write":        true,
	"space.Take":         true,
	"space.TakeIfExists": true,
	"space.TakeAll":      true,
	"space.TxnCommit":    true,
	"space.LeaseCancel":  true,
}

// Middleware gates the shard's space service: install with
// srv.WrapPrefix("space.", p.Middleware()) directly above the service
// handlers, so replication confirms before the gate or obs layers see the
// reply.
func (p *Primary) Middleware() func(method string, next transport.Handler) transport.Handler {
	return func(method string, next transport.Handler) transport.Handler {
		if !mutatingMethods[method] {
			return next
		}
		return func(arg interface{}) (interface{}, error) {
			if err := p.gate(); err != nil {
				return nil, err
			}
			res, err := next(arg)
			if err != nil {
				return res, err
			}
			if err := p.confirm(); err != nil {
				return nil, err
			}
			return res, nil
		}
	}
}

// --- in-process space wrapper (the master's local handle) ---

type primarySpace struct {
	p     *Primary
	inner space.Space
}

// unwrapTxn strips the controller's transaction wrapper before the handle
// reaches the inner space (whose own unwrap type-asserts its handles).
func unwrapTxn(t space.Txn) space.Txn {
	if pt, ok := t.(*primaryTxn); ok {
		return pt.Txn
	}
	return t
}

// Wrap returns inner gated by the controller, for the in-process handle
// the master uses (remote clients are gated by Middleware instead).
func (p *Primary) Wrap(inner space.Space) space.Space {
	return &primarySpace{p: p, inner: inner}
}

func (w *primarySpace) mutate(op func() error) error {
	if err := w.p.gate(); err != nil {
		return err
	}
	if err := op(); err != nil {
		return err
	}
	return w.p.confirm()
}

func (w *primarySpace) Write(e tuplespace.Entry, t space.Txn, ttl time.Duration) (space.Lease, error) {
	var l space.Lease
	err := w.mutate(func() (err error) {
		l, err = w.inner.Write(e, unwrapTxn(t), ttl)
		return
	})
	if err != nil {
		return nil, err
	}
	return &primaryLease{p: w.p, inner: l}, nil
}

func (w *primarySpace) Take(tmpl tuplespace.Entry, t space.Txn, timeout time.Duration) (tuplespace.Entry, error) {
	var e tuplespace.Entry
	err := w.mutate(func() (err error) {
		e, err = w.inner.Take(tmpl, unwrapTxn(t), timeout)
		return
	})
	return e, err
}

func (w *primarySpace) TakeIfExists(tmpl tuplespace.Entry, t space.Txn) (tuplespace.Entry, error) {
	var e tuplespace.Entry
	err := w.mutate(func() (err error) {
		e, err = w.inner.TakeIfExists(tmpl, unwrapTxn(t))
		return
	})
	return e, err
}

func (w *primarySpace) TakeAll(tmpl tuplespace.Entry, t space.Txn, max int) ([]tuplespace.Entry, error) {
	var es []tuplespace.Entry
	err := w.mutate(func() (err error) {
		es, err = w.inner.TakeAll(tmpl, unwrapTxn(t), max)
		return
	})
	return es, err
}

// Token methods implement space.TokenMutator by forwarding the token to
// the inner space through the same gate/confirm envelope. This matters
// beyond pass-through: an op can execute locally and then fail confirm()
// (backup unreachable) while its record stays queued — a later flush
// ships the effect anyway, and a tokenless retry would duplicate it. With
// the token recorded in the shard's memo table the retry collapses.

func (w *primarySpace) WriteTok(e tuplespace.Entry, t space.Txn, ttl time.Duration, tok tuplespace.OpToken) (space.Lease, error) {
	var l space.Lease
	err := w.mutate(func() (err error) {
		l, err = space.WriteTok(w.inner, e, unwrapTxn(t), ttl, tok)
		return
	})
	if err != nil {
		return nil, err
	}
	return &primaryLease{p: w.p, inner: l}, nil
}

func (w *primarySpace) TakeTok(tmpl tuplespace.Entry, t space.Txn, timeout time.Duration, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	var e tuplespace.Entry
	err := w.mutate(func() (err error) {
		e, err = space.TakeTok(w.inner, tmpl, unwrapTxn(t), timeout, tok)
		return
	})
	return e, err
}

func (w *primarySpace) TakeIfExistsTok(tmpl tuplespace.Entry, t space.Txn, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	var e tuplespace.Entry
	err := w.mutate(func() (err error) {
		e, err = space.TakeIfExistsTok(w.inner, tmpl, unwrapTxn(t), tok)
		return
	})
	return e, err
}

func (w *primarySpace) TakeAllTok(tmpl tuplespace.Entry, t space.Txn, max int, tok tuplespace.OpToken) ([]tuplespace.Entry, error) {
	var es []tuplespace.Entry
	err := w.mutate(func() (err error) {
		es, err = space.TakeAllTok(w.inner, tmpl, unwrapTxn(t), max, tok)
		return
	})
	return es, err
}

var _ space.TokenMutator = (*primarySpace)(nil)

func (w *primarySpace) Read(tmpl tuplespace.Entry, t space.Txn, timeout time.Duration) (tuplespace.Entry, error) {
	return w.inner.Read(tmpl, unwrapTxn(t), timeout)
}

func (w *primarySpace) ReadIfExists(tmpl tuplespace.Entry, t space.Txn) (tuplespace.Entry, error) {
	return w.inner.ReadIfExists(tmpl, unwrapTxn(t))
}

func (w *primarySpace) ReadAll(tmpl tuplespace.Entry, t space.Txn, max int) ([]tuplespace.Entry, error) {
	return w.inner.ReadAll(tmpl, unwrapTxn(t), max)
}

func (w *primarySpace) Count(tmpl tuplespace.Entry) (int, error) { return w.inner.Count(tmpl) }

func (w *primarySpace) BeginTxn(ttl time.Duration) (space.Txn, error) {
	t, err := w.inner.BeginTxn(ttl)
	if err != nil {
		return nil, err
	}
	return &primaryTxn{p: w.p, Txn: t}, nil
}

func (w *primarySpace) Close() error { return w.inner.Close() }

// Notify passes through when the inner space supports registrations (the
// router's shard handles require it).
func (w *primarySpace) Notify(tmpl tuplespace.Entry, fn tuplespace.Listener, ttl time.Duration) (*tuplespace.Registration, error) {
	type notifier interface {
		Notify(tmpl tuplespace.Entry, fn tuplespace.Listener, ttl time.Duration) (*tuplespace.Registration, error)
	}
	if n, ok := w.inner.(notifier); ok {
		return n.Notify(tmpl, fn, ttl)
	}
	return nil, fmt.Errorf("replica: inner space does not support Notify")
}

// TypeCounts passes through for the router's shard-count surface.
func (w *primarySpace) TypeCounts() (map[string]int, error) {
	type counter interface {
		TypeCounts() (map[string]int, error)
	}
	if c, ok := w.inner.(counter); ok {
		return c.TypeCounts()
	}
	return nil, fmt.Errorf("replica: inner space does not expose TypeCounts")
}

type primaryTxn struct {
	p *Primary
	space.Txn
}

func (t *primaryTxn) Commit() error {
	if err := t.p.gate(); err != nil {
		return err
	}
	if err := t.Txn.Commit(); err != nil {
		return err
	}
	return t.p.confirm()
}

type primaryLease struct {
	p     *Primary
	inner space.Lease
}

func (l *primaryLease) Renew(ttl time.Duration) error { return l.inner.Renew(ttl) }

func (l *primaryLease) Cancel() error {
	if err := l.p.gate(); err != nil {
		return err
	}
	if err := l.inner.Cancel(); err != nil {
		return err
	}
	return l.p.confirm()
}

// --- pump ---

// Run is the pump: a clock process that each interval renews the lookup
// lease, ships any backlog, and heartbeats the backup so it can tell a
// healthy-but-idle primary from a dead one. Run returns when Stop or
// Kill is called.
func (p *Primary) Run() {
	for {
		p.mu.Lock()
		if p.quit || p.killed {
			p.mu.Unlock()
			return
		}
		w := p.opts.Clock.NewWaiter()
		p.stop = w
		p.mu.Unlock()

		woken := w.Wait(p.opts.HeartbeatEvery)

		p.mu.Lock()
		p.stop = nil
		done := p.quit || p.killed
		fenced := p.fenced
		p.mu.Unlock()
		if done || woken {
			return
		}
		if !fenced && p.opts.Renew != nil {
			p.opts.Renew()
		}
		_ = p.heartbeat() // state machine absorbs failures; pump keeps probing
	}
}

// Stop terminates the pump cleanly (shutdown path).
func (p *Primary) Stop() {
	p.mu.Lock()
	p.quit = true
	w := p.stop
	p.mu.Unlock()
	if w != nil {
		w.Wake()
	}
}

// Kill simulates kill -9 of the primary process: the pump stops mid-beat
// (no more heartbeats, no more lease renewals) and every subsequent
// operation fails as if the process were gone. The caller closes the
// space and any durable log, as the real signal would.
func (p *Primary) Kill() {
	p.mu.Lock()
	p.killed = true
	w := p.stop
	p.mu.Unlock()
	if w != nil {
		w.Wake()
	}
}

// --- accessors ---

func (p *Primary) count(key string, n uint64) {
	if p.opts.Counters != nil {
		p.opts.Counters.AddN(key, n)
	}
}

// Epoch returns the controller's current epoch.
func (p *Primary) Epoch() uint64 { p.mu.Lock(); defer p.mu.Unlock(); return p.epoch }

// Seq returns the last enqueued record sequence number.
func (p *Primary) Seq() uint64 { p.mu.Lock(); defer p.mu.Unlock(); return p.seq }

// Acked returns the last backup-confirmed sequence number.
func (p *Primary) Acked() uint64 { p.mu.Lock(); defer p.mu.Unlock(); return p.acked }

// Lag returns how many enqueued records the backup has not confirmed.
func (p *Primary) Lag() uint64 { p.mu.Lock(); defer p.mu.Unlock(); return p.seq - p.acked }

// Fenced reports whether the primary has been deposed by a higher epoch.
func (p *Primary) Fenced() bool { p.mu.Lock(); defer p.mu.Unlock(); return p.fenced }

// Degraded reports whether the backup is currently unreachable.
func (p *Primary) Degraded() bool { p.mu.Lock(); defer p.mu.Unlock(); return p.degraded }

// Killed reports whether Kill has been called.
func (p *Primary) Killed() bool { p.mu.Lock(); defer p.mu.Unlock(); return p.killed }
