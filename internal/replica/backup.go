package replica

import (
	"fmt"
	"sync"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// BackupOptions configures a shard's backup-side replication controller.
type BackupOptions struct {
	Clock vclock.Clock
	// Epoch is the epoch the backup expects from its primary (default 1;
	// a rejoining backup starts at the promoted epoch).
	Epoch uint64
	// FailoverTimeout is how long the heartbeat stream may go silent
	// before the backup promotes itself. Default 2s.
	FailoverTimeout time.Duration
	// CheckEvery paces the monitor. Default FailoverTimeout/4.
	CheckEvery time.Duration
	// LeaseExpired, when set, is the registration-lease failure detector:
	// it reports whether the primary's lookup registration has lapsed.
	// Lease expiry promotes immediately, without waiting out the full
	// heartbeat silence.
	LeaseExpired func() bool
	// OnPromote runs after the role flip, with the new epoch. The glue
	// layer uses it to bind the space service, re-register under the ring
	// position, and swap sweepers.
	OnPromote func(epoch uint64)
	// OnEvent, when set, receives failure-detection transitions for the
	// cluster flight recorder: kind "detect" fires when the monitor decides
	// to promote, with the trigger ("heartbeat silent" or "lease expired")
	// as detail. Called from the monitor process, outside b.mu.
	OnEvent func(kind, detail string)

	Counters *metrics.Counters
}

// Backup is the backup-side replication controller for one shard: it
// applies the primary's shipped journal records to its own hot
// tuplespace, watches the heartbeat stream and the primary's lookup
// lease, and promotes itself when the primary goes silent.
type Backup struct {
	opts    BackupOptions
	local   *space.Local
	applier *tuplespace.Applier

	// applyMu spans whole batch applications and excludes promotion, so a
	// promotion never lands halfway through a batch.
	applyMu sync.Mutex

	mu          sync.Mutex
	epoch       uint64
	applied     uint64 // last primary sequence number applied here
	primarySeq  uint64 // latest sequence number the primary reported
	lastContact time.Time
	synced      bool // a snapshot or append has arrived at least once
	promoted    bool
	stop        vclock.Waiter // monitor parker, non-nil while it sleeps
	quit        bool
}

// NewBackup returns a controller applying into local.
func NewBackup(local *space.Local, opts BackupOptions) *Backup {
	if opts.Epoch == 0 {
		opts.Epoch = 1
	}
	if opts.FailoverTimeout <= 0 {
		opts.FailoverTimeout = 2 * time.Second
	}
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = opts.FailoverTimeout / 4
	}
	return &Backup{
		opts:        opts,
		local:       local,
		applier:     tuplespace.NewApplier(local.TS),
		epoch:       opts.Epoch,
		lastContact: opts.Clock.Now(),
	}
}

// Bind registers the replication handlers on the backup node's server.
func (b *Backup) Bind(srv *transport.Server) {
	srv.Handle(methodAppend, b.handleAppend)
	srv.Handle(methodHeartbeat, b.handleHeartbeat)
	srv.Handle(methodSync, b.handleSync)
}

// admit checks an incoming RPC's epoch against ours and, when accepted,
// marks primary contact. It holds b.mu for the duration of fn.
func (b *Backup) admit(epoch uint64, fn func()) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.promoted || epoch < b.epoch {
		if b.opts.Counters != nil {
			b.opts.Counters.Inc(metrics.CounterReplFenced)
		}
		return ErrFenced
	}
	if epoch > b.epoch {
		// A newer primary adopted us (rejoin after our own demotion).
		b.epoch = epoch
	}
	b.lastContact = b.opts.Clock.Now()
	if fn != nil {
		fn()
	}
	return nil
}

func (b *Backup) handleAppend(arg interface{}) (interface{}, error) {
	a, ok := arg.(appendArgs)
	if !ok {
		return nil, fmt.Errorf("replica: bad append args %T", arg)
	}
	b.applyMu.Lock()
	defer b.applyMu.Unlock()

	var applied uint64
	var synced bool
	if err := b.admit(a.Epoch, func() { applied, synced = b.applied, b.synced }); err != nil {
		return nil, err
	}
	if !synced {
		return nil, ErrOutOfSync // never initialized: need the snapshot first
	}
	// Trim records the backup already holds (a re-shipped batch after a
	// lost reply); a gap means the stream diverged and needs a re-sync.
	recs := a.Records
	from := a.From
	if from <= applied {
		overlap := applied - from + 1
		if overlap >= uint64(len(recs)) {
			return appendReply{Applied: applied}, nil
		}
		recs = recs[overlap:]
		from = applied + 1
	}
	if from > applied+1 {
		return nil, ErrOutOfSync
	}
	for i, rec := range recs {
		if err := b.applier.Apply(rec); err != nil {
			return nil, fmt.Errorf("replica: apply record %d: %w", from+uint64(i), err)
		}
	}
	last := from + uint64(len(recs)) - 1
	b.mu.Lock()
	if last > b.applied {
		b.applied = last
	}
	if last > b.primarySeq {
		b.primarySeq = last
	}
	applied = b.applied
	b.mu.Unlock()
	return appendReply{Applied: applied}, nil
}

func (b *Backup) handleHeartbeat(arg interface{}) (interface{}, error) {
	a, ok := arg.(heartbeatArgs)
	if !ok {
		return nil, fmt.Errorf("replica: bad heartbeat args %T", arg)
	}
	var applied uint64
	err := b.admit(a.Epoch, func() {
		if a.Seq > b.primarySeq {
			b.primarySeq = a.Seq
		}
		applied = b.applied
	})
	if err != nil {
		return nil, err
	}
	return appendReply{Applied: applied}, nil
}

func (b *Backup) handleSync(arg interface{}) (interface{}, error) {
	a, ok := arg.(syncArgs)
	if !ok {
		return nil, fmt.Errorf("replica: bad sync args %T", arg)
	}
	b.applyMu.Lock()
	defer b.applyMu.Unlock()

	if err := b.admit(a.Epoch, nil); err != nil {
		return nil, err
	}
	b.applier.Reset()
	for i, rec := range a.Records {
		if err := b.applier.Apply(rec); err != nil {
			return nil, fmt.Errorf("replica: apply snapshot record %d: %w", i, err)
		}
	}
	b.mu.Lock()
	b.applied = a.Seq
	b.primarySeq = a.Seq
	b.synced = true
	b.mu.Unlock()
	return appendReply{Applied: a.Seq}, nil
}

// --- failure detection and promotion ---

// Run is the monitor: a clock process that promotes the backup when the
// primary's heartbeat stream goes silent for FailoverTimeout, or sooner
// when the primary's lookup-registration lease lapses. Returns after
// promotion or Stop.
func (b *Backup) Run() {
	for {
		b.mu.Lock()
		if b.quit || b.promoted {
			b.mu.Unlock()
			return
		}
		w := b.opts.Clock.NewWaiter()
		b.stop = w
		b.mu.Unlock()

		woken := w.Wait(b.opts.CheckEvery)

		b.mu.Lock()
		b.stop = nil
		done := b.quit || b.promoted
		silent := b.opts.Clock.Since(b.lastContact) >= b.opts.FailoverTimeout
		b.mu.Unlock()
		if done || woken {
			return
		}
		leaseGone := b.opts.LeaseExpired != nil && b.opts.LeaseExpired()
		if silent || leaseGone {
			if b.opts.OnEvent != nil {
				reason := "heartbeat silent"
				if leaseGone {
					reason = "lease expired"
				}
				b.opts.OnEvent("detect", reason)
			}
			b.Promote()
			return
		}
	}
}

// Stop terminates the monitor without promoting (shutdown path).
func (b *Backup) Stop() {
	b.mu.Lock()
	b.quit = true
	w := b.stop
	b.mu.Unlock()
	if w != nil {
		w.Wake()
	}
}

// Promote flips the backup to primary at epoch+1: replication RPCs from
// the deposed primary are fenced from this point on, and OnPromote wires
// the node into the serving path. It reports the resulting epoch and
// whether this call performed the flip.
func (b *Backup) Promote() (uint64, bool) {
	b.applyMu.Lock()
	defer b.applyMu.Unlock()
	b.mu.Lock()
	if b.promoted {
		epoch := b.epoch
		b.mu.Unlock()
		return epoch, false
	}
	b.promoted = true
	b.epoch++
	epoch := b.epoch
	w := b.stop
	b.mu.Unlock()
	if w != nil {
		w.Wake() // unpark the monitor so it exits promptly
	}
	if b.opts.Counters != nil {
		b.opts.Counters.Inc(metrics.CounterReplPromotions)
	}
	if b.opts.OnPromote != nil {
		b.opts.OnPromote(epoch)
	}
	return epoch, true
}

// --- accessors ---

// Promoted reports whether the role flip has happened.
func (b *Backup) Promoted() bool { b.mu.Lock(); defer b.mu.Unlock(); return b.promoted }

// Epoch returns the backup's current epoch.
func (b *Backup) Epoch() uint64 { b.mu.Lock(); defer b.mu.Unlock(); return b.epoch }

// Applied returns the last primary sequence number applied locally.
func (b *Backup) Applied() uint64 { b.mu.Lock(); defer b.mu.Unlock(); return b.applied }

// Lag returns how many primary records are known but not yet applied.
func (b *Backup) Lag() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.primarySeq < b.applied {
		return 0
	}
	return b.primarySeq - b.applied
}

// Applier exposes the record applier (promotion glue prunes it).
func (b *Backup) Applier() *tuplespace.Applier { return b.applier }

// Local returns the backup's space adapter (the promotion glue binds the
// space service around it).
func (b *Backup) Local() *space.Local { return b.local }
