package space

import (
	"testing"
	"time"

	"gospaces/internal/tuplespace"
)

func TestBulkOpsAcrossBindings(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			defer h.done()
			s := h.space
			for i := 1; i <= 6; i++ {
				if _, err := s.Write(job{Name: "bulk", ID: ip(i)}, nil, tuplespace.Forever); err != nil {
					t.Fatal(err)
				}
			}
			read, err := s.ReadAll(job{Name: "bulk"}, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(read) != 6 {
				t.Fatalf("ReadAll = %d, want 6", len(read))
			}
			some, err := s.TakeAll(job{Name: "bulk"}, nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(some) != 2 {
				t.Fatalf("TakeAll(max=2) = %d", len(some))
			}
			rest, err := s.TakeAll(job{Name: "bulk"}, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 4 {
				t.Fatalf("TakeAll(rest) = %d, want 4", len(rest))
			}
			if n, _ := s.Count(job{Name: "bulk"}); n != 0 {
				t.Fatalf("count = %d after draining", n)
			}
		})
	}
}

func TestBulkUnderTxnAcrossBindings(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			defer h.done()
			s := h.space
			for i := 1; i <= 3; i++ {
				if _, err := s.Write(job{Name: "bt", ID: ip(i)}, nil, tuplespace.Forever); err != nil {
					t.Fatal(err)
				}
			}
			tx, err := s.BeginTxn(time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.TakeAll(job{Name: "bt"}, tx, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 3 {
				t.Fatalf("TakeAll under txn = %d", len(got))
			}
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Count(job{Name: "bt"}); n != 3 {
				t.Fatalf("count after abort = %d, want 3", n)
			}
		})
	}
}
