package space

import (
	"errors"
	"testing"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

type job struct {
	Name string
	ID   *int
	Data []float64
}

func init() { transport.RegisterType(job{}) }

func ip(i int) *int { return &i }

// harness builds a Service plus a connected Space for each binding.
type harness struct {
	name  string
	space Space
	done  func()
}

func harnesses(t *testing.T) []harness {
	t.Helper()
	var hs []harness

	clk := vclock.NewReal()

	// Local binding.
	hs = append(hs, harness{name: "local", space: NewLocal(clk), done: func() {}})

	// In-proc network binding.
	local2 := NewLocal(clk)
	srv2 := transport.NewServer()
	NewService(local2, srv2)
	net := transport.NewNetwork(clk, transport.Loopback())
	net.Listen("space", srv2)
	hs = append(hs, harness{name: "inproc", space: NewProxy(net.Dial("space")), done: func() {}})

	// TCP binding.
	local3 := NewLocal(clk)
	srv3 := transport.NewServer()
	NewService(local3, srv3)
	l, err := transport.ListenTCP("127.0.0.1:0", srv3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := transport.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hs = append(hs, harness{name: "tcp", space: NewProxy(c), done: func() { c.Close(); l.Close() }})
	return hs
}

func TestRoundTripAllBindings(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			defer h.done()
			s := h.space
			if _, err := s.Write(job{Name: "a", ID: ip(1), Data: []float64{1, 2}}, nil, tuplespace.Forever); err != nil {
				t.Fatal(err)
			}
			got, err := s.Take(job{Name: "a"}, nil, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			j := got.(job)
			if *j.ID != 1 || len(j.Data) != 2 {
				t.Fatalf("got %+v", j)
			}
			if _, err := s.TakeIfExists(job{Name: "a"}, nil); !errors.Is(err, tuplespace.ErrNoMatch) {
				t.Fatalf("err = %v, want ErrNoMatch", err)
			}
		})
	}
}

func TestTimeoutMapsAcrossBindings(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			defer h.done()
			_, err := h.space.Take(job{Name: "none"}, nil, 20*time.Millisecond)
			if !errors.Is(err, tuplespace.ErrTimeout) {
				t.Fatalf("err = %v, want ErrTimeout", err)
			}
		})
	}
}

func TestTxnAcrossBindings(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			defer h.done()
			s := h.space
			if _, err := s.Write(job{Name: "t", ID: ip(7)}, nil, tuplespace.Forever); err != nil {
				t.Fatal(err)
			}
			tx, err := s.BeginTxn(0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Take(job{Name: "t"}, tx, time.Second); err != nil {
				t.Fatal(err)
			}
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
			// Task reappears after abort.
			if n, _ := s.Count(job{Name: "t"}); n != 1 {
				t.Fatalf("count after abort = %d, want 1", n)
			}
			tx2, err := s.BeginTxn(0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Take(job{Name: "t"}, tx2, time.Second); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Count(job{Name: "t"}); n != 0 {
				t.Fatalf("count after commit = %d, want 0", n)
			}
			// Using a completed txn fails with the mapped sentinel.
			if _, err := s.Write(job{Name: "x"}, tx2, tuplespace.Forever); !errors.Is(err, tuplespace.ErrTxnInactive) {
				t.Fatalf("err = %v, want ErrTxnInactive", err)
			}
		})
	}
}

func TestLeaseAcrossBindings(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			defer h.done()
			s := h.space
			l, err := s.Write(job{Name: "l"}, nil, time.Hour)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Renew(2 * time.Hour); err != nil {
				t.Fatal(err)
			}
			if err := l.Cancel(); err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Count(job{Name: "l"}); n != 0 {
				t.Fatalf("count after cancel = %d", n)
			}
			if err := l.Cancel(); !errors.Is(err, tuplespace.ErrLeaseExpired) {
				t.Fatalf("double cancel err = %v", err)
			}
		})
	}
}

func TestForeignTxnRejected(t *testing.T) {
	clk := vclock.NewReal()
	l := NewLocal(clk)
	srv := transport.NewServer()
	NewService(l, srv)
	net := transport.NewNetwork(clk, transport.Loopback())
	net.Listen("s", srv)
	p := NewProxy(net.Dial("s"))

	ltx, _ := l.BeginTxn(0)
	if _, err := p.Write(job{}, ltx, tuplespace.Forever); !errors.Is(err, ErrBadTxn) {
		t.Fatalf("err = %v, want ErrBadTxn", err)
	}
	ptx, _ := p.BeginTxn(0)
	if _, err := l.Write(job{}, ptx, tuplespace.Forever); !errors.Is(err, ErrBadTxn) {
		t.Fatalf("err = %v, want ErrBadTxn", err)
	}
}

func TestBlockingTakeOverTCPWokenByRemoteWrite(t *testing.T) {
	clk := vclock.NewReal()
	local := NewLocal(clk)
	srv := transport.NewServer()
	NewService(local, srv)
	l, err := transport.ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c1, err := transport.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := transport.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	taker, writer := NewProxy(c1), NewProxy(c2)

	got := make(chan tuplespace.Entry, 1)
	errc := make(chan error, 1)
	go func() {
		e, err := taker.Take(job{Name: "x"}, nil, 5*time.Second)
		if err != nil {
			errc <- err
			return
		}
		got <- e
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := writer.Write(job{Name: "x", ID: ip(3)}, nil, tuplespace.Forever); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if *e.(job).ID != 3 {
			t.Fatalf("got %+v", e)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("cross-connection wakeup never happened")
	}
}

func TestVirtualClockInprocSpace(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	local := NewLocal(clk)
	srv := transport.NewServer()
	NewService(local, srv)
	net := transport.NewNetwork(clk, transport.Model{Latency: 5 * time.Millisecond})
	net.Listen("space", srv)

	var elapsed time.Duration
	clk.Run(func() {
		p := NewProxy(net.Dial("space"))
		start := clk.Now()
		clk.Go(func() {
			clk.Sleep(50 * time.Millisecond)
			q := NewProxy(net.Dial("space"))
			if _, err := q.Write(job{Name: "v", ID: ip(1)}, nil, tuplespace.Forever); err != nil {
				t.Error(err)
			}
		})
		if _, err := p.Take(job{Name: "v"}, nil, time.Second); err != nil {
			t.Error(err)
		}
		elapsed = clk.Since(start)
	})
	// Take issued at t=0 (arrives at space at t=5ms), write lands at
	// t=50+5=55ms, response hop 5ms → 60ms total.
	if elapsed != 60*time.Millisecond {
		t.Fatalf("elapsed %v, want 60ms", elapsed)
	}
}
