package space

import (
	"time"

	"gospaces/internal/tuplespace"
)

// Exactly-once support. Space implementations that can carry a
// client-minted idempotency token (tuplespace.OpToken) on their mutations
// implement the optional Token* interfaces below; the shard router
// attaches one token per logical mutation and retries with the same
// token, and the server side deduplicates against its memo table. The
// package-level helper functions dispatch through the optional interface
// and fall back to the plain methods, so token-oblivious implementations
// (and zero tokens) behave exactly as before.

// TokenMutator is implemented by Spaces that attach idempotency tokens to
// their effectful operations.
type TokenMutator interface {
	WriteTok(e tuplespace.Entry, t Txn, ttl time.Duration, tok tuplespace.OpToken) (Lease, error)
	TakeTok(tmpl tuplespace.Entry, t Txn, timeout time.Duration, tok tuplespace.OpToken) (tuplespace.Entry, error)
	TakeIfExistsTok(tmpl tuplespace.Entry, t Txn, tok tuplespace.OpToken) (tuplespace.Entry, error)
	TakeAllTok(tmpl tuplespace.Entry, t Txn, max int, tok tuplespace.OpToken) ([]tuplespace.Entry, error)
}

// TokenTxn is implemented by transaction handles whose commit/abort can
// carry a token, protecting the commit RPC itself against reply loss.
type TokenTxn interface {
	CommitTok(tok tuplespace.OpToken) error
	AbortTok(tok tuplespace.OpToken) error
}

// TokenLease is implemented by leases whose cancel can carry a token.
type TokenLease interface {
	CancelTok(tok tuplespace.OpToken) error
}

// WriteTok writes through sp, attaching tok when sp supports tokens.
func WriteTok(sp Space, e tuplespace.Entry, t Txn, ttl time.Duration, tok tuplespace.OpToken) (Lease, error) {
	if tm, ok := sp.(TokenMutator); ok && !tok.Zero() {
		return tm.WriteTok(e, t, ttl, tok)
	}
	return sp.Write(e, t, ttl)
}

// TakeTok takes through sp, attaching tok when sp supports tokens.
func TakeTok(sp Space, tmpl tuplespace.Entry, t Txn, timeout time.Duration, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	if tm, ok := sp.(TokenMutator); ok && !tok.Zero() {
		return tm.TakeTok(tmpl, t, timeout, tok)
	}
	return sp.Take(tmpl, t, timeout)
}

// TakeIfExistsTok is the non-blocking TakeTok.
func TakeIfExistsTok(sp Space, tmpl tuplespace.Entry, t Txn, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	if tm, ok := sp.(TokenMutator); ok && !tok.Zero() {
		return tm.TakeIfExistsTok(tmpl, t, tok)
	}
	return sp.TakeIfExists(tmpl, t)
}

// TakeAllTok is the bulk TakeTok.
func TakeAllTok(sp Space, tmpl tuplespace.Entry, t Txn, max int, tok tuplespace.OpToken) ([]tuplespace.Entry, error) {
	if tm, ok := sp.(TokenMutator); ok && !tok.Zero() {
		return tm.TakeAllTok(tmpl, t, max, tok)
	}
	return sp.TakeAll(tmpl, t, max)
}

// CommitTok commits t, attaching tok when the handle supports tokens.
func CommitTok(t Txn, tok tuplespace.OpToken) error {
	if tt, ok := t.(TokenTxn); ok && !tok.Zero() {
		return tt.CommitTok(tok)
	}
	return t.Commit()
}

// AbortTok aborts t, attaching tok when the handle supports tokens.
func AbortTok(t Txn, tok tuplespace.OpToken) error {
	if tt, ok := t.(TokenTxn); ok && !tok.Zero() {
		return tt.AbortTok(tok)
	}
	return t.Abort()
}

// CancelTok cancels l, attaching tok when the lease supports tokens.
func CancelTok(l Lease, tok tuplespace.OpToken) error {
	if tl, ok := l.(TokenLease); ok && !tok.Zero() {
		return tl.CancelTok(tok)
	}
	return l.Cancel()
}

// RebindTxn re-addresses transaction t through sp — the failover path for
// a tokened commit/abort retry: the original primary is gone, but the
// promoted backup's memo table knows whether the commit executed, and its
// service answers a retried commit carrying the same token and txn id
// from that memo (an unknown txn with no memo still surfaces
// ErrTxnInactive: the transaction genuinely died with the primary). Only
// proxy transactions rebind; for any other handle RebindTxn returns nil
// and the caller must surface the original error.
func RebindTxn(sp Space, t Txn) Txn {
	pt, ok := t.(*proxyTxn)
	if !ok {
		return nil
	}
	np, ok := sp.(*Proxy)
	if !ok {
		return nil
	}
	return &proxyTxn{p: np, id: pt.id}
}

// --- Local token support ---

// WriteTok implements TokenMutator.
func (l *Local) WriteTok(e tuplespace.Entry, t Txn, ttl time.Duration, tok tuplespace.OpToken) (Lease, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.WriteTok(e, tx, ttl, tok)
}

// TakeTok implements TokenMutator.
func (l *Local) TakeTok(tmpl tuplespace.Entry, t Txn, timeout time.Duration, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.TakeTok(tmpl, tx, timeout, tok)
}

// TakeIfExistsTok implements TokenMutator.
func (l *Local) TakeIfExistsTok(tmpl tuplespace.Entry, t Txn, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.TakeIfExistsTok(tmpl, tx, tok)
}

// TakeAllTok implements TokenMutator.
func (l *Local) TakeAllTok(tmpl tuplespace.Entry, t Txn, max int, tok tuplespace.OpToken) ([]tuplespace.Entry, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.TakeAllTok(tmpl, tx, max, tok)
}

var _ TokenMutator = (*Local)(nil)

// --- Proxy token support ---

// WriteTok implements TokenMutator: the token rides the RPC frame.
func (p *Proxy) WriteTok(e tuplespace.Entry, t Txn, ttl time.Duration, tok tuplespace.OpToken) (Lease, error) {
	id, err := p.txnID(t)
	if err != nil {
		return nil, err
	}
	res, err := p.call("space.Write", writeArgs{Entry: e, TxnID: id, TTL: ttl, Tok: tok}, 0, false)
	if err != nil {
		return nil, mapRemote(err)
	}
	return &proxyLease{p: p, id: res.(writeReply).LeaseID}, nil
}

// TakeTok implements TokenMutator.
func (p *Proxy) TakeTok(tmpl tuplespace.Entry, t Txn, timeout time.Duration, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	return p.lookupTok("space.Take", tmpl, t, timeout, tok)
}

// TakeIfExistsTok implements TokenMutator.
func (p *Proxy) TakeIfExistsTok(tmpl tuplespace.Entry, t Txn, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	return p.lookupTok("space.TakeIfExists", tmpl, t, 0, tok)
}

// TakeAllTok implements TokenMutator.
func (p *Proxy) TakeAllTok(tmpl tuplespace.Entry, t Txn, max int, tok tuplespace.OpToken) ([]tuplespace.Entry, error) {
	id, err := p.txnID(t)
	if err != nil {
		return nil, err
	}
	res, err := p.call("space.TakeAll", lookupArgs{Tmpl: tmpl, TxnID: id, Max: max, Tok: tok}, 0, false)
	if err != nil {
		return nil, mapRemote(err)
	}
	raw := res.(bulkReply).Entries
	out := make([]tuplespace.Entry, len(raw))
	for i, e := range raw {
		out[i] = e
	}
	return out, nil
}

func (p *Proxy) lookupTok(method string, tmpl tuplespace.Entry, t Txn, timeout time.Duration, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	id, err := p.txnID(t)
	if err != nil {
		return nil, err
	}
	blocking := method == "space.Take"
	res, err := p.call(method, lookupArgs{Tmpl: tmpl, TxnID: id, Timeout: timeout, Tok: tok}, timeout, blocking && timeout <= 0)
	if err != nil {
		return nil, mapRemote(err)
	}
	return res.(lookupReply).Entry, nil
}

var _ TokenMutator = (*Proxy)(nil)

// CommitTok implements TokenTxn.
func (t *proxyTxn) CommitTok(tok tuplespace.OpToken) error {
	_, err := t.p.call("space.TxnCommit", txnArgs{TxnID: t.id, Tok: tok}, 0, false)
	return mapRemote(err)
}

// AbortTok implements TokenTxn.
func (t *proxyTxn) AbortTok(tok tuplespace.OpToken) error {
	_, err := t.p.call("space.TxnAbort", txnArgs{TxnID: t.id, Tok: tok}, 0, false)
	return mapRemote(err)
}

var _ TokenTxn = (*proxyTxn)(nil)

// CancelTok implements TokenLease. The dedup covers reply-lost cancel
// retries against the same service: service lease ids do not survive
// failover, so a cancel retried across a promotion still surfaces
// ErrLeaseExpired (documented in DESIGN §7).
func (l *proxyLease) CancelTok(tok tuplespace.OpToken) error {
	_, err := l.p.call("space.LeaseCancel", leaseArgs{LeaseID: l.id, Tok: tok}, 0, false)
	return mapRemote(err)
}

var _ TokenLease = (*proxyLease)(nil)
