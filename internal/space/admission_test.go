package space

import (
	"errors"
	"testing"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// TestAdmissionInflightBound: the hard pending-op cap rejects the
// MaxInflight+1st op with ErrOverloaded and admits again once a slot
// frees.
func TestAdmissionInflightBound(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	var a Admission
	a.Configure(AdmissionConfig{Clock: clk, MaxInflight: 2})

	rel1, err := a.admit(time.Time{}, transport.PriHigh)
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	if _, err := a.admit(time.Time{}, transport.PriHigh); err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	if _, err := a.admit(time.Time{}, transport.PriHigh); !errors.Is(err, tuplespace.ErrOverloaded) {
		t.Fatalf("admit 3: err = %v, want ErrOverloaded", err)
	}
	rel1()
	if _, err := a.admit(time.Time{}, transport.PriHigh); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	v := a.Vitals()
	if v.Rejected != 1 || v.Admitted != 3 {
		t.Fatalf("vitals = %+v, want 1 rejection, 3 admissions", v)
	}
}

// TestAdmissionExpiredDeadline: an op whose client has already given up is
// rejected before execution with ErrDeadlineExpired.
func TestAdmissionExpiredDeadline(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	var a Admission
	a.Configure(AdmissionConfig{Clock: clk})

	past := clk.Now().Add(-time.Millisecond)
	if _, err := a.admit(past, transport.PriHigh); !errors.Is(err, tuplespace.ErrDeadlineExpired) {
		t.Fatalf("err = %v, want ErrDeadlineExpired", err)
	}
	if _, err := a.admit(clk.Now().Add(time.Second), transport.PriHigh); err != nil {
		t.Fatalf("live deadline rejected: %v", err)
	}
	if v := a.Vitals(); v.DeadlineExpired != 1 {
		t.Fatalf("vitals = %+v, want 1 expiry", v)
	}
}

// TestAdmissionBrownoutLevels walks the brownout state machine: sustained
// saturation sheds diagnostics first (level 1), then reads (level 2),
// mutations never; draining exits to level 0. Each transition reaches the
// flight sink.
func TestAdmissionBrownoutLevels(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	var transitions []string
	var a Admission
	a.Configure(AdmissionConfig{
		Clock:       clk,
		MaxInflight: 10,
		FlightSink:  func(d string) { transitions = append(transitions, d) },
	})

	clk.Run(func() {
		// Pin utilization at 0.9 with nine held slots, then probe over time.
		var held []func()
		for i := 0; i < 9; i++ {
			rel, err := a.admit(time.Time{}, transport.PriHigh)
			if err != nil {
				t.Fatalf("fill %d: %v", i, err)
			}
			held = append(held, rel)
		}
		probe := func(pri int) error {
			rel, err := a.admit(time.Time{}, pri)
			if err == nil {
				rel()
			}
			return err
		}
		if err := probe(transport.PriLow); err != nil {
			t.Fatalf("level 0 must admit diagnostics: %v", err)
		}
		clk.Sleep(300 * time.Millisecond) // past BrownoutAfter (250ms)
		if err := probe(transport.PriLow); !errors.Is(err, tuplespace.ErrOverloaded) {
			t.Fatalf("level 1 diagnostic: err = %v, want ErrOverloaded", err)
		}
		if a.Level() != 1 {
			t.Fatalf("level = %d, want 1", a.Level())
		}
		if err := probe(transport.PriNormal); err != nil {
			t.Fatalf("level 1 must still admit reads: %v", err)
		}
		clk.Sleep(300 * time.Millisecond) // past 2×BrownoutAfter total
		if err := probe(transport.PriNormal); !errors.Is(err, tuplespace.ErrOverloaded) {
			t.Fatalf("level 2 read: err = %v, want ErrOverloaded", err)
		}
		if a.Level() != 2 {
			t.Fatalf("level = %d, want 2", a.Level())
		}
		if err := probe(transport.PriHigh); err != nil {
			t.Fatalf("mutations must never be shed: %v", err)
		}

		// Drain: the next admit sees utilization at or under BrownoutExit
		// and leaves brownout, readmitting diagnostics.
		for _, rel := range held {
			rel()
		}
		if err := probe(transport.PriLow); err != nil {
			t.Fatalf("post-drain diagnostic: %v", err)
		}
		if a.Level() != 0 {
			t.Fatalf("level = %d after drain, want 0", a.Level())
		}
	})
	if v := a.Vitals(); v.Shed != 2 {
		t.Fatalf("vitals = %+v, want 2 shed", v)
	}
	want := []string{"level 1: shedding diagnostics", "level 2: shedding reads", "exit"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

// TestAdmissionFreesAbandonedWaiter is the waiter-leak regression test: a
// blocking Take whose frame spent its queue budget behind a slow gate must
// park only until the client's propagated deadline, not the full semantic
// timeout past its admission. The waiter slot frees when the client gives
// up instead of leaking for seconds.
func TestAdmissionFreesAbandonedWaiter(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	local := NewLocal(clk)
	srv := transport.NewServer()
	svc := NewService(local, srv)
	gate := transport.NewServiceGate(clk, 2*time.Second)
	svc.Admission().Configure(AdmissionConfig{Clock: clk, Gate: gate})
	net := transport.NewNetwork(clk, transport.Loopback())
	net.Listen("space", srv)

	slow := NewProxy(net.Dial("space")) // no deadline: admitted unconditionally
	deadlined := NewProxy(net.Dial("space")).WithOpTimeout(clk, 500*time.Millisecond)

	clk.Run(func() {
		g := vclock.NewGroup(clk)
		g.Go(func() { _, _ = slow.Count(job{}) }) // occupies the gate for [0s, 2s]
		clk.Sleep(10 * time.Millisecond)

		// Deadline = now + 500ms + 10s ≈ 10.51s. The gate releases the op at
		// 4s, so an unclamped waiter would park the full semantic 10s — until
		// 14s, 3.5s past the client's abandonment.
		_, err := deadlined.Take(job{Name: "missing"}, nil, 10*time.Second)
		if err == nil {
			t.Error("Take on an empty space returned an entry")
		}
		g.Wait()

		clk.Sleep(600 * time.Millisecond) // well past the deadline, well short of 14s
		if st := local.TS.Stats(); st.Waiting != 0 {
			t.Errorf("%d waiter(s) still parked after the client's deadline", st.Waiting)
		}
	})
}

// TestMaxWaitersBound: the blocked-waiter queue is bounded — the waiter
// that would exceed it fails fast with ErrOverloaded instead of parking,
// and a freed slot readmits.
func TestMaxWaitersBound(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	local := NewLocal(clk)
	local.TS.SetMaxWaiters(1)

	clk.Run(func() {
		g := vclock.NewGroup(clk)
		g.Go(func() {
			if _, err := local.Read(job{Name: "a"}, nil, time.Second); !errors.Is(err, tuplespace.ErrTimeout) {
				t.Errorf("parked read: err = %v, want ErrTimeout", err)
			}
		})
		clk.Sleep(10 * time.Millisecond)
		if _, err := local.Read(job{Name: "a"}, nil, time.Second); !errors.Is(err, tuplespace.ErrOverloaded) {
			t.Errorf("second waiter: err = %v, want ErrOverloaded", err)
		}
		g.Wait() // first waiter timed out: its slot is free again
		if _, err := local.Read(job{Name: "a"}, nil, 10*time.Millisecond); !errors.Is(err, tuplespace.ErrTimeout) {
			t.Errorf("readmitted waiter: err = %v, want ErrTimeout", err)
		}
		if st := local.TS.Stats(); st.Overloaded != 1 {
			t.Errorf("stats.Overloaded = %d, want 1", st.Overloaded)
		}
	})
}
