// Package space exposes a tuplespace.Space as a network service — the
// analogue of running JavaSpaces (Outrigger) as a Jini service — and
// defines the Space interface through which the framework's master and
// worker modules operate, so that the same code runs against a local
// space, an in-process simulated-network proxy, or a TCP proxy.
package space

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

// Txn is a transaction handle usable with Space operations.
type Txn interface {
	// Commit completes the transaction (two-phase commit at the service).
	Commit() error
	// Abort cancels the transaction, undoing provisional takes/writes.
	Abort() error
}

// Lease controls a written entry's lifetime.
type Lease interface {
	Renew(ttl time.Duration) error
	Cancel() error
}

// Space is the JavaSpaces API surface the framework uses.
type Space interface {
	// Write stores entry e under t (nil for none) with lease ttl
	// (tuplespace.Forever for none).
	Write(e tuplespace.Entry, t Txn, ttl time.Duration) (Lease, error)
	// Read returns a copy of a matching entry, waiting up to timeout.
	Read(tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error)
	// Take removes and returns a matching entry, waiting up to timeout.
	Take(tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error)
	// ReadIfExists / TakeIfExists are the non-blocking variants.
	ReadIfExists(tmpl tuplespace.Entry, t Txn) (tuplespace.Entry, error)
	TakeIfExists(tmpl tuplespace.Entry, t Txn) (tuplespace.Entry, error)
	// ReadAll / TakeAll are the JavaSpaces05-style bulk variants: up to
	// max matching entries without blocking (max <= 0 for no limit).
	ReadAll(tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error)
	TakeAll(tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error)
	// Count returns the number of public entries matching tmpl.
	Count(tmpl tuplespace.Entry) (int, error)
	// BeginTxn starts a transaction with the given lease.
	BeginTxn(ttl time.Duration) (Txn, error)
	// Close releases the client's connection (never the remote space).
	Close() error
}

// ErrBadTxn is returned when a transaction handle from a different Space
// implementation is supplied.
var ErrBadTxn = errors.New("space: transaction does not belong to this space")

// --- local adapter ---

// Local adapts an in-process tuplespace.Space (plus a transaction manager)
// to the Space interface. It is what the master module embeds: the master
// hosts the space and talks to it locally while everyone else goes through
// a proxy.
type Local struct {
	TS  *tuplespace.Space
	Mgr *txn.Manager
}

// NewLocal creates a fresh space and transaction manager on clock.
func NewLocal(clock vclock.Clock) *Local {
	return &Local{TS: tuplespace.New(clock), Mgr: txn.NewManager(clock)}
}

// NewLocalJournaled creates a Local whose space persists to the journal
// file at path — JavaSpaces' persistent mode. If the file already exists
// its surviving entries are restored, and a fresh compacted journal
// (containing the restored entries) atomically replaces it; subsequent
// mutations append to it.
func NewLocalJournaled(clock vclock.Clock, path string) (*Local, error) {
	l := NewLocal(clock)
	old, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("space: read journal: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("space: create journal: %w", err)
	}
	if err := l.TS.AttachJournal(tuplespace.NewJournal(f)); err != nil {
		f.Close()
		return nil, err
	}
	if len(old) > 0 {
		// Replaying with the fresh journal attached re-records the
		// surviving entries, compacting the log.
		if _, err := tuplespace.Replay(bytes.NewReader(old), l.TS); err != nil {
			f.Close()
			return nil, fmt.Errorf("space: replay %s: %w", path, err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		return nil, fmt.Errorf("space: install journal: %w", err)
	}
	return l, nil
}

type localTxn struct{ t *txn.Txn }

func (lt localTxn) Commit() error { return lt.t.Commit() }
func (lt localTxn) Abort() error  { return lt.t.Abort() }

func (l *Local) unwrap(t Txn) (*txn.Txn, error) {
	if t == nil {
		return nil, nil
	}
	lt, ok := t.(localTxn)
	if !ok {
		return nil, ErrBadTxn
	}
	return lt.t, nil
}

// Write implements Space.
func (l *Local) Write(e tuplespace.Entry, t Txn, ttl time.Duration) (Lease, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.Write(e, tx, ttl)
}

// Read implements Space.
func (l *Local) Read(tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.Read(tmpl, tx, timeout)
}

// Take implements Space.
func (l *Local) Take(tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.Take(tmpl, tx, timeout)
}

// ReadIfExists implements Space.
func (l *Local) ReadIfExists(tmpl tuplespace.Entry, t Txn) (tuplespace.Entry, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.ReadIfExists(tmpl, tx)
}

// TakeIfExists implements Space.
func (l *Local) TakeIfExists(tmpl tuplespace.Entry, t Txn) (tuplespace.Entry, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.TakeIfExists(tmpl, tx)
}

// ReadAll implements Space.
func (l *Local) ReadAll(tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.ReadAll(tmpl, tx, max)
}

// TakeAll implements Space.
func (l *Local) TakeAll(tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error) {
	tx, err := l.unwrap(t)
	if err != nil {
		return nil, err
	}
	return l.TS.TakeAll(tmpl, tx, max)
}

// Count implements Space.
func (l *Local) Count(tmpl tuplespace.Entry) (int, error) { return l.TS.Count(tmpl) }

// Notify registers fn for entries matching tmpl arriving at the underlying
// space. The shard router relies on this to fan a registration out across
// shard-local spaces.
func (l *Local) Notify(tmpl tuplespace.Entry, fn tuplespace.Listener, ttl time.Duration) (*tuplespace.Registration, error) {
	return l.TS.Notify(tmpl, fn, ttl)
}

// TypeCounts reports live entries per type — the per-shard balance figure
// surfaced by the router and by operators.
func (l *Local) TypeCounts() (map[string]int, error) { return l.TS.TypeCounts(), nil }

// BeginTxn implements Space.
func (l *Local) BeginTxn(ttl time.Duration) (Txn, error) {
	return localTxn{t: l.Mgr.Begin(ttl)}, nil
}

// Close implements Space; closing the local adapter closes the space.
func (l *Local) Close() error {
	l.TS.Close()
	return nil
}

var _ Space = (*Local)(nil)

func init() {
	transport.RegisterType(writeArgs{})
	transport.RegisterType(lookupArgs{})
	transport.RegisterType(txnArgs{})
	transport.RegisterType(leaseArgs{})
	transport.RegisterType(writeReply{})
	transport.RegisterType(lookupReply{})
	transport.RegisterType(txnReply{})
	transport.RegisterType(countReply{})
	transport.RegisterType(bulkReply{})
	transport.RegisterType(countsReply{})
}
