package space

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gospaces/internal/faults"
	"gospaces/internal/metrics"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/wal"
)

func openDurable(t *testing.T, dir string, opts DurableOptions) (*Local, *Durable) {
	t.Helper()
	opts.Dir = dir
	l, d, err := NewLocalDurable(vclock.NewReal(), opts)
	if err != nil {
		t.Fatalf("NewLocalDurable(%s): %v", dir, err)
	}
	return l, d
}

// TestDurableCrashRestart is the stack-level crash test: entries written
// to a durable space survive an abrupt stop (no clean close) and a
// restart from the same data directory.
func TestDurableCrashRestart(t *testing.T) {
	dir := t.TempDir()
	l1, _ := openDurable(t, dir, DurableOptions{})
	for i := 1; i <= 5; i++ {
		if _, err := l1.Write(job{Name: "crash", ID: ip(i)}, nil, tuplespace.Forever); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := l1.Take(job{Name: "crash"}, nil, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: neither the space nor the Durable is closed. FsyncAlways
	// (the default) means every acknowledged record is already on disk.

	l2, d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if got := d2.Info().Restored; got != 3 {
		t.Fatalf("restored %d entries, want 3", got)
	}
	if n, _ := l2.Count(job{Name: "crash"}); n != 3 {
		t.Fatalf("count after restart = %d, want 3", n)
	}
	// The recovered space keeps persisting: drain, restart, empty.
	if _, err := l2.TakeAll(job{Name: "crash"}, nil, 0); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	d2.Close()

	l3, d3 := openDurable(t, dir, DurableOptions{})
	defer d3.Close()
	if n, _ := l3.Count(job{Name: "crash"}); n != 0 {
		t.Fatalf("count after drain+restart = %d, want 0", n)
	}
}

// TestDurableTornTailRecovers: a crash mid-append leaves a half-written
// final record; the stack recovers everything before it by truncation.
func TestDurableTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	l1, _ := openDurable(t, dir, DurableOptions{})
	for i := 1; i <= 4; i++ {
		if _, err := l1.Write(job{Name: "torn", ID: ip(i)}, nil, tuplespace.Forever); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the last record: chop bytes off the only segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, found %v", segs)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	c := metrics.NewCounters()
	l2, d2 := openDurable(t, dir, DurableOptions{Counters: c})
	defer d2.Close()
	if got := d2.Info().Restored; got != 3 {
		t.Fatalf("restored %d entries, want 3 (torn 4th truncated)", got)
	}
	if d2.Info().TruncatedBytes == 0 || c.Get(wal.CounterTruncatedBytes) == 0 {
		t.Fatal("truncation not surfaced in RecoveryInfo/counters")
	}
	if n, _ := l2.Count(job{Name: "torn"}); n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
}

// TestDurableSnapshotBoundsReplay: after a snapshot, recovery replays the
// snapshot plus only post-snapshot records — the metrics-asserted
// acceptance criterion, at the space level.
func TestDurableSnapshotBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	l1, d1 := openDurable(t, dir, DurableOptions{SnapshotBytes: -1})
	// Churn: 50 writes, 40 takes → 90 log records, 10 live entries.
	for i := 0; i < 50; i++ {
		if _, err := l1.Write(job{Name: "churn", ID: ip(i)}, nil, tuplespace.Forever); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := l1.Take(job{Name: "churn"}, nil, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Two more mutations after the snapshot.
	if _, err := l1.Write(job{Name: "churn", ID: ip(100)}, nil, tuplespace.Forever); err != nil {
		t.Fatal(err)
	}
	if _, err := l1.Take(job{Name: "churn"}, nil, time.Second); err != nil {
		t.Fatal(err)
	}
	l1.Close()
	d1.Close()

	c := metrics.NewCounters()
	l2, d2 := openDurable(t, dir, DurableOptions{Counters: c})
	defer d2.Close()
	info := d2.Info()
	if info.Restored != 10 {
		t.Fatalf("restored %d, want 10", info.Restored)
	}
	if info.SnapshotRecords != 10 {
		t.Fatalf("snapshot records = %d, want 10 (the live set)", info.SnapshotRecords)
	}
	if info.TailRecords != 2 {
		t.Fatalf("tail records = %d, want 2 — pre-snapshot history replayed", info.TailRecords)
	}
	if got := c.Get(wal.CounterTailRestored); got != 2 {
		t.Fatalf("%s = %d, want 2", wal.CounterTailRestored, got)
	}
	if n, _ := l2.Count(job{Name: "churn"}); n != 10 {
		t.Fatalf("count = %d, want 10", n)
	}
}

// TestDurableAutoSnapshotCompacts: crossing the SnapshotBytes threshold
// triggers the background snapshot, which compacts old segments.
func TestDurableAutoSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	c := metrics.NewCounters()
	l1, d1 := openDurable(t, dir, DurableOptions{
		SegmentSize:   512,
		SnapshotBytes: 2048,
		Counters:      c,
	})
	for i := 0; i < 200; i++ {
		if _, err := l1.Write(job{Name: "auto", ID: ip(i)}, nil, tuplespace.Forever); err != nil {
			t.Fatal(err)
		}
		if _, err := l1.Take(job{Name: "auto", ID: ip(i)}, nil, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	l1.Close()
	d1.Close() // waits for any in-flight background snapshot
	if got := c.Get(wal.CounterSnapshots); got == 0 {
		t.Fatal("background snapshot never triggered despite threshold churn")
	}
	if got := c.Get(wal.CounterSegmentsCompacted); got == 0 {
		t.Fatal("snapshots never compacted any segment")
	}
	// All 200 entries were taken: recovery restores none.
	_, d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if got := d2.Info().Restored; got != 0 {
		t.Fatalf("restored %d, want 0 (all entries taken)", got)
	}
}

// TestDurableStrictDiskErrorFailsLoudly wires the fault layer's disk
// injection through the whole stack: a scripted WAL write failure makes
// the strict space return the injected error and nothing is lost
// silently — the tentpole's "strict mode fails writes loudly" property.
func TestDurableStrictDiskErrorFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	clk := vclock.NewReal()
	plan := faults.NewPlan(1)
	plan.Bind(clk)
	disk := faults.DiskEndpoint("shard0")
	// The 2nd WAL write fails — first entry lands, second is rejected.
	plan.DropNthCall("", disk, faults.MethodDiskWrite, 2)

	c := metrics.NewCounters()
	l, d, err := NewLocalDurable(clk, DurableOptions{
		Dir:        dir,
		Strict:     true,
		Counters:   c,
		WrapWriter: func(w io.Writer) io.Writer { return plan.WrapWriter(disk, w) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if _, err := l.Write(job{Name: "strict", ID: ip(1)}, nil, tuplespace.Forever); err != nil {
		t.Fatalf("first write: %v", err)
	}
	_, err = l.Write(job{Name: "strict", ID: ip(2)}, nil, tuplespace.Forever)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("second write error = %v, want the injected disk failure", err)
	}
	if n, _ := l.Count(job{Name: "strict"}); n != 1 {
		t.Fatalf("count = %d, want 1 (unlogged write must not be visible)", n)
	}
	if got := c.Get(tuplespace.CounterJournalErrors); got != 1 {
		t.Fatalf("%s = %d, want 1", tuplespace.CounterJournalErrors, got)
	}
	if got := plan.Counters().Get(faults.EventDrop); got != 1 {
		t.Fatalf("fault layer drop count = %d, want 1", got)
	}
	// Disk healed (rule was nth=2, one-shot): the write goes through and
	// is durable.
	if _, err := l.Write(job{Name: "strict", ID: ip(3)}, nil, tuplespace.Forever); err != nil {
		t.Fatalf("write after injected failure: %v", err)
	}
	l.Close()
	d.Close()
	l2, d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if n, _ := l2.Count(job{Name: "strict"}); n != 2 {
		t.Fatalf("recovered count = %d, want 2 (entries 1 and 3)", n)
	}
}
