package space

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

func TestNewLocalJournaledSurvivesRestart(t *testing.T) {
	clk := vclock.NewReal()
	path := filepath.Join(t.TempDir(), "space.log")

	// First incarnation: write four, take one.
	l1, err := NewLocalJournaled(clk, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := l1.Write(job{Name: "persist", ID: ip(i)}, nil, tuplespace.Forever); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l1.Take(job{Name: "persist"}, nil, time.Second); err != nil {
		t.Fatal(err)
	}
	_ = l1.Close()

	// Restart: the three survivors are back.
	l2, err := NewLocalJournaled(clk, path)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := l2.Count(job{Name: "persist"}); n != 3 {
		t.Fatalf("count after restart = %d, want 3", n)
	}
	// Mutations keep persisting: take all, restart again, empty.
	if _, err := l2.TakeAll(job{Name: "persist"}, nil, 0); err != nil {
		t.Fatal(err)
	}
	_ = l2.Close()

	l3, err := NewLocalJournaled(clk, path)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := l3.Count(job{Name: "persist"}); n != 0 {
		t.Fatalf("count after drain+restart = %d, want 0", n)
	}
}

func TestNewLocalJournaledFreshFile(t *testing.T) {
	clk := vclock.NewReal()
	path := filepath.Join(t.TempDir(), "fresh.log")
	l, err := NewLocalJournaled(clk, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write(job{Name: "x"}, nil, tuplespace.Forever); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file missing: %v", err)
	}
}

func TestNewLocalJournaledRejectsCorruptLog(t *testing.T) {
	clk := vclock.NewReal()
	path := filepath.Join(t.TempDir(), "corrupt.log")
	if err := os.WriteFile(path, []byte("this is not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLocalJournaled(clk, path); err == nil {
		t.Fatal("corrupt journal accepted")
	}
}
