package space

import (
	"errors"
	"testing"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// TestStaleTxnIDDoesNotAliasAcrossServices pins the incarnation
// namespacing of wire txn ids. Two services in one process each mint
// their transactions from a per-node counter starting at 1; before the
// ids were incarnation-qualified, a commit retried against a promoted
// replacement (the RebindTxn failover path) could resolve an UNRELATED
// fresh transaction that happened to share the same sequence number and
// commit it — consuming its take locks with no writes published. The
// stale id must instead surface ErrTxnInactive at the replacement,
// leaving the replacement's own transactions untouched.
func TestStaleTxnIDDoesNotAliasAcrossServices(t *testing.T) {
	clk := vclock.NewReal()
	net := transport.NewNetwork(clk, transport.Loopback())

	dead := NewLocal(clk)
	srvA := transport.NewServer()
	NewService(dead, srvA)
	net.Listen("dead", srvA)
	pa := NewProxy(net.Dial("dead"))

	promoted := NewLocal(clk)
	srvB := transport.NewServer()
	NewService(promoted, srvB)
	net.Listen("promoted", srvB)
	pb := NewProxy(net.Dial("promoted"))

	// The transaction whose primary "dies": first txn minted at A.
	txA, err := pa.BeginTxn(time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// An unrelated in-flight transaction at the replacement, holding a
	// take lock. It shares A's per-node sequence number (both are the
	// first txn their manager minted).
	if _, err := pb.Write(job{Name: "held", ID: ip(1)}, nil, tuplespace.Forever); err != nil {
		t.Fatal(err)
	}
	txB, err := pb.BeginTxn(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Take(job{Name: "held"}, txB, time.Second); err != nil {
		t.Fatal(err)
	}

	// Failover retry: re-address txA's wire id at the replacement and
	// commit with a token, exactly as shard.retryFinish does.
	nt := RebindTxn(pb, txA)
	if nt == nil {
		t.Fatal("RebindTxn returned nil for proxy txn")
	}
	err = CommitTok(nt, tuplespace.OpToken{Client: "test", Seq: 1})
	if !errors.Is(err, tuplespace.ErrTxnInactive) {
		t.Fatalf("stale commit err = %v, want ErrTxnInactive", err)
	}

	// txB must be unaffected: its take lock still held (entry invisible
	// to others), and it must still abort cleanly, republishing.
	if n, _ := pb.Count(job{Name: "held"}); n != 0 {
		t.Fatalf("take-locked entry visible outside txn: count = %d", n)
	}
	if err := txB.Abort(); err != nil {
		t.Fatalf("victim txn no longer active: %v", err)
	}
	if n, _ := pb.Count(job{Name: "held"}); n != 1 {
		t.Fatalf("entry lost after abort: count = %d, want 1", n)
	}
}

// TestStaleLeaseIDDoesNotAliasAcrossServices is the lease-side twin:
// service lease ids are minted per node from 1, so a cancel retried
// against a replacement must see ErrLeaseExpired — never cancel an
// unrelated lease that shares the sequence number.
func TestStaleLeaseIDDoesNotAliasAcrossServices(t *testing.T) {
	clk := vclock.NewReal()
	net := transport.NewNetwork(clk, transport.Loopback())

	dead := NewLocal(clk)
	srvA := transport.NewServer()
	NewService(dead, srvA)
	net.Listen("dead2", srvA)
	pa := NewProxy(net.Dial("dead2"))

	promoted := NewLocal(clk)
	srvB := transport.NewServer()
	NewService(promoted, srvB)
	net.Listen("promoted2", srvB)
	pb := NewProxy(net.Dial("promoted2"))

	// First lease minted at each service: same sequence number.
	la, err := pa.Write(job{Name: "a", ID: ip(1)}, nil, tuplespace.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Write(job{Name: "b", ID: ip(2)}, nil, tuplespace.Forever); err != nil {
		t.Fatal(err)
	}

	// Re-address A's lease handle at B, as a failover retry would.
	pl, ok := la.(*proxyLease)
	if !ok {
		t.Fatalf("lease is %T, want *proxyLease", la)
	}
	stale := &proxyLease{p: pb, id: pl.id}
	if err := stale.CancelTok(tuplespace.OpToken{Client: "test", Seq: 2}); !errors.Is(err, tuplespace.ErrLeaseExpired) {
		t.Fatalf("stale cancel err = %v, want ErrLeaseExpired", err)
	}
	// B's own entry must still be present with its lease intact.
	if n, _ := pb.Count(job{Name: "b"}); n != 1 {
		t.Fatalf("unrelated entry cancelled: count = %d, want 1", n)
	}
}
