package space

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/txn"
)

// RPC argument and reply frames. Entries travel as any-typed payloads;
// concrete entry types must be registered with transport.RegisterType.
type writeArgs struct {
	Entry interface{}
	TxnID uint64 // 0 = none
	TTL   time.Duration
	Tok   tuplespace.OpToken // zero = no idempotency token
}

type writeReply struct {
	LeaseID uint64
}

type lookupArgs struct {
	Tmpl    interface{}
	TxnID   uint64
	Timeout time.Duration
	Max     int
	Tok     tuplespace.OpToken // zero = no idempotency token (takes only)
}

type lookupReply struct {
	Entry interface{}
}

type bulkReply struct {
	Entries []interface{}
}

type txnArgs struct {
	TxnID uint64
	TTL   time.Duration
	Tok   tuplespace.OpToken // commit/abort idempotency token
}

type txnReply struct {
	TxnID uint64
}

type leaseArgs struct {
	LeaseID uint64
	TTL     time.Duration
	Tok     tuplespace.OpToken // cancel idempotency token
}

type countReply struct {
	N int
}

type countsReply struct {
	Counts map[string]int
}

// svcIncarnation numbers Service instances within a process so the wire
// txn and lease IDs each instance mints live in disjoint namespaces. A
// retried commit/abort/cancel that carries an ID minted by a dead
// incarnation must surface unknown-txn / expired-lease at the promoted
// replacement — never resolve an unrelated fresh handle that happens to
// share the same small per-node sequence number (both managers count
// from 1, so bare sequence numbers alias across a failover).
var svcIncarnation atomic.Uint64

// Service exposes a Local space over a transport.Server. The master module
// runs one of these; workers and the network-management module reach it
// through Proxy.
type Service struct {
	local *Local
	// base is this incarnation's namespace tag, OR'd into the high bits
	// of every wire txn and lease ID the service hands out.
	base uint64
	// adm gates every handler: it unwraps the transport frame (deadline +
	// priority) and, once configured, enforces admission control. Always
	// installed so a framed argument never reaches a raw handler.
	adm Admission

	mu     sync.Mutex
	txns   map[uint64]*txn.Txn
	leases map[uint64]*tuplespace.EntryLease
	nextL  uint64
}

// NewService wraps local and registers its methods on srv under the
// "space." prefix. Every handler runs behind the service's admission
// controller (see Admission); an unconfigured controller just unwraps the
// RPC frame.
func NewService(local *Local, srv *transport.Server) *Service {
	s := &Service{
		local:  local,
		base:   svcIncarnation.Add(1) << 32,
		txns:   make(map[uint64]*txn.Txn),
		leases: make(map[uint64]*tuplespace.EntryLease),
		nextL:  1,
	}
	srv.Handle("space.Write", s.adm.wrap(s.write))
	srv.Handle("space.Read", s.adm.wrap(s.lookup(false, true)))
	srv.Handle("space.Take", s.adm.wrap(s.lookup(true, true)))
	srv.Handle("space.ReadIfExists", s.adm.wrap(s.lookup(false, false)))
	srv.Handle("space.TakeIfExists", s.adm.wrap(s.lookup(true, false)))
	srv.Handle("space.ReadAll", s.adm.wrap(s.bulk(false)))
	srv.Handle("space.TakeAll", s.adm.wrap(s.bulk(true)))
	srv.Handle("space.Count", s.adm.wrap(s.count))
	srv.Handle("space.TypeCounts", s.adm.wrap(s.typeCounts))
	srv.Handle("space.TxnBegin", s.adm.wrap(s.txnBegin))
	srv.Handle("space.TxnCommit", s.adm.wrap(s.txnCommit))
	srv.Handle("space.TxnAbort", s.adm.wrap(s.txnAbort))
	srv.Handle("space.LeaseRenew", s.adm.wrap(s.leaseRenew))
	srv.Handle("space.LeaseCancel", s.adm.wrap(s.leaseCancel))
	return s
}

// Admission returns the service's admission controller for configuration
// and /healthz vitals.
func (s *Service) Admission() *Admission { return &s.adm }

func (s *Service) resolveTxn(id uint64) (*txn.Txn, error) {
	if id == 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok {
		return nil, fmt.Errorf("space: unknown txn %d: %w", id, tuplespace.ErrTxnInactive)
	}
	return t, nil
}

func (s *Service) write(arg interface{}) (interface{}, error) {
	a, ok := arg.(writeArgs)
	if !ok {
		return nil, fmt.Errorf("space: bad write args %T", arg)
	}
	t, err := s.resolveTxn(a.TxnID)
	if err != nil {
		return nil, err
	}
	l, err := s.local.TS.WriteTok(a.Entry, t, a.TTL, a.Tok)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	id := s.base | s.nextL
	s.nextL++
	s.leases[id] = l
	s.mu.Unlock()
	return writeReply{LeaseID: id}, nil
}

func (s *Service) lookup(take, block bool) transport.Handler {
	return func(arg interface{}) (interface{}, error) {
		a, ok := arg.(lookupArgs)
		if !ok {
			return nil, fmt.Errorf("space: bad lookup args %T", arg)
		}
		t, err := s.resolveTxn(a.TxnID)
		if err != nil {
			return nil, err
		}
		var e tuplespace.Entry
		switch {
		case take && block:
			e, err = s.local.TS.TakeTok(a.Tmpl, t, a.Timeout, a.Tok)
		case take:
			e, err = s.local.TS.TakeIfExistsTok(a.Tmpl, t, a.Tok)
		case block:
			e, err = s.local.TS.Read(a.Tmpl, t, a.Timeout)
		default:
			e, err = s.local.TS.ReadIfExists(a.Tmpl, t)
		}
		if err != nil {
			return nil, err
		}
		return lookupReply{Entry: e}, nil
	}
}

func (s *Service) bulk(take bool) transport.Handler {
	return func(arg interface{}) (interface{}, error) {
		a, ok := arg.(lookupArgs)
		if !ok {
			return nil, fmt.Errorf("space: bad bulk args %T", arg)
		}
		t, err := s.resolveTxn(a.TxnID)
		if err != nil {
			return nil, err
		}
		var es []tuplespace.Entry
		if take {
			es, err = s.local.TS.TakeAllTok(a.Tmpl, t, a.Max, a.Tok)
		} else {
			es, err = s.local.TS.ReadAll(a.Tmpl, t, a.Max)
		}
		if err != nil {
			return nil, err
		}
		out := make([]interface{}, len(es))
		for i, e := range es {
			out[i] = e
		}
		return bulkReply{Entries: out}, nil
	}
}

func (s *Service) count(arg interface{}) (interface{}, error) {
	a, ok := arg.(lookupArgs)
	if !ok {
		return nil, fmt.Errorf("space: bad count args %T", arg)
	}
	n, err := s.local.TS.Count(a.Tmpl)
	if err != nil {
		return nil, err
	}
	return countReply{N: n}, nil
}

func (s *Service) typeCounts(interface{}) (interface{}, error) {
	return countsReply{Counts: s.local.TS.TypeCounts()}, nil
}

func (s *Service) txnBegin(arg interface{}) (interface{}, error) {
	a, ok := arg.(txnArgs)
	if !ok {
		return nil, fmt.Errorf("space: bad txn args %T", arg)
	}
	t := s.local.Mgr.Begin(a.TTL)
	wire := s.base | t.ID()
	s.mu.Lock()
	s.txns[wire] = t
	s.mu.Unlock()
	return txnReply{TxnID: wire}, nil
}

func (s *Service) txnCommit(arg interface{}) (interface{}, error) {
	a, ok := arg.(txnArgs)
	if !ok {
		return nil, fmt.Errorf("space: bad txn args %T", arg)
	}
	// Memo check before txn resolution: a retried commit whose original
	// executed finds the txn gone from the table — the memo is what tells
	// it apart from a transaction that died unresolved.
	if !a.Tok.Zero() {
		if res, hit := s.local.TS.MemoOutcome(a.Tok); hit && res.Op == tuplespace.MemoCommit {
			return txnReply{TxnID: a.TxnID}, nil
		}
	}
	t, err := s.resolveTxn(a.TxnID)
	if err != nil {
		return nil, err
	}
	s.dropTxn(a.TxnID)
	if err := t.Commit(); err != nil {
		return nil, err
	}
	// Committed but not yet memoized is the one crash window where a
	// retry still surfaces ErrTxnInactive (DESIGN §7).
	s.local.TS.CompleteMemo(a.Tok, tuplespace.MemoCommit)
	return txnReply{TxnID: a.TxnID}, nil
}

func (s *Service) txnAbort(arg interface{}) (interface{}, error) {
	a, ok := arg.(txnArgs)
	if !ok {
		return nil, fmt.Errorf("space: bad txn args %T", arg)
	}
	if !a.Tok.Zero() {
		if res, hit := s.local.TS.MemoOutcome(a.Tok); hit && res.Op == tuplespace.MemoAbort {
			return txnReply{TxnID: a.TxnID}, nil
		}
	}
	t, err := s.resolveTxn(a.TxnID)
	if err != nil {
		return nil, err
	}
	s.dropTxn(a.TxnID)
	if err := t.Abort(); err != nil {
		return nil, err
	}
	s.local.TS.CompleteMemo(a.Tok, tuplespace.MemoAbort)
	return txnReply{TxnID: a.TxnID}, nil
}

func (s *Service) dropTxn(id uint64) {
	s.mu.Lock()
	delete(s.txns, id)
	s.mu.Unlock()
}

func (s *Service) leaseRenew(arg interface{}) (interface{}, error) {
	a, ok := arg.(leaseArgs)
	if !ok {
		return nil, fmt.Errorf("space: bad lease args %T", arg)
	}
	s.mu.Lock()
	l := s.leases[a.LeaseID]
	s.mu.Unlock()
	if l == nil {
		return nil, tuplespace.ErrLeaseExpired
	}
	if err := l.Renew(a.TTL); err != nil {
		return nil, err
	}
	return writeReply{LeaseID: a.LeaseID}, nil
}

func (s *Service) leaseCancel(arg interface{}) (interface{}, error) {
	a, ok := arg.(leaseArgs)
	if !ok {
		return nil, fmt.Errorf("space: bad lease args %T", arg)
	}
	// Memo check before the table lookup: the original cancel already
	// deleted the lease id, so a retry would otherwise see "expired".
	if !a.Tok.Zero() {
		if res, hit := s.local.TS.MemoOutcome(a.Tok); hit && res.Op == tuplespace.MemoCancel {
			return writeReply{LeaseID: a.LeaseID}, nil
		}
	}
	s.mu.Lock()
	l := s.leases[a.LeaseID]
	delete(s.leases, a.LeaseID)
	s.mu.Unlock()
	if l == nil {
		return nil, tuplespace.ErrLeaseExpired
	}
	if err := l.CancelTok(a.Tok); err != nil {
		return nil, err
	}
	return writeReply{LeaseID: a.LeaseID}, nil
}
