package space

import (
	"errors"
	"strings"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
)

// Proxy is a client-side Space backed by a transport.Client talking to a
// Service. It is the analogue of the JavaSpaces proxy object a Jini client
// downloads from the lookup service.
type Proxy struct {
	c transport.Client
}

// NewProxy wraps an RPC client as a Space.
func NewProxy(c transport.Client) *Proxy { return &Proxy{c: c} }

// Dial connects to a space Service at a TCP address with connection
// timeout and retry, riding out the window between a service registering
// its address and its listener accepting.
func Dial(addr string) (*Proxy, error) {
	c, err := transport.DialTCPRetry(addr, transport.Backoff{})
	if err != nil {
		return nil, err
	}
	return NewProxy(c), nil
}

var _ Space = (*Proxy)(nil)

type proxyTxn struct {
	p  *Proxy
	id uint64
}

func (t *proxyTxn) Commit() error {
	_, err := t.p.c.Call("space.TxnCommit", txnArgs{TxnID: t.id})
	return mapRemote(err)
}

func (t *proxyTxn) Abort() error {
	_, err := t.p.c.Call("space.TxnAbort", txnArgs{TxnID: t.id})
	return mapRemote(err)
}

type proxyLease struct {
	p  *Proxy
	id uint64
}

func (l *proxyLease) Renew(ttl time.Duration) error {
	_, err := l.p.c.Call("space.LeaseRenew", leaseArgs{LeaseID: l.id, TTL: ttl})
	return mapRemote(err)
}

func (l *proxyLease) Cancel() error {
	_, err := l.p.c.Call("space.LeaseCancel", leaseArgs{LeaseID: l.id})
	return mapRemote(err)
}

func (p *Proxy) txnID(t Txn) (uint64, error) {
	if t == nil {
		return 0, nil
	}
	pt, ok := t.(*proxyTxn)
	if !ok {
		return 0, ErrBadTxn
	}
	return pt.id, nil
}

// Write implements Space.
func (p *Proxy) Write(e tuplespace.Entry, t Txn, ttl time.Duration) (Lease, error) {
	id, err := p.txnID(t)
	if err != nil {
		return nil, err
	}
	res, err := p.c.Call("space.Write", writeArgs{Entry: e, TxnID: id, TTL: ttl})
	if err != nil {
		return nil, mapRemote(err)
	}
	return &proxyLease{p: p, id: res.(writeReply).LeaseID}, nil
}

func (p *Proxy) lookup(method string, tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error) {
	id, err := p.txnID(t)
	if err != nil {
		return nil, err
	}
	res, err := p.c.Call(method, lookupArgs{Tmpl: tmpl, TxnID: id, Timeout: timeout})
	if err != nil {
		return nil, mapRemote(err)
	}
	return res.(lookupReply).Entry, nil
}

// Read implements Space.
func (p *Proxy) Read(tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error) {
	return p.lookup("space.Read", tmpl, t, timeout)
}

// Take implements Space.
func (p *Proxy) Take(tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error) {
	return p.lookup("space.Take", tmpl, t, timeout)
}

// ReadIfExists implements Space.
func (p *Proxy) ReadIfExists(tmpl tuplespace.Entry, t Txn) (tuplespace.Entry, error) {
	return p.lookup("space.ReadIfExists", tmpl, t, 0)
}

// TakeIfExists implements Space.
func (p *Proxy) TakeIfExists(tmpl tuplespace.Entry, t Txn) (tuplespace.Entry, error) {
	return p.lookup("space.TakeIfExists", tmpl, t, 0)
}

func (p *Proxy) bulkCall(method string, tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error) {
	id, err := p.txnID(t)
	if err != nil {
		return nil, err
	}
	res, err := p.c.Call(method, lookupArgs{Tmpl: tmpl, TxnID: id, Max: max})
	if err != nil {
		return nil, mapRemote(err)
	}
	raw := res.(bulkReply).Entries
	out := make([]tuplespace.Entry, len(raw))
	for i, e := range raw {
		out[i] = e
	}
	return out, nil
}

// ReadAll implements Space.
func (p *Proxy) ReadAll(tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error) {
	return p.bulkCall("space.ReadAll", tmpl, t, max)
}

// TakeAll implements Space.
func (p *Proxy) TakeAll(tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error) {
	return p.bulkCall("space.TakeAll", tmpl, t, max)
}

// Count implements Space.
func (p *Proxy) Count(tmpl tuplespace.Entry) (int, error) {
	res, err := p.c.Call("space.Count", lookupArgs{Tmpl: tmpl})
	if err != nil {
		return 0, mapRemote(err)
	}
	return res.(countReply).N, nil
}

// TypeCounts returns the remote space's live entries per type.
func (p *Proxy) TypeCounts() (map[string]int, error) {
	res, err := p.c.Call("space.TypeCounts", lookupArgs{})
	if err != nil {
		return nil, mapRemote(err)
	}
	return res.(countsReply).Counts, nil
}

// BeginTxn implements Space.
func (p *Proxy) BeginTxn(ttl time.Duration) (Txn, error) {
	res, err := p.c.Call("space.TxnBegin", txnArgs{TTL: ttl})
	if err != nil {
		return nil, mapRemote(err)
	}
	return &proxyTxn{p: p, id: res.(txnReply).TxnID}, nil
}

// Close implements Space.
func (p *Proxy) Close() error { return p.c.Close() }

// mapRemote converts RemoteError strings carrying well-known tuplespace
// sentinel messages back into the sentinel errors, so callers can use
// errors.Is uniformly against local and remote spaces.
func mapRemote(err error) error {
	if err == nil {
		return nil
	}
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	for _, sentinel := range []error{
		tuplespace.ErrTimeout,
		tuplespace.ErrNoMatch,
		tuplespace.ErrTxnInactive,
		tuplespace.ErrLeaseExpired,
		tuplespace.ErrClosed,
		tuplespace.ErrNotStruct,
	} {
		if strings.Contains(re.Msg, sentinel.Error()) {
			return sentinel
		}
	}
	return err
}
