package space

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// ErrOpTimeout fails a remote operation whose RPC exceeded the proxy's
// per-op deadline: the transport accepted the call but never replied (a
// hung or partitioned replica). It is deliberately distinct from
// tuplespace.ErrTimeout — a clean "no entry within the wait" — because a
// deadline expiry is a hard failure the shard router may cure by failing
// over, while a space timeout just means "keep looking".
var ErrOpTimeout = errors.New("space: remote operation deadline exceeded")

// Proxy is a client-side Space backed by a transport.Client talking to a
// Service. It is the analogue of the JavaSpaces proxy object a Jini client
// downloads from the lookup service.
type Proxy struct {
	c transport.Client

	// Per-op deadline state (see WithOpTimeout). clock is only consulted
	// when opTimeout > 0.
	clock     vclock.Clock
	opTimeout time.Duration
}

// NewProxy wraps an RPC client as a Space.
func NewProxy(c transport.Client) *Proxy { return &Proxy{c: c} }

// WithOpTimeout bounds every remote call on the proxy: an RPC that has
// not replied within d past its own semantic wait fails with
// ErrOpTimeout. Blocking lookups add their space-level timeout to the
// bound (the server legitimately parks that long before answering), and
// a block-forever lookup stays unbounded — only the transport overhead is
// being policed, never the space semantics. Returns p for chaining.
func (p *Proxy) WithOpTimeout(clock vclock.Clock, d time.Duration) *Proxy {
	if clock == nil {
		clock = vclock.NewReal()
	}
	p.clock = clock
	p.opTimeout = d
	return p
}

// call runs one RPC under the per-op deadline. extra is the operation's
// own semantic wait (a blocking lookup's timeout); unbounded skips the
// deadline entirely (block-forever lookups). The RPC itself cannot be
// cancelled mid-flight — like a TCP client abandoning a socket, the
// caller stops waiting and the reply, if it ever comes, is discarded —
// but the deadline rides the RPC frame, so the server rejects the op
// unexecuted (and frees any parked waiter) once the client is gone.
func (p *Proxy) call(method string, arg interface{}, extra time.Duration, unbounded bool) (interface{}, error) {
	if p.opTimeout <= 0 || unbounded {
		return p.c.Call(method, transport.Frame(arg, time.Time{}, priFor(method)))
	}
	arg = transport.Frame(arg, p.clock.Now().Add(p.opTimeout+extra), priFor(method))
	type outcome struct {
		res interface{}
		err error
	}
	w := p.clock.NewWaiter()
	var mu sync.Mutex
	var done *outcome
	g := vclock.NewGroup(p.clock)
	g.Go(func() {
		res, err := p.c.Call(method, arg)
		mu.Lock()
		done = &outcome{res, err}
		mu.Unlock()
		w.Wake()
	})
	w.Wait(p.opTimeout + extra)
	mu.Lock()
	defer mu.Unlock()
	if done == nil {
		return nil, fmt.Errorf("%w: %s after %v", ErrOpTimeout, method, p.opTimeout+extra)
	}
	return done.res, done.err
}

// priFor classifies a space method for brownout shedding: mutations and
// txn/lease control are PriHigh (the job stalls without them), reads are
// PriNormal, and diagnostics — counts, censuses, bulk scans — are PriLow,
// the first traffic a saturated server sheds.
func priFor(method string) int {
	switch method {
	case "space.Read", "space.ReadIfExists":
		return transport.PriNormal
	case "space.ReadAll", "space.Count", "space.TypeCounts":
		return transport.PriLow
	}
	return transport.PriHigh
}

// Dial connects to a space Service at a TCP address with connection
// timeout and retry, riding out the window between a service registering
// its address and its listener accepting.
func Dial(addr string) (*Proxy, error) {
	c, err := transport.DialTCPRetry(addr, transport.DefaultPolicy())
	if err != nil {
		return nil, err
	}
	return NewProxy(c), nil
}

var _ Space = (*Proxy)(nil)

type proxyTxn struct {
	p  *Proxy
	id uint64
}

func (t *proxyTxn) Commit() error {
	_, err := t.p.call("space.TxnCommit", txnArgs{TxnID: t.id}, 0, false)
	return mapRemote(err)
}

func (t *proxyTxn) Abort() error {
	_, err := t.p.call("space.TxnAbort", txnArgs{TxnID: t.id}, 0, false)
	return mapRemote(err)
}

type proxyLease struct {
	p  *Proxy
	id uint64
}

func (l *proxyLease) Renew(ttl time.Duration) error {
	_, err := l.p.call("space.LeaseRenew", leaseArgs{LeaseID: l.id, TTL: ttl}, 0, false)
	return mapRemote(err)
}

func (l *proxyLease) Cancel() error {
	_, err := l.p.call("space.LeaseCancel", leaseArgs{LeaseID: l.id}, 0, false)
	return mapRemote(err)
}

func (p *Proxy) txnID(t Txn) (uint64, error) {
	if t == nil {
		return 0, nil
	}
	pt, ok := t.(*proxyTxn)
	if !ok {
		return 0, ErrBadTxn
	}
	return pt.id, nil
}

// Write implements Space.
func (p *Proxy) Write(e tuplespace.Entry, t Txn, ttl time.Duration) (Lease, error) {
	id, err := p.txnID(t)
	if err != nil {
		return nil, err
	}
	res, err := p.call("space.Write", writeArgs{Entry: e, TxnID: id, TTL: ttl}, 0, false)
	if err != nil {
		return nil, mapRemote(err)
	}
	return &proxyLease{p: p, id: res.(writeReply).LeaseID}, nil
}

func (p *Proxy) lookup(method string, tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error) {
	id, err := p.txnID(t)
	if err != nil {
		return nil, err
	}
	// A blocking lookup with timeout 0 parks server-side forever by
	// design; the deadline only applies when the wait itself is bounded.
	blocking := method == "space.Read" || method == "space.Take"
	res, err := p.call(method, lookupArgs{Tmpl: tmpl, TxnID: id, Timeout: timeout}, timeout, blocking && timeout <= 0)
	if err != nil {
		return nil, mapRemote(err)
	}
	return res.(lookupReply).Entry, nil
}

// Read implements Space.
func (p *Proxy) Read(tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error) {
	return p.lookup("space.Read", tmpl, t, timeout)
}

// Take implements Space.
func (p *Proxy) Take(tmpl tuplespace.Entry, t Txn, timeout time.Duration) (tuplespace.Entry, error) {
	return p.lookup("space.Take", tmpl, t, timeout)
}

// ReadIfExists implements Space.
func (p *Proxy) ReadIfExists(tmpl tuplespace.Entry, t Txn) (tuplespace.Entry, error) {
	return p.lookup("space.ReadIfExists", tmpl, t, 0)
}

// TakeIfExists implements Space.
func (p *Proxy) TakeIfExists(tmpl tuplespace.Entry, t Txn) (tuplespace.Entry, error) {
	return p.lookup("space.TakeIfExists", tmpl, t, 0)
}

func (p *Proxy) bulkCall(method string, tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error) {
	id, err := p.txnID(t)
	if err != nil {
		return nil, err
	}
	res, err := p.call(method, lookupArgs{Tmpl: tmpl, TxnID: id, Max: max}, 0, false)
	if err != nil {
		return nil, mapRemote(err)
	}
	raw := res.(bulkReply).Entries
	out := make([]tuplespace.Entry, len(raw))
	for i, e := range raw {
		out[i] = e
	}
	return out, nil
}

// ReadAll implements Space.
func (p *Proxy) ReadAll(tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error) {
	return p.bulkCall("space.ReadAll", tmpl, t, max)
}

// TakeAll implements Space.
func (p *Proxy) TakeAll(tmpl tuplespace.Entry, t Txn, max int) ([]tuplespace.Entry, error) {
	return p.bulkCall("space.TakeAll", tmpl, t, max)
}

// Count implements Space.
func (p *Proxy) Count(tmpl tuplespace.Entry) (int, error) {
	res, err := p.call("space.Count", lookupArgs{Tmpl: tmpl}, 0, false)
	if err != nil {
		return 0, mapRemote(err)
	}
	return res.(countReply).N, nil
}

// TypeCounts returns the remote space's live entries per type.
func (p *Proxy) TypeCounts() (map[string]int, error) {
	res, err := p.call("space.TypeCounts", lookupArgs{}, 0, false)
	if err != nil {
		return nil, mapRemote(err)
	}
	return res.(countsReply).Counts, nil
}

// BeginTxn implements Space.
func (p *Proxy) BeginTxn(ttl time.Duration) (Txn, error) {
	res, err := p.call("space.TxnBegin", txnArgs{TTL: ttl}, 0, false)
	if err != nil {
		return nil, mapRemote(err)
	}
	return &proxyTxn{p: p, id: res.(txnReply).TxnID}, nil
}

// Close implements Space.
func (p *Proxy) Close() error { return p.c.Close() }

// mapRemote converts RemoteError strings carrying well-known tuplespace
// sentinel messages back into the sentinel errors, so callers can use
// errors.Is uniformly against local and remote spaces.
func mapRemote(err error) error {
	if err == nil {
		return nil
	}
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	for _, sentinel := range []error{
		tuplespace.ErrTimeout,
		tuplespace.ErrNoMatch,
		tuplespace.ErrTxnInactive,
		tuplespace.ErrLeaseExpired,
		tuplespace.ErrClosed,
		tuplespace.ErrNotStruct,
		tuplespace.ErrOverloaded,
		tuplespace.ErrDeadlineExpired,
	} {
		if strings.Contains(re.Msg, sentinel.Error()) {
			return sentinel
		}
	}
	return err
}
