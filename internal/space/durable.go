package space

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/wal"
)

// DefaultSnapshotBytes is the WAL growth between automatic snapshots.
const DefaultSnapshotBytes = 4 << 20

// DurableOptions configures a durable local space.
type DurableOptions struct {
	// Dir is the data directory holding WAL segments and snapshots.
	Dir string
	// Fsync is the WAL sync policy (default: always).
	Fsync wal.FsyncPolicy
	// FsyncEvery is the lazy-sync interval under wal.FsyncInterval.
	FsyncEvery time.Duration
	// SegmentSize caps WAL segment files (default wal.DefaultSegmentSize).
	SegmentSize int64
	// SnapshotBytes triggers a background snapshot + compaction once the
	// WAL has grown by this much since the last one. Zero means
	// DefaultSnapshotBytes; negative disables automatic snapshots.
	SnapshotBytes int64
	// Strict makes journal failures surface as space operation errors:
	// nothing is acknowledged that was not logged.
	Strict bool
	// Counters, when non-nil, receives wal:* and journal:errors counts.
	Counters *metrics.Counters
	// WrapWriter optionally wraps the WAL's segment writer — the fault
	// layer's disk-error injection hook.
	WrapWriter func(io.Writer) io.Writer
	// AppendHist / SyncHist, when non-nil, receive per-append and
	// per-fsync WAL latencies (see wal.Options).
	AppendHist *metrics.Histogram
	SyncHist   *metrics.Histogram
	// Tee, when non-nil, additionally receives every journal payload
	// after it is safely in the WAL — the replication layer's tap: the
	// records the log stores are exactly the ones shipped to the backup.
	// Like the journal itself it is invoked under the space mutex, so it
	// must not block.
	Tee tuplespace.RecordSink
	// OnWALEvent forwards the log's lifecycle notifications ("rotate",
	// "snapshot" — see wal.Options.OnEvent) to the cluster flight
	// recorder. Must not block.
	OnWALEvent func(kind, detail string)
}

// RecoveryInfo describes what a durable space reconstructed on open.
type RecoveryInfo struct {
	// Restored is the number of live entries recovered into the space.
	Restored int
	// SnapshotRecords and TailRecords are the record counts read from
	// the snapshot and from post-snapshot segments respectively.
	SnapshotRecords int
	TailRecords     int
	// Segments is how many WAL segment files were replayed.
	Segments int
	// TruncatedBytes counts torn-tail bytes discarded.
	TruncatedBytes int64
	// Elapsed is the wall-clock time spent recovering (disk + replay).
	Elapsed time.Duration
}

// Durable is the persistence controller paired with a durable Local —
// the handle through which the owner snapshots, inspects recovery, and
// shuts the log down.
type Durable struct {
	log           *wal.Log
	ts            *tuplespace.Space
	journal       *tuplespace.Journal
	info          RecoveryInfo
	snapshotBytes int64
	tee           tuplespace.RecordSink

	snapping atomic.Bool
	mu       sync.Mutex // guards closed against wg.Add/wg.Wait races
	closed   bool
	wg       sync.WaitGroup
}

// NewLocalDurable opens (or creates) the durable space stored in
// opts.Dir: it recovers the newest snapshot plus the WAL tail into a
// fresh space — truncating any torn final record — takes a recovery
// snapshot so stale segments are compacted away before new writes renew
// the Seq numbering, and attaches a journal that appends every public
// mutation to the WAL. The space is fully recovered before this returns;
// serve it only after.
func NewLocalDurable(clock vclock.Clock, opts DurableOptions) (*Local, *Durable, error) {
	start := time.Now()
	wopts := wal.Options{
		SegmentSize: opts.SegmentSize,
		Fsync:       opts.Fsync,
		FsyncEvery:  opts.FsyncEvery,
		Counters:    opts.Counters,
		WrapWriter:  opts.WrapWriter,
		AppendHist:  opts.AppendHist,
		SyncHist:    opts.SyncHist,
		OnEvent:     opts.OnWALEvent,
	}
	log, rec, err := wal.Open(opts.Dir, wopts)
	if err != nil {
		return nil, nil, err
	}

	l := NewLocal(clock)
	records := make([][]byte, 0, len(rec.SnapshotRecords)+len(rec.Records))
	records = append(records, rec.SnapshotRecords...)
	records = append(records, rec.Records...)
	restored, err := tuplespace.ReplayRecords(records, l.TS)
	if err != nil {
		log.Close()
		return nil, nil, fmt.Errorf("space: recover %s: %w", opts.Dir, err)
	}

	snapBytes := opts.SnapshotBytes
	if snapBytes == 0 {
		snapBytes = DefaultSnapshotBytes
	}
	d := &Durable{log: log, ts: l.TS, snapshotBytes: snapBytes, tee: opts.Tee}
	d.journal = tuplespace.NewJournalSink(durableSink{d}).
		SetStrict(opts.Strict).
		SetCounters(opts.Counters)
	l.TS.AttachRecoveredJournal(d.journal)

	// Recovery snapshot: the recovered space assigns fresh entry ids, so
	// records in pre-crash segments speak a different Seq numbering than
	// the appends about to happen. Snapshotting now moves the boundary
	// past every old segment (compacting them) before the first new
	// record lands. A virgin directory has nothing to fence off.
	if rec.FromSnapshot || rec.Segments > 0 {
		if err := d.SnapshotNow(); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("space: recovery snapshot %s: %w", opts.Dir, err)
		}
	}

	d.info = RecoveryInfo{
		Restored:        restored,
		SnapshotRecords: len(rec.SnapshotRecords),
		TailRecords:     len(rec.Records),
		Segments:        rec.Segments,
		TruncatedBytes:  rec.TruncatedBytes,
		Elapsed:         time.Since(start),
	}
	return l, d, nil
}

// durableSink routes journal records into the WAL and watches the growth
// threshold.
type durableSink struct{ d *Durable }

// Append implements tuplespace.RecordSink.
func (s durableSink) Append(payload []byte) error {
	if err := s.d.log.Append(payload); err != nil {
		return err
	}
	if t := s.d.tee; t != nil {
		if err := t.Append(payload); err != nil {
			return err
		}
	}
	s.d.maybeSnapshot()
	return nil
}

// maybeSnapshot starts a background snapshot when the WAL has outgrown
// the threshold. It must not snapshot inline: Append runs under the
// space mutex, and the snapshot's state capture needs that same mutex —
// the goroutine simply waits its turn.
func (d *Durable) maybeSnapshot() {
	if d.snapshotBytes <= 0 {
		return
	}
	if d.log.SizeSinceSnapshot() < d.snapshotBytes {
		return
	}
	if !d.snapping.CompareAndSwap(false, true) {
		return // one at a time
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.snapping.Store(false)
		return
	}
	d.wg.Add(1)
	d.mu.Unlock()
	go func() {
		defer d.wg.Done()
		defer d.snapping.Store(false)
		// A snapshot failure is not fatal to the space: the un-compacted
		// log is still complete. The next threshold crossing retries.
		_ = d.log.Snapshot(d.ts.EncodeState)
	}()
}

// SnapshotNow synchronously writes a full-state snapshot and compacts
// segments behind it.
func (d *Durable) SnapshotNow() error {
	return d.log.Snapshot(d.ts.EncodeState)
}

// Info returns what recovery reconstructed when the space was opened.
func (d *Durable) Info() RecoveryInfo { return d.info }

// Err returns the first journal append error, if any (primarily useful
// in non-strict mode, where operations succeed past failures).
func (d *Durable) Err() error { return d.journal.Err() }

// Log exposes the underlying WAL (diagnostics and tests).
func (d *Durable) Log() *wal.Log { return d.log }

// Close waits for any in-flight snapshot and closes the WAL. Close the
// space (Local.Close) first so no new appends race the shutdown.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.wg.Wait()
	return d.log.Close()
}
