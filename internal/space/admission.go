package space

import (
	"sync"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// AdmissionConfig tunes a Service's server-side overload protection. The
// zero value (an unconfigured Service) admits everything and only unwraps
// the transport frame, so token-oblivious deployments behave as before.
type AdmissionConfig struct {
	// Clock evaluates deadlines and brownout windows. Required for any
	// check to run.
	Clock vclock.Clock
	// MaxInflight bounds the ops between admission and completion —
	// the pending-op queue, gate wait included. 0 = unlimited.
	MaxInflight int
	// Gate, when set, charges the modeled per-op CPU inside admission so
	// a queued op whose service slot would end past its propagated
	// deadline is dropped instead of executed into the void.
	Gate *transport.ServiceGate
	// Counters receives admit:*/shed:* increments (nil-safe).
	Counters *metrics.Counters
	// FlightSink receives brownout level transitions for the flight
	// recorder (nil = none).
	FlightSink func(detail string)

	// Brownout tuning: when inflight utilization stays at or above
	// BrownoutEnter (default 0.9) for BrownoutAfter (default 250ms) the
	// controller enters level 1 and sheds PriLow ops; after another
	// BrownoutAfter of sustained saturation, level 2 sheds PriNormal too.
	// Utilization at or below BrownoutExit (default 0.5) leaves brownout.
	// Brownout needs MaxInflight > 0 — without a capacity bound there is
	// no utilization to react to.
	BrownoutEnter float64
	BrownoutExit  float64
	BrownoutAfter time.Duration
}

// Admission is a Service's admission controller: the expired-deadline
// check, the inflight bound, the brownout shedder and the deadline-aware
// gate, applied in that order before any handler runs. Every Service has
// one; Configure arms it.
type Admission struct {
	mu  sync.Mutex
	cfg AdmissionConfig

	inflight int
	level    int       // brownout level: 0 none, 1 shed PriLow, 2 shed PriNormal too
	satSince time.Time // start of the current sustained-saturation window

	admitted uint64
	rejected uint64
	shed     uint64
	expired  uint64
}

// AdmissionVitals is the /healthz snapshot of an admission controller.
type AdmissionVitals struct {
	Inflight        int    `json:"inflight"`
	MaxInflight     int    `json:"max_inflight"`
	BrownoutLevel   int    `json:"brownout_level"`
	Admitted        uint64 `json:"admitted"`
	Rejected        uint64 `json:"rejected"`
	Shed            uint64 `json:"shed"`
	DeadlineExpired uint64 `json:"deadline_expired"`
}

// Configure arms the controller. Call once at service assembly, before
// traffic; reconfiguring a live controller is safe but resets brownout.
func (a *Admission) Configure(cfg AdmissionConfig) {
	if cfg.BrownoutEnter <= 0 {
		cfg.BrownoutEnter = 0.9
	}
	if cfg.BrownoutExit <= 0 {
		cfg.BrownoutExit = 0.5
	}
	if cfg.BrownoutAfter <= 0 {
		cfg.BrownoutAfter = 250 * time.Millisecond
	}
	a.mu.Lock()
	a.cfg = cfg
	a.level = 0
	a.satSince = time.Time{}
	a.mu.Unlock()
}

// Vitals snapshots the controller for /healthz.
func (a *Admission) Vitals() AdmissionVitals {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionVitals{
		Inflight:        a.inflight,
		MaxInflight:     a.cfg.MaxInflight,
		BrownoutLevel:   a.level,
		Admitted:        a.admitted,
		Rejected:        a.rejected,
		Shed:            a.shed,
		DeadlineExpired: a.expired,
	}
}

// Level returns the current brownout level.
func (a *Admission) Level() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.level
}

// admit runs every pre-execution check for one op and, on success,
// reserves an inflight slot and pays the gate. The returned release frees
// the slot after the handler finishes.
func (a *Admission) admit(deadline time.Time, pri int) (func(), error) {
	a.mu.Lock()
	cfg := a.cfg
	if cfg.Clock == nil {
		a.mu.Unlock()
		return func() {}, nil
	}
	now := cfg.Clock.Now()
	// Expired deadline: the client has already given up on this op.
	if !deadline.IsZero() && now.After(deadline) {
		a.expired++
		a.mu.Unlock()
		inc(cfg.Counters, metrics.CounterAdmitExpired)
		return nil, tuplespace.ErrDeadlineExpired
	}
	// Hard pending-op bound.
	if cfg.MaxInflight > 0 && a.inflight >= cfg.MaxInflight {
		a.rejected++
		a.mu.Unlock()
		inc(cfg.Counters, metrics.CounterAdmitRejected)
		return nil, tuplespace.ErrOverloaded
	}
	// Brownout: sustained saturation sheds the lowest classes first.
	transition := a.brownoutLocked(cfg, now)
	if a.level >= 1 && pri <= transport.PriLow || a.level >= 2 && pri <= transport.PriNormal {
		a.shed++
		key := metrics.CounterShedLow
		if pri > transport.PriLow {
			key = metrics.CounterShedNormal
		}
		a.mu.Unlock()
		if transition != "" && cfg.FlightSink != nil {
			cfg.FlightSink(transition)
		}
		inc(cfg.Counters, key)
		return nil, tuplespace.ErrOverloaded
	}
	a.inflight++
	a.admitted++
	a.mu.Unlock()
	if transition != "" && cfg.FlightSink != nil {
		cfg.FlightSink(transition)
	}
	release := func() {
		a.mu.Lock()
		a.inflight--
		a.mu.Unlock()
	}
	// The gate sleeps through queue wait + service time; an op whose slot
	// would complete after the client's deadline is dropped unexecuted.
	if !cfg.Gate.AdmitBy(deadline) {
		release()
		a.mu.Lock()
		a.expired++
		a.mu.Unlock()
		inc(cfg.Counters, metrics.CounterAdmitExpired)
		return nil, tuplespace.ErrDeadlineExpired
	}
	return release, nil
}

// inc is a nil-safe counter increment.
func inc(c *metrics.Counters, key string) {
	if c != nil {
		c.Inc(key)
	}
}

// brownoutLocked advances the brownout state machine and returns a
// non-empty transition description when the level changed.
func (a *Admission) brownoutLocked(cfg AdmissionConfig, now time.Time) string {
	if cfg.MaxInflight <= 0 {
		return ""
	}
	util := float64(a.inflight) / float64(cfg.MaxInflight)
	switch {
	case util >= cfg.BrownoutEnter:
		if a.satSince.IsZero() {
			a.satSince = now
		}
		sustained := now.Sub(a.satSince)
		want := a.level + 1
		if want <= 2 && sustained >= time.Duration(want)*cfg.BrownoutAfter {
			a.level = want
			return brownoutDetail(a.level)
		}
	case util <= cfg.BrownoutExit:
		a.satSince = time.Time{}
		if a.level != 0 {
			a.level = 0
			return brownoutDetail(0)
		}
	}
	return ""
}

func brownoutDetail(level int) string {
	switch level {
	case 0:
		return "exit"
	case 1:
		return "level 1: shedding diagnostics"
	default:
		return "level 2: shedding reads"
	}
}

// wrap is the admission middleware a Service installs around every
// handler at registration: unwrap the transport frame, run the checks,
// clamp a blocking lookup's park to the propagated deadline, then run the
// handler.
func (a *Admission) wrap(next transport.Handler) transport.Handler {
	return func(arg interface{}) (interface{}, error) {
		inner, deadline, pri := transport.Unframe(arg)
		release, err := a.admit(deadline, pri)
		if err != nil {
			return nil, err
		}
		defer release()
		if !deadline.IsZero() {
			inner = a.clampDeadline(inner, deadline)
		}
		return next(inner)
	}
}

// clampDeadline bounds a blocking lookup's server-side park at the
// client's propagated deadline: once the client has abandoned the call,
// the waiter slot frees instead of leaking until the semantic timeout.
func (a *Admission) clampDeadline(inner interface{}, deadline time.Time) interface{} {
	a.mu.Lock()
	clock := a.cfg.Clock
	a.mu.Unlock()
	if clock == nil {
		return inner
	}
	la, ok := inner.(lookupArgs)
	if !ok {
		return inner
	}
	rem := deadline.Sub(clock.Now())
	if rem <= 0 {
		rem = time.Nanosecond
	}
	if la.Timeout <= 0 || la.Timeout > rem {
		la.Timeout = rem
		return la
	}
	return inner
}
