package sysmon

import (
	"sync"
	"time"

	"gospaces/internal/vclock"
)

// Watcher samples a machine's background load periodically and invokes a
// callback whenever the load's classification changes — the node-side
// instrumentation behind SNMP trap generation. Classification is supplied
// by the caller (typically the rule base's band function) so sysmon stays
// policy-free.
type Watcher struct {
	clock    vclock.Clock
	machine  *Machine
	interval time.Duration
	classify func(load float64) int
	onChange func(load float64)

	mu      sync.Mutex
	quit    bool
	parker  vclock.Waiter
	running bool
}

// NewWatcher returns a watcher; call Run on a clock process.
func NewWatcher(clock vclock.Clock, m *Machine, interval time.Duration,
	classify func(float64) int, onChange func(float64)) *Watcher {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Watcher{clock: clock, machine: m, interval: interval, classify: classify, onChange: onChange}
}

// Run samples until Stop. The first sample establishes the baseline
// class; only subsequent changes fire the callback.
func (w *Watcher) Run() {
	w.mu.Lock()
	if w.running {
		w.mu.Unlock()
		panic("sysmon: Watcher.Run called twice")
	}
	w.running = true
	w.mu.Unlock()

	last := w.classify(w.machine.BackgroundLoad())
	for {
		w.mu.Lock()
		if w.quit {
			w.mu.Unlock()
			return
		}
		w.parker = w.clock.NewWaiter()
		p := w.parker
		w.mu.Unlock()

		p.Wait(w.interval)

		w.mu.Lock()
		w.parker = nil
		quit := w.quit
		w.mu.Unlock()
		if quit {
			return
		}
		load := w.machine.BackgroundLoad()
		if c := w.classify(load); c != last {
			last = c
			w.onChange(load)
		}
	}
}

// Stop terminates the watcher.
func (w *Watcher) Stop() {
	w.mu.Lock()
	w.quit = true
	p := w.parker
	w.mu.Unlock()
	if p != nil {
		p.Wake()
	}
}
