package sysmon

import (
	"math"
	"time"
)

// LoadSimulator drives a synthetic background load on a machine, matching
// the experimental setup of the paper's §5.2.2: simulator 1 reproduces
// mixed RTP/HTTP/multimedia traffic that holds the CPU between 30 % and
// 50 %; simulator 2 pins the CPU at 100 %.
type LoadSimulator struct {
	machine *Machine
	key     string
	level   func(since time.Duration) float64
	started time.Time
	running bool
}

// NewLoadSimulator1 returns the traffic-shaped 30–50 % generator.
func NewLoadSimulator1(m *Machine) *LoadSimulator {
	return &LoadSimulator{
		machine: m,
		key:     "loadsim1",
		level: func(since time.Duration) float64 {
			// Superimposed periodic bursts: RTP packets (fast), HTTP
			// fetches (medium), multimedia streaming (slow). Deterministic
			// in elapsed time so virtual-clock runs reproduce exactly.
			t := since.Seconds()
			v := 39 +
				6*math.Sin(2*math.Pi*t/0.9) + // RTP voice frames
				3*math.Sin(2*math.Pi*t/4.7+1) + // HTTP requests
				1.5*math.Sin(2*math.Pi*t/13+2) // multimedia buffering
			// Clamp strictly inside the paper's 30–50 % band: exactly 50
			// belongs to the Stop range of the rule base.
			return math.Max(30, math.Min(48, v))
		},
	}
}

// NewLoadSimulator2 returns the CPU-saturating generator.
func NewLoadSimulator2(m *Machine) *LoadSimulator {
	return &LoadSimulator{
		machine: m,
		key:     "loadsim2",
		level:   func(time.Duration) float64 { return 100 },
	}
}

// Start begins generating load. Starting an already-running simulator
// restarts its phase.
func (l *LoadSimulator) Start() {
	l.started = l.machine.clock.Now()
	l.running = true
	start := l.started
	f := l.level
	l.machine.SetSource(l.key, func(now time.Time) float64 {
		return f(now.Sub(start))
	})
}

// Stop removes the load.
func (l *LoadSimulator) Stop() {
	l.running = false
	l.machine.ClearSource(l.key)
}

// Running reports whether the simulator is active.
func (l *LoadSimulator) Running() bool { return l.running }
