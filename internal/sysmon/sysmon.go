// Package sysmon models the system state of a cluster node: its CPU
// utilization as the sum of load sources (background jobs, interactive
// users, the framework's own worker), a usage history trace, and the two
// synthetic load generators the paper uses in its adaptation experiments —
// load simulator 1 (traffic-shaped, 30–50 % CPU) and load simulator 2
// (100 % CPU). The SNMP agent on each node reads hrProcessorLoad from
// here, and the compute model converts task work into elapsed time scaled
// by node speed and background contention.
package sysmon

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"gospaces/internal/vclock"
)

// WorkerSource is the reserved load-source key for the framework's own
// worker process; it is excluded from background-load computations so that
// cycle stealing does not count against the node's availability the way a
// local user's job does.
const WorkerSource = "worker"

// Sample is one point of a CPU usage trace.
type Sample struct {
	At    time.Time
	Usage float64 // percent, 0–100
}

// Machine models one cluster node.
type Machine struct {
	clock vclock.Clock
	name  string
	speed float64 // relative CPU speed; 1.0 = the paper's 800 MHz P-III

	mu      sync.Mutex
	sources map[string]srcEntry
	nextSrc int64
	hist    []Sample
}

// srcEntry is one load source: named sources (SetSource) use their name
// as both key and group; each Compute invocation gets a unique key within
// its group, so concurrent computations on one machine (a task plus a
// signal handler, say) never clobber each other.
type srcEntry struct {
	group string
	f     func(now time.Time) float64
}

// NewMachine returns a node with the given name and relative speed
// (1.0 = reference 800 MHz node; the paper's 300 MHz nodes are ~0.375).
func NewMachine(clock vclock.Clock, name string, speed float64) *Machine {
	if speed <= 0 {
		speed = 1
	}
	return &Machine{
		clock:   clock,
		name:    name,
		speed:   speed,
		sources: make(map[string]srcEntry),
	}
}

// Name returns the node name.
func (m *Machine) Name() string { return m.name }

// Speed returns the relative CPU speed.
func (m *Machine) Speed() float64 { return m.speed }

// SetSource installs (or replaces) a named load source: f returns the
// source's instantaneous CPU percentage at a given time.
func (m *Machine) SetSource(key string, f func(now time.Time) float64) {
	m.mu.Lock()
	m.sources[key] = srcEntry{group: key, f: f}
	m.mu.Unlock()
}

// SetConstSource installs a constant-percentage load source.
func (m *Machine) SetConstSource(key string, pct float64) {
	m.SetSource(key, func(time.Time) float64 { return pct })
}

// ClearSource removes a load source.
func (m *Machine) ClearSource(key string) {
	m.mu.Lock()
	delete(m.sources, key)
	m.mu.Unlock()
}

// Usage returns the node's current total CPU utilization (0–100).
func (m *Machine) Usage() float64 {
	now := m.clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sumLocked(now, true)
}

// BackgroundLoad returns utilization excluding the framework's own worker
// — the quantity that decides whether the node counts as idle.
func (m *Machine) BackgroundLoad() float64 {
	now := m.clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sumLocked(now, false)
}

func (m *Machine) sumLocked(now time.Time, includeWorker bool) float64 {
	total := 0.0
	for _, e := range m.sources {
		if !includeWorker && e.group == WorkerSource {
			continue
		}
		total += e.f(now)
	}
	return math.Min(100, math.Max(0, total))
}

// RecordSample appends the current usage to the node's history trace and
// returns it. The monitoring agent calls this on every poll; the resulting
// trace is what Figures 9(a), 10(a) and 11(a) plot.
func (m *Machine) RecordSample() Sample {
	now := m.clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Sample{At: now, Usage: m.sumLocked(now, true)}
	m.hist = append(m.hist, s)
	return s
}

// History returns a copy of the usage trace, time-ordered.
func (m *Machine) History() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.hist))
	copy(out, m.hist)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// PeakUsage returns the maximum recorded usage in [from, to].
func (m *Machine) PeakUsage(from, to time.Time) float64 {
	peak := 0.0
	for _, s := range m.History() {
		if s.At.Before(from) || s.At.After(to) {
			continue
		}
		if s.Usage > peak {
			peak = s.Usage
		}
	}
	return peak
}

// contentionFactor converts background load into a slowdown multiplier for
// the worker's compute: with bg% of the CPU consumed by other processes,
// the worker receives the remaining share. The factor is capped so a
// saturated node slows work down rather than freezing it (the OS scheduler
// still gives a starved process an occasional quantum).
func contentionFactor(bg float64) float64 {
	share := (100 - bg) / 100
	if share < 0.05 {
		share = 0.05
	}
	return 1 / share
}

// Compute models the framework worker executing `work` of CPU time
// (expressed as seconds on the reference 1.0-speed node) at the given CPU
// intensity (percent). It installs the worker load source for the
// duration, scales the elapsed time by node speed and by contention from
// background load, and sleeps that long on the node's clock.
func (m *Machine) Compute(work time.Duration, intensity float64) {
	m.ComputeAs(WorkerSource, work, intensity)
}

// ComputeAs models an arbitrary process (identified by source group)
// executing `work` of reference-node CPU time at the given intensity. The
// process contends with every load source outside its own group —
// including the framework's worker, which is how the intrusiveness
// experiments measure the slowdown cycle stealing inflicts on a local
// user's job. Concurrent computations are independent sources: each
// invocation installs and removes its own entry.
func (m *Machine) ComputeAs(group string, work time.Duration, intensity float64) {
	now := m.clock.Now()
	m.mu.Lock()
	other := 0.0
	for _, e := range m.sources {
		if e.group != group {
			other += e.f(now)
		}
	}
	if other > 100 {
		other = 100
	}
	m.nextSrc++
	key := fmt.Sprintf("%s#%d", group, m.nextSrc)
	m.sources[key] = srcEntry{group: group, f: func(time.Time) float64 { return intensity }}
	m.mu.Unlock()

	elapsed := time.Duration(float64(work) / m.speed * contentionFactor(other))
	m.clock.Sleep(elapsed)

	m.mu.Lock()
	delete(m.sources, key)
	m.mu.Unlock()
}

// EstimateCompute returns the wall time Compute(work, _) would take right
// now, without performing it.
func (m *Machine) EstimateCompute(work time.Duration) time.Duration {
	return time.Duration(float64(work) / m.speed * contentionFactor(m.BackgroundLoad()))
}

// String describes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("sysmon.Machine{%s speed=%.2f usage=%.0f%%}", m.name, m.speed, m.Usage())
}
