package sysmon

import (
	"testing"
	"testing/quick"
	"time"

	"gospaces/internal/vclock"
)

var epoch = time.Date(2001, 10, 8, 0, 0, 0, 0, time.UTC)

func TestUsageSumsAndClamps(t *testing.T) {
	m := NewMachine(vclock.NewReal(), "n1", 1)
	if got := m.Usage(); got != 0 {
		t.Fatalf("idle usage = %v", got)
	}
	m.SetConstSource("a", 30)
	m.SetConstSource("b", 25)
	if got := m.Usage(); got != 55 {
		t.Fatalf("usage = %v, want 55", got)
	}
	m.SetConstSource("c", 60)
	if got := m.Usage(); got != 100 {
		t.Fatalf("usage = %v, want clamp at 100", got)
	}
	m.ClearSource("c")
	m.ClearSource("b")
	if got := m.Usage(); got != 30 {
		t.Fatalf("usage = %v, want 30", got)
	}
}

func TestBackgroundLoadExcludesWorker(t *testing.T) {
	m := NewMachine(vclock.NewReal(), "n1", 1)
	m.SetConstSource(WorkerSource, 90)
	m.SetConstSource("user", 20)
	if got := m.BackgroundLoad(); got != 20 {
		t.Fatalf("background = %v, want 20", got)
	}
	if got := m.Usage(); got != 100 {
		t.Fatalf("usage = %v, want 100 (clamped)", got)
	}
}

func TestComputeScalesWithSpeed(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fast := NewMachine(clk, "fast", 1.0)   // 800 MHz class
	slow := NewMachine(clk, "slow", 0.375) // 300 MHz class
	var fastDur, slowDur time.Duration
	clk.Run(func() {
		t0 := clk.Now()
		fast.Compute(300*time.Millisecond, 95)
		fastDur = clk.Since(t0)
		t1 := clk.Now()
		slow.Compute(300*time.Millisecond, 95)
		slowDur = clk.Since(t1)
	})
	if fastDur != 300*time.Millisecond {
		t.Fatalf("fast compute took %v", fastDur)
	}
	if slowDur != 800*time.Millisecond {
		t.Fatalf("slow compute took %v, want 800ms", slowDur)
	}
}

func TestComputeSlowsUnderContention(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	m := NewMachine(clk, "n", 1)
	var idle, loaded time.Duration
	clk.Run(func() {
		t0 := clk.Now()
		m.Compute(100*time.Millisecond, 90)
		idle = clk.Since(t0)
		m.SetConstSource("bg", 50)
		t1 := clk.Now()
		m.Compute(100*time.Millisecond, 90)
		loaded = clk.Since(t1)
	})
	if idle != 100*time.Millisecond {
		t.Fatalf("idle compute %v", idle)
	}
	if loaded != 200*time.Millisecond {
		t.Fatalf("compute under 50%% load took %v, want 200ms", loaded)
	}
}

func TestComputeContentionCapped(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	m := NewMachine(clk, "n", 1)
	var dur time.Duration
	clk.Run(func() {
		m.SetConstSource("bg", 100)
		t0 := clk.Now()
		m.Compute(10*time.Millisecond, 90)
		dur = clk.Since(t0)
	})
	if dur != 200*time.Millisecond { // 1/0.05 cap
		t.Fatalf("saturated compute took %v, want 200ms (20x cap)", dur)
	}
}

func TestWorkerSourceVisibleDuringCompute(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	m := NewMachine(clk, "n", 1)
	var during, after float64
	clk.Run(func() {
		clk.Go(func() {
			clk.Sleep(50 * time.Millisecond)
			during = m.Usage()
		})
		m.Compute(100*time.Millisecond, 88)
		after = m.Usage()
	})
	if during != 88 {
		t.Fatalf("usage during compute = %v, want 88", during)
	}
	if after != 0 {
		t.Fatalf("usage after compute = %v, want 0", after)
	}
}

func TestHistoryRecordsSamples(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	m := NewMachine(clk, "n", 1)
	clk.Run(func() {
		m.SetConstSource("x", 10)
		m.RecordSample()
		clk.Sleep(time.Second)
		m.SetConstSource("x", 70)
		m.RecordSample()
	})
	h := m.History()
	if len(h) != 2 || h[0].Usage != 10 || h[1].Usage != 70 {
		t.Fatalf("history = %+v", h)
	}
	if !h[1].At.After(h[0].At) {
		t.Fatal("history out of order")
	}
	if got := m.PeakUsage(epoch, epoch.Add(time.Hour)); got != 70 {
		t.Fatalf("peak = %v", got)
	}
	if got := m.PeakUsage(epoch, epoch.Add(time.Millisecond)); got != 10 {
		t.Fatalf("windowed peak = %v", got)
	}
}

func TestLoadSimulator1StaysInBand(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	m := NewMachine(clk, "n", 1)
	sim := NewLoadSimulator1(m)
	sim.Start()
	if !sim.Running() {
		t.Fatal("not running after Start")
	}
	clk.Run(func() {
		for i := 0; i < 200; i++ {
			u := m.Usage()
			if u < 30 || u > 50 {
				t.Errorf("t=%v usage %v outside [30,50]", clk.Since(epoch), u)
				return
			}
			clk.Sleep(137 * time.Millisecond)
		}
	})
	sim.Stop()
	if m.Usage() != 0 {
		t.Fatal("load persists after Stop")
	}
}

func TestLoadSimulator1Fluctuates(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	m := NewMachine(clk, "n", 1)
	sim := NewLoadSimulator1(m)
	sim.Start()
	seen := map[int]bool{}
	clk.Run(func() {
		for i := 0; i < 100; i++ {
			seen[int(m.Usage())] = true
			clk.Sleep(100 * time.Millisecond)
		}
	})
	if len(seen) < 5 {
		t.Fatalf("load simulator 1 produced only %d distinct levels", len(seen))
	}
}

func TestLoadSimulator2Saturates(t *testing.T) {
	m := NewMachine(vclock.NewReal(), "n", 1)
	sim := NewLoadSimulator2(m)
	sim.Start()
	if got := m.Usage(); got != 100 {
		t.Fatalf("usage = %v, want 100", got)
	}
	sim.Stop()
	if got := m.Usage(); got != 0 {
		t.Fatalf("usage after stop = %v", got)
	}
}

func TestPropUsageBounded(t *testing.T) {
	m := NewMachine(vclock.NewReal(), "n", 1)
	f := func(a, b, c float64) bool {
		m.SetConstSource("a", a)
		m.SetConstSource("b", b)
		m.SetConstSource("c", c)
		u := m.Usage()
		return u >= 0 && u <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropContentionMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := float64(a%101), float64(b%101)
		if x > y {
			x, y = y, x
		}
		return contentionFactor(x) <= contentionFactor(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestWatcherFiresOnBandCrossings(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	m := NewMachine(clk, "n", 1)
	classify := func(load float64) int {
		switch {
		case load >= 50:
			return 2
		case load >= 25:
			return 1
		default:
			return 0
		}
	}
	var fired []float64
	w := NewWatcher(clk, m, 100*time.Millisecond, classify, func(load float64) {
		fired = append(fired, load)
	})
	clk.Run(func() {
		clk.Go(w.Run)
		clk.Sleep(300 * time.Millisecond) // no change: no callback
		m.SetConstSource("user", 60)      // band 0 → 2
		clk.Sleep(300 * time.Millisecond)
		m.SetConstSource("user", 30) // band 2 → 1
		clk.Sleep(300 * time.Millisecond)
		m.ClearSource("user") // band 1 → 0
		clk.Sleep(300 * time.Millisecond)
		m.SetConstSource("user", 10) // still band 0: no callback
		clk.Sleep(300 * time.Millisecond)
		w.Stop()
	})
	if len(fired) != 3 {
		t.Fatalf("fired %d times (%v), want 3", len(fired), fired)
	}
	if fired[0] != 60 || fired[1] != 30 || fired[2] != 0 {
		t.Fatalf("fired loads %v", fired)
	}
}

func TestWatcherStopBeforeRun(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	m := NewMachine(clk, "n", 1)
	w := NewWatcher(clk, m, 50*time.Millisecond, func(float64) int { return 0 }, func(float64) {})
	w.Stop()
	clk.Run(func() {
		clk.Go(w.Run) // must exit immediately
	})
}

func TestDefaultSpeedGuard(t *testing.T) {
	m := NewMachine(vclock.NewReal(), "n", -3)
	if m.Speed() != 1 {
		t.Fatalf("speed = %v, want fallback 1", m.Speed())
	}
}
