package faults

import (
	"fmt"
	"time"
)

// PlanSpec is the serializable form of a Plan: everything the rule
// builders accept, as data. Scenario manifests (internal/scenario) embed
// one so a generated fault schedule can be logged, shipped as a CI
// artifact, and rebuilt bit-for-bit from JSON — Build constructs a fresh
// unbound Plan, which matters because a Plan itself drives exactly one
// run (see Bind) and cannot be reused or serialized.
type PlanSpec struct {
	Seed int64 `json:"seed"`
	// Rules are the call-triggered injections, applied in order (the
	// order is part of the schedule: decision streams are keyed by rule
	// index).
	Rules []RuleSpec `json:"rules,omitempty"`
	// Partitions are scheduled one-way cuts.
	Partitions []PartitionSpec `json:"partitions,omitempty"`
	// Crashes are scheduled endpoint downtime windows.
	Crashes []CrashWindowSpec `json:"crashes,omitempty"`
}

// Rule kinds accepted by RuleSpec.Kind.
const (
	RuleDrop        = "drop"
	RuleDelay       = "delay"
	RuleDuplicate   = "duplicate"
	RuleCrashOnCall = "crash-on-call" // fires on the Nth matching call
	RuleCrashOnProb = "crash-on-prob" // fires with probability Prob per call
)

// RuleSpec is one call-triggered injection. From/To/Method are endpoint
// patterns ("" matches anything, trailing '*' prefix-matches).
type RuleSpec struct {
	Kind   string `json:"kind"`
	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	Method string `json:"method,omitempty"`
	// Prob triggers drop/delay/duplicate/crash-on-prob rules.
	Prob float64 `json:"prob,omitempty"`
	// Nth triggers crash-on-call rules: the stream's nth matching call.
	Nth int `json:"nth,omitempty"`
	// Delay is the added latency for delay rules.
	Delay time.Duration `json:"delay,omitempty"`
	// Point is "before" or "after" (default) for crash rules — whether the
	// endpoint dies before the handler runs or after it succeeded.
	Point string `json:"point,omitempty"`
	// Endpoint is who dies for crash rules ("" = the call's from side).
	Endpoint string `json:"endpoint,omitempty"`
	// DownFor is the crash downtime; <= 0 means forever.
	DownFor time.Duration `json:"down_for,omitempty"`
}

// PartitionSpec cuts calls From→To during [Start, End) offsets from the
// Bind epoch; End <= 0 means forever.
type PartitionSpec struct {
	From  string        `json:"from"`
	To    string        `json:"to"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// CrashWindowSpec schedules Endpoint (pattern) down during [Start, End)
// offsets from the Bind epoch; End <= 0 means forever.
type CrashWindowSpec struct {
	Endpoint string        `json:"endpoint"`
	Start    time.Duration `json:"start"`
	End      time.Duration `json:"end"`
}

// crashPoint maps a RuleSpec.Point string to its CrashPoint.
func crashPoint(s string) (CrashPoint, error) {
	switch s {
	case "", "after":
		return AfterHandler, nil
	case "before":
		return BeforeHandler, nil
	default:
		return 0, fmt.Errorf("faults: unknown crash point %q (want \"before\" or \"after\")", s)
	}
}

// Build constructs a fresh, unbound Plan from the spec. Call Bind on the
// result (or hand it to core.Config.Faults, whose assembly binds it)
// before use. Building twice yields two independent plans with identical
// schedules — the replay property the scenario shrinker relies on.
func (s PlanSpec) Build() (*Plan, error) {
	p := NewPlan(s.Seed)
	for i, r := range s.Rules {
		switch r.Kind {
		case RuleDrop:
			p.DropCalls(r.From, r.To, r.Method, r.Prob)
		case RuleDelay:
			p.DelayCalls(r.From, r.To, r.Method, r.Delay, r.Prob)
		case RuleDuplicate:
			p.DuplicateCalls(r.From, r.To, r.Method, r.Prob)
		case RuleCrashOnCall:
			pt, err := crashPoint(r.Point)
			if err != nil {
				return nil, fmt.Errorf("rule %d: %w", i, err)
			}
			if r.Nth <= 0 {
				return nil, fmt.Errorf("faults: rule %d: crash-on-call needs nth >= 1, got %d", i, r.Nth)
			}
			p.CrashOnCall(r.From, r.To, r.Method, r.Nth, pt, r.Endpoint, r.DownFor)
		case RuleCrashOnProb:
			pt, err := crashPoint(r.Point)
			if err != nil {
				return nil, fmt.Errorf("rule %d: %w", i, err)
			}
			p.CrashProbOnCall(r.From, r.To, r.Method, r.Prob, pt, r.Endpoint, r.DownFor)
		default:
			return nil, fmt.Errorf("faults: rule %d: unknown kind %q", i, r.Kind)
		}
	}
	for _, pt := range s.Partitions {
		p.PartitionOneWay(pt.From, pt.To, pt.Start, pt.End)
	}
	for _, c := range s.Crashes {
		p.CrashEndpoint(c.Endpoint, c.Start, c.End)
	}
	return p, nil
}
