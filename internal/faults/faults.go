// Package faults is a seeded, deterministic fault-injection layer for the
// framework's transports. A Plan is a scripted schedule of adverse network
// and process behaviour — dropped calls, added latency, duplicated
// deliveries, one-way partitions between named endpoints, and endpoint
// crashes (scripted by virtual time, or triggered on the Nth matching call,
// before or after the handler runs). The same Plan drives both transport
// bindings: install Interceptor on an in-process transport.Network (the
// simulated cluster under the virtual clock), or wrap individual TCP
// clients with WrapClient.
//
// Determinism: probabilistic rules draw from a splitmix-style stream keyed
// by (plan seed, rule, endpoint pair) with a per-stream call counter, so a
// given seed produces the same injected schedule on every run of a
// deterministic (virtual-clock) simulation — the property the chaos suite's
// reproducibility assertions rely on. Every injected event is counted in a
// metrics.Counters under the Event* keys.
//
// The paper's claim under test is §3's fault tolerance: a worker that dies
// between Take(task) and Write(result) holds the task under a leased
// transaction, so the lease expires, the transaction aborts, and the task
// reappears for another worker. The chaos scenario suite in internal/e2e,
// internal/shard and internal/master scripts exactly those failures.
package faults

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

// Event keys under which injected events are counted (see Plan.Counters).
// Crashes are additionally counted per endpoint under
// "faults:crash:<endpoint>". The strings are owned by the canonical
// metric-name set in internal/metrics/names.go.
const (
	EventDrop        = metrics.CounterFaultDrop
	EventDelay       = metrics.CounterFaultDelay
	EventDuplicate   = metrics.CounterFaultDuplicate
	EventCrash       = metrics.CounterFaultCrash
	EventPartitioned = metrics.CounterFaultPartitioned
	EventDeadCall    = metrics.CounterFaultDeadCall
)

// ErrInjected is the root of every error the fault layer injects; callers
// can errors.Is against it to distinguish injected failures from real ones
// in tests.
var ErrInjected = errors.New("faults: injected failure")

// Error is the concrete injected failure, carrying what was injected and
// where.
type Error struct {
	Kind     string // "drop", "crash", "partitioned", "dead-call"
	Endpoint string // the dead, crashed or partitioned endpoint ("" for drops)
	Method   string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Endpoint != "" {
		return fmt.Sprintf("faults: injected %s at %s (%s)", e.Kind, e.Endpoint, e.Method)
	}
	return fmt.Sprintf("faults: injected %s (%s)", e.Kind, e.Method)
}

// Unwrap makes errors.Is(err, ErrInjected) hold for every injected error.
func (e *Error) Unwrap() error { return ErrInjected }

// CrashPoint says when, relative to the handler, a crash-on-call fires.
type CrashPoint int

const (
	// BeforeHandler kills the endpoint before the handler runs: the call
	// is never delivered.
	BeforeHandler CrashPoint = iota
	// AfterHandler kills the endpoint after the handler has run
	// successfully: the operation took effect at the server but the reply
	// is lost — the scenario behind "crashed between Take and Write".
	// After-crashes only fire on calls whose handler succeeds, so a rule
	// on space.Take crashes the caller while it actually holds a task.
	AfterHandler
)

type action int

const (
	actDrop action = iota
	actDelay
	actDup
	actCrash
)

// rule is one call-triggered injection.
type rule struct {
	from, to, method string
	act              action
	point            CrashPoint
	prob             float64       // probabilistic trigger (when nth == 0)
	nth              uint64        // fire on the nth matching call of a stream
	delay            time.Duration // actDelay
	endpoint         string        // actCrash: who dies ("" = the call's from, else to)
	downFor          time.Duration // actCrash: downtime; <= 0 means forever
}

// streamKey returns the deterministic decision-stream key for a call
// matched by r. Crash rules stream per crash target so "nth" means "the
// endpoint's nth matching call" regardless of which shard it talked to;
// other rules stream per (from,to,method) pair so concurrent callers'
// schedules do not perturb each other.
func (r *rule) streamKey(i int, from, to string) string {
	if r.act == actCrash {
		return fmt.Sprintf("%d|%s", i, r.crashTarget(from, to))
	}
	return fmt.Sprintf("%d|%s|%s", i, from, to)
}

func (r *rule) crashTarget(from, to string) string {
	if r.endpoint != "" {
		return r.endpoint
	}
	if from != "" {
		return from
	}
	return to
}

func (r *rule) matches(from, to, method string) bool {
	return matchPat(r.from, from) && matchPat(r.to, to) && matchPat(r.method, method)
}

// matchPat matches s against pat: "" matches anything, a trailing '*'
// prefix-matches, anything else is exact.
func matchPat(pat, s string) bool {
	if pat == "" {
		return true
	}
	if strings.HasSuffix(pat, "*") {
		return strings.HasPrefix(s, pat[:len(pat)-1])
	}
	return pat == s
}

// window is a [Start, End) interval of offsets from the plan epoch;
// End <= 0 means forever.
type window struct {
	start, end time.Duration
}

func (w window) contains(off time.Duration) bool {
	return off >= w.start && (w.end <= 0 || off < w.end)
}

// partition is a scheduled one-way cut: calls from→to fail during the
// window.
type partition struct {
	from, to string
	win      window
}

// crashSched is a scheduled endpoint downtime window.
type crashSched struct {
	endpoint string
	win      window
}

// Plan is a deterministic fault schedule. Configure it with the rule
// builders, Bind it to the run's clock, then install it on the transports.
// All methods are safe for concurrent use once bound.
type Plan struct {
	seed uint64

	mu       sync.Mutex
	clock    vclock.Clock
	epoch    time.Time
	rules    []*rule
	parts    []partition
	sched    []crashSched
	down     map[string]time.Time // endpoint → up-again time; zero = forever
	streams  map[string]uint64    // decision-stream call counters
	fired    map[string]bool      // nth-rules that already fired, per stream
	counters *metrics.Counters
}

// NewPlan returns an empty plan drawing its decision streams from seed.
func NewPlan(seed int64) *Plan {
	return &Plan{
		seed:     uint64(seed),
		down:     make(map[string]time.Time),
		streams:  make(map[string]uint64),
		fired:    make(map[string]bool),
		counters: metrics.NewCounters(),
	}
}

// Bind attaches the plan to the run's clock and stamps the epoch that
// scripted windows (PartitionOneWay, CrashEndpoint) are measured from.
// core.New calls it when Config.Faults is set; direct users must call it
// before installing the plan.
//
// A Plan drives exactly one run. Rebinding would silently restamp the
// epoch — shifting every scripted window — and, raced from another
// goroutine, would tear the (clock, epoch) pair out from under in-flight
// decisions; both bugs reproduce only under the colliding schedule. Bind
// therefore panics loudly on any rebind attempt once the plan has a
// clock: build a fresh Plan (or PlanSpec.Build) per run instead.
func (p *Plan) Bind(clock vclock.Clock) {
	if clock == nil {
		panic("faults: Bind(nil clock)")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.clock != nil {
		panic("faults: plan already bound — a Plan drives exactly one run; build a fresh Plan per run")
	}
	p.clock = clock
	p.epoch = clock.Now()
}

// Counters returns the injected-event counters.
func (p *Plan) Counters() *metrics.Counters { return p.counters }

// DropCalls drops each matching call with probability prob (the caller
// sees an injected error; the handler never runs).
func (p *Plan) DropCalls(from, to, method string, prob float64) {
	p.addRule(&rule{from: from, to: to, method: method, act: actDrop, prob: prob})
}

// DelayCalls adds d of extra latency to each matching call with
// probability prob, charged to the caller's clock before delivery.
func (p *Plan) DelayCalls(from, to, method string, d time.Duration, prob float64) {
	p.addRule(&rule{from: from, to: to, method: method, act: actDelay, delay: d, prob: prob})
}

// DuplicateCalls re-delivers each successful matching call with
// probability prob: the handler runs twice, modeling at-least-once
// redelivery. The caller sees the first delivery's reply.
func (p *Plan) DuplicateCalls(from, to, method string, prob float64) {
	p.addRule(&rule{from: from, to: to, method: method, act: actDup, prob: prob})
}

// CrashOnCall kills endpoint on the nth matching call of its stream, at
// the given point, for downFor (<= 0: forever). endpoint "" means the
// call's own from side (the usual "the worker itself dies" case). While
// down, every call from or to the endpoint fails with an injected
// dead-call error. With point AfterHandler only calls whose handler
// succeeded count toward (and trigger) the nth — a rule on "space.Take*"
// therefore crashes the caller precisely between its Take and its Write.
// Each stream fires at most once.
func (p *Plan) CrashOnCall(from, to, method string, nth int, point CrashPoint, endpoint string, downFor time.Duration) {
	p.addRule(&rule{from: from, to: to, method: method, act: actCrash,
		point: point, nth: uint64(nth), endpoint: endpoint, downFor: downFor})
}

// CrashProbOnCall is CrashOnCall with a per-call probability instead of a
// call index, and may fire repeatedly — the knob the FaultSweep experiment
// turns.
func (p *Plan) CrashProbOnCall(from, to, method string, prob float64, point CrashPoint, endpoint string, downFor time.Duration) {
	p.addRule(&rule{from: from, to: to, method: method, act: actCrash,
		point: point, prob: prob, endpoint: endpoint, downFor: downFor})
}

func (p *Plan) addRule(r *rule) {
	p.mu.Lock()
	p.rules = append(p.rules, r)
	p.mu.Unlock()
}

// PartitionOneWay cuts calls from→to (patterns) during [start, end)
// offsets from the Bind epoch; end <= 0 means forever. Cut both directions
// with two calls.
func (p *Plan) PartitionOneWay(from, to string, start, end time.Duration) {
	p.mu.Lock()
	p.parts = append(p.parts, partition{from: from, to: to, win: window{start, end}})
	p.mu.Unlock()
}

// CrashEndpoint schedules endpoint (pattern) down during [start, end)
// offsets from the Bind epoch; end <= 0 means forever — the
// "crash-restart the lookup service at t=0..2s" script.
func (p *Plan) CrashEndpoint(endpoint string, start, end time.Duration) {
	p.mu.Lock()
	p.sched = append(p.sched, crashSched{endpoint: endpoint, win: window{start, end}})
	p.mu.Unlock()
}

// Down reports whether endpoint is currently dead (scripted window or
// triggered crash).
func (p *Plan) Down(endpoint string) bool {
	now, off := p.nowOff()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.isDownLocked(endpoint, now, off)
}

// Interceptor adapts the plan to the in-process network hook:
// net.Intercept(plan.Interceptor()).
func (p *Plan) Interceptor() transport.Interceptor {
	return func(from, to, method string, invoke func() (interface{}, error)) (interface{}, error) {
		return p.intercept(from, to, method, invoke)
	}
}

// WrapClient wraps any transport.Client (typically a TCP client) so its
// calls route through the plan, tagged with the given endpoint names.
func (p *Plan) WrapClient(from, to string, inner transport.Client) transport.Client {
	return &wrappedClient{p: p, from: from, to: to, inner: inner}
}

type wrappedClient struct {
	p        *Plan
	from, to string
	inner    transport.Client
}

// Call implements transport.Client.
func (w *wrappedClient) Call(method string, arg interface{}) (interface{}, error) {
	return w.p.intercept(w.from, w.to, method, func() (interface{}, error) {
		return w.inner.Call(method, arg)
	})
}

// Close implements transport.Client.
func (w *wrappedClient) Close() error { return w.inner.Close() }

func (p *Plan) nowOff() (time.Time, time.Duration) {
	p.mu.Lock()
	clock, epoch := p.clock, p.epoch
	p.mu.Unlock()
	if clock == nil {
		panic("faults: plan used before Bind")
	}
	now := clock.Now()
	return now, now.Sub(epoch)
}

func (p *Plan) isDownLocked(endpoint string, now time.Time, off time.Duration) bool {
	if endpoint == "" {
		return false
	}
	if until, ok := p.down[endpoint]; ok {
		if until.IsZero() || now.Before(until) {
			return true
		}
		delete(p.down, endpoint) // healed: the endpoint has restarted
	}
	for _, s := range p.sched {
		if matchPat(s.endpoint, endpoint) && s.win.contains(off) {
			return true
		}
	}
	return false
}

// decideLocked advances r's decision stream for this call and reports
// whether the rule fires. For nth-rules the stream fires exactly once, on
// its nth matching call.
func (p *Plan) decideLocked(i int, r *rule, from, to string) bool {
	key := r.streamKey(i, from, to)
	p.streams[key]++
	n := p.streams[key]
	if r.nth > 0 {
		if p.fired[key] || n != r.nth {
			return false
		}
		p.fired[key] = true
		return true
	}
	if r.prob <= 0 {
		return false
	}
	if r.prob >= 1 {
		return true
	}
	return unit(p.seed^hash64(key), n) < r.prob
}

func (p *Plan) killLocked(endpoint string, now time.Time, downFor time.Duration) {
	if downFor > 0 {
		p.down[endpoint] = now.Add(downFor)
	} else {
		p.down[endpoint] = time.Time{}
	}
	p.counters.Inc(EventCrash)
	p.counters.Inc(EventCrash + ":" + endpoint)
}

// intercept applies the plan to one call. It is the single choke point
// both transport adapters funnel through.
func (p *Plan) intercept(from, to, method string, invoke func() (interface{}, error)) (interface{}, error) {
	now, off := p.nowOff()

	p.mu.Lock()
	if p.isDownLocked(from, now, off) {
		p.mu.Unlock()
		p.counters.Inc(EventDeadCall)
		return nil, &Error{Kind: "dead-call", Endpoint: from, Method: method}
	}
	if p.isDownLocked(to, now, off) {
		p.mu.Unlock()
		p.counters.Inc(EventDeadCall)
		return nil, &Error{Kind: "dead-call", Endpoint: to, Method: method}
	}
	for _, pt := range p.parts {
		if matchPat(pt.from, from) && matchPat(pt.to, to) && pt.win.contains(off) {
			p.mu.Unlock()
			p.counters.Inc(EventPartitioned)
			return nil, &Error{Kind: "partitioned", Endpoint: to, Method: method}
		}
	}
	// Pre-delivery rules: the first firing one applies. After-crashes are
	// held back until the handler outcome is known.
	var delay time.Duration
	dup := false
	var after []int // indices of matching AfterHandler crash rules
	fired := false
	for i, r := range p.rules {
		if !r.matches(from, to, method) {
			continue
		}
		if r.act == actCrash && r.point == AfterHandler {
			after = append(after, i)
			continue
		}
		if fired || !p.decideLocked(i, r, from, to) {
			continue
		}
		switch r.act {
		case actDrop:
			p.mu.Unlock()
			p.counters.Inc(EventDrop)
			return nil, &Error{Kind: "drop", Method: method}
		case actDelay:
			delay = r.delay
		case actDup:
			dup = true
		case actCrash: // BeforeHandler
			target := r.crashTarget(from, to)
			p.killLocked(target, now, r.downFor)
			p.mu.Unlock()
			return nil, &Error{Kind: "crash", Endpoint: target, Method: method}
		}
		fired = true
	}
	p.mu.Unlock()

	if delay > 0 {
		p.counters.Inc(EventDelay)
		p.boundClock().Sleep(delay)
	}

	res, err := invoke()
	if err != nil {
		return res, err
	}
	if dup {
		p.counters.Inc(EventDuplicate)
		invoke() //nolint:errcheck // redelivery: the duplicate's reply is discarded
	}

	// After-crashes: only successful deliveries count toward the stream.
	if len(after) > 0 {
		now = p.clockNow()
		p.mu.Lock()
		for _, i := range after {
			r := p.rules[i]
			if !p.decideLocked(i, r, from, to) {
				continue
			}
			target := r.crashTarget(from, to)
			p.killLocked(target, now, r.downFor)
			p.mu.Unlock()
			return nil, &Error{Kind: "crash", Endpoint: target, Method: method}
		}
		p.mu.Unlock()
	}
	return res, nil
}

func (p *Plan) boundClock() vclock.Clock {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.clock == nil {
		panic("faults: plan used before Bind")
	}
	return p.clock
}

func (p *Plan) clockNow() time.Time {
	return p.boundClock().Now()
}

// --- deterministic decision streams ---

// hash64 is FNV-1a with a splitmix-style finalizer (the same construction
// the shard ring uses) over s.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var x uint64 = offset64
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= prime64
	}
	return mix(x)
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// unit maps (stream, n) to a uniform value in [0, 1).
func unit(stream, n uint64) float64 {
	return float64(mix(stream+n*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
}
