package faults

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"gospaces/internal/vclock"
)

// TestPlanSpecBuildMatchesBuilders: a spec-built plan must inject the
// exact schedule the equivalent builder-configured plan does — Build is
// the manifest replay path, so any drift breaks failure reproduction.
func TestPlanSpecBuildMatchesBuilders(t *testing.T) {
	spec := PlanSpec{
		Seed: 42,
		Rules: []RuleSpec{
			{Kind: RuleDrop, From: "node/*", To: "master", Method: "space.Write", Prob: 0.3},
			{Kind: RuleCrashOnCall, From: "node/*", Method: "space.Take*", Nth: 2, Point: "after", DownFor: 10 * time.Second},
		},
		Crashes: []CrashWindowSpec{{Endpoint: "lookup", Start: 0, End: 2 * time.Second}},
	}

	handConfigured := func() *Plan {
		p := NewPlan(42)
		p.DropCalls("node/*", "master", "space.Write", 0.3)
		p.CrashOnCall("node/*", "", "space.Take*", 2, AfterHandler, "", 10*time.Second)
		p.CrashEndpoint("lookup", 0, 2*time.Second)
		return p
	}

	history := func(p *Plan) []string {
		clk := vclock.NewVirtual(time.Date(2001, time.March, 1, 0, 0, 0, 0, time.UTC))
		p.Bind(clk)
		var got []string
		clk.Run(func() {
			clk.Sleep(3 * time.Second) // past the lookup crash window
			for i := 0; i < 40; i++ {
				_, err := p.intercept("node/node01", "master", "space.Write", ok)
				got = append(got, errKind(err))
				_, err = p.intercept("node/node01", "master.shard1", "space.Take", ok)
				got = append(got, errKind(err))
			}
		})
		return got
	}

	built, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a, b := history(built), history(handConfigured())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("spec-built plan diverged from builder-configured plan:\n spec: %v\n hand: %v", a, b)
	}
}

// TestPlanSpecJSONRoundTrip: manifests persist specs as JSON artifacts;
// the decode must reproduce the schedule-defining fields exactly.
func TestPlanSpecJSONRoundTrip(t *testing.T) {
	spec := PlanSpec{
		Seed: 7,
		Rules: []RuleSpec{
			{Kind: RuleDelay, From: "a", To: "b", Method: "m", Prob: 0.5, Delay: 250 * time.Millisecond},
			{Kind: RuleCrashOnProb, From: "node/*", Prob: 0.1, Point: "before", DownFor: 5 * time.Second},
		},
		Partitions: []PartitionSpec{{From: "x", To: "y", Start: time.Second, End: 3 * time.Second}},
		Crashes:    []CrashWindowSpec{{Endpoint: "lookup", End: 2 * time.Second}},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got PlanSpec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(spec, got) {
		t.Fatalf("round trip changed the spec:\n  in:  %+v\n  out: %+v", spec, got)
	}
	if _, err := got.Build(); err != nil {
		t.Fatalf("Build after round trip: %v", err)
	}
}

// TestPlanSpecBuildRejectsBadRules: a corrupted artifact should fail
// loudly at Build, not silently skip rules.
func TestPlanSpecBuildRejectsBadRules(t *testing.T) {
	cases := []PlanSpec{
		{Rules: []RuleSpec{{Kind: "explode"}}},
		{Rules: []RuleSpec{{Kind: RuleCrashOnCall, Nth: 0}}},
		{Rules: []RuleSpec{{Kind: RuleCrashOnCall, Nth: 1, Point: "sideways"}}},
	}
	for i, spec := range cases {
		if _, err := spec.Build(); err == nil {
			t.Errorf("case %d: Build accepted invalid spec %+v", i, spec)
		}
	}
}

// TestPlanRebindPanics: a Plan drives exactly one run. Rebinding restamps
// the window epoch and races in-flight decisions, so it must fail loudly
// instead of corrupting the schedule.
func TestPlanRebindPanics(t *testing.T) {
	p := NewPlan(1)
	p.Bind(vclock.NewReal())
	defer func() {
		if recover() == nil {
			t.Fatal("second Bind did not panic")
		}
	}()
	p.Bind(vclock.NewReal())
}

// TestPlanConcurrentStreamsDeterministic drives two distinct endpoint-pair
// decision streams from two goroutines. Because streams are keyed by
// (rule, from, to) with their own counters, each caller's injected
// schedule must be identical across same-seed runs no matter how the
// goroutines interleave — the property that lets the scenario runner use
// one shared plan for a whole simulated cluster.
func TestPlanConcurrentStreamsDeterministic(t *testing.T) {
	const calls = 200
	run := func() (a, b []string) {
		p := NewPlan(99)
		p.DropCalls("node/*", "master", "space.Write", 0.4)
		p.Bind(vclock.NewReal())
		ic := p.Interceptor()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				_, err := ic("node/node01", "master", "space.Write", ok)
				a = append(a, errKind(err))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				_, err := ic("node/node02", "master", "space.Write", ok)
				b = append(b, errKind(err))
			}
		}()
		wg.Wait()
		return a, b
	}
	a1, b1 := run()
	a2, b2 := run()
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("same seed produced different per-stream schedules under concurrency")
	}
	drops := 0
	for _, k := range a1 {
		if k == "drop" {
			drops++
		}
	}
	if drops == 0 || drops == calls {
		t.Fatalf("stream A dropped %d/%d calls; determinism check is vacuous", drops, calls)
	}
}

func ok() (interface{}, error) { return nil, nil }

func errKind(err error) string {
	if err == nil {
		return "ok"
	}
	if fe, isInjected := err.(*Error); isInjected {
		return fe.Kind
	}
	return "err"
}
