package faults

import (
	"errors"
	"testing"
	"time"

	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

var epoch = time.Date(2001, time.March, 1, 0, 0, 0, 0, time.UTC)

// echoServer returns a Server with a method that counts and echoes.
func echoServer(calls *int) *transport.Server {
	srv := transport.NewServer()
	srv.Handle("echo.Ping", func(arg interface{}) (interface{}, error) {
		*calls++
		return arg, nil
	})
	return srv
}

func TestSameSeedSameSchedule(t *testing.T) {
	run := func(seed int64) []bool {
		p := NewPlan(seed)
		p.Bind(vclock.NewReal())
		p.DropCalls("a", "b", "", 0.5)
		var fired []bool
		for n := 0; n < 64; n++ {
			p.mu.Lock()
			fired = append(fired, p.decideLocked(0, p.rules[0], "a", "b"))
			p.mu.Unlock()
		}
		return fired
	}
	s1, s2, s3 := run(7), run(7), run(8)
	if len(s1) != 64 {
		t.Fatalf("got %d decisions", len(s1))
	}
	diff13 := false
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if s1[i] != s3[i] {
			diff13 = true
		}
	}
	if !diff13 {
		t.Fatal("seeds 7 and 8 produced identical 64-call schedules")
	}
	any := false
	for _, f := range s1 {
		any = any || f
	}
	if !any {
		t.Fatal("prob 0.5 never fired in 64 calls")
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	// Interleaving calls from another endpoint pair must not shift a
	// stream's decisions — the property that keeps virtual-clock chaos
	// runs reproducible despite goroutine interleaving.
	decisions := func(interleave bool) []bool {
		p := NewPlan(3)
		p.Bind(vclock.NewReal())
		p.DropCalls("", "b", "", 0.5)
		var out []bool
		for n := 0; n < 32; n++ {
			if interleave {
				p.mu.Lock()
				p.decideLocked(0, p.rules[0], "other", "b")
				p.mu.Unlock()
			}
			p.mu.Lock()
			out = append(out, p.decideLocked(0, p.rules[0], "a", "b"))
			p.mu.Unlock()
		}
		return out
	}
	plain, mixed := decisions(false), decisions(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("stream (a,b) perturbed by (other,b) traffic at call %d", i)
		}
	}
}

func TestDropDelayDuplicateOverInproc(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	clk.Run(func() {
		net := transport.NewNetwork(clk, transport.Loopback())
		handled := 0
		net.Listen("svc", echoServer(&handled))

		p := NewPlan(1)
		p.Bind(clk)
		p.DropCalls("caller", "svc", "echo.Ping", 1)
		net.Intercept(p.Interceptor())

		c := net.DialAs("caller", "svc")
		if _, err := c.Call("echo.Ping", "x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("dropped call: got err %v, want ErrInjected", err)
		}
		if handled != 0 {
			t.Fatalf("dropped call reached the handler")
		}
		if got := p.Counters().Get(EventDrop); got != 1 {
			t.Fatalf("drop count = %d, want 1", got)
		}

		// Replace with a delay-everything plan.
		p2 := NewPlan(1)
		p2.Bind(clk)
		p2.DelayCalls("", "svc", "", 40*time.Millisecond, 1)
		net.Intercept(p2.Interceptor())
		before := clk.Now()
		if _, err := c.Call("echo.Ping", "x"); err != nil {
			t.Fatalf("delayed call failed: %v", err)
		}
		if d := clk.Now().Sub(before); d < 40*time.Millisecond {
			t.Fatalf("delayed call took %v, want >= 40ms", d)
		}
		if handled != 1 {
			t.Fatalf("handled = %d after delayed call, want 1", handled)
		}

		// And a duplicate-everything plan: one Call, two deliveries.
		p3 := NewPlan(1)
		p3.Bind(clk)
		p3.DuplicateCalls("", "svc", "echo.Ping", 1)
		net.Intercept(p3.Interceptor())
		if _, err := c.Call("echo.Ping", "x"); err != nil {
			t.Fatalf("duplicated call failed: %v", err)
		}
		if handled != 3 {
			t.Fatalf("handled = %d after duplicated call, want 3", handled)
		}
		if got := p3.Counters().Get(EventDuplicate); got != 1 {
			t.Fatalf("duplicate count = %d, want 1", got)
		}
	})
}

func TestCrashOnCallAfterHandler(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	clk.Run(func() {
		net := transport.NewNetwork(clk, transport.Loopback())
		handled := 0
		srv := transport.NewServer()
		srv.Handle("echo.Ping", func(arg interface{}) (interface{}, error) {
			handled++
			if handled == 1 {
				return nil, errors.New("first call fails")
			}
			return arg, nil
		})
		net.Listen("svc", srv)

		p := NewPlan(1)
		p.Bind(clk)
		// Crash the caller on its 1st *successful* call, down for 1s.
		p.CrashOnCall("w1", "svc", "echo.Ping", 1, AfterHandler, "", time.Second)
		net.Intercept(p.Interceptor())

		c := net.DialAs("w1", "svc")
		// Handler error: must NOT consume the nth-success budget.
		if _, err := c.Call("echo.Ping", "x"); err == nil {
			t.Fatal("expected handler error on first call")
		}
		if p.Down("w1") {
			t.Fatal("crashed on a failed call")
		}
		// First success: handler runs (effect lands), reply lost, caller dead.
		_, err := c.Call("echo.Ping", "x")
		var fe *Error
		if !errors.As(err, &fe) || fe.Kind != "crash" {
			t.Fatalf("got err %v, want injected crash", err)
		}
		if handled != 2 {
			t.Fatalf("handled = %d, want 2 (after-crash must run the handler)", handled)
		}
		if !p.Down("w1") {
			t.Fatal("w1 should be down")
		}
		// While down, both directions fail without reaching the handler.
		if _, err := c.Call("echo.Ping", "x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call from dead endpoint: %v", err)
		}
		if _, err := net.DialAs("svc", "w1").Call("echo.Ping", "x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call to dead endpoint: %v", err)
		}
		if handled != 2 {
			t.Fatalf("handled = %d, dead-call leaked through", handled)
		}
		// Heal after downFor: calls flow again, and the nth rule is spent.
		clk.Sleep(1200 * time.Millisecond)
		if p.Down("w1") {
			t.Fatal("w1 should have restarted")
		}
		if _, err := c.Call("echo.Ping", "x"); err != nil {
			t.Fatalf("call after restart: %v", err)
		}
		if got := p.Counters().Get(EventCrash + ":w1"); got != 1 {
			t.Fatalf("crash:w1 = %d, want exactly 1", got)
		}
	})
}

func TestPartitionOneWayAndCrashWindow(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	clk.Run(func() {
		net := transport.NewNetwork(clk, transport.Loopback())
		handled := 0
		net.Listen("svc", echoServer(&handled))

		p := NewPlan(1)
		p.Bind(clk)
		p.PartitionOneWay("a", "svc", 0, 500*time.Millisecond)
		p.CrashEndpoint("svc", time.Second, 2*time.Second)
		net.Intercept(p.Interceptor())

		a, b := net.DialAs("a", "svc"), net.DialAs("b", "svc")
		// In the partition window: a→svc cut, b→svc open (one-way).
		if _, err := a.Call("echo.Ping", "x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("partitioned call: %v", err)
		}
		if _, err := b.Call("echo.Ping", "x"); err != nil {
			t.Fatalf("unpartitioned caller failed: %v", err)
		}
		// After the window closes, a heals.
		clk.Sleep(600 * time.Millisecond)
		if _, err := a.Call("echo.Ping", "x"); err != nil {
			t.Fatalf("call after partition healed: %v", err)
		}
		// Inside the scripted crash window the service is dead to everyone.
		clk.Sleep(600 * time.Millisecond) // now at t=1.2s
		if _, err := b.Call("echo.Ping", "x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call during crash window: %v", err)
		}
		clk.Sleep(time.Second) // past the window
		if _, err := b.Call("echo.Ping", "x"); err != nil {
			t.Fatalf("call after crash window: %v", err)
		}
		if got := p.Counters().Get(EventPartitioned); got != 1 {
			t.Fatalf("partitioned count = %d, want 1", got)
		}
		if got := p.Counters().Get(EventDeadCall); got != 1 {
			t.Fatalf("dead-call count = %d, want 1", got)
		}
	})
}

func TestWrapClientOverTCP(t *testing.T) {
	handled := 0
	srv := transport.NewServer()
	srv.Handle("echo.Ping", func(arg interface{}) (interface{}, error) {
		handled++
		return arg, nil
	})
	ln, err := transport.ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	inner, err := transport.DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}

	p := NewPlan(1)
	p.Bind(vclock.NewReal())
	p.DropCalls("client", "server", "echo.Ping", 1)
	c := p.WrapClient("client", "server", inner)
	defer c.Close()

	if _, err := c.Call("echo.Ping", "x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped TCP call: %v", err)
	}
	if handled != 0 {
		t.Fatal("dropped TCP call reached the handler")
	}
	// Swap the plan's rules out from under the wrapper: a fresh plan with
	// no rules must pass calls through untouched.
	p2 := NewPlan(1)
	p2.Bind(vclock.NewReal())
	c2 := p2.WrapClient("client", "server", inner)
	if _, err := c2.Call("echo.Ping", "hello"); err != nil {
		t.Fatalf("clean wrapped call: %v", err)
	}
	if handled != 1 {
		t.Fatalf("handled = %d, want 1", handled)
	}
}
