package faults

import "io"

// Disk fault injection: the durable space service exposes its WAL writes
// through an io.Writer hook (wal.Options.WrapWriter); wrapping that hook
// with Plan.WrapWriter routes every segment write through the same
// deterministic rule engine as network calls. The strict-durability tests
// use it to prove a failed disk write surfaces as a loud space error
// instead of an acknowledged-but-lost record.

// MethodDiskWrite is the method name disk writes are intercepted under.
const MethodDiskWrite = "disk.Write"

// DiskEndpoint returns the fault-plan endpoint name for the disk behind
// the named service. Kept distinct from the service's own network
// endpoint so scripted network outages (CrashEndpoint) do not silently
// fail the recovery I/O of the restarting process.
func DiskEndpoint(service string) string { return "disk:" + service }

// DropNthCall fails exactly the nth matching call of the stream with an
// injected drop error (the underlying operation never runs). With
// method MethodDiskWrite and a DiskEndpoint target this scripts "the nth
// WAL write returns an I/O error" deterministically.
func (p *Plan) DropNthCall(from, to, method string, nth int) {
	p.addRule(&rule{from: from, to: to, method: method, act: actDrop, nth: uint64(nth)})
}

// WrapWriter wraps w so every Write routes through the plan, addressed to
// endpoint (conventionally DiskEndpoint(service)). A firing drop rule
// makes the Write return the injected error without touching w — a torn
// or failed disk write as seen by the WAL.
func (p *Plan) WrapWriter(endpoint string, w io.Writer) io.Writer {
	return &faultWriter{p: p, endpoint: endpoint, w: w}
}

type faultWriter struct {
	p        *Plan
	endpoint string
	w        io.Writer
}

// Write implements io.Writer.
func (fw *faultWriter) Write(b []byte) (int, error) {
	res, err := fw.p.intercept("", fw.endpoint, MethodDiskWrite, func() (interface{}, error) {
		return fw.w.Write(b)
	})
	if err != nil {
		return 0, err
	}
	return res.(int), nil
}
