package core

// Observation hooks for harnesses that need to inspect a live framework's
// topology without reaching into its locked internals — the randomized
// scenario runner (internal/scenario) drives its invariant checks through
// these. They are read-only snapshots, safe to call at any point of a run,
// and deliberately reuse the /healthz report so the invariants the checker
// asserts are exactly what an operator would see.

// ShardInfo is a point-in-time view of one hosted shard.
type ShardInfo struct {
	// Index is the shard's slot in the framework's shard tables.
	Index int
	// Ring is the shard's ring position ("" before the elastic layer
	// assigns one — non-elastic deployments still report the registered
	// address).
	Ring string
	// Epoch is the ring position's replication epoch: 0 with replication
	// off, 1 until the first promotion, +1 per promotion.
	Epoch uint64
	// SplitBorn marks shards created by an online split.
	SplitBorn bool
	// Retired marks ring positions merged away; their spaces are drained.
	Retired bool
	// LiveEntries is the serving replica's live tuple count (0 for
	// retired shards).
	LiveEntries int
	// Owned is the shard's share of the hash space in [0,1] (elastic
	// deployments; 0 otherwise).
	Owned float64
	// WALPosition is the serving node's WAL position (0 when the
	// deployment is not durable).
	WALPosition uint64
}

// ShardInfos snapshots every hosted shard, split-born children included.
func (f *Framework) ShardInfos() []ShardInfo {
	h := f.healthReport()
	out := make([]ShardInfo, 0, len(h.Shards))
	for _, sh := range h.Shards {
		out = append(out, ShardInfo{
			Index:       sh.Shard,
			Ring:        sh.RingID,
			Epoch:       sh.Epoch,
			SplitBorn:   sh.SplitBorn,
			Retired:     sh.Retired,
			LiveEntries: sh.Entries,
			Owned:       sh.OwnedFraction,
			WALPosition: sh.WALPosition,
		})
	}
	return out
}

// Ownership reports each live ring position's share of the hash space.
// Nil when the deployment has no router (Shards == 0). The shares of the
// live positions sum to 1 — the topology-convergence invariant.
func (f *Framework) Ownership() map[string]float64 {
	if f.router == nil {
		return nil
	}
	return f.router.Ownership()
}

// RingID resolves shard index i to its ring position. ok is false when no
// such shard is hosted.
func (f *Framework) RingID(i int) (string, bool) {
	f.replMu.Lock()
	defer f.replMu.Unlock()
	if i < 0 || i >= len(f.shardAddrs) {
		return "", false
	}
	return f.shardAddrs[i], true
}
