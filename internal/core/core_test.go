package core

import (
	"bytes"
	"testing"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/apps/pagerank"
	"gospaces/internal/apps/raytrace"
	"gospaces/internal/cluster"
	"gospaces/internal/rulebase"
	"gospaces/internal/snmp"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
)

var epoch = time.Date(2001, 10, 8, 9, 0, 0, 0, time.UTC)

func smallMCConfig() montecarlo.JobConfig {
	cfg := montecarlo.DefaultJobConfig()
	cfg.TotalSims = 1200
	cfg.SimsPerTask = 100 // → 12 subtasks
	cfg.WorkPerSubtask = 200 * time.Millisecond
	cfg.PlanningCostPerTask = 30 * time.Millisecond
	return cfg
}

func TestMonteCarloEndToEnd(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{Workers: cluster.Uniform(4, 1.0)})
	job := montecarlo.NewJob(smallMCConfig())
	var res Result
	var err error
	clk.Run(func() {
		res, err = fw.Run(job, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Tasks != 12 {
		t.Fatalf("tasks = %d, want 12", res.Metrics.Tasks)
	}
	if job.ResultCount() != 12 {
		t.Fatalf("aggregated %d results", job.ResultCount())
	}
	price, err := job.Answer()
	if err != nil {
		t.Fatal(err)
	}
	bs := montecarlo.BlackScholes(montecarlo.DefaultParams())
	if price.High+6*price.HighErr < bs || price.Low-6*price.LowErr > bs+2 {
		t.Fatalf("price bracket [%v,%v] inconsistent with European %v", price.Low, price.High, bs)
	}
	// Metrics sanity.
	m := res.Metrics
	if m.TaskPlanningTime <= 0 || m.TaskAggregationTime <= 0 || m.ParallelTime <= 0 {
		t.Fatalf("degenerate metrics %+v", m)
	}
	if m.ParallelTime < m.TaskPlanningTime || res.MaxWorkerTime <= 0 {
		t.Fatalf("inconsistent metrics %+v maxWorker=%v", m, res.MaxWorkerTime)
	}
	// Every node contributed under a balanced load.
	total := 0
	for node, st := range res.WorkerStats {
		if st.TaskFailures != 0 {
			t.Fatalf("%s failures: %+v", node, st)
		}
		total += st.TasksDone
	}
	if total != 12 {
		t.Fatalf("workers completed %d tasks", total)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (Result, time.Time) {
		clk := vclock.NewVirtual(epoch)
		fw := New(clk, Config{Workers: cluster.Uniform(3, 1.0)})
		job := montecarlo.NewJob(smallMCConfig())
		var res Result
		clk.Run(func() {
			res, _ = fw.Run(job, nil)
		})
		return res, clk.Now()
	}
	r1, end1 := run()
	r2, end2 := run()
	if r1.Metrics != r2.Metrics {
		t.Fatalf("metrics differ:\n%+v\n%+v", r1.Metrics, r2.Metrics)
	}
	if !end1.Equal(end2) {
		t.Fatalf("virtual end times differ: %v vs %v", end1, end2)
	}
}

func TestMoreWorkersFasterUntilPlanningBound(t *testing.T) {
	elapsed := func(n int) time.Duration {
		clk := vclock.NewVirtual(epoch)
		fw := New(clk, Config{Workers: cluster.Uniform(n, cluster.Speed300MHz)})
		job := montecarlo.NewJob(smallMCConfig())
		var res Result
		var err error
		clk.Run(func() { res, err = fw.Run(job, nil) })
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.ParallelTime
	}
	t1, t2, t4 := elapsed(1), elapsed(2), elapsed(4)
	if t2 >= t1 || t4 >= t2 {
		t.Fatalf("no speedup: 1→%v 2→%v 4→%v", t1, t2, t4)
	}
}

func TestRayTraceDistributedMatchesSerial(t *testing.T) {
	cfg := raytrace.DefaultJobConfig()
	cfg.Width, cfg.Height, cfg.StripWidth = 120, 90, 30
	cfg.WorkPerPixel = 50 * time.Microsecond
	job := raytrace.NewJob(cfg)

	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{Workers: cluster.FivePC()[:3]})
	var err error
	clk.Run(func() { _, err = fw.Run(job, nil) })
	if err != nil {
		t.Fatal(err)
	}
	img, complete := job.Image()
	if !complete {
		t.Fatal("image incomplete")
	}
	want, _ := cfg.Scene.RenderStrip(120, 90, 0, 120)
	if !bytes.Equal(img, want) {
		t.Fatal("distributed render differs from serial")
	}
}

func TestPageRankIterativeThroughFramework(t *testing.T) {
	cfg := pagerank.DefaultJobConfig()
	cfg.Graph = pagerank.SyntheticCluster(60, 9)
	cfg.StripRows = 15
	cfg.Iterations = 4
	cfg.WorkPerStrip = 50 * time.Millisecond
	job := pagerank.NewJob(cfg)

	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{Workers: cluster.Uniform(3, 1.0)})
	var res Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Phases != 4 {
		t.Fatalf("phases = %d, want 4", res.Metrics.Phases)
	}
	if res.Metrics.Tasks != 4*4 { // 60 rows / 15 per strip = 4 tasks × 4 rounds
		t.Fatalf("tasks = %d, want 16", res.Metrics.Tasks)
	}
	want := pagerank.PowerIterate(cfg.Graph.Stochastic(), cfg.Damping, 4)
	if d := pagerank.L1Diff(job.Ranks(), want); d > 1e-9 {
		t.Fatalf("distributed ranks differ from serial by %g", d)
	}
}

func TestMonitoredRunStartsWorkersViaRuleBase(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{
		Workers:      cluster.Uniform(2, 1.0),
		Monitoring:   true,
		PollInterval: 300 * time.Millisecond,
	})
	job := montecarlo.NewJob(smallMCConfig())
	var res Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		t.Fatal(err)
	}
	if job.ResultCount() != 12 {
		t.Fatalf("results = %d", job.ResultCount())
	}
	starts := 0
	for _, ev := range res.Events {
		if ev.Signal == rulebase.SignalStart {
			starts++
		}
	}
	if starts != 2 {
		t.Fatalf("start signals = %d, want 2 (one per worker)", starts)
	}
	for node, log := range res.SignalLogs {
		if len(log) == 0 {
			t.Fatalf("%s received no signals", node)
		}
		if log[0].Signal != rulebase.SignalStart {
			t.Fatalf("%s first signal = %v", node, log[0].Signal)
		}
	}
}

func TestLoadedNodeIsAvoided(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{
		Workers:      cluster.Uniform(3, 1.0),
		Monitoring:   true,
		PollInterval: 300 * time.Millisecond,
	})
	// node01 is busy with a local job for the entire run.
	fw.Cluster.Nodes[0].Machine.SetConstSource("localuser", 90)
	job := montecarlo.NewJob(smallMCConfig())
	var res Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		t.Fatal(err)
	}
	if job.ResultCount() != 12 {
		t.Fatalf("results = %d", job.ResultCount())
	}
	if st := res.WorkerStats["node01"]; st.TasksDone != 0 {
		t.Fatalf("loaded node ran %d tasks; rule base failed to keep it stopped", st.TasksDone)
	}
	if st := res.WorkerStats["node02"]; st.TasksDone == 0 {
		t.Fatal("idle node did no work")
	}
}

func TestAdaptationScriptPausesAndResumes(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{
		Workers:      cluster.Uniform(1, 1.0),
		Monitoring:   true,
		PollInterval: 250 * time.Millisecond,
	})
	cfg := smallMCConfig()
	cfg.TotalSims = 4000 // 40 subtasks so the run outlives the script
	job := montecarlo.NewJob(cfg)
	node := fw.Cluster.Nodes[0]
	script := func(f *Framework) {
		clk.Sleep(2 * time.Second)
		node.Sim2.Start() // 100% load → Stop
		clk.Sleep(2 * time.Second)
		node.Sim2.Stop() // → Restart
		clk.Sleep(2 * time.Second)
		node.Sim1.Start() // 30–50% → Pause
		clk.Sleep(2 * time.Second)
		node.Sim1.Stop() // → Resume
	}
	var res Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, script) })
	if err != nil {
		t.Fatal(err)
	}
	if job.ResultCount() != 40 {
		t.Fatalf("results = %d, want 40 (no task lost through the signal storm)", job.ResultCount())
	}
	want := []rulebase.Signal{
		rulebase.SignalStart, rulebase.SignalStop, rulebase.SignalRestart,
		rulebase.SignalPause, rulebase.SignalResume,
	}
	var got []rulebase.Signal
	for _, ev := range res.Events {
		if ev.Err == nil {
			got = append(got, ev.Signal)
		}
	}
	if len(got) < len(want) {
		t.Fatalf("signals = %v, want at least %v", got, want)
	}
	for i, sig := range want {
		if got[i] != sig {
			t.Fatalf("signal[%d] = %v, want %v (all: %v)", i, got[i], sig, got)
		}
	}
	// The CPU trace (Figure 9a's data) must show the load phases.
	hist := node.Machine.History()
	if len(hist) < 10 {
		t.Fatalf("history too short: %d samples", len(hist))
	}
	peak := node.Machine.PeakUsage(epoch, epoch.Add(time.Hour))
	if peak < 99 {
		t.Fatalf("peak usage %v, want ~100 from load simulator 2", peak)
	}
}

// TestCrashedWorkerTaskRecovered: a rogue client takes a task under a
// leased transaction and dies without committing; the master's periodic
// sweep aborts the expired transaction, the task reappears, and the run
// still completes with every result.
func TestCrashedWorkerTaskRecovered(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{
		Workers: cluster.Uniform(2, 1.0),
		TxnTTL:  3 * time.Second, // short lease → fast recovery
	})
	job := montecarlo.NewJob(smallMCConfig())

	script := func(f *Framework) {
		// The rogue "worker" bypasses the worker module: raw proxy, take
		// under a short-lease txn, then vanish.
		proxy := space.NewProxy(f.Cluster.Net.Dial(f.Cluster.MasterAddr))
		tx, err := proxy.BeginTxn(3 * time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := proxy.Take(montecarlo.Task{Job: montecarlo.JobName}, tx, 5*time.Second); err != nil {
			t.Errorf("rogue take: %v", err)
		}
		// Dies here: no commit, no abort.
	}

	var res Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, script) })
	if err != nil {
		t.Fatal(err)
	}
	if job.ResultCount() != 12 {
		t.Fatalf("results = %d, want 12 (stolen task not recovered)", job.ResultCount())
	}
	if res.Metrics.Tasks != 12 {
		t.Fatalf("tasks = %d", res.Metrics.Tasks)
	}
}

// TestHeterogeneousClusterNaturalBalance: the paper argues the bag-of-
// tasks model is "naturally load-balanced" — a faster node takes more
// tasks without any explicit scheduling.
func TestHeterogeneousClusterNaturalBalance(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{Workers: []cluster.NodeSpec{
		{Name: "fast", Speed: 1.0},
		{Name: "slow", Speed: 0.25},
	}})
	cfg := smallMCConfig()
	cfg.TotalSims = 4000 // 40 subtasks
	cfg.PlanningCostPerTask = 5 * time.Millisecond
	job := montecarlo.NewJob(cfg)
	var res Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		t.Fatal(err)
	}
	fast := res.WorkerStats["fast"].TasksDone
	slow := res.WorkerStats["slow"].TasksDone
	if fast+slow != 40 {
		t.Fatalf("tasks: fast=%d slow=%d", fast, slow)
	}
	// 4× speed should take roughly 4× the tasks (allow 3x as the floor).
	if fast < 3*slow {
		t.Fatalf("no natural balance: fast=%d slow=%d", fast, slow)
	}
}

// TestWorkerStatsExportedOverSNMP: the framework publishes each worker's
// progress counters through the node's SNMP agent, so stock tooling can
// watch cycle-stealing activity.
func TestWorkerStatsExportedOverSNMP(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{Workers: cluster.Uniform(2, 1.0)})
	job := montecarlo.NewJob(smallMCConfig())
	clk.Run(func() {
		if _, err := fw.Run(job, nil); err != nil {
			t.Error(err)
			return
		}
		total := int64(0)
		for _, node := range fw.Cluster.Nodes {
			mgr := snmp.NewManager(fw.Cluster.Community,
				&snmp.RPCExchanger{C: fw.Cluster.Net.Dial(node.Addr)})
			done, err := mgr.GetInt(snmp.OIDWorkerTasksDone)
			if err != nil {
				t.Error(err)
				return
			}
			total += done
			state, err := mgr.GetInt(snmp.OIDWorkerState)
			if err != nil {
				t.Error(err)
				return
			}
			if state != int64(rulebase.StateStopped) {
				t.Errorf("%s state OID = %d after shutdown", node.Name, state)
			}
			_ = mgr.Close()
		}
		if total != 12 {
			t.Errorf("SNMP tasksDone total = %d, want 12", total)
		}
	})
}

// reactionLatency measures how long after a load burst begins the Stop
// signal is delivered, under poll-only or trap-driven monitoring.
func reactionLatency(t *testing.T, trapDriven bool) time.Duration {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{
		Workers:      cluster.Uniform(1, 1.0),
		Monitoring:   true,
		PollInterval: 2 * time.Second,
		TrapDriven:   trapDriven,
		TrapInterval: 50 * time.Millisecond,
	})
	cfg := smallMCConfig()
	cfg.TotalSims = 3000
	job := montecarlo.NewJob(cfg)
	node := fw.Cluster.Nodes[0]
	var loadStart time.Time
	script := func(*Framework) {
		clk.Sleep(5 * time.Second)
		loadStart = clk.Now()
		node.Sim2.Start()
		clk.Sleep(10 * time.Second)
		node.Sim2.Stop()
	}
	var res Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, script) })
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Events {
		if ev.Err == nil && ev.Signal == rulebase.SignalStop {
			return ev.At.Sub(loadStart)
		}
	}
	t.Fatal("no Stop signal observed")
	return 0
}

// TestTrapDrivenReactsFasterThanPolling: with traps, the Stop lands well
// inside the poll interval; with polling alone it waits for the next poll.
func TestTrapDrivenReactsFasterThanPolling(t *testing.T) {
	poll := reactionLatency(t, false)
	trap := reactionLatency(t, true)
	if poll < 500*time.Millisecond {
		t.Fatalf("poll-only reacted in %v — script timing broken?", poll)
	}
	if trap > poll/2 {
		t.Fatalf("trap-driven reaction %v not faster than poll-only %v", trap, poll)
	}
	if trap > 500*time.Millisecond {
		t.Fatalf("trap-driven reaction %v too slow", trap)
	}
}

func TestRealClockSmallRun(t *testing.T) {
	// The same framework runs on the wall clock (as cmd tools do).
	clk := vclock.NewReal()
	model := transport.Loopback()
	fw := New(clk, Config{Workers: cluster.Uniform(2, 1.0), Model: &model})
	cfg := smallMCConfig()
	cfg.TotalSims = 400
	cfg.WorkPerSubtask = time.Millisecond
	cfg.PlanningCostPerTask = 0
	cfg.AggregationCostPerResult = 0
	job := montecarlo.NewJob(cfg)
	res, err := fw.Run(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.ResultCount() != 4 {
		t.Fatalf("results = %d", job.ResultCount())
	}
	if res.Metrics.ParallelTime <= 0 {
		t.Fatal("no parallel time measured")
	}
}
