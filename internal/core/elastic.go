package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gospaces/internal/discovery"
	"gospaces/internal/metrics"
	"gospaces/internal/obs"
	"gospaces/internal/rebalance"
	"gospaces/internal/replica"
	"gospaces/internal/shard"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// Elastic resharding glue: with Config.Elastic the framework can grow and
// shrink the ring while a job runs. SplitShard forks half of a hot shard's
// hash arc into a freshly built shard server without pausing the source —
// snapshot, live journal tap, eviction sweep, epoch-fenced topology
// cutover — and MergeShards folds a split-born shard back into its parent.
// With Config.AutoShard a load-driven controller (internal/rebalance)
// issues those calls itself from per-shard op-rate EWMAs. The protocol
// lives in internal/rebalance; this file owns the framework wiring: child
// shard construction, topology publication, and the bookkeeping that keeps
// sweepers, replication pairs and the health surface consistent as the
// shard tables grow.

// splitAttempts bounds how often a reshard re-arms against a freshly
// promoted node after the node it was migrating from failed mid-flight.
const splitAttempts = 3

// reshardState is the framework-side bookkeeping of elastic mode.
type reshardState struct {
	mu       sync.Mutex
	inFlight bool              // one reshard at a time
	topoReg  uint64            // current topology record registration
	parents  map[string]string // split-born ring → parent ring
	retired  map[string]bool   // merged-away (or stillborn) ring positions
	idxOf    map[string]int    // ring position → shard table index
	regOf    map[string]uint64 // unreplicated child ring → javaspace registration
	// rates is the rebalancer's last per-shard op-rate EWMA snapshot —
	// what /healthz shows so operators see what the controller sees.
	rates   map[string]float64
	lastErr error
}

func (s *reshardState) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inFlight {
		return errors.New("core: a reshard is already in flight")
	}
	s.inFlight = true
	return nil
}

func (s *reshardState) end() {
	s.mu.Lock()
	s.inFlight = false
	s.mu.Unlock()
}

func (s *reshardState) setErr(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
}

// growSweeper is the master's sweeper over a shard set that changes size:
// split-born shards join the expired-transaction sweep, merged-away ones
// leave it. The master captures one growSweeper at construction and never
// needs to know the membership moved underneath it.
type growSweeper struct {
	mu   sync.Mutex
	list []interface{ Sweep() int }
}

// Sweep implements the master's sweeper contract across all members.
func (g *growSweeper) Sweep() int {
	g.mu.Lock()
	list := append([]interface{ Sweep() int }(nil), g.list...)
	g.mu.Unlock()
	n := 0
	for _, s := range list {
		n += s.Sweep()
	}
	return n
}

func (g *growSweeper) add(s interface{ Sweep() int }) {
	g.mu.Lock()
	g.list = append(g.list, s)
	g.mu.Unlock()
}

func (g *growSweeper) remove(s interface{ Sweep() int }) {
	g.mu.Lock()
	for i, have := range g.list {
		if have == s {
			g.list = append(g.list[:i], g.list[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
}

// sweepAt returns shard i's swap-able sweeper; the shard tables grow under
// replMu, so indexed access does too.
func (f *Framework) sweepAt(i int) *swapSweeper {
	f.replMu.Lock()
	defer f.replMu.Unlock()
	return f.sweeps[i]
}

// initElastic publishes the initial topology (epoch 1: every seed shard
// with its default labels) and primes the reshard bookkeeping. Publishing
// before the first split makes topology records authoritative from the
// start: a watcher that sees any topology record disables its legacy
// add-only membership growth, so a reshard can never race a stale
// registration back into the ring.
func (f *Framework) initElastic(shards []shard.Shard) {
	f.reshard = &reshardState{
		parents: make(map[string]string),
		retired: make(map[string]bool),
		idxOf:   make(map[string]int),
		regOf:   make(map[string]uint64),
	}
	for i, s := range shards {
		f.reshard.idxOf[s.ID] = i
	}
	t := f.router.Topology()
	t.Epoch = 1
	if _, err := f.router.ApplyTopology(t, nil); err != nil {
		panic(fmt.Sprintf("core: initial topology: %v", err)) // unreachable: all members known
	}
	if err := f.publishTopology(&t); err != nil {
		panic(fmt.Sprintf("core: initial topology: %v", err)) // unreachable: plain JSON struct
	}
}

// publishTopology registers t in the lookup service (new record before the
// old one is cancelled, so a watcher's lookup always finds at least one)
// and records the registration for the next rotation. The publication is
// flight-recorded first and its causal stamp rides the record as t.Clk, so
// every adopting router's subsequent events order strictly after the
// publish — the property CheckTimeline holds reshard dumps to.
func (f *Framework) publishTopology(t *shard.Topology) error {
	t.Clk = f.flight("master", obs.FlightEvent{
		Kind: obs.EventTopoPublish, Shard: "ring", Epoch: t.Epoch,
		Detail: fmt.Sprintf("%d members", len(t.Members)),
	})
	enc, err := shard.EncodeTopology(*t)
	if err != nil {
		return err
	}
	id := f.Lookup.Register(discovery.ServiceItem{
		Name:    "javaspace-topology",
		Address: f.Cluster.MasterAddr,
		Attributes: map[string]string{
			"type":              shard.TopoType,
			shard.AttrTopo:      enc,
			shard.AttrTopoEpoch: strconv.FormatUint(t.Epoch, 10),
		},
	}, 0)
	f.reshard.mu.Lock()
	old := f.reshard.topoReg
	f.reshard.topoReg = id
	f.reshard.mu.Unlock()
	if old != 0 {
		_ = f.Lookup.Cancel(old)
	}
	return nil
}

// servingChain resolves ring to the node currently serving it: the raw
// space a migration snapshots and evicts from, the migration tap sitting
// in that node's journal chain, its primary controller (nil when
// unreplicated), and the applier that fed the node while it stood by (nil
// for a construction-time primary — the node's Seqs are then its own).
// After a failover this follows the promoted node — which is the point: a
// reshard always works against whoever serves now.
func (f *Framework) servingChain(ring string) (*space.Local, *rebalance.Tap, *replica.Primary, *tuplespace.Applier) {
	f.reshard.mu.Lock()
	idx, ok := f.reshard.idxOf[ring]
	f.reshard.mu.Unlock()
	if !ok {
		return nil, nil, nil, nil
	}
	f.replMu.Lock()
	var rs *replShard
	if idx < len(f.repls) {
		rs = f.repls[idx]
	}
	l, tap := f.Shards[idx], f.taps[idx]
	f.replMu.Unlock()
	if rs != nil {
		rs.mu.Lock()
		node, p := rs.primaryNode, rs.primary
		app := node.applier
		rs.mu.Unlock()
		return node.local, node.tap, p, app
	}
	return l, tap, nil, nil
}

// childShard is a split's freshly built destination before it enters the
// ring.
type childShard struct {
	idx     int
	ring    string
	local   *space.Local
	durable *space.Durable
	tap     *rebalance.Tap
	rs      *replShard
	handle  space.Space // master-side handle (gated/wrapped like a seed's)
	epoch   uint64
}

// buildChildShard assembles a new shard server at runtime with exactly the
// seed loop's layering: listener, space (durable when configured), journal
// chain WAL → tap → replication switch sink, service handlers, replication
// pair, service gate, obs middleware. The child joins the framework's
// shard tables (so sweepers, failover, restarts and health all see it) but
// is NOT registered in the lookup service: it must stay unreachable to
// routers until the split's cutover publishes the topology that places it.
func (f *Framework) buildChildShard() (*childShard, error) {
	clus := f.Cluster
	f.replMu.Lock()
	idx := len(f.Shards)
	f.replMu.Unlock()
	addr := fmt.Sprintf("%s.shard%d", clus.MasterAddr, idx)
	srv := transport.NewServer()
	clus.Net.Listen(addr, srv)

	var rs *replShard
	var psw *replica.SwitchSink
	if f.cfg.Replicas > 0 {
		rs = &replShard{idx: idx, ringID: addr}
		psw = replica.NewSwitchSink()
	}
	var sink tuplespace.RecordSink
	if psw != nil {
		sink = psw
	}
	tap := rebalance.NewTap(sink)
	sink = tap

	var l *space.Local
	var d *space.Durable
	if f.cfg.DataDir != "" {
		dopts := f.durableOptionsAt(idx, addr)
		dopts.Tee = sink
		var err error
		l, d, err = space.NewLocalDurable(f.Clock, dopts)
		if err != nil {
			return nil, fmt.Errorf("core: durable split shard %d: %w", idx, err)
		}
	} else {
		l = space.NewLocal(f.Clock)
		if err := l.TS.AttachJournal(tuplespace.NewJournalSink(sink)); err != nil {
			return nil, fmt.Errorf("core: split shard %d journal: %w", idx, err)
		}
	}
	l.TS.SetMemoCounters(f.Retries)
	l.TS.SetFlightSink(f.memoFlightSink(addr, addr))
	if f.cfg.MaxWaiters > 0 {
		l.TS.SetMaxWaiters(f.cfg.MaxWaiters)
	}
	svc := space.NewService(l, srv)
	var p *replica.Primary
	if rs != nil {
		p = f.setupReplica(rs, l, srv, psw, tap, d)
	}
	var handle space.Space = l
	var gate *transport.ServiceGate
	if f.cfg.SpaceOpCost > 0 {
		// The child pays for server CPU like every seed shard — the whole
		// point of splitting a saturated shard is a second gate.
		gate = transport.NewServiceGate(f.Clock, f.cfg.SpaceOpCost)
		handle = gatedSpace{l: l, gate: gate}
	}
	f.configureAdmission(svc, addr, gate)
	if reg := f.cfg.Obs.Reg(); reg != nil {
		srv.WrapPrefix("space.", obs.ServerMiddleware(f.Clock, reg.Histogram(metrics.HistShardServe(idx))))
		h := reg.Histogram(metrics.HistShardServe(idx))
		reg.RegisterGauge(metrics.GaugeShardOps(idx), func() int64 { return int64(h.Count()) })
	}
	var epoch uint64
	if rs != nil {
		handle = p.Wrap(handle)
		epoch = 1
	}

	sweep := &swapSweeper{s: l.Mgr}
	f.replMu.Lock()
	f.Shards = append(f.Shards, l)
	f.Durables = append(f.Durables, d)
	f.shardSrvs = append(f.shardSrvs, srv)
	f.shardAddrs = append(f.shardAddrs, addr)
	f.sweeps = append(f.sweeps, sweep)
	f.taps = append(f.taps, tap)
	f.gates = append(f.gates, gate)
	f.services = append(f.services, svc)
	if rs != nil {
		f.repls = append(f.repls, rs)
	}
	f.replMu.Unlock()
	f.sweeper.add(sweep)
	f.reshard.mu.Lock()
	f.reshard.idxOf[addr] = idx
	f.reshard.mu.Unlock()
	if rs != nil {
		// Heartbeats start now (when a run is active) so the child's backup
		// never mistakes the pre-registration window for a dead primary.
		f.spawnRepl(p.Run)
		rs.mu.Lock()
		b := rs.backup
		rs.mu.Unlock()
		f.spawnRepl(b.Run)
	}
	f.flight(addr, obs.FlightEvent{Kind: obs.EventNodeStart, Shard: addr, Detail: "split child"})
	return &childShard{idx: idx, ring: addr, local: l, durable: d, tap: tap, rs: rs, handle: handle, epoch: epoch}, nil
}

// retireChild takes a split-born shard out of service: registrations
// cancelled, replication controllers stopped, spaces closed, sweeper
// removed. Used after a merge has emptied the child, and for a stillborn
// child whose split failed before cutover.
func (f *Framework) retireChild(ring string, idx int) {
	f.replMu.Lock()
	var rs *replShard
	if idx < len(f.repls) {
		rs = f.repls[idx]
	}
	l, d, sweep := f.Shards[idx], f.Durables[idx], f.sweeps[idx]
	f.replMu.Unlock()

	f.reshard.mu.Lock()
	f.reshard.retired[ring] = true
	reg := f.reshard.regOf[ring]
	delete(f.reshard.regOf, ring)
	f.reshard.mu.Unlock()

	f.sweeper.remove(sweep)
	if reg != 0 {
		_ = f.Lookup.Cancel(reg)
	}
	if rs != nil {
		rs.mu.Lock()
		stops := append([]interface{ Stop() }(nil), rs.stops...)
		nodes := []*replNode{rs.primaryNode, rs.backupNode}
		preg, breg := rs.regID, rs.backupRegID
		rs.regID, rs.backupRegID = 0, 0
		rs.mu.Unlock()
		for _, s := range stops {
			s.Stop()
		}
		if preg != 0 {
			_ = f.Lookup.Cancel(preg)
		}
		if breg != 0 {
			_ = f.Lookup.Cancel(breg)
		}
		for _, n := range nodes {
			if n == nil {
				continue
			}
			n.local.TS.Close()
			if n.durable != nil {
				_ = n.durable.Close()
			}
		}
		return
	}
	l.TS.Close()
	if d != nil {
		_ = d.Close()
	}
}

// SplitReport describes one completed shard split.
type SplitReport struct {
	Parent, Child string
	// Migrated is the snapshot size the child was forked from; Evicted
	// counts entries swept off the parent afterwards (settle + lame duck).
	Migrated, Evicted int
	// Retries counts fork attempts abandoned to a source failover.
	Retries int
	// Cutover is the routing blackout the master observed: from the moment
	// the source stopped being the range's owner of record to the topology
	// being applied and the child registered. Remote workers add at most
	// one WatchInterval of convergence lag on top.
	Cutover time.Duration
}

// SplitShard splits ring member parentRing online: half of its hash-point
// labels (and so roughly half its key arc) move to a freshly built shard.
// The source serves throughout; the migrating range is forked by snapshot,
// kept converged through a live journal tap, evicted once the child holds
// every copy, and cut over by publishing a strictly-newer ring topology.
// Entries are never lost: from the first eviction on, the split always
// runs to completion, re-arming against a promoted standby if the source
// fails mid-flight. Requires Config.Elastic.
func (f *Framework) SplitShard(parentRing string) (SplitReport, error) {
	var rep SplitReport
	if f.reshard == nil {
		return rep, errors.New("core: SplitShard requires Config.Elastic")
	}
	if err := f.reshard.begin(); err != nil {
		return rep, err
	}
	defer f.reshard.end()
	f.reshard.mu.Lock()
	retired := f.reshard.retired[parentRing]
	f.reshard.mu.Unlock()
	if retired {
		return rep, fmt.Errorf("core: ring member %q was merged away", parentRing)
	}

	cur := f.router.Topology()
	var parent *shard.TopoMember
	for i := range cur.Members {
		if cur.Members[i].ID == parentRing {
			parent = &cur.Members[i]
		}
	}
	if parent == nil {
		return rep, fmt.Errorf("core: no ring member %q", parentRing)
	}
	keep, give := shard.SplitLabels(parent.Labels)
	if len(keep) == 0 || len(give) == 0 {
		return rep, fmt.Errorf("core: ring member %q owns too few points to split", parentRing)
	}

	child, err := f.buildChildShard()
	if err != nil {
		return rep, err
	}
	rep.Parent, rep.Child = parentRing, child.ring

	// The split is one control-plane operation: a root span whose context
	// tags every phase event, so `expt timeline` groups the whole reshard.
	var tc obs.TraceContext
	if f.cfg.Obs != nil {
		sp := f.cfg.Obs.T().StartRoot(f.Clock, "reshard:split", "master")
		tc = sp.Context()
		sp.End()
	}
	phases := f.reshardPhaseSink("split", parentRing, tc)

	next := shard.Topology{Epoch: cur.Epoch + 1}
	for _, m := range cur.Members {
		if m.ID == parentRing {
			m.Labels = keep
		}
		next.Members = append(next.Members, m)
	}
	next.Members = append(next.Members, shard.TopoMember{ID: child.ring, Labels: give, Epoch: child.epoch})

	pred := rebalance.KeyedTo(shard.OwnerFunc(next), child.ring)
	// Memos for the migrating bucket ship with it, so a mutation retried
	// after the cutover re-routes to the child and still dedups there.
	memoPred := rebalance.KeyedMemosTo(shard.OwnerFunc(next), child.ring)
	dst := tuplespace.NewApplier(child.local.TS)

	// Phase 1 — fork. Before any eviction the split can be rolled back
	// wholesale (the child just resets), so a source failover here means
	// waiting out the promotion and forking against whichever node then
	// serves the ring position.
	var m *rebalance.Migration
	for attempt := 1; ; attempt++ {
		src, tap, _, _ := f.servingChain(parentRing)
		m = &rebalance.Migration{Clock: f.Clock, Src: src.TS, Tap: tap, Dst: dst, Pred: pred, MemoPred: memoPred, Counters: f.Reshard, OnEvent: phases}
		n, ferr := m.Fork()
		if ferr == nil {
			rep.Migrated = n
			break
		}
		m.Abort()
		f.Reshard.Inc(metrics.CounterReshardAborted)
		if attempt >= splitAttempts {
			f.retireChild(child.ring, child.idx)
			return rep, fmt.Errorf("core: split %s: fork: %w", parentRing, ferr)
		}
		rep.Retries++
		f.Clock.Sleep(f.cfg.FailoverTimeout)
	}

	// Phase 2 — settle: evict the migrating range off the source until no
	// matching entry is held by an in-flight transaction. From the first
	// eviction on the split must complete — rolling back would drop entries
	// whose only authoritative copy is now the child's — so a failure here
	// does not abort; the lame-duck sweep below finishes the eviction
	// against whichever node serves after the dust settles.
	evicted, serr := m.SettleUntilClear(f.cfg.TxnTTL)
	rep.Evicted += evicted
	if serr != nil {
		m.Tap.Close()
		f.reshard.setErr(serr)
	}

	// The child's own standby must hold everything before routers cut
	// over, so a child failover directly after the split loses nothing.
	if child.rs != nil {
		child.rs.mu.Lock()
		cp := child.rs.primary
		child.rs.mu.Unlock()
		_ = cp.Flush()
	}

	// Phase 3 — cutover: topology record first (any watcher that can see
	// the child's registration then also sees the ring that places it),
	// master retargets in-process, child registers last.
	cutStart := f.Clock.Now()
	if perr := f.publishTopology(&next); perr != nil {
		return rep, perr // unreachable: plain JSON struct
	}
	resolve := func(ring string) (shard.Shard, error) {
		if ring == child.ring {
			return shard.Shard{ID: ring, Space: child.handle, Epoch: child.epoch}, nil
		}
		return shard.Shard{}, fmt.Errorf("core: unexpected new ring member %q", ring)
	}
	if _, aerr := f.router.ApplyTopology(next, resolve); aerr != nil {
		return rep, fmt.Errorf("core: split %s: apply topology: %w", parentRing, aerr)
	}
	regID := f.registerShard(child.idx, child.durable, false)
	f.reshard.mu.Lock()
	f.reshard.parents[child.ring] = parentRing
	if child.rs == nil {
		f.reshard.regOf[child.ring] = regID
	}
	f.reshard.mu.Unlock()
	rep.Cutover = f.Clock.Since(cutStart)

	// Phase 4 — lame duck: sweep stragglers written by not-yet-converged
	// routers until the drain window outlasts every watcher's poll.
	drained, derr := f.lameDuck(m, serr == nil, parentRing, dst, pred, memoPred)
	rep.Evicted += drained
	f.reshard.setErr(derr)

	if child.rs != nil {
		child.rs.mu.Lock()
		cp := child.rs.primary
		child.rs.mu.Unlock()
		_ = cp.Flush()
	}
	f.Reshard.Inc(metrics.CounterReshardSplits)
	f.flight("master", obs.FlightEvent{
		Kind: obs.EventSplitDone, Shard: parentRing, Epoch: next.Epoch,
		Detail: fmt.Sprintf("child %s: %d migrated, %d evicted", child.ring, rep.Migrated, rep.Evicted),
		Trace:  tc.TraceID, Span: tc.SpanID,
	})
	return rep, nil
}

// lameDuck runs the post-cutover straggler sweep. While the live migration
// is healthy its tap keeps forwarding synchronously and the sweep reuses
// it; otherwise (the source failed over mid-reshard) a fresh live tap is
// armed on the node now serving the ring position — no new snapshot
// needed, the drain passes themselves evict-and-re-apply whatever state
// that node still holds in the migrating range.
//
// A promoted node assigns its own Seqs, so before re-arming against a
// node other than the one the migration has been reading, dst is rebound
// to the new incarnation: the node's own standby-era applier supplies the
// promoted-Seq → old-Seq mapping, keeping the dedup exact — an entry both
// incarnations carried is recognized (no duplicate), and a new write whose
// Seq happens to equal an unrelated old one is not mistaken for a dup (no
// loss). Without a mapping (an unreplicated source that was crash-
// restarted) the rebind still fences the namespaces so no collision can
// drop an entry.
func (f *Framework) lameDuck(m *rebalance.Migration, healthy bool, ring string, dst *tuplespace.Applier, pred func(tuplespace.Entry) bool, memoPred func(key string, keyed bool) bool) (int, error) {
	total := 0
	if healthy {
		n, err := m.Drain(f.cfg.ReshardDrain)
		total += n
		if err == nil {
			return total, nil
		}
	}
	curSrc := m.Src
	var lastErr error
	for attempt := 1; attempt <= splitAttempts; attempt++ {
		if attempt > 1 || healthy {
			// Give a mid-sweep failover time to promote before re-arming.
			f.Clock.Sleep(f.cfg.FailoverTimeout)
		}
		src, tap, _, srcApp := f.servingChain(ring)
		if src.TS != curSrc {
			var xlat map[uint64]uint64
			if srcApp != nil {
				xlat = srcApp.SeqMapping()
			}
			dst.Rebind(xlat)
			curSrc = src.TS
		}
		m2 := &rebalance.Migration{Clock: f.Clock, Src: src.TS, Tap: tap, Dst: dst, Pred: pred, MemoPred: memoPred, Counters: f.Reshard, OnEvent: m.OnEvent}
		tap.StartBuffer()
		if err := tap.GoLive(dst.Apply); err != nil {
			tap.Close()
			lastErr = err
			continue
		}
		n, err := m2.Drain(f.cfg.ReshardDrain)
		total += n
		if err == nil {
			return total, nil
		}
		lastErr = err
	}
	return total, lastErr
}

// MergeShards folds split-born shard childRing back into the parent it was
// forked from: every entry (keyed or not) migrates over with the same
// snapshot + live tap + evict protocol a split uses, the topology returns
// the child's hash points to the parent at a strictly newer epoch, and the
// child is retired. Requires Config.Elastic; only shards created by
// SplitShard can merge, and only while their parent is still in the ring.
func (f *Framework) MergeShards(childRing string) error {
	if f.reshard == nil {
		return errors.New("core: MergeShards requires Config.Elastic")
	}
	if err := f.reshard.begin(); err != nil {
		return err
	}
	defer f.reshard.end()
	f.reshard.mu.Lock()
	parentRing, ok := f.reshard.parents[childRing]
	idx := f.reshard.idxOf[childRing]
	dead := f.reshard.retired[childRing] || f.reshard.retired[parentRing]
	f.reshard.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: %q is not a split-born shard", childRing)
	}
	if dead {
		return fmt.Errorf("core: %q or its parent %q is already retired", childRing, parentRing)
	}

	cur := f.router.Topology()
	var childM *shard.TopoMember
	haveParent := false
	for i := range cur.Members {
		switch cur.Members[i].ID {
		case childRing:
			childM = &cur.Members[i]
		case parentRing:
			haveParent = true
		}
	}
	if childM == nil || !haveParent {
		return fmt.Errorf("core: merge %s: ring does not hold both child and parent", childRing)
	}
	next := shard.Topology{Epoch: cur.Epoch + 1}
	for _, m := range cur.Members {
		if m.ID == childRing {
			continue
		}
		if m.ID == parentRing {
			m.Labels = append(append([]string(nil), m.Labels...), childM.Labels...)
		}
		next.Members = append(next.Members, m)
	}

	parentLocal, _, parentPrim, _ := f.servingChain(parentRing)
	dst := tuplespace.NewApplier(parentLocal.TS)
	pred := rebalance.Everything

	var tc obs.TraceContext
	if f.cfg.Obs != nil {
		sp := f.cfg.Obs.T().StartRoot(f.Clock, "reshard:merge", "master")
		tc = sp.Context()
		sp.End()
	}
	phases := f.reshardPhaseSink("merge", childRing, tc)

	// Fork with retries — abort is safe until the first eviction (the
	// child keeps everything; the parent just resets the copies).
	var m *rebalance.Migration
	for attempt := 1; ; attempt++ {
		src, tap, _, _ := f.servingChain(childRing)
		m = &rebalance.Migration{Clock: f.Clock, Src: src.TS, Tap: tap, Dst: dst, Pred: pred, Counters: f.Reshard, OnEvent: phases}
		_, ferr := m.Fork()
		if ferr == nil {
			break
		}
		m.Abort()
		f.Reshard.Inc(metrics.CounterReshardAborted)
		if attempt >= splitAttempts {
			return fmt.Errorf("core: merge %s: fork: %w", childRing, ferr)
		}
		f.Clock.Sleep(f.cfg.FailoverTimeout)
	}

	_, serr := m.SettleUntilClear(f.cfg.TxnTTL)
	if serr != nil {
		m.Tap.Close()
		f.reshard.setErr(serr)
	}
	if parentPrim != nil {
		_ = parentPrim.Flush()
	}

	// Cutover: the child's arc returns to the parent at a newer epoch; no
	// new members, so the master applies without a resolver.
	if perr := f.publishTopology(&next); perr != nil {
		return perr // unreachable: plain JSON struct
	}
	if _, aerr := f.router.ApplyTopology(next, nil); aerr != nil {
		return fmt.Errorf("core: merge %s: apply topology: %w", childRing, aerr)
	}

	// Lame duck, then retire the emptied child.
	_, derr := f.lameDuck(m, serr == nil, childRing, dst, pred, nil)
	f.reshard.setErr(derr)
	f.retireChild(childRing, idx)
	if parentPrim != nil {
		_ = parentPrim.Flush()
	}
	f.Reshard.Inc(metrics.CounterReshardMerges)
	f.flight("master", obs.FlightEvent{
		Kind: obs.EventMergeDone, Shard: childRing, Epoch: next.Epoch,
		Detail: fmt.Sprintf("folded into %s", parentRing),
		Trace:  tc.TraceID, Span: tc.SpanID,
	})
	return nil
}

// mergeable restricts the rebalancer's merges to split-born shards whose
// parent is still in the ring.
func (f *Framework) mergeable(ring string) bool {
	f.reshard.mu.Lock()
	defer f.reshard.mu.Unlock()
	parent, ok := f.reshard.parents[ring]
	return ok && !f.reshard.retired[ring] && !f.reshard.retired[parent]
}

// loadSamples reads every live shard's cumulative op count and entry count
// off the node currently serving it — the rebalancer's controller input.
func (f *Framework) loadSamples() []rebalance.Sample {
	f.replMu.Lock()
	addrs := append([]string(nil), f.shardAddrs...)
	locals := append([]*space.Local(nil), f.Shards...)
	repls := append([]*replShard(nil), f.repls...)
	f.replMu.Unlock()
	f.reshard.mu.Lock()
	retired := make(map[string]bool, len(f.reshard.retired))
	for r := range f.reshard.retired {
		retired[r] = true
	}
	f.reshard.mu.Unlock()
	var out []rebalance.Sample
	for i := range locals {
		if retired[addrs[i]] {
			continue
		}
		l := locals[i]
		if i < len(repls) && repls[i] != nil {
			repls[i].mu.Lock()
			if node := repls[i].primaryNode; node != nil {
				l = node.local
			}
			repls[i].mu.Unlock()
		}
		st := l.TS.Stats()
		out = append(out, rebalance.Sample{ID: addrs[i], Ops: st.Writes + st.Reads + st.Takes, Entries: st.EntriesLive})
	}
	return out
}

// rebalancer is the AutoShard clock process: every ReshardInterval it
// samples shard load, advances the controller, and executes whatever
// split/merge it decides.
type rebalancer struct {
	f    *Framework
	ctrl *rebalance.Controller

	mu     sync.Mutex
	quit   bool
	parker vclock.Waiter
}

func (f *Framework) newRebalancer() *rebalancer {
	return &rebalancer{f: f, ctrl: rebalance.NewController(rebalance.ControllerConfig{
		SplitThreshold: f.cfg.SplitThreshold,
		MergeThreshold: f.cfg.MergeThreshold,
		Hysteresis:     f.cfg.ReshardHysteresis,
		Cooldown:       f.cfg.ReshardCooldown,
		MaxShards:      f.cfg.MaxShards,
		Mergeable:      f.mergeable,
	})}
}

// Run ticks until Stop — a clock process on Run's group.
func (r *rebalancer) Run() {
	for {
		r.mu.Lock()
		if r.quit {
			r.mu.Unlock()
			return
		}
		r.parker = r.f.Clock.NewWaiter()
		p := r.parker
		r.mu.Unlock()
		if woken := p.Wait(r.f.cfg.ReshardInterval); woken {
			return // stopped
		}
		r.tick()
	}
}

func (r *rebalancer) tick() {
	f := r.f
	actions := r.ctrl.Advance(f.Clock.Now(), f.loadSamples())
	rates := r.ctrl.Rates()
	f.reshard.mu.Lock()
	f.reshard.rates = rates
	f.reshard.mu.Unlock()
	for _, a := range actions {
		var err error
		switch a.Kind {
		case rebalance.ActionSplit:
			_, err = f.SplitShard(a.ID)
		case rebalance.ActionMerge:
			err = f.MergeShards(a.ID)
		}
		f.reshard.setErr(err)
	}
}

// Stop ends the loop.
func (r *rebalancer) Stop() {
	r.mu.Lock()
	r.quit = true
	p := r.parker
	r.mu.Unlock()
	if p != nil {
		p.Wake()
	}
}

// TopologyEpoch reports the master router's current ring topology epoch
// (0 when not elastic).
func (f *Framework) TopologyEpoch() uint64 {
	if f.router == nil {
		return 0
	}
	return f.router.TopoEpoch()
}

// SplitBorn lists the ring IDs of live split-born shards, in no particular
// order.
func (f *Framework) SplitBorn() []string {
	if f.reshard == nil {
		return nil
	}
	f.reshard.mu.Lock()
	defer f.reshard.mu.Unlock()
	var out []string
	for ring := range f.reshard.parents {
		if !f.reshard.retired[ring] {
			out = append(out, ring)
		}
	}
	return out
}

// ShardIndex resolves a ring ID to its shard table index — how a chaos
// script addresses a split-born shard in KillShardPrimary or RestartShard.
func (f *Framework) ShardIndex(ring string) (int, bool) {
	if f.reshard == nil {
		return 0, false
	}
	f.reshard.mu.Lock()
	defer f.reshard.mu.Unlock()
	idx, ok := f.reshard.idxOf[ring]
	return idx, ok
}

// ReshardErr returns the most recent background reshard error, if any —
// settle timeouts, drain re-arms, controller-executed action failures.
func (f *Framework) ReshardErr() error {
	if f.reshard == nil {
		return nil
	}
	f.reshard.mu.Lock()
	defer f.reshard.mu.Unlock()
	return f.reshard.lastErr
}
