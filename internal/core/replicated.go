package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"gospaces/internal/discovery"
	"gospaces/internal/metrics"
	"gospaces/internal/obs"
	"gospaces/internal/rebalance"
	"gospaces/internal/replica"
	"gospaces/internal/shard"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
)

// Replication glue: with Config.Replicas > 0 every hosted shard becomes a
// primary/backup pair. The primary's journal records stream to a hot
// standby on its own server ("<shard>.backup"); the standby watches the
// heartbeat stream and the primary's lookup lease and promotes itself
// when both agree the primary is gone, re-registering under the shard's
// ring position at an incremented epoch. The master's router retargets in
// place; workers resolve the promoted registration through the lookup
// service on their next failed call. See internal/replica for the
// protocol itself.

// replNode is one physical node of a replicated shard: a server address,
// the space living behind it, and the switchable journal sink that feeds
// whatever replication controller currently runs on the node.
type replNode struct {
	addr    string
	srv     *transport.Server
	local   *space.Local
	sink    *replica.SwitchSink
	durable *space.Durable
	// tap is the node's migration tap (elastic deployments only). Both
	// nodes of a pair carry one so a reshard can re-fork against the
	// promoted node after a mid-split failover.
	tap *rebalance.Tap
	// applier is the record applier that populated this node's space while
	// it stood by (nil on a construction-time primary). Its Seq mapping is
	// how a reshard that re-arms against this node after promotion
	// translates the node's Seqs back to the dead primary's namespace.
	applier *tuplespace.Applier
}

// replShard tracks the replication state of one ring position. The two
// nodes swap roles at promotion; the ring ID (the original primary's
// address) never changes.
type replShard struct {
	idx    int
	ringID string

	mu          sync.Mutex
	primaryNode *replNode        // node currently owning the ring position
	backupNode  *replNode        // node standing by (or deposed, pre-rejoin)
	primary     *replica.Primary // controller gating primaryNode's mutations
	backup      *replica.Backup  // controller watching from backupNode
	origHandle  space.Space      // the construction-time primary handle
	handle      space.Space      // serving handle after a promotion
	epoch       uint64           // serving epoch of the ring position
	regID       uint64           // primary registration lease
	backupRegID uint64
	stops       []interface{ Stop() }
	// trace and clk are the last promotion's root span context and causal
	// stamp — what localResolver hands the master's router so its retarget
	// span parents under the promotion and its flight events order after it.
	trace obs.TraceContext
	clk   uint64
}

func (rs *replShard) setRegID(id uint64) {
	rs.mu.Lock()
	rs.regID = id
	rs.mu.Unlock()
}

// repl returns shard i's replication state (nil when replication is off).
// The repls table grows when a split builds a replicated child, so indexed
// access synchronizes on replMu.
func (f *Framework) repl(i int) *replShard {
	f.replMu.Lock()
	defer f.replMu.Unlock()
	if i < 0 || i >= len(f.repls) {
		return nil
	}
	return f.repls[i]
}

// replsSnapshot copies the current repls table for lock-free iteration.
func (f *Framework) replsSnapshot() []*replShard {
	f.replMu.Lock()
	defer f.replMu.Unlock()
	return append([]*replShard(nil), f.repls...)
}

// replLeaseTTL is the primary registration lease: renewed each heartbeat
// by a live primary, lapsing within the failover timeout otherwise.
func (f *Framework) replLeaseTTL() time.Duration { return f.cfg.FailoverTimeout }

// ringRegistered reports whether any live registration claims ring
// position ringID — the backup's registration-lease failure detector.
func (f *Framework) ringRegistered(ringID string) bool {
	items := f.Lookup.Lookup(map[string]string{"type": "javaspace", shard.AttrRing: ringID})
	return len(items) > 0
}

// setupReplica assembles shard i's replication pair around the freshly
// built primary space l: the backup node (own server, own — durable when
// DataDir is set — space), the primary controller whose middleware gates
// l's service, and the backup controller bound on the standby's server.
// It must run directly after space.NewService so the replication
// middleware sits innermost (confirm before the gate or obs layers see
// the reply). It returns the primary controller so the caller can wrap
// the master-side handle.
func (f *Framework) setupReplica(rs *replShard, l *space.Local, srv *transport.Server, psw *replica.SwitchSink, ptap *rebalance.Tap, pdur *space.Durable) *replica.Primary {
	i := rs.idx
	clus := f.Cluster

	baddr := rs.ringID + ".backup"
	bsrv := transport.NewServer()
	clus.Net.Listen(baddr, bsrv)
	bsw := replica.NewSwitchSink()
	// The backup's chain mirrors the primary's: WAL (when durable) → tap
	// (when elastic) → switch sink. Its tap exists so a reshard that loses
	// the source primary mid-split can re-fork against this node once it
	// promotes.
	var btee tuplespace.RecordSink = bsw
	var btap *rebalance.Tap
	if f.cfg.Elastic {
		btap = rebalance.NewTap(bsw)
		btee = btap
	}
	var bl *space.Local
	var bd *space.Durable
	if f.cfg.DataDir != "" {
		dopts := f.durableOptionsAt(i, baddr)
		dopts.Dir = filepath.Join(f.cfg.DataDir, fmt.Sprintf("shard%d.backup", i))
		dopts.Tee = btee
		dopts.OnWALEvent = f.walFlightSink(baddr, rs.ringID)
		var err error
		bl, bd, err = space.NewLocalDurable(f.Clock, dopts)
		if err != nil {
			panic(fmt.Sprintf("core: durable backup for shard %d: %v", i, err))
		}
	} else {
		bl = space.NewLocal(f.Clock)
		if err := bl.TS.AttachJournal(tuplespace.NewJournalSink(btee)); err != nil {
			panic(fmt.Sprintf("core: backup journal for shard %d: %v", i, err))
		}
	}
	// The standby's applier rebuilds the primary's memo table from the
	// record stream; wire its counters and flight sink so dedup hits after
	// a promotion are still visible.
	bl.TS.SetMemoCounters(f.Retries)
	bl.TS.SetFlightSink(f.memoFlightSink(baddr, rs.ringID))
	rs.primaryNode = &replNode{addr: rs.ringID, srv: srv, local: l, sink: psw, durable: pdur, tap: ptap}
	rs.backupNode = &replNode{addr: baddr, srv: bsrv, local: bl, sink: bsw, durable: bd, tap: btap}

	p := replica.NewPrimary(l, replica.PrimaryOptions{
		Clock:    f.Clock,
		Ack:      f.cfg.ReplAck,
		Renew:    func() { rs.renewRegistration(f) },
		OnFenced: f.fencedHook(rs.ringID, rs.ringID),
		OnEvent:  f.replFlightSink(rs.ringID, rs.ringID),
		Counters: f.Repl,
		ShipHist: f.cfg.Obs.Reg().Histogram(metrics.HistReplShip),
	})
	psw.Set(p.Sink())
	// The mirror dial is tagged with the shard's own address so a fault
	// plan can partition exactly the primary↔backup link.
	p.SetMirror(clus.Net.DialAs(rs.ringID, baddr))
	srv.WrapPrefix("space.", p.Middleware())

	b := replica.NewBackup(bl, replica.BackupOptions{
		Clock:           f.Clock,
		FailoverTimeout: f.cfg.FailoverTimeout,
		LeaseExpired:    func() bool { return !f.ringRegistered(rs.ringID) },
		OnPromote:       func(epoch uint64) { f.promote(rs, epoch) },
		OnEvent:         f.detectFlightSink(baddr, rs.ringID),
		Counters:        f.Repl,
	})
	b.Bind(bsrv)
	rs.backupNode.applier = b.Applier()

	rs.primary, rs.backup = p, b
	rs.epoch = 1
	rs.stops = append(rs.stops, p, b)
	rs.backupRegID = f.registerBackup(rs)
	return p
}

// registerBackup announces rs's standby under a distinct service type so
// the workers' {"type": "javaspace"} discovery never routes to it.
func (f *Framework) registerBackup(rs *replShard) uint64 {
	rs.mu.Lock()
	addr := rs.backupNode.addr
	rs.mu.Unlock()
	return f.Lookup.Register(discovery.ServiceItem{
		Name:    "javaspace-backup",
		Address: addr,
		Attributes: map[string]string{
			"type":           "javaspace-backup",
			shard.AttrShard:  strconv.Itoa(rs.idx),
			shard.AttrShards: strconv.Itoa(f.cfg.Shards),
			shard.AttrRing:   rs.ringID,
			shard.AttrRole:   shard.RoleBackup,
		},
	}, 0)
}

// renewRegistration extends the serving primary's lookup lease — called
// from the primary pump each heartbeat. A dead or fenced primary stops
// calling it, and the lapse is the backup's second failure signal.
func (rs *replShard) renewRegistration(f *Framework) {
	rs.mu.Lock()
	id := rs.regID
	rs.mu.Unlock()
	if id != 0 {
		_ = f.Lookup.Renew(id, f.replLeaseTTL())
	}
}

// promote is the backup's OnPromote glue: it turns the standby node into
// the ring position's serving node. Runs on the backup monitor goroutine
// (or a chaos script's) with the backup's apply mutex held, so no record
// application races the flip.
func (f *Framework) promote(rs *replShard, epoch uint64) {
	rs.mu.Lock()
	node := rs.backupNode
	deposed := rs.primaryNode
	rs.primaryNode, rs.backupNode = node, deposed
	backupRegID := rs.backupRegID
	rs.mu.Unlock()

	// Serve: bind the space service on the standby's server with the same
	// layering as the original primary — replication confirm innermost,
	// then the admission controller (gate included), then obs outermost.
	svc := space.NewService(node.local, node.srv)
	if f.cfg.MaxWaiters > 0 {
		node.local.TS.SetMaxWaiters(f.cfg.MaxWaiters)
	}

	// A fresh primary controller gates the promoted node from now on: it
	// renews the new registration, fences nothing (it IS the newest
	// epoch), and is ready to adopt a rejoining backup via SetMirror.
	p := replica.NewPrimary(node.local, replica.PrimaryOptions{
		Clock:    f.Clock,
		Epoch:    epoch,
		Ack:      f.cfg.ReplAck,
		Renew:    func() { rs.renewRegistration(f) },
		OnFenced: f.fencedHook(node.addr, rs.ringID),
		OnEvent:  f.replFlightSink(node.addr, rs.ringID),
		Counters: f.Repl,
		ShipHist: f.cfg.Obs.Reg().Histogram(metrics.HistReplShip),
	})
	node.sink.Set(p.Sink())
	node.srv.WrapPrefix("space.", p.Middleware())

	var handle space.Space = node.local
	var gate *transport.ServiceGate
	if f.cfg.SpaceOpCost > 0 {
		gate = transport.NewServiceGate(f.Clock, f.cfg.SpaceOpCost)
		handle = gatedSpace{l: node.local, gate: gate}
	}
	// The ring position's overload protection follows the serving node:
	// the promoted service gets a freshly configured admission controller
	// and healthReport reads its vitals from now on.
	f.configureAdmission(svc, node.addr, gate)
	f.replMu.Lock()
	if rs.idx < len(f.services) {
		f.services[rs.idx] = svc
	}
	f.replMu.Unlock()
	if reg := f.cfg.Obs.Reg(); reg != nil {
		// Same serve histogram as before the failover: the ring position
		// keeps one latency record across role flips.
		node.srv.WrapPrefix("space.", obs.ServerMiddleware(f.Clock, reg.Histogram(metrics.HistShardServe(rs.idx))))
	}
	handle = p.Wrap(handle)

	// The promotion is the root of the failover span tree: its context and
	// causal stamp ride the new registration (and the local resolver), so
	// every router that retargets onto this node — in-process or across
	// the lookup service — parents its retarget span under this one and
	// orders its flight events after it.
	var pctx obs.TraceContext
	var stamp uint64
	if f.cfg.Obs != nil {
		sp := f.cfg.Obs.T().StartRoot(f.Clock, "failover", node.addr)
		pctx = sp.Context()
		sp.End()
		stamp = f.flight(node.addr, obs.FlightEvent{
			Kind: obs.EventPromote, Shard: rs.ringID, Epoch: epoch,
			Trace: pctx.TraceID, Span: pctx.SpanID,
		})
	}

	// Re-register under the ring position at the new epoch. The deposed
	// registration is left to lapse (its owner may be partitioned, not
	// dead); every resolver picks the highest epoch meanwhile.
	if backupRegID != 0 {
		_ = f.Lookup.Cancel(backupRegID)
	}
	attrs := map[string]string{
		"type":           "javaspace",
		shard.AttrShard:  strconv.Itoa(rs.idx),
		shard.AttrShards: strconv.Itoa(f.cfg.Shards),
		shard.AttrRing:   rs.ringID,
		shard.AttrRole:   shard.RolePrimary,
		shard.AttrEpoch:  strconv.FormatUint(epoch, 10),
	}
	shard.SetCtrlAttrs(attrs, pctx, stamp)
	id := f.Lookup.Register(discovery.ServiceItem{
		Name:       "javaspace",
		Address:    node.addr,
		Attributes: attrs,
	}, f.replLeaseTTL())

	rs.mu.Lock()
	rs.primary = p
	rs.handle = handle
	rs.epoch = epoch
	rs.regID = id
	rs.backupRegID = 0
	rs.stops = append(rs.stops, p)
	rs.trace, rs.clk = pctx, stamp
	rs.mu.Unlock()

	// Expired-entry bookkeeping moves with the serving space, and the
	// master's captured sweeper follows.
	f.sweepAt(rs.idx).swap(node.local.Mgr)

	// The master's router retargets immediately; remote clients resolve
	// the new registration through their Failover resolver on the next
	// hard failure.
	if f.router != nil {
		_ = f.router.RetargetTraced(shard.Shard{
			ID: rs.ringID, Space: handle, Epoch: epoch, Trace: pctx, Clk: stamp,
		})
	}
	f.spawnRepl(p.Run)
}

// spawnRepl runs a replication pump on the active Run's clock group. With
// no Run active the pump simply does not start — sync-mode replication
// still works (each mutation flushes inline); only background heartbeats
// and lease renewals need the pump, and those only matter while a job
// runs.
func (f *Framework) spawnRepl(fn func()) {
	f.replMu.Lock()
	g := f.runGroup
	f.replMu.Unlock()
	if g != nil {
		g.Go(fn)
	}
}

// startReplPumps launches the current controllers' pumps on Run's group.
func (f *Framework) startReplPumps() {
	for _, rs := range f.replsSnapshot() {
		rs.mu.Lock()
		p, b := rs.primary, rs.backup
		rs.mu.Unlock()
		if p != nil {
			f.spawnRepl(p.Run)
		}
		if b != nil {
			f.spawnRepl(b.Run)
		}
	}
}

// stopReplPumps stops every controller ever created (deposed ones
// included) so Run's group drains.
func (f *Framework) stopReplPumps() {
	for _, rs := range f.replsSnapshot() {
		rs.mu.Lock()
		stops := append([]interface{ Stop() }(nil), rs.stops...)
		rs.mu.Unlock()
		for _, s := range stops {
			s.Stop()
		}
	}
}

// localResolver is the master router's Options.Failover: ring positions
// resolve to the in-process promoted handle recorded by promote.
func (f *Framework) localResolver() func(string) (shard.Shard, error) {
	return func(ringID string) (shard.Shard, error) {
		for _, rs := range f.replsSnapshot() {
			if rs.ringID != ringID {
				continue
			}
			rs.mu.Lock()
			h, e := rs.handle, rs.epoch
			tc, clk := rs.trace, rs.clk
			rs.mu.Unlock()
			if h == nil {
				return shard.Shard{}, fmt.Errorf("core: ring %q has not failed over", ringID)
			}
			return shard.Shard{ID: ringID, Space: h, Epoch: e, Trace: tc, Clk: clk}, nil
		}
		return shard.Shard{}, fmt.Errorf("core: unknown ring %q", ringID)
	}
}

// KillShardPrimary simulates kill -9 of shard i's current primary: its
// replication pump dies mid-beat (no more heartbeats, no more lookup
// lease renewals), its space closes (blocked callers wake with ErrClosed)
// and, when durable, its WAL shuts. Nothing is restarted: the hot standby
// detects the silence, promotes itself within Config.FailoverTimeout, and
// the ring retargets — the whole point of replication is that no
// RestartShard call is needed. Requires Config.Replicas.
func (f *Framework) KillShardPrimary(i int) error {
	if len(f.replsSnapshot()) == 0 {
		return errors.New("core: KillShardPrimary requires Config.Replicas")
	}
	rs := f.repl(i)
	if rs == nil {
		return fmt.Errorf("core: no shard %d", i)
	}
	rs.mu.Lock()
	p := rs.primary
	node := rs.primaryNode
	rs.mu.Unlock()
	if p == nil || p.Killed() {
		return fmt.Errorf("core: shard %d has no live primary", i)
	}
	p.Kill()
	node.local.TS.Close()
	if node.durable != nil {
		_ = node.durable.Close()
	}
	f.flight(node.addr, obs.FlightEvent{
		Kind: obs.EventKill, Shard: rs.ringID, Epoch: p.Epoch(),
	})
	return nil
}

// RejoinShard returns shard i's deposed node to service as the hot
// standby of its promoted primary — the catch-up path: a fresh space
// under the old address is initialized by snapshot push and then follows
// the incremental stream. The old in-memory state died with the process
// (and a durable node's log is superseded by the snapshot), so the node
// rejoins empty and converges before this returns.
func (f *Framework) RejoinShard(i int) error {
	rs := f.repl(i)
	if rs == nil {
		return errors.New("core: RejoinShard requires Config.Replicas")
	}
	rs.mu.Lock()
	p, b := rs.primary, rs.backup
	node := rs.backupNode
	serving := rs.primaryNode
	rs.mu.Unlock()
	if b == nil || !b.Promoted() {
		return fmt.Errorf("core: shard %d has not failed over", i)
	}
	epoch := b.Epoch()

	fresh := space.NewLocal(f.Clock)
	sw := replica.NewSwitchSink()
	var tee tuplespace.RecordSink = sw
	var tap *rebalance.Tap
	if f.cfg.Elastic {
		// The rejoined node gets a fresh tap in its fresh chain — the old
		// tap observed the dead space's journal and must not linger.
		tap = rebalance.NewTap(sw)
		tee = tap
	}
	if err := fresh.TS.AttachJournal(tuplespace.NewJournalSink(tee)); err != nil {
		return fmt.Errorf("core: shard %d rejoin journal: %w", i, err)
	}
	fresh.TS.SetMemoCounters(f.Retries)
	fresh.TS.SetFlightSink(f.memoFlightSink(node.addr, rs.ringID))
	// The replNode fields are read under rs.mu by healthReport and
	// promote from other goroutines; swap them under the same lock.
	rs.mu.Lock()
	node.local, node.sink, node.durable = fresh, sw, nil
	node.tap = tap
	rs.mu.Unlock()

	b2 := replica.NewBackup(fresh, replica.BackupOptions{
		Clock:           f.Clock,
		Epoch:           epoch,
		FailoverTimeout: f.cfg.FailoverTimeout,
		LeaseExpired:    func() bool { return !f.ringRegistered(rs.ringID) },
		OnPromote:       func(e uint64) { f.promote(rs, e) },
		OnEvent:         f.detectFlightSink(node.addr, rs.ringID),
		Counters:        f.Repl,
	})
	b2.Bind(node.srv) // replaces the deposed node's replica handlers
	rs.mu.Lock()
	node.applier = b2.Applier()
	rs.mu.Unlock()

	id := f.registerBackup(rs)
	rs.mu.Lock()
	rs.backup = b2
	rs.stops = append(rs.stops, b2)
	rs.backupRegID = id
	rs.mu.Unlock()

	// The rejoin belongs to the failover's span tree: the deposed node
	// returning as standby is a consequence of the promotion, so its span
	// parents under the promotion's root.
	rs.mu.Lock()
	tc := rs.trace
	rs.mu.Unlock()
	if f.cfg.Obs != nil {
		sp := f.cfg.Obs.T().StartChild(f.Clock, tc, "rejoin", node.addr)
		ctx := sp.Context()
		sp.End()
		f.flight(node.addr, obs.FlightEvent{
			Kind: obs.EventRejoin, Shard: rs.ringID, Epoch: epoch,
			Trace: ctx.TraceID, Span: ctx.SpanID,
		})
	}

	// Attach the standby: the promoted primary pushes its full state and
	// the incremental stream resumes behind it.
	p.SetMirror(f.Cluster.Net.DialAs(serving.addr, node.addr))
	f.spawnRepl(b2.Run)
	return p.Flush()
}

// ReplicaState exposes shard i's current replication controllers — the
// chaos suite's observation surface. Both are nil when replication is
// off; the backup is the controller that would promote (or already has).
func (f *Framework) ReplicaState(i int) (*replica.Primary, *replica.Backup) {
	rs := f.repl(i)
	if rs == nil {
		return nil, nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.primary, rs.backup
}

// ShardEpoch reports the serving epoch of shard i's ring position (1
// until the first failover; 0 when replication is off).
func (f *Framework) ShardEpoch(i int) uint64 {
	rs := f.repl(i)
	if rs == nil {
		return 0
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.epoch
}

// DeposedHandle returns the master-side handle shard i's ring position
// had at construction. After a failover it is gated by the deposed
// primary controller: mutations through it must fail with
// replica.ErrFenced — the chaos tests' split-brain probe.
func (f *Framework) DeposedHandle(i int) space.Space {
	rs := f.repl(i)
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.origHandle
}

// healthReport backs the obs surface's /healthz endpoint: one entry per
// hosted shard with the serving node's role, the ring position's epoch,
// the primary-observed replication lag, the serving node's WAL position
// (0 for a non-durable shard), the shard's admission-control vitals
// (brownout level, inflight, rejects, sheds), and — in elastic mode —
// the shard's ring ownership fraction, live entry count, and the
// rebalancer's smoothed op rate. The Overload block aggregates the
// admission vitals cluster-wide; Status degrades to "browned-out" while
// any shard is shedding.
func (f *Framework) healthReport() obs.Health {
	h := obs.Health{Status: "ok"}
	h.Overload.MaxInflight = f.cfg.MaxInflight
	f.replMu.Lock()
	locals := append([]*space.Local(nil), f.Shards...)
	durables := append([]*space.Durable(nil), f.Durables...)
	addrs := append([]string(nil), f.shardAddrs...)
	services := append([]*space.Service(nil), f.services...)
	f.replMu.Unlock()
	var owned map[string]float64
	if f.router != nil {
		h.TopologyEpoch = f.router.TopoEpoch()
		owned = f.router.Ownership()
	}
	var splitBorn, retired map[string]bool
	var rates map[string]float64
	if f.reshard != nil {
		f.reshard.mu.Lock()
		splitBorn = make(map[string]bool, len(f.reshard.parents))
		for ring := range f.reshard.parents {
			splitBorn[ring] = true
		}
		retired = make(map[string]bool, len(f.reshard.retired))
		for ring := range f.reshard.retired {
			retired[ring] = true
		}
		rates = make(map[string]float64, len(f.reshard.rates))
		for ring, r := range f.reshard.rates {
			rates[ring] = r
		}
		f.reshard.mu.Unlock()
	}
	for i := range locals {
		sh := obs.ShardHealth{Shard: i, Role: shard.RolePrimary}
		serving := locals[i]
		if rs := f.repl(i); rs != nil {
			rs.mu.Lock()
			sh.Epoch = rs.epoch
			if rs.handle != nil {
				// A promoted standby holds the ring position.
				sh.Role = shard.RoleBackup
			}
			p := rs.primary
			var durable *space.Durable
			if rs.primaryNode != nil {
				// Capture under rs.mu: RejoinShard swaps replNode fields
				// under the same lock.
				durable = rs.primaryNode.durable
				serving = rs.primaryNode.local
			}
			rs.mu.Unlock()
			if p != nil {
				sh.ReplicationLag = p.Lag()
			}
			if durable != nil {
				sh.WALPosition = durable.Log().Position()
			}
		} else if i < len(durables) && durables[i] != nil {
			sh.WALPosition = durables[i].Log().Position()
		}
		if i < len(addrs) {
			ring := addrs[i]
			sh.RingID = ring
			sh.OwnedFraction = owned[ring]
			sh.OpRate = rates[ring]
			sh.SplitBorn = splitBorn[ring]
			sh.Retired = retired[ring]
		}
		if serving != nil && !sh.Retired {
			sh.Entries = serving.TS.Stats().EntriesLive
			sh.MemoEntries, sh.DedupHits, _ = serving.TS.MemoStats()
		}
		if i < len(services) && services[i] != nil {
			v := services[i].Admission().Vitals()
			sh.BrownoutLevel = v.BrownoutLevel
			sh.Inflight = v.Inflight
			sh.AdmitRejected = v.Rejected
			sh.Shed = v.Shed
			if v.BrownoutLevel > h.Overload.BrownoutLevel {
				h.Overload.BrownoutLevel = v.BrownoutLevel
			}
			h.Overload.Inflight += v.Inflight
			h.Overload.Rejected += v.Rejected
			h.Overload.Shed += v.Shed
			h.Overload.DeadlineExpired += v.DeadlineExpired
		}
		h.Shards = append(h.Shards, sh)
	}
	if h.Overload.BrownoutLevel > 0 {
		h.Status = "browned-out"
	}
	return h
}

// replGauges registers the per-shard replication gauges.
func (f *Framework) replGauges(reg *metrics.Registry) {
	for i, rs := range f.repls {
		rs := rs
		reg.RegisterGauge(metrics.GaugeReplRole(i), func() int64 {
			rs.mu.Lock()
			defer rs.mu.Unlock()
			if rs.handle != nil {
				return 2 // failed over: the standby serves
			}
			return 1
		})
		reg.RegisterGauge(metrics.GaugeReplEpoch(i), func() int64 {
			rs.mu.Lock()
			defer rs.mu.Unlock()
			return int64(rs.epoch)
		})
		reg.RegisterGauge(metrics.GaugeReplLag(i), func() int64 {
			rs.mu.Lock()
			p := rs.primary
			rs.mu.Unlock()
			if p == nil {
				return 0
			}
			return int64(p.Lag())
		})
	}
}
