package core

import (
	"fmt"

	"gospaces/internal/metrics"
	"gospaces/internal/obs"
	"gospaces/internal/space"
)

// Flight-recorder glue: the framework attributes every hosted node's
// control-plane events (promotions, WAL churn, dedup hits, reshard
// phases) to that node's address in the shared recorder, and exposes each
// hosted shard as a member of the federated /metrics/cluster view.

// flight records one control-plane event attributed to node, returning
// the causal stamp (0 without Config.Obs).
func (f *Framework) flight(node string, ev obs.FlightEvent) uint64 {
	if f.cfg.Obs == nil {
		return 0
	}
	ev.Node = node
	return f.cfg.Obs.Fl().Record(f.Clock, ev)
}

// memoFlightSink builds the dedup-hit sink for a shard space served at
// addr under ring position ringID (nil without Config.Obs, which keeps
// the space's hot path unhooked).
func (f *Framework) memoFlightSink(addr, ringID string) func(kind, detail string) {
	if f.cfg.Obs == nil {
		return nil
	}
	return func(kind, detail string) {
		f.flight(addr, obs.FlightEvent{Kind: obs.EventDedupHit, Shard: ringID, Detail: detail})
	}
}

// walFlightSink builds the WAL lifecycle sink ("rotate"/"snapshot") for
// the durable shard at addr under ring position ringID.
func (f *Framework) walFlightSink(addr, ringID string) func(kind, detail string) {
	if f.cfg.Obs == nil {
		return nil
	}
	return func(kind, detail string) {
		k := obs.EventWALRotate
		if kind == "snapshot" {
			k = obs.EventWALSnapshot
		}
		f.flight(addr, obs.FlightEvent{Kind: k, Shard: ringID, Detail: detail})
	}
}

// fencedHook builds a primary controller's OnFenced hook: the deposed
// node at addr records that it rejected (or learned of) a higher epoch.
func (f *Framework) fencedHook(addr, ringID string) func(epoch uint64) {
	if f.cfg.Obs == nil {
		return nil
	}
	return func(epoch uint64) {
		f.flight(addr, obs.FlightEvent{Kind: obs.EventFenced, Shard: ringID, Epoch: epoch})
	}
}

// replFlightSink maps a primary controller's OnEvent transitions
// ("resync"/"degraded") onto flight events for the node at addr.
func (f *Framework) replFlightSink(addr, ringID string) func(kind, detail string) {
	if f.cfg.Obs == nil {
		return nil
	}
	return func(kind, detail string) {
		k := obs.EventResync
		if kind == "degraded" {
			k = obs.EventDegraded
		}
		f.flight(addr, obs.FlightEvent{Kind: k, Shard: ringID, Detail: detail})
	}
}

// reshardPhaseSink maps a migration's phase boundaries ("fork"/"settle"/
// "drain") onto flight events attributed to the master, tagged with the
// operation, the ring position being resharded, and the reshard's root
// span context.
func (f *Framework) reshardPhaseSink(op, ring string, tc obs.TraceContext) func(kind, detail string) {
	if f.cfg.Obs == nil {
		return nil
	}
	return func(kind, detail string) {
		f.flight("master", obs.FlightEvent{
			Kind: obs.EventSplitPhase, Shard: ring,
			Detail: fmt.Sprintf("%s %s: %s", op, kind, detail),
			Trace:  tc.TraceID, Span: tc.SpanID,
		})
	}
}

// detectFlightSink maps a backup monitor's failure-detection decision
// onto a flight event for the standby at addr.
func (f *Framework) detectFlightSink(addr, ringID string) func(kind, detail string) {
	if f.cfg.Obs == nil {
		return nil
	}
	return func(kind, detail string) {
		f.flight(addr, obs.FlightEvent{Kind: obs.EventDetect, Shard: ringID, Detail: detail})
	}
}

// registerFederation adds the hosted shards as members of the federated
// cluster metrics view: one MemberSnapshot per shard, labeled by ring
// position, carrying the serving node's live state — so /metrics/cluster
// follows failovers and restarts the same way /healthz does.
func (f *Framework) registerFederation() {
	fed := f.cfg.Obs.Fed()
	if fed == nil {
		return
	}
	reg := f.cfg.Obs.Reg()
	fed.Add(func() []metrics.MemberSnapshot {
		f.replMu.Lock()
		locals := append([]*space.Local(nil), f.Shards...)
		durables := append([]*space.Durable(nil), f.Durables...)
		addrs := append([]string(nil), f.shardAddrs...)
		f.replMu.Unlock()
		out := make([]metrics.MemberSnapshot, 0, len(locals))
		for i := range locals {
			m := metrics.MemberSnapshot{
				Name:     addrs[i],
				Counters: make(map[string]uint64),
				Gauges:   make(map[string]int64),
				Hists:    make(map[string]metrics.HistogramSnapshot),
			}
			serving := locals[i]
			var durable *space.Durable
			if i < len(durables) {
				durable = durables[i]
			}
			if rs := f.repl(i); rs != nil {
				rs.mu.Lock()
				m.Gauges[metrics.FedEpoch] = int64(rs.epoch)
				if rs.primaryNode != nil {
					// The serving node moved on promotion; report it, not
					// the construction-time primary.
					serving = rs.primaryNode.local
					durable = rs.primaryNode.durable
				}
				rs.mu.Unlock()
			}
			if serving != nil {
				m.Gauges[metrics.FedEntries] = int64(serving.TS.Stats().EntriesLive)
				memoN, hits, _ := serving.TS.MemoStats()
				m.Gauges[metrics.FedMemoEntries] = int64(memoN)
				m.Counters[metrics.FedDedupHits] = hits
			}
			if durable != nil {
				m.Gauges[metrics.FedWALPosition] = int64(durable.Log().Position())
			}
			if reg != nil {
				h := reg.Histogram(metrics.HistShardServe(i))
				m.Counters[metrics.FedOps] = h.Count()
				m.Hists[metrics.FedServe] = h.Snapshot()
			}
			out = append(out, m)
		}
		return out
	})
}
