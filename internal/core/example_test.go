package core_test

import (
	"fmt"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/vclock"
)

// ExampleFramework prices an option on a simulated 4-node cluster under
// the deterministic virtual clock; the timing metrics reproduce exactly
// on any host.
func ExampleFramework() {
	clk := vclock.NewVirtual(time.Date(2001, 10, 8, 9, 0, 0, 0, time.UTC))
	fw := core.New(clk, core.Config{Workers: cluster.Uniform(4, 1.0)})

	cfg := montecarlo.DefaultJobConfig()
	cfg.TotalSims = 1000 // 10 subtasks
	job := montecarlo.NewJob(cfg)

	var res core.Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		panic(err)
	}
	price, err := job.Answer()
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks: %d over %d workers\n", res.Metrics.Tasks, len(res.WorkerStats))
	fmt.Printf("planning: %dms\n", res.Metrics.TaskPlanningTime.Milliseconds())
	fmt.Printf("bracket valid: %v\n", price.Low <= price.High+4*(price.LowErr+price.HighErr))
	// Output:
	// tasks: 10 over 4 workers
	// planning: 4000ms
	// bracket valid: true
}
