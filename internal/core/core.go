// Package core is the public facade of the adaptive cluster-computing
// framework — the paper's primary contribution. A Framework wires the
// three modules of Figure 3 over the substrates:
//
//   - the master module (package master) hosts the JavaSpaces service and
//     the code server, registers them with the Jini-style lookup service,
//     plans tasks and aggregates results;
//   - the worker modules (package worker) are thin runtimes on each
//     cluster node, configured remotely through the nodeconfig engine,
//     pulling tasks from the space under transactions;
//   - the network management module (package netmgmt) polls each node's
//     SNMP agent and drives workers through the rule-base protocol so
//     cycle stealing stays non-intrusive.
//
// A Framework runs on either clock: the experiment harness uses
// vclock.Virtual for deterministic simulated-cluster runs; the cmd tools
// and examples use the real clock.
package core

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"gospaces/internal/cluster"
	"gospaces/internal/discovery"
	"gospaces/internal/faults"
	"gospaces/internal/master"
	"gospaces/internal/metrics"
	"gospaces/internal/netmgmt"
	"gospaces/internal/nodeconfig"
	"gospaces/internal/obs"
	"gospaces/internal/rebalance"
	"gospaces/internal/replica"
	"gospaces/internal/rulebase"
	"gospaces/internal/shard"
	"gospaces/internal/snmp"
	"gospaces/internal/space"
	"gospaces/internal/sysmon"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/wal"
	"gospaces/internal/worker"
)

// Job is re-exported so applications depend only on core.
type Job = master.Job

// Config tunes a Framework.
type Config struct {
	// Model is the network cost model. Default transport.LAN2001().
	Model *transport.Model
	// Workers are the cluster's worker nodes.
	Workers []cluster.NodeSpec
	// Monitoring enables the network management module: workers then
	// start only when the rule base signals Start, and back off under
	// load. Without it, workers auto-start (scalability experiments).
	Monitoring bool
	// Thresholds configures the rule base (zero value = paper defaults).
	Thresholds rulebase.Thresholds
	// PollInterval is the SNMP monitoring period. Default 1 s.
	PollInterval time.Duration
	// TrapDriven additionally runs a load watcher on every node that
	// fires an SNMP trap when the load crosses a rule-base band, letting
	// the network manager react immediately instead of waiting out the
	// poll interval. Requires Monitoring.
	TrapDriven bool
	// TrapInterval is the node watcher's sampling period.
	// Default PollInterval/10.
	TrapInterval time.Duration
	// TxnTTL leases each worker's per-task transaction. Default 2 min.
	TxnTTL time.Duration
	// PollTimeout bounds each worker's blocking Take. Default 250 ms.
	PollTimeout time.Duration
	// ResultTimeout bounds the master's wait per result. Default 5 min.
	ResultTimeout time.Duration
	// Shards is how many space servers the master hosts (default 1).
	// With K > 1 entries partition across the shards by their
	// `space:"index"` key via a consistent-hash router; the master and
	// every worker route through identical rings. Shard 0 shares the
	// master's main server with the code server, so Shards == 1 is
	// exactly the classic single-server deployment.
	Shards int
	// SpaceOpCost models the server CPU one space operation consumes:
	// each shard server admits requests through a FIFO service gate of
	// this cost, so a saturated server queues callers. Zero disables the
	// gate. The sharded scalability experiments use it to reproduce —
	// and then shift — the single-server saturation knee.
	SpaceOpCost time.Duration
	// Faults, if set, is a fault-injection plan installed on the
	// cluster's in-process network: every RPC between named endpoints
	// (master, workers as "node/<name>", shards, the lookup service)
	// routes through it. New binds the plan to the framework's clock, so
	// scripted windows are offsets from construction time. See
	// internal/faults.
	Faults *faults.Plan
	// DedupResults makes the master's collection idempotent against
	// redelivered result writes (see master.Config.DedupResults). Chaos
	// scenarios that duplicate deliveries turn this on.
	DedupResults bool
	// DataDir, when set, makes every hosted shard durable — JavaSpaces'
	// persistent (Outrigger) mode. Shard i keeps a segmented WAL plus
	// snapshots under <DataDir>/shard<i>; on construction each shard
	// recovers its previous contents before serving, and RestartShard
	// crash-restarts one shard from its log mid-run. The master's handle
	// is always a shard.Router when DataDir is set (pass-through for one
	// shard) so a recovered shard can be re-admitted in place.
	DataDir string
	// FsyncPolicy selects WAL sync behaviour (default wal.FsyncAlways).
	FsyncPolicy wal.FsyncPolicy
	// StrictDurability makes journal failures surface as space operation
	// errors: a write or take that cannot be logged fails loudly instead
	// of acknowledging lost data.
	StrictDurability bool
	// Replicas gives every hosted shard a hot standby: the primary's
	// journal records stream to a backup space on its own server
	// ("<shard>.backup"), which promotes itself — incremented epoch,
	// re-registration under the shard's ring position — when the primary
	// goes silent. Only 0 (off) and 1 are supported; higher values are
	// treated as 1. Replication forces a shard.Router on the master and
	// every worker (pass-through for one shard) so a ring position can be
	// retargeted onto its promoted backup in place.
	Replicas int
	// ReplAck selects when a replicated mutation acknowledges: sync (the
	// default — after the backup confirmed, so failover loses nothing
	// acknowledged) or async (immediately, bounded loss window).
	ReplAck replica.AckMode
	// FailoverTimeout is how long a backup tolerates heartbeat silence
	// before promoting itself; it is also the primary's lookup-lease TTL.
	// Default 2 s.
	FailoverTimeout time.Duration
	// OpTimeout bounds each remote space RPC a worker issues (semantic
	// blocking time excluded — a Take with a 5 s wait gets OpTimeout on
	// top of it). A stuck server then surfaces as space.ErrOpTimeout,
	// which the shard router treats as failover-worthy. Zero disables the
	// deadline. With OpTimeout set the proxy also stamps each RPC frame
	// with its absolute deadline, so shard servers drop queued work the
	// client has already abandoned (admission control's expired check).
	OpTimeout time.Duration
	// MaxInflight bounds each hosted shard's admitted-but-unfinished ops:
	// past the bound new calls fast-fail with tuplespace.ErrOverloaded
	// instead of queueing without limit. It also arms the shard's brownout
	// controller, which sheds the lowest-priority op classes first under
	// sustained saturation. 0 = unlimited (no admission bound).
	MaxInflight int
	// MaxWaiters bounds each hosted shard's blocked Take/Read waiters —
	// the parked-caller table behind blocking lookups. Past the bound a
	// blocking call fast-fails with tuplespace.ErrOverloaded instead of
	// parking. 0 = unlimited.
	MaxWaiters int
	// RetryBudget caps the total retry volume of the master's and each
	// worker's router with a token bucket of this size, refilled by a
	// fraction of observed successes: when a widespread failure empties
	// the bucket, retries are denied and the last error surfaces, so
	// failure recovery cannot amplify offered load into a retry storm.
	// 0 = unlimited retries (the old behavior).
	RetryBudget int
	// Breakers arms a per-shard circuit breaker in the master's and every
	// worker's router: consecutive hard failures at one ring position trip
	// it open and calls there fast-fail (shard.ErrBreakerOpen) until a
	// half-open probe succeeds — one dead or hung shard then costs a
	// scatter round one fast error instead of a full timeout.
	Breakers bool
	// ExactlyOnce upgrades every client-originated mutation from
	// at-most-once to exactly-once: the master's and each worker's router
	// mints an idempotency token per mutation, the shard servers memoize
	// each tokened outcome in a bounded dedup table (rebuilt from the WAL
	// on crash-restart, streamed to hot standbys, shipped with migrating
	// buckets on a split), and ambiguous failures — an RPC that timed out
	// with its effect unknown — are retried with the same token instead
	// of surfacing. Forces a shard.Router on the master and every worker
	// (pass-through for one shard) so the retry machinery is in path.
	ExactlyOnce bool
	// Elastic enables the resharding machinery: every hosted node's
	// journal chain carries a migration tap, the master publishes a ring
	// topology record that workers watch, and SplitShard/MergeShards move
	// key ranges between shards online. Forces a shard.Router on the
	// master and every worker (pass-through for one shard). Implied by
	// AutoShard.
	Elastic bool
	// AutoShard additionally runs the load-driven rebalancer during Run:
	// a controller samples per-shard op rates every ReshardInterval and
	// splits a shard whose EWMA stays above SplitThreshold (merging
	// split-born shards back when they cool below MergeThreshold).
	AutoShard bool
	// SplitThreshold and MergeThreshold are op-rate EWMAs in ops/sec
	// (defaults 500 and 10; see rebalance.ControllerConfig).
	SplitThreshold float64
	MergeThreshold float64
	// ReshardInterval is the rebalancer's sampling tick. Default 1 s.
	ReshardInterval time.Duration
	// ReshardHysteresis is how many consecutive ticks a threshold must be
	// breached before the rebalancer acts (default 3).
	ReshardHysteresis int
	// ReshardCooldown is the minimum pause between reshard actions
	// (default 30 s).
	ReshardCooldown time.Duration
	// MaxShards caps automatic splits (default 8).
	MaxShards int
	// ReshardDrain is the post-cutover lame-duck window during which the
	// old owner keeps sweeping straggler writes across to the new one.
	// Default 2×WatchInterval — it must outlast worker ring convergence.
	ReshardDrain time.Duration
	// WatchInterval is how often each worker polls the lookup service for
	// a newer ring topology. Default 500 ms.
	WatchInterval time.Duration
	// Obs, if set, enables the observability layer end to end: causal
	// tracing of every task (plan → take → execute → aggregate), latency
	// histograms on the master's space handle, each shard server, the WAL
	// and every worker, live framework gauges, and an SNMP MIB on the
	// master's agent. Nil keeps every hot path a no-op.
	Obs *obs.Obs
}

// Framework is an assembled deployment: cluster, lookup service, space
// service, code server and master module.
type Framework struct {
	Clock      vclock.Clock
	Cluster    *cluster.Cluster
	Lookup     *discovery.Registry
	Local      *space.Local // shard 0 (the only shard when Shards == 1)
	CodeServer *nodeconfig.CodeServer
	Master     *master.Master

	// Shards holds every hosted space shard; len(Shards) == cfg.Shards.
	Shards []*space.Local
	// Space is the master's operating handle: shard 0 directly for a
	// single-shard deployment, a shard.Router otherwise (gated either way
	// when SpaceOpCost is set).
	Space space.Space
	// Durables pairs each shard with its persistence controller when
	// Config.DataDir is set (nil entries otherwise).
	Durables []*space.Durable
	// Durability carries the wal:* and journal:errors counters when
	// Config.DataDir is set.
	Durability *metrics.Counters
	// Repl carries the repl:* counters (records shipped, promotions,
	// fenced requests, router failovers) when Config.Replicas is set.
	Repl *metrics.Counters
	// Reshard carries the reshard:* counters (splits, merges, entries
	// migrated/evicted, aborted migrations) when Config.Elastic is set.
	Reshard *metrics.Counters
	// Retries carries the retry:* / dedup:* counters when
	// Config.ExactlyOnce is set (shared with Repl when replication is also
	// on, so one snapshot shows failovers next to the retries they caused).
	Retries *metrics.Counters
	// Overload carries the admit:* / shed:* counters (and, when no repl or
	// retry counter set exists, the breaker:* and retry budget counters of
	// the master's router) when any overload-protection knob — MaxInflight,
	// MaxWaiters, RetryBudget, Breakers — is set.
	Overload *metrics.Counters
	// MIB is the master's management information base when Config.Obs is
	// set: the framework gauges exported as SNMP objects, served by an
	// agent bound on the master's server (the same substrate the network
	// management module polls workers through).
	MIB *snmp.MIB

	cfg        Config
	router     *shard.Router
	shardSrvs  []*transport.Server
	shardAddrs []string
	gates      []*transport.ServiceGate
	// services holds each hosted shard's serving space.Service — the
	// admission controller owner. Promotions and restarts swap entries so
	// healthReport always reads the serving node's vitals.
	services []*space.Service
	sweeps   []*swapSweeper
	taps     []*rebalance.Tap // per seed shard, elastic only
	repls    []*replShard
	replMu   sync.Mutex
	runGroup *vclock.Group
	sweeper  *growSweeper
	reshard  *reshardState // elastic only (see elastic.go)
}

// swapSweeper lets the master's sweeper (captured once at master.New)
// follow a shard restart: RestartShard swaps in the recovered shard's
// transaction manager.
type swapSweeper struct {
	mu sync.Mutex
	s  interface{ Sweep() int }
}

// Sweep implements the master's sweeper contract.
func (w *swapSweeper) Sweep() int {
	w.mu.Lock()
	s := w.s
	w.mu.Unlock()
	return s.Sweep()
}

func (w *swapSweeper) swap(s interface{ Sweep() int }) {
	w.mu.Lock()
	w.s = s
	w.mu.Unlock()
}

// Result gathers everything a run produced.
type Result struct {
	Metrics master.RunMetrics
	// MaxWorkerTime is the maximum per-worker computation time (first
	// task access to final result write) — the paper's Max Worker Time.
	MaxWorkerTime time.Duration
	// WorkerStats maps node name to its worker's final stats.
	WorkerStats map[string]worker.Stats
	// SignalLogs maps node name to the control signals it received.
	SignalLogs map[string][]worker.SignalRecord
	// Events is the network management module's signal log (empty when
	// monitoring is disabled).
	Events []netmgmt.Event
	// FaultEvents is the injected-fault event counts when Config.Faults
	// was set (keys are the faults.Event* constants).
	FaultEvents map[string]uint64
	// Durability is the wal:* / journal:errors counter snapshot when
	// Config.DataDir was set.
	Durability map[string]uint64
	// Replication is the repl:* counter snapshot when Config.Replicas was
	// set: records shipped, promotions, fenced requests, resyncs, and the
	// failover count across the master's and every worker's router.
	Replication map[string]uint64
	// Resharding is the reshard:* counter snapshot when Config.Elastic was
	// set: splits, merges, entries migrated and evicted, aborted forks.
	Resharding map[string]uint64
	// Retries is the retry:* / dedup:* counter snapshot when
	// Config.ExactlyOnce was set: retry attempts, ambiguous outcomes
	// replayed, budgets exhausted, memo dedup hits and evictions.
	Retries map[string]uint64
	// Overload is the admit:* / shed:* (plus, without repl or retry
	// counters, breaker:* and retry budget) counter snapshot when any
	// overload-protection knob was set.
	Overload map[string]uint64
	// ObsSummary is the per-stage tail-latency table (p50/p90/p99/max of
	// every non-empty histogram) when Config.Obs was set.
	ObsSummary []metrics.StageSummary
}

// New assembles a Framework on clock.
func New(clock vclock.Clock, cfg Config) *Framework {
	model := transport.LAN2001()
	if cfg.Model != nil {
		model = *cfg.Model
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.TxnTTL <= 0 {
		cfg.TxnTTL = 2 * time.Minute
	}
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 250 * time.Millisecond
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Replicas > 1 {
		cfg.Replicas = 1
	}
	if cfg.FailoverTimeout <= 0 {
		cfg.FailoverTimeout = 2 * time.Second
	}
	if cfg.AutoShard {
		cfg.Elastic = true
	}
	if cfg.WatchInterval <= 0 {
		cfg.WatchInterval = 500 * time.Millisecond
	}
	if cfg.ReshardDrain <= 0 {
		cfg.ReshardDrain = 2 * cfg.WatchInterval
	}
	if cfg.ReshardInterval <= 0 {
		cfg.ReshardInterval = time.Second
	}

	clus := cluster.New(clock, model, cfg.Workers)
	if cfg.Faults != nil {
		cfg.Faults.Bind(clock)
		clus.Net.Intercept(cfg.Faults.Interceptor())
	}

	f := &Framework{
		Clock:      clock,
		Cluster:    clus,
		Lookup:     discovery.NewRegistry(clock),
		CodeServer: nodeconfig.NewCodeServer(),
		cfg:        cfg,
	}

	// The lookup service listens at the well-known discovery address.
	lookupSrv := transport.NewServer()
	discovery.NewService(f.Lookup, lookupSrv)
	clus.Net.Listen(discovery.WellKnownAddress, lookupSrv)

	// The master hosts the JavaSpaces service — one server per shard —
	// plus the code server, and joins the lookup federation. Shard 0
	// shares the master's main server with the code server, preserving
	// the classic single-server deployment when Shards == 1; shards
	// i > 0 get their own listeners at "<master>.shard<i>". Each shard
	// registers with its index so clients can rebuild the same ring.
	if cfg.DataDir != "" {
		f.Durability = metrics.NewCounters()
	}
	if cfg.Replicas > 0 {
		f.Repl = metrics.NewCounters()
		f.repls = make([]*replShard, cfg.Shards)
	}
	if cfg.Elastic {
		f.Reshard = metrics.NewCounters()
		f.taps = make([]*rebalance.Tap, cfg.Shards)
	}
	if cfg.ExactlyOnce {
		if f.Repl != nil {
			f.Retries = f.Repl
		} else {
			f.Retries = metrics.NewCounters()
		}
	}
	if cfg.MaxInflight > 0 || cfg.MaxWaiters > 0 || cfg.RetryBudget > 0 || cfg.Breakers {
		f.Overload = metrics.NewCounters()
	}
	shards := make([]shard.Shard, cfg.Shards)
	f.sweeper = &growSweeper{}
	f.sweeps = make([]*swapSweeper, cfg.Shards)
	f.shardSrvs = make([]*transport.Server, cfg.Shards)
	f.shardAddrs = make([]string, cfg.Shards)
	f.gates = make([]*transport.ServiceGate, cfg.Shards)
	f.services = make([]*space.Service, cfg.Shards)
	f.Durables = make([]*space.Durable, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		srv, addr := clus.MasterServer, clus.MasterAddr
		if i > 0 {
			srv = transport.NewServer()
			addr = fmt.Sprintf("%s.shard%d", clus.MasterAddr, i)
			clus.Net.Listen(addr, srv)
		}
		f.shardSrvs[i], f.shardAddrs[i] = srv, addr
		var rs *replShard
		var psw *replica.SwitchSink
		if cfg.Replicas > 0 {
			rs = &replShard{idx: i, ringID: addr}
			f.repls[i] = rs
			psw = replica.NewSwitchSink()
		}
		// The journal chain, innermost first: space journal → WAL (when
		// durable) → migration tap (when elastic) → replication switch
		// sink. The tap stays a pass-through until a reshard turns it on.
		var sink tuplespace.RecordSink
		if psw != nil {
			sink = psw
		}
		var tap *rebalance.Tap
		if cfg.Elastic {
			tap = rebalance.NewTap(sink)
			f.taps[i] = tap
			sink = tap
		}
		var l *space.Local
		if cfg.DataDir != "" {
			dopts := f.durableOptions(i)
			dopts.Tee = sink
			var d *space.Durable
			var err error
			l, d, err = space.NewLocalDurable(clock, dopts)
			if err != nil {
				// New has no error return (it predates durability); an
				// unopenable data directory is a deployment misconfiguration
				// on par with the unreachable router error below.
				panic(fmt.Sprintf("core: durable shard %d: %v", i, err))
			}
			f.Durables[i] = d
		} else {
			l = space.NewLocal(clock)
			if sink != nil {
				if err := l.TS.AttachJournal(tuplespace.NewJournalSink(sink)); err != nil {
					panic(fmt.Sprintf("core: shard %d journal: %v", i, err))
				}
			}
		}
		l.TS.SetMemoCounters(f.Retries)
		l.TS.SetFlightSink(f.memoFlightSink(addr, addr))
		if cfg.MaxWaiters > 0 {
			l.TS.SetMaxWaiters(cfg.MaxWaiters)
		}
		f.Shards = append(f.Shards, l)
		f.sweeps[i] = &swapSweeper{s: l.Mgr}
		f.sweeper.add(f.sweeps[i])
		svc := space.NewService(l, srv)
		f.services[i] = svc
		var p *replica.Primary
		if rs != nil {
			// Directly after the service handlers so the replication
			// middleware sits innermost: a mutation confirms on the backup
			// before the gate or obs layers see the reply.
			p = f.setupReplica(rs, l, srv, psw, tap, f.Durables[i])
		}
		var handle space.Space = l
		var gate *transport.ServiceGate
		if cfg.SpaceOpCost > 0 {
			// Remote callers pay the gate inside the admission controller
			// (configured below); the master pays it through the gatedSpace
			// wrapper, so both compete for the same modeled server CPU. The
			// code server bypasses the space handlers and stays ungated.
			gate = transport.NewServiceGate(clock, cfg.SpaceOpCost)
			handle = gatedSpace{l: l, gate: gate}
			f.gates[i] = gate
		}
		f.configureAdmission(svc, addr, gate)
		if reg := cfg.Obs.Reg(); reg != nil {
			// Outermost wrap (after the gate), so the shard's serve
			// histogram sees gate queueing plus service time — what remote
			// callers actually experience at this server.
			srv.WrapPrefix("space.", obs.ServerMiddleware(clock, reg.Histogram(metrics.HistShardServe(i))))
		}
		if rs != nil {
			handle = p.Wrap(handle)
			rs.origHandle = handle
			shards[i] = shard.Shard{ID: addr, Space: handle, Epoch: 1}
		} else {
			shards[i] = shard.Shard{ID: addr, Space: handle}
		}
		f.registerShard(i, f.Durables[i], false)
	}
	f.Local = f.Shards[0]
	f.CodeServer.Bind(clus.MasterServer)

	if cfg.Shards == 1 && cfg.DataDir == "" && cfg.Replicas == 0 && !cfg.Elastic && !cfg.ExactlyOnce {
		f.Space = shards[0].Space
	} else {
		// A router even for a single durable or replicated shard:
		// RestartShard re-admits a recovered space through Router.Replace,
		// and a promotion retargets the ring position through
		// Router.Retarget — both of which the master's captured handle then
		// observes.
		ropts := shard.Options{Clock: clock, Seed: "master", ExactlyOnce: cfg.ExactlyOnce, Obs: cfg.Obs}
		if cfg.Replicas > 0 {
			ropts.Counters = f.Repl
			ropts.Failover = f.localResolver()
		}
		if ropts.Counters == nil {
			ropts.Counters = f.Retries
		}
		if ropts.Counters == nil {
			ropts.Counters = f.Overload
		}
		if cfg.RetryBudget > 0 {
			ropts.Budget = shard.NewRetryBudget(cfg.RetryBudget, 0)
		}
		if cfg.Breakers {
			ropts.Breaker = &shard.BreakerConfig{}
		}
		router, err := shard.New(ropts, shards)
		if err != nil {
			panic(err) // unreachable: shard IDs above are distinct and non-nil
		}
		f.router = router
		f.Space = router
	}
	if cfg.Elastic {
		// Publish the initial topology (epoch 1, default labels) so every
		// watcher treats topology records as authoritative from the start —
		// the legacy add-only growth path never races a reshard.
		f.initElastic(shards)
	}
	// The master's operating handle records per-op latencies. The wrapper
	// delegates to the router underneath, so RestartShard's in-place
	// Replace stays visible through it.
	f.Space = obs.InstrumentSpace(f.Space, clock, cfg.Obs.Reg(), metrics.HistSpacePrefix)

	f.Master = master.New(master.Config{
		Clock:         clock,
		Space:         f.Space,
		Machine:       clus.MasterMachine,
		ResultTimeout: cfg.ResultTimeout,
		// Sweeping expired worker transactions lets tasks held by
		// crashed workers reappear instead of stalling collection. The
		// growable sweeper lets split-born shards join the sweep loop.
		Sweeper:       f.sweeper,
		SweepInterval: cfg.TxnTTL / 4,
		DedupResults:  cfg.DedupResults,
		Obs:           cfg.Obs,
	})

	if reg := cfg.Obs.Reg(); reg != nil {
		// Framework gauges: every surface (/metrics, SNMP, ObsSummary)
		// reads these same registrations.
		reg.RegisterGauge(metrics.GaugeTasksPending, f.Master.PendingTasks)
		reg.RegisterGauge(metrics.GaugeTasksInFlight, f.Master.InFlight)
		reg.RegisterGauge(metrics.GaugeTasksPlanned, f.Master.TasksPlanned)
		reg.RegisterGauge(metrics.GaugeResultsCollected, f.Master.ResultsCollected)
		for i := 0; i < cfg.Shards; i++ {
			h := reg.Histogram(metrics.HistShardServe(i))
			reg.RegisterGauge(metrics.GaugeShardOps(i), func() int64 { return int64(h.Count()) })
		}
		if cfg.Replicas > 0 {
			f.replGauges(reg)
		}
		if f.router != nil {
			router := f.router
			reg.RegisterGauge(metrics.GaugeTopologyEpoch, func() int64 {
				return int64(router.TopoEpoch())
			})
		}
		cfg.Obs.SetHealth(f.healthReport)
		// The master answers SNMP GETs for the framework subtree on its
		// own server — the same management substrate the network
		// management module uses towards workers, now pointing back at
		// the master.
		f.MIB = snmp.NewMIB()
		obs.ExportMIB(f.MIB, cfg.Obs, cfg.Shards)
		snmp.NewAgent(clus.Community, f.MIB).Bind(clus.MasterServer)
	}
	if cfg.Obs != nil {
		f.registerFederation()
		f.flight("master", obs.FlightEvent{
			Kind:   obs.EventNodeStart,
			Detail: fmt.Sprintf("%d shards, %d workers", cfg.Shards, len(cfg.Workers)),
		})
	}
	return f
}

// durableOptions builds shard i's persistence configuration. When a fault
// plan is installed the WAL's writes route through it under the shard's
// disk endpoint, so chaos scripts can fail specific disk writes.
func (f *Framework) durableOptions(i int) space.DurableOptions {
	return f.durableOptionsAt(i, f.shardAddrs[i])
}

// durableOptionsAt is durableOptions with the disk endpoint's address made
// explicit — split-born shards configure durability before they appear in
// the framework's shard tables.
func (f *Framework) durableOptionsAt(i int, addr string) space.DurableOptions {
	opts := space.DurableOptions{
		Dir:      filepath.Join(f.cfg.DataDir, fmt.Sprintf("shard%d", i)),
		Fsync:    f.cfg.FsyncPolicy,
		Strict:   f.cfg.StrictDurability,
		Counters: f.Durability,
		// All shards share the append/fsync histograms: the interesting
		// question ("how slow is my disk?") is per deployment, not per
		// shard, and the per-shard serve histograms already split load.
		AppendHist: f.cfg.Obs.Reg().Histogram(metrics.HistWALAppend),
		SyncHist:   f.cfg.Obs.Reg().Histogram(metrics.HistWALFsync),
		OnWALEvent: f.walFlightSink(addr, addr),
	}
	if f.cfg.Faults != nil {
		ep := faults.DiskEndpoint(addr)
		plan := f.cfg.Faults
		opts.WrapWriter = func(w io.Writer) io.Writer { return plan.WrapWriter(ep, w) }
	}
	return opts
}

// configureAdmission arms the admission controller of a shard's service:
// the propagated-deadline check always, the inflight bound and brownout
// controller when Config.MaxInflight is set, and the deadline-aware
// service gate in place of the old gate middleware — AdmitBy charges the
// same modeled CPU as Admit did, and additionally drops a queued op whose
// service slot would end past the client's deadline. Every serving node
// (seed shards, split children, promoted standbys, restarted shards) goes
// through here so overload protection survives topology changes.
func (f *Framework) configureAdmission(svc *space.Service, addr string, gate *transport.ServiceGate) {
	svc.Admission().Configure(space.AdmissionConfig{
		Clock:       f.Clock,
		MaxInflight: f.cfg.MaxInflight,
		Gate:        gate,
		Counters:    f.Overload,
		FlightSink: func(detail string) {
			f.flight(addr, obs.FlightEvent{Kind: obs.EventBrownout, Shard: addr, Detail: detail})
		},
	})
}

// registerShard (re-)announces shard i in the lookup service, returning
// the registration ID. Durable shards carry recovery metadata: clients and
// operators can see that a service came back from its log and how much it
// restored.
func (f *Framework) registerShard(i int, d *space.Durable, recovered bool) uint64 {
	attrs := map[string]string{
		"type":           "javaspace",
		shard.AttrShard:  strconv.Itoa(i),
		shard.AttrShards: strconv.Itoa(f.cfg.Shards),
	}
	if d != nil {
		attrs["durable"] = "1"
		attrs["recovered-entries"] = strconv.Itoa(d.Info().Restored)
		if recovered {
			attrs["recovered"] = "1"
		}
	}
	var ttl time.Duration
	rs := f.repl(i)
	if rs != nil {
		// A replicated primary's registration is a lease: its pump renews
		// it each heartbeat, and the lapse is the backup's second failure
		// signal (beside heartbeat silence).
		attrs[shard.AttrRing] = rs.ringID
		attrs[shard.AttrRole] = shard.RolePrimary
		attrs[shard.AttrEpoch] = "1"
		ttl = f.replLeaseTTL()
	}
	id := f.Lookup.Register(discovery.ServiceItem{
		Name:       "javaspace",
		Address:    f.shardAddrs[i],
		Attributes: attrs,
	}, ttl)
	if rs != nil {
		rs.setRegID(id)
	}
	return id
}

// RestartShard crash-restarts hosted shard i: the live space is closed
// (in-memory state discarded, blocked callers woken with ErrClosed) and a
// replacement is recovered from the shard's WAL + snapshot, rebound under
// the same network address and re-admitted to the routing ring. It is the
// in-process equivalent of kill -9 on a persistent Outrigger followed by
// a restart from -datadir, and requires Config.DataDir.
func (f *Framework) RestartShard(i int) (space.RecoveryInfo, error) {
	if f.cfg.DataDir == "" {
		return space.RecoveryInfo{}, errors.New("core: RestartShard requires Config.DataDir")
	}
	// The shard tables grow under replMu when a split builds a child, so a
	// restart's reads and writes of them synchronize on the same lock.
	f.replMu.Lock()
	if i < 0 || i >= len(f.Shards) {
		f.replMu.Unlock()
		return space.RecoveryInfo{}, fmt.Errorf("core: no shard %d", i)
	}
	old, oldDur, addr := f.Shards[i], f.Durables[i], f.shardAddrs[i]
	f.replMu.Unlock()

	// Crash: drop the in-memory space. Entries live only in the WAL now.
	old.TS.Close()
	if err := oldDur.Close(); err != nil {
		return space.RecoveryInfo{}, fmt.Errorf("core: shard %d shutdown: %w", i, err)
	}

	// Restart: recover from disk. An elastic shard's chain gets a fresh
	// migration tap (the old one observed the dead space's journal); the
	// crash dropped any in-flight migration with it, which is exactly the
	// abort-and-retry path resharding already handles.
	dopts := f.durableOptionsAt(i, addr)
	var tap *rebalance.Tap
	if f.cfg.Elastic {
		tap = rebalance.NewTap(nil)
		dopts.Tee = tap
	}
	l, d, err := space.NewLocalDurable(f.Clock, dopts)
	if err != nil {
		return space.RecoveryInfo{}, fmt.Errorf("core: shard %d recovery: %w", i, err)
	}
	// WAL replay rebuilt the memo table; rewire its counters and flight
	// sink so dedup hits against recovered memos are still visible.
	l.TS.SetMemoCounters(f.Retries)
	l.TS.SetFlightSink(f.memoFlightSink(addr, addr))
	if f.cfg.MaxWaiters > 0 {
		l.TS.SetMaxWaiters(f.cfg.MaxWaiters)
	}
	f.replMu.Lock()
	if tap != nil {
		f.taps[i] = tap
	}
	f.Shards[i] = l
	f.Durables[i] = d
	srv, sweep, gate := f.shardSrvs[i], f.sweeps[i], f.gates[i]
	f.replMu.Unlock()
	if i == 0 {
		f.Local = l
	}
	sweep.swap(l.Mgr)

	// Rebind the service on the shard's existing server so clients'
	// proxies (dialed to the same address) reach the recovered space.
	// The recovered service gets a fresh admission controller, configured
	// like the seed's (the crash dropped the old inflight accounting with
	// the old service — exactly right, those ops died with the process).
	svc := space.NewService(l, srv)
	f.configureAdmission(svc, addr, gate)
	f.replMu.Lock()
	if i < len(f.services) {
		f.services[i] = svc
	}
	f.replMu.Unlock()
	var handle space.Space = l
	if gate != nil {
		handle = gatedSpace{l: l, gate: gate}
	}
	if reg := f.cfg.Obs.Reg(); reg != nil {
		// Same serve histogram as before the crash: a shard keeps one
		// latency record across its restarts.
		srv.WrapPrefix("space.", obs.ServerMiddleware(f.Clock, reg.Histogram(metrics.HistShardServe(i))))
	}
	if err := f.router.Replace(addr, handle); err != nil {
		return space.RecoveryInfo{}, fmt.Errorf("core: shard %d re-admission: %w", i, err)
	}
	f.registerShard(i, d, true)
	f.flight(addr, obs.FlightEvent{
		Kind: obs.EventShardRestart, Shard: addr,
		Detail: fmt.Sprintf("%d entries restored", d.Info().Restored),
	})
	return d.Info(), nil
}

// Close shuts down the hosted shards and their durable logs. Runs are
// unaffected if it is never called (tests rely on process teardown), but
// durable deployments should close so final appends reach disk.
func (f *Framework) Close() {
	f.replMu.Lock()
	locals := append([]*space.Local(nil), f.Shards...)
	durables := append([]*space.Durable(nil), f.Durables...)
	f.replMu.Unlock()
	for _, l := range locals {
		l.TS.Close()
	}
	for _, d := range durables {
		if d != nil {
			d.Close()
		}
	}
	for _, rs := range f.replsSnapshot() {
		rs.mu.Lock()
		nodes := []*replNode{rs.primaryNode, rs.backupNode}
		rs.mu.Unlock()
		for _, n := range nodes {
			if n == nil {
				continue
			}
			n.local.TS.Close()
			if n.durable != nil {
				n.durable.Close()
			}
		}
	}
}

// Run executes job on the framework's cluster. If script is non-nil it
// runs concurrently (experiment scripts toggle load simulators with it).
// Run must execute as a process on the framework's clock — inside
// vclock.Virtual.Run for virtual time, or any goroutine for real time.
func (f *Framework) Run(job Job, script func(*Framework)) (Result, error) {
	f.CodeServer.Publish(job.Bundle())

	// Build one worker per node, each discovering the space through the
	// lookup service exactly as a Jini client would.
	workers := make([]*worker.Worker, 0, len(f.Cluster.Nodes))
	engine := rulebase.NewEngine(f.cfg.Thresholds)
	mod := netmgmt.New(netmgmt.Config{
		Clock:        f.Clock,
		Engine:       engine,
		PollInterval: f.cfg.PollInterval,
		Community:    f.Cluster.Community,
	})
	var watchers []*sysmon.Watcher
	var ringWatchers []*shard.Watcher
	for _, node := range f.Cluster.Nodes {
		w, rw, err := f.buildWorker(node, job)
		if err != nil {
			return Result{}, err
		}
		workers = append(workers, w)
		if rw != nil {
			ringWatchers = append(ringWatchers, rw)
		}
		if !f.cfg.Monitoring {
			w.AutoStart()
			continue
		}
		mod.Register(node.Name,
			&snmp.RPCExchanger{C: f.Cluster.Net.DialAs(f.Cluster.MasterAddr, node.Addr)},
			f.Cluster.Net.DialAs(f.Cluster.MasterAddr, node.Addr))
		if f.cfg.TrapDriven {
			watchers = append(watchers, f.buildTrapWatcher(node, engine, mod))
		}
	}

	if reg := f.cfg.Obs.Reg(); reg != nil {
		ws := workers
		reg.RegisterGauge(metrics.GaugeWorkersRunning, func() int64 {
			var n int64
			for _, w := range ws {
				if w.State() == rulebase.StateRunning {
					n++
				}
			}
			return n
		})
	}

	group := vclock.NewGroup(f.Clock)
	f.replMu.Lock()
	f.runGroup = group
	f.replMu.Unlock()
	f.startReplPumps()
	for _, w := range workers {
		w := w
		group.Go(w.Run)
	}
	if f.cfg.Monitoring {
		group.Go(mod.Run)
	}
	for _, watch := range watchers {
		watch := watch
		group.Go(watch.Run)
	}
	// Elastic mode: each worker's ring watcher follows published topology
	// records, and AutoShard adds the load-driven rebalancer itself.
	for _, rw := range ringWatchers {
		rw := rw
		group.Go(rw.Run)
	}
	var reshardLoop *rebalancer
	if f.cfg.AutoShard {
		reshardLoop = f.newRebalancer()
		group.Go(reshardLoop.Run)
	}
	if script != nil {
		group.Go(func() { script(f) })
	}

	rm, runErr := f.Master.RunJob(job)

	for _, w := range workers {
		w.Shutdown()
	}
	mod.Shutdown()
	for _, watch := range watchers {
		watch.Stop()
	}
	for _, rw := range ringWatchers {
		rw.Stop()
	}
	if reshardLoop != nil {
		reshardLoop.Stop()
	}
	f.replMu.Lock()
	f.runGroup = nil
	f.replMu.Unlock()
	f.stopReplPumps()
	group.Wait()

	res := Result{
		Metrics:     rm,
		WorkerStats: make(map[string]worker.Stats, len(workers)),
		SignalLogs:  make(map[string][]worker.SignalRecord, len(workers)),
		Events:      mod.Events(),
	}
	if f.cfg.Faults != nil {
		res.FaultEvents = f.cfg.Faults.Counters().Snapshot()
	}
	if f.Durability != nil {
		res.Durability = f.Durability.Snapshot()
	}
	if f.Repl != nil {
		res.Replication = f.Repl.Snapshot()
	}
	if f.Reshard != nil {
		res.Resharding = f.Reshard.Snapshot()
	}
	if f.Retries != nil {
		res.Retries = f.Retries.Snapshot()
	}
	if f.Overload != nil {
		res.Overload = f.Overload.Snapshot()
	}
	if f.cfg.Obs != nil {
		res.ObsSummary = f.cfg.Obs.Reg().Summary()
	}
	for i, w := range workers {
		name := f.Cluster.Nodes[i].Name
		st := w.Stats()
		res.WorkerStats[name] = st
		res.SignalLogs[name] = w.Signals()
		if wt := st.WorkerTime(); wt > res.MaxWorkerTime {
			res.MaxWorkerTime = wt
		}
	}
	return res, runErr
}

// buildWorker assembles the worker module for one node. In elastic mode it
// also returns the node's ring watcher, which Run drives so the worker's
// router follows topology changes (split-born shards joining, merged ones
// leaving) published after startup.
func (f *Framework) buildWorker(node *cluster.Node, job Job) (*worker.Worker, *shard.Watcher, error) {
	// Jini-style discovery: find the space service(s) by attribute
	// lookup. One registration is the classic deployment and the worker
	// talks straight to that proxy; several mean a sharded space, and the
	// worker routes through the same consistent-hash ring as the master.
	// Every dial is tagged with the node's own address so an installed
	// fault plan can apply per-endpoint rules (crashes, partitions) to
	// this worker's traffic. Discovery retries with backoff: a lookup
	// service inside a scripted crash-restart window heals within a few
	// attempts instead of failing the whole deployment.
	lc := discovery.NewClient(f.Cluster.Net.DialAs(node.Addr, discovery.WellKnownAddress))
	tmpl := map[string]string{"type": "javaspace"}
	dial := func(addr string) (space.Space, error) {
		p := space.NewProxy(f.Cluster.Net.DialAs(node.Addr, addr))
		return p.WithOpTimeout(f.Clock, f.cfg.OpTimeout), nil
	}
	var shards []shard.Shard
	// The shared default dial policy, widened for discovery: a lookup
	// service inside a crash-restart window needs more headroom than a
	// plain connection race.
	retry := transport.DefaultPolicy()
	retry.Clock = f.Clock
	retry.Attempts = 6
	retry.Initial = 250 * time.Millisecond
	retry.Max = 4 * time.Second
	err := retry.Do(func() error {
		var derr error
		shards, derr = shard.Discover(lc, tmpl, dial)
		return derr
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: discovering space: %w", node.Name, err)
	}
	if len(shards) == 0 {
		return nil, nil, fmt.Errorf("core: %s: discovering space: no javaspace service registered", node.Name)
	}
	var sp space.Space
	var ringWatcher *shard.Watcher
	if len(shards) == 1 && f.cfg.Replicas == 0 && !f.cfg.Elastic && !f.cfg.ExactlyOnce {
		sp = shards[0].Space
	} else {
		// A router even for one replicated or elastic shard: failover needs
		// a ring position that can be retargeted onto the promoted backup,
		// and resharding needs a ring whose membership can change — both
		// resolved through the lookup service (highest epoch claiming the
		// ring position wins).
		ropts := shard.Options{Clock: f.Clock, Seed: node.Name, ExactlyOnce: f.cfg.ExactlyOnce, Obs: f.cfg.Obs}
		if f.cfg.Replicas > 0 {
			ropts.Counters = f.Repl
		}
		if ropts.Counters == nil {
			ropts.Counters = f.Retries
		}
		if ropts.Counters == nil {
			ropts.Counters = f.Overload
		}
		if f.cfg.RetryBudget > 0 {
			// Each worker gets its own bucket: the budget bounds what one
			// client process can amplify, and workers fail independently.
			ropts.Budget = shard.NewRetryBudget(f.cfg.RetryBudget, 0)
		}
		if f.cfg.Breakers {
			ropts.Breaker = &shard.BreakerConfig{}
		}
		if f.cfg.Replicas > 0 || f.cfg.Elastic {
			ropts.Failover = shard.Resolver(lc, tmpl, dial)
		}
		router, rerr := shard.New(ropts, shards)
		if rerr != nil {
			return nil, nil, fmt.Errorf("core: %s: shard router: %w", node.Name, rerr)
		}
		if f.cfg.Elastic {
			// Adopt the published topology now rather than waiting out the
			// first watch tick: a worker that joins mid-run must not route
			// one request over pre-reshard default placements.
			if items, lerr := lc.Lookup(map[string]string{"type": shard.TopoType}); lerr == nil {
				if t, ok := shard.BestTopology(items); ok {
					if _, aerr := router.ApplyTopology(t, shard.Resolver(lc, tmpl, dial)); aerr != nil {
						return nil, nil, fmt.Errorf("core: %s: adopt topology: %w", node.Name, aerr)
					}
				}
			}
			ringWatcher = shard.NewWatcher(lc, f.Clock, router, tmpl, dial, f.cfg.WatchInterval)
		}
		sp = router
	}
	// The code server lives on shard 0's server (the master's address).
	engine := nodeconfig.NewEngine(nodeconfig.ExecContext{
		Clock:   f.Clock,
		Machine: node.Machine,
		Node:    node.Name,
	}, f.Cluster.Net.DialAs(node.Addr, shards[0].ID))

	w := worker.New(worker.Config{
		Node:         node.Name,
		Clock:        f.Clock,
		Machine:      node.Machine,
		Space:        sp,
		Engine:       engine,
		Program:      job.Name(),
		TaskTemplate: job.TaskTemplate(),
		TxnTTL:       f.cfg.TxnTTL,
		PollTimeout:  f.cfg.PollTimeout,
		Obs:          f.cfg.Obs,
	})
	w.Bind(node.Server)
	// Export the worker's progress through the node's SNMP agent.
	node.MIB.Register(snmp.OIDWorkerTasksDone, func() snmp.Value {
		return snmp.Counter32(uint32(w.Stats().TasksDone))
	})
	node.MIB.Register(snmp.OIDWorkerState, func() snmp.Value {
		return snmp.Integer(int64(w.State()))
	})
	f.flight(node.Name, obs.FlightEvent{Kind: obs.EventNodeStart, Detail: "worker"})
	return w, ringWatcher, nil
}

// buildTrapWatcher wires a node-side load watcher that fires an SNMP
// load-band trap to the network manager whenever the node's background
// load crosses a rule-base band.
func (f *Framework) buildTrapWatcher(node *cluster.Node, engine *rulebase.Engine, mod *netmgmt.Module) *sysmon.Watcher {
	interval := f.cfg.TrapInterval
	if interval <= 0 {
		interval = f.cfg.PollInterval / 10
	}
	start := f.Clock.Now()
	sender := snmp.NewTrapSender(f.Cluster.Community, snmp.TrapSinkFunc(func(pkt []byte) error {
		_, err := mod.HandleTrap(node.Name, pkt)
		return err
	}))
	return sysmon.NewWatcher(f.Clock, node.Machine, interval, engine.Band, func(load float64) {
		uptime := snmp.TimeTicks(f.Clock.Since(start) / (10 * time.Millisecond))
		_ = sender.Send(uptime, snmp.OIDLoadBandTrap,
			snmp.Varbind{OID: snmp.OIDBackgroundLoad, Value: snmp.Integer(int64(load + 0.5))})
	})
}

// Machine returns the named node's machine (nil if unknown) — convenience
// for experiment scripts.
func (f *Framework) Machine(name string) *sysmon.Machine {
	if n := f.Cluster.Node(name); n != nil {
		return n.Machine
	}
	return nil
}
