package core

import (
	"time"

	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
)

// gatedSpace charges a shard's service gate for the master's direct
// in-process operations. Worker RPCs pay the gate inside the transport
// server middleware; without this wrapper the master's own writes and
// takes would bypass the modeled server CPU and the single-server
// saturation knee would vanish from the measurements.
type gatedSpace struct {
	l    *space.Local
	gate *transport.ServiceGate
}

func (g gatedSpace) Write(e tuplespace.Entry, t space.Txn, ttl time.Duration) (space.Lease, error) {
	g.gate.Admit()
	return g.l.Write(e, t, ttl)
}

func (g gatedSpace) Read(tmpl tuplespace.Entry, t space.Txn, timeout time.Duration) (tuplespace.Entry, error) {
	g.gate.Admit()
	return g.l.Read(tmpl, t, timeout)
}

func (g gatedSpace) Take(tmpl tuplespace.Entry, t space.Txn, timeout time.Duration) (tuplespace.Entry, error) {
	g.gate.Admit()
	return g.l.Take(tmpl, t, timeout)
}

func (g gatedSpace) ReadIfExists(tmpl tuplespace.Entry, t space.Txn) (tuplespace.Entry, error) {
	g.gate.Admit()
	return g.l.ReadIfExists(tmpl, t)
}

func (g gatedSpace) TakeIfExists(tmpl tuplespace.Entry, t space.Txn) (tuplespace.Entry, error) {
	g.gate.Admit()
	return g.l.TakeIfExists(tmpl, t)
}

func (g gatedSpace) ReadAll(tmpl tuplespace.Entry, t space.Txn, max int) ([]tuplespace.Entry, error) {
	g.gate.Admit()
	return g.l.ReadAll(tmpl, t, max)
}

func (g gatedSpace) TakeAll(tmpl tuplespace.Entry, t space.Txn, max int) ([]tuplespace.Entry, error) {
	g.gate.Admit()
	return g.l.TakeAll(tmpl, t, max)
}

// Token methods delegate to the local space's memo-aware variants so the
// master's exactly-once mutations dedup like a worker's RPCs would.

func (g gatedSpace) WriteTok(e tuplespace.Entry, t space.Txn, ttl time.Duration, tok tuplespace.OpToken) (space.Lease, error) {
	g.gate.Admit()
	return g.l.WriteTok(e, t, ttl, tok)
}

func (g gatedSpace) TakeTok(tmpl tuplespace.Entry, t space.Txn, timeout time.Duration, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	g.gate.Admit()
	return g.l.TakeTok(tmpl, t, timeout, tok)
}

func (g gatedSpace) TakeIfExistsTok(tmpl tuplespace.Entry, t space.Txn, tok tuplespace.OpToken) (tuplespace.Entry, error) {
	g.gate.Admit()
	return g.l.TakeIfExistsTok(tmpl, t, tok)
}

func (g gatedSpace) TakeAllTok(tmpl tuplespace.Entry, t space.Txn, max int, tok tuplespace.OpToken) ([]tuplespace.Entry, error) {
	g.gate.Admit()
	return g.l.TakeAllTok(tmpl, t, max, tok)
}

var _ space.TokenMutator = gatedSpace{}

func (g gatedSpace) Count(tmpl tuplespace.Entry) (int, error) {
	g.gate.Admit()
	return g.l.Count(tmpl)
}

func (g gatedSpace) BeginTxn(ttl time.Duration) (space.Txn, error) {
	g.gate.Admit()
	return g.l.BeginTxn(ttl)
}

func (g gatedSpace) Close() error { return g.l.Close() }

// Notify and TypeCounts keep the wrapper compatible with the shard
// router's optional Notifier and Counter fan-outs. Notifications are
// server-push, not request work, so they bypass the gate.
func (g gatedSpace) Notify(tmpl tuplespace.Entry, fn tuplespace.Listener, ttl time.Duration) (*tuplespace.Registration, error) {
	return g.l.Notify(tmpl, fn, ttl)
}

func (g gatedSpace) TypeCounts() (map[string]int, error) {
	g.gate.Admit()
	return g.l.TypeCounts()
}

var _ space.Space = gatedSpace{}
