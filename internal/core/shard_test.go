package core

import (
	"fmt"
	"testing"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// TestShardedPlacementSpreadsKeys: a multi-shard framework actually
// partitions keyed entries across its shard servers.
func TestShardedPlacementSpreadsKeys(t *testing.T) {
	clk := vclock.NewReal()
	model := transport.Loopback()
	fw := New(clk, Config{Shards: 4, Model: &model})
	if len(fw.Shards) != 4 {
		t.Fatalf("Shards = %d", len(fw.Shards))
	}
	for i := 0; i < 32; i++ {
		task := montecarlo.Task{Job: fmt.Sprintf("mc#%d", i), ID: i + 1}
		if _, err := fw.Space.Write(task, nil, tuplespace.Forever); err != nil {
			t.Fatal(err)
		}
	}
	total, populated := 0, 0
	for _, l := range fw.Shards {
		n := l.TS.Stats().EntriesLive
		total += n
		if n > 0 {
			populated++
		}
	}
	if total != 32 {
		t.Fatalf("live entries = %d, want 32", total)
	}
	if populated < 2 {
		t.Fatalf("only %d of 4 shards populated", populated)
	}
}

// TestShardedEndToEnd runs the Monte-Carlo job in ShardSpread mode on a
// two-shard space: per-task keys distribute the bag of tasks, workers
// scatter-take with zero-key templates, and the run completes with every
// result aggregated — the shards=K path end to end.
func TestShardedEndToEnd(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{Workers: cluster.Uniform(4, 1.0), Shards: 2})
	cfg := smallMCConfig()
	cfg.ShardSpread = true
	job := montecarlo.NewJob(cfg)
	var res Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Shards != 2 {
		t.Fatalf("Metrics.Shards = %d, want 2", res.Metrics.Shards)
	}
	if res.Metrics.Tasks != 12 || job.ResultCount() != 12 {
		t.Fatalf("tasks = %d, results = %d, want 12/12", res.Metrics.Tasks, job.ResultCount())
	}
	if _, err := job.Answer(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for node, st := range res.WorkerStats {
		if st.TaskFailures != 0 {
			t.Fatalf("%s failures: %+v", node, st)
		}
		total += st.TasksDone
	}
	if total != 12 {
		t.Fatalf("workers completed %d tasks", total)
	}
	// Nothing left behind on any shard: no leaked tasks, results, or
	// scatter write-backs.
	for i, l := range fw.Shards {
		if n := l.TS.Stats().EntriesLive; n != 0 {
			t.Fatalf("shard %d holds %d leftover entries", i, n)
		}
	}
}

// TestShardedSingleShardMatchesClassic: Shards=1 is byte-for-byte the
// classic deployment — same metrics, same virtual end time.
func TestShardedSingleShardMatchesClassic(t *testing.T) {
	run := func(cfg Config) (Result, time.Time) {
		clk := vclock.NewVirtual(epoch)
		fw := New(clk, cfg)
		job := montecarlo.NewJob(smallMCConfig())
		var res Result
		clk.Run(func() { res, _ = fw.Run(job, nil) })
		return res, clk.Now()
	}
	classic, end1 := run(Config{Workers: cluster.Uniform(3, 1.0)})
	sharded, end2 := run(Config{Workers: cluster.Uniform(3, 1.0), Shards: 1})
	if classic.Metrics != sharded.Metrics {
		t.Fatalf("metrics differ:\n%+v\n%+v", classic.Metrics, sharded.Metrics)
	}
	if !end1.Equal(end2) {
		t.Fatalf("virtual end times differ: %v vs %v", end1, end2)
	}
}

// TestGatedSpaceOpCost: with a modeled per-op server cost the run still
// completes, and the master's metrics report the shard count.
func TestGatedSpaceOpCost(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fw := New(clk, Config{
		Workers:     cluster.Uniform(2, 1.0),
		Shards:      2,
		SpaceOpCost: 2 * time.Millisecond,
	})
	job := montecarlo.NewJob(smallMCConfig())
	var res Result
	var err error
	clk.Run(func() { res, err = fw.Run(job, nil) })
	if err != nil {
		t.Fatal(err)
	}
	if job.ResultCount() != 12 {
		t.Fatalf("results = %d", job.ResultCount())
	}
	if res.Metrics.Shards != 2 {
		t.Fatalf("Metrics.Shards = %d", res.Metrics.Shards)
	}
}
