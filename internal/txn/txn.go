// Package txn implements a Jini-style transaction service: transactions
// are created by a Manager, resources (such as the tuple space) join a
// transaction as participants, and completion runs a two-phase commit
// across the participants. The framework uses transactions to make the
// take-task / write-result exchange atomic: a worker that dies mid-task
// aborts its transaction and the task reappears in the space, so no task
// is ever lost (paper §3, "fault-tolerance and data integrity through
// transactions").
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gospaces/internal/vclock"
)

// State is the lifecycle state of a transaction.
type State int

// Transaction states.
const (
	Active State = iota
	Committing
	Committed
	Aborted
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committing:
		return "committing"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Errors returned by transaction operations.
var (
	ErrNotActive     = errors.New("txn: transaction not active")
	ErrPrepareFailed = errors.New("txn: a participant failed to prepare")
)

// Participant is a resource enrolled in a transaction. The space implements
// this interface. Prepare must leave the participant able to either Commit
// or Abort; returning an error vetoes the commit.
type Participant interface {
	Prepare(id uint64) error
	Commit(id uint64)
	Abort(id uint64)
}

// Manager creates and tracks transactions.
type Manager struct {
	clock  vclock.Clock
	mu     sync.Mutex
	nextID uint64
	live   map[uint64]*Txn
}

// NewManager returns a transaction manager using clock for lease deadlines.
func NewManager(clock vclock.Clock) *Manager {
	return &Manager{clock: clock, nextID: 1, live: make(map[uint64]*Txn)}
}

// Begin creates a transaction with the given lease duration. ttl <= 0 means
// the transaction never expires on its own.
func (m *Manager) Begin(ttl time.Duration) *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Txn{mgr: m, id: m.nextID, state: Active}
	m.nextID++
	if ttl > 0 {
		t.deadline = m.clock.Now().Add(ttl)
	}
	m.live[t.id] = t
	return t
}

// Sweep aborts every live transaction whose lease has expired and returns
// how many were aborted. The experiment harness calls this to model worker
// crashes; a real deployment would run it periodically.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	var expired []*Txn
	now := m.clock.Now()
	for _, t := range m.live {
		if !t.deadline.IsZero() && now.After(t.deadline) {
			expired = append(expired, t)
		}
	}
	m.mu.Unlock()
	for _, t := range expired {
		_ = t.Abort()
	}
	return len(expired)
}

// Live returns the number of transactions currently active.
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}

func (m *Manager) finish(t *Txn) {
	m.mu.Lock()
	delete(m.live, t.id)
	m.mu.Unlock()
}

// Txn is a single transaction. All methods are safe for concurrent use.
type Txn struct {
	mgr      *Manager
	id       uint64
	deadline time.Time

	mu           sync.Mutex
	state        State
	participants []Participant
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// State returns the current state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Active reports whether the transaction can still accept operations. A
// transaction past its lease deadline is treated as inactive.
func (t *Txn) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return false
	}
	if !t.deadline.IsZero() && t.mgr.clock.Now().After(t.deadline) {
		return false
	}
	return true
}

// Join enrols p as a participant. Joining the same participant twice is a
// no-op. Returns ErrNotActive if the transaction can no longer accept work.
func (t *Txn) Join(p Participant) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return ErrNotActive
	}
	for _, q := range t.participants {
		if q == p {
			return nil
		}
	}
	t.participants = append(t.participants, p)
	return nil
}

// Commit runs two-phase commit over the participants. If any participant
// vetoes in the prepare phase, every participant is aborted and
// ErrPrepareFailed is returned. Committing an expired transaction aborts it
// and returns ErrNotActive.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.state != Active {
		st := t.state
		t.mu.Unlock()
		return fmt.Errorf("%w (state %s)", ErrNotActive, st)
	}
	if !t.deadline.IsZero() && t.mgr.clock.Now().After(t.deadline) {
		t.mu.Unlock()
		_ = t.Abort()
		return fmt.Errorf("%w (lease expired)", ErrNotActive)
	}
	t.state = Committing
	parts := append([]Participant(nil), t.participants...)
	t.mu.Unlock()

	// Phase 1: prepare.
	for i, p := range parts {
		if err := p.Prepare(t.id); err != nil {
			for _, q := range parts[:i] {
				q.Abort(t.id)
			}
			for _, q := range parts[i:] {
				q.Abort(t.id)
			}
			t.mu.Lock()
			t.state = Aborted
			t.mu.Unlock()
			t.mgr.finish(t)
			return fmt.Errorf("%w: %v", ErrPrepareFailed, err)
		}
	}
	// Phase 2: commit.
	for _, p := range parts {
		p.Commit(t.id)
	}
	t.mu.Lock()
	t.state = Committed
	t.mu.Unlock()
	t.mgr.finish(t)
	return nil
}

// Abort aborts the transaction at every participant. Aborting a completed
// transaction returns ErrNotActive.
func (t *Txn) Abort() error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return ErrNotActive
	}
	t.state = Aborted
	parts := append([]Participant(nil), t.participants...)
	t.mu.Unlock()
	for _, p := range parts {
		p.Abort(t.id)
	}
	t.mgr.finish(t)
	return nil
}
