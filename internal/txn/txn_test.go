package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gospaces/internal/vclock"
)

// fakePart records participant callbacks.
type fakePart struct {
	mu       sync.Mutex
	prepares []uint64
	commits  []uint64
	aborts   []uint64
	failPrep error
}

func (p *fakePart) Prepare(id uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.prepares = append(p.prepares, id)
	return p.failPrep
}
func (p *fakePart) Commit(id uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.commits = append(p.commits, id)
}
func (p *fakePart) Abort(id uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aborts = append(p.aborts, id)
}

func TestCommitRunsTwoPhases(t *testing.T) {
	m := NewManager(vclock.NewReal())
	tx := m.Begin(0)
	a, b := &fakePart{}, &fakePart{}
	if err := tx.Join(a); err != nil {
		t.Fatal(err)
	}
	if err := tx.Join(b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(a.prepares) != 1 || len(b.prepares) != 1 {
		t.Fatal("prepare not called on all participants")
	}
	if len(a.commits) != 1 || len(b.commits) != 1 {
		t.Fatal("commit not called on all participants")
	}
	if tx.State() != Committed {
		t.Fatalf("state = %v", tx.State())
	}
	if m.Live() != 0 {
		t.Fatalf("live = %d", m.Live())
	}
}

func TestPrepareVetoAbortsAll(t *testing.T) {
	m := NewManager(vclock.NewReal())
	tx := m.Begin(0)
	good := &fakePart{}
	bad := &fakePart{failPrep: errors.New("veto")}
	_ = tx.Join(good)
	_ = tx.Join(bad)
	err := tx.Commit()
	if !errors.Is(err, ErrPrepareFailed) {
		t.Fatalf("err = %v", err)
	}
	if len(good.aborts) != 1 || len(bad.aborts) != 1 {
		t.Fatalf("aborts: good=%d bad=%d, want 1 each", len(good.aborts), len(bad.aborts))
	}
	if len(good.commits)+len(bad.commits) != 0 {
		t.Fatal("commit ran after veto")
	}
	if tx.State() != Aborted {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestAbort(t *testing.T) {
	m := NewManager(vclock.NewReal())
	tx := m.Begin(0)
	p := &fakePart{}
	_ = tx.Join(p)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if len(p.aborts) != 1 {
		t.Fatal("participant not aborted")
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double abort err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("commit after abort err = %v", err)
	}
}

func TestJoinAfterCompleteFails(t *testing.T) {
	m := NewManager(vclock.NewReal())
	tx := m.Begin(0)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Join(&fakePart{}); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinIdempotent(t *testing.T) {
	m := NewManager(vclock.NewReal())
	tx := m.Begin(0)
	p := &fakePart{}
	_ = tx.Join(p)
	_ = tx.Join(p)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(p.prepares) != 1 {
		t.Fatalf("prepared %d times, want 1", len(p.prepares))
	}
}

func TestLeaseExpiryMakesInactive(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	m := NewManager(clk)
	clk.Run(func() {
		tx := m.Begin(10 * time.Millisecond)
		if !tx.Active() {
			t.Error("fresh txn inactive")
		}
		clk.Sleep(20 * time.Millisecond)
		if tx.Active() {
			t.Error("expired txn still active")
		}
		if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
			t.Errorf("commit err = %v", err)
		}
		if tx.State() != Aborted {
			t.Errorf("state = %v, want Aborted", tx.State())
		}
	})
}

func TestSweepAbortsOnlyExpired(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	m := NewManager(clk)
	clk.Run(func() {
		short := m.Begin(5 * time.Millisecond)
		long := m.Begin(time.Hour)
		forever := m.Begin(0)
		p := &fakePart{}
		_ = short.Join(p)
		clk.Sleep(10 * time.Millisecond)
		if n := m.Sweep(); n != 1 {
			t.Errorf("swept %d, want 1", n)
		}
		if len(p.aborts) != 1 {
			t.Error("expired txn's participant not aborted")
		}
		if !long.Active() || !forever.Active() {
			t.Error("unexpired txns were swept")
		}
		_ = long.Abort()
		_ = forever.Abort()
	})
}

func TestIDsUnique(t *testing.T) {
	m := NewManager(vclock.NewReal())
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		tx := m.Begin(0)
		if seen[tx.ID()] {
			t.Fatalf("duplicate id %d", tx.ID())
		}
		seen[tx.ID()] = true
		_ = tx.Abort()
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Active: "active", Committing: "committing", Committed: "committed", Aborted: "aborted", State(9): "state(9)"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestConcurrentCommitAbortRace(t *testing.T) {
	m := NewManager(vclock.NewReal())
	for i := 0; i < 200; i++ {
		tx := m.Begin(0)
		p := &fakePart{}
		_ = tx.Join(p)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); _ = tx.Commit() }()
		go func() { defer wg.Done(); _ = tx.Abort() }()
		wg.Wait()
		st := tx.State()
		if st != Committed && st != Aborted {
			t.Fatalf("final state %v", st)
		}
	}
}
