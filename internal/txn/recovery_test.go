package txn_test

import (
	"errors"
	"testing"
	"time"

	"gospaces/internal/tuplespace"
	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

type recTask struct {
	ID   int
	Body string
}

// TestAbortReexposesEntryToBlockedTake is the heart of the paper's §3
// fault-tolerance story at the smallest scale: an entry taken under a
// transaction is invisible to everyone else, and the moment the
// transaction aborts (as the lease sweeper does for a crashed worker) the
// entry reappears — delivered directly to a Take that was already parked
// waiting for it, not just to future polls.
func TestAbortReexposesEntryToBlockedTake(t *testing.T) {
	clock := vclock.NewReal()
	s := tuplespace.New(clock)
	mgr := txn.NewManager(clock)

	if _, err := s.Write(recTask{ID: 1, Body: "work"}, nil, tuplespace.Forever); err != nil {
		t.Fatal(err)
	}

	tx := mgr.Begin(time.Minute)
	got, err := s.Take(recTask{}, tx, 0)
	if err != nil {
		t.Fatalf("take under txn: %v", err)
	}
	if got.(recTask).ID != 1 {
		t.Fatalf("took %+v", got)
	}

	// A second consumer blocks on the same template. The entry is locked
	// under tx, so nothing is available yet.
	if _, err := s.TakeIfExists(recTask{}, nil); !errors.Is(err, tuplespace.ErrNoMatch) {
		t.Fatalf("entry visible while locked under txn: %v", err)
	}
	type res struct {
		e   tuplespace.Entry
		err error
	}
	done := make(chan res, 1)
	go func() {
		e, err := s.Take(recTask{}, nil, 5*time.Second)
		done <- res{e, err}
	}()

	// Let the consumer park, then abort — the crashed worker's fate.
	time.Sleep(50 * time.Millisecond)
	select {
	case r := <-done:
		t.Fatalf("blocked take returned before abort: %+v, %v", r.e, r.err)
	default:
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("blocked take after abort: %v", r.err)
		}
		if r.e.(recTask).ID != 1 {
			t.Fatalf("blocked take got %+v, want the aborted entry", r.e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort did not wake the blocked take")
	}

	// The take was destructive exactly once: the space is empty now.
	if _, err := s.TakeIfExists(recTask{}, nil); !errors.Is(err, tuplespace.ErrNoMatch) {
		t.Fatalf("entry still present after recovery take: %v", err)
	}
}

// TestSweepReexposesExpiredLease drives the same recovery through the
// manager's Sweep — the exact path the master's collect loop exercises
// when a worker dies holding a task.
func TestSweepReexposesExpiredLease(t *testing.T) {
	start := time.Date(2001, time.March, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(start)
	clk.Run(func() {
		s := tuplespace.New(clk)
		mgr := txn.NewManager(clk)
		if _, err := s.Write(recTask{ID: 7}, nil, tuplespace.Forever); err != nil {
			t.Fatal(err)
		}
		tx := mgr.Begin(10 * time.Second)
		if _, err := s.Take(recTask{}, tx, 0); err != nil {
			t.Fatalf("take under txn: %v", err)
		}
		// Before the lease expires, Sweep reaps nothing.
		if n := mgr.Sweep(); n != 0 {
			t.Fatalf("sweep reaped %d live txns", n)
		}
		clk.Sleep(11 * time.Second)
		if n := mgr.Sweep(); n != 1 {
			t.Fatalf("sweep reaped %d, want 1", n)
		}
		got, err := s.TakeIfExists(recTask{}, nil)
		if err != nil {
			t.Fatalf("entry not re-exposed after sweep: %v", err)
		}
		if got.(recTask).ID != 7 {
			t.Fatalf("re-exposed entry = %+v", got)
		}
	})
}
