package tuplespace

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

// TestLeaseRenewalRacesExpirySweep pins the renew-vs-sweep ordering under
// a deterministic clock: a renewal applied before the lease's original
// expiry keeps the entry alive past it; once the (renewed) lease lapses
// and a scan has swept the entry, both Renew and Cancel report
// ErrLeaseExpired rather than resurrecting it.
func TestLeaseRenewalRacesExpirySweep(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	s := New(clk)
	clk.Run(func() {
		l, err := s.Write(task{Job: "lease", ID: ip(1)}, nil, 100*time.Millisecond)
		if err != nil {
			t.Error(err)
			return
		}
		// Renew just before expiry.
		clk.Sleep(90 * time.Millisecond)
		if err := l.Renew(100 * time.Millisecond); err != nil {
			t.Errorf("renew before expiry: %v", err)
		}
		// Past the ORIGINAL expiry the entry must still match: the
		// renewal won the race against the sweep.
		clk.Sleep(50 * time.Millisecond) // t=140ms, original expiry was 100ms
		if _, err := s.ReadIfExists(task{Job: "lease"}, nil); err != nil {
			t.Errorf("renewed entry swept at original expiry: %v", err)
		}
		// Let the renewed lease lapse, and force a sweep via a scan.
		clk.Sleep(100 * time.Millisecond) // t=240ms > 190ms
		if _, err := s.ReadIfExists(task{Job: "lease"}, nil); !errors.Is(err, ErrNoMatch) {
			t.Errorf("expired entry still matches: %v", err)
		}
		// The sweep marked it removed: renew and cancel both lose.
		if err := l.Renew(time.Hour); !errors.Is(err, ErrLeaseExpired) {
			t.Errorf("renew after sweep = %v, want ErrLeaseExpired", err)
		}
		if err := l.Cancel(); !errors.Is(err, ErrLeaseExpired) {
			t.Errorf("cancel after sweep = %v, want ErrLeaseExpired", err)
		}
	})
}

// TestLeaseRenewExpiredWithoutSweep: expiry alone (no scan having swept
// the entry yet) must already refuse renewal — the lease contract is
// about time, not about whether a scan happened to run.
func TestLeaseRenewExpiredWithoutSweep(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	s := New(clk)
	clk.Run(func() {
		l, err := s.Write(task{Job: "nosweep"}, nil, 50*time.Millisecond)
		if err != nil {
			t.Error(err)
			return
		}
		clk.Sleep(60 * time.Millisecond)
		if err := l.Renew(time.Hour); !errors.Is(err, ErrLeaseExpired) {
			t.Errorf("renew past expiry = %v, want ErrLeaseExpired", err)
		}
	})
}

// TestLeaseCancelConcurrentWithSweep hammers Renew/Cancel against scans
// (which sweep expired entries) from many goroutines under the real
// clock. Run with -race; the invariant checked at the end is that every
// lease ends in exactly one of two states — cancelled/expired, or alive —
// and double-cancel always errors.
func TestLeaseCancelConcurrentWithSweep(t *testing.T) {
	s := newRealSpace()
	const n = 64
	leases := make([]*EntryLease, n)
	for i := 0; i < n; i++ {
		l, err := s.Write(task{Job: "race", ID: ip(i)}, nil, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		leases[i] = l
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(3)
		// Renewer: races the expiry.
		go func() {
			defer wg.Done()
			_ = leases[i].Renew(20 * time.Millisecond)
		}()
		// Sweeper: scans force expiry processing.
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i%7) * time.Millisecond)
			_, _ = s.ReadIfExists(task{Job: "race", ID: ip(i)}, nil)
		}()
		// Canceller: races both.
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i%5) * time.Millisecond)
			_ = leases[i].Cancel()
		}()
	}
	wg.Wait()
	// Whatever interleaving happened, a second cancel must now be
	// definitive for every entry that is gone, and every survivor must
	// still be renewable.
	for i := 0; i < n; i++ {
		err := leases[i].Cancel()
		if err == nil {
			// First cancel lost every race until now; the entry was
			// alive and is cancelled as of this call. A repeat must fail.
			if err2 := leases[i].Cancel(); !errors.Is(err2, ErrLeaseExpired) {
				t.Fatalf("lease %d: double cancel = %v", i, err2)
			}
		} else if !errors.Is(err, ErrLeaseExpired) {
			t.Fatalf("lease %d: cancel = %v", i, err)
		}
	}
	if got, _ := s.Count(task{Job: "race"}); got != 0 {
		t.Fatalf("%d entries survived cancellation", got)
	}
}

// TestReplayRecordsSkipsTxnAborted: a journal (as WAL records) containing
// entries written under transactions that later aborted must not
// resurrect them — aborted writes never became public, so they never
// reached the journal at all, and replay yields only committed state.
func TestReplayRecordsSkipsTxnAborted(t *testing.T) {
	sink := &scriptedSink{}
	clk := vclock.NewReal()
	s := New(clk)
	if err := s.AttachJournal(NewJournalSink(sink)); err != nil {
		t.Fatal(err)
	}
	m := txn.NewManager(clk)

	// Aborted write: never visible, never journaled.
	tx1 := m.Begin(0)
	if _, err := s.Write(task{Job: "aborted", ID: ip(1)}, tx1, Forever); err != nil {
		t.Fatal(err)
	}
	_ = tx1.Abort()

	// Aborted take: the entry stays, and stays durable.
	mustWrite(t, s, task{Job: "kept", ID: ip(2)})
	tx2 := m.Begin(0)
	if _, err := s.Take(task{Job: "kept"}, tx2, time.Second); err != nil {
		t.Fatal(err)
	}
	_ = tx2.Abort()

	// Committed write for contrast.
	tx3 := m.Begin(0)
	if _, err := s.Write(task{Job: "committed", ID: ip(3)}, tx3, Forever); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}

	s2 := newRealSpace()
	n, err := ReplayRecords(sink.records, s2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d entries, want 2 (kept + committed)", n)
	}
	for job, want := range map[string]int{"aborted": 0, "kept": 1, "committed": 1} {
		if got, _ := s2.Count(task{Job: job}); got != want {
			t.Errorf("replayed count(%q) = %d, want %d", job, got, want)
		}
	}
}

// TestReplayRecordsDedupsSnapshotOverlap: a record present both in a
// snapshot and in a retained tail segment (the legal overlap the WAL's
// rotate-then-capture ordering produces) must materialize exactly once.
func TestReplayRecordsDedupsSnapshotOverlap(t *testing.T) {
	sink := &scriptedSink{}
	s := newRealSpace()
	if err := s.AttachJournal(NewJournalSink(sink)); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, task{Job: "dup", ID: ip(7)})

	// Simulate the overlap: snapshot state (EncodeState) followed by the
	// original tail record for the same entry.
	snap, err := s.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	records := append(append([][]byte{}, snap...), sink.records...)

	s2 := newRealSpace()
	n, err := ReplayRecords(records, s2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d entries, want 1 (overlap must dedup)", n)
	}
	if got, _ := s2.Count(task{Job: "dup"}); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}
