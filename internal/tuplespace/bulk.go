package tuplespace

import (
	"reflect"

	"gospaces/internal/txn"
)

// ReadAll returns copies of up to max public entries matching tmpl
// (max <= 0 means no limit), without blocking. Under a transaction the
// returned entries are read-locked. It is the JavaSpaces05 "contents"
// extension, useful for bulk aggregation and diagnostics.
func (s *Space) ReadAll(tmpl Entry, t *txn.Txn, max int) ([]Entry, error) {
	return s.bulk(opRead, tmpl, t, max)
}

// TakeAll removes and returns up to max matching entries (max <= 0 means
// no limit), without blocking. Under a transaction the removals are
// provisional until commit.
func (s *Space) TakeAll(tmpl Entry, t *txn.Txn, max int) ([]Entry, error) {
	return s.bulk(opTake, tmpl, t, max)
}

func (s *Space) bulk(kind opKind, tmpl Entry, t *txn.Txn, max int) ([]Entry, error) {
	ti, tv, err := infoFor(tmpl)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, err := s.joinLocked(t); err != nil {
		return nil, err
	}
	var out []Entry
	now := s.clock.Now()
	list := s.byType[ti.name]
	kept := list[:0]
	for _, se := range list {
		if se.removed || (!se.expiry.IsZero() && now.After(se.expiry)) {
			if !se.removed {
				se.removed = true
				s.stats.Expired++
			}
			continue
		}
		kept = append(kept, se)
		if max > 0 && len(out) >= max {
			continue
		}
		if !s.visibleLocked(se, t) {
			continue
		}
		if kind == opTake && !s.takeableLocked(se, t) {
			continue
		}
		if !matchesEntry(ti, tv, se.val) {
			continue
		}
		s.applyLocked(kind, se, t)
		out = append(out, deepCopy(se.val).Interface())
	}
	s.byType[ti.name] = kept
	return out, nil
}

// matchesEntry is a tiny wrapper so bulk reads the same matcher the
// scalar paths use.
func matchesEntry(ti *typeInfo, tv, cv reflect.Value) bool { return matches(ti, tv, cv) }
