package tuplespace

import (
	"reflect"

	"gospaces/internal/txn"
)

// ReadAll returns copies of up to max public entries matching tmpl
// (max <= 0 means no limit), without blocking. Under a transaction the
// returned entries are read-locked. It is the JavaSpaces05 "contents"
// extension, useful for bulk aggregation and diagnostics.
func (s *Space) ReadAll(tmpl Entry, t *txn.Txn, max int) ([]Entry, error) {
	return s.bulk(opRead, tmpl, t, max)
}

// TakeAll removes and returns up to max matching entries (max <= 0 means
// no limit), without blocking. Under a transaction the removals are
// provisional until commit.
func (s *Space) TakeAll(tmpl Entry, t *txn.Txn, max int) ([]Entry, error) {
	return s.bulk(opTake, tmpl, t, max)
}

func (s *Space) bulk(kind opKind, tmpl Entry, t *txn.Txn, max int) ([]Entry, error) {
	ti, tv, err := infoFor(tmpl)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, err := s.joinLocked(t); err != nil {
		return nil, err
	}
	var out []Entry
	now := s.clock.Now()
	list := s.byType[ti.name]
	kept := list[:0]
	for _, se := range list {
		if se.removed || (!se.expiry.IsZero() && now.After(se.expiry)) {
			if !se.removed {
				se.removed = true
				s.stats.Expired++
			}
			continue
		}
		kept = append(kept, se)
		if max > 0 && len(out) >= max {
			continue
		}
		if !s.visibleLocked(se, t) {
			continue
		}
		if kind == opTake && !s.takeableLocked(se, t) {
			continue
		}
		if !matchesEntry(ti, tv, se.val) {
			continue
		}
		s.applyLocked(kind, se, t)
		out = append(out, deepCopy(se.val).Interface())
	}
	s.byType[ti.name] = kept
	return out, nil
}

// matchesEntry is a tiny wrapper so bulk reads the same matcher the
// scalar paths use.
func matchesEntry(ti *typeInfo, tv, cv reflect.Value) bool { return matches(ti, tv, cv) }

// bulkTok is the token TakeAll: a two-phase bulk take whose memo record
// is journaled before any remove record, so a replication ship torn
// mid-op can only leave memo-plus-live-entries on the standby, never
// consumed entries with no memo (see the ordering contract in memo.go).
// Non-transactional and tokened by construction (TakeAllTok gates).
func (s *Space) bulkTok(tmpl Entry, max int, tok OpToken) ([]Entry, error) {
	ti, tv, err := infoFor(tmpl)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if rec, ok := s.memoHitLocked(tok); ok && rec.op == MemoTakeAll {
		return copyEntries(rec.entries), nil
	}
	// Phase 1: pick the matching entries without consuming, compacting
	// dead ones as the plain bulk scan does.
	var picked []*storedEntry
	var out []Entry
	now := s.clock.Now()
	list := s.byType[ti.name]
	kept := list[:0]
	for _, se := range list {
		if se.removed || (!se.expiry.IsZero() && now.After(se.expiry)) {
			if !se.removed {
				se.removed = true
				s.stats.Expired++
			}
			continue
		}
		kept = append(kept, se)
		if max > 0 && len(picked) >= max {
			continue
		}
		if !s.visibleLocked(se, nil) || !s.takeableLocked(se, nil) {
			continue
		}
		if !matchesEntry(ti, tv, se.val) {
			continue
		}
		picked = append(picked, se)
		out = append(out, deepCopy(se.val).Interface())
	}
	s.byType[ti.name] = kept
	if len(picked) == 0 {
		// Nothing consumed: re-execution is effect-free, so an empty
		// result is not memoized (a retry is semantically a fresh op).
		return nil, nil
	}
	// Memoize under the template's key: the router routes the retry by
	// it, so the memo must migrate with that bucket.
	key, keyed := "", false
	if ti.keyField >= 0 {
		key = tv.Field(ti.keyField).String()
		keyed = key != ""
	}
	rec := &memoRec{op: MemoTakeAll, key: key, keyed: keyed, entries: copyEntries(out)}
	s.journalMemoLocked(tok, rec)
	// Phase 2: consume, journaling each removal behind the memo record.
	for _, se := range picked {
		if err := s.applyLocked(opTake, se, nil); err != nil {
			return nil, err
		}
	}
	s.memoInsertLocked(tok, rec)
	return out, nil
}
