package tuplespace

import (
	"fmt"
	"reflect"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/txn"
)

// Exactly-once mutations: a client mints an OpToken per mutation and the
// space memoizes the outcome under it, so a retried RPC (ambiguous
// timeout, failover, reshard cutover) returns the original outcome
// instead of re-executing. The memo table lives under the same mutex as
// the entries, making check-then-execute atomic with the mutation itself;
// every memo is journaled as a "memo" record alongside the mutation's
// own records, so crash-restart replay, hot-standby replication and
// reshard migration all rebuild it alongside the entries (DESIGN §7).
//
// Record ordering is a crash-consistency contract: replication ships the
// journal stream in batches, and a primary killed mid-stream leaves the
// standby with a PREFIX of the records. Every prefix must be safe. So a
// take's memo record is journaled BEFORE its remove record — a torn ship
// leaves memo-plus-live-entry (the retry answers from the memo; a stray
// duplicate delivery collapses at the aggregator), never a consumed
// entry with no memo, which would block the retried take forever. A
// write's memo comes AFTER its write record for the mirror-image reason:
// a memo answering with a lease for an entry the standby never received
// would turn the retry into silent loss, while entry-without-memo merely
// re-executes into a collapsible duplicate.

// OpToken identifies one client-originated mutation: a stable client ID
// plus a per-client monotonic operation sequence. The zero value means
// "no token" and disables memoization for the call.
type OpToken struct {
	Client string
	Seq    uint64
}

// Zero reports whether the token is absent.
func (t OpToken) Zero() bool { return t.Client == "" }

// String renders the token for diagnostics.
func (t OpToken) String() string { return fmt.Sprintf("%s#%d", t.Client, t.Seq) }

// Memo op names carried by MemoResult.Op and the journal's memo records.
const (
	MemoWrite   = "write"
	MemoTake    = "take"
	MemoTakeAll = "takeall"
	MemoCommit  = "commit"
	MemoAbort   = "abort"
	MemoCancel  = "cancel"
)

// Default memo-table bounds: FIFO eviction per client and globally. A
// client retries an op within its per-op budget (seconds), so the table
// only has to outlive the retry window, not the run.
const (
	defaultMemoPerClient = 256
	defaultMemoTotal     = 8192
)

// memoRec is one memoized mutation outcome.
type memoRec struct {
	op      string
	key     string // index key the op touched ("" when unkeyed)
	keyed   bool
	lease   *EntryLease // write memos: the original entry's lease (nil once rebuilt past consumption)
	entries []Entry     // take/takeall memos: deep copies of the taken entries
	seq     uint64      // write memos: the written entry's journal Seq
}

// memoTable is the bounded token → outcome map. Guarded by Space.mu.
type memoTable struct {
	recs      map[OpToken]*memoRec
	order     []OpToken // FIFO insertion order for eviction
	perClient map[string]int
	maxClient int
	maxTotal  int
	hits      uint64
	evicted   uint64
}

func newMemoTable() *memoTable {
	return &memoTable{
		recs:      make(map[OpToken]*memoRec),
		perClient: make(map[string]int),
		maxClient: defaultMemoPerClient,
		maxTotal:  defaultMemoTotal,
	}
}

// memosLocked returns the table, allocating it on first use.
func (s *Space) memosLocked() *memoTable {
	if s.memos == nil {
		s.memos = newMemoTable()
	}
	return s.memos
}

// memoHitLocked looks tok up and counts a dedup hit.
func (s *Space) memoHitLocked(tok OpToken) (*memoRec, bool) {
	if tok.Zero() || s.memos == nil {
		return nil, false
	}
	rec, ok := s.memos.recs[tok]
	if ok {
		s.memos.hits++
		if s.memoCounters != nil {
			s.memoCounters.Inc(metrics.CounterDedupHits)
		}
		if s.flightSink != nil {
			s.flightSink("dedup", fmt.Sprintf("tok %s op %s", tok, rec.op))
		}
	}
	return rec, ok
}

// memoInsertLocked stores rec under tok, evicting FIFO past the bounds.
// Evictions are not journaled: bounds re-apply naturally on replay.
func (s *Space) memoInsertLocked(tok OpToken, rec *memoRec) {
	m := s.memosLocked()
	if old, ok := m.recs[tok]; ok {
		// Re-install (replication overlap, replay dedup): replace in place.
		*old = *rec
		return
	}
	m.recs[tok] = rec
	m.order = append(m.order, tok)
	m.perClient[tok.Client]++
	if m.perClient[tok.Client] > m.maxClient {
		s.memoEvictLocked(func(t OpToken) bool { return t.Client == tok.Client })
	}
	if len(m.recs) > m.maxTotal {
		s.memoEvictLocked(func(OpToken) bool { return true })
	}
}

// memoEvictLocked drops the oldest memo matching want, compacting the
// FIFO of already-deleted tokens as it walks.
func (s *Space) memoEvictLocked(want func(OpToken) bool) {
	m := s.memos
	for i, t := range m.order {
		if _, live := m.recs[t]; !live {
			continue // already evicted under the other bound
		}
		if !want(t) {
			continue
		}
		delete(m.recs, t)
		if n := m.perClient[t.Client]; n > 1 {
			m.perClient[t.Client] = n - 1
		} else {
			delete(m.perClient, t.Client)
		}
		m.order = append(m.order[:i], m.order[i+1:]...)
		m.evicted++
		if s.memoCounters != nil {
			s.memoCounters.Inc(metrics.CounterDedupMemoEvicted)
		}
		return
	}
}

// journalMemoLocked appends tok's memo record. Memo durability is
// best-effort even under a strict journal: the mutation itself was
// already logged, and a lost memo only degrades that one op back to
// at-most-once on retry.
func (s *Space) journalMemoLocked(tok OpToken, rec *memoRec) {
	if s.journal == nil {
		return
	}
	_ = s.journal.record(journalOp{
		Kind:        "memo",
		Seq:         rec.seq,
		Tok:         tok,
		MemoOp:      rec.op,
		MemoKey:     rec.key,
		MemoKeyed:   rec.keyed,
		MemoEntries: rec.entries,
	})
}

// memoCompleteLocked inserts and journals a bare success marker
// (commit/abort/cancel memos carry no payload).
func (s *Space) memoCompleteLocked(tok OpToken, op, key string, keyed bool) {
	rec := &memoRec{op: op, key: key, keyed: keyed}
	s.memoInsertLocked(tok, rec)
	s.journalMemoLocked(tok, rec)
}

// leaseOut resolves a write memo to the lease handed back on retry: the
// original when still tracked, a detached (already expired) stand-in when
// the entry was consumed before the memo was rebuilt — the write
// happened, its entry is simply gone, exactly as if the retry had won the
// race and a take then consumed it.
func (rec *memoRec) leaseOut(s *Space) *EntryLease {
	if rec.lease != nil {
		return rec.lease
	}
	return &EntryLease{space: s, entry: &storedEntry{removed: true}}
}

// copyEntries deep-copies entries so memo state and caller results never
// alias.
func copyEntries(entries []Entry) []Entry {
	if entries == nil {
		return nil
	}
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = deepCopy(reflect.Indirect(reflect.ValueOf(e))).Interface()
	}
	return out
}

// entryKeyLocked returns the entry's index-field value ("" / false when
// the type is unindexed or the field is empty).
func entryKeyLocked(se *storedEntry) (string, bool) {
	if se.ti == nil || se.ti.keyField < 0 {
		return "", false
	}
	key := se.val.Field(se.ti.keyField).String()
	return key, key != ""
}

// MemoResult is a memoized outcome returned to a retried caller.
type MemoResult struct {
	// Op is the memoized operation kind (the Memo* constants).
	Op string
	// Lease is the write memo's entry lease (never nil for write memos).
	Lease *EntryLease
	// Entries are the take/takeall memo's originally returned entries.
	Entries []Entry
}

// MemoOutcome looks up the memoized outcome for tok, counting a dedup
// hit. The remote service layer uses it to answer retried commit/abort
// and lease-cancel RPCs; Write/Take retries dedup inside their own ops.
func (s *Space) MemoOutcome(tok OpToken) (MemoResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.memoHitLocked(tok)
	if !ok {
		return MemoResult{}, false
	}
	return MemoResult{Op: rec.op, Lease: rec.leaseOut(s), Entries: copyEntries(rec.entries)}, true
}

// CompleteMemo records a bare success marker for tok — the dedup record
// for mutations whose effect lives outside the space proper (a
// transaction commit or abort at the manager). It is journaled like every
// memo, so a retry after failover or restart still finds it.
func (s *Space) CompleteMemo(tok OpToken, op string) {
	if tok.Zero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.memos.lookup(tok); ok {
		return
	}
	s.memoCompleteLocked(tok, op, "", false)
}

// lookup is a hit-count-free probe (nil-safe).
func (m *memoTable) lookup(tok OpToken) (*memoRec, bool) {
	if m == nil {
		return nil, false
	}
	rec, ok := m.recs[tok]
	return rec, ok
}

// InstallMemo installs a rebuilt memo — the replication/recovery path
// (Applier and journal replay), where the outcome was decided by another
// incarnation of this space. The memo is re-journaled under this space's
// own journal so the chain downstream (WAL, standby-of-standby, taps)
// carries it too.
func (s *Space) InstallMemo(tok OpToken, op, key string, keyed bool, entries []Entry, l *EntryLease) {
	if tok.Zero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	rec := &memoRec{op: op, key: key, keyed: keyed, lease: l, entries: copyEntries(entries)}
	if l != nil {
		rec.seq = l.Seq()
	}
	s.memoInsertLocked(tok, rec)
	s.journalMemoLocked(tok, rec)
}

// MemoStats reports the memo table's size, dedup hits and evictions.
func (s *Space) MemoStats() (size int, hits, evicted uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.memos == nil {
		return 0, 0, 0
	}
	return len(s.memos.recs), s.memos.hits, s.memos.evicted
}

// SetMemoBounds overrides the memo table's FIFO bounds (values <= 0 keep
// the current bound). Tests size it down to exercise eviction.
func (s *Space) SetMemoBounds(perClient, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.memosLocked()
	if perClient > 0 {
		m.maxClient = perClient
	}
	if total > 0 {
		m.maxTotal = total
	}
}

// SetMemoCounters directs dedup:* counter increments to c.
func (s *Space) SetMemoCounters(c *metrics.Counters) {
	s.mu.Lock()
	s.memoCounters = c
	s.mu.Unlock()
}

// SetFlightSink directs memo dedup hits to fn (kind "dedup", detail the
// token and op). Like a journal sink, fn is invoked under the space
// mutex: it must not block, wait on the clock, or re-enter the space —
// the flight recorder's enqueue-only Record satisfies this.
func (s *Space) SetFlightSink(fn func(kind, detail string)) {
	s.mu.Lock()
	s.flightSink = fn
	s.mu.Unlock()
}

// EncodeMemos captures every memo as self-contained records — appended by
// EncodeState after the entry records so replay binds write memos to the
// entries restored before them.
func (s *Space) EncodeMemos() ([][]byte, error) {
	return s.EncodeMemosWhere(nil)
}

// EncodeMemosWhere is EncodeMemos restricted to memos whose (key, keyed)
// matches pred — the capture half of shipping a migrated bucket's memo
// slice during a reshard (nil matches everything).
func (s *Space) EncodeMemosWhere(pred func(key string, keyed bool) bool) ([][]byte, error) {
	s.mu.Lock()
	var ops []journalOp
	var toks []OpToken
	if s.memos != nil {
		for _, tok := range s.memos.order {
			rec, ok := s.memos.recs[tok]
			if !ok {
				continue
			}
			if pred != nil && !pred(rec.key, rec.keyed) {
				continue
			}
			seq := rec.seq
			if rec.lease != nil {
				seq = rec.lease.Seq()
			}
			ops = append(ops, journalOp{
				Kind: "memo", Seq: seq, Tok: tok, MemoOp: rec.op,
				MemoKey: rec.key, MemoKeyed: rec.keyed, MemoEntries: rec.entries,
			})
			toks = append(toks, tok)
		}
	}
	s.mu.Unlock()

	records := make([][]byte, len(ops))
	for i, op := range ops {
		payload, err := encodeOp(op)
		if err != nil {
			return nil, fmt.Errorf("tuplespace: snapshot memo %s: %w", toks[i], err)
		}
		records[i] = payload
	}
	return records, nil
}

// --- token-carrying mutation variants ---

// WriteTok is Write with an idempotency token: a retry carrying the same
// token returns the original write's lease instead of storing a second
// copy. A zero token (or a transactional write — the transaction is the
// retry unit there) behaves exactly like Write.
func (s *Space) WriteTok(e Entry, t *txn.Txn, ttl time.Duration, tok OpToken) (*EntryLease, error) {
	return s.write(e, t, ttl, tok)
}

// TakeTok is Take with an idempotency token: a retry whose original
// executed (reply lost) returns the originally taken entry instead of
// consuming a second one.
func (s *Space) TakeTok(tmpl Entry, t *txn.Txn, timeout time.Duration, tok OpToken) (Entry, error) {
	return s.lookupTok(opTake, tmpl, t, timeout, true, tok)
}

// TakeIfExistsTok is TakeIfExists with an idempotency token.
func (s *Space) TakeIfExistsTok(tmpl Entry, t *txn.Txn, tok OpToken) (Entry, error) {
	return s.lookupTok(opTake, tmpl, t, 0, false, tok)
}

// TakeAllTok is TakeAll with an idempotency token: a retry returns the
// original result set. Memo check, memo journal and the removals happen
// under one mutex hold so the memo record precedes every remove record
// in the stream (ordering contract above).
func (s *Space) TakeAllTok(tmpl Entry, t *txn.Txn, max int, tok OpToken) ([]Entry, error) {
	if tok.Zero() || t != nil {
		return s.bulk(opTake, tmpl, t, max)
	}
	return s.bulkTok(tmpl, max, tok)
}

// CancelTok is EntryLease.Cancel with an idempotency token: a retried
// cancel whose original executed returns success instead of
// ErrLeaseExpired. Check and cancellation are atomic under the space
// mutex.
func (l *EntryLease) CancelTok(tok OpToken) error {
	if tok.Zero() {
		return l.Cancel()
	}
	s := l.space
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.memoHitLocked(tok); ok && rec.op == MemoCancel {
		return nil
	}
	se := l.entry
	if se.removed {
		return ErrLeaseExpired
	}
	if err := s.journalRemoveLocked(se); err != nil {
		return err
	}
	se.removed = true
	key, keyed := entryKeyLocked(se)
	s.memoCompleteLocked(tok, MemoCancel, key, keyed)
	return nil
}

// memoWriteLocked memoizes a successful non-transactional token write.
// Caller holds s.mu; se is the entry just stored and journaled.
func (s *Space) memoWriteLocked(tok OpToken, se *storedEntry) {
	key, keyed := entryKeyLocked(se)
	rec := &memoRec{
		op:    MemoWrite,
		key:   key,
		keyed: keyed,
		lease: &EntryLease{space: s, entry: se},
		seq:   se.id,
	}
	s.memoInsertLocked(tok, rec)
	s.journalMemoLocked(tok, rec)
}

// takeMemoRecLocked builds the memo record for a token take of se. The
// caller journals it (journalMemoLocked) BEFORE applying the removal —
// see the ordering contract in the package comment — and inserts it into
// the table (memoInsertLocked) once the removal succeeded. If the
// removal is then rejected by a strict journal the stray memo record
// stays in the log; that replays as memo-plus-live-entry, the safe side
// of the tear.
func (s *Space) takeMemoRecLocked(se *storedEntry) *memoRec {
	key, keyed := entryKeyLocked(se)
	return &memoRec{
		op:      MemoTake,
		key:     key,
		keyed:   keyed,
		entries: []Entry{deepCopy(se.val).Interface()},
	}
}

// lookupTok is lookup with memo check-then-execute for token takes. The
// blocking path threads the token through the waiter so a park satisfied
// later (publishLocked) still memoizes at the moment of consumption.
func (s *Space) lookupTok(kind opKind, tmpl Entry, t *txn.Txn, timeout time.Duration, block bool, tok OpToken) (Entry, error) {
	if tok.Zero() || t != nil || kind != opTake {
		return s.lookup(kind, tmpl, t, timeout, block)
	}
	ti, tv, err := infoFor(tmpl)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if rec, ok := s.memoHitLocked(tok); ok && (rec.op == MemoTake || rec.op == MemoTakeAll) {
		var out Entry
		if len(rec.entries) > 0 {
			out = copyEntries(rec.entries[:1])[0]
		}
		s.mu.Unlock()
		if out == nil {
			return nil, ErrNoMatch
		}
		return out, nil
	}
	if se := s.findLocked(kind, ti, tv, nil); se != nil {
		// Memo record ahead of the remove record (ordering contract above).
		rec := s.takeMemoRecLocked(se)
		s.journalMemoLocked(tok, rec)
		if err := s.applyLocked(kind, se, nil); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		s.memoInsertLocked(tok, rec)
		out := deepCopy(se.val).Interface()
		s.mu.Unlock()
		return out, nil
	}
	if !block {
		s.mu.Unlock()
		return nil, ErrNoMatch
	}
	w := &waiter{kind: kind, ti: ti, tmpl: tv, w: s.clock.NewWaiter(), tok: tok}
	s.waiters[ti.name] = append(s.waiters[ti.name], w)
	s.stats.Blocked++
	s.mu.Unlock()

	w.w.Wait(timeout)

	s.mu.Lock()
	if w.result != nil {
		out := deepCopy(w.result.val).Interface()
		s.mu.Unlock()
		return out, nil
	}
	s.removeWaiterLocked(w)
	if w.err == nil {
		w.err = ErrTimeout
		s.stats.Timeouts++
	}
	s.mu.Unlock()
	return nil, w.err
}
