package tuplespace

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// The paper (§3) notes that JavaSpaces "provides associative lookup of
// persistent objects": Outrigger could run in persistent mode, surviving
// restarts. Journal gives the space the same property: every publicly
// visible mutation (a committed write, a committed take, a cancellation
// or expiry) is appended as a gob record, and Replay reconstructs the
// live entries into a fresh space. Transactions interact correctly: only
// committed effects reach the journal.

// journalOp is one durable mutation.
type journalOp struct {
	// Kind is "write" or "remove".
	Kind string
	// Seq is the entry's space-assigned identity, stable across the
	// journal so removes can reference prior writes.
	Seq uint64
	// Entry is the written entry (write records only).
	Entry interface{}
	// Expiry is the entry's absolute lease expiry (zero = forever).
	Expiry time.Time
}

// Journal persists a space's public mutations to an io.Writer. Attach it
// with Space.AttachJournal; it is safe for concurrent use.
type Journal struct {
	mu  sync.Mutex
	enc *gob.Encoder
	err error
}

// NewJournal returns a journal writing gob records to w. Entry types that
// will pass through the journal must be gob-registered (applications that
// use the remote space service already do this via
// transport.RegisterType; purely local users call gob.Register).
func NewJournal(w io.Writer) *Journal {
	return &Journal{enc: gob.NewEncoder(w)}
}

// Err returns the first write error the journal encountered, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *Journal) record(op journalOp) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(&op); err != nil {
		j.err = fmt.Errorf("tuplespace: journal: %w", err)
	}
}

// AttachJournal starts journaling the space's public mutations. It must
// be called before any entries are written; attaching to a non-empty
// space returns an error (replay first, then attach).
func (s *Space) AttachJournal(j *Journal) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, list := range s.byType {
		for _, se := range list {
			if !se.removed {
				return errors.New("tuplespace: cannot attach journal to a non-empty space")
			}
		}
	}
	s.journal = j
	return nil
}

// journalWriteLocked records a newly public entry. Caller holds s.mu.
func (s *Space) journalWriteLocked(se *storedEntry) {
	if s.journal == nil {
		return
	}
	s.journal.record(journalOp{
		Kind:   "write",
		Seq:    se.id,
		Entry:  se.val.Interface(),
		Expiry: se.expiry,
	})
}

// journalRemoveLocked records a public entry's permanent removal. Caller
// holds s.mu.
func (s *Space) journalRemoveLocked(se *storedEntry) {
	if s.journal == nil {
		return
	}
	s.journal.record(journalOp{Kind: "remove", Seq: se.id})
}

// Replay reads a journal stream and writes the surviving entries into s
// (which must be empty), restoring their remaining leases relative to the
// space's clock. It returns the number of live entries restored.
func Replay(r io.Reader, s *Space) (int, error) {
	dec := gob.NewDecoder(r)
	type pending struct {
		entry  Entry
		expiry time.Time
	}
	live := make(map[uint64]pending)
	var order []uint64
	for {
		var op journalOp
		if err := dec.Decode(&op); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return 0, fmt.Errorf("tuplespace: replay: %w", err)
		}
		switch op.Kind {
		case "write":
			if op.Entry == nil {
				return 0, errors.New("tuplespace: replay: write record without entry")
			}
			live[op.Seq] = pending{entry: op.Entry, expiry: op.Expiry}
			order = append(order, op.Seq)
		case "remove":
			delete(live, op.Seq)
		default:
			return 0, fmt.Errorf("tuplespace: replay: unknown op %q", op.Kind)
		}
	}
	now := s.clock.Now()
	restored := 0
	for _, seq := range order {
		p, ok := live[seq]
		if !ok {
			continue
		}
		ttl := Forever
		if !p.expiry.IsZero() {
			ttl = p.expiry.Sub(now)
			if ttl <= 0 {
				continue // lease already expired
			}
		}
		if _, err := s.Write(p.entry, nil, ttl); err != nil {
			return restored, fmt.Errorf("tuplespace: replay entry %d: %w", seq, err)
		}
		restored++
	}
	return restored, nil
}
