package tuplespace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"gospaces/internal/enc"
	"gospaces/internal/metrics"
)

// The paper (§3) notes that JavaSpaces "provides associative lookup of
// persistent objects": Outrigger could run in persistent mode, surviving
// restarts. Journal gives the space the same property: every publicly
// visible mutation (a committed write, a committed take, a cancellation
// or expiry) is appended as a self-contained gob record, and Replay /
// ReplayRecords reconstructs the live entries into a fresh space.
// Transactions interact correctly: only committed effects reach the
// journal.
//
// Records flow into a RecordSink. NewJournal frames them into a plain
// io.Writer (the original single-file journal); the durable space service
// plugs in internal/wal for segmented, checksummed, snapshot-compacted
// storage.

// CounterJournalErrors is the metrics key under which failed journal
// appends are counted (strict and non-strict mode alike). The string is
// owned by the canonical name set in internal/metrics/names.go — this
// used to be the ad-hoc "journal_errors", the one key that broke the
// "<subsystem>:<metric>" convention.
const CounterJournalErrors = metrics.CounterJournalErrors

// maxJournalRecord bounds one framed record on stream replay; a length
// prefix beyond it means the stream is garbage, not a record.
const maxJournalRecord = 64 << 20

// RegisterType registers a concrete entry type for journal and WAL
// records. It is the same registry the transport layer uses, so one
// registration covers the wire and the disk.
func RegisterType(v interface{}) { enc.RegisterType(v) }

// journalOp is one durable mutation.
type journalOp struct {
	// Kind is "write", "remove" or "evict". An evict is a remove whose
	// cause is resharding rather than consumption: the entry left this
	// space because another shard now owns its key range, not because a
	// take consumed it. Recovery and replication treat the two alike (the
	// entry is gone from this space either way); a resharding migration
	// tap distinguishes them so an eviction on the source never cancels
	// the migrated copy on the destination.
	Kind string
	// Seq is the entry's space-assigned identity, stable across the
	// journal so removes can reference prior writes.
	Seq uint64
	// Entry is the written entry (write records only).
	Entry interface{}
	// Expiry is the entry's absolute lease expiry (zero = forever).
	Expiry time.Time

	// The remaining fields describe a "memo" record: a memoized mutation
	// outcome for exactly-once retries (see memo.go). Memo records ride
	// the same stream as entry records so recovery, replication and
	// reshard migration rebuild the memo table alongside the entries. For
	// write memos Seq references the written entry's record; take memos
	// are self-contained via MemoEntries.
	Tok         OpToken
	MemoOp      string // one of the Memo* constants
	MemoKey     string // index key the op touched ("" when unkeyed)
	MemoKeyed   bool
	MemoEntries []Entry // take/takeall memos: the originally returned entries
}

// encodeOp gob-encodes op as a self-contained record: a fresh encoder per
// record, so each record carries its own type descriptors and decodes
// independently — the property segmented WAL storage needs (any segment
// may be the first one read after compaction).
func encodeOp(op journalOp) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&op); err != nil {
		return nil, enc.WrapEncodeError(err, op.Entry)
	}
	return buf.Bytes(), nil
}

func decodeOp(payload []byte) (journalOp, error) {
	var op journalOp
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&op); err != nil {
		return journalOp{}, err
	}
	return op, nil
}

// RecordSink is the destination for journal records. internal/wal's Log
// satisfies it; NewJournal adapts a bare io.Writer.
type RecordSink interface {
	// Append stores one record durably (per the sink's own policy) and
	// returns any storage error.
	Append(payload []byte) error
}

// streamSink frames records into an io.Writer as uvarint-length-prefixed
// gob blobs — the single-file journal format.
type streamSink struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *streamSink) Append(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := s.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := s.w.Write(payload)
	return err
}

// Journal persists a space's public mutations to a RecordSink. Attach it
// with Space.AttachJournal; it is safe for concurrent use.
//
// By default the journal is lenient: a failed append is counted (see
// CounterJournalErrors), retained as Err, and the space operation
// succeeds anyway — but unlike earlier versions, later mutations keep
// being appended, so one transient disk error no longer silently voids
// the rest of the log. In strict mode (SetStrict) the durability error is
// returned to the space caller and the mutation does not take effect:
// nothing is acknowledged that was not logged.
type Journal struct {
	sink RecordSink

	mu       sync.Mutex
	strict   bool
	counters *metrics.Counters
	err      error
}

// NewJournal returns a journal writing framed records to w. Entry types
// that pass through the journal must be registered via RegisterType (the
// transport layer's registrations count too).
func NewJournal(w io.Writer) *Journal {
	return NewJournalSink(&streamSink{w: w})
}

// NewJournalSink returns a journal appending records to sink.
func NewJournalSink(sink RecordSink) *Journal {
	return &Journal{sink: sink}
}

// SetStrict switches the journal's failure mode: when strict, space
// mutations return the durability error instead of succeeding unlogged.
// Returns j for chaining.
func (j *Journal) SetStrict(strict bool) *Journal {
	j.mu.Lock()
	j.strict = strict
	j.mu.Unlock()
	return j
}

// SetCounters directs journal error counts (CounterJournalErrors) to c.
// Returns j for chaining.
func (j *Journal) SetCounters(c *metrics.Counters) *Journal {
	j.mu.Lock()
	j.counters = c
	j.mu.Unlock()
	return j
}

// Err returns the first append error the journal encountered, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// record appends one op. In strict mode the error is returned to the
// caller; otherwise it is recorded and swallowed — but subsequent ops are
// still attempted.
func (j *Journal) record(op journalOp) error {
	payload, err := encodeOp(op)
	if err == nil {
		err = j.sink.Append(payload)
	}
	if err == nil {
		return nil
	}
	err = fmt.Errorf("tuplespace: journal: %w", err)
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	strict, counters := j.strict, j.counters
	j.mu.Unlock()
	if counters != nil {
		counters.Inc(CounterJournalErrors)
	}
	if strict {
		return err
	}
	return nil
}

// AttachJournal starts journaling the space's public mutations. It must
// be called before any entries are written; attaching to a non-empty
// space returns an error (replay first, then attach).
func (s *Space) AttachJournal(j *Journal) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, list := range s.byType {
		for _, se := range list {
			if !se.removed {
				return errors.New("tuplespace: cannot attach journal to a non-empty space")
			}
		}
	}
	s.journal = j
	return nil
}

// AttachRecoveredJournal attaches j to a space whose current contents
// were just replayed from that journal's storage — the recovery path,
// where the space is deliberately non-empty. The caller is responsible
// for snapshotting promptly so the old log (whose Seq numbering the
// recovered space no longer shares) is compacted away.
func (s *Space) AttachRecoveredJournal(j *Journal) {
	s.mu.Lock()
	s.journal = j
	s.mu.Unlock()
}

// journalWriteLocked records a newly public entry. Caller holds s.mu. A
// non-nil return (strict journal only) means the write was not logged.
func (s *Space) journalWriteLocked(se *storedEntry) error {
	if s.journal == nil {
		return nil
	}
	return s.journal.record(journalOp{
		Kind:   "write",
		Seq:    se.id,
		Entry:  se.val.Interface(),
		Expiry: se.expiry,
	})
}

// journalRemoveLocked records a public entry's permanent removal. Caller
// holds s.mu.
func (s *Space) journalRemoveLocked(se *storedEntry) error {
	if s.journal == nil {
		return nil
	}
	return s.journal.record(journalOp{Kind: "remove", Seq: se.id})
}

// journalEvictLocked records an entry's eviction — removal because the
// key range moved to another shard during resharding. Caller holds s.mu.
func (s *Space) journalEvictLocked(se *storedEntry) error {
	if s.journal == nil {
		return nil
	}
	return s.journal.record(journalOp{Kind: "evict", Seq: se.id})
}

// EncodeState captures the space's journal-visible state — every public
// (or take-locked: the take has not committed) unexpired entry — as
// self-contained write records in id order, followed by the memo table's
// records (entries first, so replay binds write memos to restored
// entries). It is the capture function behind WAL snapshots: replaying
// the returned records into an empty space reproduces the live contents.
func (s *Space) EncodeState() ([][]byte, error) {
	records, err := s.EncodeStateWhere(nil)
	if err != nil {
		return nil, err
	}
	memos, err := s.EncodeMemos()
	if err != nil {
		return nil, err
	}
	return append(records, memos...), nil
}

// EncodeStateWhere is EncodeState restricted to entries matching pred
// (nil matches everything). It is the capture half of a resharding
// snapshot-fork: the records for exactly the entries whose key range is
// moving, consistent with the journal stream because capture happens
// under the same space mutex every journal append holds.
func (s *Space) EncodeStateWhere(pred func(Entry) bool) ([][]byte, error) {
	s.mu.Lock()
	var live []*storedEntry
	now := s.clock.Now()
	for _, list := range s.byType {
		for _, se := range list {
			if se.removed || se.writtenUnder != 0 {
				continue
			}
			if !se.expiry.IsZero() && now.After(se.expiry) {
				continue
			}
			if pred != nil && !pred(se.val.Interface()) {
				continue
			}
			live = append(live, se)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	ops := make([]journalOp, len(live))
	for i, se := range live {
		ops[i] = journalOp{Kind: "write", Seq: se.id, Entry: se.val.Interface(), Expiry: se.expiry}
	}
	s.mu.Unlock()

	records := make([][]byte, len(ops))
	for i, op := range ops {
		payload, err := encodeOp(op)
		if err != nil {
			return nil, fmt.Errorf("tuplespace: snapshot entry %d: %w", op.Seq, err)
		}
		records[i] = payload
	}
	return records, nil
}

// replayState folds journal ops into the set of surviving entries.
type replayState struct {
	live  map[uint64]replayPending
	order []uint64
	memos []journalOp // memo records, installed after the entries
}

type replayPending struct {
	entry  Entry
	expiry time.Time
}

func newReplayState() *replayState {
	return &replayState{live: make(map[uint64]replayPending)}
}

func (st *replayState) apply(op journalOp) error {
	switch op.Kind {
	case "write":
		if op.Entry == nil {
			return errors.New("write record without entry")
		}
		st.live[op.Seq] = replayPending{entry: op.Entry, expiry: op.Expiry}
		st.order = append(st.order, op.Seq)
	case "remove", "evict":
		delete(st.live, op.Seq)
	case "memo":
		if op.Tok.Zero() {
			return errors.New("memo record without token")
		}
		st.memos = append(st.memos, op)
	default:
		return fmt.Errorf("unknown op %q", op.Kind)
	}
	return nil
}

// materialize writes the surviving entries into s, restoring remaining
// leases relative to the space's clock. Duplicate write records for one
// Seq (snapshot/segment overlap) materialize once: each Seq is consumed
// on first use.
func (st *replayState) materialize(s *Space) (int, error) {
	now := s.clock.Now()
	restored := 0
	// Write memos reference their entry by the journal's (old) Seq; the
	// re-written entries get fresh ids, so track the binding as we go.
	var byOldSeq map[uint64]*EntryLease
	if len(st.memos) > 0 {
		byOldSeq = make(map[uint64]*EntryLease)
	}
	for _, seq := range st.order {
		p, ok := st.live[seq]
		if !ok {
			continue
		}
		delete(st.live, seq)
		ttl := Forever
		if !p.expiry.IsZero() {
			ttl = p.expiry.Sub(now)
			if ttl <= 0 {
				continue // lease already expired
			}
		}
		l, err := s.Write(p.entry, nil, ttl)
		if err != nil {
			return restored, fmt.Errorf("tuplespace: replay entry %d: %w", seq, err)
		}
		if byOldSeq != nil {
			byOldSeq[seq] = l
		}
		restored++
	}
	for _, op := range st.memos {
		var l *EntryLease
		if op.MemoOp == MemoWrite {
			// nil when the written entry was since consumed: the memo
			// resolves to a detached expired lease on retry, which is the
			// truth — the write happened and its entry is gone.
			l = byOldSeq[op.Seq]
		}
		s.InstallMemo(op.Tok, op.MemoOp, op.MemoKey, op.MemoKeyed, op.MemoEntries, l)
	}
	return restored, nil
}

// Replay reads a framed journal stream (the NewJournal format) and writes
// the surviving entries into s (which must be empty). It returns the
// number of live entries restored. Any framing or decode error is fatal:
// single-file journals have no tail-truncation semantics — use
// internal/wal for crash-torn logs.
func Replay(r io.Reader, s *Space) (int, error) {
	st := newReplayState()
	br := bufio.NewReader(r)
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return 0, fmt.Errorf("tuplespace: replay: %w", err)
		}
		if n > maxJournalRecord {
			return 0, fmt.Errorf("tuplespace: replay: record length %d exceeds limit", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return 0, fmt.Errorf("tuplespace: replay: %w", err)
		}
		op, err := decodeOp(payload)
		if err != nil {
			return 0, fmt.Errorf("tuplespace: replay: %w", err)
		}
		if err := st.apply(op); err != nil {
			return 0, fmt.Errorf("tuplespace: replay: %w", err)
		}
	}
	return st.materialize(s)
}

// ReplayRecords replays already-framed records — a WAL snapshot followed
// by its tail segments — into s and returns the number of live entries
// restored. Records overlapping between snapshot and tail are
// deduplicated by Seq.
func ReplayRecords(records [][]byte, s *Space) (int, error) {
	st := newReplayState()
	for i, payload := range records {
		op, err := decodeOp(payload)
		if err != nil {
			return 0, fmt.Errorf("tuplespace: replay record %d: %w", i, err)
		}
		if err := st.apply(op); err != nil {
			return 0, fmt.Errorf("tuplespace: replay record %d: %w", i, err)
		}
	}
	return st.materialize(s)
}
