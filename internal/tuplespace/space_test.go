package tuplespace

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

// task is a representative entry type used across the tests; pointer fields
// are matchable scalars per the package's matching rules.
type task struct {
	Job   string
	ID    *int
	Round *int
	Data  []float64
}

type result struct {
	Job string
	ID  *int
	Sum float64
}

func ip(i int) *int { return &i }

func newRealSpace() *Space { return New(vclock.NewReal()) }

func TestWriteThenTake(t *testing.T) {
	s := newRealSpace()
	if _, err := s.Write(task{Job: "mc", ID: ip(1)}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	got, err := s.Take(task{Job: "mc"}, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	e := got.(task)
	if e.Job != "mc" || *e.ID != 1 {
		t.Fatalf("took %+v", e)
	}
	// Space is now empty for this template.
	if _, err := s.TakeIfExists(task{Job: "mc"}, nil); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("second take err = %v, want ErrNoMatch", err)
	}
}

func TestReadDoesNotConsume(t *testing.T) {
	s := newRealSpace()
	if _, err := s.Write(task{Job: "rt", ID: ip(7)}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Read(task{Job: "rt"}, nil, time.Second); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if n, _ := s.Count(task{}); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
}

func TestTemplateMatchingRules(t *testing.T) {
	s := newRealSpace()
	mustWrite(t, s, task{Job: "a", ID: ip(1), Round: ip(2)})
	mustWrite(t, s, task{Job: "b", ID: ip(1)})
	mustWrite(t, s, task{Job: "a", ID: ip(2)})

	// Exact field match.
	got, err := s.ReadIfExists(task{Job: "a", ID: ip(2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(task); g.Job != "a" || *g.ID != 2 {
		t.Fatalf("got %+v", g)
	}
	// Wildcard template matches anything of the type.
	if n, _ := s.Count(task{}); n != 3 {
		t.Fatalf("wildcard count = %d, want 3", n)
	}
	// Non-matching value.
	if _, err := s.ReadIfExists(task{Job: "c"}, nil); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v, want ErrNoMatch", err)
	}
	// Different type never matches.
	if _, err := s.ReadIfExists(result{}, nil); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v, want ErrNoMatch", err)
	}
}

func TestPointerEntriesAccepted(t *testing.T) {
	s := newRealSpace()
	mustWrite(t, s, &task{Job: "p", ID: ip(3)})
	got, err := s.Take(&task{Job: "p"}, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(task); *g.ID != 3 {
		t.Fatalf("got %+v", g)
	}
}

func TestNonStructRejected(t *testing.T) {
	s := newRealSpace()
	if _, err := s.Write(42, nil, Forever); !errors.Is(err, ErrNotStruct) {
		t.Fatalf("err = %v, want ErrNotStruct", err)
	}
	if _, err := s.Read("nope", nil, 0); !errors.Is(err, ErrNotStruct) {
		t.Fatalf("err = %v, want ErrNotStruct", err)
	}
	var nilTask *task
	if _, err := s.Write(nilTask, nil, Forever); !errors.Is(err, ErrNotStruct) {
		t.Fatalf("nil ptr err = %v, want ErrNotStruct", err)
	}
}

func TestEntriesAreCopied(t *testing.T) {
	s := newRealSpace()
	data := []float64{1, 2, 3}
	mustWrite(t, s, task{Job: "c", Data: data})
	data[0] = 99 // mutating the caller's slice must not affect the space
	got, err := s.Read(task{Job: "c"}, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(task); g.Data[0] != 1 {
		t.Fatalf("space saw caller mutation: %+v", g)
	}
	// Mutating the returned copy must not affect the stored entry.
	got.(task).Data[1] = -5
	got2, _ := s.Read(task{Job: "c"}, nil, time.Second)
	if g := got2.(task); g.Data[1] != 2 {
		t.Fatalf("reader mutation leaked into space: %+v", g)
	}
}

func TestBlockingTakeWokenByWrite(t *testing.T) {
	s := newRealSpace()
	done := make(chan Entry, 1)
	go func() {
		e, err := s.Take(task{Job: "late"}, nil, 5*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- e
	}()
	time.Sleep(10 * time.Millisecond)
	mustWrite(t, s, task{Job: "late", ID: ip(9)})
	select {
	case e := <-done:
		if *e.(task).ID != 9 {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked take never woke")
	}
}

func TestBlockingTakeTimeout(t *testing.T) {
	s := newRealSpace()
	start := time.Now()
	_, err := s.Take(task{Job: "never"}, nil, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("timed out too early")
	}
}

func TestOneEntryWakesOneTakerAndAllReaders(t *testing.T) {
	s := newRealSpace()
	const readers, takers = 3, 3
	var wg sync.WaitGroup
	takeOK := make(chan bool, takers)
	readOK := make(chan bool, readers)
	for i := 0; i < takers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Take(task{Job: "w"}, nil, 200*time.Millisecond)
			takeOK <- err == nil
		}()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Read(task{Job: "w"}, nil, 200*time.Millisecond)
			readOK <- err == nil
		}()
	}
	time.Sleep(20 * time.Millisecond)
	mustWrite(t, s, task{Job: "w", ID: ip(1)})
	wg.Wait()
	gotTakes := 0
	for i := 0; i < takers; i++ {
		if <-takeOK {
			gotTakes++
		}
	}
	if gotTakes != 1 {
		t.Fatalf("%d takers succeeded, want exactly 1", gotTakes)
	}
	gotReads := 0
	for i := 0; i < readers; i++ {
		if <-readOK {
			gotReads++
		}
	}
	if gotReads != readers {
		t.Fatalf("%d readers succeeded, want %d", gotReads, readers)
	}
}

func TestLeaseExpiry(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	s := New(clk)
	clk.Run(func() {
		mustWrite(t, s, task{Job: "ttl", ID: ip(1)})
		l, err := s.Write(task{Job: "ttl", ID: ip(2)}, nil, 100*time.Millisecond)
		if err != nil {
			t.Error(err)
		}
		clk.Sleep(200 * time.Millisecond)
		if n, _ := s.Count(task{Job: "ttl"}); n != 1 {
			t.Errorf("count after expiry = %d, want 1", n)
		}
		if err := l.Renew(time.Second); !errors.Is(err, ErrLeaseExpired) {
			t.Errorf("renew after expiry err = %v, want ErrLeaseExpired", err)
		}
	})
}

func TestLeaseRenewKeepsEntryAlive(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	s := New(clk)
	clk.Run(func() {
		l, err := s.Write(task{Job: "r"}, nil, 100*time.Millisecond)
		if err != nil {
			t.Error(err)
		}
		for i := 0; i < 5; i++ {
			clk.Sleep(50 * time.Millisecond)
			if err := l.Renew(100 * time.Millisecond); err != nil {
				t.Errorf("renew %d: %v", i, err)
			}
		}
		if n, _ := s.Count(task{Job: "r"}); n != 1 {
			t.Errorf("renewed entry gone (count %d)", n)
		}
		if exp := l.Expiration(); exp.IsZero() {
			t.Error("expiration should be set")
		}
	})
}

func TestLeaseCancel(t *testing.T) {
	s := newRealSpace()
	l, err := s.Write(task{Job: "x"}, nil, Forever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Cancel(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(task{Job: "x"}); n != 0 {
		t.Fatalf("count after cancel = %d", n)
	}
	if err := l.Cancel(); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("double cancel err = %v", err)
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	s := newRealSpace()
	errc := make(chan error, 1)
	go func() {
		_, err := s.Take(task{}, nil, 5*time.Second)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := s.Write(task{}, nil, Forever); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close err = %v", err)
	}
	s.Close() // idempotent
}

func TestStatsCounters(t *testing.T) {
	s := newRealSpace()
	mustWrite(t, s, task{Job: "s", ID: ip(1)})
	if _, err := s.Read(task{Job: "s"}, nil, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Take(task{Job: "s"}, nil, time.Second); err != nil {
		t.Fatal(err)
	}
	_, _ = s.Take(task{Job: "s"}, nil, time.Millisecond) // timeout
	st := s.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.Takes != 1 || st.Timeouts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func mustWrite(t *testing.T, s *Space, e Entry) {
	t.Helper()
	if _, err := s.Write(e, nil, Forever); err != nil {
		t.Fatal(err)
	}
}

// --- transactions ---

func TestTxnWriteInvisibleUntilCommit(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	tx := m.Begin(0)
	if _, err := s.Write(task{Job: "t"}, tx, Forever); err != nil {
		t.Fatal(err)
	}
	// Invisible outside the transaction…
	if _, err := s.ReadIfExists(task{Job: "t"}, nil); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("outside read err = %v, want ErrNoMatch", err)
	}
	// …but visible inside it.
	if _, err := s.ReadIfExists(task{Job: "t"}, tx); err != nil {
		t.Fatalf("inside read: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadIfExists(task{Job: "t"}, nil); err != nil {
		t.Fatalf("after commit: %v", err)
	}
}

func TestTxnWriteDiscardedOnAbort(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	tx := m.Begin(0)
	if _, err := s.Write(task{Job: "t"}, tx, Forever); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(task{}); n != 0 {
		t.Fatalf("count after abort = %d", n)
	}
}

func TestTxnTakeReappearsOnAbort(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	mustWrite(t, s, task{Job: "t", ID: ip(5)})
	tx := m.Begin(0)
	if _, err := s.Take(task{Job: "t"}, tx, time.Second); err != nil {
		t.Fatal(err)
	}
	// Taken entry invisible to everyone while the txn is active.
	if _, err := s.ReadIfExists(task{Job: "t"}, nil); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("read of taken entry err = %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got, err := s.TakeIfExists(task{Job: "t"}, nil)
	if err != nil {
		t.Fatalf("entry did not reappear: %v", err)
	}
	if *got.(task).ID != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestTxnTakeGoneOnCommit(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	mustWrite(t, s, task{Job: "t"})
	tx := m.Begin(0)
	if _, err := s.Take(task{Job: "t"}, tx, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(task{}); n != 0 {
		t.Fatalf("count after committed take = %d", n)
	}
}

func TestTxnReadLockBlocksOtherTake(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	mustWrite(t, s, task{Job: "t"})
	tx := m.Begin(0)
	if _, err := s.Read(task{Job: "t"}, tx, time.Second); err != nil {
		t.Fatal(err)
	}
	// Another party can read but not take.
	if _, err := s.ReadIfExists(task{Job: "t"}, nil); err != nil {
		t.Fatalf("concurrent read: %v", err)
	}
	if _, err := s.TakeIfExists(task{Job: "t"}, nil); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("take of read-locked entry err = %v, want ErrNoMatch", err)
	}
	// The locking transaction itself may take it.
	if _, err := s.TakeIfExists(task{Job: "t"}, tx); err != nil {
		t.Fatalf("owner take: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnReadLockReleasedOnCommit(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	mustWrite(t, s, task{Job: "t"})
	tx := m.Begin(0)
	if _, err := s.Read(task{Job: "t"}, tx, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TakeIfExists(task{Job: "t"}, nil); err != nil {
		t.Fatalf("take after lock release: %v", err)
	}
}

func TestTxnInactiveRejected(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	tx := m.Begin(0)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(task{}, tx, Forever); !errors.Is(err, ErrTxnInactive) {
		t.Fatalf("write under committed txn err = %v", err)
	}
	if _, err := s.Take(task{}, tx, time.Millisecond); !errors.Is(err, ErrTxnInactive) {
		t.Fatalf("take under committed txn err = %v", err)
	}
}

func TestTxnExpiredLeaseAborts(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	s := New(clk)
	m := txn.NewManager(clk)
	clk.Run(func() {
		mustWrite(t, s, task{Job: "t"})
		tx := m.Begin(50 * time.Millisecond)
		if _, err := s.Take(task{Job: "t"}, tx, time.Second); err != nil {
			t.Error(err)
		}
		clk.Sleep(100 * time.Millisecond)
		if err := tx.Commit(); !errors.Is(err, txn.ErrNotActive) {
			t.Errorf("commit of expired txn err = %v", err)
		}
		// The abort path must have returned the task.
		if n, _ := s.Count(task{}); n != 1 {
			t.Errorf("task lost after expired txn: count = %d", n)
		}
	})
}

func TestTxnSweepRecoversTasks(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	s := New(clk)
	m := txn.NewManager(clk)
	clk.Run(func() {
		for i := 0; i < 5; i++ {
			mustWrite(t, s, task{Job: "sweep", ID: ip(i)})
		}
		// Three "workers" take tasks under leased transactions and die.
		for i := 0; i < 3; i++ {
			tx := m.Begin(10 * time.Millisecond)
			if _, err := s.Take(task{Job: "sweep"}, tx, time.Second); err != nil {
				t.Error(err)
			}
		}
		clk.Sleep(50 * time.Millisecond)
		if n := m.Sweep(); n != 3 {
			t.Errorf("swept %d txns, want 3", n)
		}
		if n, _ := s.Count(task{Job: "sweep"}); n != 5 {
			t.Errorf("count after sweep = %d, want 5", n)
		}
	})
}

// --- notify ---

func TestNotifyOnWrite(t *testing.T) {
	s := newRealSpace()
	var mu sync.Mutex
	var events []Event
	reg, err := s.Notify(task{Job: "n"}, func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}, Forever)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, task{Job: "n", ID: ip(1)})
	mustWrite(t, s, task{Job: "other"}) // must not notify
	mustWrite(t, s, task{Job: "n", ID: ip(2)})
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Sequence != 1 || events[1].Sequence != 2 {
		t.Fatalf("sequences %d,%d", events[0].Sequence, events[1].Sequence)
	}
	if events[0].Registration != reg.ID() {
		t.Fatalf("registration id mismatch")
	}
	if *events[1].Entry.(task).ID != 2 {
		t.Fatalf("event entry %+v", events[1].Entry)
	}
}

func TestNotifyFiresOnTxnCommitNotWrite(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	var n int
	var mu sync.Mutex
	if _, err := s.Notify(task{}, func(Event) { mu.Lock(); n++; mu.Unlock() }, Forever); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(0)
	if _, err := s.Write(task{Job: "t"}, tx, Forever); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if n != 0 {
		mu.Unlock()
		t.Fatal("notified before commit")
	}
	mu.Unlock()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if n != 1 {
		t.Fatalf("notified %d times after commit, want 1", n)
	}
}

func TestNotifyCancel(t *testing.T) {
	s := newRealSpace()
	var n int
	var mu sync.Mutex
	reg, err := s.Notify(task{}, func(Event) { mu.Lock(); n++; mu.Unlock() }, Forever)
	if err != nil {
		t.Fatal(err)
	}
	reg.Cancel()
	mustWrite(t, s, task{})
	mu.Lock()
	defer mu.Unlock()
	if n != 0 {
		t.Fatalf("cancelled registration fired %d times", n)
	}
}
