package tuplespace

import "errors"

var (
	// ErrNotStruct is returned when an entry or template is not a struct
	// or pointer to struct.
	ErrNotStruct = errors.New("entry is not a struct")
	// ErrTimeout is returned by Read/Take when no matching entry appears
	// within the requested timeout, and by IfExists variants when no
	// matching entry is present.
	ErrTimeout = errors.New("tuplespace: timed out waiting for matching entry")
	// ErrNoMatch is returned by ReadIfExists/TakeIfExists when no
	// matching entry exists at the time of the call.
	ErrNoMatch = errors.New("tuplespace: no matching entry")
	// ErrTxnInactive is returned when an operation names a transaction
	// that is no longer active (committed, aborted or expired).
	ErrTxnInactive = errors.New("tuplespace: transaction not active")
	// ErrLeaseExpired is returned by lease renewal/cancel on an entry
	// whose lease has already expired or been cancelled.
	ErrLeaseExpired = errors.New("tuplespace: lease expired")
	// ErrClosed is returned by operations on a closed space.
	ErrClosed = errors.New("tuplespace: space closed")
	// ErrOverloaded is the typed fast-fail for admission control: the
	// server's pending-op or blocked-waiter queue is full (or the brownout
	// controller shed the op), so the call was rejected before execution.
	// It is retryable — nothing executed — but callers must retry within
	// their budget, never through failover resolution.
	ErrOverloaded = errors.New("tuplespace: overloaded, call rejected before execution")
	// ErrDeadlineExpired is returned when an op arrives (or would start)
	// after the deadline its client propagated: the client has already
	// given up, so executing would be work into the void. Like
	// ErrOverloaded the op did not execute.
	ErrDeadlineExpired = errors.New("tuplespace: op deadline expired before execution")
)
