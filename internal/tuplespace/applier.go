package tuplespace

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Applier replays a primary's journal records into a hot-standby space
// incrementally, record by record, as they are shipped — the backup half
// of the replication protocol. It differs from ReplayRecords (which folds
// a complete log into a final state once, at recovery) in that it keeps a
// live space continuously converged with the stream: a "write" record
// materializes immediately, a "remove" record cancels the matching entry.
//
// Entry identity bridges the two spaces: the primary's records carry the
// primary's Seq numbers, the backup space assigns its own — the Applier
// keeps the mapping as the lease handle each write returned, so a later
// remove cancels exactly the entry its Seq named.
//
// Seq numbers are only meaningful within one source incarnation: a
// promoted standby assigns its own Seqs, disjoint in meaning (but not in
// value) from the dead primary's. Rebind moves the applier to a new
// incarnation so records from the new source can neither collide with an
// unrelated old Seq (a false dup would drop the entry) nor miss the dedup
// for an entry both incarnations carried (a miss would duplicate it).
type Applier struct {
	s *Space

	mu         sync.Mutex
	filter     func(Entry) bool
	memoFilter func(key string, keyed bool) bool
	leases     map[seqKey]*EntryLease // source Seq (incarnation-qualified) → local entry lease
	gen        int                    // current source incarnation
	xlat       map[uint64]seqKey      // current-incarnation Seq → key the entry was first tracked under
}

// seqKey qualifies a source Seq with the source incarnation that assigned
// it, so Seqs from successive incarnations of a failed-over source never
// alias.
type seqKey struct {
	gen int
	seq uint64
}

// NewApplier returns an applier feeding s. The space should be mutated
// only through the applier (and its own lease expiries) while replication
// is active; promotion detaches it by simply ceasing to Apply.
func NewApplier(s *Space) *Applier {
	return &Applier{s: s, leases: make(map[seqKey]*EntryLease)}
}

// keyFor resolves an incoming Seq to its dedup key under the current
// incarnation: translated to the key the entry was first applied under
// when the translation table knows it, fresh otherwise. Caller holds a.mu.
func (a *Applier) keyFor(seq uint64) seqKey {
	if k, ok := a.xlat[seq]; ok {
		return k
	}
	return seqKey{gen: a.gen, seq: seq}
}

// Rebind switches the applier to a new source incarnation — a promoted
// standby now feeds it. xlat maps the new incarnation's Seqs to the
// previous incarnation's Seqs for the entries both carried (a promoted
// backup's own applier provides it via SeqMapping); Seqs outside the
// table are treated as genuinely new writes under a fresh namespace.
// Translations compose across chained failovers.
func (a *Applier) Rebind(xlat map[uint64]uint64) *Applier {
	a.mu.Lock()
	next := make(map[uint64]seqKey, len(xlat))
	for newSeq, prevSeq := range xlat {
		// prevSeq is in the namespace the applier currently reads, so the
		// current table resolves it to its canonical first-seen key.
		next[newSeq] = a.keyFor(prevSeq)
	}
	a.gen++
	a.xlat = next
	a.mu.Unlock()
	return a
}

// SeqMapping reports, for every tracked entry, the local space's Seq for
// it → the source Seq it was applied under. When this applier's space is
// promoted to source itself, the mapping lets a downstream applier that
// followed the old source translate the promoted node's Seqs back to the
// namespace it already deduplicates in (see Rebind).
func (a *Applier) SeqMapping() map[uint64]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[uint64]uint64, len(a.leases))
	for k, l := range a.leases {
		out[l.Seq()] = k.seq
	}
	return out
}

// SetFilter switches the applier into resharding-migration mode: only
// write records whose entry matches pred materialize, remove records still
// cancel (the source consumed an entry this side holds a copy of), and
// evict records become no-ops — an eviction means the source dropped the
// entry *because this side now owns it*, so cancelling here would lose it.
// Without a filter (the replication default) an evict applies as a remove:
// a backup must mirror its primary exactly, migrated ranges included.
// Returns a for chaining.
func (a *Applier) SetFilter(pred func(Entry) bool) *Applier {
	a.mu.Lock()
	a.filter = pred
	a.mu.Unlock()
	return a
}

// SetMemoFilter restricts which memo records materialize, by the (key,
// keyed) pair each memo carries — the migration analogue of SetFilter: a
// forked child only installs memos for the bucket range it is receiving.
// Without a filter (the replication default) every memo applies. Returns
// a for chaining.
func (a *Applier) SetMemoFilter(pred func(key string, keyed bool) bool) *Applier {
	a.mu.Lock()
	a.memoFilter = pred
	a.mu.Unlock()
	return a
}

// Apply applies one encoded journal record (the payload a RecordSink
// receives on the primary).
func (a *Applier) Apply(payload []byte) error {
	op, err := decodeOp(payload)
	if err != nil {
		return fmt.Errorf("tuplespace: apply record: %w", err)
	}
	switch op.Kind {
	case "write":
		a.mu.Lock()
		key := a.keyFor(op.Seq)
		_, dup := a.leases[key]
		filter := a.filter
		a.mu.Unlock()
		if filter != nil && !filter(op.Entry) {
			return nil
		}
		if dup {
			// A record can arrive twice when a snapshot push and the
			// incremental stream overlap; the Seq mapping makes the write
			// idempotent.
			return nil
		}
		ttl := Forever
		if !op.Expiry.IsZero() {
			ttl = op.Expiry.Sub(a.s.clock.Now())
			if ttl <= 0 {
				return nil // already expired in transit
			}
		}
		l, err := a.s.Write(op.Entry, nil, ttl)
		if err != nil {
			return fmt.Errorf("tuplespace: apply write %d: %w", op.Seq, err)
		}
		a.mu.Lock()
		a.leases[key] = l
		a.mu.Unlock()
	case "remove", "evict":
		a.mu.Lock()
		if op.Kind == "evict" && a.filter != nil {
			// Migration mode: the source evicted the entry because this
			// side owns it now. Keep the copy.
			a.mu.Unlock()
			return nil
		}
		key := a.keyFor(op.Seq)
		l := a.leases[key]
		delete(a.leases, key)
		a.mu.Unlock()
		if l == nil {
			// Unknown Seq: the entry expired locally first, or the remove
			// duplicates one already applied. Both leave the spaces
			// converged, so this is not an error.
			return nil
		}
		if err := l.Cancel(); err != nil && !errors.Is(err, ErrLeaseExpired) {
			return fmt.Errorf("tuplespace: apply remove %d: %w", op.Seq, err)
		}
	case "memo":
		a.mu.Lock()
		memoFilter := a.memoFilter
		var l *EntryLease
		if op.MemoOp == MemoWrite {
			// The write record precedes its memo in the stream, so the
			// lease is already tracked; nil (consumed or filtered away)
			// resolves to a detached expired lease on retry.
			l = a.leases[a.keyFor(op.Seq)]
		}
		a.mu.Unlock()
		if memoFilter != nil && !memoFilter(op.MemoKey, op.MemoKeyed) {
			return nil
		}
		a.s.InstallMemo(op.Tok, op.MemoOp, op.MemoKey, op.MemoKeyed, op.MemoEntries, l)
	default:
		return fmt.Errorf("tuplespace: apply: unknown op %q", op.Kind)
	}
	return nil
}

// Reset empties the replicated state: every tracked entry is cancelled
// and the Seq mapping (translation table included) cleared. It precedes a
// full re-sync (snapshot push) after the incremental stream diverged.
func (a *Applier) Reset() {
	a.mu.Lock()
	leases := a.leases
	a.leases = make(map[seqKey]*EntryLease)
	a.xlat = nil
	a.mu.Unlock()
	for _, l := range leases {
		_ = l.Cancel() // already-expired entries are fine
	}
}

// Len reports how many replicated entries are currently tracked.
func (a *Applier) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.leases)
}

// expireTracked drops mappings whose backup-side lease has expired so the
// map does not grow with long-lived churn. Called opportunistically.
func (a *Applier) expireTracked(now time.Time) {
	a.mu.Lock()
	for seq, l := range a.leases {
		exp := l.Expiration()
		if !exp.IsZero() && now.After(exp) {
			delete(a.leases, seq)
		}
	}
	a.mu.Unlock()
}

// Prune removes mappings for entries that have already expired on the
// backup's clock.
func (a *Applier) Prune() { a.expireTracked(a.s.clock.Now()) }
