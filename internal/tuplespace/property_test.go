package tuplespace

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

// propEntry is a struct exercising every field kind the matcher and deep
// copier must handle.
type propEntry struct {
	S     string
	I     *int
	F     *float64
	B     []byte
	Map   map[string]int
	Inner innerEntry
	Ptr   *innerEntry
	Arr   [3]int
	unexp int // unexported: ignored by match and copy
}

type innerEntry struct {
	X int
	Y string
}

// Generate implements quick.Generator so tests get a rich distribution of
// entries including wildcard (zero) fields.
func (propEntry) Generate(r *rand.Rand, _ int) reflect.Value {
	e := propEntry{}
	if r.Intn(2) == 0 {
		e.S = string(rune('a' + r.Intn(4)))
	}
	if r.Intn(2) == 0 {
		v := r.Intn(5)
		e.I = &v
	}
	if r.Intn(3) == 0 {
		v := float64(r.Intn(3))
		e.F = &v
	}
	if r.Intn(3) == 0 {
		e.B = []byte{byte(r.Intn(3))}
	}
	if r.Intn(4) == 0 {
		e.Map = map[string]int{"k": r.Intn(3)}
	}
	e.Inner = innerEntry{X: r.Intn(3)}
	if r.Intn(3) == 0 {
		e.Ptr = &innerEntry{X: r.Intn(3), Y: "p"}
	}
	e.Arr[r.Intn(3)] = r.Intn(2)
	return reflect.ValueOf(e)
}

// Property: an entry always matches itself and the all-wildcard template.
func TestPropSelfMatch(t *testing.T) {
	f := func(e propEntry) bool {
		self, err := Match(e, e)
		if err != nil || !self {
			return false
		}
		wild, err := Match(propEntry{}, e)
		return err == nil && wild
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: matching is consistent with clearing template fields — a
// template derived from an entry by zeroing fields always matches it.
func TestPropZeroedTemplateMatches(t *testing.T) {
	f := func(e propEntry, clearS, clearI, clearB bool) bool {
		tmpl := e
		if clearS {
			tmpl.S = ""
		}
		if clearI {
			tmpl.I = nil
		}
		if clearB {
			tmpl.B = nil
		}
		tmpl.Map = nil
		tmpl.Ptr = nil
		tmpl.Inner = innerEntry{}
		tmpl.Arr = [3]int{}
		ok, err := Match(tmpl, e)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: CopyEntry produces a deeply equal value (on exported fields)
// that shares no mutable storage with the original.
func TestPropDeepCopyEquality(t *testing.T) {
	f := func(e propEntry) bool {
		cp, err := CopyEntry(e)
		if err != nil {
			return false
		}
		got := cp.(propEntry)
		e.unexp = 0 // unexported fields are not copied
		if !reflect.DeepEqual(got, e) {
			return false
		}
		if len(e.B) > 0 {
			e.B[0] ^= 0xff
			if got.B[0] == e.B[0] {
				return false // aliased storage
			}
		}
		if e.Ptr != nil && got.Ptr == e.Ptr {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: write-then-take round-trips the entry exactly.
func TestPropWriteTakeRoundTrip(t *testing.T) {
	s := New(vclock.NewReal())
	f := func(e propEntry) bool {
		if _, err := s.Write(e, nil, Forever); err != nil {
			return false
		}
		got, err := s.Take(propEntry{}, nil, time.Second)
		if err != nil {
			return false
		}
		e.unexp = 0
		return reflect.DeepEqual(got.(propEntry), e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (exactly-once): with many concurrent takers and random
// transactional aborts, every task is eventually taken exactly once — an
// aborted take returns the task for someone else. This is the invariant the
// framework relies on for fault tolerance.
func TestPropExactlyOnceUnderAborts(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	const nTasks = 60
	for i := 0; i < nTasks; i++ {
		if _, err := s.Write(task{Job: "eo", ID: ip(i)}, nil, Forever); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				tx := m.Begin(0)
				got, err := s.Take(task{Job: "eo"}, tx, 50*time.Millisecond)
				if err != nil {
					_ = tx.Abort()
					return // space drained
				}
				id := *got.(task).ID
				if rng.Intn(3) == 0 {
					_ = tx.Abort() // simulated worker death: task must reappear
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				mu.Lock()
				seen[id]++
				mu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()
	if len(seen) != nTasks {
		t.Fatalf("completed %d distinct tasks, want %d", len(seen), nTasks)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("task %d completed %d times", id, n)
		}
	}
}

// Property: the cached matcher agrees with the uncached reference matcher.
func TestPropMatcherAgreesWithSlow(t *testing.T) {
	f := func(tmpl, cand propEntry) bool {
		ti, tv, err := infoFor(tmpl)
		if err != nil {
			return false
		}
		_, cv, err := infoFor(cand)
		if err != nil {
			return false
		}
		return matches(ti, tv, cv) == matchesSlow(tv, cv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
