package tuplespace

import (
	"testing"
	"time"

	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

func TestTakeAllDrainsMatching(t *testing.T) {
	s := newRealSpace()
	for i := 0; i < 5; i++ {
		mustWrite(t, s, task{Job: "bulk", ID: ip(i)})
	}
	mustWrite(t, s, task{Job: "other", ID: ip(99)})

	got, err := s.TakeAll(task{Job: "bulk"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("took %d, want 5", len(got))
	}
	if n, _ := s.Count(task{}); n != 1 {
		t.Fatalf("remaining = %d, want 1 (the other job)", n)
	}
}

func TestTakeAllRespectsMax(t *testing.T) {
	s := newRealSpace()
	for i := 0; i < 10; i++ {
		mustWrite(t, s, task{Job: "m", ID: ip(i)})
	}
	got, err := s.TakeAll(task{Job: "m"}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("took %d, want 3", len(got))
	}
	if n, _ := s.Count(task{Job: "m"}); n != 7 {
		t.Fatalf("remaining = %d, want 7", n)
	}
}

func TestReadAllDoesNotConsume(t *testing.T) {
	s := newRealSpace()
	for i := 0; i < 4; i++ {
		mustWrite(t, s, task{Job: "r", ID: ip(i)})
	}
	got, err := s.ReadAll(task{Job: "r"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("read %d, want 4", len(got))
	}
	if n, _ := s.Count(task{Job: "r"}); n != 4 {
		t.Fatalf("count = %d after ReadAll", n)
	}
}

func TestBulkEmptyResult(t *testing.T) {
	s := newRealSpace()
	got, err := s.TakeAll(task{Job: "none"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d entries from empty space", len(got))
	}
}

func TestTakeAllUnderTxnReappearsOnAbort(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	for i := 0; i < 3; i++ {
		mustWrite(t, s, task{Job: "t", ID: ip(i)})
	}
	tx := m.Begin(0)
	got, err := s.TakeAll(task{Job: "t"}, tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("took %d", len(got))
	}
	if n, _ := s.Count(task{Job: "t"}); n != 0 {
		t.Fatalf("visible during txn = %d", n)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(task{Job: "t"}); n != 3 {
		t.Fatalf("after abort = %d, want 3", n)
	}
}

func TestReadAllUnderTxnBlocksTakes(t *testing.T) {
	clk := vclock.NewReal()
	s := New(clk)
	m := txn.NewManager(clk)
	mustWrite(t, s, task{Job: "rl"})
	tx := m.Begin(0)
	if _, err := s.ReadAll(task{Job: "rl"}, tx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TakeIfExists(task{Job: "rl"}, nil); err == nil {
		t.Fatal("take of read-locked entry succeeded")
	}
	_ = tx.Commit()
	if _, err := s.TakeIfExists(task{Job: "rl"}, nil); err != nil {
		t.Fatalf("take after release: %v", err)
	}
}

func TestBulkSkipsExpired(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	s := New(clk)
	clk.Run(func() {
		if _, err := s.Write(task{Job: "e", ID: ip(1)}, nil, 10*time.Millisecond); err != nil {
			t.Error(err)
		}
		mustWrite(t, s, task{Job: "e", ID: ip(2)})
		clk.Sleep(50 * time.Millisecond)
		got, err := s.TakeAll(task{Job: "e"}, nil, 0)
		if err != nil {
			t.Error(err)
		}
		if len(got) != 1 || *got[0].(task).ID != 2 {
			t.Errorf("got %+v, want only ID 2", got)
		}
	})
}

func TestBulkRejectsNonStruct(t *testing.T) {
	s := newRealSpace()
	if _, err := s.ReadAll(42, nil, 0); err == nil {
		t.Fatal("non-struct accepted")
	}
}

// Conservation property: under concurrent writers, takers and bulk
// takers, every written entry is taken exactly once or still present.
func TestPropConservationUnderConcurrency(t *testing.T) {
	s := newRealSpace()
	const writers, perWriter = 4, 50
	done := make(chan []Entry, writers+2)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				if _, err := s.Write(task{Job: "c", ID: ip(id)}, nil, Forever); err != nil {
					t.Error(err)
				}
			}
			done <- nil
		}(w)
	}
	for g := 0; g < 2; g++ {
		go func() {
			var mine []Entry
			for {
				e, err := s.Take(task{Job: "c"}, nil, 100*time.Millisecond)
				if err != nil {
					break
				}
				mine = append(mine, e)
			}
			done <- mine
		}()
	}
	var taken []Entry
	for i := 0; i < writers+2; i++ {
		taken = append(taken, <-done...)
	}
	rest, err := s.TakeAll(task{Job: "c"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	taken = append(taken, rest...)
	seen := map[int]int{}
	for _, e := range taken {
		seen[*e.(task).ID]++
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("saw %d distinct entries, want %d", len(seen), writers*perWriter)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("entry %d taken %d times", id, n)
		}
	}
}
