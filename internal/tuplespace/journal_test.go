package tuplespace

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

func init() {
	// Journaled entry types must be gob-registered, as on the wire.
	gob.Register(task{})
}

func newJournaledSpace(t *testing.T) (*Space, *Journal, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	s := newRealSpace()
	j := NewJournal(&buf)
	if err := s.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	return s, j, &buf
}

func replayInto(t *testing.T, buf *bytes.Buffer) (*Space, int) {
	t.Helper()
	s2 := newRealSpace()
	n, err := Replay(bytes.NewReader(buf.Bytes()), s2)
	if err != nil {
		t.Fatal(err)
	}
	return s2, n
}

func TestJournalReplayRestoresLiveEntries(t *testing.T) {
	s, j, buf := newJournaledSpace(t)
	for i := 0; i < 5; i++ {
		mustWrite(t, s, task{Job: "p", ID: ip(i)})
	}
	// Two entries get taken before the "crash".
	for i := 0; i < 2; i++ {
		if _, err := s.Take(task{Job: "p"}, nil, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	s2, n := replayInto(t, buf)
	if n != 3 {
		t.Fatalf("restored %d entries, want 3", n)
	}
	if got, _ := s2.Count(task{Job: "p"}); got != 3 {
		t.Fatalf("count after replay = %d", got)
	}
	// The restored entries are the untaken ones (IDs 2,3,4).
	for i := 2; i < 5; i++ {
		if _, err := s2.TakeIfExists(task{Job: "p", ID: ip(i)}, nil); err != nil {
			t.Fatalf("entry %d missing after replay: %v", i, err)
		}
	}
}

func TestJournalOnlyCommittedEffects(t *testing.T) {
	var buf bytes.Buffer
	clk := vclock.NewReal()
	s := New(clk)
	if err := s.AttachJournal(NewJournal(&buf)); err != nil {
		t.Fatal(err)
	}
	m := txn.NewManager(clk)

	// An aborted transactional write must not survive.
	tx1 := m.Begin(0)
	if _, err := s.Write(task{Job: "aborted"}, tx1, Forever); err != nil {
		t.Fatal(err)
	}
	_ = tx1.Abort()

	// A committed transactional write must survive.
	tx2 := m.Begin(0)
	if _, err := s.Write(task{Job: "committed"}, tx2, Forever); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// A committed transactional take must remove durably.
	mustWrite(t, s, task{Job: "taken"})
	tx3 := m.Begin(0)
	if _, err := s.Take(task{Job: "taken"}, tx3, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}

	// An aborted take leaves the entry.
	mustWrite(t, s, task{Job: "returned"})
	tx4 := m.Begin(0)
	if _, err := s.Take(task{Job: "returned"}, tx4, time.Second); err != nil {
		t.Fatal(err)
	}
	_ = tx4.Abort()

	s2, _ := replayInto(t, &buf)
	for job, want := range map[string]int{"aborted": 0, "committed": 1, "taken": 0, "returned": 1} {
		if got, _ := s2.Count(task{Job: job}); got != want {
			t.Errorf("replayed count(%q) = %d, want %d", job, got, want)
		}
	}
}

func TestJournalLeaseCancelDurable(t *testing.T) {
	s, _, buf := newJournaledSpace(t)
	l, err := s.Write(task{Job: "c"}, nil, Forever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Cancel(); err != nil {
		t.Fatal(err)
	}
	_, n := replayInto(t, buf)
	if n != 0 {
		t.Fatalf("cancelled entry survived replay (%d restored)", n)
	}
}

func TestJournalReplayRespectsLeaseExpiry(t *testing.T) {
	var buf bytes.Buffer
	clk := vclock.NewVirtual(time.Unix(0, 0))
	s := New(clk)
	if err := s.AttachJournal(NewJournal(&buf)); err != nil {
		t.Fatal(err)
	}
	clk.Run(func() {
		if _, err := s.Write(task{Job: "short", ID: ip(1)}, nil, 50*time.Millisecond); err != nil {
			t.Error(err)
		}
		if _, err := s.Write(task{Job: "long", ID: ip(2)}, nil, time.Hour); err != nil {
			t.Error(err)
		}
		// "Restart" after the short lease expired.
		clk.Sleep(time.Second)
		s2 := New(clk)
		n, err := Replay(bytes.NewReader(buf.Bytes()), s2)
		if err != nil {
			t.Error(err)
		}
		if n != 1 {
			t.Errorf("restored %d, want 1 (short lease expired)", n)
		}
		if got, _ := s2.Count(task{Job: "long"}); got != 1 {
			t.Errorf("long-lease entry missing")
		}
	})
}

// TestJournalCompactionRoundTrip: replaying an old journal into a space
// that already has a fresh journal attached produces a compacted journal
// holding exactly the live entries — the restart pattern cmd/master uses.
func TestJournalCompactionRoundTrip(t *testing.T) {
	s1, _, old := newJournaledSpace(t)
	for i := 0; i < 6; i++ {
		mustWrite(t, s1, task{Job: "c", ID: ip(i)})
	}
	for i := 0; i < 4; i++ {
		if _, err := s1.Take(task{Job: "c"}, nil, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Restart: fresh space with a fresh journal, replay the old log.
	var fresh bytes.Buffer
	s2 := newRealSpace()
	if err := s2.AttachJournal(NewJournal(&fresh)); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(bytes.NewReader(old.Bytes()), s2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d, want 2", n)
	}
	// The fresh journal is compacted: replaying it restores the same two.
	s3, n3 := replayInto(t, &fresh)
	if n3 != 2 {
		t.Fatalf("compacted journal restored %d, want 2", n3)
	}
	if got, _ := s3.Count(task{Job: "c"}); got != 2 {
		t.Fatalf("count = %d", got)
	}
}

func TestAttachJournalToNonEmptySpaceFails(t *testing.T) {
	s := newRealSpace()
	mustWrite(t, s, task{Job: "x"})
	if err := s.AttachJournal(NewJournal(&bytes.Buffer{})); err == nil {
		t.Fatal("attached to non-empty space")
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	s := newRealSpace()
	if _, err := Replay(bytes.NewReader([]byte("not a journal")), s); err == nil {
		t.Fatal("garbage journal accepted")
	}
}

func TestJournalImmediateHandoffRecordsWriteAndRemove(t *testing.T) {
	s, _, buf := newJournaledSpace(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = s.Take(task{Job: "h"}, nil, 5*time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	mustWrite(t, s, task{Job: "h"}) // handed straight to the blocked taker
	<-done
	_, n := replayInto(t, buf)
	if n != 0 {
		t.Fatalf("handed-off entry survived replay (%d restored)", n)
	}
}
