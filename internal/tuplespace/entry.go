// Package tuplespace implements the JavaSpaces programming model: a shared,
// associative repository of typed entries with Write, Read and Take
// operations, blocking lookups, per-entry leases, transactions and event
// notification. It is the central substrate of this repository — the
// framework's master and workers coordinate exclusively through a Space,
// exactly as the paper's master/worker modules coordinate through a
// JavaSpace.
//
// # Entries and templates
//
// An entry is any Go struct. A template is a (possibly partially zero)
// value of the same struct type. A template matches an entry when every
// exported, non-zero field of the template is deeply equal to the
// corresponding entry field; zero-valued template fields are wildcards.
// This mirrors JavaSpaces, where null entry fields act as wildcards. As in
// JavaSpaces (where matchable fields are objects such as Integer rather
// than int), fields whose zero value is meaningful for matching should be
// declared as pointers.
package tuplespace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
)

// Entry is any struct value stored in or used to query a Space. Passing a
// non-struct (or pointer to non-struct) to Space operations returns
// ErrNotStruct.
type Entry interface{}

// typeInfo caches per-type reflection data used by the matcher.
type typeInfo struct {
	typ    reflect.Type
	fields []int // indices of exported fields
	name   string
	// keyField is the index of the first exported string field tagged
	// `space:"index"`, or -1. Entries of such types are hash-indexed by
	// that field's value, turning template lookups that fix the key into
	// bucket scans instead of full type scans.
	keyField int
}

var typeCache sync.Map // reflect.Type -> *typeInfo

// infoFor returns cached reflection info for the struct type underlying e.
func infoFor(e Entry) (*typeInfo, reflect.Value, error) {
	v := reflect.ValueOf(e)
	for v.Kind() == reflect.Ptr {
		if v.IsNil() {
			return nil, reflect.Value{}, fmt.Errorf("tuplespace: nil entry: %w", ErrNotStruct)
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return nil, reflect.Value{}, fmt.Errorf("tuplespace: %T is not a struct: %w", e, ErrNotStruct)
	}
	t := v.Type()
	if ti, ok := typeCache.Load(t); ok {
		return ti.(*typeInfo), v, nil
	}
	ti := &typeInfo{typ: t, name: t.String(), keyField: -1}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		ti.fields = append(ti.fields, i)
		if ti.keyField < 0 && f.Type.Kind() == reflect.String && f.Tag.Get("space") == "index" {
			ti.keyField = i
		}
	}
	typeCache.LoadOrStore(t, ti)
	return ti, v, nil
}

// matches reports whether template tmpl (already resolved to a struct
// value) matches candidate cand of the same type: every non-zero exported
// template field must be deeply equal to the candidate's field.
func matches(ti *typeInfo, tmpl, cand reflect.Value) bool {
	for _, i := range ti.fields {
		f := tmpl.Field(i)
		if f.IsZero() {
			continue // wildcard
		}
		if !reflect.DeepEqual(f.Interface(), cand.Field(i).Interface()) {
			return false
		}
	}
	return true
}

// matchesSlow is the uncached matcher used by the ablation benchmark: it
// recomputes exported-field indices on every call instead of consulting the
// type cache.
func matchesSlow(tmpl, cand reflect.Value) bool {
	t := tmpl.Type()
	for i := 0; i < t.NumField(); i++ {
		if !t.Field(i).IsExported() {
			continue
		}
		f := tmpl.Field(i)
		if f.IsZero() {
			continue
		}
		if !reflect.DeepEqual(f.Interface(), cand.Field(i).Interface()) {
			return false
		}
	}
	return true
}

// Match reports whether template tmpl matches entry e under JavaSpaces
// matching rules. Both must be values (or pointers to values) of the same
// struct type; differing types never match.
func Match(tmpl, e Entry) (bool, error) {
	ti, tv, err := infoFor(tmpl)
	if err != nil {
		return false, err
	}
	ci, cv, err := infoFor(e)
	if err != nil {
		return false, err
	}
	if ti.typ != ci.typ {
		return false, nil
	}
	return matches(ti, tv, cv), nil
}

// MatchUncached is the reference matcher that recomputes field metadata
// on every call instead of using the per-type cache. It exists for the
// BenchmarkAblationMatchCache comparison and for cross-checking the
// cached matcher in property tests.
func MatchUncached(tmpl, e Entry) (bool, error) {
	tv := reflect.ValueOf(tmpl)
	for tv.Kind() == reflect.Ptr && !tv.IsNil() {
		tv = tv.Elem()
	}
	cv := reflect.ValueOf(e)
	for cv.Kind() == reflect.Ptr && !cv.IsNil() {
		cv = cv.Elem()
	}
	if tv.Kind() != reflect.Struct || cv.Kind() != reflect.Struct {
		return false, ErrNotStruct
	}
	if tv.Type() != cv.Type() {
		return false, nil
	}
	return matchesSlow(tv, cv), nil
}

// deepCopy returns a deep copy of entry value v (a struct). Entries are
// copied on Write and on Read/Take so that callers can never alias storage
// inside the space — the in-process analogue of JavaSpaces serialization.
func deepCopy(v reflect.Value) reflect.Value {
	out := reflect.New(v.Type()).Elem()
	copyInto(out, v)
	return out
}

func copyInto(dst, src reflect.Value) {
	switch src.Kind() {
	case reflect.Ptr:
		if src.IsNil() {
			return
		}
		dst.Set(reflect.New(src.Type().Elem()))
		copyInto(dst.Elem(), src.Elem())
	case reflect.Struct:
		for i := 0; i < src.NumField(); i++ {
			if !src.Type().Field(i).IsExported() {
				continue
			}
			copyInto(dst.Field(i), src.Field(i))
		}
	case reflect.Slice:
		if src.IsNil() {
			return
		}
		dst.Set(reflect.MakeSlice(src.Type(), src.Len(), src.Len()))
		for i := 0; i < src.Len(); i++ {
			copyInto(dst.Index(i), src.Index(i))
		}
	case reflect.Map:
		if src.IsNil() {
			return
		}
		dst.Set(reflect.MakeMapWithSize(src.Type(), src.Len()))
		iter := src.MapRange()
		for iter.Next() {
			k := reflect.New(src.Type().Key()).Elem()
			copyInto(k, iter.Key())
			val := reflect.New(src.Type().Elem()).Elem()
			copyInto(val, iter.Value())
			dst.SetMapIndex(k, val)
		}
	case reflect.Interface:
		if src.IsNil() {
			return
		}
		inner := reflect.New(src.Elem().Type()).Elem()
		copyInto(inner, src.Elem())
		dst.Set(inner)
	case reflect.Array:
		for i := 0; i < src.Len(); i++ {
			copyInto(dst.Index(i), src.Index(i))
		}
	default:
		if dst.CanSet() {
			dst.Set(src)
		}
	}
}

// CopyEntry returns a deep copy of e as a value of the same struct type
// (never a pointer). It is exported for use by the remote space service.
func CopyEntry(e Entry) (Entry, error) {
	_, v, err := infoFor(e)
	if err != nil {
		return nil, err
	}
	return deepCopy(v).Interface(), nil
}

// TypeName returns the fully qualified struct type name of e, used as the
// indexing key in the space and on the wire by the remote space service.
func TypeName(e Entry) (string, error) {
	ti, _, err := infoFor(e)
	if err != nil {
		return "", err
	}
	return ti.name, nil
}

// IndexKey returns the value of e's `space:"index"` key field. ok is false
// when the type declares no key field or the field is zero (a wildcard in a
// template). The shard router uses this to decide between keyed routing and
// scatter-gather.
func IndexKey(e Entry) (key string, ok bool, err error) {
	ti, v, err := infoFor(e)
	if err != nil {
		return "", false, err
	}
	if ti.keyField < 0 {
		return "", false, nil
	}
	kf := v.Field(ti.keyField)
	if kf.IsZero() {
		return "", false, nil
	}
	return kf.String(), true, nil
}

// EncodedSize returns the gob-serialized size of entry e in bytes — the
// size it occupies on the wire when written to a remote space.
func EncodedSize(e Entry) (int, error) {
	if _, _, err := infoFor(e); err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
		return 0, fmt.Errorf("tuplespace: encode %T: %w", e, err)
	}
	return buf.Len(), nil
}
