package tuplespace

import (
	"testing"
	"time"

	"gospaces/internal/vclock"
)

// captureSink records journal payloads in order.
type captureSink struct{ recs [][]byte }

func (c *captureSink) Append(p []byte) error {
	c.recs = append(c.recs, append([]byte(nil), p...))
	return nil
}

// TestApplierMirrorsStream: replaying a source space's journal stream
// record by record leaves the target space identical.
func TestApplierMirrorsStream(t *testing.T) {
	clk := vclock.NewReal()
	src := New(clk)
	cap := &captureSink{}
	if err := src.AttachJournal(NewJournalSink(cap)); err != nil {
		t.Fatal(err)
	}
	// IDs start at 1: gob omits zero values, so a pointer to 0 would not
	// survive the journal round-trip as a matchable field.
	for i := 1; i <= 6; i++ {
		if _, err := src.Write(task{Job: "mc", ID: ip(i)}, nil, Forever); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.Take(task{Job: "mc", ID: ip(2)}, nil, time.Second); err != nil {
		t.Fatal(err)
	}

	dst := New(clk)
	a := NewApplier(dst)
	for i, rec := range cap.recs {
		if err := a.Apply(rec); err != nil {
			t.Fatalf("apply record %d: %v", i, err)
		}
	}
	for i := 1; i <= 6; i++ {
		want := 1
		if i == 2 {
			want = 0
		}
		if n, _ := dst.Count(task{Job: "mc", ID: ip(i)}); n != want {
			t.Fatalf("target has %d copies of task %d, want %d", n, i, want)
		}
	}
	if a.Len() != 5 {
		t.Fatalf("applier tracks %d leases, want 5", a.Len())
	}
}

// TestApplierIdempotent: a snapshot push overlapping the incremental
// stream delivers records twice; the Seq mapping makes the replay a
// no-op, and a remove for an unknown Seq is tolerated.
func TestApplierIdempotent(t *testing.T) {
	clk := vclock.NewReal()
	src := New(clk)
	cap := &captureSink{}
	if err := src.AttachJournal(NewJournalSink(cap)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Write(task{Job: "mc", ID: ip(1)}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Write(task{Job: "mc", ID: ip(2)}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Take(task{Job: "mc", ID: ip(1)}, nil, time.Second); err != nil {
		t.Fatal(err)
	}

	dst := New(clk)
	a := NewApplier(dst)
	for pass := 0; pass < 2; pass++ {
		for i, rec := range cap.recs {
			if err := a.Apply(rec); err != nil {
				t.Fatalf("pass %d record %d: %v", pass, i, err)
			}
		}
	}
	if n, _ := dst.Count(task{Job: "mc"}); n != 1 {
		t.Fatalf("double replay left %d entries, want 1", n)
	}

	// Reset forgets the mapping — the snapshot-push preamble. Replaying
	// into a fresh space afterwards works from scratch.
	a2 := NewApplier(New(clk))
	for _, rec := range cap.recs {
		if err := a2.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	a2.Reset()
	if a2.Len() != 0 {
		t.Fatalf("Reset left %d tracked leases", a2.Len())
	}
}
