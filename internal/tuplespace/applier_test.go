package tuplespace

import (
	"testing"
	"time"

	"gospaces/internal/vclock"
)

// captureSink records journal payloads in order.
type captureSink struct{ recs [][]byte }

func (c *captureSink) Append(p []byte) error {
	c.recs = append(c.recs, append([]byte(nil), p...))
	return nil
}

// TestApplierMirrorsStream: replaying a source space's journal stream
// record by record leaves the target space identical.
func TestApplierMirrorsStream(t *testing.T) {
	clk := vclock.NewReal()
	src := New(clk)
	cap := &captureSink{}
	if err := src.AttachJournal(NewJournalSink(cap)); err != nil {
		t.Fatal(err)
	}
	// IDs start at 1: gob omits zero values, so a pointer to 0 would not
	// survive the journal round-trip as a matchable field.
	for i := 1; i <= 6; i++ {
		if _, err := src.Write(task{Job: "mc", ID: ip(i)}, nil, Forever); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.Take(task{Job: "mc", ID: ip(2)}, nil, time.Second); err != nil {
		t.Fatal(err)
	}

	dst := New(clk)
	a := NewApplier(dst)
	for i, rec := range cap.recs {
		if err := a.Apply(rec); err != nil {
			t.Fatalf("apply record %d: %v", i, err)
		}
	}
	for i := 1; i <= 6; i++ {
		want := 1
		if i == 2 {
			want = 0
		}
		if n, _ := dst.Count(task{Job: "mc", ID: ip(i)}); n != want {
			t.Fatalf("target has %d copies of task %d, want %d", n, i, want)
		}
	}
	if a.Len() != 5 {
		t.Fatalf("applier tracks %d leases, want 5", a.Len())
	}
}

// mustOp encodes one journal op for direct injection into an applier.
func mustOp(t *testing.T, op journalOp) []byte {
	t.Helper()
	rec, err := encodeOp(op)
	if err != nil {
		t.Fatalf("encode op: %v", err)
	}
	return rec
}

// TestApplierRebindAcrossIncarnations: after the source of a stream fails
// over, the promoted node assigns its own Seqs. Rebind with a translation
// table must keep the dedup exact across the switch: an entry both
// incarnations carried is recognized as already applied (no duplicate), a
// new write whose Seq merely collides with an unrelated old Seq is not
// mistaken for a dup (no loss), removes resolve to the entry they meant,
// and translations compose across chained failovers.
func TestApplierRebindAcrossIncarnations(t *testing.T) {
	clk := vclock.NewReal()
	dst := New(clk)
	a := NewApplier(dst)

	// Incarnation 0 (the original primary): entry A under Seq 1, entry B
	// under Seq 2.
	for _, op := range []journalOp{
		{Kind: "write", Seq: 1, Entry: task{Job: "mc", ID: ip(1)}},
		{Kind: "write", Seq: 2, Entry: task{Job: "mc", ID: ip(2)}},
	} {
		if err := a.Apply(mustOp(t, op)); err != nil {
			t.Fatal(err)
		}
	}

	// Failover: the promoted node knows A as Seq 8 and B as Seq 7.
	a.Rebind(map[uint64]uint64{8: 1, 7: 2})

	// The promoted node re-ships B under its own Seq 7 (a post-failover
	// drain pass re-evicts it): must dedup, not duplicate.
	if err := a.Apply(mustOp(t, journalOp{Kind: "write", Seq: 7, Entry: task{Job: "mc", ID: ip(2)}})); err != nil {
		t.Fatal(err)
	}
	if n, _ := dst.Count(task{Job: "mc", ID: ip(2)}); n != 1 {
		t.Fatalf("re-shipped entry B duplicated: %d copies", n)
	}

	// A genuinely new post-failover write whose Seq collides with the old
	// incarnation's Seq 2: must apply, not be dropped as a dup.
	if err := a.Apply(mustOp(t, journalOp{Kind: "write", Seq: 2, Entry: task{Job: "mc", ID: ip(9)}})); err != nil {
		t.Fatal(err)
	}
	if n, _ := dst.Count(task{Job: "mc", ID: ip(9)}); n != 1 {
		t.Fatalf("new write lost to a cross-incarnation Seq collision: %d copies", n)
	}

	// A remove in the new namespace cancels exactly the entry it names.
	if err := a.Apply(mustOp(t, journalOp{Kind: "remove", Seq: 7})); err != nil {
		t.Fatal(err)
	}
	if n, _ := dst.Count(task{Job: "mc", ID: ip(2)}); n != 0 {
		t.Fatalf("remove of translated Seq missed: %d copies of B left", n)
	}
	if n, _ := dst.Count(task{Job: "mc", ID: ip(1)}); n != 1 {
		t.Fatalf("remove of translated Seq hit the wrong entry: %d copies of A left", n)
	}

	// Chained failover: the next incarnation knows A as Seq 21 (via the
	// previous incarnation's Seq 8). The translation composes back to the
	// original key, so A still dedups.
	a.Rebind(map[uint64]uint64{21: 8})
	if err := a.Apply(mustOp(t, journalOp{Kind: "write", Seq: 21, Entry: task{Job: "mc", ID: ip(1)}})); err != nil {
		t.Fatal(err)
	}
	if n, _ := dst.Count(task{Job: "mc", ID: ip(1)}); n != 1 {
		t.Fatalf("chained rebind broke dedup: %d copies of A", n)
	}
}

// TestApplierSeqMapping: a standby's applier reports, per entry, the local
// space's Seq → the Seq the source shipped it under — the translation
// table a downstream applier rebinds with when this node is promoted.
func TestApplierSeqMapping(t *testing.T) {
	clk := vclock.NewReal()
	backup := New(clk)
	// Shift the backup's Seq counter so local Seqs diverge from the
	// source's, as they do after any skipped record.
	l, err := backup.Write(task{Job: "warmup", ID: ip(0)}, nil, Forever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Cancel(); err != nil {
		t.Fatal(err)
	}

	a := NewApplier(backup)
	if err := a.Apply(mustOp(t, journalOp{Kind: "write", Seq: 5, Entry: task{Job: "mc", ID: ip(1)}})); err != nil {
		t.Fatal(err)
	}
	m := a.SeqMapping()
	if len(m) != 1 {
		t.Fatalf("SeqMapping has %d entries, want 1", len(m))
	}
	for local, src := range m {
		if src != 5 {
			t.Fatalf("SeqMapping reports source Seq %d, want 5", src)
		}
		if local == 5 {
			t.Fatalf("local Seq unexpectedly equals source Seq; counter shift failed")
		}
	}
}

// TestApplierIdempotent: a snapshot push overlapping the incremental
// stream delivers records twice; the Seq mapping makes the replay a
// no-op, and a remove for an unknown Seq is tolerated.
func TestApplierIdempotent(t *testing.T) {
	clk := vclock.NewReal()
	src := New(clk)
	cap := &captureSink{}
	if err := src.AttachJournal(NewJournalSink(cap)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Write(task{Job: "mc", ID: ip(1)}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Write(task{Job: "mc", ID: ip(2)}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Take(task{Job: "mc", ID: ip(1)}, nil, time.Second); err != nil {
		t.Fatal(err)
	}

	dst := New(clk)
	a := NewApplier(dst)
	for pass := 0; pass < 2; pass++ {
		for i, rec := range cap.recs {
			if err := a.Apply(rec); err != nil {
				t.Fatalf("pass %d record %d: %v", pass, i, err)
			}
		}
	}
	if n, _ := dst.Count(task{Job: "mc"}); n != 1 {
		t.Fatalf("double replay left %d entries, want 1", n)
	}

	// Reset forgets the mapping — the snapshot-push preamble. Replaying
	// into a fresh space afterwards works from scratch.
	a2 := NewApplier(New(clk))
	for _, rec := range cap.recs {
		if err := a2.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	a2.Reset()
	if a2.Len() != 0 {
		t.Fatalf("Reset left %d tracked leases", a2.Len())
	}
}
