package tuplespace_test

import (
	"fmt"
	"time"

	"gospaces/internal/tuplespace"
	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

// WorkItem is an application entry type: the Kind field is matchable and
// indexed; pointer fields hold matchable scalars (zero = wildcard).
type WorkItem struct {
	Kind string `space:"index"`
	ID   *int
	Data string
}

func ExampleSpace() {
	space := tuplespace.New(vclock.NewReal())
	id := 7
	if _, err := space.Write(WorkItem{Kind: "render", ID: &id, Data: "strip-7"}, nil, tuplespace.Forever); err != nil {
		panic(err)
	}
	// Associative lookup: any "render" item.
	e, err := space.Take(WorkItem{Kind: "render"}, nil, time.Second)
	if err != nil {
		panic(err)
	}
	item := e.(WorkItem)
	fmt.Println(item.Data, *item.ID)
	// Output: strip-7 7
}

func ExampleSpace_transaction() {
	clock := vclock.NewReal()
	space := tuplespace.New(clock)
	mgr := txn.NewManager(clock)
	id := 1
	_, _ = space.Write(WorkItem{Kind: "task", ID: &id}, nil, tuplespace.Forever)

	// A worker takes the task under a transaction…
	tx := mgr.Begin(time.Minute)
	_, _ = space.Take(WorkItem{Kind: "task"}, tx, time.Second)
	// …and dies before committing. Aborting returns the task.
	_ = tx.Abort()

	n, _ := space.Count(WorkItem{Kind: "task"})
	fmt.Println("tasks after abort:", n)
	// Output: tasks after abort: 1
}

func ExampleSpace_notify() {
	space := tuplespace.New(vclock.NewReal())
	done := make(chan string, 1)
	_, _ = space.Notify(WorkItem{Kind: "result"}, func(ev tuplespace.Event) {
		done <- ev.Entry.(WorkItem).Data
	}, tuplespace.Forever)
	_, _ = space.Write(WorkItem{Kind: "result", Data: "42"}, nil, tuplespace.Forever)
	fmt.Println("notified:", <-done)
	// Output: notified: 42
}
