package tuplespace

import (
	"encoding/gob"
	"fmt"
	"testing"
	"time"

	"gospaces/internal/vclock"
)

func init() {
	gob.Register(keyedDoc{})
}

// keyedDoc is the indexed entry type for memo-migration tests: its Key
// drives ring placement, so its memos must travel with the bucket.
type keyedDoc struct {
	Key string `space:"index"`
	Val int
}

func tok(client string, seq uint64) OpToken { return OpToken{Client: client, Seq: seq} }

// TestMemoWriteDedup: a retried WriteTok carrying the original token must
// return the original entry's lease, not store a second copy.
func TestMemoWriteDedup(t *testing.T) {
	s := newRealSpace()
	l1, err := s.WriteTok(task{Job: "mc", ID: ip(1)}, nil, Forever, tok("w1", 1))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := s.WriteTok(task{Job: "mc", ID: ip(1)}, nil, Forever, tok("w1", 1))
	if err != nil {
		t.Fatalf("retried write: %v", err)
	}
	if n, _ := s.Count(task{Job: "mc"}); n != 1 {
		t.Fatalf("space holds %d entries after write retry, want 1 (duplicate execution)", n)
	}
	if l1.Seq() != l2.Seq() {
		t.Fatalf("retry returned lease for entry %d, want the original %d", l2.Seq(), l1.Seq())
	}
	if size, hits, _ := s.MemoStats(); size != 1 || hits != 1 {
		t.Fatalf("memo stats = (size %d, hits %d), want (1, 1)", size, hits)
	}
}

// TestMemoTakeDedup: a retried TakeTok whose original executed (reply
// lost) returns the originally consumed entry instead of eating another.
func TestMemoTakeDedup(t *testing.T) {
	s := newRealSpace()
	for i := 1; i <= 2; i++ {
		if _, err := s.Write(task{Job: "mc", ID: ip(i)}, nil, Forever); err != nil {
			t.Fatal(err)
		}
	}
	got1, err := s.TakeTok(task{Job: "mc", ID: ip(1)}, nil, time.Second, tok("w1", 7))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s.TakeTok(task{Job: "mc", ID: ip(1)}, nil, time.Second, tok("w1", 7))
	if err != nil {
		t.Fatalf("retried take: %v", err)
	}
	if *got1.(task).ID != 1 || *got2.(task).ID != 1 {
		t.Fatalf("takes returned IDs %d and %d, want 1 and 1", *got1.(task).ID, *got2.(task).ID)
	}
	if n, _ := s.Count(task{Job: "mc"}); n != 1 {
		t.Fatalf("space holds %d entries after take retry, want 1 (second entry consumed)", n)
	}
}

// TestMemoBoundsEviction: the table is FIFO-bounded per client and
// globally, eviction is counted, and a token evicted past the bound
// degrades that one op back to at-most-once (its retry re-executes).
func TestMemoBoundsEviction(t *testing.T) {
	s := newRealSpace()
	s.SetMemoBounds(2, 0)
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := s.WriteTok(task{Job: "mc", ID: ip(int(seq))}, nil, Forever, tok("w1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	size, _, evicted := s.MemoStats()
	if size != 2 || evicted != 1 {
		t.Fatalf("memo stats after per-client overflow = (size %d, evicted %d), want (2, 1)", size, evicted)
	}
	// Token 1 was evicted: its retry re-executes — the documented
	// residual once a client outruns the bound.
	if _, err := s.WriteTok(task{Job: "mc", ID: ip(1)}, nil, Forever, tok("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(task{Job: "mc", ID: ip(1)}); n != 2 {
		t.Fatalf("evicted token's retry stored %d copies, want 2 (re-execution past the bound)", n)
	}

	// Global bound across clients.
	g := newRealSpace()
	g.SetMemoBounds(0, 2)
	for i := 1; i <= 3; i++ {
		if _, err := g.WriteTok(task{Job: "mc", ID: ip(i)}, nil, Forever, tok(fmt.Sprintf("w%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if size, _, evicted := g.MemoStats(); size != 2 || evicted != 1 {
		t.Fatalf("memo stats after global overflow = (size %d, evicted %d), want (2, 1)", size, evicted)
	}
}

// TestMemoRebuildFromReplay: crash-restart. A space's journal stream
// replayed into a fresh space (the WAL recovery path) must rebuild the
// memo table, so retries arriving after the restart still deduplicate.
func TestMemoRebuildFromReplay(t *testing.T) {
	clk := vclock.NewReal()
	src := New(clk)
	sink := &captureSink{}
	if err := src.AttachJournal(NewJournalSink(sink)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteTok(task{Job: "mc", ID: ip(1)}, nil, Forever, tok("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Write(task{Job: "mc", ID: ip(2)}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	if _, err := src.TakeTok(task{Job: "mc", ID: ip(2)}, nil, time.Second, tok("w1", 2)); err != nil {
		t.Fatal(err)
	}

	restored := New(clk)
	if n, err := ReplayRecords(sink.recs, restored); err != nil || n != 1 {
		t.Fatalf("replay: restored %d entries, err %v; want 1, nil", n, err)
	}
	// The write retry finds its memo: no second copy.
	if _, err := restored.WriteTok(task{Job: "mc", ID: ip(1)}, nil, Forever, tok("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if n, _ := restored.Count(task{Job: "mc"}); n != 1 {
		t.Fatalf("restored space holds %d entries after write retry, want 1", n)
	}
	// The take retry returns the consumed entry instead of blocking or
	// consuming entry 1.
	got, err := restored.TakeTok(task{Job: "mc", ID: ip(2)}, nil, 10*time.Millisecond, tok("w1", 2))
	if err != nil {
		t.Fatalf("take retry after restart: %v", err)
	}
	if *got.(task).ID != 2 {
		t.Fatalf("take retry returned ID %d, want the memoized 2", *got.(task).ID)
	}
	if n, _ := restored.Count(task{Job: "mc"}); n != 1 {
		t.Fatalf("take retry consumed a live entry: %d left, want 1", n)
	}
}

// TestApplierMemoRebuildChainedFailovers: memos survive two hops of
// incremental replication — primary → standby A → standby B — because
// each applier re-journals what it installs. A retry landing on the
// twice-promoted B still deduplicates.
func TestApplierMemoRebuildChainedFailovers(t *testing.T) {
	clk := vclock.NewReal()
	src := New(clk)
	srcSink := &captureSink{}
	if err := src.AttachJournal(NewJournalSink(srcSink)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteTok(task{Job: "mc", ID: ip(1)}, nil, Forever, tok("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Write(task{Job: "mc", ID: ip(2)}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	if _, err := src.TakeTok(task{Job: "mc", ID: ip(2)}, nil, time.Second, tok("w1", 2)); err != nil {
		t.Fatal(err)
	}

	// Standby A journals its own stream so a standby-of-standby (the
	// post-promotion chain) receives memos too.
	a := New(clk)
	aSink := &captureSink{}
	if err := a.AttachJournal(NewJournalSink(aSink)); err != nil {
		t.Fatal(err)
	}
	aApp := NewApplier(a)
	for i, rec := range srcSink.recs {
		if err := aApp.Apply(rec); err != nil {
			t.Fatalf("standby A: apply record %d: %v", i, err)
		}
	}

	b := New(clk)
	bApp := NewApplier(b)
	for i, rec := range aSink.recs {
		if err := bApp.Apply(rec); err != nil {
			t.Fatalf("standby B: apply record %d: %v", i, err)
		}
	}

	for _, sp := range []*Space{a, b} {
		if _, err := sp.WriteTok(task{Job: "mc", ID: ip(1)}, nil, Forever, tok("w1", 1)); err != nil {
			t.Fatal(err)
		}
		if n, _ := sp.Count(task{Job: "mc"}); n != 1 {
			t.Fatalf("standby holds %d entries after write retry, want 1", n)
		}
		got, err := sp.TakeTok(task{Job: "mc", ID: ip(2)}, nil, 10*time.Millisecond, tok("w1", 2))
		if err != nil {
			t.Fatalf("take retry on standby: %v", err)
		}
		if *got.(task).ID != 2 {
			t.Fatalf("take retry returned ID %d, want the memoized 2", *got.(task).ID)
		}
	}
}

// TestApplierMemoFilter: in migration mode only memos for the migrating
// bucket range install; unkeyed memos always ship (over-shipping is safe,
// under-shipping re-executes).
func TestApplierMemoFilter(t *testing.T) {
	clk := vclock.NewReal()
	src := New(clk)
	sink := &captureSink{}
	if err := src.AttachJournal(NewJournalSink(sink)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteTok(keyedDoc{Key: "mine", Val: 1}, nil, Forever, tok("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteTok(keyedDoc{Key: "other", Val: 2}, nil, Forever, tok("w1", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteTok(task{Job: "mc", ID: ip(3)}, nil, Forever, tok("w1", 3)); err != nil {
		t.Fatal(err)
	}

	dst := New(clk)
	app := NewApplier(dst).SetMemoFilter(func(key string, keyed bool) bool {
		return !keyed || key == "mine"
	})
	for i, rec := range sink.recs {
		if err := app.Apply(rec); err != nil {
			t.Fatalf("apply record %d: %v", i, err)
		}
	}
	if size, _, _ := dst.MemoStats(); size != 2 {
		t.Fatalf("filtered applier installed %d memos, want 2 (keyed 'mine' + unkeyed)", size)
	}
	// The filtered-out token re-executes; the shipped ones dedup.
	if _, err := dst.WriteTok(keyedDoc{Key: "mine", Val: 1}, nil, Forever, tok("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if n, _ := dst.Count(keyedDoc{Key: "mine"}); n != 1 {
		t.Fatalf("shipped memo did not dedup: %d copies of 'mine'", n)
	}
	if _, err := dst.WriteTok(keyedDoc{Key: "other", Val: 2}, nil, Forever, tok("w1", 2)); err != nil {
		t.Fatal(err)
	}
	if n, _ := dst.Count(keyedDoc{Key: "other"}); n != 2 {
		t.Fatalf("filtered-out memo unexpectedly deduped: %d copies of 'other', want 2", n)
	}
}
