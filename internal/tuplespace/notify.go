package tuplespace

import (
	"reflect"
	"time"
)

// Event describes an entry arrival delivered to a notification listener,
// mirroring JavaSpaces' RemoteEvent: a monotonically increasing sequence
// number per registration plus a copy of the arriving entry.
type Event struct {
	Registration uint64
	Sequence     uint64
	Entry        Entry
}

// Listener receives events. Implementations must not block: events are
// delivered synchronously from the writing process after the space lock is
// released.
type Listener func(Event)

type registration struct {
	id     uint64
	ti     *typeInfo
	tmpl   reflect.Value
	fn     Listener
	expiry time.Time
	seq    uint64
	dead   bool
}

type notification struct {
	fn Listener
	ev Event
}

// Registration is the handle returned by Notify; Cancel stops delivery.
type Registration struct {
	space *Space
	reg   *registration
}

// ID returns the registration identifier carried in delivered events.
func (r *Registration) ID() uint64 { return r.reg.id }

// Cancel stops event delivery for this registration.
func (r *Registration) Cancel() {
	r.space.mu.Lock()
	r.reg.dead = true
	r.space.mu.Unlock()
}

// Notify registers fn to be called whenever an entry matching tmpl becomes
// publicly visible (a Write without a transaction, or a transactional write
// at commit). ttl bounds the registration lifetime (Forever for none).
func (s *Space) Notify(tmpl Entry, fn Listener, ttl time.Duration) (*Registration, error) {
	ti, tv, err := infoFor(tmpl)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	reg := &registration{id: s.nextReg, ti: ti, tmpl: tv, fn: fn}
	s.nextReg++
	if ttl > 0 {
		reg.expiry = s.clock.Now().Add(ttl)
	}
	s.notifs[ti.name] = append(s.notifs[ti.name], reg)
	return &Registration{space: s, reg: reg}, nil
}

// matchNotifsLocked collects the notifications to deliver for newly public
// entry se. Caller holds s.mu; delivery happens after unlock via deliver.
func (s *Space) matchNotifsLocked(se *storedEntry) []notification {
	regs := s.notifs[se.ti.name]
	if len(regs) == 0 {
		return nil
	}
	now := s.clock.Now()
	out := regs[:0]
	var fire []notification
	for _, r := range regs {
		if r.dead || (!r.expiry.IsZero() && now.After(r.expiry)) {
			continue
		}
		out = append(out, r)
		if matches(r.ti, r.tmpl, se.val) {
			r.seq++
			s.stats.Notified++
			fire = append(fire, notification{fn: r.fn, ev: Event{
				Registration: r.id,
				Sequence:     r.seq,
				Entry:        deepCopy(se.val).Interface(),
			}})
		}
	}
	s.notifs[se.ti.name] = out
	return fire
}

func deliver(fire []notification) {
	for _, n := range fire {
		n.fn(n.ev)
	}
}
