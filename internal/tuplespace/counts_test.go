package tuplespace

import (
	"testing"
	"time"

	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

// keyedEntry carries an index key field, for IndexKey tests.
type keyedEntry struct {
	Key  string `space:"index"`
	Body int
}

func TestIndexKey(t *testing.T) {
	key, ok, err := IndexKey(keyedEntry{Key: "k1", Body: 2})
	if err != nil || !ok || key != "k1" {
		t.Fatalf("IndexKey(keyed) = %q, %v, %v; want \"k1\", true, nil", key, ok, err)
	}
	// Zero key field is a wildcard: not routable.
	if _, ok, err := IndexKey(keyedEntry{Body: 2}); err != nil || ok {
		t.Fatalf("IndexKey(zero key) ok = %v, err = %v; want false, nil", ok, err)
	}
	// Types without an index tag have no key.
	if _, ok, err := IndexKey(task{Job: "mc"}); err != nil || ok {
		t.Fatalf("IndexKey(unkeyed type) ok = %v, err = %v; want false, nil", ok, err)
	}
	// Pointers are followed, like everywhere else in the package.
	if key, ok, _ := IndexKey(&keyedEntry{Key: "p"}); !ok || key != "p" {
		t.Fatalf("IndexKey(pointer) = %q, %v; want \"p\", true", key, ok)
	}
	if _, _, err := IndexKey(42); err == nil {
		t.Fatal("IndexKey(non-struct) succeeded, want error")
	}
}

func TestTypeCounts(t *testing.T) {
	s := newRealSpace()
	for i := 0; i < 3; i++ {
		if _, err := s.Write(task{Job: "tc", ID: ip(i)}, nil, Forever); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Write(result{Job: "tc", ID: ip(0), Sum: 1}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	counts := s.TypeCounts()
	taskName, _ := TypeName(task{})
	resultName, _ := TypeName(result{})
	if counts[taskName] != 3 || counts[resultName] != 1 {
		t.Fatalf("counts = %v, want %s:3 %s:1", counts, taskName, resultName)
	}

	// Taking an entry drops it from the counts.
	if _, err := s.Take(task{Job: "tc"}, nil, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.TypeCounts()[taskName]; got != 2 {
		t.Fatalf("after take, task count = %d, want 2", got)
	}

	// Expired entries are excluded. Use a real-clock space and let the
	// lease lapse.
	if _, err := s.Write(task{Job: "exp", ID: ip(99)}, nil, time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if got := s.TypeCounts()[taskName]; got != 2 {
		t.Fatalf("after expiry, task count = %d, want 2", got)
	}

	// Txn-held provisional writes are still counted as live (they occupy
	// storage), matching Stats.EntriesLive semantics.
	tm := txn.NewManager(vclock.NewReal())
	tx := tm.Begin(0)
	if _, err := s.Write(task{Job: "txn", ID: ip(5)}, tx, Forever); err != nil {
		t.Fatal(err)
	}
	if got := s.TypeCounts()[taskName]; got != 3 {
		t.Fatalf("with txn-held write, task count = %d, want 3", got)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := s.TypeCounts()[taskName]; got != 2 {
		t.Fatalf("after abort, task count = %d, want 2", got)
	}
}

func TestStatsWaiting(t *testing.T) {
	s := newRealSpace()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := s.Take(task{Job: "w"}, nil, 5*time.Second); err != nil {
			t.Errorf("blocked take: %v", err)
		}
	}()
	// Wait until the taker has parked.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("taker never showed up in Stats.Waiting")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Write(task{Job: "w", ID: ip(1)}, nil, Forever); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := s.Stats().Waiting; got != 0 {
		t.Fatalf("after satisfying the take, Waiting = %d, want 0", got)
	}
}
