package tuplespace

import (
	"fmt"
	"testing"
	"time"

	"gospaces/internal/vclock"
)

// idxTask declares its Job field as the space index key.
type idxTask struct {
	Job  string `space:"index"`
	ID   *int
	Data []float64
}

func TestIndexedLookupFindsEntries(t *testing.T) {
	s := newRealSpace()
	for i := 0; i < 5; i++ {
		mustWrite(t, s, idxTask{Job: fmt.Sprintf("j%d", i%2), ID: ip(i)})
	}
	// Template fixing the indexed field: bucket scan.
	got, err := s.Take(idxTask{Job: "j1", ID: ip(3)}, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if *got.(idxTask).ID != 3 {
		t.Fatalf("got %+v", got)
	}
	// Wildcard template: full scan still sees everything.
	if n, _ := s.Count(idxTask{}); n != 4 {
		t.Fatalf("count = %d, want 4", n)
	}
	// Drain the j0 bucket completely (IDs 0, 2, 4).
	for i := 0; i < 3; i++ {
		if _, err := s.Take(idxTask{Job: "j0"}, nil, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.TakeIfExists(idxTask{Job: "j0"}, nil); err == nil {
		t.Fatal("bucket not drained")
	}
	// The other bucket is untouched (ID 3 was taken earlier; ID 1 left).
	if n, _ := s.Count(idxTask{Job: "j1"}); n != 1 {
		t.Fatalf("j1 count = %d, want 1", n)
	}
}

func TestIndexedAndUnindexedAgree(t *testing.T) {
	s := newRealSpace()
	// Same data in an indexed and an unindexed type; every operation
	// must behave identically.
	for i := 0; i < 20; i++ {
		mustWrite(t, s, idxTask{Job: fmt.Sprintf("g%d", i%4), ID: ip(i)})
		mustWrite(t, s, task{Job: fmt.Sprintf("g%d", i%4), ID: ip(i)})
	}
	for i := 0; i < 20; i++ {
		job := fmt.Sprintf("g%d", i%4)
		a, err := s.Take(idxTask{Job: job, ID: ip(i)}, nil, time.Second)
		if err != nil {
			t.Fatalf("indexed take %d: %v", i, err)
		}
		b, err := s.Take(task{Job: job, ID: ip(i)}, nil, time.Second)
		if err != nil {
			t.Fatalf("unindexed take %d: %v", i, err)
		}
		if *a.(idxTask).ID != *b.(task).ID {
			t.Fatalf("mismatch at %d", i)
		}
	}
	if n, _ := s.Count(idxTask{}); n != 0 {
		t.Fatalf("indexed leftover %d", n)
	}
}

func TestIndexedExpiryInBucket(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	s := New(clk)
	clk.Run(func() {
		if _, err := s.Write(idxTask{Job: "e", ID: ip(1)}, nil, 10*time.Millisecond); err != nil {
			t.Error(err)
		}
		clk.Sleep(50 * time.Millisecond)
		if _, err := s.TakeIfExists(idxTask{Job: "e"}, nil); err == nil {
			t.Error("expired entry served from bucket")
		}
	})
}

func TestIndexedBlockingTakeWoken(t *testing.T) {
	s := newRealSpace()
	done := make(chan Entry, 1)
	go func() {
		e, err := s.Take(idxTask{Job: "late"}, nil, 5*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		done <- e
	}()
	time.Sleep(10 * time.Millisecond)
	mustWrite(t, s, idxTask{Job: "late", ID: ip(7)})
	select {
	case e := <-done:
		if *e.(idxTask).ID != 7 {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("indexed blocking take never woke")
	}
}
