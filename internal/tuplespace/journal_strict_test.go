package tuplespace

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gospaces/internal/enc"
	"gospaces/internal/metrics"
)

// scriptedSink is an in-memory RecordSink whose Nth append (1-based) can
// be scripted to fail; failOnce=false fails every append from failAt on.
type scriptedSink struct {
	mu       sync.Mutex
	records  [][]byte
	calls    int
	failAt   int
	failOnce bool
}

var errDisk = errors.New("scripted disk failure")

func (s *scriptedSink) Append(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.failAt > 0 && (s.calls == s.failAt || (!s.failOnce && s.calls > s.failAt)) {
		return errDisk
	}
	s.records = append(s.records, append([]byte(nil), p...))
	return nil
}

func (s *scriptedSink) stats() (calls, stored int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls, len(s.records)
}

// TestStrictJournalFailsWriteLoudly: in strict mode a write whose journal
// append fails returns the durability error and the entry is NOT stored —
// nothing is acknowledged that was not logged.
func TestStrictJournalFailsWriteLoudly(t *testing.T) {
	sink := &scriptedSink{failAt: 1, failOnce: true}
	c := metrics.NewCounters()
	s := newRealSpace()
	if err := s.AttachJournal(NewJournalSink(sink).SetStrict(true).SetCounters(c)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(task{Job: "s"}, nil, Forever); !errors.Is(err, errDisk) {
		t.Fatalf("strict write error = %v, want the disk failure", err)
	}
	if got, _ := s.Count(task{Job: "s"}); got != 0 {
		t.Fatalf("unlogged write acknowledged: count = %d", got)
	}
	if got := c.Get(CounterJournalErrors); got != 1 {
		t.Fatalf("%s = %d, want 1", CounterJournalErrors, got)
	}
	// The failure is transient: the next write succeeds.
	if _, err := s.Write(task{Job: "s"}, nil, Forever); err != nil {
		t.Fatalf("write after transient failure: %v", err)
	}
	if got, _ := s.Count(task{Job: "s"}); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

// TestStrictJournalFailsTakeLoudly: a take whose removal record cannot be
// logged fails, and the entry stays in the space.
func TestStrictJournalFailsTakeLoudly(t *testing.T) {
	sink := &scriptedSink{failAt: 2, failOnce: true} // write ok, remove fails
	s := newRealSpace()
	if err := s.AttachJournal(NewJournalSink(sink).SetStrict(true)); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, task{Job: "s", ID: ip(1)})
	if _, err := s.TakeIfExists(task{Job: "s"}, nil); !errors.Is(err, errDisk) {
		t.Fatalf("strict take error = %v, want the disk failure", err)
	}
	if got, _ := s.Count(task{Job: "s"}); got != 1 {
		t.Fatalf("entry vanished despite unlogged removal: count = %d", got)
	}
	// Retry succeeds once the disk recovers.
	if _, err := s.TakeIfExists(task{Job: "s"}, nil); err != nil {
		t.Fatalf("take after recovery: %v", err)
	}
}

// TestStrictJournalFailsBlockedTakeLoudly covers the waiter handoff path:
// a blocked Take whose removal record fails is woken with the error, and
// the arriving entry remains available.
func TestStrictJournalFailsBlockedTakeLoudly(t *testing.T) {
	sink := &scriptedSink{failAt: 2, failOnce: true} // write ok, handoff remove fails
	s := newRealSpace()
	if err := s.AttachJournal(NewJournalSink(sink).SetStrict(true)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Take(task{Job: "w"}, nil, 5*time.Second)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the taker park
	if _, err := s.Write(task{Job: "w"}, nil, Forever); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := <-done; !errors.Is(err, errDisk) {
		t.Fatalf("blocked take error = %v, want the disk failure", err)
	}
	if got, _ := s.Count(task{Job: "w"}); got != 1 {
		t.Fatalf("entry lost in failed handoff: count = %d", got)
	}
}

// TestLenientJournalKeepsRecordingAfterError is the regression test for
// the silent-drop bug: the old journal stopped recording everything after
// its first write error. Now the error is counted and retained, but every
// subsequent mutation is still appended.
func TestLenientJournalKeepsRecordingAfterError(t *testing.T) {
	sink := &scriptedSink{failAt: 2, failOnce: true} // only the 2nd append fails
	c := metrics.NewCounters()
	s := newRealSpace()
	j := NewJournalSink(sink).SetCounters(c)
	if err := s.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Write(task{Job: "l", ID: ip(i)}, nil, Forever); err != nil {
			t.Fatalf("lenient write %d failed: %v", i, err)
		}
	}
	if j.Err() == nil {
		t.Fatal("journal error not retained")
	}
	if got := c.Get(CounterJournalErrors); got != 1 {
		t.Fatalf("%s = %d, want 1", CounterJournalErrors, got)
	}
	calls, stored := sink.stats()
	if calls != 4 {
		t.Fatalf("journal attempted %d appends, want 4 (stopped after first error?)", calls)
	}
	if stored != 3 {
		t.Fatalf("sink stored %d records, want 3", stored)
	}
	// The survivors replay: entries 0, 2, 3 (record 1 was lost).
	s2 := newRealSpace()
	n, err := ReplayRecords(sink.records, s2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d entries, want 3", n)
	}
}

// unregEntry is deliberately never passed to RegisterType.
type unregEntry struct {
	Name string
}

// TestUnregisteredTypeReturnsTypedError: journaling an entry whose type
// was never registered used to surface as an opaque gob string; now it is
// a typed *enc.UnregisteredTypeError naming the offender.
func TestUnregisteredTypeReturnsTypedError(t *testing.T) {
	sink := &scriptedSink{}
	s := newRealSpace()
	if err := s.AttachJournal(NewJournalSink(sink).SetStrict(true)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Write(unregEntry{Name: "x"}, nil, Forever)
	var ute *enc.UnregisteredTypeError
	if !errors.As(err, &ute) {
		t.Fatalf("error = %v (%T), want *enc.UnregisteredTypeError", err, err)
	}
	if ute.Type != "tuplespace.unregEntry" {
		t.Fatalf("error names type %q, want tuplespace.unregEntry", ute.Type)
	}
	// Registering the type fixes it.
	RegisterType(unregEntry{})
	if _, err := s.Write(unregEntry{Name: "x"}, nil, Forever); err != nil {
		t.Fatalf("write after RegisterType: %v", err)
	}
}
