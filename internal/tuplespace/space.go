package tuplespace

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/txn"
	"gospaces/internal/vclock"
)

// Forever is the lease duration for entries that never expire.
const Forever time.Duration = 0

// Space is an in-process JavaSpace: a shared repository of typed entries
// with associative lookup. All methods are safe for concurrent use. A Space
// participates in transactions created by a txn.Manager.
type Space struct {
	clock vclock.Clock

	mu      sync.Mutex
	byType  map[string][]*storedEntry
	byKey   map[string]map[string][]*storedEntry // type → index-field value → entries
	waiters map[string][]*waiter
	notifs  map[string][]*registration
	txns    map[uint64]*txnState
	nextID  uint64
	nextReg uint64
	closed  bool
	journal *Journal
	stats   Stats

	memos        *memoTable // token → memoized outcome (see memo.go), lazily allocated
	memoCounters *metrics.Counters
	flightSink   func(kind, detail string) // dedup-hit sink (see SetFlightSink)

	maxWaiters int // bound on parked Read/Take waiters, 0 = unlimited
	waiting    int // parked waiters, maintained at park/unpark
}

// Stats counts space operations; returned by Space.Stats.
type Stats struct {
	Writes      uint64 // successful Write calls
	Reads       uint64 // successful Read/ReadIfExists calls
	Takes       uint64 // successful Take/TakeIfExists calls
	Blocked     uint64 // Read/Take calls that had to wait
	Timeouts    uint64 // Read/Take calls that timed out
	Notified    uint64 // notification events delivered
	Expired     uint64 // entries reaped after lease expiry
	TxnCommits  uint64 // transactions committed at this space
	TxnAborts   uint64 // transactions aborted at this space
	Overloaded  uint64 // blocking calls rejected by the waiter bound
	EntriesLive int    // entries currently stored (including txn-held)
	Waiting     int    // Read/Take calls currently parked waiting for a match
}

type storedEntry struct {
	id     uint64
	ti     *typeInfo
	val    reflect.Value // struct value, owned by the space
	expiry time.Time     // zero = forever

	writtenUnder uint64         // txn holding an uncommitted write, 0 if public
	takenUnder   uint64         // txn holding a take lock, 0 if free
	readLocks    map[uint64]int // txn id -> read lock count
	removed      bool
}

type txnState struct {
	writes []*storedEntry
	takes  []*storedEntry
	reads  []*storedEntry
}

type opKind int

const (
	opRead opKind = iota
	opTake
)

type waiter struct {
	kind   opKind
	ti     *typeInfo
	tmpl   reflect.Value
	txn    *txn.Txn
	w      vclock.Waiter
	result *storedEntry
	err    error
	tok    OpToken // non-zero for exactly-once takes: memoize on satisfaction
}

// New returns an empty Space on the given clock.
func New(clock vclock.Clock) *Space {
	return &Space{
		clock:   clock,
		byType:  make(map[string][]*storedEntry),
		byKey:   make(map[string]map[string][]*storedEntry),
		waiters: make(map[string][]*waiter),
		notifs:  make(map[string][]*registration),
		txns:    make(map[uint64]*txnState),
		nextID:  1,
		nextReg: 1,
	}
}

// SetMaxWaiters bounds the number of blocked Read/Take waiters the space
// will park at once (0 = unlimited, the default). A blocking lookup that
// would exceed the bound fails fast with ErrOverloaded instead of
// queueing — the blocked-waiter half of server-side admission control.
func (s *Space) SetMaxWaiters(n int) {
	s.mu.Lock()
	s.maxWaiters = n
	s.mu.Unlock()
}

// Close shuts the space down: every blocked operation is woken with
// ErrClosed and subsequent operations fail.
func (s *Space) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var all []*waiter
	for _, ws := range s.waiters {
		all = append(all, ws...)
	}
	s.waiters = make(map[string][]*waiter)
	s.waiting = 0
	for _, w := range all {
		w.err = ErrClosed
		w.w.Wake()
	}
	s.mu.Unlock()
}

// Write stores a deep copy of entry e under transaction t (nil for none),
// with lease duration ttl (Forever for no expiry). It returns an EntryLease
// for renewal or cancellation.
func (s *Space) Write(e Entry, t *txn.Txn, ttl time.Duration) (*EntryLease, error) {
	return s.write(e, t, ttl, OpToken{})
}

// write is the shared Write/WriteTok implementation. A non-zero token on
// a non-transactional write makes the call idempotent: the memo check and
// the write itself happen under one hold of s.mu, so however many
// duplicate retries race in, exactly one executes and the rest return its
// lease.
func (s *Space) write(e Entry, t *txn.Txn, ttl time.Duration, tok OpToken) (*EntryLease, error) {
	ti, v, err := infoFor(e)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if !tok.Zero() && t == nil {
		if rec, ok := s.memoHitLocked(tok); ok {
			l := rec.leaseOut(s)
			s.mu.Unlock()
			return l, nil
		}
	}
	ts, err := s.joinLocked(t)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	se := &storedEntry{id: s.nextID, ti: ti, val: deepCopy(v)}
	s.nextID++
	if ttl > 0 {
		se.expiry = s.clock.Now().Add(ttl)
	}
	s.byType[ti.name] = append(s.byType[ti.name], se)
	if ti.keyField >= 0 {
		key := se.val.Field(ti.keyField).String()
		buckets := s.byKey[ti.name]
		if buckets == nil {
			buckets = make(map[string][]*storedEntry)
			s.byKey[ti.name] = buckets
		}
		buckets[key] = append(buckets[key], se)
	}
	var fire []notification
	if t != nil {
		se.writtenUnder = t.ID()
		ts.writes = append(ts.writes, se)
	} else {
		if jerr := s.journalWriteLocked(se); jerr != nil {
			// Strict durability: the write was not logged, so it must
			// not be acknowledged. Scans compact the dead entry.
			se.removed = true
			s.mu.Unlock()
			return nil, jerr
		}
		if !tok.Zero() {
			s.memoWriteLocked(tok, se)
		}
		fire = s.publishLocked(se)
	}
	s.stats.Writes++
	s.mu.Unlock()
	deliver(fire)
	return &EntryLease{space: s, entry: se}, nil
}

// Read returns a copy of an entry matching tmpl, waiting up to timeout for
// one to appear (timeout <= 0 waits forever). The entry remains in the
// space; under a transaction it is read-locked until the transaction
// completes.
func (s *Space) Read(tmpl Entry, t *txn.Txn, timeout time.Duration) (Entry, error) {
	return s.lookup(opRead, tmpl, t, timeout, true)
}

// Take removes and returns an entry matching tmpl, waiting up to timeout.
// Under a transaction the removal is provisional until commit.
func (s *Space) Take(tmpl Entry, t *txn.Txn, timeout time.Duration) (Entry, error) {
	return s.lookup(opTake, tmpl, t, timeout, true)
}

// ReadIfExists is Read without blocking: it returns ErrNoMatch immediately
// when no matching entry is present.
func (s *Space) ReadIfExists(tmpl Entry, t *txn.Txn) (Entry, error) {
	return s.lookup(opRead, tmpl, t, 0, false)
}

// TakeIfExists is Take without blocking.
func (s *Space) TakeIfExists(tmpl Entry, t *txn.Txn) (Entry, error) {
	return s.lookup(opTake, tmpl, t, 0, false)
}

func (s *Space) lookup(kind opKind, tmpl Entry, t *txn.Txn, timeout time.Duration, block bool) (Entry, error) {
	ti, tv, err := infoFor(tmpl)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if _, err := s.joinLocked(t); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if se := s.findLocked(kind, ti, tv, t); se != nil {
		if err := s.applyLocked(kind, se, t); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		out := deepCopy(se.val).Interface()
		s.mu.Unlock()
		return out, nil
	}
	if !block {
		s.mu.Unlock()
		return nil, ErrNoMatch
	}
	if s.maxWaiters > 0 && s.waiting >= s.maxWaiters {
		s.stats.Overloaded++
		s.mu.Unlock()
		return nil, ErrOverloaded
	}
	w := &waiter{kind: kind, ti: ti, tmpl: tv, txn: t, w: s.clock.NewWaiter()}
	s.waiters[ti.name] = append(s.waiters[ti.name], w)
	s.stats.Blocked++
	s.waiting++
	s.mu.Unlock()

	w.w.Wait(timeout)

	s.mu.Lock()
	if w.result != nil {
		out := deepCopy(w.result.val).Interface()
		s.mu.Unlock()
		return out, nil
	}
	s.removeWaiterLocked(w)
	if w.err == nil {
		w.err = ErrTimeout
		s.stats.Timeouts++
	}
	s.mu.Unlock()
	return nil, w.err
}

// findLocked scans entries of template type for a visible match. When the
// type declares an index field and the template fixes its value, only
// that bucket is scanned.
func (s *Space) findLocked(kind opKind, ti *typeInfo, tv reflect.Value, t *txn.Txn) *storedEntry {
	if ti.keyField >= 0 {
		if kf := tv.Field(ti.keyField); !kf.IsZero() {
			return s.scanLocked(kind, ti, tv, t, s.byKey[ti.name], kf.String())
		}
	}
	return s.scanLocked(kind, ti, tv, t, nil, "")
}

// scanLocked walks either the full per-type list (buckets == nil) or one
// index bucket, compacting dead entries as it goes.
func (s *Space) scanLocked(kind opKind, ti *typeInfo, tv reflect.Value, t *txn.Txn, buckets map[string][]*storedEntry, key string) *storedEntry {
	now := s.clock.Now()
	var list []*storedEntry
	if buckets != nil {
		list = buckets[key]
	} else {
		list = s.byType[ti.name]
	}
	out := list[:0]
	var found *storedEntry
	for _, se := range list {
		if se.removed || (!se.expiry.IsZero() && now.After(se.expiry)) {
			if !se.removed {
				se.removed = true
				s.stats.Expired++
			}
			continue
		}
		out = append(out, se)
		if found != nil {
			continue
		}
		if !s.visibleLocked(se, t) {
			continue
		}
		if kind == opTake && !s.takeableLocked(se, t) {
			continue
		}
		if matches(ti, tv, se.val) {
			found = se
		}
	}
	if buckets != nil {
		if len(out) == 0 {
			delete(buckets, key)
		} else {
			buckets[key] = out
		}
	} else {
		s.byType[ti.name] = out
	}
	return found
}

func (s *Space) visibleLocked(se *storedEntry, t *txn.Txn) bool {
	if se.takenUnder != 0 {
		return false
	}
	if se.writtenUnder != 0 {
		return t != nil && t.ID() == se.writtenUnder
	}
	return true
}

func (s *Space) takeableLocked(se *storedEntry, t *txn.Txn) bool {
	for id := range se.readLocks {
		if t == nil || id != t.ID() {
			return false
		}
	}
	return true
}

// applyLocked records the effect of a successful read/take on entry se.
// A non-nil return (strict journal, non-txn take only) means the removal
// was not logged and the entry remains in the space untouched.
func (s *Space) applyLocked(kind opKind, se *storedEntry, t *txn.Txn) error {
	switch kind {
	case opRead:
		s.stats.Reads++
		if t != nil {
			if se.readLocks == nil {
				se.readLocks = make(map[uint64]int)
			}
			se.readLocks[t.ID()]++
			s.txns[t.ID()].reads = append(s.txns[t.ID()].reads, se)
		}
	case opTake:
		if t != nil {
			se.takenUnder = t.ID()
			s.txns[t.ID()].takes = append(s.txns[t.ID()].takes, se)
		} else {
			// Journal before removing: if the log rejects the record in
			// strict mode the take fails and the entry stays visible.
			if err := s.journalRemoveLocked(se); err != nil {
				return err
			}
			se.removed = true
		}
		s.stats.Takes++
	}
	return nil
}

// publishLocked makes a newly public entry visible: it satisfies blocked
// waiters and collects matching notifications to deliver after unlock.
// Read-waiters are satisfied before take-waiters so that a single arriving
// entry serves every blocked reader and still hands off to one taker —
// the policy that maximizes satisfied operations.
func (s *Space) publishLocked(se *storedEntry) []notification {
	for _, kind := range [...]opKind{opRead, opTake} {
		ws := s.waiters[se.ti.name]
		out := ws[:0]
		var taken bool
		for _, w := range ws {
			if w.kind != kind || taken || se.removed || se.takenUnder != 0 ||
				!s.visibleLocked(se, w.txn) || !matches(w.ti, w.tmpl, se.val) {
				out = append(out, w)
				continue
			}
			if w.txn != nil && !w.txn.Active() {
				w.err = ErrTxnInactive
				w.w.Wake()
				continue
			}
			if w.kind == opTake && !s.takeableLocked(se, w.txn) {
				out = append(out, w)
				continue
			}
			// A token take's memo record precedes its remove record in
			// the journal (ordering contract in memo.go).
			var rec *memoRec
			if w.kind == opTake && w.txn == nil && !w.tok.Zero() {
				rec = s.takeMemoRecLocked(se)
				s.journalMemoLocked(w.tok, rec)
			}
			if err := s.applyLocked(w.kind, se, w.txn); err != nil {
				// Strict journal rejected the removal: fail this waiter
				// loudly; the entry stays for others.
				w.err = err
				w.w.Wake()
				continue
			}
			if rec != nil {
				s.memoInsertLocked(w.tok, rec)
			}
			w.result = se
			w.w.Wake()
			if w.kind == opTake {
				taken = true
			}
		}
		s.waiting -= len(ws) - len(out)
		s.waiters[se.ti.name] = out
	}
	return s.matchNotifsLocked(se)
}

func (s *Space) removeWaiterLocked(w *waiter) {
	ws := s.waiters[w.ti.name]
	for i, x := range ws {
		if x == w {
			s.waiters[w.ti.name] = append(ws[:i], ws[i+1:]...)
			s.waiting--
			return
		}
	}
}

// joinLocked enrols the space in t (if non-nil) and returns its local
// state. Caller holds s.mu.
func (s *Space) joinLocked(t *txn.Txn) (*txnState, error) {
	if t == nil {
		return nil, nil
	}
	if !t.Active() {
		return nil, ErrTxnInactive
	}
	if ts, ok := s.txns[t.ID()]; ok {
		return ts, nil
	}
	if err := t.Join(s); err != nil {
		return nil, ErrTxnInactive
	}
	ts := &txnState{}
	s.txns[t.ID()] = ts
	return ts, nil
}

// Prepare implements txn.Participant. Local spaces can always commit.
func (s *Space) Prepare(uint64) error { return nil }

// Commit implements txn.Participant: provisional writes become public,
// take-locked entries are removed for good, read locks are released.
func (s *Space) Commit(id uint64) {
	s.mu.Lock()
	ts, ok := s.txns[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.txns, id)
	s.stats.TxnCommits++
	// The transaction has already committed at the coordinator; journal
	// failures here cannot unwind it. They are counted and retained by
	// the journal (Journal.Err) even in strict mode.
	// Writes are journaled before removes: replication ships the stream
	// in batches, and a primary killed mid-commit leaves the standby with
	// a prefix. Writes-first means a torn commit can only leave both the
	// result and its consumed input live (re-execution collapses at the
	// aggregator), never an input consumed with its output lost.
	var fire []notification
	for _, se := range ts.writes {
		if se.removed || se.takenUnder != 0 {
			// Taken under this same transaction: never became public,
			// nothing to journal (the takes loop below logs the removal).
			continue
		}
		se.writtenUnder = 0
		_ = s.journalWriteLocked(se)
		fire = append(fire, s.publishLocked(se)...)
	}
	for _, se := range ts.takes {
		se.takenUnder = 0
		se.removed = true
		_ = s.journalRemoveLocked(se)
	}
	for _, se := range ts.reads {
		s.unlockReadLocked(se, id)
	}
	s.mu.Unlock()
	deliver(fire)
}

// Abort implements txn.Participant: provisional writes vanish, take-locked
// entries become visible again, read locks are released.
func (s *Space) Abort(id uint64) {
	s.mu.Lock()
	ts, ok := s.txns[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.txns, id)
	s.stats.TxnAborts++
	var fire []notification
	for _, se := range ts.writes {
		se.removed = true
	}
	for _, se := range ts.reads {
		s.unlockReadLocked(se, id)
	}
	for _, se := range ts.takes {
		if se.removed {
			continue
		}
		se.takenUnder = 0
		fire = append(fire, s.publishLocked(se)...)
	}
	s.mu.Unlock()
	deliver(fire)
}

func (s *Space) unlockReadLocked(se *storedEntry, id uint64) {
	if se.readLocks == nil {
		return
	}
	if n := se.readLocks[id]; n > 1 {
		se.readLocks[id] = n - 1
	} else {
		delete(se.readLocks, id)
	}
}

// Count returns the number of public entries matching tmpl — a diagnostic
// extension (JavaSpaces05 added a similar contents query).
func (s *Space) Count(tmpl Entry) (int, error) {
	ti, tv, err := infoFor(tmpl)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	n := 0
	for _, se := range s.byType[ti.name] {
		if se.removed || se.writtenUnder != 0 || se.takenUnder != 0 {
			continue
		}
		if !se.expiry.IsZero() && now.After(se.expiry) {
			continue
		}
		if matches(ti, tv, se.val) {
			n++
		}
	}
	return n, nil
}

// EvictWhere removes every public, unlocked entry matching pred from the
// space, journaling each removal as an eviction (resharding, not
// consumption — see journalOp). It returns self-contained write records
// for the evicted entries, so a resharding migration can re-apply them to
// the destination shard, plus the number of matching entries it could NOT
// evict because a transaction holds them (take-locked, read-locked, or an
// uncommitted write): the caller retries once those transactions resolve.
// Capture and removal happen atomically under the space mutex, so no
// concurrent operation observes a half-evicted range.
func (s *Space) EvictWhere(pred func(Entry) bool) ([][]byte, int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	now := s.clock.Now()
	var ops []journalOp
	locked := 0
	for _, list := range s.byType {
		for _, se := range list {
			if se.removed || (!se.expiry.IsZero() && now.After(se.expiry)) {
				continue
			}
			if !pred(se.val.Interface()) {
				continue
			}
			if se.writtenUnder != 0 || se.takenUnder != 0 || len(se.readLocks) > 0 {
				locked++
				continue
			}
			// Journal first: under a strict journal an eviction that cannot
			// be logged does not happen (the entry stays, the caller sees
			// the error and retries the pass).
			if err := s.journalEvictLocked(se); err != nil {
				s.mu.Unlock()
				return nil, locked, err
			}
			se.removed = true
			ops = append(ops, journalOp{Kind: "write", Seq: se.id, Entry: se.val.Interface(), Expiry: se.expiry})
		}
	}
	s.mu.Unlock()

	records := make([][]byte, len(ops))
	for i, op := range ops {
		payload, err := encodeOp(op)
		if err != nil {
			return records[:i], locked, fmt.Errorf("tuplespace: evict entry %d: %w", op.Seq, err)
		}
		records[i] = payload
	}
	return records, locked, nil
}

// Stats returns a snapshot of the operation counters.
func (s *Space) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	for _, list := range s.byType {
		for _, se := range list {
			if !se.removed {
				st.EntriesLive++
			}
		}
	}
	for _, ws := range s.waiters {
		st.Waiting += len(ws)
	}
	return st
}

// TypeCounts returns the number of live entries per entry type (including
// txn-held entries), keyed by the fully qualified type name. Operators and
// the shard router use it to observe how entries balance across shards.
func (s *Space) TypeCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	counts := make(map[string]int, len(s.byType))
	for name, list := range s.byType {
		n := 0
		for _, se := range list {
			if se.removed || (!se.expiry.IsZero() && now.After(se.expiry)) {
				continue
			}
			n++
		}
		if n > 0 {
			counts[name] = n
		}
	}
	return counts
}

// EntryLease controls the lifetime of a written entry.
type EntryLease struct {
	space *Space
	entry *storedEntry
}

// Seq returns the space-assigned identity of the leased entry — the Seq
// its journal records carry.
func (l *EntryLease) Seq() uint64 {
	return l.entry.id
}

// Expiration returns the entry's current expiry time (zero for Forever).
func (l *EntryLease) Expiration() time.Time {
	l.space.mu.Lock()
	defer l.space.mu.Unlock()
	return l.entry.expiry
}

// Renew extends the lease to now+ttl. Renewing an expired or cancelled
// lease fails with ErrLeaseExpired.
func (l *EntryLease) Renew(ttl time.Duration) error {
	l.space.mu.Lock()
	defer l.space.mu.Unlock()
	se := l.entry
	now := l.space.clock.Now()
	if se.removed || (!se.expiry.IsZero() && now.After(se.expiry)) {
		return ErrLeaseExpired
	}
	if ttl > 0 {
		se.expiry = now.Add(ttl)
	} else {
		se.expiry = time.Time{}
	}
	return nil
}

// Cancel removes the entry immediately.
func (l *EntryLease) Cancel() error {
	l.space.mu.Lock()
	defer l.space.mu.Unlock()
	se := l.entry
	if se.removed {
		return ErrLeaseExpired
	}
	// Journal first: under a strict journal a cancellation that cannot
	// be logged does not happen.
	if err := l.space.journalRemoveLocked(se); err != nil {
		return err
	}
	se.removed = true
	return nil
}

// String describes the space for diagnostics.
func (s *Space) String() string {
	st := s.Stats()
	return fmt.Sprintf("tuplespace.Space{live=%d writes=%d takes=%d}", st.EntriesLive, st.Writes, st.Takes)
}
