package e2e

import (
	"testing"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/faults"
	"gospaces/internal/metrics"
	"gospaces/internal/replica"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
)

// The replication acceptance scenarios: a shard primary dying mid-job is
// absorbed by its hot standby — promotion within the failover timeout,
// ring retarget, zero lost and zero duplicated results, and no
// RestartShard anywhere. DedupResults stays on: a worker whose commit
// raced the crash may deliver its result twice, and collection must be
// idempotent against that (the same discipline the crash-restart chaos
// scenarios use).

// TestChaosFailoverKillEveryPrimaryMidJob is the acceptance scenario:
// with Replicas=1, every shard primary is killed (the in-process
// equivalent of kill -9: pump dead mid-beat, space closed, WAL shut)
// exactly once while the job is in flight. Each hot standby must promote
// itself — exactly one epoch bump per killed primary — the ring must
// retarget without any RestartShard call, and the job must complete with
// zero lost and zero duplicated results.
func TestChaosFailoverKillEveryPrimaryMidJob(t *testing.T) {
	const shards = 2
	jc := failoverJobConfig()
	script := func(f *core.Framework) {
		for i := 0; i < shards; i++ {
			f.Clock.Sleep(2 * time.Second)
			if err := f.KillShardPrimary(i); err != nil {
				t.Errorf("kill shard %d primary: %v", i, err)
				return
			}
			// Let the standby detect the silence and promote before the
			// next shard's primary dies, so the job is never down to zero
			// live shards.
			f.Clock.Sleep(4 * time.Second)
		}
	}
	res, job, fw := runFailover(t, nil, 4, core.Config{
		Shards:        shards,
		Replicas:      1,
		TxnTTL:        8 * time.Second,
		ResultTimeout: 5 * time.Minute,
		DedupResults:  true,
	}, jc, script)

	assertExactResults(t, job, jc)
	if got := res.Replication[metrics.CounterReplPromotions]; got != shards {
		t.Fatalf("promotions = %d, want exactly %d (one per killed primary)", got, shards)
	}
	for i := 0; i < shards; i++ {
		if e := fw.ShardEpoch(i); e != 2 {
			t.Fatalf("shard %d epoch = %d, want 2 (exactly one bump)", i, e)
		}
	}
	if got := res.Replication[metrics.CounterReplFailovers]; got == 0 {
		t.Fatalf("no router failovers recorded; expected at least one retarget onto a promoted backup")
	}
	if shipped := res.Replication[metrics.CounterReplShipped]; shipped == 0 {
		t.Fatalf("no journal records shipped; replication stream never ran")
	}
}

// TestChaosFailoverPartitionPrimaryFromBackup cuts the primary→backup
// replication link mid-job. The sync-mode primary degrades (nothing is
// acknowledged that the backup did not see), the backup promotes itself
// after the heartbeat silence, and when the partition heals the deposed
// primary's next heartbeat is fenced by the higher epoch — split brain
// closed with exactly one promotion.
func TestChaosFailoverPartitionPrimaryFromBackup(t *testing.T) {
	plan := faults.NewPlan(chaosSeed(t, 42))
	// The mirror stream dials from the shard's own address; cutting that
	// one direction severs replication while every client path stays up.
	plan.PartitionOneWay("master", "master.backup", 3*time.Second, 6*time.Second)

	jc := failoverJobConfig()
	res, job, fw := runFailover(t, plan, 4, core.Config{
		Shards:        1,
		Replicas:      1,
		TxnTTL:        8 * time.Second,
		ResultTimeout: 5 * time.Minute,
		DedupResults:  true,
	}, jc, nil)

	assertExactResults(t, job, jc)
	if got := res.Replication[metrics.CounterReplPromotions]; got != 1 {
		t.Fatalf("promotions = %d, want exactly 1 (one epoch, one promotion)", got)
	}
	if e := fw.ShardEpoch(0); e != 2 {
		t.Fatalf("shard epoch = %d, want 2", e)
	}
	if got := res.Replication[metrics.CounterReplFenced]; got == 0 {
		t.Fatalf("no fenced requests recorded; the deposed primary was never rejected")
	}

	// The deposed primary survived the whole run, but the higher epoch
	// fenced it: mutations through its old handle must be refused.
	_, err := fw.DeposedHandle(0).Write(montecarlo.Task{Job: "late", ID: 999}, nil, tuplespace.Forever)
	if err == nil {
		t.Fatalf("deposed primary accepted a write after promotion (split brain)")
	}
	if !replica.IsFenced(err) && err != replica.ErrUnavailable {
		t.Fatalf("deposed write error = %v, want fenced (or unavailable while degraded)", err)
	}
	if !replica.IsFenced(err) {
		t.Fatalf("deposed write error = %v, want replica.ErrFenced", err)
	}
}

// BenchmarkFailoverLatency measures the failover blackout window on the
// virtual clock: the span from KillShardPrimary to the ring serving at
// the promoted epoch (silence detection + promotion + retarget). CI
// archives the result as BENCH_failover.json; the vms/failover metric is
// virtual milliseconds, bounded below by Config.FailoverTimeout (2s
// default here).
func BenchmarkFailoverLatency(b *testing.B) {
	jc := failoverJobConfig()
	var total time.Duration
	for n := 0; n < b.N; n++ {
		clk := vclock.NewVirtual(chaosEpoch)
		fw := core.New(clk, core.Config{
			Shards:        1,
			Replicas:      1,
			TxnTTL:        8 * time.Second,
			ResultTimeout: 5 * time.Minute,
			DedupResults:  true,
			Workers:       cluster.Uniform(4, 1.0),
		})
		job := montecarlo.NewJob(jc)
		var lat time.Duration
		script := func(f *core.Framework) {
			f.Clock.Sleep(2 * time.Second)
			killAt := f.Clock.Now()
			if err := f.KillShardPrimary(0); err != nil {
				b.Errorf("kill: %v", err)
				return
			}
			for f.ShardEpoch(0) != 2 {
				f.Clock.Sleep(50 * time.Millisecond)
			}
			lat = f.Clock.Now().Sub(killAt)
		}
		var err error
		clk.Run(func() { _, err = fw.Run(job, script) })
		if err != nil {
			b.Fatalf("failover run: %v", err)
		}
		if lat == 0 {
			b.Fatal("failover never completed")
		}
		total += lat
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "vms/failover")
}

// TestChaosFailoverRejoinAndFailBack kills the primary, lets the standby
// promote, rejoins the dead node as the new hot standby (snapshot push +
// incremental tail), then kills the promoted primary too — service must
// fail back to the rejoined node at a third epoch with nothing lost.
func TestChaosFailoverRejoinAndFailBack(t *testing.T) {
	jc := failoverJobConfig()
	script := func(f *core.Framework) {
		f.Clock.Sleep(2 * time.Second)
		if err := f.KillShardPrimary(0); err != nil {
			t.Errorf("first kill: %v", err)
			return
		}
		// Wait out the promotion, then bring the dead node back as the
		// promoted primary's standby.
		for f.ShardEpoch(0) != 2 {
			f.Clock.Sleep(250 * time.Millisecond)
		}
		f.Clock.Sleep(time.Second)
		if err := f.RejoinShard(0); err != nil {
			t.Errorf("rejoin: %v", err)
			return
		}
		f.Clock.Sleep(2 * time.Second)
		if err := f.KillShardPrimary(0); err != nil {
			t.Errorf("second kill: %v", err)
			return
		}
	}
	res, job, fw := runFailover(t, nil, 4, core.Config{
		Shards:        1,
		Replicas:      1,
		TxnTTL:        8 * time.Second,
		ResultTimeout: 5 * time.Minute,
		DedupResults:  true,
	}, jc, script)

	assertExactResults(t, job, jc)
	if got := res.Replication[metrics.CounterReplPromotions]; got != 2 {
		t.Fatalf("promotions = %d, want 2 (failover, then fail-back)", got)
	}
	if e := fw.ShardEpoch(0); e != 3 {
		t.Fatalf("shard epoch = %d, want 3", e)
	}
	if got := res.Replication[metrics.CounterReplResyncs]; got == 0 {
		t.Fatalf("no resyncs recorded; the rejoined node never caught up by snapshot push")
	}
}
