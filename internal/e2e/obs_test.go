package e2e

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/faults"
	"gospaces/internal/metrics"
	"gospaces/internal/obs"
	"gospaces/internal/snmp"
	"gospaces/internal/vclock"
)

// runObserved runs the chaos-sized montecarlo job on a 2-shard framework
// with the observability layer on and every span retained.
func runObserved(t *testing.T, o *obs.Obs, plan *faults.Plan, workers int, cfg core.Config) (core.Result, *montecarlo.Job) {
	t.Helper()
	o.Tracer.KeepAll()
	cfg.Obs = o
	return runChaos(t, plan, workers, cfg)
}

// spansByName buckets one trace's spans by stage name.
func spansByName(spans []obs.Span) map[string][]obs.Span {
	out := make(map[string][]obs.Span)
	for _, s := range spans {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// TestObsCleanRunSpanTree: on a fault-free run every task must produce
// exactly one connected four-span trace — plan (root, master), take and
// execute (worker), aggregate (master) — and nothing else.
func TestObsCleanRunSpanTree(t *testing.T) {
	o := obs.New(1)
	res, _ := runObserved(t, o, nil, 3, core.Config{
		Shards:        2,
		ResultTimeout: 5 * time.Minute,
	})

	spans := o.Tracer.Spans()
	tasks := res.Metrics.Tasks
	if want := tasks * 4; len(spans) != want {
		t.Fatalf("recorded %d spans, want %d (%d tasks x 4 stages)", len(spans), want, tasks)
	}
	if orphans := obs.Orphans(spans); len(orphans) != 0 {
		t.Fatalf("%d orphaned spans: %+v", len(orphans), orphans)
	}
	traces := obs.Traces(spans)
	if len(traces) != tasks {
		t.Fatalf("%d traces, want %d (one per task)", len(traces), tasks)
	}
	for id, tr := range traces {
		by := spansByName(tr)
		for _, stage := range []string{"plan", "take", "execute", "aggregate"} {
			if len(by[stage]) != 1 {
				t.Fatalf("trace %x has %d %q spans, want 1", id, len(by[stage]), stage)
			}
		}
		plan, agg := by["plan"][0], by["aggregate"][0]
		if plan.Parent != 0 {
			t.Fatalf("trace %x: plan span has parent %x, want root", id, plan.Parent)
		}
		if agg.Parent != by["execute"][0].ID {
			t.Fatalf("trace %x: aggregate parented to %x, want the execute span %x",
				id, agg.Parent, by["execute"][0].ID)
		}
		for _, stage := range []string{"take", "execute"} {
			if s := by[stage][0]; s.Parent != plan.ID {
				t.Fatalf("trace %x: %s parented to %x, want the plan span %x", id, stage, s.Parent, plan.ID)
			}
		}
	}
}

// TestChaosWorkerCrashMidTaskKeepsTraceConnected: each worker executes a
// task and is then killed as it writes the result, so the work is lost
// and the task's transaction expires. The trace context rides inside the
// task entry, so the failed attempt's take and execute spans AND the
// retry's spans all land in the original task's trace — one connected
// tree per task, zero orphans, with the lost attempts visible as extra
// take/execute pairs.
func TestChaosWorkerCrashMidTaskKeepsTraceConnected(t *testing.T) {
	o := obs.New(1)
	plan := faults.NewPlan(chaosSeed(t, 42))
	// BeforeHandler on the result Write: the worker has already taken and
	// executed the task (both spans recorded) but the result never lands.
	plan.CrashOnCall("node/*", "", "space.Write*", 1, faults.BeforeHandler, "", 30*time.Second)

	const workers = 4
	res, job := runObserved(t, o, plan, workers, core.Config{
		Shards:        2,
		TxnTTL:        8 * time.Second,
		ResultTimeout: 5 * time.Minute,
	})
	crashes := int(res.FaultEvents[faults.EventCrash])
	if crashes != workers {
		t.Fatalf("crash events = %d, want %d", crashes, workers)
	}
	if price, err := job.Answer(); err != nil || price.Sims != chaosJobConfig().TotalSims {
		t.Fatalf("sims %d err %v, want %d", price.Sims, err, chaosJobConfig().TotalSims)
	}

	spans := o.Tracer.Spans()
	tasks := res.Metrics.Tasks
	if orphans := obs.Orphans(spans); len(orphans) != 0 {
		t.Fatalf("%d orphaned spans after crashes: %+v", len(orphans), orphans)
	}
	traces := obs.Traces(spans)
	if len(traces) != tasks {
		t.Fatalf("%d traces, want %d: retries must rejoin the original task's trace", len(traces), tasks)
	}
	retried, extraExecutes := 0, 0
	for id, tr := range traces {
		by := spansByName(tr)
		if len(by["plan"]) != 1 || len(by["aggregate"]) != 1 {
			t.Fatalf("trace %x: %d plan / %d aggregate spans, want exactly 1 each",
				id, len(by["plan"]), len(by["aggregate"]))
		}
		if len(by["take"]) == 0 || len(by["execute"]) == 0 {
			t.Fatalf("trace %x: missing take/execute spans", id)
		}
		if len(by["take"]) != len(by["execute"]) {
			t.Fatalf("trace %x: %d take spans but %d execute spans — every recorded take ran",
				id, len(by["take"]), len(by["execute"]))
		}
		if n := len(by["execute"]); n > 1 {
			retried++
			extraExecutes += n - 1
		}
	}
	if retried == 0 {
		t.Fatal("no trace shows a retried execution despite four crashed result writes")
	}
	// Every crash destroyed exactly one executed-but-unwritten result, so
	// the lost attempts across all traces must equal the crash count.
	if extraExecutes != crashes {
		t.Fatalf("traces show %d lost attempts, fault layer reports %d crashes", extraExecutes, crashes)
	}
}

// TestObsMetricsEndpointAfterRun: the HTTP surface over a finished run
// serves at least the eight core histograms in Prometheus text format,
// and the tail latencies it reports are sane (positive, and bounded by
// the run's parallel time).
func TestObsMetricsEndpointAfterRun(t *testing.T) {
	o := obs.New(1)
	res, _ := runObserved(t, o, nil, 3, core.Config{
		Shards:        2,
		ResultTimeout: 5 * time.Minute,
	})

	srv := httptest.NewServer(obs.Handler(o))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	body := string(raw)

	hists := strings.Count(body, "_seconds histogram")
	if hists < 8 {
		t.Fatalf("/metrics exposes %d histograms, want >= 8:\n%s", hists, body)
	}
	// Stages with modeled CPU cost must show positive tails; pure
	// transport stages may legitimately serve in zero virtual time.
	charged := map[string]bool{
		metrics.HistMasterPlan:      true,
		metrics.HistMasterAggregate: true,
		metrics.HistWorkerTask:      true,
	}
	for _, name := range []string{
		metrics.HistMasterPlan, metrics.HistMasterAggregate, metrics.HistMasterTakeResult,
		metrics.HistWorkerTask, metrics.HistShardServe(0), metrics.HistShardServe(1),
		metrics.HistSpacePrefix + "write", metrics.HistSpacePrefix + "take",
	} {
		h := o.Registry.Histogram(name)
		if h.Count() == 0 {
			t.Fatalf("histogram %q recorded nothing", name)
		}
		p99 := h.Quantile(0.99)
		if p99 < 0 || p99 > 2*res.Metrics.ParallelTime {
			t.Fatalf("histogram %q p99 = %v, not in [0, 2x parallel time %v]",
				name, p99, res.Metrics.ParallelTime)
		}
		if charged[name] && p99 == 0 {
			t.Fatalf("histogram %q p99 = 0 despite modeled per-item cost", name)
		}
	}
	if !strings.Contains(body, "gospaces_master_tasks_planned") {
		t.Fatalf("/metrics lacks the framework gauges:\n%s", body)
	}
}

// TestObsSNMPMatchesMetrics: the framework MIB served by the master's
// agent must answer GETs with exactly the values the registry (and thus
// /metrics) reports — one source of truth across both surfaces.
func TestObsSNMPMatchesMetrics(t *testing.T) {
	o := obs.New(1)
	clk := vclock.NewVirtual(chaosEpoch)
	fw := core.New(clk, core.Config{
		Workers:       cluster.Uniform(3, 1.0),
		Shards:        2,
		ResultTimeout: 5 * time.Minute,
		Obs:           o,
	})
	if fw.MIB == nil {
		t.Fatal("framework MIB not built despite Config.Obs")
	}
	job := montecarlo.NewJob(chaosJobConfig())

	type snapshot struct {
		planned, collected, pending, inflight, shard0, shard1 int64
	}
	var res core.Result
	var got snapshot
	var runErr error
	clk.Run(func() {
		res, runErr = fw.Run(job, nil)
		if runErr != nil {
			return
		}
		// Probe over the simulated network, exactly as a management
		// station would: SNMP GETs against the master's bound agent.
		mgr := snmp.NewManager(fw.Cluster.Community,
			&snmp.RPCExchanger{C: fw.Cluster.Net.DialAs(fw.Cluster.MasterAddr, fw.Cluster.MasterAddr)})
		get := func(oid snmp.OID) int64 {
			v, err := mgr.GetInt(oid)
			if err != nil {
				t.Errorf("SNMP GET %v: %v", oid, err)
			}
			return v
		}
		got = snapshot{
			planned:   get(snmp.OIDFrameworkTasksPlanned),
			collected: get(snmp.OIDFrameworkResultsCollected),
			pending:   get(snmp.OIDFrameworkTasksPending),
			inflight:  get(snmp.OIDFrameworkTasksInFlight),
			shard0:    get(snmp.OIDFrameworkShardOps(0)),
			shard1:    get(snmp.OIDFrameworkShardOps(1)),
		}
	})
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}

	want := snapshot{
		planned:   int64(res.Metrics.Tasks),
		collected: int64(res.Metrics.Tasks),
		pending:   0,
		inflight:  0,
		shard0:    int64(o.Registry.Histogram(metrics.HistShardServe(0)).Count()),
		shard1:    int64(o.Registry.Histogram(metrics.HistShardServe(1)).Count()),
	}
	if got != want {
		t.Fatalf("SNMP snapshot %+v, want %+v", got, want)
	}
	// And the same registry gauges back the /metrics page.
	for name, wantV := range map[string]int64{
		metrics.GaugeTasksPlanned:     want.planned,
		metrics.GaugeResultsCollected: want.collected,
	} {
		if v, ok := o.Registry.Gauge(name); !ok || v != wantV {
			t.Fatalf("registry gauge %q = %d (ok=%v), want %d", name, v, ok, wantV)
		}
	}
}
