package e2e

import (
	"fmt"
	"testing"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/discovery"
	"gospaces/internal/master"
	"gospaces/internal/netmgmt"
	"gospaces/internal/nodeconfig"
	"gospaces/internal/rulebase"
	"gospaces/internal/snmp"
	"gospaces/internal/space"
	"gospaces/internal/sysmon"
	"gospaces/internal/transport"
	"gospaces/internal/vclock"
	"gospaces/internal/worker"
)

// node is one worker deployment over real sockets.
type node struct {
	name    string
	machine *sysmon.Machine
	w       *worker.Worker
	sigL    *transport.TCPListener
	agent   *snmp.UDPAgent
}

func startNode(t *testing.T, clk vclock.Clock, name, spaceAddr string, job master.Job) *node {
	t.Helper()
	machine := sysmon.NewMachine(clk, name, 1)

	spaceConn, err := transport.DialTCP(spaceAddr)
	if err != nil {
		t.Fatal(err)
	}
	codeConn, err := transport.DialTCP(spaceAddr)
	if err != nil {
		t.Fatal(err)
	}
	engine := nodeconfig.NewEngine(nodeconfig.ExecContext{Clock: clk, Machine: machine, Node: name}, codeConn)
	w := worker.New(worker.Config{
		Node:         name,
		Clock:        clk,
		Machine:      machine,
		Space:        space.NewProxy(spaceConn),
		Engine:       engine,
		Program:      job.Name(),
		TaskTemplate: job.TaskTemplate(),
		TxnTTL:       time.Minute,
		PollTimeout:  50 * time.Millisecond,
		ParkPoll:     50 * time.Millisecond,
	})

	sigSrv := transport.NewServer()
	w.Bind(sigSrv)
	sigL, err := transport.ListenTCP("127.0.0.1:0", sigSrv)
	if err != nil {
		t.Fatal(err)
	}

	mib := snmp.NewMIB()
	mib.Register(snmp.OIDHrProcessorLoad, func() snmp.Value {
		return snmp.Integer(int64(machine.RecordSample().Usage + 0.5))
	})
	mib.Register(snmp.OIDBackgroundLoad, func() snmp.Value {
		return snmp.Integer(int64(machine.BackgroundLoad() + 0.5))
	})
	agent, err := snmp.ListenUDP("127.0.0.1:0", snmp.NewAgent("public", mib))
	if err != nil {
		t.Fatal(err)
	}
	go w.Run()
	return &node{name: name, machine: machine, w: w, sigL: sigL, agent: agent}
}

func (n *node) stop() {
	n.w.Shutdown()
	_ = n.sigL.Close()
	_ = n.agent.Close()
}

// TestFullDeploymentOverTCPAndUDP stands up the complete federation the
// cmd tools deploy — lookup, master (space + code server), two workers,
// network management — over real localhost sockets, and runs a small
// option-pricing job end to end with rule-base-driven starts.
func TestFullDeploymentOverTCPAndUDP(t *testing.T) {
	clk := vclock.NewReal()

	// Lookup service.
	lookupSrv := transport.NewServer()
	discovery.NewService(discovery.NewRegistry(clk), lookupSrv)
	lookupL, err := transport.ListenTCP("127.0.0.1:0", lookupSrv)
	if err != nil {
		t.Fatal(err)
	}
	defer lookupL.Close()

	// Master: space service + code server, registered with lookup.
	cfg := montecarlo.DefaultJobConfig()
	cfg.TotalSims = 400
	cfg.SimsPerTask = 100 // 4 subtasks
	cfg.WorkPerSubtask = 5 * time.Millisecond
	cfg.PlanningCostPerTask = time.Millisecond
	cfg.AggregationCostPerResult = 0
	job := montecarlo.NewJob(cfg)

	local := space.NewLocal(clk)
	masterSrv := transport.NewServer()
	space.NewService(local, masterSrv)
	cs := nodeconfig.NewCodeServer()
	cs.Publish(job.Bundle())
	cs.Bind(masterSrv)
	masterL, err := transport.ListenTCP("127.0.0.1:0", masterSrv)
	if err != nil {
		t.Fatal(err)
	}
	defer masterL.Close()

	lookupConn, err := transport.DialTCP(lookupL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer lookupConn.Close()
	lc := discovery.NewClient(lookupConn)
	if _, err := lc.Register(discovery.ServiceItem{
		Name: "javaspace", Address: masterL.Addr(),
		Attributes: map[string]string{"type": "javaspace"},
	}, time.Hour); err != nil {
		t.Fatal(err)
	}

	// Workers discover the space through the lookup service, exactly as
	// cmd/worker does.
	item, err := lc.LookupOne(map[string]string{"type": "javaspace"})
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*node
	for i := 0; i < 2; i++ {
		n := startNode(t, clk, fmt.Sprintf("tcp-node%02d", i+1), item.Address, job)
		defer n.stop()
		nodes = append(nodes, n)
	}

	// Network management polls SNMP over UDP and signals over TCP.
	mod := netmgmt.New(netmgmt.Config{Clock: clk, PollInterval: 50 * time.Millisecond})
	for _, n := range nodes {
		sig, err := transport.DialTCP(n.sigL.Addr())
		if err != nil {
			t.Fatal(err)
		}
		mod.Register(n.name, &snmp.UDPExchanger{Addr: n.agent.Addr(), Timeout: time.Second}, sig)
	}
	go mod.Run()
	defer mod.Shutdown()

	m := master.New(master.Config{Clock: clk, Space: local, ResultTimeout: 30 * time.Second})
	rm, err := m.RunJob(job)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Tasks != 4 {
		t.Fatalf("tasks = %d", rm.Tasks)
	}
	price, err := job.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if price.Midpoint() <= 0 {
		t.Fatalf("price %+v", price)
	}

	// The rule base started both workers.
	starts := 0
	for _, ev := range mod.Events() {
		if ev.Err == nil && ev.Signal == rulebase.SignalStart {
			starts++
		}
	}
	if starts != 2 {
		t.Fatalf("start signals = %d, want 2", starts)
	}
	// Workers bump their counters just after the commit that publishes
	// the result, so give them a moment to settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		done := 0
		for _, n := range nodes {
			done += n.w.Stats().TasksDone
		}
		if done == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers completed %d tasks, want 4", done)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeploymentWorkerStopsUnderLoadOverUDP checks the rule-base loop over
// real sockets: raising a node's background load pauses/stops its worker.
func TestDeploymentWorkerStopsUnderLoadOverUDP(t *testing.T) {
	clk := vclock.NewReal()
	machine := sysmon.NewMachine(clk, "loaded", 1)
	mib := snmp.NewMIB()
	mib.Register(snmp.OIDHrProcessorLoad, func() snmp.Value {
		return snmp.Integer(int64(machine.Usage() + 0.5))
	})
	mib.Register(snmp.OIDBackgroundLoad, func() snmp.Value {
		return snmp.Integer(int64(machine.BackgroundLoad() + 0.5))
	})
	agent, err := snmp.ListenUDP("127.0.0.1:0", snmp.NewAgent("public", mib))
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	w := worker.New(worker.Config{Node: "loaded", Clock: clk})
	sigSrv := transport.NewServer()
	w.Bind(sigSrv)
	sigL, err := transport.ListenTCP("127.0.0.1:0", sigSrv)
	if err != nil {
		t.Fatal(err)
	}
	defer sigL.Close()

	mod := netmgmt.New(netmgmt.Config{Clock: clk, PollInterval: 20 * time.Millisecond})
	sig, err := transport.DialTCP(sigL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	mod.Register("loaded", &snmp.UDPExchanger{Addr: agent.Addr(), Timeout: time.Second}, sig)

	// Round 1: idle → Start.
	mod.PollOnce()
	if st, _ := mod.WorkerState("loaded"); st != rulebase.StateRunning {
		t.Fatalf("state = %v, want Running", st)
	}
	// Round 2: saturate → Stop.
	machine.SetConstSource("user", 95)
	mod.PollOnce()
	if st, _ := mod.WorkerState("loaded"); st != rulebase.StateStopped {
		t.Fatalf("state = %v, want Stopped", st)
	}
	mod.Unregister("loaded")
}
