// Package e2e holds end-to-end deployment tests that exercise the same
// wiring as the cmd tools: the lookup service, space service and signal
// endpoints over real TCP, and SNMP agents over real UDP, all on
// localhost with the wall clock.
package e2e
