// Package harness assembles and drives in-process framework deployments
// for the end-to-end suites. It is the one place that knows how to spin a
// simulated cluster up — virtual clock, worker nodes, fault plan, job —
// and run it to completion, so the hand-written chaos/failover/reshard/
// durability scenarios and the randomized scenario runner (package
// scenario) share identical spin-up and teardown instead of five private
// copies.
//
// The package deliberately has no testing dependency: failures surface as
// errors, so the scenario soak (cmd/expt scenario) can use it from a
// plain binary while the _test.go wrappers in internal/e2e turn the same
// errors into t.Fatal.
package harness

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/faults"
	"gospaces/internal/vclock"
)

// Epoch is the canonical virtual-clock start of every e2e deployment —
// the date of the source paper's venue. A fixed epoch keeps scripted
// fault windows and replayed schedules identical across runs.
var Epoch = time.Date(2001, time.March, 1, 0, 0, 0, 0, time.UTC)

// SeedEnv is the environment variable CI uses to pin (or vary) seeded
// schedules without editing tests.
const SeedEnv = "GOSPACES_FAULT_SEED"

// SeedFromEnv returns the seed override from SeedEnv, or def when unset.
func SeedFromEnv(def int64) (int64, error) {
	s := os.Getenv(SeedEnv)
	if s == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %w", SeedEnv, s, err)
	}
	return n, nil
}

// ChaosJobConfig sizes the option-pricing bag of tasks for chaos runs:
// small enough to finish quickly under the virtual clock, spread across
// shards so worker takes exercise the scatter path.
func ChaosJobConfig() montecarlo.JobConfig {
	cfg := montecarlo.DefaultJobConfig()
	cfg.TotalSims = 1200
	cfg.SimsPerTask = 50 // → 24 subtasks
	cfg.WorkPerSubtask = 150 * time.Millisecond
	cfg.PlanningCostPerTask = 10 * time.Millisecond
	cfg.AggregationCostPerResult = 5 * time.Millisecond
	cfg.ShardSpread = true
	return cfg
}

// FailoverJobConfig sizes the bag of tasks so the job comfortably spans
// scripted kill/heal windows under the virtual clock. The modeled work is
// charged as WorkPerSubtask×Sims/100, so total execution time is
// TotalSims/100 × WorkPerSubtask / workers — 3 s here gives ≈9 s of
// execution on 4 workers, well past every scripted kill.
func FailoverJobConfig() montecarlo.JobConfig {
	cfg := ChaosJobConfig()
	cfg.WorkPerSubtask = 3 * time.Second
	return cfg
}

// RunSpec describes one in-process cluster run.
type RunSpec struct {
	// Epoch is the virtual clock's start time (zero value: Epoch).
	Epoch time.Time
	// Workers is the cluster size; nodes are uniform 1.0-speed machines
	// named node01…nodeNN. Ignored when Config.Workers is already set.
	Workers int
	// Plan, when non-nil, is installed as Config.Faults.
	Plan *faults.Plan
	// Config is the deployment shape. Workers and Faults are filled in
	// from the fields above.
	Config core.Config
	// Job is the application to run.
	Job core.Job
	// Script, when non-nil, runs concurrently with the job on the
	// framework's clock — the chaos scenarios' control plane.
	Script func(*core.Framework)
}

// Outcome is everything a completed run exposes for assertions.
type Outcome struct {
	Result    core.Result
	Framework *core.Framework
	Clock     *vclock.Virtual
}

// Run assembles a framework from spec and executes the job to completion
// under a fresh virtual clock. The returned error is the run's own error
// (collection timeout, discovery failure); invariant checking is the
// caller's business.
func Run(spec RunSpec) (Outcome, error) {
	epoch := spec.Epoch
	if epoch.IsZero() {
		epoch = Epoch
	}
	clk := vclock.NewVirtual(epoch)
	cfg := spec.Config
	if cfg.Workers == nil {
		cfg.Workers = cluster.Uniform(spec.Workers, 1.0)
	}
	if spec.Plan != nil {
		cfg.Faults = spec.Plan
	}
	fw := core.New(clk, cfg)
	var res core.Result
	var err error
	clk.Run(func() { res, err = fw.Run(spec.Job, spec.Script) })
	return Outcome{Result: res, Framework: fw, Clock: clk}, err
}

// ExactSims fails (with a descriptive error) unless job aggregated
// exactly want simulations — short means lost work, over means
// duplicated work — and every planned task produced one result.
func ExactSims(job *montecarlo.Job, want int) error {
	price, err := job.Answer()
	if err != nil {
		return fmt.Errorf("answer: %w", err)
	}
	if price.Sims != want {
		return fmt.Errorf("aggregated %d simulations, want exactly %d (lost or duplicated work)", price.Sims, want)
	}
	return nil
}
