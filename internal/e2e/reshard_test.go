package e2e

import (
	"fmt"
	"testing"
	"time"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/metrics"
	"gospaces/internal/space"
	"gospaces/internal/vclock"
)

// The elastic resharding acceptance scenarios: a hot shard splits while
// the job keeps running — snapshot fork, live journal tail, epoch-fenced
// cutover — and a cold split-born shard merges back, with zero lost
// entries in either direction. DedupResults stays on throughout: a
// worker whose result write raced a reshard boundary may deliver twice,
// and collection must absorb that (the same discipline as failover).

// TestReshardManualSplitAndMergeMidJob drives the split and merge hooks
// directly while a job is in flight: split shard 0 mid-run, verify the
// topology advanced and entries moved, merge the child back, and require
// an exact result count at the end.
func TestReshardManualSplitAndMergeMidJob(t *testing.T) {
	jc := failoverJobConfig()
	var rep core.SplitReport
	var splitErr, mergeErr error
	script := func(f *core.Framework) {
		f.Clock.Sleep(2 * time.Second)
		rep, splitErr = f.SplitShard(f.Cluster.MasterAddr)
		if splitErr != nil {
			return
		}
		// Let the split-born shard serve for a while, then fold it back.
		f.Clock.Sleep(4 * time.Second)
		mergeErr = f.MergeShards(rep.Child)
	}
	res, job, fw := runFailover(t, nil, 4, core.Config{
		Shards:        1,
		Elastic:       true,
		TxnTTL:        8 * time.Second,
		ResultTimeout: 5 * time.Minute,
		DedupResults:  true,
	}, jc, script)

	if splitErr != nil {
		t.Fatalf("split: %v", splitErr)
	}
	if mergeErr != nil {
		t.Fatalf("merge: %v", mergeErr)
	}
	assertExactResults(t, job, jc)
	// Epoch 1 seeds the elastic topology, 2 is the split, 3 the merge.
	if e := fw.TopologyEpoch(); e != 3 {
		t.Fatalf("topology epoch = %d, want 3", e)
	}
	if rep.Parent != fw.Cluster.MasterAddr || rep.Child == "" {
		t.Fatalf("split report %+v", rep)
	}
	if got := res.Resharding[metrics.CounterReshardSplits]; got != 1 {
		t.Fatalf("splits = %d, want 1", got)
	}
	if got := res.Resharding[metrics.CounterReshardMerges]; got != 1 {
		t.Fatalf("merges = %d, want 1", got)
	}
	if res.Resharding[metrics.CounterReshardMigrated] == 0 {
		t.Fatal("no entries migrated across the split")
	}
	if len(fw.SplitBorn()) != 0 {
		t.Fatalf("split-born shards still live after merge: %v", fw.SplitBorn())
	}
	if err := fw.ReshardErr(); err != nil {
		t.Fatalf("reshard error: %v", err)
	}
}

// TestChaosReshardAutoSplitUnderSkew runs the load-driven rebalancer
// against a deliberately skewed deployment: one shard, ShardSpread tasks
// (so the whole bag of keyed entries lands on that shard), and a split
// threshold well under the job's op rate. The controller must observe
// the hot EWMA, split the shard mid-job exactly once (the long cooldown
// forbids a second action), and the job must finish exactly.
func TestChaosReshardAutoSplitUnderSkew(t *testing.T) {
	jc := failoverJobConfig()
	res, job, fw := runFailover(t, nil, 4, core.Config{
		Shards:            1,
		AutoShard:         true,
		SplitThreshold:    2, // ops/sec — far below the job's sustained rate
		ReshardInterval:   500 * time.Millisecond,
		ReshardHysteresis: 2,
		ReshardCooldown:   2 * time.Minute, // one action per run, no flap
		TxnTTL:            8 * time.Second,
		ResultTimeout:     5 * time.Minute,
		DedupResults:      true,
	}, jc, nil)

	assertExactResults(t, job, jc)
	if got := res.Resharding[metrics.CounterReshardSplits]; got != 1 {
		t.Fatalf("automatic splits = %d, want exactly 1", got)
	}
	if got := res.Resharding[metrics.CounterReshardMerges]; got != 0 {
		t.Fatalf("merges = %d during cooldown, want 0", got)
	}
	if e := fw.TopologyEpoch(); e != 2 {
		t.Fatalf("topology epoch = %d, want 2 (seed + one split)", e)
	}
	if born := fw.SplitBorn(); len(born) != 1 {
		t.Fatalf("split-born shards = %v, want exactly one", born)
	}
	if res.Resharding[metrics.CounterReshardMigrated] == 0 {
		t.Fatal("the automatic split migrated nothing")
	}
	if err := fw.ReshardErr(); err != nil {
		t.Fatalf("reshard error: %v", err)
	}
}

// TestChaosReshardKillSourcePrimaryMidSplit kills the source shard's
// primary while a split is settling — workers hold task entries under 3s
// transactions at that point, so the eviction sweep is still waiting
// them out when the space dies under it. The split is past its commit
// point and must run to completion anyway: the hot standby promotes, the
// lame-duck sweep re-arms against the promoted node, and the job ends
// with zero lost results.
func TestChaosReshardKillSourcePrimaryMidSplit(t *testing.T) {
	jc := failoverJobConfig()
	var rep core.SplitReport
	var splitErr, killErr error
	script := func(f *core.Framework) {
		f.Clock.Sleep(2 * time.Second)
		g := vclock.NewGroup(f.Clock)
		g.Go(func() { rep, splitErr = f.SplitShard(f.Cluster.MasterAddr) })
		// Land the kill inside the split, after the fork has seeded the
		// child and while the settle sweep waits on workers' locks.
		f.Clock.Sleep(300 * time.Millisecond)
		killErr = f.KillShardPrimary(0)
		g.Wait()
	}
	res, job, fw := runFailover(t, nil, 4, core.Config{
		Shards:        1,
		Replicas:      1,
		Elastic:       true,
		TxnTTL:        8 * time.Second,
		ResultTimeout: 5 * time.Minute,
		DedupResults:  true,
	}, jc, script)

	if killErr != nil {
		t.Fatalf("kill: %v", killErr)
	}
	if splitErr != nil {
		t.Fatalf("split across a source failover: %v", splitErr)
	}
	assertExactResults(t, job, jc)
	if got := res.Replication[metrics.CounterReplPromotions]; got != 1 {
		t.Fatalf("promotions = %d, want exactly 1", got)
	}
	if e := fw.ShardEpoch(0); e != 2 {
		t.Fatalf("source shard epoch = %d, want 2 (one promotion)", e)
	}
	if e := fw.TopologyEpoch(); e != 2 {
		t.Fatalf("topology epoch = %d, want 2 (seed + split)", e)
	}
	if got := res.Resharding[metrics.CounterReshardSplits]; got != 1 {
		t.Fatalf("splits = %d, want 1", got)
	}
	if born := fw.SplitBorn(); len(born) != 1 || born[0] != rep.Child {
		t.Fatalf("split-born shards = %v, want [%s]", born, rep.Child)
	}
	// A settle interrupted by the kill records an error by design — the
	// protocol's commit point is the reason the split still finished.
	if err := fw.ReshardErr(); err != nil {
		t.Logf("reshard recovered from: %v", err)
	}
}

// TestChaosReshardSplitBornCrashRestart crash-restarts a durable
// split-born shard after its cutover: the in-memory space is dropped and
// the child recovers from the WAL its migration applier populated. The
// recovered shard rejoins the ring under the same address at the same
// topology and the job completes exactly.
func TestChaosReshardSplitBornCrashRestart(t *testing.T) {
	jc := failoverJobConfig()
	var rep core.SplitReport
	var info space.RecoveryInfo
	var splitErr, restartErr error
	script := func(f *core.Framework) {
		f.Clock.Sleep(2 * time.Second)
		rep, splitErr = f.SplitShard(f.Cluster.MasterAddr)
		if splitErr != nil {
			return
		}
		// Past the lame-duck drain: the child now serves its arc alone.
		f.Clock.Sleep(2 * time.Second)
		idx, ok := f.ShardIndex(rep.Child)
		if !ok {
			restartErr = fmt.Errorf("no shard index for split-born %q", rep.Child)
			return
		}
		info, restartErr = f.RestartShard(idx)
	}
	res, job, fw := runFailover(t, nil, 4, core.Config{
		Shards:        1,
		Elastic:       true,
		DataDir:       t.TempDir(),
		TxnTTL:        8 * time.Second,
		ResultTimeout: 5 * time.Minute,
		DedupResults:  true,
	}, jc, script)

	if splitErr != nil {
		t.Fatalf("split: %v", splitErr)
	}
	if restartErr != nil {
		t.Fatalf("restart split-born shard: %v", restartErr)
	}
	assertExactResults(t, job, jc)
	if info.Restored == 0 {
		t.Fatal("the split-born shard recovered nothing from its WAL; the migration was never journaled")
	}
	if e := fw.TopologyEpoch(); e != 2 {
		t.Fatalf("topology epoch = %d, want 2 (a restart must not move the ring)", e)
	}
	if got := res.Resharding[metrics.CounterReshardSplits]; got != 1 {
		t.Fatalf("splits = %d, want 1", got)
	}
}

// shardTakes sums successful takes across every shard the framework
// hosts. During the execution phase (the master plans first, collects
// after, per the paper's structure) every take is a worker consuming a
// task, so the delta over a window is task throughput.
func shardTakes(f *core.Framework) uint64 {
	var n uint64
	for _, l := range f.Shards {
		n += l.TS.Stats().Takes
	}
	return n
}

// BenchmarkReshardSplit measures the two numbers the elastic subsystem
// exists for, on the virtual clock: the split blackout (the master's
// cutover span plus one WatchInterval of worker ring convergence — the
// window in which a not-yet-converged router can still miss) and the
// post-split throughput gain on a skewed workload. SpaceOpCost models a
// saturated shard server: one gate serializes every op pre-split, two
// gates split the load after. CI archives the stream as
// BENCH_reshard.json.
func BenchmarkReshardSplit(b *testing.B) {
	jc := montecarlo.DefaultJobConfig()
	jc.TotalSims = 3000
	jc.SimsPerTask = 10 // → 300 subtasks: enough bag to stay gate-bound
	jc.WorkPerSubtask = 5 * time.Millisecond
	jc.PlanningCostPerTask = time.Millisecond
	jc.AggregationCostPerResult = 0
	jc.ShardSpread = true

	const watch = 500 * time.Millisecond
	const window = 4 * time.Second
	var blackoutTotal time.Duration
	var ratioTotal float64
	for n := 0; n < b.N; n++ {
		clk := vclock.NewVirtual(chaosEpoch)
		fw := core.New(clk, core.Config{
			Shards:        1,
			Elastic:       true,
			SpaceOpCost:   20 * time.Millisecond,
			WatchInterval: watch,
			TxnTTL:        8 * time.Second,
			ResultTimeout: 5 * time.Minute,
			DedupResults:  true,
			Workers:       cluster.Uniform(4, 1.0),
		})
		job := montecarlo.NewJob(jc)
		var rep core.SplitReport
		var splitErr error
		var pre, post float64
		script := func(f *core.Framework) {
			f.Clock.Sleep(2 * time.Second) // warm-up: all four workers cycling
			t0 := shardTakes(f)
			f.Clock.Sleep(window)
			pre = float64(shardTakes(f)-t0) / window.Seconds()
			rep, splitErr = f.SplitShard(f.Cluster.MasterAddr)
			if splitErr != nil {
				return
			}
			f.Clock.Sleep(watch) // let every worker's watcher converge
			t1 := shardTakes(f)
			f.Clock.Sleep(window)
			post = float64(shardTakes(f)-t1) / window.Seconds()
		}
		var err error
		clk.Run(func() { _, err = fw.Run(job, script) })
		if err != nil {
			b.Fatalf("reshard bench run: %v", err)
		}
		if splitErr != nil {
			b.Fatalf("split: %v", splitErr)
		}
		blackout := rep.Cutover + watch
		if blackout >= 2*time.Second {
			b.Fatalf("split blackout %v is not under the 2s failover bar", blackout)
		}
		if pre <= 0 {
			b.Fatal("no tasks flowed in the pre-split window")
		}
		ratio := post / pre
		if ratio < 1.5 {
			b.Fatalf("post-split throughput %.1f/s over pre-split %.1f/s = %.2fx, want ≥1.5x", post, pre, ratio)
		}
		blackoutTotal += blackout
		ratioTotal += ratio
	}
	b.ReportMetric(float64(blackoutTotal.Milliseconds())/float64(b.N), "vms/split-blackout")
	b.ReportMetric(ratioTotal/float64(b.N), "x/split-throughput")
}
