package e2e

import (
	"testing"
	"time"

	"gospaces/internal/core"
	"gospaces/internal/faults"
	"gospaces/internal/metrics"
	"gospaces/internal/obs"
)

// TestFlightFailoverRetrySpanTree is the control-plane tracing acceptance
// scenario: shard 0's primary is killed mid-job while delay faults push
// exactly-once mutations into ambiguous op timeouts. The promotion must
// record one root "failover" span, every router retarget must join it as
// a child (the trace context rides the promoted registration's attrs),
// and every recorded exactly-once retry attempt must parent under a
// retarget — one connected span tree, zero orphans. The flight recorder
// must hold the same story as a causally consistent merged timeline:
// kill, then promotion, then retargets, in vclock order.
func TestFlightFailoverRetrySpanTree(t *testing.T) {
	o := obs.New(1)
	o.Tracer.KeepAll()
	plan := faults.NewPlan(chaosSeed(t, 42))
	// 800 ms of injected latency against a 500 ms op deadline: the call
	// lands but the reply is lost to the caller — the ambiguous outcome
	// the tokened retry path exists for.
	plan.DelayCalls("node/*", "master*", "space.Write", 800*time.Millisecond, 0.25)
	plan.DelayCalls("node/*", "master*", "space.TxnCommit", 800*time.Millisecond, 0.2)

	jc := failoverJobConfig()
	script := func(f *core.Framework) {
		f.Clock.Sleep(2 * time.Second)
		if err := f.KillShardPrimary(0); err != nil {
			t.Errorf("kill shard 0 primary: %v", err)
		}
	}
	res, job, fw := runFailover(t, plan, 4, core.Config{
		Shards:        2,
		Replicas:      1,
		TxnTTL:        8 * time.Second,
		OpTimeout:     500 * time.Millisecond,
		ExactlyOnce:   true,
		DedupResults:  true,
		ResultTimeout: 10 * time.Minute,
		Obs:           o,
	}, jc, script)

	assertExactResults(t, job, jc)
	if got := res.Replication[metrics.CounterReplPromotions]; got != 1 {
		t.Fatalf("promotions = %d, want exactly 1", got)
	}
	if res.Retries[metrics.CounterRetryAmbiguous] == 0 {
		t.Fatal("no ambiguous outcomes despite delay faults past the op deadline")
	}

	// The span tree: one failover root, retargets as its children, retry
	// attempts under retargets. Task-stage spans (plan/take/...) live in
	// their own per-task traces and are checked by the obs suite; here we
	// only demand global connectedness plus the control-plane shape.
	spans := o.Tracer.Spans()
	if orphans := obs.Orphans(spans); len(orphans) != 0 {
		t.Fatalf("%d orphaned spans: %+v", len(orphans), orphans)
	}
	by := spansByName(spans)
	if n := len(by["failover"]); n != 1 {
		t.Fatalf("%d failover root spans, want 1", n)
	}
	root := by["failover"][0]
	if root.Parent != 0 {
		t.Fatalf("failover span has parent %x, want root", root.Parent)
	}
	retargets := by["failover:retarget"]
	if len(retargets) == 0 {
		t.Fatal("no failover:retarget spans; routers never joined the promotion's trace")
	}
	retargetIDs := make(map[uint64]bool, len(retargets))
	for _, s := range retargets {
		if s.Trace != root.Trace || s.Parent != root.ID {
			t.Fatalf("retarget span (node %s) in trace %x parent %x, want child of failover %x/%x",
				s.Node, s.Trace, s.Parent, root.Trace, root.ID)
		}
		retargetIDs[s.ID] = true
	}
	retries := by["retry:attempt"]
	if len(retries) == 0 {
		t.Fatal("no retry:attempt spans recorded after the retarget")
	}
	for _, s := range retries {
		if s.Trace != root.Trace {
			t.Fatalf("retry span (node %s) in trace %x, want the failover trace %x", s.Node, s.Trace, root.Trace)
		}
		if !retargetIDs[s.Parent] {
			t.Fatalf("retry span (node %s) parented to %x, not a retarget span", s.Node, s.Parent)
		}
	}

	// The flight recorder tells the same story, causally ordered.
	dump := o.Fl().Dump()
	if err := obs.CheckTimeline(dump.Events); err != nil {
		t.Fatalf("merged timeline not causally consistent: %v", err)
	}
	ring0, ok := fw.RingID(0)
	if !ok {
		t.Fatal("no ring ID for shard 0")
	}
	var kill, promote *obs.FlightEvent
	for i := range dump.Events {
		ev := &dump.Events[i]
		if ev.Shard != ring0 {
			continue
		}
		switch ev.Kind {
		case obs.EventKill:
			kill = ev
		case obs.EventPromote:
			promote = ev
		}
	}
	if kill == nil || promote == nil {
		t.Fatalf("timeline lacks the kill/promotion (kill=%v promote=%v)", kill, promote)
	}
	if kill.Clk >= promote.Clk {
		t.Fatalf("kill (clk %d) not before promotion (clk %d)", kill.Clk, promote.Clk)
	}
	if promote.Epoch != 2 || promote.Trace != root.Trace {
		t.Fatalf("promotion event = %+v, want epoch 2 in trace %x", promote, root.Trace)
	}
	nRetargets := 0
	for _, ev := range dump.Events {
		if ev.Kind != obs.EventRetarget || ev.Shard != ring0 {
			continue
		}
		nRetargets++
		if ev.Clk <= promote.Clk {
			t.Fatalf("retarget (node %s, clk %d) not causally after the promotion (clk %d)",
				ev.Node, ev.Clk, promote.Clk)
		}
		if ev.Trace != root.Trace {
			t.Fatalf("retarget event (node %s) in trace %x, want %x", ev.Node, ev.Trace, root.Trace)
		}
	}
	if nRetargets == 0 {
		t.Fatal("timeline has no failover:retarget events for shard 0")
	}
}
