package e2e

import (
	"testing"
	"time"

	"gospaces/internal/cluster"
	"gospaces/internal/core"
	"gospaces/internal/faults"
	"gospaces/internal/space"
	"gospaces/internal/transport"
	"gospaces/internal/tuplespace"
	"gospaces/internal/vclock"
	"gospaces/internal/wal"
)

// TestChaosShardCrashRestartRecoversFromWAL is the durability acceptance
// scenario: mid-job, shard 1 of a two-shard durable deployment is killed —
// its network endpoint goes dark for the workers AND its in-memory state
// is discarded — then restarted from its data directory. The recovered
// shard rejoins the ring under the same address and the job completes
// with zero lost and zero duplicated results.
func TestChaosShardCrashRestartRecoversFromWAL(t *testing.T) {
	plan := faults.NewPlan(chaosSeed(t, 11))
	// Workers cannot reach shard 1 between 500ms and 2.5s; the master
	// holds direct handles, so its own writes keep landing in the WAL
	// right up to the kill.
	plan.CrashEndpoint("master.shard1", 500*time.Millisecond, 2500*time.Millisecond)

	var restartInfo space.RecoveryInfo
	var restartErr error
	script := func(f *core.Framework) {
		// Kill -9 at t=1500ms, inside the network outage: the in-memory
		// space is dropped and the replacement recovers from the WAL.
		f.Clock.Sleep(1500 * time.Millisecond)
		restartInfo, restartErr = f.RestartShard(1)
	}

	res, job, _ := runFailover(t, plan, 4, core.Config{
		Shards: 2,
		TxnTTL: 8 * time.Second,
		// Shard-local sub-commits are not atomic across shards, so a
		// crash can redeliver a result write; dedup keeps collection
		// exactly-once.
		DedupResults:  true,
		ResultTimeout: 5 * time.Minute,
		DataDir:       t.TempDir(),
	}, chaosJobConfig(), script)
	if restartErr != nil {
		t.Fatalf("RestartShard: %v", restartErr)
	}

	// Zero lost, zero duplicated: the aggregate must be exact.
	price, err := job.Answer()
	if err != nil {
		t.Fatalf("answer: %v", err)
	}
	if want := chaosJobConfig().TotalSims; price.Sims != want {
		t.Fatalf("aggregated %d simulations, want exactly %d (lost or duplicated work)", price.Sims, want)
	}
	if res.Metrics.Tasks != job.ResultCount() {
		t.Fatalf("planned %d tasks, aggregated %d results", res.Metrics.Tasks, job.ResultCount())
	}

	// The restart really went through the log: the shard had taken
	// traffic before the kill, so recovery replayed records.
	if restartInfo.SnapshotRecords+restartInfo.TailRecords == 0 {
		t.Fatal("shard restart replayed nothing — the crash never hit a populated WAL")
	}
	if got := res.Durability[wal.CounterTailRestored]; got == 0 {
		t.Fatalf("%s = 0, want > 0 (recovery metrics missing from Result)", wal.CounterTailRestored)
	}
	// The recovery snapshot fenced off the pre-crash segments.
	if got := res.Durability[wal.CounterSnapshots]; got == 0 {
		t.Fatalf("%s = 0, want > 0 (recovery snapshot not taken)", wal.CounterSnapshots)
	}
	if got := res.Durability[tuplespace.CounterJournalErrors]; got != 0 {
		t.Fatalf("%s = %d, want 0", tuplespace.CounterJournalErrors, got)
	}
	// The outage was visible: workers' calls against the dark shard died.
	if res.FaultEvents[faults.EventDeadCall] == 0 {
		t.Fatal("no dead calls counted — the shard outage never bit")
	}
}

// duraEntry is the e2e persistence probe type.
type duraEntry struct {
	K string
	N int
}

func init() { transport.RegisterType(duraEntry{}) }

// TestDurableFrameworkRestartAcrossRuns: a framework torn down cleanly and
// reassembled over the same data directory serves yesterday's entries —
// the in-process equivalent of restarting the master process with the
// same -datadir.
func TestDurableFrameworkRestartAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Config{
		Workers: cluster.Uniform(1, 1.0),
		Shards:  2,
		DataDir: dir,
	}

	clk1 := vclock.NewVirtual(chaosEpoch)
	fw1 := core.New(clk1, cfg)
	clk1.Run(func() {
		for i := 0; i < 6; i++ {
			shard := fw1.Shards[i%2]
			if _, err := shard.Write(duraEntry{K: "persist", N: i}, nil, tuplespace.Forever); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
	})
	fw1.Close()

	clk2 := vclock.NewVirtual(chaosEpoch.Add(24 * time.Hour))
	fw2 := core.New(clk2, cfg)
	defer fw2.Close()
	total := 0
	clk2.Run(func() {
		for s := 0; s < 2; s++ {
			info := fw2.Durables[s].Info()
			if info.Restored != 3 {
				t.Errorf("shard %d restored %d entries, want 3", s, info.Restored)
			}
			n, err := fw2.Shards[s].Count(duraEntry{K: "persist"})
			if err != nil {
				t.Errorf("shard %d count: %v", s, err)
			}
			total += n
		}
	})
	if total != 6 {
		t.Fatalf("recovered %d entries across shards, want 6", total)
	}
}
