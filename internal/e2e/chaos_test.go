package e2e

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"gospaces/internal/core"
	"gospaces/internal/discovery"
	"gospaces/internal/faults"
)

// TestChaosEveryWorkerCrashesOnceMidTask is the paper's §3 fault-tolerance
// claim as an executable scenario: each of four workers is killed exactly
// once immediately after it takes a task — holding the entry under its
// leased transaction — and before it can write the result. The lease
// expires, the master's sweeper aborts the orphaned transaction, the task
// reappears in the space and completes on a (recovered or different)
// worker. The job must finish with zero lost and zero duplicated work.
func TestChaosEveryWorkerCrashesOnceMidTask(t *testing.T) {
	plan := faults.NewPlan(chaosSeed(t, 42))
	// AfterHandler on space.Take*: the worker dies precisely between its
	// successful Take and its result Write — the worst-case window. Down
	// for 30s, so the 8s lease expires while the node is dark and the
	// worker rejoins later as a "new" node.
	plan.CrashOnCall("node/*", "", "space.Take*", 1, faults.AfterHandler, "", 30*time.Second)

	const workers = 4
	res, job := runChaos(t, plan, workers, core.Config{
		Shards:        2,
		TxnTTL:        8 * time.Second,
		ResultTimeout: 5 * time.Minute,
	})

	// Zero lost, zero duplicated: the aggregated simulation count must be
	// exactly the configured total — a lost task would leave it short, a
	// double-executed one would overshoot.
	price, err := job.Answer()
	if err != nil {
		t.Fatalf("answer: %v", err)
	}
	want := chaosJobConfig().TotalSims
	if price.Sims != want {
		t.Fatalf("aggregated %d simulations, want exactly %d (lost or duplicated work)", price.Sims, want)
	}
	wantTasks := job.ResultCount()
	if res.Metrics.Tasks != wantTasks {
		t.Fatalf("planned %d tasks, aggregated %d results", res.Metrics.Tasks, wantTasks)
	}

	// Every worker crashed exactly once.
	if got := res.FaultEvents[faults.EventCrash]; got != workers {
		t.Fatalf("crash events = %d, want %d (one per worker)", got, workers)
	}
	for i := 1; i <= workers; i++ {
		ep := fmt.Sprintf("faults:crash:node/node%02d", i)
		if got := res.FaultEvents[ep]; got != 1 {
			t.Fatalf("%s = %d, want exactly 1", ep, got)
		}
	}
	// The crashes were visible to the workers as hard space errors (their
	// abort/write attempts against a dead network fail).
	hardErrs := 0
	done := 0
	for _, st := range res.WorkerStats {
		hardErrs += st.SpaceErrors
		done += st.TasksDone
	}
	if hardErrs == 0 {
		t.Fatal("no worker observed a hard space error despite four crashes")
	}
	if done != wantTasks {
		t.Fatalf("sum of worker TasksDone = %d, want %d", done, wantTasks)
	}
}

// TestChaosSameSeedSameSchedule: determinism is the point of the fault
// layer — the same seed over the virtual clock must reproduce the exact
// same injected-event history, so a failing chaos run can be replayed.
func TestChaosSameSeedSameSchedule(t *testing.T) {
	run := func(seed int64) map[string]uint64 {
		plan := faults.NewPlan(seed)
		plan.CrashOnCall("node/*", "", "space.Take*", 1, faults.AfterHandler, "", 20*time.Second)
		// A probabilistic rule exercises the seeded RNG, not just counters.
		plan.DropCalls("node/*", "master*", "space.Write", 0.25)
		res, job := runChaos(t, plan, 3, core.Config{
			Shards:        2,
			TxnTTL:        8 * time.Second,
			ResultTimeout: 5 * time.Minute,
		})
		if price, err := job.Answer(); err != nil || price.Sims != chaosJobConfig().TotalSims {
			t.Fatalf("seed %d: sims %d err %v", seed, price.Sims, err)
		}
		return res.FaultEvents
	}
	seed := chaosSeed(t, 7)
	a, b := run(seed), run(seed)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different fault histories:\n  run 1: %v\n  run 2: %v", a, b)
	}
	if a[faults.EventDrop] == 0 {
		t.Fatal("probabilistic drop rule never fired; schedule comparison is vacuous")
	}
}

// TestChaosLookupServiceCrashRestart: the lookup service is dark for the
// first two seconds of the deployment. Workers joining during the outage
// retry discovery with backoff instead of failing the run, and the job
// still completes.
func TestChaosLookupServiceCrashRestart(t *testing.T) {
	plan := faults.NewPlan(chaosSeed(t, 9))
	plan.CrashEndpoint(discovery.WellKnownAddress, 0, 2*time.Second)

	res, job := runChaos(t, plan, 3, core.Config{
		Shards:        2,
		ResultTimeout: 5 * time.Minute,
	})
	if price, err := job.Answer(); err != nil || price.Sims != chaosJobConfig().TotalSims {
		t.Fatalf("sims %d err %v, want %d", price.Sims, err, chaosJobConfig().TotalSims)
	}
	if res.FaultEvents[faults.EventDeadCall] == 0 {
		t.Fatal("no dead calls counted: the lookup outage never bit")
	}
}
