package e2e

// The spin-up/teardown helpers shared by the chaos, failover, reshard and
// durability suites. They are thin testing wrappers over
// internal/e2e/harness — the same assembly code the randomized scenario
// runner (internal/scenario) uses — so a deployment shape that works here
// works there, and vice versa.

import (
	"testing"

	"gospaces/internal/apps/montecarlo"
	"gospaces/internal/core"
	"gospaces/internal/e2e/harness"
	"gospaces/internal/faults"
)

var chaosEpoch = harness.Epoch

// chaosSeed lets CI pin (or vary) the fault schedule without editing the
// test: GOSPACES_FAULT_SEED=<n>.
func chaosSeed(t *testing.T, def int64) int64 {
	t.Helper()
	n, err := harness.SeedFromEnv(def)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func chaosJobConfig() montecarlo.JobConfig { return harness.ChaosJobConfig() }

func failoverJobConfig() montecarlo.JobConfig { return harness.FailoverJobConfig() }

// runChaos assembles a framework with the given plan and runs the
// chaos-sized job to completion under a fresh virtual clock.
func runChaos(t *testing.T, plan *faults.Plan, workers int, cfg core.Config) (core.Result, *montecarlo.Job) {
	t.Helper()
	res, job, _ := runFailover(t, plan, workers, cfg, chaosJobConfig(), nil)
	return res, job
}

// runFailover is runChaos with the job config and chaos script exposed,
// returning the framework for post-run state assertions.
func runFailover(t *testing.T, plan *faults.Plan, workers int, cfg core.Config,
	jc montecarlo.JobConfig, script func(*core.Framework)) (core.Result, *montecarlo.Job, *core.Framework) {
	t.Helper()
	job := montecarlo.NewJob(jc)
	out, err := harness.Run(harness.RunSpec{
		Workers: workers,
		Plan:    plan,
		Config:  cfg,
		Job:     job,
		Script:  script,
	})
	if err != nil {
		t.Fatalf("e2e run: %v", err)
	}
	return out.Result, job, out.Framework
}

// assertExactResults fails unless the aggregated simulation count matches
// the configured total exactly — short means lost work, over means
// duplicated work.
func assertExactResults(t *testing.T, job *montecarlo.Job, jc montecarlo.JobConfig) {
	t.Helper()
	if err := harness.ExactSims(job, jc.TotalSims); err != nil {
		t.Fatal(err)
	}
}
