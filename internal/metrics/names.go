package metrics

import "fmt"

// Canonical metric names. Every package that publishes into a Counters
// set or a Registry takes its key from here (the producing packages alias
// these constants rather than inventing ad-hoc strings), so exporters —
// the Prometheus-text page, the SNMP framework MIB, Result snapshots —
// agree on spelling. The convention is "<subsystem>:<metric>"; dynamic
// names (per shard, per node) come from the helper functions below.
//
// Counter keys (metrics.Counters):
const (
	// Write-ahead log (internal/wal).
	CounterWALRecords           = "wal:records"
	CounterWALSegments          = "wal:segments"
	CounterWALSnapshots         = "wal:snapshots"
	CounterWALSegmentsCompacted = "wal:segments_compacted"
	CounterWALAppendErrors      = "wal:append_errors"
	CounterWALSnapshotRestored  = "wal:recovered_snapshot"
	CounterWALTailRestored      = "wal:recovered_records"
	CounterWALTruncatedBytes    = "wal:truncated_bytes"
	CounterWALRecoveryMs        = "wal:recovery_ms"

	// Space journal (internal/tuplespace). Previously the one key that
	// broke the "<subsystem>:<metric>" convention ("journal_errors").
	CounterJournalErrors = "journal:errors"

	// Fault injection (internal/faults). Per-endpoint crash counts append
	// ":<endpoint>" to CounterFaultCrash.
	CounterFaultDrop        = "faults:drop"
	CounterFaultDelay       = "faults:delay"
	CounterFaultDuplicate   = "faults:duplicate"
	CounterFaultCrash       = "faults:crash"
	CounterFaultPartitioned = "faults:partitioned"
	CounterFaultDeadCall    = "faults:dead-call"

	// Primary/backup replication (internal/replica).
	CounterReplShipped    = "repl:records_shipped" // journal records acked by the backup
	CounterReplShipErrors = "repl:ship_errors"     // failed ship batches (backup unreachable)
	CounterReplFenced     = "repl:fenced"          // stale-epoch requests rejected
	CounterReplPromotions = "repl:promotions"      // backup self-promotions
	CounterReplResyncs    = "repl:resyncs"         // full snapshot re-syncs after divergence
	CounterReplFailovers  = "repl:failovers"       // router retargets onto a promoted backup

	// Exactly-once retry policy (internal/shard router, behind
	// core.Config{ExactlyOnce}).
	CounterRetryAttempts  = "retry:attempts"  // mutation retries issued after a failure
	CounterRetryAmbiguous = "retry:ambiguous" // retries of ambiguous (reply-lost) outcomes
	CounterRetryExhausted = "retry:exhausted" // mutations that ran out of retry attempts

	// Retry budget (internal/shard, token bucket shared across the
	// router's retry paths): retries denied because the budget — refilled
	// by successful traffic — was empty.
	CounterRetryBudgetDenied = "retry:budget_denied"

	// Server-side admission control (internal/space Admission).
	CounterAdmitRejected = "admit:rejected" // ops fast-failed by the inflight bound
	CounterAdmitExpired  = "admit:expired"  // ops dropped because their deadline had passed
	CounterShedLow       = "shed:low"       // PriLow ops shed under brownout level >= 1
	CounterShedNormal    = "shed:normal"    // PriNormal ops shed under brownout level 2

	// Per-shard circuit breakers (internal/shard router).
	CounterBreakerOpen     = "breaker:open"     // breaker trips (closed -> open)
	CounterBreakerClose    = "breaker:close"    // half-open probes that healed the shard
	CounterBreakerFastFail = "breaker:fastfail" // calls fast-failed while a breaker was open

	// Idempotency-token result memos (internal/tuplespace memo table).
	CounterDedupHits        = "dedup:hits"         // retried ops answered from the memo table
	CounterDedupMemoEvicted = "dedup:memo_evicted" // memos dropped by the FIFO bounds

	// Elastic resharding (internal/rebalance).
	CounterReshardSplits   = "reshard:splits"           // completed shard splits
	CounterReshardMerges   = "reshard:merges"           // completed shard merges
	CounterReshardMigrated = "reshard:entries_migrated" // entries snapshot-forked to a new owner
	CounterReshardEvicted  = "reshard:entries_evicted"  // entries evicted off the old owner
	CounterReshardAborted  = "reshard:aborted"          // migrations abandoned (source failover, errors)
)

// Federated per-shard metric keys (metrics.MemberSnapshot). Rendered by
// obs.WriteClusterMetrics with a {shard="<ring>"} label per member.
const (
	FedEntries     = "cluster:entries"      // gauge: live tuple count on the serving replica
	FedMemoEntries = "cluster:memo_entries" // gauge: exactly-once memo table size
	FedEpoch       = "cluster:epoch"        // gauge: serving replication epoch
	FedOps         = "cluster:ops"          // gauge: cumulative served space operations
	FedWALPosition = "cluster:wal_position" // gauge: write-ahead log position
	FedDedupHits   = "cluster:dedup_hits"   // counter: memo-table dedup answers
	FedServe       = "cluster:serve"        // histogram: server-side space-op service time
)

// Histogram names (metrics.Registry).
const (
	// HistSpacePrefix prefixes the master-side per-operation space
	// latencies: "space:write", "space:take", … (one per space.Space
	// method, recorded by obs.InstrumentSpace).
	HistSpacePrefix = "space:"

	// Per-stage task pipeline latencies.
	HistMasterPlan       = "master:plan"        // charge + task write, per task
	HistMasterAggregate  = "master:aggregate"   // charge + fold, per result
	HistMasterTakeResult = "master:take_result" // blocking result take, per result
	HistWorkerTask       = "worker:task"        // take-to-commit, per task

	// Durability latencies (real wall-clock time at the disk, not the
	// virtual clock: the WAL does real I/O even under simulation).
	HistWALAppend = "wal:append"
	HistWALFsync  = "wal:fsync"

	// HistReplShip is the primary-observed replication lag: the time one
	// shipped batch of journal records takes to reach the backup and be
	// acknowledged (network round trip + apply).
	HistReplShip = "repl:ship"
)

// Gauge names (metrics.Registry).
const (
	GaugeTasksPending     = "master:tasks_pending"     // task entries sitting in the space
	GaugeTasksInFlight    = "master:tasks_inflight"    // taken by a worker, result not yet collected
	GaugeTasksPlanned     = "master:tasks_planned"     // tasks written since start
	GaugeResultsCollected = "master:results_collected" // results aggregated since start
	GaugeWorkersRunning   = "cluster:workers_running"  // workers currently in the Running state
	GaugeTopologyEpoch    = "reshard:topology_epoch"   // ring topology epoch (0 until first reshard)

	// Flight recorder (internal/obs). Depth/dropped mirror what /healthz
	// reports; clk is the causal clock's latest Lamport stamp.
	GaugeFlightDepth   = "flight:depth"
	GaugeFlightDropped = "flight:dropped"
	GaugeFlightClk     = "flight:clk"
)

// HistShardServe names shard i's server-side space-op service time
// (queueing at the service gate included).
func HistShardServe(i int) string { return fmt.Sprintf("shard%d:serve", i) }

// GaugeShardOps names shard i's served-operation count (the count of the
// HistShardServe histogram, exported as a rate-able counter).
func GaugeShardOps(i int) string { return fmt.Sprintf("shard%d:ops", i) }

// GaugeReplRole names shard i's serving role: 1 when the original primary
// still serves, 2 once its backup has been promoted.
func GaugeReplRole(i int) string { return fmt.Sprintf("repl:shard%d:role", i) }

// GaugeReplEpoch names shard i's current replication epoch.
func GaugeReplEpoch(i int) string { return fmt.Sprintf("repl:shard%d:epoch", i) }

// GaugeReplLag names shard i's replication lag in journal records — how
// many appended records the backup has not yet acknowledged.
func GaugeReplLag(i int) string { return fmt.Sprintf("repl:shard%d:lag", i) }
