package metrics

import (
	"sort"
	"sync"
)

// Counters accumulates named event counts; safe for concurrent use. The
// fault-injection layer counts every injected event here (drops, delays,
// duplications, crashes, partitioned calls), and chaos tests assert against
// the snapshots.
type Counters struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]uint64)} }

// Inc adds 1 to key.
func (c *Counters) Inc(key string) { c.AddN(key, 1) }

// AddN adds n to key.
func (c *Counters) AddN(key string, n uint64) {
	c.mu.Lock()
	c.m[key] += n
	c.mu.Unlock()
}

// Get returns the current count under key (0 if never incremented).
func (c *Counters) Get(key string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[key]
}

// Total returns the sum over all keys.
func (c *Counters) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t uint64
	for _, n := range c.m {
		t += n
	}
	return t
}

// Snapshot returns a copy of every non-zero counter.
func (c *Counters) Snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.m))
	for k, n := range c.m {
		out[k] = n
	}
	return out
}

// CounterKeys returns the recorded keys, sorted.
func (c *Counters) CounterKeys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
