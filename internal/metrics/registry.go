package metrics

import (
	"sort"
	"sync"
	"time"
)

// Registry names the histograms and gauges one deployment exports: the
// /metrics page, the SNMP framework MIB and Result.ObsSummary all read
// the same instances, so every surface reports identical numbers.
// Histogram is get-or-create, so producers and exporters can rendezvous
// on a name without wiring. All methods are safe on a nil *Registry
// (lookups return nil histograms, registrations are dropped), which keeps
// disabled-observability call sites branch-free.
type Registry struct {
	mu     sync.Mutex
	hists  map[string]*Histogram
	gauges map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:  make(map[string]*Histogram),
		gauges: make(map[string]func() int64),
	}
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry — and a nil *Histogram accepts Record
// calls as no-ops.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// RegisterGauge installs (or replaces) a named gauge read-out. fn must be
// safe to call from any goroutine.
func (r *Registry) RegisterGauge(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Gauge evaluates the named gauge; ok reports whether it exists.
func (r *Registry) Gauge(name string) (v int64, ok bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	fn := r.gauges[name]
	r.mu.Unlock()
	if fn == nil {
		return 0, false
	}
	return fn(), true
}

// Gauges evaluates every gauge and returns name → value.
func (r *Registry) Gauges() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fns := make(map[string]func() int64, len(r.gauges))
	for k, fn := range r.gauges {
		fns[k] = fn
	}
	r.mu.Unlock()
	out := make(map[string]int64, len(fns))
	for k, fn := range fns {
		out[k] = fn()
	}
	return out
}

// Histograms returns a copy of the name → histogram map.
func (r *Registry) Histograms() map[string]*Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		out[k] = h
	}
	return out
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// StageSummary is one row of a run's tail-latency report: the quantiles
// of a named histogram (a pipeline stage, a space op, a shard, …).
type StageSummary struct {
	Stage string
	Count uint64
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summary reports every non-empty histogram, sorted by name.
func (r *Registry) Summary() []StageSummary {
	if r == nil {
		return nil
	}
	var rows []StageSummary
	for name, h := range r.Histograms() {
		if h.Count() == 0 {
			continue
		}
		rows = append(rows, StageSummary{
			Stage: name,
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			Max:   h.Max(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Stage < rows[j].Stage })
	return rows
}

// SummaryTable renders stage summaries as one of the harness's aligned
// tables (durations in milliseconds, like every figure).
func SummaryTable(title string, rows []StageSummary) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"Stage", "Count", "p50 (ms)", "p90 (ms)", "p99 (ms)", "Max (ms)"},
	}
	for _, r := range rows {
		t.AddRow(r.Stage, itoa(r.Count), Ms(r.P50), Ms(r.P90), Ms(r.P99), Ms(r.Max))
	}
	return t
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
