package metrics

import (
	"sort"
	"sync"
)

// MemberSnapshot is one federation member's point-in-time metric view —
// typically one shard's, read off whichever replica currently serves its
// ring position. Keys follow the same "<subsystem>:<metric>" convention
// as the canonical names (see the Fed* constants in names.go); exporters
// attach the member name as a per-shard label.
type MemberSnapshot struct {
	Name     string
	Counters map[string]uint64
	Gauges   map[string]int64
	Hists    map[string]HistogramSnapshot
}

// Federation aggregates per-member metric snapshots into one cluster
// view. Providers are registered once (the framework adds one producing a
// snapshot per hosted shard) and polled at render time, so the federated
// /metrics page always reflects live state — including shards born from a
// split after registration. All methods are safe on a nil *Federation.
type Federation struct {
	mu        sync.Mutex
	providers []func() []MemberSnapshot
}

// NewFederation returns an empty federation.
func NewFederation() *Federation { return &Federation{} }

// Add registers a snapshot provider.
func (f *Federation) Add(fn func() []MemberSnapshot) {
	if f == nil || fn == nil {
		return
	}
	f.mu.Lock()
	f.providers = append(f.providers, fn)
	f.mu.Unlock()
}

// Snapshot polls every provider and returns the members sorted by name.
func (f *Federation) Snapshot() []MemberSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	providers := append([]func() []MemberSnapshot(nil), f.providers...)
	f.mu.Unlock()
	var out []MemberSnapshot
	for _, fn := range providers {
		out = append(out, fn()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
