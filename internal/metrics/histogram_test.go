package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramExactAggregates(t *testing.T) {
	h := NewHistogram()
	samples := []time.Duration{
		0, time.Nanosecond, 3 * time.Microsecond, time.Millisecond,
		7 * time.Millisecond, 250 * time.Millisecond, 3 * time.Second,
	}
	var sum time.Duration
	for _, d := range samples {
		h.Record(d)
		sum += d
	}
	if got := h.Count(); got != uint64(len(samples)) {
		t.Fatalf("Count = %d, want %d", got, len(samples))
	}
	if got := h.Sum(); got != sum {
		t.Fatalf("Sum = %v, want %v", got, sum)
	}
	if got := h.Max(); got != 3*time.Second {
		t.Fatalf("Max = %v, want %v", got, 3*time.Second)
	}
	if got := h.Mean(); got != sum/time.Duration(len(samples)) {
		t.Fatalf("Mean = %v, want %v", got, sum/time.Duration(len(samples)))
	}
}

// Quantile must never underestimate (it reports the holding bucket's
// upper bound) and never exceed the true value by more than 2×.
func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		true time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.90, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{1.00, 1000 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		if got < tc.true {
			t.Errorf("Quantile(%v) = %v underestimates true %v", tc.q, got, tc.true)
		}
		if got > 2*tc.true {
			t.Errorf("Quantile(%v) = %v more than 2× true %v", tc.q, got, tc.true)
		}
	}
	if got := h.Quantile(1.0); got != h.Max() {
		t.Errorf("Quantile(1.0) = %v, want exact max %v", got, h.Max())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(42 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want 42ms (clamped by max)", q, got)
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(time.Second) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram reads must be zero")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	if got := h.Sum(); got != goroutines*per*time.Millisecond {
		t.Fatalf("Sum = %v, want %v", got, goroutines*per*time.Millisecond)
	}
}

func TestCollectorBackedByHistograms(t *testing.T) {
	c := NewCollector()
	c.Add("task", 10*time.Millisecond)
	c.Add("task", 30*time.Millisecond)
	c.Add("plan", time.Millisecond)
	if got := c.Count("task"); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if got := c.Sum("task"); got != 40*time.Millisecond {
		t.Fatalf("Sum = %v, want 40ms", got)
	}
	if got := c.Max("task"); got != 30*time.Millisecond {
		t.Fatalf("Max = %v, want 30ms", got)
	}
	if got := c.Mean("task"); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v, want 20ms", got)
	}
	if q := c.Quantile("task", 0.99); q < 30*time.Millisecond || q > 60*time.Millisecond {
		t.Fatalf("Quantile(0.99) = %v, want within [30ms, 60ms]", q)
	}
	if got := c.Count("missing"); got != 0 {
		t.Fatalf("Count(missing) = %d, want 0", got)
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "plan" || keys[1] != "task" {
		t.Fatalf("Keys = %v, want [plan task]", keys)
	}
}

func TestRegistryGetOrCreateAndGauges(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("space:write")
	h2 := r.Histogram("space:write")
	if h1 != h2 {
		t.Fatal("Histogram must rendezvous on the name")
	}
	h1.Record(5 * time.Millisecond)
	var n int64 = 7
	r.RegisterGauge("master:tasks_pending", func() int64 { return n })
	if v, ok := r.Gauge("master:tasks_pending"); !ok || v != 7 {
		t.Fatalf("Gauge = %d,%v want 7,true", v, ok)
	}
	n = 9
	if g := r.Gauges(); g["master:tasks_pending"] != 9 {
		t.Fatalf("Gauges = %v, want live value 9", g)
	}
	sum := r.Summary()
	if len(sum) != 1 || sum[0].Stage != "space:write" || sum[0].Count != 1 {
		t.Fatalf("Summary = %+v, want one space:write row", sum)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Histogram("x").Record(time.Second)
	r.RegisterGauge("g", func() int64 { return 1 })
	if _, ok := r.Gauge("g"); ok {
		t.Fatal("nil registry must report no gauges")
	}
	if r.Summary() != nil || r.HistogramNames() != nil {
		t.Fatal("nil registry reads must be empty")
	}
}
