package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"gospaces/internal/vclock"
)

func TestStopwatch(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	clk.Run(func() {
		sw := StartStopwatch(clk)
		clk.Sleep(1500 * time.Millisecond)
		if got := sw.Elapsed(); got != 1500*time.Millisecond {
			t.Errorf("elapsed %v", got)
		}
	})
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Add("a", time.Second)
	c.Add("a", 3*time.Second)
	c.Add("b", time.Millisecond)
	if got := c.Max("a"); got != 3*time.Second {
		t.Fatalf("Max = %v", got)
	}
	if got := c.Sum("a"); got != 4*time.Second {
		t.Fatalf("Sum = %v", got)
	}
	if got := c.Count("a"); got != 2 {
		t.Fatalf("Count = %d", got)
	}
	if got := c.Max("missing"); got != 0 {
		t.Fatalf("Max(missing) = %v", got)
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("k", time.Duration(j))
			}
		}()
	}
	wg.Wait()
	if got := c.Count("k"); got != 1600 {
		t.Fatalf("Count = %d", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"name", "value_ms"}}
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "123456")
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), s)
	}
	// Columns align: every data line has the value column at the same
	// offset.
	idx := strings.Index(lines[1], "value_ms")
	if idx < 0 {
		t.Fatalf("no header: %q", lines[1])
	}
	if lines[3][idx] != '1' || lines[4][idx] != '1' {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	tab.AddRow("1", "plain")
	tab.AddRow("2", `quoted,"cell"`)
	got := tab.CSV()
	want := "a,b\n1,plain\n2,\"quoted,\"\"cell\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestMs(t *testing.T) {
	if got := Ms(1500 * time.Millisecond); got != "1500" {
		t.Fatalf("Ms = %q", got)
	}
	if got := Ms(0); got != "0" {
		t.Fatalf("Ms(0) = %q", got)
	}
}
