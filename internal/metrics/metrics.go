// Package metrics provides the timing instrumentation and tabular output
// used by the experiment harness: stopwatches on a vclock.Clock, per-worker
// timing collections, and fixed-width tables matching the rows/series the
// paper's figures report.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gospaces/internal/vclock"
)

// Stopwatch measures elapsed time on a clock.
type Stopwatch struct {
	clock vclock.Clock
	start time.Time
}

// StartStopwatch returns a running stopwatch.
func StartStopwatch(clock vclock.Clock) *Stopwatch {
	return &Stopwatch{clock: clock, start: clock.Now()}
}

// Elapsed returns the time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Since(s.start) }

// Collector accumulates named duration samples; safe for concurrent use
// by workers and the master. Each key is backed by a fixed-size Histogram
// rather than an ever-growing slice, so hot paths (a worker recording
// every task, a master recording every result) run in constant memory no
// matter how long the deployment lives. Count, Sum, Max and Mean stay
// exact; Quantile is the histogram's bucket-rounded upper bound.
type Collector struct {
	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{hists: make(map[string]*Histogram)}
}

// hist returns key's histogram, creating it on first use (nil if the
// collector itself is nil, which Record treats as a no-op).
func (c *Collector) hist(key string) *Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hists[key]
	if !ok {
		h = NewHistogram()
		c.hists[key] = h
	}
	return h
}

// get returns key's histogram without creating it (nil if absent); a nil
// *Histogram answers every read as zero.
func (c *Collector) get(key string) *Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hists[key]
}

// Add records one duration under key.
func (c *Collector) Add(key string, d time.Duration) { c.hist(key).Record(d) }

// Max returns the maximum duration recorded under key (0 if none).
func (c *Collector) Max(key string) time.Duration { return c.get(key).Max() }

// Sum returns the total of durations under key.
func (c *Collector) Sum(key string) time.Duration { return c.get(key).Sum() }

// Count returns how many durations were recorded under key.
func (c *Collector) Count(key string) int { return int(c.get(key).Count()) }

// Mean returns the exact mean duration under key (0 if none).
func (c *Collector) Mean(key string) time.Duration { return c.get(key).Mean() }

// Quantile returns an upper bound on the q-th quantile under key — the
// holding histogram bucket's upper edge, clamped by the exact max.
func (c *Collector) Quantile(key string, q float64) time.Duration {
	return c.get(key).Quantile(q)
}

// Histogram exposes key's underlying histogram (created on first use), so
// callers can hand the same instance to a Registry or renderer.
func (c *Collector) Histogram(key string) *Histogram { return c.hist(key) }

// Keys returns the recorded keys, sorted.
func (c *Collector) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.hists))
	for k := range c.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Table is a printable result table — one per reproduced figure/table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (title omitted), for
// feeding the figure data straight into a plotting tool.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
		}
		b.WriteString(cell)
	}
	b.WriteByte('\n')
}

// Ms formats a duration as integer milliseconds, the unit the paper's
// figures use.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%d", d.Milliseconds())
}
