package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is one slot per possible bits.Len64 of a nanosecond count:
// bucket i holds samples whose duration d satisfies bits.Len64(d) == i,
// i.e. d ∈ [2^(i-1), 2^i). Bucket 0 holds non-positive samples. 65 slots
// cover the full int64 nanosecond range (~292 years) in ~1 KiB.
const numBuckets = 65

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Record costs a handful of atomic adds, so it is safe on hot paths where
// the append-all-durations Collector used to grow without bound. Count,
// Sum and Max are exact; quantiles are approximate, rounded up to the
// holding bucket's upper bound (≤ 2× overestimate, never an underestimate)
// and clamped by the exact maximum.
//
// All methods are safe on a nil *Histogram (Record is a no-op, reads
// return zero), so disabled-observability paths need no branches.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// bucketUpper is the inclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1)<<uint(i) - 1)
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns how many samples were recorded.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact total of all samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Max returns the exact largest sample (0 if none).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the exact arithmetic mean (0 if empty).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile returns an upper bound on the q-th quantile (q in [0,1]): the
// upper edge of the bucket holding the ceil(q·count)-th smallest sample,
// clamped by the exact maximum. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			ub := bucketUpper(i)
			if max := time.Duration(h.max.Load()); ub > max {
				ub = max
			}
			return ub
		}
	}
	return time.Duration(h.max.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram's state, used
// by the Prometheus-text renderer.
type HistogramSnapshot struct {
	Counts [numBuckets]uint64
	Count  uint64
	Sum    time.Duration
	Max    time.Duration
}

// BucketUpper exposes bucket i's inclusive upper bound for renderers.
func (HistogramSnapshot) BucketUpper(i int) time.Duration { return bucketUpper(i) }

// NumBuckets is the fixed bucket count of every Histogram.
func (HistogramSnapshot) NumBuckets() int { return numBuckets }

// Snapshot copies the current counters. The copy is not atomic across
// buckets (concurrent Records may straddle it) but each field is itself a
// consistent atomic load.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	return s
}
